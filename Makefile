GO ?= go

.PHONY: all vet build test race fuzz-smoke soak check chaos-smoke serve-smoke fsfault-smoke crashsim bench-snapshot bench-snapshot-core perf-gate clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short native-fuzz runs of the correctness oracles; new interesting inputs
# stay in the Go build cache, crashers land in internal/check/testdata/fuzz/
# and internal/tlb/testdata/fuzz/ ready to commit as regressions.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzSchemesAgree -fuzztime 30s ./internal/check/
	$(GO) test -run '^$$' -fuzz FuzzMachine -fuzztime 30s ./internal/check/
	$(GO) test -run '^$$' -fuzz FuzzBufferParity -fuzztime 10s ./internal/tlb/
	$(GO) test -run '^$$' -fuzz FuzzParallelParity -fuzztime 30s ./internal/check/fuzzgen/

# Longer oracle soak over seeded random workloads; failing seeds are written
# to fuzz-artifacts/ in Go fuzz-corpus format.
soak:
	mkdir -p fuzz-artifacts
	$(GO) run ./cmd/vcoma-check -seeds 1000 -budget 3m -artifacts fuzz-artifacts
	$(GO) run ./cmd/vcoma-check -seeds 150 -diff -budget 3m -artifacts fuzz-artifacts

# Supervision-layer smoke through the real CLIs: interrupt/resume
# byte-identity, cache-corruption quarantine, hung-pass reclaim, watchdog
# diagnostics (see scripts/chaos-smoke.sh).
chaos-smoke:
	sh scripts/chaos-smoke.sh chaos-smoke.tmp
	rm -rf chaos-smoke.tmp

# Service smoke through real HTTP: SIGTERM mid-job → restart → byte-identical
# resume, coalescing onto the artifact store, 429 flood control
# (see scripts/serve-smoke.sh).
serve-smoke:
	sh scripts/serve-smoke.sh serve-smoke.tmp
	rm -rf serve-smoke.tmp

# Storage-fault smoke through real HTTP: ENOSPC on every artifact put →
# degraded-mode serving from memory (byte-identical), 503 + Retry-After on
# a dead journal, self-heal via the write probe once the failpoints clear
# (see scripts/fsfault-smoke.sh). The scratch dir keeps the -fsfault-log op
# trace on failure for post-mortems.
fsfault-smoke:
	sh scripts/fsfault-smoke.sh fsfault-smoke.tmp
	rm -rf fsfault-smoke.tmp

# Power-cut crash-consistency sweeps: replay every fsync-truncated prefix of
# recorded op traces and reopen the runner cache, the sweep journal and the
# serve accept journal in each crash state, asserting their recovery
# invariants (whole-entries-or-nothing, byte-identical resume, pending ⊆
# accepted).
crashsim:
	$(GO) test ./internal/fsio/... -count=1
	$(GO) test ./internal/runner/ ./internal/serve/ -run 'CrashSweep|Torn' -count=1

# Refresh BENCH_serve.json: service-path latencies (cold submit, warm store
# hit, coalesced burst) measured at test scale.
bench-snapshot:
	$(GO) run ./scripts/benchsnapshot > BENCH_serve.json
	cat BENCH_serve.json

# Refresh BENCH_core.json: simulator-core hot paths (end-to-end engine per
# scheme, TLB access, SLC read, trace generator) via testing.Benchmark.
# Compare snapshots with `go run ./scripts/benchdiff old.json new.json`
# (±10% regression threshold by default).
bench-snapshot-core:
	$(GO) run ./scripts/benchcore > BENCH_core.json
	cat BENCH_core.json

# Perf gate: re-measure the core hot paths and fail on a >10% ns_op
# regression of the sim_run_* / tlb_access_* scenarios against the committed
# BENCH_core.json. Other scenarios (cache_read, generator_throughput) are
# printed but advisory. After an intentional perf change, refresh the
# baseline with `make bench-snapshot-core` and commit it.
perf-gate:
	$(GO) run ./scripts/benchcore > BENCH_core.new.json
	$(GO) run ./scripts/benchdiff -only '^(sim_run_|tlb_access_)' BENCH_core.json BENCH_core.new.json
	rm -f BENCH_core.new.json

# The full local gate: what CI runs, minus the long benchmark artifacts.
check: vet build
	$(GO) test -race ./...
	mkdir -p fuzz-artifacts
	$(GO) run ./cmd/vcoma-check -seeds 200 -budget 60s -artifacts fuzz-artifacts
	$(GO) run ./cmd/vcoma-check -seeds 30 -diff -budget 60s -artifacts fuzz-artifacts

clean:
	rm -rf fuzz-artifacts artifacts chaos-smoke.tmp serve-smoke.tmp fsfault-smoke.tmp
