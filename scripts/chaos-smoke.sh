#!/bin/sh
# Chaos smoke: exercise the supervision layer end to end through the real
# CLIs at test scale. Proves the acceptance path of the resilience work: an
# interrupted sweep resumes byte-identically, corrupted cache entries are
# quarantined (never trusted), a hung pass is reclaimed by its deadline
# with partial output, and a tripped watchdog yields a diagnostic dump.
#
# Runs in a scratch directory; pass one as $1 (default: ./chaos-smoke.tmp).
set -eu

work=${1:-chaos-smoke.tmp}
rm -rf "$work"
mkdir -p "$work/bin"
go build -o "$work/bin" ./cmd/...
cd "$work"

echo "== reference: uninterrupted sweep"
bin/vcoma-sweep -exp table2 -scale test -cache cache-ref -md > ref.out 2> /dev/null

echo "== chaos: cancel mid-run, then resume byte-identically"
if bin/vcoma-sweep -exp table2 -scale test -cache cache-chaos -chaos cancel:3 -md > int.out 2> int.err; then
    echo "FAIL: interrupted run exited 0" >&2; exit 1
fi
test -f cache-chaos/journal.json || { echo "FAIL: no journal left behind" >&2; exit 1; }
bin/vcoma-sweep -exp table2 -scale test -cache cache-chaos -resume -md > res.out 2> res.err
grep -q "resuming: journal records" res.err
cmp ref.out res.out || { echo "FAIL: resumed output differs from uninterrupted run" >&2; exit 1; }
if test -f cache-chaos/journal.json; then
    echo "FAIL: completed resume left its journal" >&2; exit 1
fi

echo "== chaos: corrupted cache entries are quarantined, then recomputed"
bin/vcoma-sweep -exp table2 -scale test -cache cache-chaos -chaos corrupt:observe -md > cor.out 2> cor.err
cmp ref.out cor.out || { echo "FAIL: output after corruption differs" >&2; exit 1; }
ls cache-chaos/quarantine/*.reason > /dev/null 2>&1 || { echo "FAIL: no quarantined entries" >&2; exit 1; }

echo "== chaos: hung pass reclaimed by -job-timeout, partial output exits 2"
rc=0
bin/vcoma-sweep -exp table2 -scale test -bench RADIX -no-cache \
    -chaos hang:L3 -job-timeout 5s -keep-going -md > part.out 2> part.err || rc=$?
test "$rc" -eq 2 || { echo "FAIL: partial run exited $rc, want 2" >&2; exit 1; }
grep -q "PARTIAL" part.err

echo "== watchdog: tripped budget dumps diagnostics instead of hanging"
rc=0
bin/vcoma-sim -bench RADIX -scale test -max-cycles 2000 2> dump.txt || rc=$?
test "$rc" -eq 1 || { echo "FAIL: tripped sim exited $rc, want 1" >&2; exit 1; }
grep -q "watchdog: cycle budget exceeded" dump.txt
grep -q "processors:" dump.txt

echo "chaos smoke: all scenarios passed"
