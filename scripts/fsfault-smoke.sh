#!/bin/sh
# Fsfault smoke: boot vcoma-serve on a disk where every artifact put (and
# every self-heal probe) hits ENOSPC, and prove the degraded-mode serving
# contract end to end through real HTTP: the job still computes, its result
# is served from memory byte-identical to a healthy run, nothing
# materializes in the artifact store, /healthz and /metrics report the
# degradation, a dead journal refuses accepts with 503 + Retry-After, and
# clearing the failpoints over /debug/fsfault lets the periodic write probe
# heal the server back to durable operation. The -fsfault-log op trace is
# flushed on drain and kept in the scratch directory for post-mortems.
#
# Runs in a scratch directory; pass one as $1 (default: ./fsfault-smoke.tmp).
set -eu

work=${1:-fsfault-smoke.tmp}
rm -rf "$work"
mkdir -p "$work/bin"
go build -o "$work/bin" ./cmd/...
cd "$work"

ADDR=127.0.0.1:8393
BASE=http://$ADDR
BODY='{"bench":"RADIX","scheme":"l0","scale":"test"}'

# wait_http <url>: poll until the endpoint answers.
wait_http() {
    for _ in $(seq 1 100); do
        if curl -fsS "$1" > /dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "FAIL: $1 never came up" >&2
    return 1
}

# field <name>: extract a string field from JSON on stdin.
field() {
    sed -n 's/.*"'"$1"'": *"\([^"]*\)".*/\1/p' | head -n 1
}

# wait_state <key> <state>: poll a job until it reaches the state.
wait_state() {
    for _ in $(seq 1 300); do
        st=$(curl -fsS "$BASE/v1/jobs/$1" | field state)
        [ "$st" = "$2" ] && return 0
        sleep 0.1
    done
    echo "FAIL: job $1 never reached $2 (last: $st)" >&2
    return 1
}

# wait_healthz <body>: poll /healthz until it reports the given state.
wait_healthz() {
    for _ in $(seq 1 150); do
        h=$(curl -fsS "$BASE/healthz")
        [ "$h" = "$1" ] && return 0
        sleep 0.1
    done
    echo "FAIL: /healthz never reached $1 (last: $h)" >&2
    return 1
}

# metric <prom-name>: scrape one gauge/counter value.
metric() {
    curl -fsS "$BASE/metrics" | sed -n "s|^$1 ||p"
}

echo "== reference: healthy server computes and stores the cell"
bin/vcoma-serve -addr "$ADDR" -state state-ref -workers 1 > ref-server.log 2>&1 &
REF=$!
wait_http "$BASE/healthz"
wait_healthz ok
KEY=$(curl -fsS -X POST -d "$BODY" "$BASE/v1/jobs" | field key)
[ -n "$KEY" ] || { echo "FAIL: submit returned no key" >&2; exit 1; }
wait_state "$KEY" done
curl -fsS "$BASE/v1/jobs/$KEY/result" > ref.json
kill -TERM $REF
rc=0; wait $REF || rc=$?
[ "$rc" = 143 ] || { echo "FAIL: reference drain exited $rc, want 143" >&2; exit 1; }

echo "== degraded: ENOSPC on every put, result still served from memory"
bin/vcoma-serve -addr "$ADDR" -state state-deg -workers 1 \
    -fsfault 'enospc:put:*,enospc:probe:*' -fsfault-control \
    -fsfault-log fsio-ops.jsonl > deg-server.log 2>&1 &
PID=$!
wait_http "$BASE/healthz"
K2=$(curl -fsS -X POST -d "$BODY" "$BASE/v1/jobs" | field key)
[ "$K2" = "$KEY" ] || { echo "FAIL: same request keyed differently ($K2 vs $KEY)" >&2; exit 1; }
wait_state "$K2" done
wait_healthz degraded
curl -fsS -D result-headers.txt "$BASE/v1/jobs/$K2/result" > deg.json
grep -qi '^x-vcoma-served-from: *memory' result-headers.txt \
    || { echo "FAIL: degraded result not marked served-from memory" >&2; cat result-headers.txt >&2; exit 1; }
cmp ref.json deg.json || { echo "FAIL: memory-served result differs from healthy run" >&2; exit 1; }
n=$(find state-deg/artifacts -name '*.json' 2>/dev/null | grep -cv '\.metrics\.json$' || true)
[ "$n" = 0 ] || { echo "FAIL: $n artifact file(s) materialized despite ENOSPC" >&2; exit 1; }

echo "== observability: degraded state shows on /metrics and /debug/fsfault"
[ "$(metric vcoma_serve_degraded)" = 1 ] \
    || { echo "FAIL: vcoma_serve_degraded != 1" >&2; exit 1; }
inj=$(metric vcoma_fsio_injected)
[ "${inj:-0}" -ge 1 ] || { echo "FAIL: vcoma_fsio_injected=$inj, want >= 1" >&2; exit 1; }
mem=$(metric vcoma_serve_mem_results)
[ "${mem:-0}" -ge 1 ] || { echo "FAIL: vcoma_serve_mem_results=$mem, want >= 1" >&2; exit 1; }
curl -fsS "$BASE/debug/fsfault" | grep -q 'enospc:put:\*' \
    || { echo "FAIL: /debug/fsfault does not report the armed spec" >&2; exit 1; }

echo "== repeat submit answers from the memory holdover, no recompute"
st=$(curl -fsS -X POST -d "$BODY" "$BASE/v1/jobs" | field state)
[ "$st" = done ] || { echo "FAIL: repeat submit state $st, want done" >&2; exit 1; }

echo "== dead journal: accepts are refused with 503 + Retry-After"
curl -fsS -X POST -d 'eio:append:*,eio:probe:*' "$BASE/debug/fsfault" > /dev/null
code=$(curl -sS -o refused.out -D refused-headers.txt -w '%{http_code}' -X POST \
    -d '{"bench":"RADIX","scheme":"l1","scale":"test"}' "$BASE/v1/jobs")
[ "$code" = 503 ] || { echo "FAIL: submit with dead journal got $code, want 503" >&2; cat refused.out >&2; exit 1; }
grep -qi '^retry-after:' refused-headers.txt \
    || { echo "FAIL: 503 without Retry-After" >&2; exit 1; }

echo "== self-heal: clearing the failpoints lets the write probe recover"
curl -fsS -X POST -d '' "$BASE/debug/fsfault" > /dev/null
wait_healthz ok
[ "$(metric vcoma_serve_degraded)" = 0 ] \
    || { echo "FAIL: vcoma_serve_degraded != 0 after heal" >&2; exit 1; }

echo "== healed server persists new work durably again"
K3=$(curl -fsS -X POST -d '{"bench":"RADIX","scheme":"l1","scale":"test"}' "$BASE/v1/jobs" | field key)
wait_state "$K3" done
n=$(find state-deg/artifacts -name '*.json' 2>/dev/null | grep -cv '\.metrics\.json$' || true)
[ "$n" -ge 1 ] || { echo "FAIL: healed server wrote no artifacts" >&2; exit 1; }
kill -TERM $PID
rc=0; wait $PID || rc=$?
[ "$rc" = 143 ] || { echo "FAIL: degraded server drain exited $rc, want 143" >&2; exit 1; }

echo "== op log: the drained server flushed its -fsfault-log trace"
[ -s fsio-ops.jsonl ] || { echo "FAIL: fsio-ops.jsonl missing or empty" >&2; exit 1; }
grep -q '"op":' fsio-ops.jsonl || { echo "FAIL: op log has no ops" >&2; exit 1; }
grep -q 'injected fault' fsio-ops.jsonl \
    || { echo "FAIL: op log recorded no injected faults" >&2; exit 1; }

echo "fsfault smoke: all scenarios passed"
