// Command benchdiff compares two benchmark snapshots (BENCH_core.json or
// BENCH_serve.json) scenario by scenario and fails when the new snapshot
// regresses past a threshold.
//
//	go run ./scripts/benchdiff old.json new.json              # ±10% default
//	go run ./scripts/benchdiff -threshold 25 old.json new.json
//	go run ./scripts/benchdiff -only '^(sim_run_|tlb_access_)' old.json new.json
//
// Scenarios are matched by name; a scenario present in only one snapshot is
// reported but never fails the diff (coverage changes are not regressions).
// With -only, scenarios whose names do not match the regexp are still
// printed (as "skip") but cannot fail the diff — the perf gate uses this to
// enforce only the hot-path scenarios while leaving noisy or informational
// ones advisory. The compared quantity is ns_op (core snapshots) or ms
// (serve snapshots). Exit status: 0 clean, 1 at least one regression beyond
// the threshold.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
)

type scenario struct {
	Name string `json:"name"`
	// Exactly one of these is set depending on the snapshot flavor.
	NsOp   float64 `json:"ns_op"`
	Millis float64 `json:"ms"`
}

func (s scenario) value() (float64, string) {
	if s.NsOp != 0 {
		return s.NsOp, "ns/op"
	}
	return s.Millis, "ms"
}

type snapshot struct {
	Schema    string     `json:"schema"`
	Scenarios []scenario `json:"scenarios"`
}

func load(path string) (snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return snapshot{}, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func main() {
	threshold := flag.Float64("threshold", 10, "regression threshold in percent")
	only := flag.String("only", "", "regexp; only matching scenarios can fail the diff")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-only regexp] old.json new.json")
		os.Exit(2)
	}
	var gated *regexp.Regexp
	if *only != "" {
		var err error
		if gated, err = regexp.Compile(*only); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: bad -only regexp:", err)
			os.Exit(2)
		}
	}
	oldSnap, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newSnap, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if oldSnap.Schema != newSnap.Schema {
		fmt.Fprintf(os.Stderr, "benchdiff: schema mismatch: %q vs %q\n", oldSnap.Schema, newSnap.Schema)
		os.Exit(2)
	}

	byName := make(map[string]scenario, len(oldSnap.Scenarios))
	for _, s := range oldSnap.Scenarios {
		byName[s.Name] = s
	}
	regressions := 0
	for _, n := range newSnap.Scenarios {
		o, ok := byName[n.Name]
		if !ok {
			fmt.Printf("NEW   %-24s (no baseline)\n", n.Name)
			continue
		}
		delete(byName, n.Name)
		ov, unit := o.value()
		nv, _ := n.value()
		if ov == 0 {
			fmt.Printf("SKIP  %-24s baseline is zero\n", n.Name)
			continue
		}
		pct := (nv - ov) / ov * 100
		switch {
		case gated != nil && !gated.MatchString(n.Name):
			// Outside the gated set: informational only, never fails.
			fmt.Printf("skip  %-24s %.0f -> %.0f %s (%+.1f%%, ungated)\n", n.Name, ov, nv, unit, pct)
		case pct > *threshold:
			regressions++
			fmt.Printf("REGR  %-24s %.0f -> %.0f %s (%+.1f%%, threshold %.0f%%)\n", n.Name, ov, nv, unit, pct, *threshold)
		case pct < -*threshold:
			fmt.Printf("FAST  %-24s %.0f -> %.0f %s (%+.1f%%)\n", n.Name, ov, nv, unit, pct)
		default:
			fmt.Printf("ok    %-24s %.0f -> %.0f %s (%+.1f%%)\n", n.Name, ov, nv, unit, pct)
		}
	}
	for name := range byName {
		fmt.Printf("GONE  %-24s (not in new snapshot)\n", name)
	}
	if regressions > 0 {
		fmt.Printf("%d regression(s) beyond ±%.0f%%\n", regressions, *threshold)
		os.Exit(1)
	}
	fmt.Println("no regressions beyond the threshold")
}
