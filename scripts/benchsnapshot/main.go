// Command benchsnapshot measures the vcoma-serve service path end to end —
// in-process HTTP against a real Server — and prints a JSON snapshot for
// BENCH_serve.json. Run via `make bench-snapshot`.
//
// The numbers are wall-clock and machine-dependent; the snapshot is a
// before/after reference for service-layer changes, not a CI gate. The
// invariant fields (sims executed per scenario) are exact.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"vcoma/internal/serve"
	"vcoma/internal/sim"
)

type scenario struct {
	Name string `json:"name"`
	// Millis is the wall time for the scenario; for bursts it covers all
	// requests reaching a terminal state, not just the submits.
	Millis float64 `json:"ms"`
	// Sims is how many simulations actually executed (vs. served from the
	// store or coalesced) — exact, asserted by the scenario.
	Sims uint64 `json:"sims_executed"`
	Note string `json:"note,omitempty"`
}

type snapshot struct {
	Schema    string     `json:"schema"`
	GoVersion string     `json:"go"`
	OS        string     `json:"os"`
	Arch      string     `json:"arch"`
	CPUs      int        `json:"cpus"`
	Scale     string     `json:"scale"`
	Scenarios []scenario `json:"scenarios"`
}

type client struct {
	base string
}

func (c client) submit(body string) (key, state string, err error) {
	resp, err := http.Post(c.base+"/v1/jobs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		return "", "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		data, _ := io.ReadAll(resp.Body)
		return "", "", fmt.Errorf("submit: %s: %s", resp.Status, data)
	}
	var out struct {
		Key   string `json:"key"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", "", err
	}
	return out.Key, out.State, nil
}

func (c client) waitDone(key string) error {
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(c.base + "/v1/jobs/" + key)
		if err != nil {
			return err
		}
		var st struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch st.State {
		case "done":
			return nil
		case "failed", "canceled", "shed":
			return fmt.Errorf("job %s ended %s", key, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("job %s timed out", key)
}

func (c client) simsExecuted() (uint64, error) {
	resp, err := http.Get(c.base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	var n uint64
	for _, line := range bytes.Split(data, []byte("\n")) {
		if _, err := fmt.Sscanf(string(line), "vcoma_serve_sims_executed %d", &n); err == nil {
			return n, nil
		}
	}
	return 0, fmt.Errorf("vcoma_serve_sims_executed not exposed")
}

func cell(scheme string, seed uint64) string {
	return fmt.Sprintf(`{"bench":"RADIX","scheme":%q,"scale":"test","seed":%d}`, scheme, seed)
}

func run() error {
	dir, err := os.MkdirTemp("", "vcoma-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	srv, err := serve.New(serve.Options{
		StateDir: dir,
		Workers:  2,
		MaxQueue: 64,
		Budget:   sim.Budget{MaxWall: 5 * time.Minute},
	})
	if err != nil {
		return err
	}
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	srv.Start(ctx)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown()
	defer stop()
	c := client{base: ts.URL}

	var snap snapshot
	snap.Schema = "vcoma-bench-serve-v1"
	snap.GoVersion = runtime.Version()
	snap.OS = runtime.GOOS
	snap.Arch = runtime.GOARCH
	snap.CPUs = runtime.NumCPU()
	snap.Scale = "test"

	measure := func(name, note string, wantSims uint64, body func() error) error {
		before, err := c.simsExecuted()
		if err != nil {
			return err
		}
		start := time.Now()
		if err := body(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		after, err := c.simsExecuted()
		if err != nil {
			return err
		}
		if got := after - before; got != wantSims {
			return fmt.Errorf("%s: executed %d sims, want %d", name, got, wantSims)
		}
		snap.Scenarios = append(snap.Scenarios, scenario{Name: name, Millis: ms, Sims: wantSims, Note: note})
		return nil
	}

	// Cold submit: a fresh cell pays for the full simulation.
	for _, scheme := range []string{"l3", "vcoma"} {
		scheme := scheme
		err := measure("cold_submit_"+scheme, "fresh cell, full simulation", 1, func() error {
			key, _, err := c.submit(cell(scheme, 0))
			if err != nil {
				return err
			}
			return c.waitDone(key)
		})
		if err != nil {
			return err
		}
	}

	// Warm hit: the same cell again is served from the artifact store.
	if err := measure("warm_store_hit", "same cell resubmitted", 0, func() error {
		_, state, err := c.submit(cell("vcoma", 0))
		if err != nil {
			return err
		}
		if state != "done" {
			return fmt.Errorf("warm submit state %q, want done", state)
		}
		return nil
	}); err != nil {
		return err
	}

	// Coalesced burst: 8 concurrent key-equal submits share one simulation.
	if err := measure("coalesced_burst_8", "8 concurrent key-equal clients", 1, func() error {
		var wg sync.WaitGroup
		errs := make([]error, 8)
		for i := range errs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				key, _, err := c.submit(cell("l0", 77))
				if err == nil {
					err = c.waitDone(key)
				}
				errs[i] = err
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// Queue drain: 6 distinct cells through 2 workers, submit to all-done.
	if err := measure("queue_drain_6x2", "6 distinct cells, 2 workers", 6, func() error {
		var keys []string
		for seed := uint64(100); seed < 106; seed++ {
			key, _, err := c.submit(cell("l1", seed))
			if err != nil {
				return err
			}
			keys = append(keys, key)
		}
		for _, key := range keys {
			if err := c.waitDone(key); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnapshot:", err)
		os.Exit(1)
	}
}
