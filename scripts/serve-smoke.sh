#!/bin/sh
# Serve smoke: exercise vcoma-serve end to end through real HTTP at test
# scale. Proves the service acceptance path: one submit's trace id shows up
# in the 202 header/body, the span tree, the persisted Perfetto file and
# the structured log; /metrics is well-formed Prometheus text exposition;
# a SIGTERM mid-job drains with exit 143 and leaves the job pending in the
# journal, a restarted server resumes it and serves a result byte-identical
# to an uninterrupted run, repeat submits coalesce onto the stored artifact
# instead of re-simulating, and an over-budget flood is rejected with
# 429 + Retry-After.
#
# Runs in a scratch directory; pass one as $1 (default: ./serve-smoke.tmp).
set -eu

work=${1:-serve-smoke.tmp}
rm -rf "$work"
mkdir -p "$work/bin"
go build -o "$work/bin" ./cmd/...
cd "$work"

ADDR=127.0.0.1:8391
BASE=http://$ADDR
BODY='{"bench":"RADIX","scheme":"vcoma","scale":"test"}'

# wait_http <url>: poll until the endpoint answers.
wait_http() {
    for _ in $(seq 1 100); do
        if curl -fsS "$1" > /dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "FAIL: $1 never came up" >&2
    return 1
}

# field <name>: extract a string field from JSON on stdin.
field() {
    sed -n 's/.*"'"$1"'": *"\([^"]*\)".*/\1/p' | head -n 1
}

# wait_state <key> <state>: poll a job until it reaches the state.
wait_state() {
    for _ in $(seq 1 300); do
        st=$(curl -fsS "$BASE/v1/jobs/$1" | field state)
        [ "$st" = "$2" ] && return 0
        sleep 0.1
    done
    echo "FAIL: job $1 never reached $2 (last: $st)" >&2
    return 1
}

echo "== reference: uninterrupted server computes the cell"
bin/vcoma-serve -addr "$ADDR" -state state-ref -workers 1 -log-format json > ref-server.log 2>&1 &
REF=$!
wait_http "$BASE/healthz"
curl -fsS -D submit-headers.txt -X POST -d "$BODY" "$BASE/v1/jobs" > submit.json
KEY=$(field key < submit.json)
[ -n "$KEY" ] || { echo "FAIL: submit returned no key" >&2; exit 1; }
TID=$(field trace_id < submit.json)
[ -n "$TID" ] || { echo "FAIL: submit returned no trace_id" >&2; exit 1; }
grep -qi "^x-vcoma-trace: *$TID" submit-headers.txt \
    || { echo "FAIL: X-Vcoma-Trace header missing or != body trace_id" >&2; exit 1; }
wait_state "$KEY" done
curl -fsS "$BASE/v1/jobs/$KEY/result" > ref.json

echo "== tracing: the accept's trace id names the span tree and log lines"
curl -fsS "$BASE/v1/jobs/$KEY/trace" > trace.json
grep -q "\"trace_id\": *\"$TID\"" trace.json \
    || { echo "FAIL: span tree trace_id != submit trace_id $TID" >&2; cat trace.json >&2; exit 1; }
for span in request admit journal-fsync queue-wait run simulate; do
    grep -q "\"name\": *\"$span\"" trace.json \
        || { echo "FAIL: span tree missing $span span" >&2; cat trace.json >&2; exit 1; }
done
[ -f "state-ref/traces/$KEY.trace.json" ] \
    || { echo "FAIL: no Perfetto trace file persisted" >&2; exit 1; }
grep -q "$TID" "state-ref/traces/$KEY.trace.json" \
    || { echo "FAIL: Perfetto file lacks the trace id" >&2; exit 1; }
grep -q "\"trace_id\":\"$TID\"" ref-server.log \
    || { echo "FAIL: server log lines lack the trace id" >&2; exit 1; }

echo "== metrics: Prometheus exposition is well-formed"
curl -fsS "$BASE/metrics" > metrics.txt
grep -q '^# HELP vcoma_serve_sims_executed ' metrics.txt \
    || { echo "FAIL: /metrics missing HELP line" >&2; exit 1; }
grep -q '^# TYPE vcoma_serve_sims_executed counter$' metrics.txt \
    || { echo "FAIL: /metrics missing TYPE line" >&2; exit 1; }
grep -q '^# TYPE vcoma_serve_lat_run_ms histogram$' metrics.txt \
    || { echo "FAIL: /metrics missing histogram TYPE" >&2; exit 1; }
grep -q '^vcoma_serve_lat_run_ms_bucket{le="+Inf"} ' metrics.txt \
    || { echo "FAIL: /metrics histogram lacks +Inf bucket" >&2; exit 1; }
grep -q '^vcoma_serve_lat_run_ms_sum ' metrics.txt \
    || { echo "FAIL: /metrics histogram lacks _sum" >&2; exit 1; }
grep -q '^vcoma_serve_lat_run_ms_count ' metrics.txt \
    || { echo "FAIL: /metrics histogram lacks _count" >&2; exit 1; }

echo "== coalescing: a repeat submit is served from the store, no re-run"
st=$(curl -fsS -X POST -d "$BODY" "$BASE/v1/jobs" | field state)
[ "$st" = done ] || { echo "FAIL: repeat submit state $st" >&2; exit 1; }
sims=$(curl -fsS "$BASE/metrics" | sed -n 's|^vcoma_serve_sims_executed ||p')
[ "$sims" = 1 ] || { echo "FAIL: sims.executed=$sims, want 1" >&2; exit 1; }

echo "== SIGTERM on idle server drains with exit 143"
kill -TERM $REF
rc=0; wait $REF || rc=$?
[ "$rc" = 143 ] || { echo "FAIL: idle drain exited $rc, want 143" >&2; exit 1; }

echo "== chaos server: SIGTERM mid-job leaves the journal pending"
bin/vcoma-serve -addr "$ADDR" -state state-chaos -workers 1 -chaos hang:serve > chaos-server.log 2>&1 &
PID=$!
wait_http "$BASE/healthz"
K2=$(curl -fsS -X POST -d "$BODY" "$BASE/v1/jobs" | field key)
[ "$K2" = "$KEY" ] || { echo "FAIL: same request keyed differently ($K2 vs $KEY)" >&2; exit 1; }
wait_state "$K2" running
kill -TERM $PID
rc=0; wait $PID || rc=$?
[ "$rc" = 143 ] || { echo "FAIL: mid-job drain exited $rc, want 143" >&2; exit 1; }
grep -q '"op":"accept"' state-chaos/serve-journal.json \
    || { echo "FAIL: journal lost the in-flight job" >&2; exit 1; }

echo "== restart resumes the job and serves byte-identical bytes"
bin/vcoma-serve -addr "$ADDR" -state state-chaos -workers 1 > resume-server.log 2>&1 &
PID=$!
wait_http "$BASE/healthz"
wait_state "$K2" done
curl -fsS "$BASE/v1/jobs/$K2/result" > res.json
kill -TERM $PID
rc=0; wait $PID || rc=$?
[ "$rc" = 143 ] || { echo "FAIL: resume server drain exited $rc, want 143" >&2; exit 1; }
cmp ref.json res.json || { echo "FAIL: resumed result differs from uninterrupted run" >&2; exit 1; }

echo "== admission control: over-budget flood is 429'd, Retry-After set"
bin/vcoma-serve -addr "$ADDR" -state state-flood -workers 1 -queue 2 -chaos hang:serve > flood-server.log 2>&1 &
PID=$!
wait_http "$BASE/healthz"
# One running (held by chaos) + two queued fill the budget. Wait for the
# first job to be dequeued so the next two land in the queue, not a 429.
K3=$(curl -fsS -X POST -d '{"bench":"RADIX","scheme":"l0","scale":"test","seed":1}' \
    "$BASE/v1/jobs" | field key)
wait_state "$K3" running
for seed in 2 3; do
    curl -fsS -X POST -d '{"bench":"RADIX","scheme":"l0","scale":"test","seed":'"$seed"'}' \
        "$BASE/v1/jobs" > /dev/null
done
for seed in 4 5 6; do
    code=$(curl -sS -o flood.out -w '%{http_code}' -X POST \
        -d '{"bench":"RADIX","scheme":"l0","scale":"test","seed":'"$seed"'}' "$BASE/v1/jobs")
    [ "$code" = 429 ] || { echo "FAIL: flood submit $seed got $code, want 429" >&2; cat flood.out >&2; exit 1; }
done
curl -sSi -X POST -d '{"bench":"RADIX","scheme":"l0","scale":"test","seed":7}' "$BASE/v1/jobs" \
    | grep -qi '^retry-after:' || { echo "FAIL: 429 without Retry-After" >&2; exit 1; }
kill -TERM $PID
rc=0; wait $PID || rc=$?
[ "$rc" = 143 ] || { echo "FAIL: flood server drain exited $rc, want 143" >&2; exit 1; }

echo "serve smoke: all scenarios passed"
