// Command benchcore measures the simulator core's hot paths — the TLB
// access loop, the SLC read path, the trace generator and the end-to-end
// engine per scheme — via in-process testing.Benchmark, and prints a JSON
// snapshot for BENCH_core.json. Run via `make bench-snapshot-core`; compare
// two snapshots with `go run ./scripts/benchdiff old.json new.json`.
//
// The numbers are wall-clock and machine-dependent; each scenario records
// the fastest of several repetitions so the snapshot is stable enough for
// the `make perf-gate` CI check (>10% ns_op regression on the sim_run_* and
// tlb_access_* scenarios fails the build). The metric fields (events per
// run, refs per run) are exact and deterministic.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"vcoma"
	"vcoma/internal/addr"
	"vcoma/internal/cache"
	"vcoma/internal/config"
	"vcoma/internal/experiments"
	"vcoma/internal/prng"
	"vcoma/internal/tlb"
	"vcoma/internal/trace"
)

type scenario struct {
	Name string `json:"name"`
	// NsOp is testing.Benchmark's ns/op for the scenario's inner loop.
	NsOp float64 `json:"ns_op"`
	// AllocsOp/BytesOp are allocations per op — 0 for the steady-state
	// paths (TLB, cache), nonzero where a run builds fresh state.
	AllocsOp int64   `json:"allocs_op"`
	BytesOp  int64   `json:"bytes_op"`
	Metrics  float64 `json:"metric,omitempty"`
	// MetricName labels Metrics (events/run, refs/run, ...).
	MetricName string `json:"metric_name,omitempty"`
	Note       string `json:"note,omitempty"`
}

type snapshot struct {
	Schema    string     `json:"schema"`
	GoVersion string     `json:"go"`
	OS        string     `json:"os"`
	Arch      string     `json:"arch"`
	CPUs      int        `json:"cpus"`
	Scale     string     `json:"scale"`
	Scenarios []scenario `json:"scenarios"`
}

// measureReps is how many times each scenario is benchmarked; the snapshot
// records the fastest repetition. Wall-clock noise on shared machines is
// one-sided (interference only ever slows a run down), so min-of-N is the
// stable estimator — single-shot numbers drift ±10% run to run, which would
// eat the whole perf-gate threshold.
const measureReps = 5

func measure(name, note string, f func(b *testing.B)) scenario {
	s := scenario{Name: name, Note: note}
	for rep := 0; rep < measureReps; rep++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			f(b)
		})
		// Float division, not r.NsPerOp(): integer truncation turns a
		// 2.4-vs-2.6ns rerun of the sub-10ns TLB scenarios into a phantom
		// ±50% swing at the perf gate.
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if rep == 0 || ns < s.NsOp {
			s.NsOp = ns
			s.AllocsOp = r.AllocsPerOp()
			s.BytesOp = r.AllocedBytesPerOp()
		}
	}
	return s
}

func run() error {
	var snap snapshot
	snap.Schema = "vcoma-bench-core-v1"
	snap.GoVersion = runtime.Version()
	snap.OS = runtime.GOOS
	snap.Arch = runtime.GOARCH
	snap.CPUs = runtime.NumCPU()
	snap.Scale = "test"

	cfg := experiments.ConfigForScale(vcoma.Baseline(), vcoma.ScaleTest)
	bench, err := vcoma.BenchmarkByName("RADIX", vcoma.ScaleTest)
	if err != nil {
		return err
	}

	// End-to-end engine per scheme: machine build + full simulation of the
	// RADIX test-scale workload. events/run is exact — a drifting value
	// means the change is not observational.
	for _, sch := range []config.Scheme{config.L0TLB, config.VCOMA} {
		sch := sch
		var events float64
		s := measure(fmt.Sprintf("sim_run_%v", sch), "end-to-end RADIX, machine build + simulate", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := vcoma.Run(cfg.WithScheme(sch), bench)
				if err != nil {
					b.Fatal(err)
				}
				events = float64(res.Sim.Events)
			}
		})
		s.Metrics, s.MetricName = events, "events/run"
		snap.Scenarios = append(snap.Scenarios, s)
	}

	// The same RADIX runs through the parallel round engine at 4 shards:
	// burst/rewind/drain plus the parity-preserving merged replay. events/run
	// must equal the matching sequential scenario exactly (cycle identity);
	// ns_op is honest wall-clock on whatever CPUs the host offers — the
	// snapshot's cpus field records how much parallelism was available.
	for _, sch := range []config.Scheme{config.L0TLB, config.VCOMA} {
		sch := sch
		var events float64
		s := measure(fmt.Sprintf("sim_run_par4_%v", sch), "end-to-end RADIX, 4-shard parallel round engine", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := vcoma.RunParallel(cfg.WithScheme(sch), bench, 4)
				if err != nil {
					b.Fatal(err)
				}
				events = float64(res.Sim.Events)
			}
		})
		s.Metrics, s.MetricName = events, "events/run"
		snap.Scenarios = append(snap.Scenarios, s)
	}

	// Synchronization-heavy end-to-end run: BARNES takes per-leaf locks and
	// hits many barriers, so this scenario exercises the dense lock/barrier
	// tables and the scheduler's wakeup path, which the RADIX runs above
	// barely touch.
	{
		syncBench, err := vcoma.BenchmarkByName("BARNES", vcoma.ScaleTest)
		if err != nil {
			return err
		}
		var events float64
		s := measure("sim_run_sync_BARNES", "end-to-end BARNES (lock/barrier heavy), machine build + simulate", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := vcoma.Run(cfg.WithScheme(config.L0TLB), syncBench)
				if err != nil {
					b.Fatal(err)
				}
				events = float64(res.Sim.Events)
			}
		})
		s.Metrics, s.MetricName = events, "events/run"
		snap.Scenarios = append(snap.Scenarios, s)
	}

	// TLB access loop, fully-associative and direct-mapped: the innermost
	// per-reference operation of every translation scheme.
	snap.Scenarios = append(snap.Scenarios, measure("tlb_access_fa", "64-entry fully-associative, 1024-page working set", func(b *testing.B) {
		buf := tlb.NewFullyAssoc(64, 1)
		rng := prng.New(2)
		pages := make([]uint64, 1024)
		for i := range pages {
			pages[i] = rng.Uint64n(256)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Access(addr.PageNum(pages[i%len(pages)]))
		}
	}))
	// Hot-hit variant: a working set that fits entirely in the buffer, so
	// every access after warmup takes the last-page memo or probe-hit fast
	// path — the common case inside a simulation's reference bursts.
	snap.Scenarios = append(snap.Scenarios, measure("tlb_access_fa_hot", "64-entry fully-associative, 32-page resident working set", func(b *testing.B) {
		buf := tlb.NewFullyAssoc(64, 1)
		rng := prng.New(4)
		pages := make([]uint64, 1024)
		for i := range pages {
			pages[i] = rng.Uint64n(32)
		}
		for _, p := range pages {
			buf.Access(addr.PageNum(p))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Access(addr.PageNum(pages[i%len(pages)]))
		}
	}))
	snap.Scenarios = append(snap.Scenarios, measure("tlb_access_dm", "64-entry direct-mapped, 1024-page working set", func(b *testing.B) {
		buf := tlb.NewDirectMapped(64, 0)
		rng := prng.New(3)
		pages := make([]uint64, 1024)
		for i := range pages {
			pages[i] = rng.Uint64n(256)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Access(addr.PageNum(pages[i%len(pages)]))
		}
	}))

	// SLC read path: the attraction-memory lookup behind every reference.
	snap.Scenarios = append(snap.Scenarios, measure("cache_read", "baseline SLC, 4096-address working set", func(b *testing.B) {
		c := cache.New(config.Baseline().SLC)
		rng := prng.New(1)
		addrs := make([]uint64, 4096)
		for i := range addrs {
			addrs[i] = rng.Uint64n(1 << 20)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Read(addrs[i%len(addrs)])
		}
	}))

	// Trace generator: coroutine-style reference production, 100k refs per
	// op. refs/run is exact.
	{
		const refs = 100000
		s := measure("generator_throughput", "100k-reference synthetic stream", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := trace.NewGenerator(func(e *trace.Emitter) {
					for j := 0; j < refs; j++ {
						e.Read(0x10000)
					}
				})
				n := 0
				for {
					if _, ok := g.Next(); !ok {
						break
					}
					n++
				}
				if n != refs {
					b.Fatal("short stream")
				}
			}
		})
		s.Metrics, s.MetricName = refs, "refs/run"
		snap.Scenarios = append(snap.Scenarios, s)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcore:", err)
		os.Exit(1)
	}
}
