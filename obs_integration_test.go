package vcoma

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"vcoma/internal/experiments"
	"vcoma/internal/obs"
)

// obsRun is a RADIX test-scale instrumented run shared by the acceptance
// checks below.
func obsRun(t *testing.T, cfg Config) (*RunResult, *Observer) {
	t.Helper()
	bench, err := BenchmarkByName("RADIX", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	o := NewObserver(ObserverOptions{MetricsInterval: 10000, TraceCapacity: 1 << 16})
	res, err := RunInstrumented(cfg, bench, o)
	if err != nil {
		t.Fatal(err)
	}
	return res, o
}

// TestObsFinalSampleMatchesAggregates checks the sampler's contract: the
// final sample of every cumulative per-node counter equals the machine's
// post-run aggregate, so the time series and the summary stats never
// disagree.
func TestObsFinalSampleMatchesAggregates(t *testing.T) {
	for _, sch := range []Scheme{L0TLB, VCOMA} {
		t.Run(fmt.Sprint(sch), func(t *testing.T) {
			cfg := benchConfig().WithScheme(sch)
			res, o := obsRun(t, cfg)
			ts := o.Sampler.Export()
			tot := res.Machine.TotalStats()

			sum := func(metric string) float64 {
				var s float64
				for i := 0; i < cfg.Geometry.Nodes(); i++ {
					v, ok := ts.Last(fmt.Sprintf("node%02d/%s", i, metric))
					if !ok {
						t.Fatalf("no series for node%02d/%s", i, metric)
					}
					s += v
				}
				return s
			}
			if got := sum("refs"); got != float64(tot.Refs) {
				t.Errorf("final refs sample %v, aggregate %d", got, tot.Refs)
			}
			if got := sum("tlb.misses"); got != float64(tot.TLBMisses) {
				t.Errorf("final tlb.misses sample %v, aggregate %d", got, tot.TLBMisses)
			}
			if got := sum("trans.cycles"); got != float64(tot.TransCycles) {
				t.Errorf("final trans.cycles sample %v, aggregate %d", got, tot.TransCycles)
			}
			// The final sample is stamped at the run's execution time.
			if ts.Cycles[len(ts.Cycles)-1] != res.Sim.ExecTime {
				t.Errorf("final sample at cycle %d, exec time %d",
					ts.Cycles[len(ts.Cycles)-1], res.Sim.ExecTime)
			}
		})
	}
}

// chromeEvent mirrors the trace-event fields the viewer requires.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   *uint64 `json:"ts"`
	Dur  uint64  `json:"dur"`
	Pid  *int    `json:"pid"`
	Tid  *int    `json:"tid"`
}

// TestObsTraceJSONStructure validates the exported Chrome trace end to end:
// well-formed JSON, required fields on every event, and non-decreasing
// timestamps within each (pid, tid) track — the properties Perfetto needs to
// render the file at all.
func TestObsTraceJSONStructure(t *testing.T) {
	_, o := obsRun(t, benchConfig())
	var buf bytes.Buffer
	if err := o.Tracer.WriteJSON(&buf, "node"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	lastTs := make(map[[2]int]uint64)
	events := 0
	for i, e := range doc.TraceEvents {
		if e.Ph == "" || e.Ts == nil || e.Pid == nil || e.Tid == nil {
			t.Fatalf("event %d missing required fields: %+v", i, e)
		}
		switch e.Ph {
		case "M":
			continue // metadata carries no category
		case "X", "i":
		default:
			t.Fatalf("event %d has unknown phase %q", i, e.Ph)
		}
		if e.Name == "" || e.Cat == "" {
			t.Fatalf("event %d missing name/cat: %+v", i, e)
		}
		track := [2]int{*e.Pid, *e.Tid}
		if *e.Ts < lastTs[track] {
			t.Fatalf("event %d (%s) goes back in time on track %v: %d < %d",
				i, e.Name, track, *e.Ts, lastTs[track])
		}
		lastTs[track] = *e.Ts
		events++
	}
	if events == 0 {
		t.Fatal("trace holds only metadata")
	}
}

// TestObsTraceCategoryFilter checks that a category filter drops everything
// outside the requested set before it reaches the ring buffer.
func TestObsTraceCategoryFilter(t *testing.T) {
	bench, err := BenchmarkByName("RADIX", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	o := NewObserver(ObserverOptions{TraceCapacity: 1 << 14, TraceCategories: "sync"})
	if _, err := RunInstrumented(benchConfig(), bench, o); err != nil {
		t.Fatal(err)
	}
	evs := o.Tracer.Events()
	if len(evs) == 0 {
		t.Fatal("sync-only trace is empty")
	}
	for _, e := range evs {
		if e.Cat != "sync" {
			t.Fatalf("category filter leaked %q event %q", e.Cat, e.Name)
		}
	}
}

// TestObsInstrumentationIsObservational checks the layer's core contract:
// attaching an observer changes nothing about the simulation itself.
func TestObsInstrumentationIsObservational(t *testing.T) {
	bench, err := BenchmarkByName("RADIX", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(benchConfig(), bench)
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := obsRun(t, benchConfig())
	if plain.Sim.ExecTime != inst.Sim.ExecTime || plain.Sim.Events != inst.Sim.Events {
		t.Fatalf("instrumentation changed the run: exec %d vs %d, events %d vs %d",
			plain.Sim.ExecTime, inst.Sim.ExecTime, plain.Sim.Events, inst.Sim.Events)
	}
	if plain.Machine.TotalStats() != inst.Machine.TotalStats() {
		t.Fatal("instrumentation changed machine counters")
	}
}

// TestObsSpanInstrumentationIsObservational extends the contract to request
// tracing: a span riding the context through the experiment pass — the
// serve path threads one through every job — must leave the simulation
// cycle-identical, while still capturing the build and simulate phases.
func TestObsSpanInstrumentationIsObservational(t *testing.T) {
	bench, err := BenchmarkByName("RADIX", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := experiments.SimulateCtx(context.Background(), benchConfig(), bench, ScaleTest)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTrace(obs.NewTraceID())
	root := tr.StartSpan("request")
	ctx := obs.WithSpan(obs.WithTrace(context.Background(), tr), root)
	traced, err := experiments.SimulateCtx(ctx, benchConfig(), bench, ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	pj, _ := json.Marshal(plain)
	tj, _ := json.Marshal(traced)
	if !bytes.Equal(pj, tj) {
		t.Fatalf("span instrumentation changed the run:\nplain:  %s\ntraced: %s", pj, tj)
	}

	tree := tr.Export()
	names := map[string]bool{}
	var walk func(nodes []obs.SpanNode)
	walk = func(nodes []obs.SpanNode) {
		for _, n := range nodes {
			names[n.Name] = true
			walk(n.Children)
		}
	}
	walk(tree.Spans)
	for _, want := range []string{"request", "build", "simulate"} {
		if !names[want] {
			t.Errorf("traced pass produced no %s span (has %v)", want, names)
		}
	}
}
