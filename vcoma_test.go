package vcoma

import (
	"testing"

	"vcoma/internal/experiments"
	"vcoma/internal/tlb"
)

// testConfig is the scaled-down machine the integration tests run on.
func testConfig() Config {
	return experiments.ConfigForScale(Baseline(), ScaleTest)
}

func TestAllSchemesRunAllBenchmarks(t *testing.T) {
	for _, bench := range Benchmarks(ScaleTest) {
		for _, sch := range Schemes() {
			res, err := Run(testConfig().WithScheme(sch), bench)
			if err != nil {
				t.Fatalf("%s/%v: %v", bench.Name(), sch, err)
			}
			if res.ExecTime() == 0 {
				t.Fatalf("%s/%v: zero execution time", bench.Name(), sch)
			}
			if err := res.Machine.CheckInvariants(); err != nil {
				t.Fatalf("%s/%v: %v", bench.Name(), sch, err)
			}
			ts := res.Machine.TotalStats()
			if ts.Refs == 0 {
				t.Fatalf("%s/%v: no references", bench.Name(), sch)
			}
			tot := res.Sim.TotalProc()
			if ts.Refs != tot.Refs {
				t.Fatalf("%s/%v: machine saw %d refs, engine issued %d",
					bench.Name(), sch, ts.Refs, tot.Refs)
			}
		}
	}
}

func TestSchemesSeeSameReferenceStream(t *testing.T) {
	// The reference streams are deterministic, so every scheme must
	// process exactly the same references — the property the one-pass
	// observer methodology relies on.
	bench, _ := BenchmarkByName("FFT", ScaleTest)
	var refs []uint64
	for _, sch := range Schemes() {
		res, err := Run(testConfig().WithScheme(sch), bench)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, res.Machine.TotalStats().Refs)
	}
	for i := 1; i < len(refs); i++ {
		if refs[i] != refs[0] {
			t.Fatalf("scheme %v saw %d refs, scheme %v saw %d",
				Schemes()[i], refs[i], Schemes()[0], refs[0])
		}
	}
}

func TestVCOMABeatsL0OnTranslationOverhead(t *testing.T) {
	// The paper's central claim, end to end: with equal 8-entry buffers,
	// V-COMA's translation overhead is far below L0-TLB's on every
	// benchmark.
	for _, bench := range Benchmarks(ScaleTest) {
		var trans [2]uint64
		for i, sch := range []Scheme{L0TLB, VCOMA} {
			res, err := Run(testConfig().WithScheme(sch).WithTLB(8, FullyAssoc), bench)
			if err != nil {
				t.Fatal(err)
			}
			trans[i] = res.Sim.TotalProc().Trans
		}
		if trans[1] >= trans[0] {
			t.Errorf("%s: V-COMA translation %d not below L0-TLB %d",
				bench.Name(), trans[1], trans[0])
		}
	}
}

func TestFilteringEffect(t *testing.T) {
	// Higher translation tap points see fewer requests: the filtering
	// effect. Compare request counts at the L0 and L3 tap points.
	bench, _ := BenchmarkByName("BARNES", ScaleTest)
	specs := []tlb.Spec{{Entries: 8, Org: FullyAssoc}}
	var acc []uint64
	for _, sch := range []Scheme{L0TLB, L1TLB, L3TLB} {
		res, err := RunObserved(testConfig().WithScheme(sch), bench, specs)
		if err != nil {
			t.Fatal(err)
		}
		acc = append(acc, tlb.Merge(res.Machine.ObserverBanks()).TotalAccesses())
	}
	if !(acc[0] > acc[1] && acc[1] > acc[2]) {
		t.Fatalf("no filtering: L0=%d L1=%d L3=%d", acc[0], acc[1], acc[2])
	}
}

func TestSharingEffect(t *testing.T) {
	// V-COMA's DLB entries are not replicated: machine-wide cold misses
	// equal the page count once, not once per node. Compare total cold
	// misses (largest buffer) between L3-TLB and V-COMA.
	bench, _ := BenchmarkByName("FFT", ScaleTest)
	spec := tlb.Spec{Entries: 512, Org: FullyAssoc}
	var cold []uint64
	for _, sch := range []Scheme{L3TLB, VCOMA} {
		res, err := RunObserved(testConfig().WithScheme(sch), bench, []tlb.Spec{spec})
		if err != nil {
			t.Fatal(err)
		}
		cold = append(cold, tlb.Merge(res.Machine.ObserverBanks()).TotalMisses(spec))
	}
	if cold[1]*2 > cold[0] {
		t.Fatalf("no sharing effect: L3 cold=%d, V-COMA cold=%d", cold[0], cold[1])
	}
}

func TestPressureProfileUniform(t *testing.T) {
	// Figure 11: the virtual layout spreads pressure across global page
	// sets without tuning. Max pressure within 10x of mean (the paper's
	// profiles are nearly flat; small scale adds granularity noise).
	bench, _ := BenchmarkByName("OCEAN", ScaleTest)
	res, err := Run(testConfig().WithScheme(VCOMA), bench)
	if err != nil {
		t.Fatal(err)
	}
	prof := res.PressureProfile()
	var sum, maxV float64
	for _, v := range prof {
		sum += v
		if v > maxV {
			maxV = v
		}
	}
	mean := sum / float64(len(prof))
	if mean == 0 {
		t.Fatal("empty pressure profile")
	}
	if maxV > 10*mean {
		t.Fatalf("pressure wildly uneven: max=%f mean=%f", maxV, mean)
	}
}

func TestRunResultAccessors(t *testing.T) {
	bench, _ := BenchmarkByName("RADIX", ScaleTest)
	res, err := Run(testConfig(), bench)
	if err != nil {
		t.Fatal(err)
	}
	if res.SharedMB() <= 0 {
		t.Fatal("shared MB")
	}
	if len(res.Layout().Regions()) == 0 {
		t.Fatal("no regions")
	}
}

func TestBenchmarkNames(t *testing.T) {
	if len(BenchmarkNames()) != 6 {
		t.Fatal("names")
	}
	if _, err := BenchmarkByName("nope", ScaleTest); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestPublicObserverAPI(t *testing.T) {
	// The facade must let external users run the observer methodology
	// without importing internal packages.
	bench, _ := BenchmarkByName("RADIX", ScaleTest)
	specs := []TLBSpec{{Entries: 8, Org: FullyAssoc}}
	res, err := RunObserved(testConfig(), bench, specs)
	if err != nil {
		t.Fatal(err)
	}
	merged := MergeBanks(res.Machine.ObserverBanks())
	if merged.TotalAccesses() == 0 {
		t.Fatal("no observations")
	}
	if len(PaperTLBSizes()) != 7 || len(PaperTLBSpecs()) != 14 {
		t.Fatal("paper grids wrong")
	}
}
