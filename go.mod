module vcoma

go 1.22
