// raytrace-layout: the paper's Figure 10 RAYTRACE experiment as a layout
// case study. In a machine running on virtual addresses, the programmer's
// padding decisions directly steer attraction-memory placement: SPLASH-2
// raytrace pads its per-processor ray stacks to 32 KB multiples, stacking
// every processor's hot pages into the same global page sets under V-COMA.
// Re-padding to one 4 KB page ("V2") spreads the colours. This example runs
// the physical-COMA baseline and both V-COMA layouts and prints the
// execution-time breakdowns side by side.
package main

import (
	"fmt"
	"log"

	"vcoma"
	"vcoma/internal/experiments"
	"vcoma/internal/report"
)

func main() {
	scale := vcoma.ScaleSmall
	cfg := experiments.ConfigForScale(vcoma.Baseline(), scale)

	type variant struct {
		label  string
		scheme vcoma.Scheme
		align  uint64
	}
	variants := []variant{
		{"physical COMA, TLB/8", vcoma.L0TLB, 32 << 10},
		{"V-COMA, DLB/8, 32 KB padding", vcoma.VCOMA, 32 << 10},
		{"V-COMA, DLB/8, 4 KB padding (V2)", vcoma.VCOMA, cfg.Geometry.PageSize()},
	}

	var rows [][]string
	var base float64
	for _, v := range variants {
		p := scale.Raytrace()
		p.StackAlign = v.align
		bench := vcoma.NewRaytrace(p)
		c := cfg.WithScheme(v.scheme).WithTLB(8, vcoma.FullyAssoc)
		b, err := experiments.Timed(c, bench, v.label)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = b.Total()
		}
		rows = append(rows, []string{
			v.label,
			report.Count(b.Busy), report.Count(b.Sync), report.Count(b.Local),
			report.Count(b.Remote), report.Count(b.Trans),
			fmt.Sprintf("%.3f", b.Total()/base),
		})
	}
	fmt.Println("RAYTRACE execution-time breakdown (cycles per processor):")
	fmt.Println(report.Table(
		[]string{"configuration", "busy", "sync", "loc-stall", "rem-stall", "translation", "vs TLB/8"},
		rows))
	fmt.Println("The 32 KB-aligned stacks concentrate every processor's hot pages into the")
	fmt.Println("same global page sets; realigning the padding to one page spreads them —")
	fmt.Println("a layout optimization only a virtual-address machine exposes (paper §5.3, §6).")
}
