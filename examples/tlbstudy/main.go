// tlbstudy: size a translation buffer for a workload before committing to
// hardware. One simulation pass measures every candidate (size,
// organization) pair at once through an observer bank — the methodology
// behind the paper's Figure 8 — and prints the miss curve plus the point of
// diminishing returns.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"vcoma"
	"vcoma/internal/experiments"
	"vcoma/internal/report"
	"vcoma/internal/tlb"
)

func main() {
	benchName := flag.String("bench", "FFT", "workload: RADIX, FFT, FMM, OCEAN, RAYTRACE, BARNES")
	schemeStr := flag.String("scheme", "vcoma", "translation scheme: l0, l1, l2, l3, vcoma")
	flag.Parse()

	scheme := map[string]vcoma.Scheme{
		"l0": vcoma.L0TLB, "l1": vcoma.L1TLB, "l2": vcoma.L2TLB,
		"l3": vcoma.L3TLB, "vcoma": vcoma.VCOMA,
	}[strings.ToLower(*schemeStr)]

	cfg := experiments.ConfigForScale(vcoma.Baseline(), vcoma.ScaleSmall).
		WithScheme(scheme).WithTLB(512, vcoma.FullyAssoc)
	bench, err := vcoma.BenchmarkByName(strings.ToUpper(*benchName), vcoma.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}

	// One pass, every candidate size in both organizations.
	res, err := vcoma.RunObserved(cfg, bench, tlb.PaperSpecs())
	if err != nil {
		log.Fatal(err)
	}
	merged := tlb.Merge(res.Machine.ObserverBanks())

	fmt.Printf("%s on %v — translation requests per node: %.0f\n\n",
		bench.Name(), scheme, float64(merged.TotalAccesses())/float64(cfg.Geometry.Nodes()))

	var rows [][]string
	var prev float64
	knee := 0
	for _, n := range tlb.PaperSizes {
		fa := merged.MissesPerNode(tlb.Spec{Entries: n, Org: vcoma.FullyAssoc})
		dm := merged.MissesPerNode(tlb.Spec{Entries: n, Org: vcoma.DirectMapped})
		marker := ""
		if prev > 0 && fa > prev*0.9 && knee == 0 {
			knee = n / 2
			marker = "<- diminishing returns"
		}
		rows = append(rows, []string{
			fmt.Sprint(n), report.Count(fa), report.Count(dm),
			fmt.Sprintf("%.2f%%", 100*fa*float64(cfg.Geometry.Nodes())/float64(merged.TotalAccesses())),
			marker,
		})
		prev = fa
	}
	fmt.Println(report.Table([]string{"entries", "FA misses/node", "DM misses/node", "FA miss ratio", ""}, rows))
	if knee > 0 {
		fmt.Printf("suggested size: %d entries (doubling past this buys <10%% fewer misses)\n", knee)
	} else {
		fmt.Println("the miss curve is still dropping at 512 entries; this workload wants a bigger buffer")
	}
}
