// Quickstart: build the paper's 32-node baseline machine as a V-COMA,
// run the RADIX workload on it, and print where the time and the
// translation work went — in a dozen lines of API.
package main

import (
	"fmt"
	"log"

	"vcoma"
)

func main() {
	// The paper's §5.1 machine, configured as V-COMA: no TLBs anywhere,
	// an 8-entry DLB at each home node.
	cfg := vcoma.Baseline().WithScheme(vcoma.VCOMA).WithTLB(8, vcoma.FullyAssoc)

	// The RADIX integer sort at a small scale (use ScalePaper for the
	// paper's -n524288 -r2048 -m1048576 run).
	bench, err := vcoma.BenchmarkByName("RADIX", vcoma.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}

	res, err := vcoma.Run(cfg, bench)
	if err != nil {
		log.Fatal(err)
	}

	tot := res.Sim.TotalProc()
	ms := res.Machine.TotalStats()
	fmt.Printf("ran %s: %.2f MB shared data, %d references\n",
		bench.Name(), res.SharedMB(), ms.Refs)
	fmt.Printf("execution time: %d cycles (%.2f ms at 200 MHz)\n",
		res.ExecTime(), float64(res.ExecTime())/200e3)
	fmt.Printf("time:  busy %d  sync %d  local %d  remote %d  translation %d\n",
		tot.Busy, tot.Sync, tot.StallLocal, tot.StallRemote, tot.Trans)

	// The headline: how often did address translation miss?
	var lookups, misses uint64
	for n := 0; n < cfg.Geometry.Nodes(); n++ {
		st := res.Machine.Engine(vcoma.Node(n)).Stats()
		lookups += st.Lookups
		misses += st.Misses
	}
	fmt.Printf("DLB:   %d lookups, %d misses — %.4f%% of all references\n",
		lookups, misses, 100*float64(misses)/float64(ms.Refs))
	fmt.Println("\ncompare with the traditional design:")

	l0, err := vcoma.Run(cfg.WithScheme(vcoma.L0TLB), bench)
	if err != nil {
		log.Fatal(err)
	}
	l0s := l0.Machine.TotalStats()
	fmt.Printf("L0-TLB: %d TLB misses — %.2f%% of all references, %d stall cycles on translation\n",
		l0s.TLBMisses, 100*float64(l0s.TLBMisses)/float64(l0s.Refs),
		l0.Sim.TotalProc().Trans)
}
