// protection: measure what page-table maintenance costs under each
// translation scheme. Garbage-collected runtimes, copy-on-write forks and
// memory-mapped I/O all change page protections and mappings constantly;
// on a multiprocessor every such change must reach every stale TLB entry.
// The TLB schemes pay a machine-wide shootdown; V-COMA updates one home
// node's page table and DLB (paper §1, §4.3).
package main

import (
	"fmt"
	"log"

	"vcoma"
	"vcoma/internal/experiments"
)

func main() {
	cfg := experiments.ConfigForScale(vcoma.Baseline(), vcoma.ScaleTest)
	bench, err := vcoma.BenchmarkByName("BARNES", vcoma.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("warming each machine with BARNES, then timing 16 protection")
	fmt.Println("changes and 16 demaps per scheme...")
	fmt.Println()

	rows, err := experiments.MgmtStudy(cfg, bench, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderMgmt(rows, false))

	var l0, vc experiments.MgmtRow
	for _, r := range rows {
		switch r.Scheme {
		case vcoma.L0TLB:
			l0 = r
		case vcoma.VCOMA:
			vc = r
		}
	}
	fmt.Printf("a protection change costs %.1fx less on V-COMA than on L0-TLB\n",
		l0.ProtChangeCycles/vc.ProtChangeCycles)
	fmt.Printf("an L0 change invalidates %.1f TLB entries machine-wide; V-COMA touches %.1f\n\n",
		l0.ProtShootdowns, vc.ProtShootdowns)

	fmt.Println("the paper's §6 tag-cost caveat, for completeness:")
	fmt.Println()
	fmt.Print(experiments.RenderTagOverhead(false))
}
