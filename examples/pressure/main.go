// pressure: audit a workload's virtual address layout for a V-COMA
// machine. In V-COMA the operating system cannot re-colour pages — the
// virtual layout alone decides how pages spread over the attraction
// memory's global page sets (paper §6, Figure 11). This tool preloads each
// workload's layout and reports per-set pressure, flagging sets that
// approach the P*K slot capacity where replication stalls and swaps begin.
package main

import (
	"fmt"
	"log"

	"vcoma"
	"vcoma/internal/experiments"
	"vcoma/internal/report"
)

func main() {
	cfg := experiments.ConfigForScale(vcoma.Baseline(), vcoma.ScalePaper)
	fmt.Printf("machine: %d nodes, %d global page sets, %d page slots each\n\n",
		cfg.Geometry.Nodes(), cfg.Geometry.GlobalPageSets(), cfg.Geometry.PageSlotsPerGlobalSet())

	for _, bench := range vcoma.Benchmarks(vcoma.ScalePaper) {
		r, err := experiments.Figure11(cfg, bench)
		if err != nil {
			log.Fatal(err)
		}
		minV, maxV, sum := 1e18, 0.0, 0.0
		hot := 0
		for _, v := range r.Pressure {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
			if v > 0.75 {
				hot++
			}
			sum += v
		}
		mean := sum / float64(len(r.Pressure))
		verdict := "ok"
		switch {
		case maxV >= 1:
			verdict = "OVERFLOW: some sets exceed capacity; expect swap-outs"
		case hot > 0:
			verdict = fmt.Sprintf("%d sets above 75%%: replication will be inhibited there", hot)
		case maxV > 2*mean:
			verdict = "uneven: consider re-aligning padded structures (cf. RAYTRACE V2)"
		}
		fmt.Printf("%-9s mean %.3f  min %.3f  max %.3f  |%s|  %s\n",
			bench.Name(), mean, minV, maxV, report.Bar(maxV, 24), verdict)
	}

	fmt.Println("\nRAYTRACE with 32 KB-aligned ray stacks vs the one-page 'V2' padding:")
	for _, align := range []uint64{32 << 10, cfg.Geometry.PageSize()} {
		p := vcoma.ScalePaper.Raytrace()
		p.StackAlign = align
		r, err := experiments.Figure11(cfg, newRaytrace(p))
		if err != nil {
			log.Fatal(err)
		}
		maxV, sum := 0.0, 0.0
		for _, v := range r.Pressure {
			if v > maxV {
				maxV = v
			}
			sum += v
		}
		fmt.Printf("  align %6d B: max pressure %.3f (mean %.3f)\n",
			align, maxV, sum/float64(len(r.Pressure)))
	}
}

// newRaytrace adapts the workload constructor without importing the
// internal package at every call site.
func newRaytrace(p vcoma.RaytraceParams) vcoma.Benchmark { return vcoma.NewRaytrace(p) }
