// Package vcoma is a from-scratch reproduction of "Options for Dynamic
// Address Translation in COMAs" (Qiu & Dubois, USC CENG 98-08, 1998): a
// cycle-level simulator of a 32-node Cache-Only Memory Architecture that
// compares five placements of the dynamic address-translation mechanism —
// L0-TLB, L1-TLB, L2-TLB, L3-TLB and the paper's proposed V-COMA, in which
// the TLB disappears and translation happens at the home node inside the
// cache coherence protocol.
//
// The root package is the public API: build a machine (Baseline, NewMachine),
// pick a workload (Benchmarks, BenchmarkByName), and run it (Run). The
// experiment harness that regenerates every table and figure of the paper
// lives behind RunExperiment and the cmd/ tools.
package vcoma

import (
	"context"
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/machine"
	"vcoma/internal/obs"
	"vcoma/internal/sim"
	"vcoma/internal/tlb"
	"vcoma/internal/vm"
	"vcoma/internal/workload"
)

// Re-exported configuration vocabulary. These aliases are the supported
// public names for the simulator's configuration types.
type (
	// Config is the full machine configuration.
	Config = config.Config
	// Scheme selects one of the paper's five translation designs.
	Scheme = config.Scheme
	// TLBOrg is a translation buffer organization.
	TLBOrg = config.TLBOrg
	// Geometry is the machine's address geometry.
	Geometry = addr.Geometry
	// Node identifies a processing node.
	Node = addr.Node
	// Machine is the simulated memory system.
	Machine = machine.Machine
	// Benchmark is a runnable workload.
	Benchmark = workload.Benchmark
	// Program is a built workload.
	Program = workload.Program
	// Scale selects workload parameter sets.
	Scale = workload.Scale
)

// The five translation schemes (paper §3).
const (
	L0TLB = config.L0TLB
	L1TLB = config.L1TLB
	L2TLB = config.L2TLB
	L3TLB = config.L3TLB
	VCOMA = config.VCOMA
)

// TLB/DLB organizations (paper §5.1, Figure 9).
const (
	FullyAssoc   = config.FullyAssoc
	DirectMapped = config.DirectMapped
)

// Workload scales.
const (
	ScaleTest  = workload.ScaleTest
	ScaleSmall = workload.ScaleSmall
	ScalePaper = workload.ScalePaper
)

// TLBSpec names one (size, organization) pair for an observer bank.
type TLBSpec = tlb.Spec

// PaperTLBSizes are the buffer sizes swept in Figures 8 and 9.
func PaperTLBSizes() []int { return tlb.PaperSizes }

// PaperTLBSpecs is the full observer grid of the paper: every size in
// PaperTLBSizes, fully associative and direct mapped.
func PaperTLBSpecs() []TLBSpec { return tlb.PaperSpecs() }

// MergeBanks aggregates the per-node observer banks of a RunObserved result
// into machine totals.
func MergeBanks(banks []*tlb.Bank) *tlb.MergedBank { return tlb.Merge(banks) }

// Workload parameter types, re-exported for callers that build custom
// benchmark instances (e.g. the RAYTRACE layout variants).
type (
	// RadixParams configures the RADIX sort.
	RadixParams = workload.RadixParams
	// FFTParams configures the FFT.
	FFTParams = workload.FFTParams
	// FMMParams configures the fast multipole method.
	FMMParams = workload.FMMParams
	// OceanParams configures the ocean simulation.
	OceanParams = workload.OceanParams
	// RaytraceParams configures the ray tracer (including the ray-stack
	// alignment behind the paper's Figure 10 "V2" experiment).
	RaytraceParams = workload.RaytraceParams
	// BarnesParams configures the Barnes-Hut N-body simulation.
	BarnesParams = workload.BarnesParams
)

// Custom-parameter benchmark constructors.
func NewRadix(p RadixParams) Benchmark       { return workload.NewRadix(p) }
func NewFFT(p FFTParams) Benchmark           { return workload.NewFFT(p) }
func NewFMM(p FMMParams) Benchmark           { return workload.NewFMM(p) }
func NewOcean(p OceanParams) Benchmark       { return workload.NewOcean(p) }
func NewRaytrace(p RaytraceParams) Benchmark { return workload.NewRaytrace(p) }
func NewBarnes(p BarnesParams) Benchmark     { return workload.NewBarnes(p) }

// Baseline returns the paper's §5.1 machine configuration.
func Baseline() Config { return config.Baseline() }

// SmallConfig returns a scaled-down machine for experimentation and tests.
func SmallConfig() Config { return config.SmallTest() }

// Schemes lists the five schemes in paper order.
func Schemes() []Scheme { return config.Schemes() }

// NewMachine builds a machine from a configuration.
func NewMachine(cfg Config) (*Machine, error) { return machine.New(cfg) }

// Benchmarks returns the paper's six SPLASH-2 workloads at the given scale.
func Benchmarks(s Scale) []Benchmark { return workload.Registry(s) }

// BenchmarkByName returns one of RADIX, FFT, FMM, OCEAN, RAYTRACE, BARNES.
func BenchmarkByName(name string, s Scale) (Benchmark, error) {
	return workload.ByName(name, s)
}

// BenchmarkNames lists the workload names in Table 1 order.
func BenchmarkNames() []string { return workload.Names() }

// RunResult is a completed simulation.
type RunResult struct {
	// Machine is the machine after the run, with all counters populated.
	Machine *Machine
	// Sim is the engine's per-processor accounting.
	Sim sim.Result
	// Program is the workload that ran.
	Program *Program
}

// ExecTime returns the parallel execution time in processor cycles.
func (r *RunResult) ExecTime() uint64 { return r.Sim.ExecTime }

// SharedMB returns the workload's shared-data footprint in megabytes
// (the paper's Table 1 column).
func (r *RunResult) SharedMB() float64 {
	return float64(r.Program.Layout().TotalBytes()) / (1 << 20)
}

// Run builds a machine for cfg, builds and preloads b, and simulates it to
// completion.
func Run(cfg Config, b Benchmark) (*RunResult, error) {
	return run(context.Background(), cfg, b, nil, nil, Budget{}, 0)
}

// RunParallel is Run with the engine's intra-run parallel mode: the 32
// simulated processors are partitioned across shards goroutines that
// batch-step node-local events between synchronization barriers. Results
// are byte-identical to Run for every scheme and workload — the parity is
// enforced by internal/check's differential oracle and fuzz harness.
// shards ≤ 1 is exactly Run.
func RunParallel(cfg Config, b Benchmark, shards int) (*RunResult, error) {
	return run(context.Background(), cfg, b, nil, nil, Budget{}, shards)
}

// RunOptions collects every optional knob of a run in one place. The zero
// value is exactly Run.
type RunOptions struct {
	// Observer attaches an observability sink (see RunInstrumented).
	// Instrumented machines run on the sequential engine even when Shards
	// is set; results are identical either way.
	Observer *Observer
	// Budget arms the watchdog (see RunSupervised).
	Budget Budget
	// Shards selects the parallel engine's goroutine count (see
	// RunParallel). 0 or 1 is the sequential engine.
	Shards int
}

// RunWithOptions is Run with all optional knobs: context bound, observer,
// watchdog budget, and parallel shard count.
func RunWithOptions(ctx context.Context, cfg Config, b Benchmark, opt RunOptions) (*RunResult, error) {
	return run(ctx, cfg, b, nil, opt.Observer, opt.Budget, opt.Shards)
}

// RunObserved is Run with a translation-observer bank grid attached to the
// scheme's tap points: one pass measures every (size, organization) in
// specs. Used by the Figure 8/9 and Table 2/3 experiments.
func RunObserved(cfg Config, b Benchmark, specs []tlb.Spec) (*RunResult, error) {
	return run(context.Background(), cfg, b, specs, nil, Budget{}, 0)
}

// Budget bounds a supervised run: simulated-cycle, retired-event,
// forward-progress (livelock) and wall-clock limits. The zero value is
// unbounded.
type Budget = sim.Budget

// WatchdogError is the structured abort a supervised run raises when its
// budget trips; its Dump field is the full diagnostic (blocked processors,
// lock and barrier queues, per-node memory-system state).
type WatchdogError = sim.WatchdogError

// RunSupervised is Run bounded by a context and a watchdog budget: the
// simulation aborts with a *WatchdogError diagnostic when any budget limit
// or the context deadline is exceeded, and with ctx's error when it is
// cancelled, instead of spinning on a diverging or livelocked workload.
func RunSupervised(ctx context.Context, cfg Config, b Benchmark, budget Budget) (*RunResult, error) {
	return run(ctx, cfg, b, nil, nil, budget, 0)
}

// Observer is the simulator-wide instrumentation sink (metrics registry,
// epoch sampler, trace-event buffer). Build one with NewObserver.
type Observer = obs.Observer

// ObserverOptions configures an Observer.
type ObserverOptions = obs.Options

// NewObserver builds an instrumentation sink to pass to RunInstrumented.
func NewObserver(opt ObserverOptions) *Observer { return obs.New(opt) }

// RunInstrumented is Run with an observability sink attached through every
// layer: per-node and per-processor metrics sampled each epoch, latency
// histograms, and Chrome-trace events. A nil observer behaves like Run.
func RunInstrumented(cfg Config, b Benchmark, o *Observer) (*RunResult, error) {
	return run(context.Background(), cfg, b, nil, o, Budget{}, 0)
}

// RunInstrumentedSupervised combines RunInstrumented and RunSupervised: an
// observability sink plus a context bound and watchdog budget.
func RunInstrumentedSupervised(ctx context.Context, cfg Config, b Benchmark, o *Observer, budget Budget) (*RunResult, error) {
	return run(ctx, cfg, b, nil, o, budget, 0)
}

func run(ctx context.Context, cfg Config, b Benchmark, specs []tlb.Spec, o *obs.Observer, budget Budget, shards int) (*RunResult, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	prog, err := b.Build(cfg.Geometry, cfg.Geometry.Nodes())
	if err != nil {
		return nil, err
	}
	if specs != nil {
		if err := m.AttachObserverBanks(specs); err != nil {
			return nil, err
		}
	}
	m.AttachObserver(o)
	m.Preload(prog.Layout())
	eng, err := sim.New(m, prog.Streams())
	if err != nil {
		return nil, err
	}
	eng.SetBudget(budget)
	eng.SetContext(ctx)
	eng.SetObserver(o)
	eng.SetParallel(shards)
	res, err := eng.Run()
	if err != nil {
		return nil, fmt.Errorf("vcoma: running %s on %v: %w", prog.Name(), cfg.Scheme, err)
	}
	return &RunResult{Machine: m, Sim: res, Program: prog}, nil
}

// PressureProfile returns the Figure 11 global-page-set pressure profile of
// a finished run.
func (r *RunResult) PressureProfile() []float64 { return r.Machine.PressureProfile() }

// Layout returns the workload's shared-memory layout.
func (r *RunResult) Layout() *vm.Layout { return r.Program.Layout() }
