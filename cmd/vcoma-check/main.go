// Command vcoma-check soaks the simulator's correctness oracles
// (internal/check) over seeded random workloads: the runtime invariant
// checker and shadow-memory oracle per run, and optionally the cross-scheme
// differential oracle. Failing seeds are written in Go fuzz-corpus format so
// they drop straight into internal/check/testdata/fuzz/ as regressions.
//
//	vcoma-check -seeds 1000                         # invariant soak, all scenarios
//	vcoma-check -seeds 200 -diff                    # cross-scheme differential soak
//	vcoma-check -scenario thrash -budget 30s        # one scenario until the budget runs out
//	vcoma-check -bench RAYTRACE -scale test -diff   # oracles over a real benchmark
//	vcoma-check -seeds 500 -artifacts /tmp/failing  # write failing inputs as corpus files
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vcoma/internal/check"
	"vcoma/internal/check/fuzzgen"
	"vcoma/internal/cli"
	"vcoma/internal/config"
	"vcoma/internal/experiments"
	"vcoma/internal/fsio"
	"vcoma/internal/workload"
)

func main() {
	var (
		seeds     = flag.Int("seeds", 100, "number of seeded workloads to run")
		start     = flag.Int64("start", 0, "first seed")
		scenario  = flag.String("scenario", "all", "fuzz scenario: partitioned, locked, barrierstorm, thrash, pathological, or all")
		schemeStr = flag.String("scheme", "all", "scheme for invariant runs: l0, l1, l2, l3, vcoma, or all (cycled)")
		diff      = flag.Bool("diff", false, "run the cross-scheme differential oracle instead of single-scheme invariant runs")
		benchName = flag.String("bench", "", "check a real benchmark instead of fuzz workloads")
		scaleStr  = flag.String("scale", "test", "benchmark scale for -bench: test, small, paper")
		budget    = flag.Duration("budget", 0, "stop after this wall-clock budget (0 = run all seeds)")
		artifacts = flag.String("artifacts", "", "directory for failing inputs in Go fuzz-corpus format")
		scanEvery = flag.Uint64("scan-every", 512, "full invariant scan period in references")
		verbose   = flag.Bool("v", false, "print every run, not just failures")
	)
	fsFaultOf := cli.FsFaultFlags()
	newLog := cli.LogFlags("vcoma-check")
	flag.Parse()
	log = newLog()

	var err error
	if fsys, dumpOpLog, err = fsFaultOf(); err != nil {
		fatal(err)
	}

	// SIGINT/SIGTERM stops the soak at the next seed boundary: artifacts
	// already written stay on disk and the summary still prints.
	ctx, cancel := cli.SignalContext(context.Background(), "vcoma-check")
	defer cancel(nil)

	if *benchName != "" {
		if err := checkBenchmark(*benchName, *scaleStr, *diff, *scanEvery); err != nil {
			fatal(err)
		}
		writeOpLog()
		cli.LogExit(log, "vcoma-check", startTime, cli.ExitOK, nil)
		return
	}

	schemes := config.Schemes()
	if *schemeStr != "all" {
		s, ok := map[string]config.Scheme{
			"l0": config.L0TLB, "l1": config.L1TLB, "l2": config.L2TLB,
			"l3": config.L3TLB, "vcoma": config.VCOMA,
		}[strings.ToLower(*schemeStr)]
		if !ok {
			fatal(fmt.Errorf("unknown scheme %q", *schemeStr))
		}
		schemes = []config.Scheme{s}
	}

	deadline := time.Time{}
	if *budget > 0 {
		deadline = time.Now().Add(*budget)
	}

	failures := 0
	ran := 0
	interrupted := false
	for i := 0; i < *seeds; i++ {
		if ctx.Err() != nil {
			fmt.Printf("interrupted after %d seeds: %v\n", ran, context.Cause(ctx))
			interrupted = true
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			fmt.Printf("budget exhausted after %d seeds\n", ran)
			break
		}
		seed := uint64(*start) + uint64(i)
		scen, size := deriveInputs(seed, *scenario)
		w := fuzzgen.Derive(seed, scen, size)
		ran++

		var err error
		if *diff {
			err = runDiff(w, *scanEvery)
			if *verbose || err != nil {
				status(err, "seed %d: %s across all schemes", seed, w.Name())
			}
			if err != nil {
				failures++
				writeArtifact(*artifacts, "FuzzSchemesAgree", seed, []uint64{seed, scen, size})
			}
			continue
		}
		scheme := schemes[i%len(schemes)]
		cfg := config.SmallTest().WithScheme(scheme)
		_, err = check.RunChecked(cfg, w, check.Options{ScanEvery: *scanEvery})
		if *verbose || err != nil {
			status(err, "seed %d: %s under %v", seed, w.Name(), scheme)
		}
		if err != nil {
			failures++
			writeArtifact(*artifacts, "FuzzMachine", seed, []uint64{seed, scen, size, uint64(scheme)})
		}
	}

	fmt.Printf("%d run(s), %d failure(s)\n", ran, failures)
	writeOpLog()
	if failures > 0 {
		cli.LogExit(log, "vcoma-check", startTime, cli.ExitErr, fmt.Errorf("%d failing seed(s)", failures))
		os.Exit(1)
	}
	if interrupted {
		// 128+signum per the shared convention (130 SIGINT, 143 SIGTERM).
		code := cli.ExitCode(ctx, context.Cause(ctx))
		cli.LogExit(log, "vcoma-check", startTime, code, context.Cause(ctx))
		os.Exit(code)
	}
	cli.LogExit(log, "vcoma-check", startTime, cli.ExitOK, nil)
}

// deriveInputs maps a seed to (scenario, size) fuzz inputs, honoring a
// pinned scenario name.
func deriveInputs(seed uint64, scenario string) (scen, size uint64) {
	size = seed * 31
	if scenario == "all" {
		return seed, size
	}
	s, err := fuzzgen.ScenarioByName(strings.ToLower(scenario))
	if err != nil {
		fatal(err)
	}
	return uint64(s), size
}

func runDiff(w *fuzzgen.Workload, scanEvery uint64) error {
	res, err := check.Differential(config.SmallTest(), w, check.DiffOptions{
		Invariants:    true,
		CompareValues: w.RaceFree(),
		ScanEvery:     scanEvery,
	})
	if err != nil {
		return err
	}
	return res.Err()
}

func checkBenchmark(name, scaleStr string, diff bool, scanEvery uint64) error {
	scale, ok := map[string]workload.Scale{
		"test": workload.ScaleTest, "small": workload.ScaleSmall, "paper": workload.ScalePaper,
	}[strings.ToLower(scaleStr)]
	if !ok {
		return fmt.Errorf("unknown scale %q", scaleStr)
	}
	bench, err := workload.ByName(strings.ToUpper(name), scale)
	if err != nil {
		return err
	}
	base := experiments.ConfigForScale(config.SmallTest(), scale)
	if diff {
		res, err := check.Differential(base, bench, check.DiffOptions{Invariants: true, ScanEvery: scanEvery})
		if err != nil {
			return err
		}
		if err := res.Err(); err != nil {
			return err
		}
		fmt.Printf("%s: all schemes agree\n", bench.Name())
		return nil
	}
	for _, s := range config.Schemes() {
		out, err := check.RunChecked(base.WithScheme(s), bench, check.Options{ScanEvery: scanEvery})
		if err != nil {
			return fmt.Errorf("%s under %v: %w", bench.Name(), s, err)
		}
		fmt.Printf("%s under %v: %d refs clean\n", bench.Name(), s, out.Checker.Refs())
	}
	return nil
}

// writeArtifact records a failing input as a Go fuzz-corpus file, ready to
// commit under internal/check/testdata/fuzz/<target>/.
func writeArtifact(dir, target string, seed uint64, vals []uint64) {
	if dir == "" {
		return
	}
	sub := filepath.Join(dir, target)
	if err := fsys.MkdirAll("artifact", sub); err != nil {
		fmt.Fprintf(os.Stderr, "vcoma-check: %v\n", err)
		return
	}
	var b strings.Builder
	b.WriteString("go test fuzz v1\n")
	for _, v := range vals {
		fmt.Fprintf(&b, "uint64(%d)\n", v)
	}
	path := filepath.Join(sub, fmt.Sprintf("seed-%d", seed))
	if err := fsys.WriteFileAtomic("artifact", path, []byte(b.String())); err != nil {
		fmt.Fprintf(os.Stderr, "vcoma-check: %v\n", err)
		return
	}
	fmt.Printf("failing input written to %s\n", path)
}

func status(err error, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", msg, err)
		return
	}
	fmt.Printf("ok   %s\n", msg)
}

// startTime and log feed the final structured line every exit path emits;
// fsys is the filesystem seam artifact writes go through, and dumpOpLog
// flushes the -fsfault-log op trace, which fatal must do itself because
// os.Exit skips deferred calls.
var (
	startTime = time.Now()
	log       *slog.Logger
	fsys      *fsio.FS
	dumpOpLog func() error
)

func writeOpLog() {
	if dumpOpLog == nil {
		return
	}
	if err := dumpOpLog(); err != nil {
		fmt.Fprintf(os.Stderr, "vcoma-check: fsfault-log: %v\n", err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vcoma-check: %v\n", err)
	writeOpLog()
	cli.LogExit(log, "vcoma-check", startTime, cli.ExitErr, err)
	os.Exit(1)
}
