// Command vcoma-report runs the paper's complete evaluation — every table
// and figure — and emits a Markdown report with paper-vs-measured numbers.
// This is the tool that regenerates EXPERIMENTS.md.
//
//	vcoma-report -scale small -o EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vcoma"
	"vcoma/internal/experiments"
	"vcoma/internal/workload"
)

func main() {
	var (
		scaleStr  = flag.String("scale", "small", "workload scale: test, small, paper")
		outPath   = flag.String("o", "", "output file (default stdout)")
		benchList = flag.String("bench", "", "comma-separated benchmarks (default: all six)")
	)
	flag.Parse()

	var scale workload.Scale
	switch strings.ToLower(*scaleStr) {
	case "test":
		scale = workload.ScaleTest
	case "small":
		scale = workload.ScaleSmall
	case "paper":
		scale = workload.ScalePaper
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleStr))
	}

	suite := &experiments.Suite{
		Cfg:   vcoma.Baseline(),
		Scale: scale,
		Log:   os.Stderr,
	}
	if *benchList != "" {
		for _, n := range strings.Split(*benchList, ",") {
			suite.Benchmarks = append(suite.Benchmarks, strings.ToUpper(strings.TrimSpace(n)))
		}
	}

	res, err := suite.Run()
	if err != nil {
		fatal(err)
	}
	md := res.RenderMarkdown()
	if *outPath == "" {
		fmt.Print(md)
		return
	}
	if err := os.WriteFile(*outPath, []byte(md), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *outPath, len(md))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcoma-report:", err)
	os.Exit(1)
}
