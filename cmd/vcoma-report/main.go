// Command vcoma-report runs the paper's complete evaluation — every table
// and figure — and emits a Markdown report with paper-vs-measured numbers.
// This is the tool that regenerates EXPERIMENTS.md.
//
// Passes run in parallel on a bounded worker pool (-jobs) with an on-disk
// result cache (-cache, default .vcoma-cache); the rendered report is
// byte-identical regardless of worker count or cache state.
//
// Runs are supervised: SIGINT/SIGTERM cancels cleanly, watchdog budgets
// and per-pass deadlines reclaim hung simulations, -keep-going renders a
// partial report with failed cells marked (exit status 2), and -resume
// continues an interrupted run from its journal.
//
//	vcoma-report -scale small -o EXPERIMENTS.md
//	vcoma-report -scale small -jobs 8 -progress-json progress.json
//	vcoma-report -scale paper -job-timeout 15m -retries 2 -keep-going
//	vcoma-report -scale paper -resume
//	vcoma-report -clear-cache
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vcoma"
	"vcoma/internal/cli"
	"vcoma/internal/experiments"
	"vcoma/internal/obs"
	"vcoma/internal/runner"
	"vcoma/internal/workload"
)

func main() {
	code := run()
	cli.LogExit(log, "vcoma-report", startTime, code, nil)
	os.Exit(code)
}

func run() int {
	var (
		scaleStr   = flag.String("scale", "small", "workload scale: test, small, paper")
		outPath    = flag.String("o", "", "output file (default stdout)")
		benchList  = flag.String("bench", "", "comma-separated benchmarks (default: all six)")
		jobs       = flag.Int("jobs", 0, "parallel simulation jobs (0 = GOMAXPROCS)")
		cacheDir   = flag.String("cache", ".vcoma-cache", "result cache directory")
		noCache    = flag.Bool("no-cache", false, "disable the result cache")
		clearCache = flag.Bool("clear-cache", false, "remove all cached results and exit")
		progPath   = flag.String("progress-json", "", "write the run's job-level progress summary as JSON to this file")
		metrics    = flag.Bool("job-metrics", false, "sample each freshly-computed pass and write its time series next to the cache entry")
		metricsInt = flag.Uint64("metrics-interval", 0, "sampling epoch in simulated cycles for -job-metrics (0 = default)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		keepGoing  = flag.Bool("keep-going", false, "render a partial report with failed cells marked when some passes fail (exit status 2)")
		resume     = flag.Bool("resume", false, "resume an interrupted run from the journal in the cache directory")
		chaosSpec  = flag.String("chaos", "", "fault-injection spec for testing the supervisor: panic:<substr>,hang:<substr>,flaky:<substr>:<n>,cancel:<n>,corrupt:<substr>")
	)
	budgetOf := cli.BudgetFlags()
	retryOf, jobTimeout := cli.RetryFlags()
	fsFaultOf := cli.FsFaultFlags()
	newLog := cli.LogFlags("vcoma-report")
	flag.Parse()
	log = newLog()
	if err := obs.StartPprof(*pprofAddr); err != nil {
		return fatal(err)
	}
	fsys, fsDump, err := fsFaultOf()
	if err != nil {
		return fatal(err)
	}
	defer func() {
		if err := fsDump(); err != nil {
			fmt.Fprintf(os.Stderr, "fsfault-log: %v\n", err)
		}
	}()

	if *clearCache {
		c, err := runner.OpenCacheFS(*cacheDir, fsys)
		if err != nil {
			return fatal(err)
		}
		if err := c.Clear(); err != nil {
			return fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cleared result cache under %s\n", *cacheDir)
		return 0
	}

	var scale workload.Scale
	switch strings.ToLower(*scaleStr) {
	case "test":
		scale = workload.ScaleTest
	case "small":
		scale = workload.ScaleSmall
	case "paper":
		scale = workload.ScalePaper
	default:
		return fatal(fmt.Errorf("unknown scale %q", *scaleStr))
	}

	ctx, cancel := cli.SignalContext(context.Background(), "vcoma-report")
	defer cancel(nil)
	runCtx = ctx

	chaos, err := runner.ParseChaos(*chaosSpec)
	if err != nil {
		return fatal(err)
	}
	if chaos != nil {
		chaos.BindCancel(cancel)
	}

	prog := runner.NewProgress(os.Stderr)
	suite := &experiments.Suite{
		Cfg:             vcoma.Baseline(),
		Scale:           scale,
		Jobs:            *jobs,
		Progress:        prog,
		Context:         ctx,
		Metrics:         *metrics,
		MetricsInterval: *metricsInt,
		KeepGoing:       *keepGoing,
		JobTimeout:      *jobTimeout,
		Retry:           retryOf(),
		Budget:          budgetOf(),
		Chaos:           chaos,
	}
	if !*noCache {
		suite.CacheDir = *cacheDir
		suite.FS = fsys
	}
	if *benchList != "" {
		for _, n := range strings.Split(*benchList, ",") {
			suite.Benchmarks = append(suite.Benchmarks, strings.ToUpper(strings.TrimSpace(n)))
		}
	}

	if !*noCache {
		// One writer per cache directory.
		lock, err := runner.AcquireDirLock(*cacheDir)
		if err != nil {
			return fatal(err)
		}
		defer lock.Release()

		plan, err := suite.Plan()
		if err != nil {
			return fatal(err)
		}
		jpath := filepath.Join(*cacheDir, "journal.json")
		if *resume {
			var prev map[string]runner.JournalEntry
			suite.Journal, prev, err = runner.ResumeJournalFS(jpath, plan.Key(), fsys)
			if err != nil {
				return fatal(err)
			}
			fmt.Fprintf(os.Stderr, "resuming: journal records %d finished pass(es); cached results satisfy them without recomputing\n", len(prev))
		} else if suite.Journal, err = runner.CreateJournalFS(jpath, plan.Key(), len(plan.Jobs()), fsys); err != nil {
			return fatal(err)
		}
		defer suite.Journal.Close()

		if chaos != nil {
			cache, err := runner.OpenCacheFS(*cacheDir, fsys)
			if err != nil {
				return fatal(err)
			}
			if n, err := chaos.CorruptMatching(cache, plan.Jobs()); err != nil {
				return fatal(err)
			} else if n > 0 {
				fmt.Fprintf(os.Stderr, "chaos: corrupted %d cache entr(ies)\n", n)
			}
		}
	} else if *resume {
		return fatal(errors.New("-resume needs the cache: the journal lives in the cache directory"))
	}

	res, err := suite.Run()
	if *progPath != "" {
		// The progress export is useful even for failed runs: it records
		// which job broke and what was skipped.
		f, ferr := os.Create(*progPath)
		if ferr != nil {
			return fatal(ferr)
		}
		if werr := prog.Summary().WriteJSON(f); werr != nil {
			return fatal(werr)
		}
		if cerr := f.Close(); cerr != nil {
			return fatal(cerr)
		}
	}
	if err != nil && res == nil {
		// Nothing to render; the journal stays behind for -resume.
		return fatal(err)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vcoma-report: continuing past failures (-keep-going): %v\n", err)
	}
	fmt.Fprintf(os.Stderr, "suite: %v wall, %d cache hits\n",
		res.Elapsed.Round(time.Millisecond), res.CacheHits)

	md := res.RenderMarkdown()
	if *outPath == "" {
		fmt.Print(md)
	} else {
		if werr := os.WriteFile(*outPath, []byte(md), 0o644); werr != nil {
			return fatal(werr)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *outPath, len(md))
	}
	if res.Partial() {
		fmt.Fprintf(os.Stderr, "vcoma-report: PARTIAL REPORT: %d cell(s) failed; rerun with -resume to fill them in\n", len(res.Failures))
		// A signal outranks partial status: an interrupted -keep-going run
		// reports 128+signum, not 2.
		if sig := cli.ExitCode(ctx, context.Cause(ctx)); sig > cli.ExitPartial {
			return sig
		}
		return cli.ExitPartial
	}
	if suite.Journal != nil {
		if jerr := suite.Journal.Complete(); jerr != nil {
			return fatal(jerr)
		}
	}
	return 0
}

// runCtx is the signal context once armed; fatal consults it so an
// interrupted suite exits 128+signum per the shared convention. startTime
// and log feed the final structured line main emits on every exit path.
var (
	runCtx    context.Context
	startTime = time.Now()
	log       *slog.Logger
)

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "vcoma-report:", err)
	return cli.ExitCode(runCtx, err)
}
