// Command vcoma-report runs the paper's complete evaluation — every table
// and figure — and emits a Markdown report with paper-vs-measured numbers.
// This is the tool that regenerates EXPERIMENTS.md.
//
// Passes run in parallel on a bounded worker pool (-jobs) with an on-disk
// result cache (-cache, default .vcoma-cache); the rendered report is
// byte-identical regardless of worker count or cache state.
//
//	vcoma-report -scale small -o EXPERIMENTS.md
//	vcoma-report -scale small -jobs 8 -progress-json progress.json
//	vcoma-report -clear-cache
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vcoma"
	"vcoma/internal/experiments"
	"vcoma/internal/obs"
	"vcoma/internal/runner"
	"vcoma/internal/workload"
)

func main() {
	var (
		scaleStr   = flag.String("scale", "small", "workload scale: test, small, paper")
		outPath    = flag.String("o", "", "output file (default stdout)")
		benchList  = flag.String("bench", "", "comma-separated benchmarks (default: all six)")
		jobs       = flag.Int("jobs", 0, "parallel simulation jobs (0 = GOMAXPROCS)")
		cacheDir   = flag.String("cache", ".vcoma-cache", "result cache directory")
		noCache    = flag.Bool("no-cache", false, "disable the result cache")
		clearCache = flag.Bool("clear-cache", false, "remove all cached results and exit")
		progPath   = flag.String("progress-json", "", "write the run's job-level progress summary as JSON to this file")
		metrics    = flag.Bool("job-metrics", false, "sample each freshly-computed pass and write its time series next to the cache entry")
		metricsInt = flag.Uint64("metrics-interval", 0, "sampling epoch in simulated cycles for -job-metrics (0 = default)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if err := obs.StartPprof(*pprofAddr); err != nil {
		fatal(err)
	}

	if *clearCache {
		c, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		if err := c.Clear(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cleared result cache under %s\n", *cacheDir)
		return
	}

	var scale workload.Scale
	switch strings.ToLower(*scaleStr) {
	case "test":
		scale = workload.ScaleTest
	case "small":
		scale = workload.ScaleSmall
	case "paper":
		scale = workload.ScalePaper
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleStr))
	}

	prog := runner.NewProgress(os.Stderr)
	suite := &experiments.Suite{
		Cfg:             vcoma.Baseline(),
		Scale:           scale,
		Jobs:            *jobs,
		Progress:        prog,
		Metrics:         *metrics,
		MetricsInterval: *metricsInt,
	}
	if !*noCache {
		suite.CacheDir = *cacheDir
	}
	if *benchList != "" {
		for _, n := range strings.Split(*benchList, ",") {
			suite.Benchmarks = append(suite.Benchmarks, strings.ToUpper(strings.TrimSpace(n)))
		}
	}

	res, err := suite.Run()
	if *progPath != "" {
		// The progress export is useful even for failed runs: it records
		// which job broke and what was skipped.
		f, ferr := os.Create(*progPath)
		if ferr != nil {
			fatal(ferr)
		}
		if werr := prog.Summary().WriteJSON(f); werr != nil {
			fatal(werr)
		}
		if cerr := f.Close(); cerr != nil {
			fatal(cerr)
		}
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "suite: %v wall, %d cache hits\n",
		res.Elapsed.Round(time.Millisecond), res.CacheHits)

	md := res.RenderMarkdown()
	if *outPath == "" {
		fmt.Print(md)
		return
	}
	if err := os.WriteFile(*outPath, []byte(md), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *outPath, len(md))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcoma-report:", err)
	os.Exit(1)
}
