// Command vcoma-serve runs the simulation harness as a long-lived HTTP/JSON
// service: clients submit cells (bench + scheme + scale, the cache-key
// schema) and the daemon answers from the shared artifact store or queues a
// simulation, with admission control, per-tenant fairness, request
// coalescing and crash-safe resume. See README "Running as a service".
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"os"
	"time"

	"vcoma/internal/cli"
	"vcoma/internal/runner"
	"vcoma/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	start := time.Now()
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	state := flag.String("state", "serve-state", "state directory (artifact store, journal, lock)")
	workers := flag.Int("workers", 2, "concurrent simulations")
	queueLen := flag.Int("queue", 64, "admission control: maximum queued jobs before shedding/429")
	maxPerTenant := flag.Int("max-per-tenant", 0, "per-tenant queued-job bound (0 = none)")
	maxStoreMB := flag.Int64("max-store-mb", 0, "artifact store size bound in MB, LRU-evicted (0 = unbounded)")
	jobMetrics := flag.Bool("job-metrics", false, "write per-job observability sidecars next to artifacts")
	chaosSpec := flag.String("chaos", "", "fault injection spec (testing only), e.g. hang:serve")
	drainGrace := flag.Duration("drain-grace", 5*time.Second, "HTTP shutdown grace on SIGTERM")
	faultControl := flag.Bool("fsfault-control", false, "expose POST /debug/fsfault for swapping the failpoint spec at runtime (chaos drills only)")
	budget := cli.BudgetFlags()
	retry, jobTimeout := cli.RetryFlags()
	fsFaultOf := cli.FsFaultFlags()
	newLog := cli.LogFlags("vcoma-serve")
	flag.Parse()
	log := newLog()

	chaos, err := runner.ParseChaos(*chaosSpec)
	if err != nil {
		log.Error("chaos spec", "error", err.Error())
		cli.LogExit(log, "vcoma-serve", start, cli.ExitErr, err)
		return cli.ExitErr
	}
	fsys, fsDump, err := fsFaultOf()
	if err != nil {
		log.Error("fsfault spec", "error", err.Error())
		cli.LogExit(log, "vcoma-serve", start, cli.ExitErr, err)
		return cli.ExitErr
	}
	defer func() {
		if err := fsDump(); err != nil {
			log.Warn("fsfault-log", "error", err.Error())
		}
	}()

	ctx, cancel := cli.SignalContext(context.Background(), "vcoma-serve")
	defer cancel(nil)
	if chaos != nil {
		chaos.BindCancel(cancel)
	}

	srv, err := serve.New(serve.Options{
		StateDir:      *state,
		Workers:       *workers,
		MaxQueue:      *queueLen,
		MaxPerTenant:  *maxPerTenant,
		MaxStoreBytes: *maxStoreMB << 20,
		JobTimeout:    *jobTimeout,
		Retry:         retry(),
		Budget:        budget(),
		Metrics:       *jobMetrics,
		Chaos:         chaos,
		DrainGrace:    *drainGrace,
		FS:            fsys,
		FaultControl:  *faultControl,
		Log:           log,
	})
	if err != nil {
		log.Error("startup", "error", err.Error())
		cli.LogExit(log, "vcoma-serve", start, cli.ExitErr, err)
		return cli.ExitErr
	}

	err = srv.Run(ctx, *addr)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		code := cli.ExitCode(ctx, err)
		cli.LogExit(log, "vcoma-serve", start, code, err)
		return code
	}
	cli.LogExit(log, "vcoma-serve", start, cli.ExitOK, nil)
	return cli.ExitOK
}
