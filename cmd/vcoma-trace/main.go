// Command vcoma-trace records workload reference streams to files and
// replays recorded traces through the simulator — the classic trace-driven
// methodology, and the way to feed custom traces to the machine without
// writing a generator.
//
//	vcoma-trace -record -bench RADIX -scale test -dir /tmp/radix
//	vcoma-trace -replay -dir /tmp/radix -scheme vcoma -tlb 8
//	vcoma-trace -replay -dir /tmp/radix -trace-out radix.trace.json -metrics-out radix.csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vcoma"
	"vcoma/internal/addr"
	"vcoma/internal/cli"
	"vcoma/internal/experiments"
	"vcoma/internal/fsio"
	"vcoma/internal/machine"
	"vcoma/internal/obs"
	"vcoma/internal/report"
	"vcoma/internal/sim"
	"vcoma/internal/trace"
	"vcoma/internal/vm"
	"vcoma/internal/workload"
)

func main() {
	var (
		record    = flag.Bool("record", false, "record a benchmark's streams to -dir")
		replay    = flag.Bool("replay", false, "replay streams from -dir through a machine")
		dir       = flag.String("dir", "", "trace directory (one file per processor + layout)")
		benchName = flag.String("bench", "RADIX", "benchmark to record")
		scaleStr  = flag.String("scale", "test", "workload scale: test, small, paper")
		schemeStr = flag.String("scheme", "vcoma", "scheme for -replay: l0, l1, l2, l3, vcoma")
		entries   = flag.Int("tlb", 8, "TLB/DLB entries for -replay")

		metricsOut      = flag.String("metrics-out", "", "replay: write epoch-sampled metrics to this file (.csv for CSV, else JSON)")
		metricsInterval = flag.Uint64("metrics-interval", 10000, "sampling epoch in simulated cycles for -metrics-out")
		traceOut        = flag.String("trace-out", "", "replay: write Chrome trace-event JSON (open in Perfetto) to this file")
		traceCats       = flag.String("trace-categories", "", "comma-separated trace categories to keep: trans,dlb,coh,repl,sync (empty = all)")
		pprofAddr       = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	budgetOf := cli.BudgetFlags()
	fsFaultOf := cli.FsFaultFlags()
	newLog := cli.LogFlags("vcoma-trace")
	flag.Parse()
	log = newLog()
	if *dir == "" || *record == *replay {
		fatal(fmt.Errorf("need exactly one of -record/-replay, and -dir"))
	}
	if err := obs.StartPprof(*pprofAddr); err != nil {
		fatal(err)
	}
	fsys, fsDump, err := fsFaultOf()
	if err != nil {
		fatal(err)
	}
	dumpOpLog = fsDump

	scale := map[string]workload.Scale{
		"test": workload.ScaleTest, "small": workload.ScaleSmall, "paper": workload.ScalePaper,
	}[strings.ToLower(*scaleStr)]
	cfg := experiments.ConfigForScale(vcoma.Baseline(), scale)

	if *record {
		if err := doRecord(cfg, *benchName, scale, *dir, fsys); err != nil {
			fatal(err)
		}
		cli.LogExit(log, "vcoma-trace", startTime, cli.ExitOK, nil)
		return
	}
	scheme := map[string]vcoma.Scheme{
		"l0": vcoma.L0TLB, "l1": vcoma.L1TLB, "l2": vcoma.L2TLB,
		"l3": vcoma.L3TLB, "vcoma": vcoma.VCOMA,
	}[strings.ToLower(*schemeStr)]
	var o *obs.Observer
	if *metricsOut != "" || *traceOut != "" {
		opt := obs.Options{TraceCategories: *traceCats}
		if *metricsOut != "" {
			opt.MetricsInterval = *metricsInterval
		}
		if *traceOut != "" {
			opt.TraceCapacity = 1 << 16
		}
		o = obs.New(opt)
	}
	if err := doReplay(cfg.WithScheme(scheme).WithTLB(*entries, vcoma.FullyAssoc), *dir, o, *metricsOut, *traceOut, budgetOf(), fsys); err != nil {
		var we *sim.WatchdogError
		if errors.As(err, &we) {
			fmt.Fprint(os.Stderr, we.Dump.Render())
		}
		fatal(err)
	}
	writeOpLog()
	cli.LogExit(log, "vcoma-trace", startTime, cli.ExitOK, nil)
}

// layoutFile stores the regions needed to preload a replayed trace:
// name, base, bytes per line.
const layoutFile = "layout.txt"

func doRecord(cfg vcoma.Config, benchName string, scale workload.Scale, dir string, fsys *fsio.FS) error {
	bench, err := workload.ByName(strings.ToUpper(benchName), scale)
	if err != nil {
		return err
	}
	prog, err := bench.Build(cfg.Geometry, cfg.Geometry.Nodes())
	if err != nil {
		return err
	}
	if err := fsys.MkdirAll("record", dir); err != nil {
		return err
	}

	var lay strings.Builder
	for _, r := range prog.Layout().Regions() {
		fmt.Fprintf(&lay, "%s %d %d\n", r.Name, uint64(r.Base), r.Bytes)
	}
	if err := fsys.WriteFileAtomic("record", filepath.Join(dir, layoutFile), []byte(lay.String())); err != nil {
		return err
	}

	total := uint64(0)
	for p, s := range prog.Streams() {
		f, err := fsys.Create("record", filepath.Join(dir, fmt.Sprintf("proc%03d.vct", p)))
		if err != nil {
			return err
		}
		rec, err := trace.NewRecorder(s, f)
		if err != nil {
			return err
		}
		for {
			if _, ok := rec.Next(); !ok {
				break
			}
		}
		if err := rec.Close(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		total += rec.Count()
	}
	fmt.Printf("recorded %s: %d events across %d processors into %s\n",
		prog.Name(), total, prog.Procs(), dir)
	return nil
}

func doReplay(cfg vcoma.Config, dir string, o *obs.Observer, metricsOut, traceOut string, budget sim.Budget, fsys *fsio.FS) error {
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	m.AttachObserver(o)

	// Preload from the saved layout.
	layBytes, err := os.ReadFile(filepath.Join(dir, layoutFile))
	if err != nil {
		return err
	}
	var regions []vm.Region
	for _, line := range strings.Split(strings.TrimSpace(string(layBytes)), "\n") {
		var name string
		var base, size uint64
		if _, err := fmt.Sscanf(line, "%s %d %d", &name, &base, &size); err != nil {
			return fmt.Errorf("bad layout line %q: %w", line, err)
		}
		regions = append(regions, vm.Region{Name: name, Base: addr.Virtual(base), Bytes: size})
	}
	layout, err := vm.LayoutFromRegions(cfg.Geometry, regions)
	if err != nil {
		return err
	}
	m.Preload(layout)

	var streams []trace.Stream
	var files []*os.File
	for p := 0; p < cfg.Geometry.Nodes(); p++ {
		f, err := os.Open(filepath.Join(dir, fmt.Sprintf("proc%03d.vct", p)))
		if err != nil {
			return err
		}
		files = append(files, f)
		rd, err := trace.NewReader(f)
		if err != nil {
			return err
		}
		streams = append(streams, rd)
	}
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()

	eng, err := sim.New(m, streams)
	if err != nil {
		return err
	}
	// Replays are supervised like live runs: Ctrl-C cancels, budgets trip
	// with a diagnostic dump.
	ctx, cancel := cli.SignalContext(context.Background(), "vcoma-trace")
	defer cancel(nil)
	runCtx = ctx
	eng.SetBudget(budget)
	eng.SetContext(ctx)
	eng.SetObserver(o)
	start := time.Now()
	res, err := eng.Run()
	if err != nil {
		return err
	}
	tot := res.TotalProc()
	fmt.Printf("replayed %d events on %v in %v\n", res.Events, cfg.Scheme, time.Since(start).Round(time.Millisecond))
	fmt.Printf("exec=%d cycles  busy=%d sync=%d loc=%d rem=%d trans=%d\n",
		res.ExecTime, tot.Busy, tot.Sync, tot.StallLocal, tot.StallRemote, tot.Trans)

	fmt.Printf("\n%s", replaySummary(res))
	if o != nil {
		for _, h := range o.Registry.Histograms() {
			fmt.Printf("\n%s\n", h.Render())
		}
	}

	if metricsOut != "" && o.Sampler != nil {
		ts := o.Sampler.Export()
		render := ts.WriteJSON
		if strings.HasSuffix(metricsOut, ".csv") {
			render = ts.WriteCSV
		}
		if err := cli.AtomicOutput(fsys, "metrics-out", metricsOut, render); err != nil {
			return err
		}
		fmt.Printf("\nwrote metrics to %s\n", metricsOut)
	}
	if traceOut != "" && o.Tracer != nil {
		if err := cli.AtomicOutput(fsys, "trace-out", traceOut, func(w io.Writer) error {
			return o.Tracer.WriteJSON(w, "node")
		}); err != nil {
			return err
		}
		fmt.Printf("wrote trace to %s (open at https://ui.perfetto.dev)\n", traceOut)
		if n := o.Tracer.Dropped(); n > 0 {
			fmt.Printf("trace: ring buffer full, %d oldest events dropped\n", n)
		}
	}
	return nil
}

// replaySummary renders the per-processor cycle breakdown as a table: where
// each processor spent its time, and when it finished relative to the rest.
func replaySummary(res sim.Result) string {
	headers := []string{"proc", "refs", "busy", "sync", "loc", "rem", "trans", "finish"}
	var rows [][]string
	for p, st := range res.Procs {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", st.Refs),
			fmt.Sprintf("%d", st.Busy),
			fmt.Sprintf("%d", st.Sync),
			fmt.Sprintf("%d", st.StallLocal),
			fmt.Sprintf("%d", st.StallRemote),
			fmt.Sprintf("%d", st.Trans),
			fmt.Sprintf("%d", st.Finish),
		})
	}
	return report.Table(headers, rows)
}

// runCtx is the replay's signal context once armed; fatal consults it so an
// interrupted replay exits 128+signum per the shared convention. startTime
// and log feed the final structured line every exit path emits.
var (
	runCtx    context.Context
	startTime = time.Now()
	log       *slog.Logger
)

// dumpOpLog writes the -fsfault-log op trace; set once flags are parsed.
var dumpOpLog func() error

func writeOpLog() {
	if dumpOpLog != nil {
		if err := dumpOpLog(); err != nil {
			fmt.Fprintf(os.Stderr, "vcoma-trace: fsfault-log: %v\n", err)
		}
	}
}

func fatal(err error) {
	writeOpLog()
	fmt.Fprintln(os.Stderr, "vcoma-trace:", err)
	code := cli.ExitCode(runCtx, err)
	cli.LogExit(log, "vcoma-trace", startTime, code, err)
	os.Exit(code)
}
