// Command vcoma-trace records workload reference streams to files and
// replays recorded traces through the simulator — the classic trace-driven
// methodology, and the way to feed custom traces to the machine without
// writing a generator.
//
//	vcoma-trace -record -bench RADIX -scale test -dir /tmp/radix
//	vcoma-trace -replay -dir /tmp/radix -scheme vcoma -tlb 8
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vcoma"
	"vcoma/internal/addr"
	"vcoma/internal/experiments"
	"vcoma/internal/machine"
	"vcoma/internal/sim"
	"vcoma/internal/trace"
	"vcoma/internal/vm"
	"vcoma/internal/workload"
)

func main() {
	var (
		record    = flag.Bool("record", false, "record a benchmark's streams to -dir")
		replay    = flag.Bool("replay", false, "replay streams from -dir through a machine")
		dir       = flag.String("dir", "", "trace directory (one file per processor + layout)")
		benchName = flag.String("bench", "RADIX", "benchmark to record")
		scaleStr  = flag.String("scale", "test", "workload scale: test, small, paper")
		schemeStr = flag.String("scheme", "vcoma", "scheme for -replay: l0, l1, l2, l3, vcoma")
		entries   = flag.Int("tlb", 8, "TLB/DLB entries for -replay")
	)
	flag.Parse()
	if *dir == "" || *record == *replay {
		fatal(fmt.Errorf("need exactly one of -record/-replay, and -dir"))
	}

	scale := map[string]workload.Scale{
		"test": workload.ScaleTest, "small": workload.ScaleSmall, "paper": workload.ScalePaper,
	}[strings.ToLower(*scaleStr)]
	cfg := experiments.ConfigForScale(vcoma.Baseline(), scale)

	if *record {
		if err := doRecord(cfg, *benchName, scale, *dir); err != nil {
			fatal(err)
		}
		return
	}
	scheme := map[string]vcoma.Scheme{
		"l0": vcoma.L0TLB, "l1": vcoma.L1TLB, "l2": vcoma.L2TLB,
		"l3": vcoma.L3TLB, "vcoma": vcoma.VCOMA,
	}[strings.ToLower(*schemeStr)]
	if err := doReplay(cfg.WithScheme(scheme).WithTLB(*entries, vcoma.FullyAssoc), *dir); err != nil {
		fatal(err)
	}
}

// layoutFile stores the regions needed to preload a replayed trace:
// name, base, bytes per line.
const layoutFile = "layout.txt"

func doRecord(cfg vcoma.Config, benchName string, scale workload.Scale, dir string) error {
	bench, err := workload.ByName(strings.ToUpper(benchName), scale)
	if err != nil {
		return err
	}
	prog, err := bench.Build(cfg.Geometry, cfg.Geometry.Nodes())
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	var lay strings.Builder
	for _, r := range prog.Layout().Regions() {
		fmt.Fprintf(&lay, "%s %d %d\n", r.Name, uint64(r.Base), r.Bytes)
	}
	if err := os.WriteFile(filepath.Join(dir, layoutFile), []byte(lay.String()), 0o644); err != nil {
		return err
	}

	total := uint64(0)
	for p, s := range prog.Streams() {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("proc%03d.vct", p)))
		if err != nil {
			return err
		}
		rec, err := trace.NewRecorder(s, f)
		if err != nil {
			return err
		}
		for {
			if _, ok := rec.Next(); !ok {
				break
			}
		}
		if err := rec.Close(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		total += rec.Count()
	}
	fmt.Printf("recorded %s: %d events across %d processors into %s\n",
		prog.Name(), total, prog.Procs(), dir)
	return nil
}

func doReplay(cfg vcoma.Config, dir string) error {
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}

	// Preload from the saved layout.
	layBytes, err := os.ReadFile(filepath.Join(dir, layoutFile))
	if err != nil {
		return err
	}
	var regions []vm.Region
	for _, line := range strings.Split(strings.TrimSpace(string(layBytes)), "\n") {
		var name string
		var base, size uint64
		if _, err := fmt.Sscanf(line, "%s %d %d", &name, &base, &size); err != nil {
			return fmt.Errorf("bad layout line %q: %w", line, err)
		}
		regions = append(regions, vm.Region{Name: name, Base: addr.Virtual(base), Bytes: size})
	}
	layout, err := vm.LayoutFromRegions(cfg.Geometry, regions)
	if err != nil {
		return err
	}
	m.Preload(layout)

	var streams []trace.Stream
	var files []*os.File
	for p := 0; p < cfg.Geometry.Nodes(); p++ {
		f, err := os.Open(filepath.Join(dir, fmt.Sprintf("proc%03d.vct", p)))
		if err != nil {
			return err
		}
		files = append(files, f)
		rd, err := trace.NewReader(f)
		if err != nil {
			return err
		}
		streams = append(streams, rd)
	}
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()

	eng, err := sim.New(m, streams)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := eng.Run()
	if err != nil {
		return err
	}
	tot := res.TotalProc()
	fmt.Printf("replayed %d events on %v in %v\n", res.Events, cfg.Scheme, time.Since(start).Round(time.Millisecond))
	fmt.Printf("exec=%d cycles  busy=%d sync=%d loc=%d rem=%d trans=%d\n",
		res.ExecTime, tot.Busy, tot.Sync, tot.StallLocal, tot.StallRemote, tot.Trans)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcoma-trace:", err)
	os.Exit(1)
}
