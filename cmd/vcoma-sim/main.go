// Command vcoma-sim runs one benchmark on one machine configuration and
// prints a run summary: execution-time breakdown, cache and protocol
// statistics, and translation-buffer behaviour.
//
// Examples:
//
//	vcoma-sim -bench RADIX -scheme vcoma -scale small
//	vcoma-sim -bench FFT -scheme l0 -tlb 16 -org dm -scale test
//	vcoma-sim -bench OCEAN -scheme vcoma -json | jq .breakdown
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"vcoma"
	"vcoma/internal/cli"
	"vcoma/internal/experiments"
	"vcoma/internal/obs"
	"vcoma/internal/report"
)

func main() {
	var (
		benchName = flag.String("bench", "RADIX", "benchmark: RADIX, FFT, FMM, OCEAN, RAYTRACE, BARNES")
		schemeStr = flag.String("scheme", "vcoma", "translation scheme: l0, l1, l2, l3, vcoma")
		scaleStr  = flag.String("scale", "small", "workload scale: test, small, paper")
		entries   = flag.Int("tlb", 8, "TLB/DLB entries")
		orgStr    = flag.String("org", "fa", "TLB/DLB organization: fa (fully associative) or dm (direct mapped)")
		seed      = flag.Uint64("seed", 0, "override the configuration seed (0 = default)")
		verbose   = flag.Bool("v", false, "print per-node statistics")
		jsonOut   = flag.Bool("json", false, "emit the run summary as JSON (report.RunSummary schema)")

		metricsOut      = flag.String("metrics-out", "", "write epoch-sampled metrics to this file (.csv for CSV, else JSON)")
		metricsInterval = flag.Uint64("metrics-interval", 10000, "sampling epoch in simulated cycles for -metrics-out")
		traceOut        = flag.String("trace-out", "", "write Chrome trace-event JSON (open in Perfetto) to this file")
		traceCats       = flag.String("trace-categories", "", "comma-separated trace categories to keep: trans,dlb,coh,repl,sync (empty = all)")
		pprofAddr       = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")

		par = flag.Int("par", 1, "shard the simulated processors across N goroutines (results are byte-identical to -par 1)")
	)
	budgetOf := cli.BudgetFlags()
	fsFaultOf := cli.FsFaultFlags()
	newLog := cli.LogFlags("vcoma-sim")
	flag.Parse()
	log = newLog()

	if err := obs.StartPprof(*pprofAddr); err != nil {
		fatal(err)
	}
	fsys, fsDump, err := fsFaultOf()
	if err != nil {
		fatal(err)
	}
	dumpOpLog = fsDump

	cfg := vcoma.Baseline()
	scheme, err := parseScheme(*schemeStr)
	if err != nil {
		fatal(err)
	}
	org := vcoma.FullyAssoc
	if strings.EqualFold(*orgStr, "dm") {
		org = vcoma.DirectMapped
	}
	cfg = cfg.WithScheme(scheme).WithTLB(*entries, org)
	if *seed != 0 {
		cfg.Seed = *seed
	}
	scale, err := parseScale(*scaleStr)
	if err != nil {
		fatal(err)
	}
	bench, err := vcoma.BenchmarkByName(strings.ToUpper(*benchName), scale)
	if err != nil {
		fatal(err)
	}

	var o *vcoma.Observer
	if *metricsOut != "" || *traceOut != "" {
		opt := vcoma.ObserverOptions{TraceCategories: *traceCats}
		if *metricsOut != "" {
			opt.MetricsInterval = *metricsInterval
		}
		if *traceOut != "" {
			opt.TraceCapacity = 1 << 16
		}
		o = vcoma.NewObserver(opt)
	}

	// The run is supervised: Ctrl-C aborts it cleanly, and any armed
	// watchdog budget trips with a full diagnostic dump instead of a hang.
	ctx, cancel := cli.SignalContext(context.Background(), "vcoma-sim")
	defer cancel(nil)
	runCtx = ctx

	start := time.Now()
	res, err := vcoma.RunWithOptions(ctx, cfg, bench, vcoma.RunOptions{Observer: o, Budget: budgetOf(), Shards: *par})
	if err != nil {
		var we *vcoma.WatchdogError
		if errors.As(err, &we) {
			fmt.Fprint(os.Stderr, we.Dump.Render())
		}
		fatal(err)
	}
	elapsed := time.Since(start)

	if *metricsOut != "" {
		ts := o.Sampler.Export()
		render := ts.WriteJSON
		if strings.HasSuffix(*metricsOut, ".csv") {
			render = ts.WriteCSV
		}
		if err := cli.AtomicOutput(fsys, "metrics-out", *metricsOut, render); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		if err := cli.AtomicOutput(fsys, "trace-out", *traceOut, func(w io.Writer) error {
			return o.Tracer.WriteJSON(w, "node")
		}); err != nil {
			fatal(err)
		}
	}

	tot := res.Sim.TotalProc()
	ms := res.Machine.TotalStats()
	ps := res.Machine.Protocol().Stats()
	ns := res.Machine.Protocol().Fabric().Stats()

	if *jsonOut {
		// The deterministic part of the summary is built by the same helper
		// the service uses, so `vcoma-sim -json` and a vcoma-serve artifact
		// agree field for field; wall time is stamped on afterwards.
		sum := experiments.RunSummaryOf(cfg, bench.Name(), scale, res.Program.Layout(), res.Machine, res.Sim)
		sum.SimSeconds = elapsed.Seconds()
		if o != nil {
			if o.Sampler != nil {
				ts := o.Sampler.Export()
				sum.TimeSeries = &ts
			}
			sum.Latency = o.Registry.Histograms()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fatal(err)
		}
		writeOpLog()
		cli.LogExit(log, "vcoma-sim", startTime, cli.ExitOK, nil)
		return
	}

	fmt.Printf("%s on %v (%d entries, %v), scale %v — simulated in %v\n\n",
		bench.Name(), scheme, *entries, org, scale, elapsed.Round(time.Millisecond))
	fmt.Printf("shared data: %.2f MB in %d regions\n", res.SharedMB(), len(res.Layout().Regions()))
	fmt.Printf("execution time: %d cycles (%.2f ms at 200 MHz)\n\n",
		res.ExecTime(), float64(res.ExecTime())/200e3)

	total := float64(tot.Total())
	rows := [][]string{
		{"busy", fmt.Sprint(tot.Busy / uint64(len(res.Sim.Procs))), pct(float64(tot.Busy), total)},
		{"sync", fmt.Sprint(tot.Sync / uint64(len(res.Sim.Procs))), pct(float64(tot.Sync), total)},
		{"loc-stall", fmt.Sprint(tot.StallLocal / uint64(len(res.Sim.Procs))), pct(float64(tot.StallLocal), total)},
		{"rem-stall", fmt.Sprint(tot.StallRemote / uint64(len(res.Sim.Procs))), pct(float64(tot.StallRemote), total)},
		{"translation", fmt.Sprint(tot.Trans / uint64(len(res.Sim.Procs))), pct(float64(tot.Trans), total)},
	}
	fmt.Println(report.Table([]string{"category", "cycles/proc", "share"}, rows))

	fmt.Printf("references: %d (%.1f%% writes)\n", ms.Refs, 100*float64(ms.Writes)/float64(ms.Refs))
	fmt.Printf("hits: FLC %.1f%%  SLC %.1f%%  local-AM %.1f%%  remote %.2f%%\n",
		100*float64(ms.FLCHits)/float64(ms.Refs), 100*float64(ms.SLCHits)/float64(ms.Refs),
		100*float64(ms.LocalAM)/float64(ms.Refs), 100*float64(ms.Remote)/float64(ms.Refs))
	if ms.TLBAccesses > 0 {
		fmt.Printf("TLB: %d accesses, %d misses (%.2f%% of refs)\n",
			ms.TLBAccesses, ms.TLBMisses, 100*float64(ms.TLBMisses)/float64(ms.Refs))
	}
	if scheme == vcoma.VCOMA {
		var lookups, misses uint64
		for n := 0; n < cfg.Geometry.Nodes(); n++ {
			st := res.Machine.Engine(vcoma.Node(n)).Stats()
			lookups += st.Lookups
			misses += st.Misses
		}
		fmt.Printf("DLB: %d lookups, %d misses (%.4f%% of refs)\n",
			lookups, misses, 100*float64(misses)/float64(ms.Refs))
	}
	fmt.Printf("protocol: %d remote reads, %d upgrades, %d write fetches, %d invalidations\n",
		ps.RemoteReads, ps.Upgrades, ps.WriteFetches, ps.Invalidations)
	fmt.Printf("replacement: %d shared drops, %d relocations, %d injections (%d hops), %d swaps\n",
		ps.SharedDrops, ps.Relocations, ps.Injections, ps.InjectionHops, ps.Swaps)
	fmt.Printf("network: %d requests, %d blocks, %.1f queue cycles/message\n",
		ns.Requests, ns.Blocks, float64(ns.QueueCycles)/float64(ns.Requests+ns.Blocks))

	if o != nil {
		for _, h := range o.Registry.Histograms() {
			fmt.Printf("\n%s\n", h.Render())
		}
		if tr := o.Tracer; tr != nil && tr.Dropped() > 0 {
			fmt.Printf("\ntrace: ring buffer full, %d oldest events dropped\n", tr.Dropped())
		}
	}

	if *verbose {
		fmt.Println("\nper-node references and stalls:")
		var rows [][]string
		for n := 0; n < cfg.Geometry.Nodes(); n++ {
			s := res.Machine.NodeStats(vcoma.Node(n))
			p := res.Sim.Procs[n]
			rows = append(rows, []string{
				fmt.Sprint(n), fmt.Sprint(s.Refs), fmt.Sprint(p.Busy), fmt.Sprint(p.Sync),
				fmt.Sprint(p.StallLocal), fmt.Sprint(p.StallRemote), fmt.Sprint(p.Trans), fmt.Sprint(p.Finish),
			})
		}
		fmt.Println(report.Table([]string{"node", "refs", "busy", "sync", "loc", "rem", "trans", "finish"}, rows))
	}
	writeOpLog()
	cli.LogExit(log, "vcoma-sim", startTime, cli.ExitOK, nil)
}

func pct(v, total float64) string { return fmt.Sprintf("%.1f%%", 100*v/total) }

func parseScheme(s string) (vcoma.Scheme, error) {
	switch strings.ToLower(s) {
	case "l0", "l0-tlb":
		return vcoma.L0TLB, nil
	case "l1", "l1-tlb":
		return vcoma.L1TLB, nil
	case "l2", "l2-tlb":
		return vcoma.L2TLB, nil
	case "l3", "l3-tlb":
		return vcoma.L3TLB, nil
	case "v", "vcoma", "v-coma":
		return vcoma.VCOMA, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (want l0, l1, l2, l3 or vcoma)", s)
	}
}

func parseScale(s string) (vcoma.Scale, error) {
	switch strings.ToLower(s) {
	case "test":
		return vcoma.ScaleTest, nil
	case "small":
		return vcoma.ScaleSmall, nil
	case "paper":
		return vcoma.ScalePaper, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want test, small or paper)", s)
	}
}

// runCtx is the signal context once armed; fatal consults it so an
// interrupted run exits 128+signum per the shared convention. startTime and
// log feed the final structured line every exit path emits.
var (
	runCtx    context.Context
	startTime = time.Now()
	log       *slog.Logger
)

// dumpOpLog writes the -fsfault-log op trace; set once flags are parsed.
var dumpOpLog func() error

func writeOpLog() {
	if dumpOpLog != nil {
		if err := dumpOpLog(); err != nil {
			fmt.Fprintf(os.Stderr, "vcoma-sim: fsfault-log: %v\n", err)
		}
	}
}

func fatal(err error) {
	writeOpLog()
	fmt.Fprintln(os.Stderr, "vcoma-sim:", err)
	code := cli.ExitCode(runCtx, err)
	cli.LogExit(log, "vcoma-sim", startTime, code, err)
	os.Exit(code)
}
