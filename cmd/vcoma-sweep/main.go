// Command vcoma-sweep regenerates one of the paper's tables or figures.
// Passes run through the experiment runner: in parallel on a bounded worker
// pool (-jobs) with an on-disk result cache (-cache) shared with
// vcoma-report. Output order follows the benchmark list, never completion
// order.
//
// Examples:
//
//	vcoma-sweep -exp fig8 -bench RADIX -scale small
//	vcoma-sweep -exp table2 -scale small          # all six benchmarks
//	vcoma-sweep -exp fig10 -bench RAYTRACE -scale small -jobs 4
//	vcoma-sweep -exp fig11 -bench FFT
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"vcoma"
	"vcoma/internal/experiments"
	"vcoma/internal/obs"
	"vcoma/internal/runner"
	"vcoma/internal/workload"
)

func main() {
	var (
		expName    = flag.String("exp", "fig8", "experiment: fig8, fig9, table2, table3, table4, fig10, fig11, mgmt, tags, ablation, dlborg")
		benchList  = flag.String("bench", "", "comma-separated benchmarks (default: all six)")
		scaleStr   = flag.String("scale", "small", "workload scale: test, small, paper")
		markdown   = flag.Bool("md", false, "emit Markdown tables")
		jobs       = flag.Int("jobs", 0, "parallel simulation jobs (0 = GOMAXPROCS)")
		cacheDir   = flag.String("cache", ".vcoma-cache", "result cache directory")
		noCache    = flag.Bool("no-cache", false, "disable the result cache")
		metrics    = flag.Bool("job-metrics", false, "sample each freshly-computed pass and write its time series next to the cache entry")
		metricsInt = flag.Uint64("metrics-interval", 0, "sampling epoch in simulated cycles for -job-metrics (0 = default)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if err := obs.StartPprof(*pprofAddr); err != nil {
		fatal(err)
	}

	scale, err := parseScale(*scaleStr)
	if err != nil {
		fatal(err)
	}
	names := workload.Names()
	if *benchList != "" {
		names = nil
		for _, n := range strings.Split(*benchList, ",") {
			names = append(names, strings.ToUpper(strings.TrimSpace(n)))
		}
	}
	cfg := experiments.ConfigForScale(vcoma.Baseline(), scale)
	exp := strings.ToLower(*expName)

	if exp == "tags" {
		// Analytic table; nothing to simulate.
		fmt.Println(experiments.RenderTagOverhead(*markdown))
		return
	}

	dlbSizes := []int{8, 16, 32, 64}

	// Enumerate the experiment's passes as runner jobs.
	plan := experiments.NewPlan(cfg, scale)
	for _, name := range names {
		var err error
		switch exp {
		case "fig8", "fig9", "table2", "table3":
			err = plan.AddObserve(name)
		case "table4":
			err = plan.AddTable4(name)
		case "fig10":
			err = plan.AddFigure10(name)
		case "fig11":
			err = plan.AddFigure11(name)
		case "mgmt":
			err = plan.AddMgmt(name, experiments.MgmtSamplePages)
		case "ablation":
			err = plan.AddAblation(name)
		case "dlborg":
			err = plan.AddDLBOrg(name, dlbSizes)
		default:
			err = fmt.Errorf("unknown experiment %q", *expName)
		}
		if err != nil {
			fatal(err)
		}
	}

	var cache *runner.Cache
	if !*noCache {
		if cache, err = runner.OpenCache(*cacheDir); err != nil {
			fatal(err)
		}
	}
	res, err := plan.Run(context.Background(), runner.Options{
		Workers:         *jobs,
		Cache:           cache,
		Policy:          runner.FailFast,
		Progress:        runner.NewProgress(os.Stderr),
		Metrics:         *metrics,
		MetricsInterval: *metricsInt,
	})
	if err != nil {
		fatal(err)
	}

	// Render in benchmark-list order, never completion order.
	var t2 []experiments.Table2Row
	var t3 []experiments.Table3Row
	var t4 []experiments.Table4Row
	for _, name := range names {
		switch exp {
		case "fig8", "fig9", "table2", "table3":
			obs, err := res.Observed(name)
			if err != nil {
				fatal(err)
			}
			switch exp {
			case "fig8":
				fmt.Println(experiments.Figure8(obs).Render(*markdown))
			case "fig9":
				fmt.Println(experiments.Figure9(obs).Render(*markdown))
			case "table2":
				t2 = append(t2, experiments.Table2(obs))
			case "table3":
				t3 = append(t3, experiments.Table3(obs))
			}
		case "table4":
			row, err := res.Table4(name)
			if err != nil {
				fatal(err)
			}
			t4 = append(t4, row)
		case "fig10":
			r, err := res.Figure10(name)
			if err != nil {
				fatal(err)
			}
			fmt.Println(r.Render(*markdown))
		case "fig11":
			r, err := res.Figure11(name)
			if err != nil {
				fatal(err)
			}
			fmt.Println(r.Render(*markdown))
		case "mgmt":
			rows, err := res.Mgmt(name)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("(%s)\n%s\n", name, experiments.RenderMgmt(rows, *markdown))
		case "ablation":
			rows, err := res.Ablation(name)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("(%s)\n%s\n", name, experiments.RenderAblation(rows, *markdown))
		case "dlborg":
			data, err := res.DLBOrg(name)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("(%s)\n%s\n", name, experiments.RenderDLBOrg(data, dlbSizes, *markdown))
		}
	}
	if t2 != nil {
		fmt.Println(experiments.RenderTable2(t2, *markdown))
	}
	if t3 != nil {
		fmt.Println(experiments.RenderTable3(t3, *markdown))
	}
	if t4 != nil {
		fmt.Println(experiments.RenderTable4(t4, *markdown))
	}
}

func parseScale(s string) (workload.Scale, error) {
	switch strings.ToLower(s) {
	case "test":
		return workload.ScaleTest, nil
	case "small":
		return workload.ScaleSmall, nil
	case "paper":
		return workload.ScalePaper, nil
	default:
		return 0, fmt.Errorf("unknown scale %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcoma-sweep:", err)
	os.Exit(1)
}
