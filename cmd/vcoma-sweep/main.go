// Command vcoma-sweep regenerates one of the paper's tables or figures.
// Passes run through the experiment runner: in parallel on a bounded worker
// pool (-jobs) with an on-disk result cache (-cache) shared with
// vcoma-report. Output order follows the benchmark list, never completion
// order.
//
// Runs are supervised: SIGINT/SIGTERM cancels cleanly, per-pass deadlines
// (-job-timeout) and watchdog budgets (-max-cycles, -stall-events, ...)
// reclaim hung simulations, transient failures retry (-retries), and an
// interrupted sweep resumes from its journal (-resume) without recomputing
// finished passes.
//
// Examples:
//
//	vcoma-sweep -exp fig8 -bench RADIX -scale small
//	vcoma-sweep -exp table2 -scale small          # all six benchmarks
//	vcoma-sweep -exp fig10 -bench RAYTRACE -scale small -jobs 4
//	vcoma-sweep -exp table4 -scale paper -job-timeout 10m -retries 2
//	vcoma-sweep -exp table4 -scale paper -resume  # after an interruption
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vcoma"
	"vcoma/internal/cli"
	"vcoma/internal/experiments"
	"vcoma/internal/obs"
	"vcoma/internal/runner"
	"vcoma/internal/workload"
)

func main() {
	code := run()
	cli.LogExit(log, "vcoma-sweep", startTime, code, nil)
	os.Exit(code)
}

func run() int {
	var (
		expName    = flag.String("exp", "fig8", "experiment: fig8, fig9, table2, table3, table4, fig10, fig11, mgmt, tags, ablation, dlborg")
		benchList  = flag.String("bench", "", "comma-separated benchmarks (default: all six)")
		scaleStr   = flag.String("scale", "small", "workload scale: test, small, paper")
		markdown   = flag.Bool("md", false, "emit Markdown tables")
		jobs       = flag.Int("jobs", 0, "parallel simulation jobs (0 = GOMAXPROCS)")
		cacheDir   = flag.String("cache", ".vcoma-cache", "result cache directory")
		noCache    = flag.Bool("no-cache", false, "disable the result cache")
		metrics    = flag.Bool("job-metrics", false, "sample each freshly-computed pass and write its time series next to the cache entry")
		metricsInt = flag.Uint64("metrics-interval", 0, "sampling epoch in simulated cycles for -job-metrics (0 = default)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		keepGoing  = flag.Bool("keep-going", false, "render the cells that succeeded when some passes fail (partial output, exit status 2)")
		resume     = flag.Bool("resume", false, "resume an interrupted sweep from the journal in the cache directory")
		chaosSpec  = flag.String("chaos", "", "fault-injection spec for testing the supervisor: panic:<substr>,hang:<substr>,flaky:<substr>:<n>,cancel:<n>,corrupt:<substr>")
	)
	budgetOf := cli.BudgetFlags()
	retryOf, jobTimeout := cli.RetryFlags()
	fsFaultOf := cli.FsFaultFlags()
	newLog := cli.LogFlags("vcoma-sweep")
	flag.Parse()
	log = newLog()
	if err := obs.StartPprof(*pprofAddr); err != nil {
		return fatal(err)
	}

	scale, err := parseScale(*scaleStr)
	if err != nil {
		return fatal(err)
	}
	names := workload.Names()
	if *benchList != "" {
		names = nil
		for _, n := range strings.Split(*benchList, ",") {
			names = append(names, strings.ToUpper(strings.TrimSpace(n)))
		}
	}
	cfg := experiments.ConfigForScale(vcoma.Baseline(), scale)
	exp := strings.ToLower(*expName)

	if exp == "tags" {
		// Analytic table; nothing to simulate.
		fmt.Println(experiments.RenderTagOverhead(*markdown))
		return 0
	}

	dlbSizes := []int{8, 16, 32, 64}

	// Enumerate the experiment's passes as runner jobs.
	plan := experiments.NewPlan(cfg, scale)
	for _, name := range names {
		var err error
		switch exp {
		case "fig8", "fig9", "table2", "table3":
			err = plan.AddObserve(name)
		case "table4":
			err = plan.AddTable4(name)
		case "fig10":
			err = plan.AddFigure10(name)
		case "fig11":
			err = plan.AddFigure11(name)
		case "mgmt":
			err = plan.AddMgmt(name, experiments.MgmtSamplePages)
		case "ablation":
			err = plan.AddAblation(name)
		case "dlborg":
			err = plan.AddDLBOrg(name, dlbSizes)
		default:
			err = fmt.Errorf("unknown experiment %q", *expName)
		}
		if err != nil {
			return fatal(err)
		}
	}

	chaos, err := runner.ParseChaos(*chaosSpec)
	if err != nil {
		return fatal(err)
	}
	fsys, fsDump, err := fsFaultOf()
	if err != nil {
		return fatal(err)
	}
	defer func() {
		if err := fsDump(); err != nil {
			fmt.Fprintf(os.Stderr, "fsfault-log: %v\n", err)
		}
	}()

	ctx, cancel := cli.SignalContext(context.Background(), "vcoma-sweep")
	defer cancel(nil)
	ctx = experiments.WithBudget(ctx, budgetOf())
	runCtx = ctx

	var cache *runner.Cache
	var journal *runner.Journal
	if !*noCache {
		if cache, err = runner.OpenCacheFS(*cacheDir, fsys); err != nil {
			return fatal(err)
		}
		// One sweep per cache directory: a second writer would interleave
		// journal records and progress output with ours.
		lock, err := runner.AcquireDirLock(*cacheDir)
		if err != nil {
			return fatal(err)
		}
		defer lock.Release()

		jpath := filepath.Join(*cacheDir, "journal.json")
		if *resume {
			var prev map[string]runner.JournalEntry
			journal, prev, err = runner.ResumeJournalFS(jpath, plan.Key(), fsys)
			if err != nil {
				return fatal(err)
			}
			fmt.Fprintf(os.Stderr, "resuming: journal records %d finished pass(es); cached results satisfy them without recomputing\n", len(prev))
		} else if journal, err = runner.CreateJournalFS(jpath, plan.Key(), len(plan.Jobs()), fsys); err != nil {
			return fatal(err)
		}
		defer journal.Close()
	} else if *resume {
		return fatal(errors.New("-resume needs the cache: the journal lives in the cache directory"))
	}

	if chaos != nil {
		chaos.BindCancel(cancel)
		if cache != nil {
			if n, err := chaos.CorruptMatching(cache, plan.Jobs()); err != nil {
				return fatal(err)
			} else if n > 0 {
				fmt.Fprintf(os.Stderr, "chaos: corrupted %d cache entr(ies)\n", n)
			}
		}
		plan.ApplyChaos(chaos)
	}

	policy := runner.FailFast
	if *keepGoing {
		policy = runner.CollectAll
	}
	res, runErr := plan.Run(ctx, runner.Options{
		Workers:         *jobs,
		Cache:           cache,
		Policy:          policy,
		Progress:        runner.NewProgress(os.Stderr),
		Metrics:         *metrics,
		MetricsInterval: *metricsInt,
		JobTimeout:      *jobTimeout,
		Retry:           retryOf(),
		Journal:         journal,
	})
	if runErr != nil && !*keepGoing {
		// The journal stays behind: rerunning with -resume picks up here.
		return fatal(runErr)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "vcoma-sweep: continuing past failures (-keep-going): %v\n", runErr)
	}

	// Render in benchmark-list order, never completion order. Under
	// -keep-going a failed cell prints a warning instead of output.
	failed := 0
	cell := func(name string, f func() error) {
		if err := f(); err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "vcoma-sweep: %s/%s failed: %v\n", exp, name, err)
		}
	}
	var t2 []experiments.Table2Row
	var t3 []experiments.Table3Row
	var t4 []experiments.Table4Row
	for _, name := range names {
		name := name
		switch exp {
		case "fig8", "fig9", "table2", "table3":
			cell(name, func() error {
				obs, err := res.Observed(name)
				if err != nil {
					return err
				}
				switch exp {
				case "fig8":
					fmt.Println(experiments.Figure8(obs).Render(*markdown))
				case "fig9":
					fmt.Println(experiments.Figure9(obs).Render(*markdown))
				case "table2":
					t2 = append(t2, experiments.Table2(obs))
				case "table3":
					t3 = append(t3, experiments.Table3(obs))
				}
				return nil
			})
		case "table4":
			cell(name, func() error {
				row, err := res.Table4(name)
				if err != nil {
					return err
				}
				t4 = append(t4, row)
				return nil
			})
		case "fig10":
			cell(name, func() error {
				r, err := res.Figure10(name)
				if err != nil {
					return err
				}
				fmt.Println(r.Render(*markdown))
				return nil
			})
		case "fig11":
			cell(name, func() error {
				r, err := res.Figure11(name)
				if err != nil {
					return err
				}
				fmt.Println(r.Render(*markdown))
				return nil
			})
		case "mgmt":
			cell(name, func() error {
				rows, err := res.Mgmt(name)
				if err != nil {
					return err
				}
				fmt.Printf("(%s)\n%s\n", name, experiments.RenderMgmt(rows, *markdown))
				return nil
			})
		case "ablation":
			cell(name, func() error {
				rows, err := res.Ablation(name)
				if err != nil {
					return err
				}
				fmt.Printf("(%s)\n%s\n", name, experiments.RenderAblation(rows, *markdown))
				return nil
			})
		case "dlborg":
			cell(name, func() error {
				data, err := res.DLBOrg(name)
				if err != nil {
					return err
				}
				fmt.Printf("(%s)\n%s\n", name, experiments.RenderDLBOrg(data, dlbSizes, *markdown))
				return nil
			})
		}
	}
	if t2 != nil {
		fmt.Println(experiments.RenderTable2(t2, *markdown))
	}
	if t3 != nil {
		fmt.Println(experiments.RenderTable3(t3, *markdown))
	}
	if t4 != nil {
		fmt.Println(experiments.RenderTable4(t4, *markdown))
	}
	if failed > 0 || runErr != nil {
		fmt.Fprintf(os.Stderr, "vcoma-sweep: PARTIAL OUTPUT: %d cell(s) failed; rerun with -resume to fill them in\n", failed)
		// A signal outranks partial status: an interrupted -keep-going run
		// reports 128+signum, not 2.
		if sig := cli.ExitCode(ctx, context.Cause(ctx)); sig > cli.ExitPartial {
			return sig
		}
		return cli.ExitPartial
	}
	if journal != nil {
		if err := journal.Complete(); err != nil {
			return fatal(err)
		}
	}
	return 0
}

func parseScale(s string) (workload.Scale, error) {
	switch strings.ToLower(s) {
	case "test":
		return workload.ScaleTest, nil
	case "small":
		return workload.ScaleSmall, nil
	case "paper":
		return workload.ScalePaper, nil
	default:
		return 0, fmt.Errorf("unknown scale %q", s)
	}
}

// runCtx is the signal context once armed; fatal consults it so an
// interrupted sweep exits 128+signum per the shared convention. startTime
// and log feed the final structured line main emits on every exit path.
var (
	runCtx    context.Context
	startTime = time.Now()
	log       *slog.Logger
)

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "vcoma-sweep:", err)
	return cli.ExitCode(runCtx, err)
}
