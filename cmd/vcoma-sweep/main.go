// Command vcoma-sweep regenerates one of the paper's tables or figures.
//
// Examples:
//
//	vcoma-sweep -exp fig8 -bench RADIX -scale small
//	vcoma-sweep -exp table2 -scale small          # all six benchmarks
//	vcoma-sweep -exp fig10 -bench RAYTRACE -scale small
//	vcoma-sweep -exp fig11 -bench FFT
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vcoma"
	"vcoma/internal/experiments"
	"vcoma/internal/workload"
)

func main() {
	var (
		expName   = flag.String("exp", "fig8", "experiment: fig8, fig9, table2, table3, table4, fig10, fig11, mgmt, tags, ablation, dlborg")
		benchList = flag.String("bench", "", "comma-separated benchmarks (default: all six)")
		scaleStr  = flag.String("scale", "small", "workload scale: test, small, paper")
		markdown  = flag.Bool("md", false, "emit Markdown tables")
	)
	flag.Parse()

	scale, err := parseScale(*scaleStr)
	if err != nil {
		fatal(err)
	}
	names := workload.Names()
	if *benchList != "" {
		names = nil
		for _, n := range strings.Split(*benchList, ",") {
			names = append(names, strings.ToUpper(strings.TrimSpace(n)))
		}
	}
	cfg := experiments.ConfigForScale(vcoma.Baseline(), scale)

	switch strings.ToLower(*expName) {
	case "fig8", "fig9", "table2", "table3":
		var t2 []experiments.Table2Row
		var t3 []experiments.Table3Row
		for _, name := range names {
			bench, err := workload.ByName(name, scale)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "observing %s (5 scheme passes)...\n", name)
			obs, err := experiments.Observe(cfg, bench)
			if err != nil {
				fatal(err)
			}
			switch strings.ToLower(*expName) {
			case "fig8":
				fmt.Println(experiments.Figure8(obs).Render(*markdown))
			case "fig9":
				fmt.Println(experiments.Figure9(obs).Render(*markdown))
			case "table2":
				t2 = append(t2, experiments.Table2(obs))
			case "table3":
				t3 = append(t3, experiments.Table3(obs))
			}
		}
		if t2 != nil {
			fmt.Println(experiments.RenderTable2(t2, *markdown))
		}
		if t3 != nil {
			fmt.Println(experiments.RenderTable3(t3, *markdown))
		}
	case "table4":
		var rows []experiments.Table4Row
		for _, name := range names {
			bench, err := workload.ByName(name, scale)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "timing %s (4 configurations)...\n", name)
			row, err := experiments.Table4(cfg, bench)
			if err != nil {
				fatal(err)
			}
			rows = append(rows, row)
		}
		fmt.Println(experiments.RenderTable4(rows, *markdown))
	case "fig10":
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "timing %s (Figure 10 configurations)...\n", name)
			r, err := experiments.Figure10(cfg, name, scale)
			if err != nil {
				fatal(err)
			}
			fmt.Println(r.Render(*markdown))
		}
	case "fig11":
		for _, name := range names {
			bench, err := workload.ByName(name, scale)
			if err != nil {
				fatal(err)
			}
			r, err := experiments.Figure11(cfg, bench)
			if err != nil {
				fatal(err)
			}
			fmt.Println(r.Render(*markdown))
		}
	case "mgmt":
		for _, name := range names {
			bench, err := workload.ByName(name, scale)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "management study on %s (5 schemes)...\n", name)
			rows, err := experiments.MgmtStudy(cfg, bench, 16)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("(%s)\n%s\n", name, experiments.RenderMgmt(rows, *markdown))
		}
	case "tags":
		fmt.Println(experiments.RenderTagOverhead(*markdown))
	case "ablation":
		for _, name := range names {
			bench, err := workload.ByName(name, scale)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "ablation study on %s (4 variants)...\n", name)
			rows, err := experiments.AblationStudy(cfg, bench)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("(%s)\n%s\n", name, experiments.RenderAblation(rows, *markdown))
		}
	case "dlborg":
		sizes := []int{8, 16, 32, 64}
		for _, name := range names {
			bench, err := workload.ByName(name, scale)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "DLB organization sweep on %s...\n", name)
			data, err := experiments.DLBOrgStudy(cfg, bench, sizes)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("(%s)\n%s\n", name, experiments.RenderDLBOrg(data, sizes, *markdown))
		}
	default:
		fatal(fmt.Errorf("unknown experiment %q", *expName))
	}
}

func parseScale(s string) (workload.Scale, error) {
	switch strings.ToLower(s) {
	case "test":
		return workload.ScaleTest, nil
	case "small":
		return workload.ScaleSmall, nil
	case "paper":
		return workload.ScalePaper, nil
	default:
		return 0, fmt.Errorf("unknown scale %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcoma-sweep:", err)
	os.Exit(1)
}
