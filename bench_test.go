// Benchmarks regenerating each of the paper's tables and figures, plus
// microbenchmarks of the simulator's hot paths.
//
// Each BenchmarkTableN / BenchmarkFigureN runs the corresponding experiment
// end to end at the test workload scale (the full-size reproduction is
// `go run ./cmd/vcoma-report -scale paper`, which takes minutes). Custom
// metrics report the experiment's headline quantities alongside ns/op.
package vcoma

import (
	"fmt"
	"testing"

	"vcoma/internal/addr"
	"vcoma/internal/cache"
	"vcoma/internal/config"
	"vcoma/internal/experiments"
	"vcoma/internal/obs"
	"vcoma/internal/prng"
	"vcoma/internal/tlb"
	"vcoma/internal/trace"
	"vcoma/internal/workload"
)

func benchConfig() Config {
	return experiments.ConfigForScale(Baseline(), ScaleTest)
}

func mustBench(b *testing.B, name string) Benchmark {
	b.Helper()
	w, err := BenchmarkByName(name, ScaleTest)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// observe runs the five scheme passes (the shared harness behind Figure 8,
// Figure 9, Table 2 and Table 3).
func observe(b *testing.B, name string) *experiments.Observed {
	b.Helper()
	obs, err := experiments.Observe(benchConfig(), mustBench(b, name))
	if err != nil {
		b.Fatal(err)
	}
	return obs
}

// BenchmarkFigure8 regenerates the translation-miss-per-node curves
// (misses vs TLB/DLB size for all five schemes).
func BenchmarkFigure8(b *testing.B) {
	for _, name := range BenchmarkNames() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				obs := observe(b, name)
				f := experiments.Figure8(obs)
				l0 := f.Series[0].Points[8]
				vc := f.Series[4].Points[8]
				b.ReportMetric(l0, "L0misses/node")
				b.ReportMetric(vc, "VCOMAmisses/node")
			}
		})
	}
}

// BenchmarkFigure9 regenerates the direct-mapped vs fully-associative
// comparison.
func BenchmarkFigure9(b *testing.B) {
	name := "RADIX"
	for i := 0; i < b.N; i++ {
		obs := observe(b, name)
		f := experiments.Figure9(obs)
		if len(f.Series) != 10 {
			b.Fatal("missing series")
		}
	}
}

// BenchmarkTable2 regenerates the miss-rate-per-reference table.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row := experiments.Table2(observe(b, "FFT"))
		b.ReportMetric(row.Rate[8][config.L0TLB], "L0rate%")
		b.ReportMetric(row.Rate[8][config.VCOMA], "Vrate%")
	}
}

// BenchmarkTable3 regenerates the equivalent-TLB-size table.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row := experiments.Table3(observe(b, "BARNES"))
		if eq := row.Equivalent[config.L0TLB]; eq != 0 {
			b.ReportMetric(eq, "eqL0entries")
		}
	}
}

// BenchmarkTable4 regenerates the translation-time/stall-time ratios
// (timed runs, L0-TLB vs V-COMA at 8 and 16 entries).
func BenchmarkTable4(b *testing.B) {
	for _, name := range []string{"RADIX", "FMM"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row, err := experiments.Table4(benchConfig(), mustBench(b, name))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(row.Ratio[8]["L0-TLB"], "L0ratio%")
				b.ReportMetric(row.Ratio[8]["DLB"], "DLBratio%")
			}
		})
	}
}

// BenchmarkFigure10 regenerates the execution-time breakdowns (including
// the RAYTRACE V2 relayout).
func BenchmarkFigure10(b *testing.B) {
	for _, name := range []string{"OCEAN", "RAYTRACE"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.Figure10(benchConfig(), name, ScaleTest)
				if err != nil {
					b.Fatal(err)
				}
				base := r.Breakdowns[0].Total()
				vc := r.Breakdowns[2].Total()
				b.ReportMetric(vc/base, "VCOMA/L0time")
			}
		})
	}
}

// BenchmarkFigure11 regenerates the global-page-set pressure profile.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure11(benchConfig(), mustBench(b, "FFT"))
		if err != nil {
			b.Fatal(err)
		}
		var mean float64
		for _, v := range r.Pressure {
			mean += v
		}
		b.ReportMetric(mean/float64(len(r.Pressure)), "meanPressure")
	}
}

// BenchmarkTimedRun measures end-to-end simulation throughput per scheme
// (events per second drive how large a scale is practical).
func BenchmarkTimedRun(b *testing.B) {
	for _, sch := range Schemes() {
		b.Run(fmt.Sprint(sch), func(b *testing.B) {
			bench := mustBench(b, "OCEAN")
			for i := 0; i < b.N; i++ {
				res, err := Run(benchConfig().WithScheme(sch), bench)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Sim.Events), "events/run")
			}
		})
	}
}

// BenchmarkObsOverhead measures what the observability layer costs an
// end-to-end RADIX run at test scale. "plain" is the uninstrumented Run;
// "disabled" routes through RunInstrumented with a nil observer, so every
// instrument call site executes its nil-receiver no-op — the two must be
// within noise of each other (the <2% overhead contract). "enabled" turns on
// the sampler and tracer to show the full price of observation. The
// "noop-calls" sub-benchmark isolates the per-call no-op cost itself, which
// must report 0 allocs/op (the same contract TestObsDisabledZeroAlloc gates
// in CI).
func BenchmarkObsOverhead(b *testing.B) {
	cfg := benchConfig()
	bench := mustBench(b, "RADIX")
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := Run(cfg, bench)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Sim.Events), "events/run")
		}
	})
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := RunInstrumented(cfg, bench, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Sim.Events), "events/run")
		}
	})
	b.Run("enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := NewObserver(ObserverOptions{MetricsInterval: 10000, TraceCapacity: 1 << 16})
			res, err := RunInstrumented(cfg, bench, o)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Sim.Events), "events/run")
			b.ReportMetric(float64(o.Tracer.Len()), "traceEvents/run")
		}
	})
	b.Run("noop-calls", func(b *testing.B) {
		b.ReportAllocs()
		var (
			c *obs.Counter
			h *obs.Histogram
			t *obs.Tracer
			s *obs.Sampler
		)
		for i := 0; i < b.N; i++ {
			c.Inc()
			c.Add(3)
			h.Observe(uint64(i))
			if t.Enabled("coh") {
				b.Fatal("nil tracer claims enabled")
			}
			t.Instant("coh", "remote-read", 0, 0, uint64(i))
			s.Tick(uint64(i))
		}
	})
}

// --- microbenchmarks of the simulator substrate ---

func BenchmarkCacheRead(b *testing.B) {
	c := cache.New(config.Baseline().SLC)
	rng := prng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = rng.Uint64n(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(addrs[i%len(addrs)])
	}
}

func BenchmarkTLBAccessFA(b *testing.B) {
	buf := tlb.NewFullyAssoc(64, 1)
	rng := prng.New(2)
	pages := make([]uint64, 1024)
	for i := range pages {
		pages[i] = rng.Uint64n(256)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Access(addr.PageNum(pages[i%len(pages)]))
	}
}

func BenchmarkTLBAccessDM(b *testing.B) {
	buf := tlb.NewDirectMapped(64, 0)
	rng := prng.New(3)
	pages := make([]uint64, 1024)
	for i := range pages {
		pages[i] = rng.Uint64n(256)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Access(addr.PageNum(pages[i%len(pages)]))
	}
}

func BenchmarkGeneratorThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := trace.NewGenerator(func(e *trace.Emitter) {
			for j := 0; j < 100000; j++ {
				e.Read(0x10000)
			}
		})
		n := 0
		for {
			if _, ok := g.Next(); !ok {
				break
			}
			n++
		}
		if n != 100000 {
			b.Fatal("short stream")
		}
	}
}

func BenchmarkWorkloadBuild(b *testing.B) {
	g := benchConfig().Geometry
	for _, name := range BenchmarkNames() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := workload.ByName(name, ScaleTest)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := w.Build(g, g.Nodes()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
