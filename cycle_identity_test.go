// Cycle-identity goldens: these tests pin the engine's exact timing — the
// per-processor breakdowns, execution time, event counts, and machine-wide
// memory-system counters — for every translation scheme, against golden
// files recorded from the seed engine. Hot-path optimizations (scheduler
// indexing, flat TLB/lock/barrier structures, pooled buffers) must keep
// every run cycle-identical; any diff here is a behavioural change, not a
// speedup.
//
// The corpus section replays the committed fuzzgen corpora
// (internal/check/testdata/fuzz), so the goldens also cover the lock-storm,
// barrier-storm, thrash, and pathological-alignment paths the SPLASH-2
// workloads only brush.
//
// Regenerate (after an intended timing change) with:
//
//	go test -run TestCycleIdentity -update-cycles .
package vcoma

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"vcoma/internal/check/fuzzgen"
	"vcoma/internal/config"
	"vcoma/internal/experiments"
	"vcoma/internal/machine"
	"vcoma/internal/sim"
	"vcoma/internal/workload"
)

var updateCycles = flag.Bool("update-cycles", false, "rewrite cycle-identity golden files with current engine output")

// renderRun formats one run's architectural timing as a byte-stable block.
func renderRun(b *strings.Builder, name string, scheme config.Scheme, res sim.Result, m *machine.Machine) {
	fmt.Fprintf(b, "%s scheme=%v exec=%d events=%d\n", name, scheme, res.ExecTime, res.Events)
	for i, p := range res.Procs {
		fmt.Fprintf(b, "  proc %02d busy=%d sync=%d local=%d remote=%d trans=%d finish=%d refs=%d\n",
			i, p.Busy, p.Sync, p.StallLocal, p.StallRemote, p.Trans, p.Finish, p.Refs)
	}
	t := m.TotalStats()
	fmt.Fprintf(b, "  totals refs=%d flc=%d slc=%d localAM=%d remote=%d stallL=%d stallR=%d trans=%d tlbAcc=%d tlbMiss=%d wb=%d\n",
		t.Refs, t.FLCHits, t.SLCHits, t.LocalAM, t.Remote,
		t.StallLocal, t.StallRemote, t.TransCycles, t.TLBAccesses, t.TLBMisses, t.SLCWritebacks)
}

func compareCycleGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateCycles {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-cycles to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("engine timing diverged from the recorded seed engine (%s).\nA deliberate timing change needs -update-cycles.\ngot:\n%s\nwant:\n%s",
			path, got, string(want))
	}
}

// cycleShardCounts are the engine configurations every golden must verify
// under: the sequential engine and the parallel round engine at 2, 4 and 8
// shards. The golden files are recorded from the sequential engine; the
// parallel renderings must match them byte for byte.
var cycleShardCounts = []int{1, 2, 4, 8}

// TestCycleIdentityRadix runs the paper-machine RADIX workload at test scale
// under all five schemes and compares against the recorded goldens — the
// same configuration scripts/benchcore measures, so the perf trajectory and
// the correctness pin cover the identical path. Every shard count must
// reproduce the sequential golden exactly.
func TestCycleIdentityRadix(t *testing.T) {
	cfg := experiments.ConfigForScale(Baseline(), ScaleTest)
	for _, shards := range cycleShardCounts {
		var b strings.Builder
		for _, sch := range Schemes() {
			bench, err := BenchmarkByName("RADIX", ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunParallel(cfg.WithScheme(sch), bench, shards)
			if err != nil {
				t.Fatalf("%v x%d: %v", sch, shards, err)
			}
			renderRun(&b, "RADIX", sch, res.Sim, res.Machine)
		}
		if shards > 1 && *updateCycles {
			continue // goldens are recorded from the sequential engine only
		}
		compareCycleGolden(t, "cycle_identity_radix.golden", b.String())
	}
}

// TestCycleIdentityCorpora replays every committed fuzzgen corpus input
// under all five schemes on the small test machine. FuzzMachine corpora
// carry (seed, scenario, size, scheme); FuzzSchemesAgree carry
// (seed, scenario, size) — both reduce to a derived workload, and both are
// run under all five schemes here (the recorded scheme field only selects
// which scheme the fuzzer exercised; cycle identity must hold for all).
func TestCycleIdentityCorpora(t *testing.T) {
	inputs := map[string][]uint64{}
	for _, dir := range []string{
		"internal/check/testdata/fuzz/FuzzMachine",
		"internal/check/testdata/fuzz/FuzzSchemesAgree",
	} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			vals, err := parseCorpus(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			inputs[filepath.Base(dir)+"/"+e.Name()] = vals
		}
	}
	names := make([]string, 0, len(inputs))
	for n := range inputs {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, shards := range cycleShardCounts {
		var b strings.Builder
		for _, n := range names {
			vals := inputs[n]
			if len(vals) < 3 {
				t.Fatalf("%s: %d values, want at least 3", n, len(vals))
			}
			w := fuzzgen.Derive(vals[0], vals[1], vals[2])
			for _, sch := range Schemes() {
				cfg := config.SmallTest().WithScheme(sch)
				bench := workload.Benchmark(w)
				res, err := RunParallel(cfg, bench, shards)
				if err != nil {
					t.Fatalf("%s under %v x%d: %v", n, sch, shards, err)
				}
				renderRun(&b, n, sch, res.Sim, res.Machine)
			}
		}
		if shards > 1 && *updateCycles {
			continue // goldens are recorded from the sequential engine only
		}
		compareCycleGolden(t, "cycle_identity_corpora.golden", b.String())
	}
}

// parseCorpus reads a Go native fuzz corpus file and returns its uint64
// arguments in order.
func parseCorpus(path string) ([]uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "go test fuzz") {
		return nil, fmt.Errorf("%s: not a fuzz corpus file", path)
	}
	var vals []uint64
	for _, l := range lines[1:] {
		l = strings.TrimSpace(l)
		if l == "" {
			continue
		}
		var v uint64
		if _, err := fmt.Sscanf(l, "uint64(%d)", &v); err != nil {
			return nil, fmt.Errorf("%s: bad corpus line %q: %w", path, l, err)
		}
		vals = append(vals, v)
	}
	return vals, nil
}
