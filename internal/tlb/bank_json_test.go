package tlb

import (
	"encoding/json"
	"testing"

	"vcoma/internal/addr"
	"vcoma/internal/config"
)

func TestSpecTextRoundTrip(t *testing.T) {
	for _, sp := range []Spec{
		{Entries: 8, Org: config.FullyAssoc},
		{Entries: 512, Org: config.DirectMapped},
		{Entries: 32, Org: config.SetAssoc2},
		{Entries: 64, Org: config.SetAssoc4},
	} {
		text, err := sp.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Spec
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if back != sp {
			t.Fatalf("round trip %v -> %s -> %v", sp, text, back)
		}
	}
	var sp Spec
	for _, bad := range []string{"", "8", "8/XX", "x/FA", "8/FA/extra"} {
		if err := sp.UnmarshalText([]byte(bad)); err == nil {
			t.Errorf("accepted malformed spec %q", bad)
		}
	}
}

func TestMergedBankJSONRoundTrip(t *testing.T) {
	specs := PaperSpecs()
	var banks []*Bank
	for node := 0; node < 3; node++ {
		b, err := NewBank(specs, 0, uint64(node)+1)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 4; round++ {
			for p := 0; p < 40+10*node; p++ {
				b.Access(addr.PageNum(p))
			}
		}
		banks = append(banks, b)
	}
	m := Merge(banks)

	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back MergedBank
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Nodes() != m.Nodes() || back.TotalAccesses() != m.TotalAccesses() {
		t.Fatalf("totals changed: %d/%d vs %d/%d", back.Nodes(), back.TotalAccesses(), m.Nodes(), m.TotalAccesses())
	}
	for _, sp := range specs {
		if back.TotalMisses(sp) != m.TotalMisses(sp) {
			t.Fatalf("%v: misses %d != %d", sp, back.TotalMisses(sp), m.TotalMisses(sp))
		}
		if back.MissesPerNode(sp) != m.MissesPerNode(sp) {
			t.Fatalf("%v: per-node misses diverge", sp)
		}
	}
	if len(back.Sizes()) != len(m.Sizes()) {
		t.Fatalf("sizes %v vs %v", back.Sizes(), m.Sizes())
	}
}
