package tlb

import "vcoma/internal/obs"

// RegisterBuffer registers a translation buffer's counters under prefix
// (e.g. "node03/tlb") with an observability registry. The probes read the
// buffer's existing Stats, so Access stays untouched; sampled over epochs
// the deltas give the buffer's miss rate as it evolves through the run.
func RegisterBuffer(r *obs.Registry, prefix string, b Buffer) {
	if r == nil || b == nil {
		return
	}
	r.Probe(prefix+".accesses", func() float64 { return float64(b.Stats().Accesses) })
	r.Probe(prefix+".misses", func() float64 { return float64(b.Stats().Misses) })
}
