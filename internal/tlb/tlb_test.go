package tlb

import (
	"testing"
	"testing/quick"

	"vcoma/internal/addr"
	"vcoma/internal/config"
)

func TestFullyAssocBasics(t *testing.T) {
	b := NewFullyAssoc(2, 1)
	if b.Access(10) {
		t.Fatal("cold access hit")
	}
	if !b.Access(10) {
		t.Fatal("second access missed")
	}
	b.Access(20)
	if !b.Probe(10) || !b.Probe(20) {
		t.Fatal("both pages should be resident")
	}
	b.Access(30) // evicts one of {10, 20} at random
	resident := 0
	for _, p := range []addr.PageNum{10, 20, 30} {
		if b.Probe(p) {
			resident++
		}
	}
	if resident != 2 {
		t.Fatalf("resident = %d, want capacity 2", resident)
	}
	st := b.Stats()
	if st.Accesses != 4 || st.Misses != 3 || st.Hits() != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFullyAssocInvalidateAndFlush(t *testing.T) {
	b := NewFullyAssoc(4, 1)
	for p := addr.PageNum(0); p < 4; p++ {
		b.Access(p)
	}
	b.Invalidate(2)
	if b.Probe(2) {
		t.Fatal("page 2 survived invalidation")
	}
	if !b.Probe(0) || !b.Probe(1) || !b.Probe(3) {
		t.Fatal("invalidate removed the wrong page")
	}
	b.Invalidate(99) // absent: no-op
	b.Flush()
	for p := addr.PageNum(0); p < 4; p++ {
		if b.Probe(p) {
			t.Fatalf("page %d survived flush", p)
		}
	}
}

func TestFullyAssocDeterminism(t *testing.T) {
	runOnce := func() uint64 {
		b := NewFullyAssoc(8, 0xFEED)
		for i := 0; i < 10000; i++ {
			b.Access(addr.PageNum(i * 7919 % 100))
		}
		return b.Stats().Misses
	}
	if runOnce() != runOnce() {
		t.Fatal("same seed produced different miss counts")
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	b := NewDirectMapped(4, 0)
	b.Access(0)
	b.Access(4) // same slot as 0
	if b.Probe(0) {
		t.Fatal("conflicting page survived")
	}
	if !b.Probe(4) {
		t.Fatal("page 4 not resident")
	}
	b.Access(1)
	b.Access(2)
	if !b.Probe(4) || !b.Probe(1) || !b.Probe(2) {
		t.Fatal("non-conflicting pages evicted")
	}
}

func TestDirectMappedIndexShift(t *testing.T) {
	// A home-node DLB sees only pages with identical low (home) bits;
	// without the shift they would all collide into one slot.
	shifted := NewDirectMapped(4, 5)
	for i := 0; i < 4; i++ {
		shifted.Access(addr.PageNum(i<<5 | 3)) // home bits fixed at 3
	}
	for i := 0; i < 4; i++ {
		if !shifted.Probe(addr.PageNum(i<<5 | 3)) {
			t.Fatalf("page %d evicted despite distinct shifted index", i)
		}
	}
	unshifted := NewDirectMapped(4, 0)
	for i := 0; i < 4; i++ {
		unshifted.Access(addr.PageNum(i << 5)) // all index to slot 0
	}
	if unshifted.Stats().Misses != 4 {
		t.Fatal("expected every access to conflict-miss without the shift")
	}
}

func TestSetAssoc(t *testing.T) {
	b, err := NewSetAssoc(8, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fill one set (4 sets x 2 ways; pages 0, 4, 8 share set 0).
	b.Access(0)
	b.Access(4)
	if !b.Probe(0) || !b.Probe(4) {
		t.Fatal("two-way set should hold both")
	}
	b.Access(8)
	resident := 0
	for _, p := range []addr.PageNum{0, 4, 8} {
		if b.Probe(p) {
			resident++
		}
	}
	if resident != 2 {
		t.Fatalf("set holds %d, want 2", resident)
	}
	b.Invalidate(8)
	b.Flush()
	if b.Probe(0) {
		t.Fatal("flush left entries")
	}

	if _, err := NewSetAssoc(6, 2, 0, 1); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := NewSetAssoc(8, 3, 0, 1); err == nil {
		t.Fatal("bad ways accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, config.FullyAssoc, 0, 1); err == nil {
		t.Fatal("zero entries accepted")
	}
	if _, err := New(6, config.DirectMapped, 0, 1); err == nil {
		t.Fatal("non-power-of-two DM accepted")
	}
	if _, err := New(8, config.TLBOrg(9), 0, 1); err == nil {
		t.Fatal("unknown org accepted")
	}
}

func TestColdMissesEqualDistinctPages(t *testing.T) {
	// With capacity >= distinct pages, misses == distinct pages for any
	// access sequence (property, both organizations).
	err := quick.Check(func(seed uint64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		fa := NewFullyAssoc(256, seed)
		dm := NewDirectMapped(256, 0)
		distinct := map[addr.PageNum]bool{}
		for _, r := range raw {
			p := addr.PageNum(r)
			distinct[p] = true
			fa.Access(p)
			dm.Access(p)
		}
		return fa.Stats().Misses == uint64(len(distinct)) &&
			dm.Stats().Misses == uint64(len(distinct))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMissesNeverExceedAccesses(t *testing.T) {
	err := quick.Check(func(seed uint64, raw []uint16) bool {
		bufs := []Buffer{
			NewFullyAssoc(4, seed),
			NewDirectMapped(4, 0),
		}
		sa, _ := NewSetAssoc(8, 2, 0, seed)
		bufs = append(bufs, sa)
		for _, r := range raw {
			for _, b := range bufs {
				b.Access(addr.PageNum(r))
			}
		}
		for _, b := range bufs {
			st := b.Stats()
			if st.Misses > st.Accesses {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBank(t *testing.T) {
	specs := []Spec{
		{Entries: 2, Org: config.FullyAssoc},
		{Entries: 8, Org: config.FullyAssoc},
		{Entries: 8, Org: config.DirectMapped},
	}
	b, err := NewBank(specs, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		b.Access(addr.PageNum(i % 6))
	}
	if b.Accesses() != 100 {
		t.Fatalf("accesses = %d", b.Accesses())
	}
	small := b.Misses(Spec{Entries: 2, Org: config.FullyAssoc})
	big := b.Misses(Spec{Entries: 8, Org: config.FullyAssoc})
	if big != 6 {
		t.Fatalf("8-entry FA misses = %d, want 6 cold misses", big)
	}
	if small <= big {
		t.Fatalf("2-entry (%d) should miss more than 8-entry (%d)", small, big)
	}
	if _, ok := b.Stats(Spec{Entries: 99, Org: config.FullyAssoc}); ok {
		t.Fatal("unknown spec found")
	}
}

func TestMerge(t *testing.T) {
	specs := []Spec{{Entries: 4, Org: config.FullyAssoc}}
	var banks []*Bank
	for n := 0; n < 3; n++ {
		b, _ := NewBank(specs, 0, uint64(n))
		for i := 0; i < 10; i++ {
			b.Access(addr.PageNum(i)) // 10 cold misses each
		}
		banks = append(banks, b)
	}
	m := Merge(banks)
	if m.Nodes() != 3 || m.TotalAccesses() != 30 {
		t.Fatalf("merge: nodes=%d accesses=%d", m.Nodes(), m.TotalAccesses())
	}
	sp := specs[0]
	if m.TotalMisses(sp) != 30 || m.MissesPerNode(sp) != 10 {
		t.Fatalf("merge misses: total=%d per-node=%f", m.TotalMisses(sp), m.MissesPerNode(sp))
	}
	if len(m.Sizes()) != 1 || m.Sizes()[0] != 4 {
		t.Fatalf("sizes: %v", m.Sizes())
	}
}

func TestPaperSpecsGrid(t *testing.T) {
	specs := PaperSpecs()
	if len(specs) != 2*len(PaperSizes) {
		t.Fatalf("grid has %d specs", len(specs))
	}
	fa, dm := 0, 0
	for _, s := range specs {
		switch s.Org {
		case config.FullyAssoc:
			fa++
		case config.DirectMapped:
			dm++
		}
	}
	if fa != len(PaperSizes) || dm != len(PaperSizes) {
		t.Fatalf("fa=%d dm=%d", fa, dm)
	}
}
