// Package tlb implements the translation buffers of the paper: per-node TLBs
// (schemes L0–L3) and the home-node DLB of V-COMA. Both map virtual page
// numbers to a translation (frame number or directory page) and differ only
// in where they sit and what request stream they see, so one set of models
// serves both.
//
// The paper's default organization is fully associative with random
// replacement (§5.1); direct-mapped variants are the "/DM" systems of
// Figure 9. An ObserverBank measures many sizes and organizations from a
// single simulated request stream (Figures 8 and 9, Tables 2 and 3).
package tlb

import (
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/prng"
)

// Stats counts buffer activity.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// Hits returns Accesses - Misses.
func (s Stats) Hits() uint64 { return s.Accesses - s.Misses }

// MissRatio returns Misses/Accesses, or 0 for an untouched buffer.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Buffer is a translation buffer. Access touches the buffer with a page
// number, fills the entry on a miss, and reports whether it hit.
type Buffer interface {
	// Access looks up page p, filling the entry on a miss (the service
	// itself is charged by the caller). Returns true on a hit.
	Access(p addr.PageNum) bool
	// Probe reports whether p is present without changing any state.
	Probe(p addr.PageNum) bool
	// Invalidate removes p if present (address-mapping change, §2.2.1).
	Invalidate(p addr.PageNum)
	// Flush empties the buffer, keeping statistics.
	Flush()
	// Stats returns the access/miss counters.
	Stats() Stats
	// Entries returns the configured capacity.
	Entries() int
}

// New builds a buffer of the given size and organization. indexShift is the
// number of low page-number bits skipped when computing a direct-mapped
// index: 0 for a private TLB; the node-bit count for a home-node DLB, whose
// resident pages all share their low (home) bits and would otherwise collide
// into a single set.
func New(entries int, org config.TLBOrg, indexShift uint, seed uint64) (Buffer, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("tlb: need at least one entry, got %d", entries)
	}
	switch org {
	case config.FullyAssoc:
		return NewFullyAssoc(entries, seed), nil
	case config.DirectMapped:
		if entries&(entries-1) != 0 {
			return nil, fmt.Errorf("tlb: direct-mapped size %d not a power of two", entries)
		}
		return NewDirectMapped(entries, indexShift), nil
	case config.SetAssoc2:
		return NewSetAssoc(entries, 2, indexShift, seed)
	case config.SetAssoc4:
		return NewSetAssoc(entries, 4, indexShift, seed)
	default:
		return nil, fmt.Errorf("tlb: unknown organization %v", org)
	}
}

// FullyAssoc is a fully-associative buffer with random replacement.
//
// The residency index is a flat open-addressed table (linear probing,
// backward-shift deletion) instead of a Go map, and the most recent hit is
// memoized: translation streams repeat the same page in bursts, so the
// common case is one compare. Replacement state (slots, victim choice, rng
// stream) is unchanged from the map-based version — the contents, stats,
// and eviction sequence are bit-identical.
type FullyAssoc struct {
	capacity int
	slots    []addr.PageNum
	rng      *prng.Source
	stats    Stats

	memo   addr.PageNum // last page that hit or filled
	memoOK bool

	// Open-addressed index: keys[i] is resident at slot slotOf[i];
	// slotOf[i] < 0 marks an empty probe cell. Sized to a power of two at
	// most half full, so probe chains stay short.
	keys   []addr.PageNum
	slotOf []int32
	mask   uint64
}

// NewFullyAssoc returns a fully-associative buffer with the given capacity,
// using a deterministic random replacement stream derived from seed.
func NewFullyAssoc(entries int, seed uint64) *FullyAssoc {
	tab := 8
	for tab < 2*entries {
		tab *= 2
	}
	b := &FullyAssoc{
		capacity: entries,
		slots:    make([]addr.PageNum, 0, entries),
		rng:      prng.New(seed),
		keys:     make([]addr.PageNum, tab),
		slotOf:   make([]int32, tab),
		mask:     uint64(tab - 1),
	}
	for i := range b.slotOf {
		b.slotOf[i] = -1
	}
	return b
}

func (b *FullyAssoc) home(p addr.PageNum) uint64 {
	return (uint64(p) * 0x9E3779B97F4A7C15) >> 32 & b.mask
}

// find returns the probe-cell index holding p, or -1.
func (b *FullyAssoc) find(p addr.PageNum) int {
	for i := b.home(p); ; i = (i + 1) & b.mask {
		if b.slotOf[i] < 0 {
			return -1
		}
		if b.keys[i] == p {
			return int(i)
		}
	}
}

// indexPut records that p is resident at slot s.
func (b *FullyAssoc) indexPut(p addr.PageNum, s int) {
	i := b.home(p)
	for b.slotOf[i] >= 0 {
		if b.keys[i] == p {
			b.slotOf[i] = int32(s)
			return
		}
		i = (i + 1) & b.mask
	}
	b.keys[i] = p
	b.slotOf[i] = int32(s)
}

// indexDelete empties probe cell i, backward-shifting any displaced
// followers so linear probing stays sound.
func (b *FullyAssoc) indexDelete(i int) {
	j := uint64(i)
	for {
		b.slotOf[j] = -1
		hole := j
		for {
			j = (j + 1) & b.mask
			if b.slotOf[j] < 0 {
				return
			}
			h := b.home(b.keys[j])
			// Move keys[j] into the hole only if its probe path passes
			// through the hole (cyclic interval test).
			if (j > hole && (h <= hole || h > j)) || (j < hole && h <= hole && h > j) {
				break
			}
		}
		b.keys[hole] = b.keys[j]
		b.slotOf[hole] = b.slotOf[j]
	}
}

// Access implements Buffer.
func (b *FullyAssoc) Access(p addr.PageNum) bool {
	b.stats.Accesses++
	if b.memoOK && p == b.memo {
		return true
	}
	if b.find(p) >= 0 {
		b.memo, b.memoOK = p, true
		return true
	}
	b.stats.Misses++
	if len(b.slots) < b.capacity {
		b.indexPut(p, len(b.slots))
		b.slots = append(b.slots, p)
		b.memo, b.memoOK = p, true
		return false
	}
	victim := b.rng.Intn(b.capacity)
	if i := b.find(b.slots[victim]); i >= 0 {
		b.indexDelete(i)
	}
	b.slots[victim] = p
	b.indexPut(p, victim)
	b.memo, b.memoOK = p, true
	return false
}

// Probe implements Buffer.
func (b *FullyAssoc) Probe(p addr.PageNum) bool {
	return b.find(p) >= 0
}

// Invalidate implements Buffer.
func (b *FullyAssoc) Invalidate(p addr.PageNum) {
	i := b.find(p)
	if i < 0 {
		return
	}
	if b.memoOK && p == b.memo {
		b.memoOK = false
	}
	s := int(b.slotOf[i])
	last := len(b.slots) - 1
	b.indexDelete(i)
	if s != last {
		b.slots[s] = b.slots[last]
		b.indexPut(b.slots[s], s)
	}
	b.slots = b.slots[:last]
}

// Flush implements Buffer.
func (b *FullyAssoc) Flush() {
	b.slots = b.slots[:0]
	b.memoOK = false
	for i := range b.slotOf {
		b.slotOf[i] = -1
	}
}

// Stats implements Buffer.
func (b *FullyAssoc) Stats() Stats { return b.stats }

// Entries implements Buffer.
func (b *FullyAssoc) Entries() int { return b.capacity }

// DirectMapped is a direct-mapped buffer indexed by low page-number bits
// (after indexShift).
type DirectMapped struct {
	mask  uint64
	shift uint
	tags  []addr.PageNum
	valid []bool
	stats Stats
}

// NewDirectMapped returns a direct-mapped buffer with entries slots
// (a power of two), indexing with page-number bits [indexShift,
// indexShift+log2(entries)).
func NewDirectMapped(entries int, indexShift uint) *DirectMapped {
	return &DirectMapped{
		mask:  uint64(entries - 1),
		shift: indexShift,
		tags:  make([]addr.PageNum, entries),
		valid: make([]bool, entries),
	}
}

func (b *DirectMapped) slot(p addr.PageNum) int {
	return int((uint64(p) >> b.shift) & b.mask)
}

// Access implements Buffer.
func (b *DirectMapped) Access(p addr.PageNum) bool {
	b.stats.Accesses++
	i := b.slot(p)
	if b.valid[i] && b.tags[i] == p {
		return true
	}
	b.stats.Misses++
	b.tags[i] = p
	b.valid[i] = true
	return false
}

// Probe implements Buffer.
func (b *DirectMapped) Probe(p addr.PageNum) bool {
	i := b.slot(p)
	return b.valid[i] && b.tags[i] == p
}

// Invalidate implements Buffer.
func (b *DirectMapped) Invalidate(p addr.PageNum) {
	i := b.slot(p)
	if b.valid[i] && b.tags[i] == p {
		b.valid[i] = false
	}
}

// Flush implements Buffer.
func (b *DirectMapped) Flush() {
	for i := range b.valid {
		b.valid[i] = false
	}
}

// Stats implements Buffer.
func (b *DirectMapped) Stats() Stats { return b.stats }

// Entries implements Buffer.
func (b *DirectMapped) Entries() int { return len(b.tags) }

// SetAssoc is an n-way set-associative buffer with random replacement,
// generalizing the two organizations above; it backs ablation studies of
// intermediate associativities.
type SetAssoc struct {
	ways  int
	mask  uint64
	shift uint
	tags  []addr.PageNum // sets*ways, set-major
	valid []bool
	rng   *prng.Source
	stats Stats
}

// NewSetAssoc returns a set-associative buffer with the given total entries
// (power of two) and ways (power of two dividing entries).
func NewSetAssoc(entries, ways int, indexShift uint, seed uint64) (*SetAssoc, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("tlb: set-assoc size %d not a power of two", entries)
	}
	if ways <= 0 || ways > entries || entries%ways != 0 {
		return nil, fmt.Errorf("tlb: %d ways invalid for %d entries", ways, entries)
	}
	sets := entries / ways
	return &SetAssoc{
		ways:  ways,
		mask:  uint64(sets - 1),
		shift: indexShift,
		tags:  make([]addr.PageNum, entries),
		valid: make([]bool, entries),
		rng:   prng.New(seed),
	}, nil
}

func (b *SetAssoc) setBase(p addr.PageNum) int {
	return int((uint64(p)>>b.shift)&b.mask) * b.ways
}

// Access implements Buffer.
func (b *SetAssoc) Access(p addr.PageNum) bool {
	b.stats.Accesses++
	base := b.setBase(p)
	free := -1
	for i := base; i < base+b.ways; i++ {
		if b.valid[i] {
			if b.tags[i] == p {
				return true
			}
		} else if free < 0 {
			free = i
		}
	}
	b.stats.Misses++
	if free < 0 {
		free = base + b.rng.Intn(b.ways)
	}
	b.tags[free] = p
	b.valid[free] = true
	return false
}

// Probe implements Buffer.
func (b *SetAssoc) Probe(p addr.PageNum) bool {
	base := b.setBase(p)
	for i := base; i < base+b.ways; i++ {
		if b.valid[i] && b.tags[i] == p {
			return true
		}
	}
	return false
}

// Invalidate implements Buffer.
func (b *SetAssoc) Invalidate(p addr.PageNum) {
	base := b.setBase(p)
	for i := base; i < base+b.ways; i++ {
		if b.valid[i] && b.tags[i] == p {
			b.valid[i] = false
			return
		}
	}
}

// Flush implements Buffer.
func (b *SetAssoc) Flush() {
	for i := range b.valid {
		b.valid[i] = false
	}
}

// Stats implements Buffer.
func (b *SetAssoc) Stats() Stats { return b.stats }

// Entries implements Buffer.
func (b *SetAssoc) Entries() int { return len(b.tags) }
