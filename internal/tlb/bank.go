package tlb

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vcoma/internal/addr"
	"vcoma/internal/config"
)

// Spec names one buffer configuration inside an observer bank.
type Spec struct {
	Entries int
	Org     config.TLBOrg
}

func (s Spec) String() string { return fmt.Sprintf("%d/%v", s.Entries, s.Org) }

// MarshalText encodes the spec as "<entries>/<org>" so Spec can key JSON
// maps — the experiment runner caches merged observer banks on disk.
func (s Spec) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the "<entries>/<org>" form produced by MarshalText.
func (s *Spec) UnmarshalText(text []byte) error {
	parts := strings.SplitN(string(text), "/", 2)
	if len(parts) != 2 {
		return fmt.Errorf("tlb: malformed spec %q", text)
	}
	n, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("tlb: malformed spec %q: %v", text, err)
	}
	var org config.TLBOrg
	switch parts[1] {
	case "FA":
		org = config.FullyAssoc
	case "DM":
		org = config.DirectMapped
	case "2W":
		org = config.SetAssoc2
	case "4W":
		org = config.SetAssoc4
	default:
		return fmt.Errorf("tlb: unknown organization %q in spec", parts[1])
	}
	*s = Spec{Entries: n, Org: org}
	return nil
}

// PaperSizes are the TLB/DLB sizes swept in the paper's Figures 8 and 9.
var PaperSizes = []int{8, 16, 32, 64, 128, 256, 512}

// PaperSpecs returns the full (size × organization) grid the paper
// evaluates: every size in PaperSizes, fully associative and direct mapped.
func PaperSpecs() []Spec {
	specs := make([]Spec, 0, 2*len(PaperSizes))
	for _, n := range PaperSizes {
		specs = append(specs, Spec{Entries: n, Org: config.FullyAssoc})
	}
	for _, n := range PaperSizes {
		specs = append(specs, Spec{Entries: n, Org: config.DirectMapped})
	}
	return specs
}

// Bank is a set of translation buffers of different sizes and organizations
// that all observe the same translation-request stream. One simulation pass
// therefore measures every point of a Figure 8/9 curve at once — valid
// because miss counting does not feed back into the reference stream.
type Bank struct {
	specs   []Spec
	buffers []Buffer
}

// NewBank builds one buffer per spec. indexShift and seed are as in New;
// each buffer gets an independent deterministic replacement stream.
func NewBank(specs []Spec, indexShift uint, seed uint64) (*Bank, error) {
	b := &Bank{specs: append([]Spec(nil), specs...)}
	for i, sp := range specs {
		buf, err := New(sp.Entries, sp.Org, indexShift, seed+uint64(i)*0x9E37)
		if err != nil {
			return nil, err
		}
		b.buffers = append(b.buffers, buf)
	}
	return b, nil
}

// Access feeds one translation request to every buffer in the bank.
func (b *Bank) Access(p addr.PageNum) {
	for _, buf := range b.buffers {
		buf.Access(p)
	}
}

// Specs returns the bank's configuration grid.
func (b *Bank) Specs() []Spec { return b.specs }

// Stats returns the counters for the buffer matching spec, and whether the
// spec exists in the bank.
func (b *Bank) Stats(sp Spec) (Stats, bool) {
	for i, s := range b.specs {
		if s == sp {
			return b.buffers[i].Stats(), true
		}
	}
	return Stats{}, false
}

// Accesses returns the request count seen by the bank (identical for every
// buffer).
func (b *Bank) Accesses() uint64 {
	if len(b.buffers) == 0 {
		return 0
	}
	return b.buffers[0].Stats().Accesses
}

// Misses returns the miss count of the buffer matching spec; it panics if
// the spec is not in the bank (a programming error in the harness).
func (b *Bank) Misses(sp Spec) uint64 {
	st, ok := b.Stats(sp)
	if !ok {
		panic(fmt.Sprintf("tlb: bank has no spec %v", sp))
	}
	return st.Misses
}

// MergedBank aggregates per-node banks into machine totals, used to report
// per-node averages across a whole run.
type MergedBank struct {
	specs  []Spec
	misses map[Spec]uint64
	acc    uint64
	nodes  int
}

// Merge sums the statistics of per-node banks. All banks must share the same
// spec grid.
func Merge(banks []*Bank) *MergedBank {
	m := &MergedBank{misses: make(map[Spec]uint64)}
	for _, b := range banks {
		if b == nil {
			continue
		}
		if m.specs == nil {
			m.specs = b.Specs()
		}
		m.nodes++
		m.acc += b.Accesses()
		for _, sp := range b.Specs() {
			m.misses[sp] += b.Misses(sp)
		}
	}
	return m
}

// Nodes returns how many banks were merged.
func (m *MergedBank) Nodes() int { return m.nodes }

// TotalAccesses returns the machine-wide translation-request count.
func (m *MergedBank) TotalAccesses() uint64 { return m.acc }

// TotalMisses returns the machine-wide miss count for spec.
func (m *MergedBank) TotalMisses(sp Spec) uint64 { return m.misses[sp] }

// MissesPerNode returns the average miss count per node for spec, the
// paper's Figure 8/9 y-axis.
func (m *MergedBank) MissesPerNode(sp Spec) float64 {
	if m.nodes == 0 {
		return 0
	}
	return float64(m.misses[sp]) / float64(m.nodes)
}

// mergedBankJSON is the serialized form of a MergedBank. The experiment
// runner persists merged banks in its result cache; the JSON form must
// round-trip exactly so reports rendered from cached results are
// byte-identical to freshly computed ones (all fields are integers).
type mergedBankJSON struct {
	Specs  []Spec          `json:"specs"`
	Misses map[Spec]uint64 `json:"misses"`
	Acc    uint64          `json:"accesses"`
	Nodes  int             `json:"nodes"`
}

// MarshalJSON implements json.Marshaler.
func (m *MergedBank) MarshalJSON() ([]byte, error) {
	return json.Marshal(mergedBankJSON{Specs: m.specs, Misses: m.misses, Acc: m.acc, Nodes: m.nodes})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *MergedBank) UnmarshalJSON(data []byte) error {
	var j mergedBankJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Misses == nil {
		j.Misses = make(map[Spec]uint64)
	}
	*m = MergedBank{specs: j.Specs, misses: j.Misses, acc: j.Acc, nodes: j.Nodes}
	return nil
}

// Sizes returns the sorted distinct entry counts present in the merged grid.
func (m *MergedBank) Sizes() []int {
	seen := map[int]struct{}{}
	for _, sp := range m.specs {
		seen[sp.Entries] = struct{}{}
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}
