package tlb

import (
	"testing"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/prng"
)

// FuzzBufferParity model-checks every buffer organization against the
// Buffer contract with random operation sequences:
//
//   - Access(p) returns hit exactly when Probe(p) held beforehand, and p is
//     present afterwards;
//   - Probe has no side effects;
//   - Invalidate(p) removes p; Flush removes everything;
//   - at most Entries() pages are ever resident;
//   - the access counter matches the number of accesses;
//   - two identically-built buffers fed the same sequence behave
//     identically (replacement is seeded, not nondeterministic);
//   - a fully-associative buffer large enough for the whole working set
//     never evicts: presence matches the exact reference set.
func FuzzBufferParity(f *testing.F) {
	f.Add(uint64(1), uint64(3), uint64(0), uint64(64))
	f.Add(uint64(2), uint64(0), uint64(1), uint64(128))
	f.Add(uint64(3), uint64(2), uint64(2), uint64(200))
	f.Add(uint64(4), uint64(4), uint64(3), uint64(90))
	f.Fuzz(func(t *testing.T, seed, entriesRaw, orgRaw, nRaw uint64) {
		entries := 1 << (entriesRaw % 5) // 1..16
		org := []config.TLBOrg{config.FullyAssoc, config.DirectMapped, config.SetAssoc2, config.SetAssoc4}[orgRaw%4]
		if org == config.SetAssoc2 && entries < 2 || org == config.SetAssoc4 && entries < 4 {
			t.Skip("fewer entries than ways")
		}
		ops := 16 + int(nRaw%512)

		b, err := New(entries, org, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		twin, err := New(entries, org, 0, seed)
		if err != nil {
			t.Fatal(err)
		}

		rng := prng.New(seed ^ 0xb0ffe4)
		target := 1 + rng.Intn(24)
		distinct := make(map[addr.PageNum]bool)
		for len(distinct) < target {
			distinct[addr.PageNum(rng.Uint64n(1<<20))] = true
		}
		universe := make([]addr.PageNum, 0, len(distinct))
		for p := range distinct {
			universe = append(universe, p)
		}
		exactRef := org == config.FullyAssoc && len(universe) <= entries
		ref := make(map[addr.PageNum]bool) // exact contents when exactRef

		accesses := uint64(0)
		for i := 0; i < ops; i++ {
			p := universe[rng.Intn(len(universe))]
			switch rng.Intn(8) {
			case 0:
				b.Invalidate(p)
				twin.Invalidate(p)
				delete(ref, p)
				if b.Probe(p) {
					t.Fatalf("op %d: page %#x present after Invalidate", i, uint64(p))
				}
			case 1:
				b.Flush()
				twin.Flush()
				ref = make(map[addr.PageNum]bool)
				for _, q := range universe {
					if b.Probe(q) {
						t.Fatalf("op %d: page %#x present after Flush", i, uint64(q))
					}
				}
			default:
				before := b.Probe(p)
				if again := b.Probe(p); again != before {
					t.Fatalf("op %d: Probe changed state: %v then %v", i, before, again)
				}
				hit := b.Access(p)
				twinHit := twin.Access(p)
				accesses++
				if hit != before {
					t.Fatalf("op %d: Access(%#x) returned hit=%v but Probe said %v", i, uint64(p), hit, before)
				}
				if hit != twinHit {
					t.Fatalf("op %d: identically-seeded twin diverged (hit=%v vs %v)", i, hit, twinHit)
				}
				if !b.Probe(p) {
					t.Fatalf("op %d: page %#x absent immediately after Access", i, uint64(p))
				}
				ref[p] = true
			}
			if resident := countResident(b, universe); resident > entries {
				t.Fatalf("op %d: %d pages resident in a %d-entry buffer", i, resident, entries)
			}
			if exactRef {
				for _, q := range universe {
					if b.Probe(q) != ref[q] {
						t.Fatalf("op %d: FA buffer with no capacity pressure evicted or invented page %#x", i, uint64(q))
					}
				}
			}
		}
		if s := b.Stats(); s.Accesses != accesses || s.Misses > s.Accesses {
			t.Fatalf("stats %+v inconsistent with %d accesses", s, accesses)
		}
	})
}

func countResident(b Buffer, universe []addr.PageNum) int {
	n := 0
	for _, p := range universe {
		if b.Probe(p) {
			n++
		}
	}
	return n
}
