package tlb

import (
	"testing"

	"vcoma/internal/addr"
)

// pagesWithHome brute-forces n distinct page numbers whose probe home in a
// FullyAssoc of the given table geometry equals want.
func pagesWithHome(b *FullyAssoc, want uint64, n int) []addr.PageNum {
	var out []addr.PageNum
	for p := addr.PageNum(1); len(out) < n; p++ {
		if b.home(p) == want {
			out = append(out, p)
		}
	}
	return out
}

// TestFullyAssocProbeWrap drives the open-addressed residency index through
// probe chains that wrap past the end of the table: capacity 4 gives a table
// of 8 cells (mask 7), and three keys homed at cell 7 must chain through
// cells 7, 0 and 1. Deleting from the middle of such a chain exercises the
// cyclic-interval test in indexDelete's backward shift — the one branch a
// non-wrapping chain never reaches.
func TestFullyAssocProbeWrap(t *testing.T) {
	b := NewFullyAssoc(4, 1)
	if b.mask != 7 {
		t.Fatalf("test assumes a table of 8 cells for capacity 4, got mask %d", b.mask)
	}
	ps := pagesWithHome(b, 7, 3)
	for _, p := range ps {
		if b.Access(p) {
			t.Fatalf("page %d hit on first access", p)
		}
	}
	// The chain must occupy 7, 0, 1 in insertion order.
	for k, want := range []uint64{7, 0, 1} {
		if i := b.find(ps[k]); i != int(want) {
			t.Fatalf("key %d (page %d) at cell %d, want %d", k, ps[k], i, want)
		}
	}

	// Delete the chain head at cell 7: both followers sit across the wrap
	// and must backward-shift into 7 and 0.
	b.Invalidate(ps[0])
	if b.Probe(ps[0]) {
		t.Fatal("deleted page still resident")
	}
	for k, want := range []uint64{7, 0} {
		if i := b.find(ps[k+1]); i != int(want) {
			t.Fatalf("after head delete: key %d at cell %d, want %d", k+1, ps[k+1], i)
		}
	}

	// Rebuild the full chain, then delete the middle element (cell 0, the
	// wrapped cell itself becomes the hole).
	if b.Access(ps[0]) {
		t.Fatal("re-inserted page hit")
	}
	// Chain is now ps[1]@7, ps[2]@0, ps[0]@1.
	b.Invalidate(ps[2])
	for _, p := range []addr.PageNum{ps[0], ps[1]} {
		if !b.Probe(p) {
			t.Fatalf("page %d lost after middle-of-chain delete across the wrap", p)
		}
	}
	if b.Probe(ps[2]) {
		t.Fatal("deleted page still resident")
	}
}

// TestFullyAssocProbeWrapMixedHomes interleaves keys homed at the last and
// first cells so that wrapped chains contain keys that must NOT shift
// backward across the table boundary (their own home lies at 0), pinning the
// h <= hole || h > j side of the cyclic-interval test.
func TestFullyAssocProbeWrapMixedHomes(t *testing.T) {
	b := NewFullyAssoc(4, 1)
	tail := pagesWithHome(b, 7, 2) // home at the last cell
	head := pagesWithHome(b, 0, 2) // home at the first cell
	// Fill: tail[0]@7, tail[1]@0 (wrapped), head[0]@1 (displaced from 0),
	// head[1]@2.
	for _, p := range []addr.PageNum{tail[0], tail[1], head[0], head[1]} {
		b.Access(p)
	}
	for i, want := range map[addr.PageNum]int{tail[0]: 7, tail[1]: 0, head[0]: 1, head[1]: 2} {
		if got := b.find(i); got != want {
			t.Fatalf("page %d at cell %d, want %d", i, got, want)
		}
	}
	// Deleting tail[0] opens cell 7. tail[1] (home 7) must wrap backward
	// into it; head[0] and head[1] (home 0) must then shift into 0 and 1 —
	// but never past their own home.
	b.Invalidate(tail[0])
	for p, want := range map[addr.PageNum]int{tail[1]: 7, head[0]: 0, head[1]: 1} {
		if got := b.find(p); got != want {
			t.Fatalf("after delete: page %d at cell %d, want %d", p, got, want)
		}
		if !b.Probe(p) {
			t.Fatalf("page %d unreachable after backward shift", p)
		}
	}
}

// TestFullyAssocWrapChurnModel churns a capacity-4 buffer with a page
// population chosen to home almost exclusively near the table boundary, and
// checks residency after every operation against a naive model of
// random-replacement contents. Thousands of evict/invalidate cycles walk
// indexDelete through every wrap configuration the two directed tests pin.
func TestFullyAssocWrapChurnModel(t *testing.T) {
	b := NewFullyAssoc(4, 7)
	// Population homed at cells 6, 7, 0 and 1 only: every collision chain
	// crosses or abuts the wrap point.
	var pop []addr.PageNum
	for _, h := range []uint64{6, 7, 0, 1} {
		pop = append(pop, pagesWithHome(b, h, 4)...)
	}
	model := map[addr.PageNum]bool{}
	resident := func() []addr.PageNum {
		// Mirror of b.slots, maintained through the same replacement
		// choices b makes (the rng stream is consumed by Access, so we
		// recompute from b.slots directly — the model checks the index,
		// not the replacement policy).
		return append([]addr.PageNum(nil), b.slots...)
	}
	for step := 0; step < 5000; step++ {
		p := pop[(step*2654435761)%len(pop)]
		switch step % 5 {
		case 0, 1, 2:
			b.Access(p)
		case 3:
			b.Invalidate(p)
			delete(model, p)
		case 4:
			b.Probe(p)
		}
		// The open-addressed index must agree exactly with the slot array.
		for k := range model {
			model[k] = false
		}
		for _, q := range resident() {
			model[q] = true
		}
		for q, want := range model {
			if got := b.Probe(q); got != want {
				t.Fatalf("step %d: Probe(%d)=%v, slots say %v (index corrupted across wrap)", step, q, got, want)
			}
			if !want {
				delete(model, q)
			}
		}
		// And every resident page must be findable at a cell consistent
		// with linear probing from its home (no orphaned cells).
		occupied := 0
		for i := range b.slotOf {
			if b.slotOf[i] >= 0 {
				occupied++
			}
		}
		if occupied != len(b.slots) {
			t.Fatalf("step %d: %d occupied index cells for %d resident pages", step, occupied, len(b.slots))
		}
	}
}
