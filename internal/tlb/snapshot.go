package tlb

import "vcoma/internal/addr"

// Snapshot is a reusable checkpoint of a translation buffer's observable
// state, shared by the three organizations (only the fields a given
// organization uses are populated). The parallel engine snapshots the timed
// per-node TLB at a round boundary and restores it when the round's
// speculative burst overruns the commit horizon; restoring must reproduce
// the buffer bit-for-bit — including the replacement PRNG stream and the
// last-page memo — or parallel runs would diverge from sequential ones.
type Snapshot struct {
	pages  []addr.PageNum // FullyAssoc slots / DM+SA tags
	keys   []addr.PageNum // FullyAssoc open-addressing keys
	slotOf []int32        // FullyAssoc open-addressing values
	valid  []bool         // DM+SA valid bits
	nslots int            // FullyAssoc live slot count
	memo   addr.PageNum
	memoOK bool
	rng    uint64 // replacement PRNG state (FullyAssoc, SetAssoc)
	stats  Stats
}

// Snapshottable is implemented by buffer organizations that support
// checkpoint/restore. All three concrete organizations implement it; the
// machine layer checks for it when deciding parallel eligibility so a
// future organization without snapshot support degrades to the sequential
// engine instead of diverging.
type Snapshottable interface {
	SnapshotTo(*Snapshot)
	RestoreFrom(*Snapshot)
}

func copyPages(dst *[]addr.PageNum, src []addr.PageNum) {
	if cap(*dst) < len(src) {
		*dst = make([]addr.PageNum, len(src))
	}
	*dst = (*dst)[:len(src)]
	copy(*dst, src)
}

// SnapshotTo implements Snapshottable.
func (b *FullyAssoc) SnapshotTo(s *Snapshot) {
	copyPages(&s.pages, b.slots)
	s.nslots = len(b.slots)
	copyPages(&s.keys, b.keys)
	if len(s.slotOf) != len(b.slotOf) {
		s.slotOf = make([]int32, len(b.slotOf))
	}
	copy(s.slotOf, b.slotOf)
	s.memo, s.memoOK = b.memo, b.memoOK
	s.rng = b.rng.State()
	s.stats = b.stats
}

// RestoreFrom implements Snapshottable.
func (b *FullyAssoc) RestoreFrom(s *Snapshot) {
	b.slots = b.slots[:0]
	b.slots = append(b.slots, s.pages[:s.nslots]...)
	copy(b.keys, s.keys)
	copy(b.slotOf, s.slotOf)
	b.memo, b.memoOK = s.memo, s.memoOK
	b.rng.SetState(s.rng)
	b.stats = s.stats
}

// SnapshotTo implements Snapshottable.
func (b *DirectMapped) SnapshotTo(s *Snapshot) {
	copyPages(&s.pages, b.tags)
	if len(s.valid) != len(b.valid) {
		s.valid = make([]bool, len(b.valid))
	}
	copy(s.valid, b.valid)
	s.stats = b.stats
}

// RestoreFrom implements Snapshottable.
func (b *DirectMapped) RestoreFrom(s *Snapshot) {
	copy(b.tags, s.pages)
	copy(b.valid, s.valid)
	b.stats = s.stats
}

// SnapshotTo implements Snapshottable.
func (b *SetAssoc) SnapshotTo(s *Snapshot) {
	copyPages(&s.pages, b.tags)
	if len(s.valid) != len(b.valid) {
		s.valid = make([]bool, len(b.valid))
	}
	copy(s.valid, b.valid)
	s.rng = b.rng.State()
	s.stats = b.stats
}

// RestoreFrom implements Snapshottable.
func (b *SetAssoc) RestoreFrom(s *Snapshot) {
	copy(b.tags, s.pages)
	copy(b.valid, s.valid)
	b.rng.SetState(s.rng)
	b.stats = s.stats
}
