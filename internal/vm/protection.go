package vm

import (
	"fmt"

	"vcoma/internal/addr"
)

// Prot is a page's protection attributes (paper §2.2.4). The simulated
// machine checks segment-level rights before the cache and page-level
// rights at translation points; V-COMA keeps page-level bits in the home's
// page table and DLB (§4.3).
type Prot uint8

const (
	// ProtRead permits loads.
	ProtRead Prot = 1 << iota
	// ProtWrite permits stores.
	ProtWrite
	// ProtExec permits instruction fetches.
	ProtExec
)

// ProtRW is the default protection for shared data pages.
const ProtRW = ProtRead | ProtWrite

func (p Prot) String() string {
	b := []byte("---")
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Allows reports whether an access of kind want is permitted.
func (p Prot) Allows(want Prot) bool { return p&want == want }

// Protection returns v's page protection; unmapped pages default to
// read-write (they will be mapped with that protection on first touch).
func (s *System) Protection(v addr.Virtual) Prot {
	if p := s.Lookup(v); p != nil {
		return p.Prot
	}
	return ProtRW
}

// SetProtection changes v's page protection, mapping the page if needed,
// and returns the page record for the caller (the machine layer) to drive
// the coherence-side effects: TLB shootdowns or DLB/page-table updates and
// cached-copy invalidations (§4.3).
func (s *System) SetProtection(v addr.Virtual, prot Prot) *Page {
	p := s.Ensure(v)
	p.Prot = prot
	return p
}

// Unmap removes v's page mapping entirely — the address-mapping change of
// §2.2.1. The page's frame (if any) is released, its global-set slot is
// freed, and the record is returned so the machine can flush stale state
// (TLB entries, cache blocks, attraction-memory copies). Unmapping an
// unmapped page is an error: the callers all hold a reason to believe the
// page exists.
func (s *System) Unmap(v addr.Virtual) (*Page, error) {
	pn := s.g.Page(v)
	p := s.pages[pn]
	if p == nil {
		return nil, fmt.Errorf("vm: unmap of unmapped page %#x", uint64(pn))
	}
	delete(s.pages, pn)
	s.dropMemo(pn)
	var gps int
	switch s.mode {
	case PhysicalRoundRobin:
		gps = s.g.GlobalPageSetOfFrame(p.Frame)
		delete(s.frames, p.Frame)
	case Colored:
		gps = s.g.GlobalPageSet(pn)
		delete(s.frames, p.Frame)
	case VirtualOnly:
		gps = s.g.GlobalPageSet(pn)
	}
	s.gpsPages[gps]--
	return p, nil
}
