package vm

import (
	"fmt"
	"sort"

	"vcoma/internal/addr"
)

// Region is a named, contiguous range of the shared virtual address space —
// one array or structure of a workload.
type Region struct {
	Name  string
	Base  addr.Virtual
	Bytes uint64
}

// End returns the first address past the region.
func (r Region) End() addr.Virtual { return r.Base + addr.Virtual(r.Bytes) }

// Contains reports whether v falls inside the region.
func (r Region) Contains(v addr.Virtual) bool { return v >= r.Base && v < r.End() }

// At returns the address of byte offset off within the region, panicking on
// overflow — workload indexing bugs should fail loudly.
func (r Region) At(off uint64) addr.Virtual {
	if off >= r.Bytes {
		panic(fmt.Sprintf("vm: offset %d outside region %q (%d bytes)", off, r.Name, r.Bytes))
	}
	return r.Base + addr.Virtual(off)
}

// Layout allocates regions in the global virtual address space. Workloads
// build their entire layout up front (before any events are generated), so
// frame preloading and the pressure profile are independent of simulation
// order.
//
// The virtual space is segmented PowerPC-style (§2.2.1): synonyms cannot
// exist, so a Layout simply hands out disjoint ranges of one global space.
type Layout struct {
	g       addr.Geometry
	next    addr.Virtual
	regions []Region
}

// LayoutBase is the first allocatable virtual address. Page zero is kept
// unmapped so that a zero Virtual is never a valid shared address.
const LayoutBase = addr.Virtual(1) << 20

// NewLayout returns an empty layout for geometry g.
func NewLayout(g addr.Geometry) *Layout {
	return &Layout{g: g, next: LayoutBase}
}

// LayoutFromRegions reconstructs a layout from previously recorded regions
// (trace replay): regions must be sorted by base and non-overlapping.
func LayoutFromRegions(g addr.Geometry, regions []Region) (*Layout, error) {
	l := NewLayout(g)
	for i, r := range regions {
		if r.Bytes == 0 {
			return nil, fmt.Errorf("vm: empty region %q", r.Name)
		}
		if uint64(r.Base) < uint64(l.next) {
			return nil, fmt.Errorf("vm: region %d (%q) at %#x overlaps or is out of order", i, r.Name, uint64(r.Base))
		}
		l.regions = append(l.regions, r)
		pageMask := g.PageSize() - 1
		l.next = addr.Virtual((uint64(r.Base) + r.Bytes + pageMask) &^ pageMask)
	}
	return l, nil
}

// Alloc reserves bytes of address space aligned to align (which must be a
// power of two; 0 or 1 mean page alignment). Regions are padded to whole
// pages so distinct regions never share a page.
func (l *Layout) Alloc(name string, bytes, align uint64) Region {
	if bytes == 0 {
		panic(fmt.Sprintf("vm: empty region %q", name))
	}
	if align == 0 || align < l.g.PageSize() {
		align = l.g.PageSize()
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("vm: alignment %d of region %q not a power of two", align, name))
	}
	base := (uint64(l.next) + align - 1) &^ (align - 1)
	r := Region{Name: name, Base: addr.Virtual(base), Bytes: bytes}
	pageMask := l.g.PageSize() - 1
	l.next = addr.Virtual((base + bytes + pageMask) &^ pageMask)
	l.regions = append(l.regions, r)
	return r
}

// AllocArray reserves a region holding count elements of elemBytes each,
// page-aligned.
func (l *Layout) AllocArray(name string, count int, elemBytes uint64) Region {
	if count <= 0 {
		panic(fmt.Sprintf("vm: empty array region %q", name))
	}
	return l.Alloc(name, uint64(count)*elemBytes, 0)
}

// Regions returns the allocated regions in allocation order.
func (l *Layout) Regions() []Region { return l.regions }

// TotalBytes returns the sum of region sizes (the workload's shared-memory
// footprint, the paper's Table 1 column).
func (l *Layout) TotalBytes() uint64 {
	var total uint64
	for _, r := range l.regions {
		total += r.Bytes
	}
	return total
}

// Find returns the region containing v, or the zero Region.
func (l *Layout) Find(v addr.Virtual) (Region, bool) {
	// Regions are allocated in ascending order; binary-search the bases.
	i := sort.Search(len(l.regions), func(i int) bool { return l.regions[i].End() > v })
	if i < len(l.regions) && l.regions[i].Contains(v) {
		return l.regions[i], true
	}
	return Region{}, false
}

// PreloadAll maps every region's pages into sys in allocation order.
func (l *Layout) PreloadAll(sys *System) {
	for _, r := range l.regions {
		sys.Preload(r.Base, r.Bytes)
	}
}
