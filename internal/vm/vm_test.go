package vm

import (
	"testing"
	"testing/quick"

	"vcoma/internal/addr"
)

func g() addr.Geometry {
	return addr.Geometry{NodeBits: 2, PageBits: 8, AMBlockBits: 5, AMSetBits: 6, AMAssocBits: 1}
}

func paperG() addr.Geometry {
	return addr.Geometry{NodeBits: 5, PageBits: 12, AMBlockBits: 7, AMSetBits: 13, AMAssocBits: 2}
}

func TestRoundRobinFrames(t *testing.T) {
	s := NewSystem(g(), PhysicalRoundRobin)
	for i := 0; i < 10; i++ {
		v := addr.Virtual(0x10000 + i*256)
		p := s.Ensure(v)
		if p.Frame != addr.Frame(i) {
			t.Fatalf("page %d got frame %d", i, p.Frame)
		}
	}
	if s.Faults() != 10 || s.MappedPages() != 10 {
		t.Fatalf("faults=%d mapped=%d", s.Faults(), s.MappedPages())
	}
	// Second touch: no new fault.
	s.Ensure(0x10000)
	if s.Faults() != 10 {
		t.Fatal("re-touch faulted")
	}
}

func TestTranslateRoundTrip(t *testing.T) {
	for _, mode := range []Mode{PhysicalRoundRobin, Colored} {
		s := NewSystem(g(), mode)
		err := quick.Check(func(raw uint32) bool {
			v := addr.Virtual(raw)
			pa := s.Translate(v)
			if s.ReverseTranslate(pa) != v {
				return false
			}
			// Offsets within the page are preserved.
			return uint64(pa)&255 == uint64(v)&255
		}, nil)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

func TestColoredPreservesAMSet(t *testing.T) {
	// Figure 4: with page colouring the physical address indexes the same
	// attraction-memory set as the virtual address.
	geo := paperG()
	s := NewSystem(geo, Colored)
	err := quick.Check(func(raw uint64) bool {
		v := addr.Virtual(raw % (1 << 38))
		pa := s.Translate(v)
		return geo.AMSetOfPhysical(pa) == geo.AMSetOfVirtual(v) &&
			geo.HomeNodeOfFrame(geo.FrameOf(pa)) == geo.HomeNode(v)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestColoredSlotsDistinct(t *testing.T) {
	geo := paperG()
	s := NewSystem(geo, Colored)
	gps := geo.GlobalPageSets()
	// Pages with the same colour must get distinct slots.
	var frames []addr.Frame
	for i := 0; i < 5; i++ {
		pn := addr.PageNum(7 + i*gps) // same global page set
		p := s.Ensure(addr.Virtual(uint64(pn) << geo.PageBits))
		if p.Slot != i {
			t.Fatalf("page %d slot %d, want %d", i, p.Slot, i)
		}
		frames = append(frames, p.Frame)
	}
	seen := map[addr.Frame]bool{}
	for _, f := range frames {
		if seen[f] {
			t.Fatalf("duplicate frame %d", f)
		}
		seen[f] = true
	}
}

func TestVirtualOnly(t *testing.T) {
	geo := g()
	s := NewSystem(geo, VirtualOnly)
	home, da := s.DirAddrOf(0x10020)
	if home != geo.HomeNode(0x10020) {
		t.Fatalf("home %d", home)
	}
	// Same page, different block: same directory page, different entry.
	home2, da2 := s.DirAddrOf(0x10040)
	if home2 != home || geo.DirPageOf(da2) != geo.DirPageOf(da) || da2 == da {
		t.Fatalf("directory addresses: %d vs %d", da, da2)
	}
	// Directory pages are dense per home (starting after any pages the
	// lookups above already allocated).
	var pagesPerHome [4]int
	for n := addr.Node(0); n < 4; n++ {
		pagesPerHome[n] = s.DirPagesAt(n)
	}
	for i := 0; i < 40; i++ {
		v := addr.Virtual(0x20000 + i*256)
		p := s.Ensure(v)
		if p.DirPage != pagesPerHome[p.Home] {
			t.Fatalf("home %d: dir page %d, want %d", p.Home, p.DirPage, pagesPerHome[p.Home])
		}
		pagesPerHome[p.Home]++
	}
	for n := addr.Node(0); n < 4; n++ {
		if s.DirPagesAt(n) != pagesPerHome[n] {
			t.Fatalf("DirPagesAt(%d) = %d, want %d", n, s.DirPagesAt(n), pagesPerHome[n])
		}
	}
}

func TestModePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	v := NewSystem(g(), VirtualOnly)
	mustPanic("Translate on VirtualOnly", func() { v.Translate(0x100) })
	p := NewSystem(g(), PhysicalRoundRobin)
	mustPanic("DirAddrOf on physical", func() { p.DirAddrOf(0x100) })
	mustPanic("reverse of unmapped frame", func() { p.ReverseTranslate(0xFFFF00) })
}

func TestPressureProfile(t *testing.T) {
	geo := g() // 8 global page sets, 4 nodes x 2 ways = 8 slots each
	if geo.GlobalPageSets() != 8 || geo.PageSlotsPerGlobalSet() != 8 {
		t.Fatalf("test geometry: %d global page sets, %d slots",
			geo.GlobalPageSets(), geo.PageSlotsPerGlobalSet())
	}
	s := NewSystem(geo, VirtualOnly)
	s.Preload(0, 4*256) // 4 pages: gps 0..3, one each
	prof := s.PressureProfile()
	if len(prof) != 8 {
		t.Fatalf("profile %v", prof)
	}
	for i := 0; i < 4; i++ {
		if prof[i] != 1.0/8 {
			t.Fatalf("gps %d pressure %v, want 1/8", i, prof[i])
		}
	}
	counts := s.PagesPerGlobalSet()
	if counts[0] != 1 || counts[4] != 0 {
		t.Fatalf("counts %v", counts)
	}
	if s.OverflowCount() != 0 {
		t.Fatal("unexpected overflow")
	}
	// Overflow gps 0: capacity is 8 pages; map 10 pages with gps 0
	// (page numbers congruent mod 8).
	for i := 0; i < 10; i++ {
		s.Preload(addr.Virtual(0x100000+i*8*256), 1)
	}
	if s.OverflowCount() == 0 {
		t.Fatal("no overflow recorded past capacity")
	}
}

func TestPlacementNodeSpreads(t *testing.T) {
	for _, mode := range []Mode{PhysicalRoundRobin, Colored, VirtualOnly} {
		s := NewSystem(g(), mode)
		counts := map[addr.Node]int{}
		for i := 0; i < 64; i++ {
			counts[s.PlacementNode(addr.Virtual(i*256))]++
		}
		for n := addr.Node(0); n < 4; n++ {
			if counts[n] != 16 {
				t.Fatalf("mode %v: node %d placed %d of 64 pages", mode, n, counts[n])
			}
		}
	}
}

func TestReferencedModified(t *testing.T) {
	s := NewSystem(g(), VirtualOnly)
	s.SetReferenced(0x300)
	s.SetModified(0x300)
	p := s.Lookup(0x300)
	if p == nil || !p.Referenced || !p.Modified {
		t.Fatalf("page bits: %+v", p)
	}
}

func TestLayoutAllocation(t *testing.T) {
	l := NewLayout(g())
	a := l.Alloc("a", 100, 0)
	b := l.Alloc("b", 1000, 0)
	c := l.Alloc("c", 64, 1024)
	if a.End() > b.Base || b.End() > c.Base {
		t.Fatal("regions overlap")
	}
	if uint64(c.Base)%1024 != 0 {
		t.Fatalf("alignment not honoured: %#x", uint64(c.Base))
	}
	if uint64(a.Base)%256 != 0 || uint64(b.Base)%256 != 0 {
		t.Fatal("regions not page-aligned")
	}
	if l.TotalBytes() != 100+1000+64 {
		t.Fatalf("total = %d", l.TotalBytes())
	}
	if r, ok := l.Find(b.Base + 5); !ok || r.Name != "b" {
		t.Fatalf("find: %v %v", r, ok)
	}
	if _, ok := l.Find(0); ok {
		t.Fatal("found a region at address 0")
	}
}

func TestLayoutRegionsNeverSharePages(t *testing.T) {
	err := quick.Check(func(sizes []uint16) bool {
		l := NewLayout(g())
		var regions []Region
		for i, sz := range sizes {
			if len(regions) > 20 {
				break
			}
			regions = append(regions, l.Alloc(string(rune('a'+i%26)), uint64(sz)+1, 0))
		}
		geo := g()
		seen := map[addr.PageNum]int{}
		for i, r := range regions {
			first := geo.Page(r.Base)
			last := geo.Page(r.End() - 1)
			for pn := first; pn <= last; pn++ {
				if prev, ok := seen[pn]; ok && prev != i {
					return false
				}
				seen[pn] = i
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegionAt(t *testing.T) {
	l := NewLayout(g())
	r := l.Alloc("r", 100, 0)
	if r.At(0) != r.Base || r.At(99) != r.Base+99 {
		t.Fatal("At arithmetic wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds At did not panic")
		}
	}()
	r.At(100)
}

func TestAllocArrayAndPreloadAll(t *testing.T) {
	l := NewLayout(g())
	l.AllocArray("arr", 10, 64) // 640 bytes = 3 pages
	s := NewSystem(g(), PhysicalRoundRobin)
	l.PreloadAll(s)
	if s.MappedPages() != 3 {
		t.Fatalf("mapped %d pages, want 3", s.MappedPages())
	}
}

func TestLayoutFromRegions(t *testing.T) {
	orig := NewLayout(g())
	orig.Alloc("a", 500, 0)
	orig.Alloc("b", 1000, 4096)
	rebuilt, err := LayoutFromRegions(g(), orig.Regions())
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.TotalBytes() != orig.TotalBytes() {
		t.Fatalf("total %d != %d", rebuilt.TotalBytes(), orig.TotalBytes())
	}
	for i, r := range rebuilt.Regions() {
		if r != orig.Regions()[i] {
			t.Fatalf("region %d: %+v != %+v", i, r, orig.Regions()[i])
		}
	}
	// Overlapping regions rejected.
	bad := []Region{
		{Name: "x", Base: LayoutBase, Bytes: 1000},
		{Name: "y", Base: LayoutBase + 100, Bytes: 100},
	}
	if _, err := LayoutFromRegions(g(), bad); err == nil {
		t.Fatal("overlapping regions accepted")
	}
	if _, err := LayoutFromRegions(g(), []Region{{Name: "z", Base: LayoutBase}}); err == nil {
		t.Fatal("empty region accepted")
	}
}

func TestUnmapFreesSlot(t *testing.T) {
	for _, mode := range []Mode{PhysicalRoundRobin, Colored, VirtualOnly} {
		s := NewSystem(g(), mode)
		v := addr.Virtual(0x5000)
		s.Ensure(v)
		gpsBefore := s.PagesPerGlobalSet()
		if _, err := s.Unmap(v); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if s.Lookup(v) != nil {
			t.Fatalf("mode %v: page survived unmap", mode)
		}
		gpsAfter := s.PagesPerGlobalSet()
		sumB, sumA := 0, 0
		for i := range gpsBefore {
			sumB += gpsBefore[i]
			sumA += gpsAfter[i]
		}
		if sumA != sumB-1 {
			t.Fatalf("mode %v: slot not freed (%d -> %d)", mode, sumB, sumA)
		}
		if _, err := s.Unmap(v); err == nil {
			t.Fatalf("mode %v: double unmap succeeded", mode)
		}
		// Remapping reuses a fresh slot cleanly.
		if p := s.Ensure(v); p == nil {
			t.Fatalf("mode %v: remap failed", mode)
		}
	}
}

func TestUnmapReleasesFrameReverseMapping(t *testing.T) {
	s := NewSystem(g(), PhysicalRoundRobin)
	v := addr.Virtual(0x5000)
	pa := s.Translate(v)
	if _, err := s.Unmap(v); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reverse translation of an unmapped frame did not panic")
		}
	}()
	s.ReverseTranslate(pa)
}
