// Package vm implements the virtual-memory system of the simulated machine:
// the global segmented virtual address space and its region allocator, the
// virtual-to-physical page mapping used by the physically-addressed schemes
// (round-robin frame assignment, the paper's §5.3 policy), the colour-
// constrained set-associative mapping of L3-TLB (paper §3.4, Figure 4), the
// directory-page allocation of V-COMA, and the global-set pressure
// accounting behind Figure 11.
//
// The paper's runs preload all data and simulate no paging activity; here a
// page is mapped on first touch (or explicitly preloaded), which is
// equivalent and keeps runs deterministic.
package vm

import (
	"fmt"

	"vcoma/internal/addr"
)

// Mode selects the virtual-to-physical mapping policy.
type Mode int

const (
	// PhysicalRoundRobin assigns frames in allocation order, spreading
	// pages round-robin across home nodes: the paper's policy for the
	// physically-addressed COMA (L0/L1/L2-TLB).
	PhysicalRoundRobin Mode = iota
	// Colored constrains a page's frame to the global page set named by
	// its virtual address (page colouring, L3-TLB): the virtual-to-
	// physical mapping is set-associative with one slot per (node, way).
	Colored
	// VirtualOnly is V-COMA: no frames at all. Pages receive a directory
	// page at their home node; the attraction memory is virtually indexed
	// and the global page set is fixed by the virtual address.
	VirtualOnly
)

func (m Mode) String() string {
	switch m {
	case PhysicalRoundRobin:
		return "physical-rr"
	case Colored:
		return "colored"
	case VirtualOnly:
		return "virtual"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Page is the per-page bookkeeping record (the page-table entry).
type Page struct {
	Num  addr.PageNum
	Mode Mode

	// Frame is the physical frame (PhysicalRoundRobin and Colored modes).
	Frame addr.Frame
	// Slot is the page slot within the global page set (Colored and
	// VirtualOnly): the most significant frame bits of Figure 4.
	Slot int
	// DirPage is the directory page allocated at the home node
	// (VirtualOnly): dense per-home numbering.
	DirPage int
	// Home is the node owning the page's directory.
	Home addr.Node

	Referenced bool
	Modified   bool
	// Prot is the page-level protection (§2.2.4, §4.3).
	Prot Prot
}

// System is the machine-wide virtual-memory manager.
type System struct {
	g    addr.Geometry
	mode Mode

	pages map[addr.PageNum]*Page
	// memo is a direct-mapped front for the pages map: the translation path
	// runs on every simulated reference (often twice — data and protocol
	// addresses), and references repeat pages in bursts, so most lookups are
	// answered by one tag compare instead of a map probe. Entries are
	// evicted by index collision and the whole memo drops on Unmap; a nil
	// memoPage slot is simply a miss, so staleness cannot outlive an unmap.
	memoPN   [pageMemoSize]addr.PageNum
	memoPage [pageMemoSize]*Page
	// frames reverse-maps allocated frames to their virtual page, the
	// simulator's stand-in for the backpointers a physical cache keeps to
	// reach the virtual caches under it (paper §2.2.2).
	frames map[addr.Frame]addr.PageNum

	nextFrame addr.Frame // PhysicalRoundRobin allocation cursor

	// gpsPages counts pages resident per global page set (by the set that
	// governs attraction-memory placement: the frame's set in physical
	// mode, the virtual page's set otherwise).
	gpsPages []int
	// gpsOverflow counts allocations that exceeded a global page set's
	// P*K slots — pressure saturation that would force a swap-out in a
	// real system (§4.3).
	gpsOverflow []int

	// dirPages is the per-home directory-page allocation cursor.
	dirPages []int

	faults uint64 // first-touch mappings performed
}

// NewSystem returns a virtual-memory system for geometry g under the given
// mapping mode.
func NewSystem(g addr.Geometry, mode Mode) *System {
	return &System{
		g:           g,
		mode:        mode,
		pages:       make(map[addr.PageNum]*Page),
		frames:      make(map[addr.Frame]addr.PageNum),
		gpsPages:    make([]int, g.GlobalPageSets()),
		gpsOverflow: make([]int, g.GlobalPageSets()),
		dirPages:    make([]int, g.Nodes()),
	}
}

// Geometry returns the machine geometry.
func (s *System) Geometry() addr.Geometry { return s.g }

// Mode returns the mapping policy.
func (s *System) Mode() Mode { return s.mode }

// Faults returns how many pages have been mapped (first touches).
func (s *System) Faults() uint64 { return s.faults }

// MappedPages returns the number of resident pages.
func (s *System) MappedPages() int { return len(s.pages) }

// Lookup returns the page record for v's page, or nil if unmapped.
func (s *System) Lookup(v addr.Virtual) *Page { return s.pages[s.g.Page(v)] }

// pageMemoSize is the direct-mapped page-memo size (power of two). 256
// entries cover the hot working set of every paper workload.
const pageMemoSize = 256

// Ensure maps v's page if needed and returns its record. This is the page-
// fault path; with preloaded data it only fires on first touch.
func (s *System) Ensure(v addr.Virtual) *Page {
	pn := s.g.Page(v)
	slot := int(pn) & (pageMemoSize - 1)
	if p := s.memoPage[slot]; p != nil && s.memoPN[slot] == pn {
		return p
	}
	p := s.pages[pn]
	if p == nil {
		p = s.mapPage(pn)
	}
	s.memoPN[slot] = pn
	s.memoPage[slot] = p
	return p
}

func (s *System) mapPage(pn addr.PageNum) *Page {
	s.faults++
	p := &Page{Num: pn, Mode: s.mode, Prot: ProtRW}
	switch s.mode {
	case PhysicalRoundRobin:
		p.Frame = s.nextFrame
		s.nextFrame++
		p.Home = s.g.HomeNodeOfFrame(p.Frame)
		gps := s.g.GlobalPageSetOfFrame(p.Frame)
		p.Slot = s.gpsPages[gps]
		s.account(gps)
	case Colored:
		gps := s.g.GlobalPageSet(pn)
		p.Slot = s.gpsPages[gps]
		// Frame = slot in the MSBs, colour in the LSBs (Figure 4), so the
		// physical address indexes the same attraction-memory set as the
		// virtual address.
		p.Frame = addr.Frame(uint64(p.Slot)<<s.g.GlobalPageSetBits() | uint64(gps))
		p.Home = s.g.HomeNodeOfPage(pn)
		s.account(gps)
	case VirtualOnly:
		gps := s.g.GlobalPageSet(pn)
		p.Slot = s.gpsPages[gps]
		p.Home = s.g.HomeNodeOfPage(pn)
		p.DirPage = s.dirPages[p.Home]
		s.dirPages[p.Home]++
		s.account(gps)
	}
	if s.mode != VirtualOnly {
		s.frames[p.Frame] = pn
	}
	s.pages[pn] = p
	return p
}

// dropMemo evicts pn's memo entry (if cached) after an unmap.
func (s *System) dropMemo(pn addr.PageNum) {
	slot := int(pn) & (pageMemoSize - 1)
	if s.memoPN[slot] == pn {
		s.memoPage[slot] = nil
	}
}

func (s *System) account(gps int) {
	s.gpsPages[gps]++
	if s.gpsPages[gps] > s.g.PageSlotsPerGlobalSet() {
		s.gpsOverflow[gps]++
	}
}

// Translate maps a virtual address to its physical address, mapping the page
// on first touch. It panics in VirtualOnly mode, where physical addresses do
// not exist.
func (s *System) Translate(v addr.Virtual) addr.Physical {
	if s.mode == VirtualOnly {
		panic("vm: Translate called on a V-COMA (virtual-only) system")
	}
	p := s.Ensure(v)
	return s.g.PhysAddr(p.Frame, v)
}

// TryTranslate maps a virtual address to its physical address if v's page
// is already mapped, with no side effects: no first-touch mapping, no fault
// accounting, no memo update. The parallel engine's contained access path
// uses it to classify references against frozen VM state; any reference to
// an unmapped page is deferred to the sequential drain, which performs the
// first touch through Translate in exact sequential order. It panics in
// VirtualOnly mode, like Translate.
func (s *System) TryTranslate(v addr.Virtual) (addr.Physical, bool) {
	if s.mode == VirtualOnly {
		panic("vm: TryTranslate called on a V-COMA (virtual-only) system")
	}
	p := s.pages[s.g.Page(v)]
	if p == nil {
		return 0, false
	}
	return s.g.PhysAddr(p.Frame, v), true
}

// DirAddrOf returns the directory address of v's block at its home node,
// mapping the page on first touch. Valid only in VirtualOnly mode.
func (s *System) DirAddrOf(v addr.Virtual) (addr.Node, addr.DirAddr) {
	if s.mode != VirtualOnly {
		panic("vm: DirAddrOf called on a physically-mapped system")
	}
	p := s.Ensure(v)
	return p.Home, s.g.DirAddrOf(p.DirPage, v)
}

// ReversePage returns the virtual page mapped to frame f, if any — the
// backpointer lookup used to reach virtual caches from physical addresses
// (§2.2.2).
func (s *System) ReversePage(f addr.Frame) (addr.PageNum, bool) {
	pn, ok := s.frames[f]
	return pn, ok
}

// ReverseTranslate maps a physical address back to its virtual address. It
// panics on an unmapped frame: the simulator only manufactures physical
// addresses through Translate, so an unmapped frame is a bookkeeping bug.
func (s *System) ReverseTranslate(pa addr.Physical) addr.Virtual {
	pn, ok := s.frames[s.g.FrameOf(pa)]
	if !ok {
		panic(fmt.Sprintf("vm: reverse translation of unmapped physical address %#x", uint64(pa)))
	}
	return addr.Virtual(uint64(pn)<<s.g.PageBits | uint64(pa)&(s.g.PageSize()-1))
}

// Preload maps every page of [base, base+bytes) in ascending order, making
// frame assignment independent of the simulated access interleaving.
func (s *System) Preload(base addr.Virtual, bytes uint64) {
	if bytes == 0 {
		return
	}
	first := s.g.Page(base)
	last := s.g.Page(base + addr.Virtual(bytes-1))
	for pn := first; pn <= last; pn++ {
		if s.pages[pn] == nil {
			s.mapPage(pn)
		}
	}
}

// PlacementNode returns the node whose attraction memory initially holds
// v's page. A page's slot within its global page set names a (node, way)
// pair machine-wide; spreading consecutive slots across nodes — offset by
// the set index so that the first page of every set does not pile onto node
// 0 — fills every node's sets evenly. The page's home node (directory
// location) is generally a different node: with page-interleaved homes the
// attraction-memory set index determines the home bits, so placing masters
// at their homes would leave all but 1/P of each node's sets empty.
func (s *System) PlacementNode(v addr.Virtual) addr.Node {
	p := s.Ensure(v)
	var gps int
	if s.mode == PhysicalRoundRobin {
		gps = s.g.GlobalPageSetOfFrame(p.Frame)
	} else {
		gps = s.g.GlobalPageSet(p.Num)
	}
	return addr.Node((p.Slot + gps) % s.g.Nodes())
}

// SetReferenced marks v's page referenced.
func (s *System) SetReferenced(v addr.Virtual) { s.Ensure(v).Referenced = true }

// SetModified marks v's page modified (§4.3's Modify-bit protocol endpoint).
func (s *System) SetModified(v addr.Virtual) { s.Ensure(v).Modified = true }

// PressureProfile returns, per global page set, the occupancy fraction
// occupied-slots / (P*K) — the paper's Figure 11 metric. Values above 1
// indicate saturation (overflow allocations).
func (s *System) PressureProfile() []float64 {
	cap := float64(s.g.PageSlotsPerGlobalSet())
	out := make([]float64, len(s.gpsPages))
	for i, n := range s.gpsPages {
		out[i] = float64(n) / cap
	}
	return out
}

// OverflowCount returns the total number of over-capacity allocations across
// all global page sets.
func (s *System) OverflowCount() int {
	total := 0
	for _, n := range s.gpsOverflow {
		total += n
	}
	return total
}

// PagesPerGlobalSet returns a copy of the per-set resident page counts.
func (s *System) PagesPerGlobalSet() []int {
	return append([]int(nil), s.gpsPages...)
}

// DirPagesAt returns how many directory pages have been allocated at home
// node n (VirtualOnly mode).
func (s *System) DirPagesAt(n addr.Node) int { return s.dirPages[n] }
