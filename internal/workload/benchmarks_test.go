package workload

import (
	"testing"

	"vcoma/internal/addr"
	"vcoma/internal/trace"
)

func TestFFTBuildValidation(t *testing.T) {
	g := testGeometry()
	if _, err := NewFFT(FFTParams{LogPoints: 2}).Build(g, 4); err == nil {
		t.Fatal("tiny FFT accepted")
	}
	if _, err := NewFFT(FFTParams{LogPoints: 10}).Build(g, 4096); err == nil {
		t.Fatal("more processors than rows accepted")
	}
}

func TestFFTTransposeIsAllToAll(t *testing.T) {
	g := testGeometry()
	pr, err := NewFFT(FFTParams{LogPoints: 10}).Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// During the first transpose, every processor must read source rows
	// owned by every other processor.
	var xLo, xHi uint64
	for _, r := range pr.Layout().Regions() {
		if r.Name == "x" {
			xLo, xHi = uint64(r.Base), uint64(r.End())
		}
	}
	quarter := (xHi - xLo) / 4
	s := pr.Streams()
	defer func() {
		for _, st := range s {
			trace.CloseStream(st)
		}
	}()
	ownersRead := map[int]bool{}
	count := 0
	for {
		ev, ok := s[0].Next()
		if !ok || count > 20000 {
			break
		}
		count++
		if ev.Kind == trace.Read && uint64(ev.Addr) >= xLo && uint64(ev.Addr) < xHi {
			ownersRead[int((uint64(ev.Addr)-xLo)/quarter)] = true
		}
	}
	if len(ownersRead) < 4 {
		t.Fatalf("transpose read from %d of 4 partitions", len(ownersRead))
	}
}

func TestFMMTreeGeometry(t *testing.T) {
	tr := buildFMMTree(16384, 10)
	if tr.depth < 5 {
		t.Fatalf("depth %d too shallow for 16384 particles", tr.depth)
	}
	if tr.boxes != tr.levelBase[tr.depth]+1<<(2*tr.depth) {
		t.Fatalf("box count %d inconsistent", tr.boxes)
	}
	// Box indices are unique across levels.
	if tr.box(0, 0, 0) != 0 || tr.box(1, 0, 0) != 1 {
		t.Fatal("level bases wrong")
	}
	last := tr.box(tr.depth, tr.levelDim[tr.depth]-1, tr.levelDim[tr.depth]-1)
	if last != tr.boxes-1 {
		t.Fatalf("last box %d, want %d", last, tr.boxes-1)
	}
}

func TestFMMBuildValidation(t *testing.T) {
	if _, err := NewFMM(FMMParams{}).Build(testGeometry(), 4); err == nil {
		t.Fatal("zero particles accepted")
	}
}

func TestOceanBuildValidation(t *testing.T) {
	if _, err := NewOcean(OceanParams{N: 4, Timesteps: 1, RelaxSweeps: 1}).Build(testGeometry(), 4); err == nil {
		t.Fatal("tiny grid accepted")
	}
}

func TestOceanHaloCrossesPartitions(t *testing.T) {
	g := testGeometry()
	pr, err := NewOcean(ScaleTest.Ocean()).Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Proc 1 must read rows owned by procs 0 and 2 (stencil halo).
	p := ScaleTest.Ocean()
	rowBytes := uint64(p.N) * oceanElem
	lo, hi := chunk(p.N-2, 4, 1)
	s := pr.Streams()
	defer func() {
		for _, st := range s {
			trace.CloseStream(st)
		}
	}()
	sawNorth, sawSouth := false, false
	grid0 := pr.Layout().Regions()[0]
	for {
		ev, ok := s[1].Next()
		if !ok {
			break
		}
		if ev.Kind != trace.Read || !grid0.Contains(ev.Addr) {
			continue
		}
		row := int(uint64(ev.Addr-grid0.Base) / rowBytes)
		if row == lo { // the row above proc 1's first interior row
			sawNorth = true
		}
		if row == hi+1 {
			sawSouth = true
		}
	}
	if !sawNorth || !sawSouth {
		t.Fatalf("halo reads missing: north=%v south=%v", sawNorth, sawSouth)
	}
}

func TestRaytraceStackAlignment(t *testing.T) {
	g := testGeometry()
	for _, align := range []uint64{32 << 10, 0} { // 0 = page alignment (V2)
		p := ScaleTest.Raytrace()
		p.StackAlign = align
		pr, err := NewRaytrace(p).Build(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		want := align
		if want == 0 {
			want = g.PageSize()
		}
		count := 0
		for _, r := range pr.Layout().Regions() {
			if len(r.Name) > 9 && r.Name[:9] == "raystruct" {
				count++
				if uint64(r.Base)%want != 0 {
					t.Fatalf("align %d: stack at %#x not aligned", align, uint64(r.Base))
				}
			}
		}
		if count != 4 {
			t.Fatalf("found %d raystructs", count)
		}
	}
}

func TestRaytraceStacksArePrivate(t *testing.T) {
	g := testGeometry()
	pr, err := NewRaytrace(ScaleTest.Raytrace()).Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	var stacks []struct{ lo, hi uint64 }
	for _, r := range pr.Layout().Regions() {
		if len(r.Name) > 9 && r.Name[:9] == "raystruct" {
			stacks = append(stacks, struct{ lo, hi uint64 }{uint64(r.Base), uint64(r.End())})
		}
	}
	ss := pr.Streams()
	for p, s := range ss {
		for {
			ev, ok := s.Next()
			if !ok {
				break
			}
			if ev.Kind != trace.Read && ev.Kind != trace.Write {
				continue
			}
			a := uint64(ev.Addr)
			for q, st := range stacks {
				if a >= st.lo && a < st.hi && q != p {
					t.Fatalf("proc %d touched proc %d's private stack", p, q)
				}
			}
		}
	}
}

func TestBarnesBuildValidation(t *testing.T) {
	if _, err := NewBarnes(BarnesParams{}).Build(testGeometry(), 4); err == nil {
		t.Fatal("zero bodies accepted")
	}
}

func TestBarnesTreeWalkReadsSharedTopCells(t *testing.T) {
	g := testGeometry()
	pr, err := NewBarnes(ScaleTest.Barnes()).Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The root cell (cells[0]) must be read by every processor — the
	// read-sharing that caches absorb in BARNES.
	cells := pr.Layout().Regions()[1]
	if cells.Name != "cells" {
		t.Fatalf("region order changed: %s", cells.Name)
	}
	for p, s := range pr.Streams() {
		sawRoot := false
		for {
			ev, ok := s.Next()
			if !ok {
				break
			}
			if ev.Kind == trace.Read && ev.Addr >= cells.Base && ev.Addr < cells.Base+addr.Virtual(barnesCellBytes) {
				sawRoot = true
			}
		}
		if !sawRoot {
			t.Fatalf("proc %d never read the root cell", p)
		}
	}
}
