package workload

import (
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/prng"
	"vcoma/internal/trace"
	"vcoma/internal/vm"
)

// RadixParams configures the RADIX integer sort (SPLASH-2 radix; the
// paper runs -n524288 -r2048 -m1048576).
type RadixParams struct {
	Keys   int    // number of keys to sort
	Radix  int    // radix (buckets per pass), a power of two
	MaxKey uint32 // keys are uniform in [0, MaxKey)
	Seed   uint64
}

// Radix is the RADIX benchmark: an iterative parallel counting sort. Each
// pass histograms one digit, prefix-sums the histograms, then permutes
// every key into a globally shared output array. The permutation writes are
// scattered across the whole array and shared by all nodes — the access
// pattern behind the paper's observation that RADIX's writes defeat cache
// filtering and private TLBs while the shared DLB absorbs them (§5.2).
type Radix struct {
	p RadixParams
}

// NewRadix returns the benchmark for the given parameters.
func NewRadix(p RadixParams) *Radix { return &Radix{p: p} }

// Name implements Benchmark.
func (r *Radix) Name() string { return "RADIX" }

const (
	keyBytes  = 4
	histBytes = 4
)

// radixPlan holds the precomputed global sort: per pass, each processor's
// digit counts and every key's permutation target. The generators replay
// the exact algorithm from this plan.
type radixPlan struct {
	passes  int
	keys    [][]uint32 // keys[pass][i]: the key array at the start of pass
	targets [][]int32  // targets[pass][i]: where key i moves in this pass
	digits  int        // bits per digit
}

func buildRadixPlan(p RadixParams, procs int) (*radixPlan, error) {
	if p.Keys <= 0 || p.Radix <= 1 || p.Radix&(p.Radix-1) != 0 {
		return nil, fmt.Errorf("workload: bad RADIX parameters %+v", p)
	}
	digitBits := 0
	for d := p.Radix; d > 1; d >>= 1 {
		digitBits++
	}
	keyBits := 0
	for m := uint64(p.MaxKey - 1); m > 0; m >>= 1 {
		keyBits++
	}
	passes := (keyBits + digitBits - 1) / digitBits
	if passes == 0 {
		passes = 1
	}

	rng := prng.New(p.Seed)
	cur := make([]uint32, p.Keys)
	for i := range cur {
		cur[i] = rng.Uint32() % p.MaxKey
	}

	plan := &radixPlan{passes: passes, digits: digitBits}
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * digitBits)
		mask := uint32(p.Radix - 1)

		// Per-processor digit histograms over each proc's contiguous range.
		hist := make([][]int, procs)
		for q := range hist {
			hist[q] = make([]int, p.Radix)
		}
		for q := 0; q < procs; q++ {
			lo, hi := chunk(p.Keys, procs, q)
			for i := lo; i < hi; i++ {
				hist[q][(cur[i]>>shift)&mask]++
			}
		}
		// Global stable rank base for (digit, proc): keys order by
		// (digit, owning proc, local index) — the parallel counting sort.
		base := make([][]int, procs)
		for q := range base {
			base[q] = make([]int, p.Radix)
		}
		total := 0
		for d := 0; d < p.Radix; d++ {
			for q := 0; q < procs; q++ {
				base[q][d] = total
				total += hist[q][d]
			}
		}

		targets := make([]int32, p.Keys)
		next := make([]uint32, p.Keys)
		cursor := make([][]int, procs)
		for q := range cursor {
			cursor[q] = make([]int, p.Radix)
		}
		for q := 0; q < procs; q++ {
			lo, hi := chunk(p.Keys, procs, q)
			for i := lo; i < hi; i++ {
				d := (cur[i] >> shift) & mask
				t := base[q][d] + cursor[q][d]
				cursor[q][d]++
				targets[i] = int32(t)
				next[t] = cur[i]
			}
		}
		plan.keys = append(plan.keys, cur)
		plan.targets = append(plan.targets, targets)
		cur = next
	}
	return plan, nil
}

// Build implements Benchmark.
func (r *Radix) Build(g addr.Geometry, procs int) (*Program, error) {
	p := r.p
	plan, err := buildRadixPlan(p, procs)
	if err != nil {
		return nil, err
	}

	l := vm.NewLayout(g)
	key0 := l.AllocArray("key0", p.Keys, keyBytes)
	key1 := l.AllocArray("key1", p.Keys, keyBytes)
	// Per-processor histogram rows in one shared array (SPLASH's rank
	// array), plus the global prefix bases.
	hist := l.AllocArray("rank", procs*p.Radix, histBytes)
	prefix := l.AllocArray("rank_ff", p.Radix, histBytes)

	keyRegion := func(pass int) (from, to vm.Region) {
		if pass%2 == 0 {
			return key0, key1
		}
		return key1, key0
	}

	bar := &barrierSeq{}
	// Barrier IDs fixed at build time: one before each phase of each pass.
	type passBarriers struct{ histDone, prefixDone, permDone int }
	var bars []passBarriers
	start := bar.id()
	for pass := 0; pass < plan.passes; pass++ {
		bars = append(bars, passBarriers{histDone: bar.id(), prefixDone: bar.id(), permDone: bar.id()})
	}

	gen := func(proc int) func(*trace.Emitter) {
		return func(e *trace.Emitter) {
			mask := uint32(p.Radix - 1)
			e.Barrier(start)
			for pass := 0; pass < plan.passes; pass++ {
				shift := uint(pass * plan.digits)
				from, to := keyRegion(pass)
				lo, hi := chunk(p.Keys, procs, proc)

				// Phase 1: local histogram. Read each key, bump the digit
				// counter in this proc's row of the shared rank array.
				for i := lo; i < hi; i++ {
					e.Read(from.At(uint64(i) * keyBytes))
					d := (plan.keys[pass][i] >> shift) & mask
					e.Write(hist.At(uint64(proc*p.Radix+int(d)) * histBytes))
					e.Compute(2)
				}
				e.Barrier(bars[pass].histDone)

				// Phase 2: parallel prefix. Each proc owns a digit range,
				// reads every proc's count for those digits (remote reads
				// across all nodes), writes the global base.
				dlo, dhi := chunk(p.Radix, procs, proc)
				for d := dlo; d < dhi; d++ {
					for q := 0; q < procs; q++ {
						e.Read(hist.At(uint64(q*p.Radix+d) * histBytes))
						e.Compute(1)
					}
					e.Write(prefix.At(uint64(d) * histBytes))
				}
				e.Barrier(bars[pass].prefixDone)

				// Phase 3: permutation. Re-read own keys and the digit
				// base, then write each key to its global rank — scattered
				// stores into an array spread over every node.
				for i := lo; i < hi; i++ {
					e.Read(from.At(uint64(i) * keyBytes))
					d := (plan.keys[pass][i] >> shift) & mask
					e.Read(prefix.At(uint64(d) * histBytes))
					t := plan.targets[pass][i]
					e.Write(to.At(uint64(t) * keyBytes))
					e.Compute(4)
				}
				e.Barrier(bars[pass].permDone)
			}
		}
	}
	return NewProgram("RADIX", l, procs, gen), nil
}
