package workload

import (
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/prng"
	"vcoma/internal/trace"
	"vcoma/internal/vm"
)

// RaytraceParams configures the RAYTRACE benchmark (SPLASH-2 raytrace; the
// paper renders the "car" scene).
type RaytraceParams struct {
	Image   int // image side in pixels; Image^2 primary rays
	SceneMB int // scene footprint (grid cells + primitives)
	// StackAlign is the alignment of each processor's private ray-tree
	// stack (the SPLASH raystruct). The original source pads raystruct to
	// a multiple of 32 KB to avoid false sharing, which concentrates all
	// processors' stacks into the same global page sets under virtual
	// indexing — the pathology of the paper's Figure 10. The "V2" layout
	// aligns the padding to one 4 KB page instead, spreading the colours.
	StackAlign uint64
	Seed       uint64
}

// Raytrace renders an image by tracing rays through a shared, read-mostly
// scene (uniform-grid traversal plus primitive intersection reads), with a
// private per-processor ray-tree stack and lock-protected distributed work
// queues.
type Raytrace struct {
	p RaytraceParams
}

// NewRaytrace returns the benchmark for the given parameters.
func NewRaytrace(p RaytraceParams) *Raytrace { return &Raytrace{p: p} }

// Name implements Benchmark.
func (r *Raytrace) Name() string { return "RAYTRACE" }

const (
	rayCellBytes    = 64       // one grid voxel record
	rayPrimBytes    = 256      // one primitive (polygon) record
	rayStackData    = 26 << 10 // natural raystruct size before padding
	rayFBBytes      = 4        // framebuffer pixel
	rayBatch        = 16       // rays per work-queue interaction
	rayStackHotSlot = 64       // bytes per ray-tree stack entry
)

// Build implements Benchmark.
func (r *Raytrace) Build(g addr.Geometry, procs int) (*Program, error) {
	p := r.p
	if p.Image < 4 || p.SceneMB < 1 {
		return nil, fmt.Errorf("workload: bad RAYTRACE parameters %+v", p)
	}
	align := p.StackAlign
	if align == 0 {
		align = g.PageSize()
	}

	l := vm.NewLayout(g)
	sceneBytes := uint64(p.SceneMB) << 20
	// Two thirds of the scene is the uniform grid, one third primitives.
	gridRegion := l.Alloc("scenegrid", sceneBytes*2/3, 0)
	primRegion := l.Alloc("sceneprims", sceneBytes/3, 0)
	fb := l.AllocArray("framebuffer", p.Image*p.Image, rayFBBytes)
	queues := l.AllocArray("workqueues", procs*16, 8)

	// Each processor's raystruct: the natural data padded up to the
	// configured alignment — successive structs land StackStride bytes
	// apart in virtual space.
	stride := (uint64(rayStackData) + align - 1) &^ (align - 1)
	var stacks []vm.Region
	for q := 0; q < procs; q++ {
		stacks = append(stacks, l.Alloc(fmt.Sprintf("raystruct%02d", q), stride, align))
	}

	cells := gridRegion.Bytes / rayCellBytes
	prims := primRegion.Bytes / rayPrimBytes
	rays := p.Image * p.Image
	tiles := procs // one primary tile per processor, rays interleaved

	bar := &barrierSeq{}
	bStart := bar.id()
	bEnd := bar.id()

	totalSlots := rayStackData / rayStackHotSlot
	gen := func(proc int) func(*trace.Emitter) {
		return func(e *trace.Emitter) {
			rng := prng.New(p.Seed ^ uint64(proc)<<20)
			e.Barrier(bStart)

			lo, hi := chunk(rays, tiles, proc)
			stack := stacks[proc]
			// The ray-tree allocator cycles through the whole raystruct,
			// keeping all of its pages hot, as the real 26 KB structure is.
			cursor := 0
			tileLo := (uint64(proc) * cells) / uint64(procs)
			tileSpan := cells / uint64(procs)
			for ray := lo; ray < hi; ray++ {
				if (ray-lo)%rayBatch == 0 {
					// Take a batch from the (own) work queue; at a fixed
					// small rate, steal from a neighbour's queue instead.
					victim := proc
					if rng.Intn(16) == 0 {
						victim = rng.Intn(procs)
					}
					e.Lock(1000 + victim)
					e.Read(queues.At(uint64(victim*16) * 8))
					e.Write(queues.At(uint64(victim*16) * 8))
					e.Unlock(1000 + victim)
				}

				// Grid traversal: primary rays stay inside the processor's
				// tile volume; shadow and reflection rays go anywhere.
				steps := 8 + rng.Intn(17)
				// The hot window drifts across the tile as rendering
				// advances: instantaneous locality is high (the TLB sees a
				// page-sized working set) while the cumulative footprint
				// covers the whole tile (the attraction memory fills).
				hotSpan := tileSpan/64 + 1
				hotLo := tileLo + (uint64(ray-lo)*tileSpan)/uint64(hi-lo+1)
				if hotLo+hotSpan > tileLo+tileSpan {
					hotLo = tileLo + tileSpan - hotSpan
				}
				for s := 0; s < steps; s++ {
					var cell uint64
					switch rng.Intn(16) {
					case 0:
						cell = rng.Uint64n(cells)
					case 1:
						cell = tileLo + rng.Uint64n(tileSpan)
					default:
						cell = hotLo + rng.Uint64n(hotSpan)
					}
					e.Read(gridRegion.At(cell * rayCellBytes))
					e.Read(gridRegion.At(cell*rayCellBytes + 8))
					e.Compute(30)
				}

				// Build the ray tree in the private raystruct: a run of
				// node records written, then read back during shading. The
				// allocation cursor wraps, keeping the whole structure hot.
				nodes := 4 + rng.Intn(12)
				for k := 0; k < nodes; k++ {
					slot := uint64((cursor + k) % totalSlots)
					e.Write(stack.At(slot * rayStackHotSlot))
					e.Write(stack.At(slot*rayStackHotSlot + 8))
				}

				// Primitive intersections: a few polygon records, read in
				// full (multiple cache lines each).
				nprims := 3 + rng.Intn(6)
				for k := 0; k < nprims; k++ {
					// Most intersections hit a handful of hot objects; the
					// rest scatter over the whole model.
					prim := rng.Uint64n(prims)
					if rng.Intn(8) != 0 {
						prim = rng.Uint64n(prims/400 + 1)
					}
					for off := uint64(0); off < rayPrimBytes; off += 32 {
						e.Read(primRegion.At(prim*rayPrimBytes + off))
						e.Read(primRegion.At(prim*rayPrimBytes + off + 8))
					}
					e.Compute(100)
				}

				// Unwind the ray tree: read the nodes back while shading.
				for k := nodes - 1; k >= 0; k-- {
					slot := uint64((cursor + k) % totalSlots)
					e.Read(stack.At(slot * rayStackHotSlot))
					e.Compute(10)
				}
				cursor = (cursor + nodes) % totalSlots

				e.Write(fb.At(uint64(ray) * rayFBBytes))
				e.Compute(40)
			}
			e.Barrier(bEnd)
		}
	}
	return NewProgram("RAYTRACE", l, procs, gen), nil
}
