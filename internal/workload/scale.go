package workload

// Scale selects a parameter set for the benchmark suite.
type Scale int

const (
	// ScaleTest is a tiny configuration for unit tests: structure intact,
	// seconds of simulation at most.
	ScaleTest Scale = iota
	// ScaleSmall is roughly an eighth of the paper's data sets — enough
	// to exceed the caches and exercise every effect, small enough for
	// quick experiment iterations and Go benchmarks.
	ScaleSmall
	// ScalePaper is the paper's Table 1 configuration.
	ScalePaper
)

func (s Scale) String() string {
	switch s {
	case ScaleTest:
		return "test"
	case ScaleSmall:
		return "small"
	case ScalePaper:
		return "paper"
	default:
		return "Scale(?)"
	}
}

// Radix returns the RADIX parameters at this scale (paper: -n524288 -r2048
// -m1048576).
func (s Scale) Radix() RadixParams {
	switch s {
	case ScalePaper:
		return RadixParams{Keys: 524288, Radix: 2048, MaxKey: 1 << 20, Seed: 0x7AD1}
	case ScaleSmall:
		return RadixParams{Keys: 65536, Radix: 256, MaxKey: 1 << 20, Seed: 0x7AD1}
	default:
		return RadixParams{Keys: 4096, Radix: 64, MaxKey: 1 << 12, Seed: 0x7AD1}
	}
}

// FFT returns the FFT parameters at this scale (paper: -m20 -t, a 2^20
// point transform on a 1024x1024 matrix).
func (s Scale) FFT() FFTParams {
	switch s {
	case ScalePaper:
		return FFTParams{LogPoints: 20, Seed: 0xFF7}
	case ScaleSmall:
		return FFTParams{LogPoints: 16, Seed: 0xFF7}
	default:
		return FFTParams{LogPoints: 10, Seed: 0xFF7}
	}
}

// FMM returns the FMM parameters at this scale (paper: 16384 particles).
func (s Scale) FMM() FMMParams {
	switch s {
	case ScalePaper:
		return FMMParams{Particles: 16384, ParticlesPerLeaf: 10, Timesteps: 2, Seed: 0xF33}
	case ScaleSmall:
		return FMMParams{Particles: 4096, ParticlesPerLeaf: 10, Timesteps: 2, Seed: 0xF33}
	default:
		return FMMParams{Particles: 256, ParticlesPerLeaf: 8, Timesteps: 1, Seed: 0xF33}
	}
}

// Ocean returns the OCEAN parameters at this scale (paper: a 258x258 grid).
func (s Scale) Ocean() OceanParams {
	switch s {
	case ScalePaper:
		return OceanParams{N: 258, Timesteps: 2, RelaxSweeps: 2, Seed: 0x0CEA}
	case ScaleSmall:
		return OceanParams{N: 130, Timesteps: 2, RelaxSweeps: 2, Seed: 0x0CEA}
	default:
		return OceanParams{N: 34, Timesteps: 1, RelaxSweeps: 2, Seed: 0x0CEA}
	}
}

// Raytrace returns the RAYTRACE parameters at this scale (paper: the "car"
// scene).
func (s Scale) Raytrace() RaytraceParams {
	switch s {
	case ScalePaper:
		return RaytraceParams{Image: 256, SceneMB: 32, StackAlign: 32 << 10, Seed: 0x7A1}
	case ScaleSmall:
		return RaytraceParams{Image: 128, SceneMB: 16, StackAlign: 32 << 10, Seed: 0x7A1}
	default:
		return RaytraceParams{Image: 16, SceneMB: 1, StackAlign: 32 << 10, Seed: 0x7A1}
	}
}

// Barnes returns the BARNES parameters at this scale (paper: 16384
// particles).
func (s Scale) Barnes() BarnesParams {
	switch s {
	case ScalePaper:
		return BarnesParams{Bodies: 16384, Timesteps: 2, Seed: 0xBA4}
	case ScaleSmall:
		return BarnesParams{Bodies: 4096, Timesteps: 2, Seed: 0xBA4}
	default:
		return BarnesParams{Bodies: 256, Timesteps: 1, Seed: 0xBA4}
	}
}

// AMSetBits returns the attraction-memory sets-per-node (log2) matching
// this scale, following the paper's methodology of scaling the attraction
// memory with the data sets (§5.1: "we have to scale down the sizes of
// attraction memories, caches, and TLBs"). Paper scale keeps the paper's
// 4 MB per node; small uses 1 MB; test 512 KB.
func (s Scale) AMSetBits() uint {
	switch s {
	case ScalePaper:
		return 13 // 8192 sets * 4 ways * 128 B = 4 MB
	case ScaleSmall:
		return 11 // 1 MB per node
	default:
		return 10 // 512 KB per node
	}
}
