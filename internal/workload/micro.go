package workload

import (
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/prng"
	"vcoma/internal/trace"
	"vcoma/internal/vm"
)

// This file provides three controlled microbenchmarks alongside the six
// SPLASH-2 reproductions. They isolate single behaviours — streaming
// bandwidth, dependent-load latency, and coherence contention — and are the
// fastest way to probe a translation scheme's corner cases.

// StreamParams configures the STREAM-style sequential scan.
type StreamParams struct {
	BytesPerProc uint64 // private array size per processor
	Passes       int    // read+write sweeps
	Seed         uint64
}

// MicroStream is a bandwidth kernel: each processor sweeps its own slice of
// a large shared array with unit-stride reads and writes. Perfect spatial
// locality; the TLB working set is exactly one page at a time.
type MicroStream struct{ p StreamParams }

// NewMicroStream returns the STREAM-style benchmark.
func NewMicroStream(p StreamParams) *MicroStream { return &MicroStream{p: p} }

// Name implements Benchmark.
func (m *MicroStream) Name() string { return "µSTREAM" }

// Build implements Benchmark.
func (m *MicroStream) Build(g addr.Geometry, procs int) (*Program, error) {
	p := m.p
	if p.BytesPerProc == 0 || p.Passes <= 0 {
		return nil, fmt.Errorf("workload: bad µSTREAM parameters %+v", p)
	}
	l := vm.NewLayout(g)
	data := l.Alloc("stream", p.BytesPerProc*uint64(procs), 0)
	bar := &barrierSeq{}
	start, end := bar.id(), bar.id()

	gen := func(proc int) func(*trace.Emitter) {
		return func(e *trace.Emitter) {
			base := uint64(proc) * p.BytesPerProc
			e.Barrier(start)
			for pass := 0; pass < p.Passes; pass++ {
				for off := uint64(0); off < p.BytesPerProc; off += 8 {
					e.Read(data.At(base + off))
					e.Write(data.At(base + off))
				}
				e.Compute(p.BytesPerProc / 8)
			}
			e.Barrier(end)
		}
	}
	return NewProgram(m.Name(), l, procs, gen), nil
}

// ChaseParams configures the pointer chase.
type ChaseParams struct {
	Nodes  int  // linked-list nodes per processor
	Steps  int  // dependent loads per processor
	Shared bool // true: one list shared by all; false: private lists
	Seed   uint64
}

// MicroChase is a dependent-load latency kernel: a pseudo-random
// permutation cycle walked one node at a time. Every access is a cache and
// TLB surprise once the list exceeds their reach — the worst case for every
// translation scheme, and the pattern where V-COMA's shared DLB shows its
// largest advantage when the list is shared.
type MicroChase struct{ p ChaseParams }

// NewMicroChase returns the pointer-chase benchmark.
func NewMicroChase(p ChaseParams) *MicroChase { return &MicroChase{p: p} }

// Name implements Benchmark.
func (m *MicroChase) Name() string { return "µCHASE" }

const chaseNodeBytes = 64

// Build implements Benchmark.
func (m *MicroChase) Build(g addr.Geometry, procs int) (*Program, error) {
	p := m.p
	if p.Nodes <= 1 || p.Steps <= 0 {
		return nil, fmt.Errorf("workload: bad µCHASE parameters %+v", p)
	}
	l := vm.NewLayout(g)
	lists := 1
	if !p.Shared {
		lists = procs
	}
	region := l.AllocArray("chain", p.Nodes*lists, chaseNodeBytes)

	// One permutation cycle per list, deterministic.
	perms := make([][]int, lists)
	for i := range perms {
		rng := prng.New(p.Seed + uint64(i)*977)
		perm := rng.Perm(p.Nodes)
		next := make([]int, p.Nodes)
		for j := 0; j < p.Nodes; j++ {
			next[perm[j]] = perm[(j+1)%p.Nodes]
		}
		perms[i] = next
	}

	bar := &barrierSeq{}
	start, end := bar.id(), bar.id()
	gen := func(proc int) func(*trace.Emitter) {
		return func(e *trace.Emitter) {
			list := 0
			if !p.Shared {
				list = proc
			}
			next := perms[list]
			base := list * p.Nodes
			e.Barrier(start)
			cur := proc % p.Nodes
			for s := 0; s < p.Steps; s++ {
				e.Read(region.At(uint64(base+cur) * chaseNodeBytes))
				e.Compute(2)
				cur = next[cur]
			}
			e.Barrier(end)
		}
	}
	return NewProgram(m.Name(), l, procs, gen), nil
}

// HotSpotParams configures the contention kernel.
type HotSpotParams struct {
	Counters   int // shared counters, each on its own block
	Iterations int // lock/update/unlock rounds per processor
	Seed       uint64
}

// MicroHotSpot is a coherence-contention kernel: processors repeatedly
// lock a random shared counter, read-modify-write it, and release. The
// counters' blocks ping-pong between nodes; translation happens on almost
// every access — coherence misses are the traffic that no cache level can
// filter (paper §2.2.2).
type MicroHotSpot struct{ p HotSpotParams }

// NewMicroHotSpot returns the contention benchmark.
func NewMicroHotSpot(p HotSpotParams) *MicroHotSpot { return &MicroHotSpot{p: p} }

// Name implements Benchmark.
func (m *MicroHotSpot) Name() string { return "µHOTSPOT" }

// Build implements Benchmark.
func (m *MicroHotSpot) Build(g addr.Geometry, procs int) (*Program, error) {
	p := m.p
	if p.Counters <= 0 || p.Iterations <= 0 {
		return nil, fmt.Errorf("workload: bad µHOTSPOT parameters %+v", p)
	}
	l := vm.NewLayout(g)
	counters := l.AllocArray("counters", p.Counters, g.AMBlockSize())
	bar := &barrierSeq{}
	start, end := bar.id(), bar.id()

	gen := func(proc int) func(*trace.Emitter) {
		return func(e *trace.Emitter) {
			rng := prng.New(p.Seed ^ uint64(proc)<<13)
			e.Barrier(start)
			for i := 0; i < p.Iterations; i++ {
				c := rng.Intn(p.Counters)
				e.Lock(c)
				e.Read(counters.At(uint64(c) * g.AMBlockSize()))
				e.Compute(10)
				e.Write(counters.At(uint64(c) * g.AMBlockSize()))
				e.Unlock(c)
				e.Compute(20)
			}
			e.Barrier(end)
		}
	}
	return NewProgram(m.Name(), l, procs, gen), nil
}

// Micro returns the three microbenchmarks at sizes proportionate to the
// given scale.
func Micro(scale Scale) []Benchmark {
	mul := uint64(1)
	switch scale {
	case ScaleSmall:
		mul = 8
	case ScalePaper:
		mul = 32
	}
	return []Benchmark{
		NewMicroStream(StreamParams{BytesPerProc: 64 << 10 * mul, Passes: 2, Seed: 1}),
		NewMicroChase(ChaseParams{Nodes: int(4096 * mul), Steps: int(16384 * mul), Shared: true, Seed: 2}),
		NewMicroHotSpot(HotSpotParams{Counters: 64, Iterations: int(256 * mul), Seed: 3}),
	}
}
