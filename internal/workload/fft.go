package workload

import (
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/trace"
	"vcoma/internal/vm"
)

// FFTParams configures the FFT benchmark (SPLASH-2 fft; the paper runs
// -m20 -t: a 2^20-point transform with explicit transposes).
type FFTParams struct {
	LogPoints int // log2 of the number of complex points
	Seed      uint64
}

// FFT is the six-step FFT: the n points live in a rows x cols matrix of
// complex doubles partitioned by contiguous rows; the algorithm alternates
// all-to-all transposes (column-strided reads from every other node's
// partition — the TLB-hostile phase) with local row FFTs and a twiddle
// multiplication.
type FFT struct {
	p FFTParams
}

// NewFFT returns the benchmark for the given parameters.
func NewFFT(p FFTParams) *FFT { return &FFT{p: p} }

// Name implements Benchmark.
func (f *FFT) Name() string { return "FFT" }

const complexBytes = 16

// fftComputePerElement is the charged butterfly cost per element per FFT
// stage, in processor cycles.
const fftComputePerElement = 5

// Build implements Benchmark.
func (f *FFT) Build(g addr.Geometry, procs int) (*Program, error) {
	m := f.p.LogPoints
	if m < 4 || m > 26 {
		return nil, fmt.Errorf("workload: FFT LogPoints %d out of range [4,26]", m)
	}
	logRows := (m + 1) / 2
	rows := 1 << logRows
	cols := 1 << (m - logRows)
	if rows < procs {
		return nil, fmt.Errorf("workload: FFT with %d rows cannot be partitioned over %d processors", rows, procs)
	}

	l := vm.NewLayout(g)
	x := l.AllocArray("x", rows*cols, complexBytes)
	trans := l.AllocArray("trans", rows*cols, complexBytes)
	umain := l.AllocArray("umain", rows*cols, complexBytes)

	at := func(r vm.Region, row, col int) addr.Virtual {
		return r.At(uint64(row*cols+col) * complexBytes)
	}

	bar := &barrierSeq{}
	bStart := bar.id()
	bT1 := bar.id()
	bF1 := bar.id()
	bTw := bar.id()
	bT2 := bar.id()
	bF2 := bar.id()
	bT3 := bar.id()

	// transpose is the blocked all-to-all of SPLASH-2 FFT: the owned dest
	// rows are filled patch by patch, each patch reading a B x B square of
	// the source. Within a patch the column-strided source reads revisit
	// the same B source rows (and pages), which is what keeps the real
	// code's TLB and cache behaviour sane; without blocking every read
	// would touch a new page.
	const transposeBlock = 8
	transpose := func(e *trace.Emitter, proc int, src, dst vm.Region) {
		rlo, rhi := chunk(rows, procs, proc)
		for jb := 0; jb < cols; jb += transposeBlock {
			jhi := min(jb+transposeBlock, cols)
			for i := rlo; i < rhi; i++ {
				for j := jb; j < jhi; j++ {
					e.Read(at(src, j%rows, i%cols))
					e.Read(at(src, j%rows, i%cols) + 8)
					e.Write(at(dst, i, j))
					e.Write(at(dst, i, j) + 8)
				}
				e.Compute(uint64(3 * (jhi - jb)))
			}
		}
	}

	// rowFFT models the 1D FFT over each owned row: the row streams
	// through the processor once (at cache-line granularity — later
	// stages hit the caches) with the butterfly work charged as compute.
	rowFFT := func(e *trace.Emitter, proc int, data vm.Region) {
		rlo, rhi := chunk(rows, procs, proc)
		stages := 0
		for c := cols; c > 1; c >>= 1 {
			stages++
		}
		for i := rlo; i < rhi; i++ {
			for j := 0; j < cols; j++ {
				e.Read(at(data, i, j))
				e.Read(at(data, i, j) + 8)
			}
			e.Compute(uint64(fftComputePerElement * cols * stages))
			for j := 0; j < cols; j++ {
				e.Write(at(data, i, j))
				e.Write(at(data, i, j) + 8)
			}
		}
	}

	// twiddle multiplies owned rows by the root-of-unity matrix.
	twiddle := func(e *trace.Emitter, proc int) {
		rlo, rhi := chunk(rows, procs, proc)
		for i := rlo; i < rhi; i++ {
			for j := 0; j < cols; j++ {
				e.Read(at(umain, i, j))
				e.Read(at(trans, i, j))
				e.Write(at(trans, i, j))
			}
			e.Compute(uint64(4 * cols))
		}
	}

	gen := func(proc int) func(*trace.Emitter) {
		return func(e *trace.Emitter) {
			e.Barrier(bStart)
			transpose(e, proc, x, trans)
			e.Barrier(bT1)
			rowFFT(e, proc, trans)
			e.Barrier(bF1)
			twiddle(e, proc)
			e.Barrier(bTw)
			transpose(e, proc, trans, x)
			e.Barrier(bT2)
			rowFFT(e, proc, x)
			e.Barrier(bF2)
			transpose(e, proc, x, trans)
			e.Barrier(bT3)
		}
	}
	return NewProgram("FFT", l, procs, gen), nil
}
