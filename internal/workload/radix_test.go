package workload

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestRadixPlanSortsCorrectly(t *testing.T) {
	err := quick.Check(func(seed uint64, rawKeys uint16, rawProcs uint8) bool {
		p := RadixParams{
			Keys:   int(rawKeys%2000) + 16,
			Radix:  16,
			MaxKey: 1 << 12,
			Seed:   seed,
		}
		procs := int(rawProcs%8) + 1
		plan, err := buildRadixPlan(p, procs)
		if err != nil {
			return false
		}
		// Replay the permutations onto the initial keys; the result must
		// equal the sorted input.
		cur := append([]uint32(nil), plan.keys[0]...)
		for pass := 0; pass < plan.passes; pass++ {
			next := make([]uint32, len(cur))
			for i, k := range cur {
				next[plan.targets[pass][i]] = k
			}
			cur = next
		}
		want := append([]uint32(nil), plan.keys[0]...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range cur {
			if cur[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRadixTargetsArePermutations(t *testing.T) {
	p := ScaleTest.Radix()
	plan, err := buildRadixPlan(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < plan.passes; pass++ {
		seen := make([]bool, p.Keys)
		for _, tgt := range plan.targets[pass] {
			if tgt < 0 || int(tgt) >= p.Keys || seen[tgt] {
				t.Fatalf("pass %d: target %d invalid or duplicated", pass, tgt)
			}
			seen[tgt] = true
		}
	}
}

func TestRadixPassCount(t *testing.T) {
	// 20-bit keys with an 11-bit radix need 2 passes (paper parameters).
	plan, err := buildRadixPlan(RadixParams{Keys: 64, Radix: 2048, MaxKey: 1 << 20, Seed: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.passes != 2 {
		t.Fatalf("passes = %d, want 2", plan.passes)
	}
}

func TestRadixRejectsBadParams(t *testing.T) {
	if _, err := buildRadixPlan(RadixParams{Keys: 0, Radix: 16, MaxKey: 4}, 4); err == nil {
		t.Fatal("zero keys accepted")
	}
	if _, err := buildRadixPlan(RadixParams{Keys: 16, Radix: 15, MaxKey: 4}, 4); err == nil {
		t.Fatal("non-power-of-two radix accepted")
	}
}

func TestRadixWritesSpreadAcrossOutput(t *testing.T) {
	// The permutation phase's writes must scatter across the whole output
	// array — the paper's reason RADIX defeats private TLBs.
	g := testGeometry()
	pr, err := NewRadix(ScaleTest.Radix()).Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// key1 is the first pass's output region.
	var key1Lo, key1Hi uint64
	for _, r := range pr.Layout().Regions() {
		if r.Name == "key1" {
			key1Lo, key1Hi = uint64(r.Base), uint64(r.End())
		}
	}
	pagesTouched := map[uint64]bool{}
	for _, s := range pr.Streams() {
		for {
			ev, ok := s.Next()
			if !ok {
				break
			}
			a := uint64(ev.Addr)
			if a >= key1Lo && a < key1Hi {
				pagesTouched[a>>g.PageBits] = true
			}
		}
	}
	totalPages := (key1Hi - key1Lo) >> g.PageBits
	if uint64(len(pagesTouched)) < totalPages {
		t.Fatalf("permutation touched %d of %d output pages", len(pagesTouched), totalPages)
	}
}
