// Package workload provides deterministic synthetic generators for the six
// SPLASH-2 benchmarks of the paper's evaluation (Table 1): RADIX, FFT, FMM,
// OCEAN, RAYTRACE and BARNES.
//
// The paper simulates only shared-data accesses (§5.1), so a workload here
// is the shared-data reference stream of the real benchmark: the same data
// structures laid out in the same virtual address space, partitioned across
// processors the same way, accessed in the same order, with the real
// synchronization structure (barriers between phases, locks around shared
// updates) and the real communication pattern (radix permutation writes,
// FFT transposes, tree walks, stencil halos, ray/scene reads). Arithmetic
// is abstracted into Compute events charged per element of work.
//
// Every generator is seeded and bit-for-bit reproducible.
package workload

import (
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/trace"
	"vcoma/internal/vm"
)

// Benchmark builds a Program for a machine geometry and processor count.
type Benchmark interface {
	// Name returns the benchmark's SPLASH-2 name.
	Name() string
	// Build lays out the shared address space and prepares the
	// per-processor programs.
	Build(g addr.Geometry, procs int) (*Program, error)
}

// Program is a built workload: a shared-memory layout plus one event
// program per processor.
type Program struct {
	name   string
	layout *vm.Layout
	procs  int
	gen    func(p int) func(*trace.Emitter)
}

// NewProgram assembles a Program. gen must return an independent program
// function for each processor in [0, procs).
func NewProgram(name string, layout *vm.Layout, procs int, gen func(p int) func(*trace.Emitter)) *Program {
	return &Program{name: name, layout: layout, procs: procs, gen: gen}
}

// Name returns the benchmark name.
func (pr *Program) Name() string { return pr.name }

// Layout returns the shared-memory layout (for preloading and footprint
// reporting).
func (pr *Program) Layout() *vm.Layout { return pr.layout }

// Procs returns the processor count the program was built for.
func (pr *Program) Procs() int { return pr.procs }

// Streams returns fresh event streams, one per processor. Each call starts
// new generators, so a Program can be run any number of times.
func (pr *Program) Streams() []trace.Stream {
	out := make([]trace.Stream, pr.procs)
	for p := 0; p < pr.procs; p++ {
		out[p] = trace.NewGenerator(pr.gen(p))
	}
	return out
}

// chunk splits n items into procs contiguous ranges and returns processor
// p's half-open range [lo, hi). Early processors get the remainder.
func chunk(n, procs, p int) (lo, hi int) {
	base := n / procs
	rem := n % procs
	lo = p*base + min(p, rem)
	hi = lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// barrierSeq hands out monotonically increasing barrier IDs shared by all
// processors of one program. Every processor must pass every barrier, in
// the same order; building the ID sequence once at Program construction
// guarantees that.
type barrierSeq struct{ next int }

func (b *barrierSeq) id() int {
	b.next++
	return b.next - 1
}

// Registry returns the paper's six benchmarks with the given parameter
// scale. Scale 1 is the paper's Table 1 configuration; smaller scales
// shrink the data sets for tests and quick runs while preserving structure.
func Registry(scale Scale) []Benchmark {
	return []Benchmark{
		NewRadix(scale.Radix()),
		NewFFT(scale.FFT()),
		NewFMM(scale.FMM()),
		NewOcean(scale.Ocean()),
		NewRaytrace(scale.Raytrace()),
		NewBarnes(scale.Barnes()),
	}
}

// ByName returns the named benchmark at the given scale.
func ByName(name string, scale Scale) (Benchmark, error) {
	for _, b := range Registry(scale) {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names lists the benchmark names in the paper's Table 1 order.
func Names() []string {
	return []string{"RADIX", "FFT", "FMM", "OCEAN", "RAYTRACE", "BARNES"}
}
