package workload

import (
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/prng"
	"vcoma/internal/trace"
	"vcoma/internal/vm"
)

// FMMParams configures the FMM benchmark (SPLASH-2 fmm; the paper runs
// 16384 particles).
type FMMParams struct {
	Particles        int
	ParticlesPerLeaf int
	Timesteps        int
	Seed             uint64
}

// FMM is the adaptive fast multipole method on a 2D particle set,
// reproduced here over a complete quadtree: an upward pass computing
// multipole expansions, a same-level interaction-list pass (scattered reads
// of up to 27 sibling boxes per box — the irregular pointer-chasing that
// gives FMM its huge L0-TLB miss rate), a downward pass, and a particle
// phase with direct neighbor interactions.
type FMM struct {
	p FMMParams
}

// NewFMM returns the benchmark for the given parameters.
func NewFMM(p FMMParams) *FMM { return &FMM{p: p} }

// Name implements Benchmark.
func (f *FMM) Name() string { return "FMM" }

const (
	fmmBoxBytes      = 4352 // full box record; not a power of two, like a real allocator's heap layout, so boxes do not alias cache sets
	fmmParticleBytes = 512  // position, velocity, field, padding
	fmmExpansionSpan = 320  // bytes of expansion terms actually read
	fmmExpansionStep = 16   // one complex coefficient per read
	fmmLocalOffset   = 1024 // offset of the local expansion in a box
)

// fmmTree captures the complete quadtree geometry: levels, box indexing and
// per-level processor ownership.
type fmmTree struct {
	depth     int   // leaf level
	levelBase []int // box-array base index per level
	levelDim  []int // boxes per side per level
	boxes     int
}

func buildFMMTree(particles, perLeaf int) fmmTree {
	depth := 0
	for (1<<(2*depth))*perLeaf < particles {
		depth++
	}
	t := fmmTree{depth: depth}
	base := 0
	for lv := 0; lv <= depth; lv++ {
		t.levelBase = append(t.levelBase, base)
		t.levelDim = append(t.levelDim, 1<<lv)
		base += 1 << (2 * lv)
	}
	t.boxes = base
	return t
}

// box returns the global box index for grid cell (bx, by) at level lv.
func (t fmmTree) box(lv, bx, by int) int {
	return t.levelBase[lv] + by*t.levelDim[lv] + bx
}

// Build implements Benchmark.
func (f *FMM) Build(g addr.Geometry, procs int) (*Program, error) {
	p := f.p
	if p.Particles <= 0 || p.ParticlesPerLeaf <= 0 || p.Timesteps <= 0 {
		return nil, fmt.Errorf("workload: bad FMM parameters %+v", p)
	}
	t := buildFMMTree(p.Particles, p.ParticlesPerLeaf)
	leaves := 1 << (2 * t.depth)

	// Deterministic particle-to-leaf assignment: uniform positions mean a
	// near-even spread; a seeded PRNG assigns the remainder.
	rng := prng.New(p.Seed)
	leafParts := make([][]int, leaves)
	for i := 0; i < p.Particles; i++ {
		lf := i % leaves
		if rng.Intn(8) == 0 { // a little nonuniformity, as in a real set
			lf = rng.Intn(leaves)
		}
		leafParts[lf] = append(leafParts[lf], i)
	}

	l := vm.NewLayout(g)
	boxes := l.AllocArray("boxes", t.boxes, fmmBoxBytes)
	parts := l.AllocArray("particles", p.Particles, fmmParticleBytes)
	counters := l.Alloc("sched", 4096, 0) // dynamic-scheduling counters

	readExpansion := func(e *trace.Emitter, box int, local bool) {
		base := uint64(box) * fmmBoxBytes
		if local {
			base += fmmLocalOffset
		}
		for off := uint64(0); off < fmmExpansionSpan; off += fmmExpansionStep {
			e.Read(boxes.At(base + off))
		}
	}
	writeExpansion := func(e *trace.Emitter, box int, local bool) {
		base := uint64(box) * fmmBoxBytes
		if local {
			base += fmmLocalOffset
		}
		for off := uint64(0); off < fmmExpansionSpan; off += fmmExpansionStep {
			e.Write(boxes.At(base + off))
		}
	}

	bar := &barrierSeq{}
	type stepBarriers struct {
		start    int
		upward   []int // one per level, leaf..root
		interact int
		downward []int // one per level, root..leaf
		direct   int
		update   int
	}
	var bars []stepBarriers
	for ts := 0; ts < p.Timesteps; ts++ {
		sb := stepBarriers{start: bar.id()}
		for lv := t.depth; lv >= 1; lv-- {
			sb.upward = append(sb.upward, bar.id())
		}
		sb.interact = bar.id()
		for lv := 1; lv <= t.depth; lv++ {
			sb.downward = append(sb.downward, bar.id())
		}
		sb.direct = bar.id()
		sb.update = bar.id()
		bars = append(bars, sb)
	}

	const schedLock = 100

	gen := func(proc int) func(*trace.Emitter) {
		return func(e *trace.Emitter) {
			for ts := 0; ts < p.Timesteps; ts++ {
				sb := bars[ts]
				e.Barrier(sb.start)

				// Upward pass: leaves from particles, then each level's
				// owners read the four children and write the parent.
				llo, lhi := chunk(leaves, procs, proc)
				for lf := llo; lf < lhi; lf++ {
					for _, pi := range leafParts[lf] {
						e.Read(parts.At(uint64(pi) * fmmParticleBytes))
						e.Read(parts.At(uint64(pi)*fmmParticleBytes + 8))
						e.Read(parts.At(uint64(pi)*fmmParticleBytes + 32))
						e.Read(parts.At(uint64(pi)*fmmParticleBytes + 40))
					}
					e.Compute(uint64(60 * len(leafParts[lf])))
					writeExpansion(e, t.levelBase[t.depth]+lf, false)
				}
				bi := 0
				for lv := t.depth; lv >= 1; lv-- {
					e.Barrier(sb.upward[bi])
					bi++
					dim := t.levelDim[lv-1]
					blo, bhi := chunk(dim*dim, procs, proc)
					for b := blo; b < bhi; b++ {
						bx, by := b%dim, b/dim
						for c := 0; c < 4; c++ {
							child := t.box(lv, 2*bx+c%2, 2*by+c/2)
							readExpansion(e, child, false)
						}
						e.Compute(400)
						writeExpansion(e, t.box(lv-1, bx, by), false)
					}
				}

				// Interaction lists: for every owned box at every level,
				// read the expansions of the well-separated children of
				// the parent's neighbors (up to 27 boxes), accumulate into
				// the local expansion.
				for lv := 2; lv <= t.depth; lv++ {
					dim := t.levelDim[lv]
					blo, bhi := chunk(dim*dim, procs, proc)
					for b := blo; b < bhi; b++ {
						bx, by := b%dim, b/dim
						px, py := bx/2, by/2
						for nx := px - 1; nx <= px+1; nx++ {
							for ny := py - 1; ny <= py+1; ny++ {
								if nx < 0 || ny < 0 || nx >= dim/2 || ny >= dim/2 {
									continue
								}
								for c := 0; c < 4; c++ {
									cx, cy := 2*nx+c%2, 2*ny+c/2
									if cx >= bx-1 && cx <= bx+1 && cy >= by-1 && cy <= by+1 {
										continue // adjacent: handled directly
									}
									readExpansion(e, t.box(lv, cx, cy), false)
									e.Compute(500)
								}
							}
						}
						writeExpansion(e, t.box(lv, bx, by), true)
					}
					e.Compute(32)
				}
				e.Barrier(sb.interact)

				// Downward pass: parents push local expansions to children.
				bi = 0
				for lv := 1; lv <= t.depth; lv++ {
					dim := t.levelDim[lv]
					blo, bhi := chunk(dim*dim, procs, proc)
					for b := blo; b < bhi; b++ {
						bx, by := b%dim, b/dim
						readExpansion(e, t.box(lv-1, bx/2, by/2), true)
						e.Compute(300)
						writeExpansion(e, t.box(lv, bx, by), true)
					}
					e.Barrier(sb.downward[bi])
					bi++
				}

				// Direct interactions: each owned leaf evaluates its local
				// expansion at its particles and interacts with adjacent
				// leaves' particles. A scheduling counter is taken per
				// work batch, as in the dynamic costzones of the original.
				dim := t.levelDim[t.depth]
				for lf := llo; lf < lhi; lf++ {
					if (lf-llo)%64 == 0 {
						e.Lock(schedLock)
						e.Read(counters.At(0))
						e.Write(counters.At(0))
						e.Unlock(schedLock)
					}
					bx, by := lf%dim, lf/dim
					readExpansion(e, t.levelBase[t.depth]+lf, true)
					for nx := bx - 1; nx <= bx+1; nx++ {
						for ny := by - 1; ny <= by+1; ny++ {
							if nx < 0 || ny < 0 || nx >= dim || ny >= dim {
								continue
							}
							nl := ny*dim + nx
							for _, pi := range leafParts[nl] {
								e.Read(parts.At(uint64(pi) * fmmParticleBytes))
								e.Read(parts.At(uint64(pi)*fmmParticleBytes + 8))
								e.Read(parts.At(uint64(pi)*fmmParticleBytes + 16))
								e.Compute(30)
							}
						}
					}
					for _, pi := range leafParts[lf] {
						e.Read(parts.At(uint64(pi)*fmmParticleBytes + 64))
						e.Write(parts.At(uint64(pi)*fmmParticleBytes + 64))
						e.Compute(60)
					}
				}
				e.Barrier(sb.direct)

				// Position update over owned particles.
				plo, phi := chunk(p.Particles, procs, proc)
				for pi := plo; pi < phi; pi++ {
					e.Read(parts.At(uint64(pi) * fmmParticleBytes))
					e.Write(parts.At(uint64(pi) * fmmParticleBytes))
					e.Compute(8)
				}
				e.Barrier(sb.update)
			}
		}
	}
	return NewProgram("FMM", l, procs, gen), nil
}
