package workload

import (
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/trace"
	"vcoma/internal/vm"
)

// OceanParams configures the OCEAN benchmark (SPLASH-2 ocean; the paper
// runs a 258x258 grid).
type OceanParams struct {
	N           int // grid side including boundary (paper: 258)
	Timesteps   int
	RelaxSweeps int // red-black sweeps per multigrid level visit
	Seed        uint64
}

// Ocean simulates eddy currents in an ocean basin: many 2D double-precision
// grids partitioned by rows, swept with 5-point stencils (halo reads from
// the neighboring processors' rows), and a multigrid V-cycle with red-black
// relaxation. The full-partition writes of every sweep produce the steady
// SLC writeback stream that makes OCEAN a worst case for L2-TLB (§5.2).
type Ocean struct {
	p OceanParams
}

// NewOcean returns the benchmark for the given parameters.
func NewOcean(p OceanParams) *Ocean { return &Ocean{p: p} }

// Name implements Benchmark.
func (o *Ocean) Name() string { return "OCEAN" }

const oceanElem = 8 // double

// oceanMainGrids is the number of full-size state grids (psi, psim, psib,
// vorticity, gamma, work arrays...), sized to match the paper's 15.5 MB
// footprint at N=258.
const oceanMainGrids = 22

// Build implements Benchmark.
func (o *Ocean) Build(g addr.Geometry, procs int) (*Program, error) {
	p := o.p
	if p.N < 10 || p.Timesteps <= 0 || p.RelaxSweeps <= 0 {
		return nil, fmt.Errorf("workload: bad OCEAN parameters %+v", p)
	}
	n := p.N

	l := vm.NewLayout(g)
	var grids []vm.Region
	for i := 0; i < oceanMainGrids; i++ {
		grids = append(grids, l.AllocArray(fmt.Sprintf("grid%02d", i), n*n, oceanElem))
	}
	// Multigrid hierarchy: q (solution) and rhs per level, finest first.
	type level struct {
		q, rhs vm.Region
		side   int
	}
	var levels []level
	for side := n; side >= 10; side = side/2 + 1 {
		levels = append(levels, level{
			q:    l.AllocArray(fmt.Sprintf("q_multi%d", len(levels)), side*side, oceanElem),
			rhs:  l.AllocArray(fmt.Sprintf("rhs_multi%d", len(levels)), side*side, oceanElem),
			side: side,
		})
	}

	at := func(r vm.Region, side, row, col int) addr.Virtual {
		return r.At(uint64(row*side+col) * oceanElem)
	}

	bar := &barrierSeq{}
	// The barrier schedule must be identical for every processor; compute
	// the per-timestep counts up front.
	type tsBarriers struct {
		start   int
		stencil []int // one per stencil pass
		relax   []int // one per red/black half sweep across the V-cycle
		finish  int
	}
	const stencilPasses = 12
	relaxHalves := 0
	for range levels {
		relaxHalves += 2 * p.RelaxSweeps // down leg
	}
	relaxHalves += 2 * p.RelaxSweeps * (len(levels) - 1) // up leg
	transferBarriers := 2 * (len(levels) - 1)            // restrict + prolongate

	var bars []tsBarriers
	for ts := 0; ts < p.Timesteps; ts++ {
		b := tsBarriers{start: bar.id()}
		for i := 0; i < stencilPasses; i++ {
			b.stencil = append(b.stencil, bar.id())
		}
		for i := 0; i < relaxHalves+transferBarriers; i++ {
			b.relax = append(b.relax, bar.id())
		}
		b.finish = bar.id()
		bars = append(bars, b)
	}

	// stencilPass sweeps dst = f(src, aux1, aux2) with a 5-point stencil
	// over the processor's interior rows: north and south reads cross into
	// neighbors' partitions at the block edges. Like the real OCEAN inner
	// loops, each point combines several state grids, so the active page
	// working set spans many arrays — the reason OCEAN stresses small
	// TLBs in the paper's Table 2.
	stencilPass := func(e *trace.Emitter, proc int, srcs []vm.Region, dst vm.Region, side int) {
		rlo, rhi := chunk(side-2, procs, proc)
		for i := rlo + 1; i < rhi+1; i++ {
			for j := 1; j < side-1; j++ {
				e.Read(at(srcs[0], side, i, j))
				e.Read(at(srcs[0], side, i-1, j))
				e.Read(at(srcs[0], side, i+1, j))
				for _, a := range srcs[1:] {
					e.Read(at(a, side, i, j))
				}
				e.Write(at(dst, side, i, j))
			}
			e.Compute(uint64(22 * (side - 2)))
		}
	}

	// relaxHalf is one colour of a red-black Gauss-Seidel sweep at one
	// multigrid level.
	relaxHalf := func(e *trace.Emitter, proc int, lv level, colour int) {
		side := lv.side
		rlo, rhi := chunk(side-2, procs, proc)
		for i := rlo + 1; i < rhi+1; i++ {
			start := 1 + (i+colour)%2
			for j := start; j < side-1; j += 2 {
				e.Read(at(lv.q, side, i-1, j))
				e.Read(at(lv.q, side, i+1, j))
				e.Read(at(lv.rhs, side, i, j))
				e.Write(at(lv.q, side, i, j))
			}
			e.Compute(uint64(12 * (side - 2)))
		}
	}

	// restrict moves the residual to the next coarser level; prolongate
	// interpolates the correction back.
	restrict := func(e *trace.Emitter, proc int, fine, coarse level) {
		side := coarse.side
		rlo, rhi := chunk(side-2, procs, proc)
		for i := rlo + 1; i < rhi+1; i++ {
			for j := 1; j < side-1; j++ {
				e.Read(at(fine.q, fine.side, min(2*i, fine.side-1), min(2*j, fine.side-1)))
				e.Write(at(coarse.rhs, side, i, j))
			}
			e.Compute(uint64(8 * (side - 2)))
		}
	}
	prolongate := func(e *trace.Emitter, proc int, coarse, fine level) {
		side := fine.side
		rlo, rhi := chunk(side-2, procs, proc)
		for i := rlo + 1; i < rhi+1; i++ {
			for j := 1; j < side-1; j++ {
				e.Read(at(coarse.q, coarse.side, min(i/2+1, coarse.side-1), min(j/2+1, coarse.side-1)))
				e.Read(at(fine.q, side, i, j))
				e.Write(at(fine.q, side, i, j))
			}
			e.Compute(uint64(8 * (side - 2)))
		}
	}

	gen := func(proc int) func(*trace.Emitter) {
		return func(e *trace.Emitter) {
			for ts := 0; ts < p.Timesteps; ts++ {
				b := bars[ts]
				e.Barrier(b.start)

				// State-update stencil passes cycling through the grids:
				// laplacians, vorticity, time integration.
				for s := 0; s < stencilPasses; s++ {
					// The real inner loops combine up to nine state grids
					// per point; that breadth is what pressures small TLBs
					// (Table 2's OCEAN row).
					// Alternate narrow and wide passes: the real code mixes
					// two-grid laplacians with nine-grid time-integration
					// loops, so the active page set straddles small TLBs.
					width := 5
					if s%4 == 1 {
						width = 8
					}
					srcs := make([]vm.Region, 0, width)
					for k := 0; k < width; k++ {
						srcs = append(srcs, grids[(3*s+ts+3*k)%len(grids)])
					}
					dst := grids[(3*s+ts+1)%len(grids)]
					stencilPass(e, proc, srcs, dst, n)
					e.Barrier(b.stencil[s])
				}

				// Multigrid V-cycle on the elliptic equation.
				bi := 0
				for li := 0; li < len(levels); li++ {
					for s := 0; s < p.RelaxSweeps; s++ {
						for colour := 0; colour < 2; colour++ {
							relaxHalf(e, proc, levels[li], colour)
							e.Barrier(b.relax[bi])
							bi++
						}
					}
					if li < len(levels)-1 {
						restrict(e, proc, levels[li], levels[li+1])
						e.Barrier(b.relax[bi])
						bi++
					}
				}
				for li := len(levels) - 2; li >= 0; li-- {
					prolongate(e, proc, levels[li+1], levels[li])
					e.Barrier(b.relax[bi])
					bi++
					for s := 0; s < p.RelaxSweeps; s++ {
						for colour := 0; colour < 2; colour++ {
							relaxHalf(e, proc, levels[li], colour)
							e.Barrier(b.relax[bi])
							bi++
						}
					}
				}
				e.Barrier(b.finish)
			}
		}
	}
	return NewProgram("OCEAN", l, procs, gen), nil
}
