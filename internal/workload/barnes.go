package workload

import (
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/prng"
	"vcoma/internal/trace"
	"vcoma/internal/vm"
)

// BarnesParams configures the BARNES benchmark (SPLASH-2 barnes; the paper
// runs 16384 particles).
type BarnesParams struct {
	Bodies    int
	Timesteps int
	Seed      uint64
}

// Barnes is the Barnes-Hut hierarchical N-body method: a shared tree built
// with per-cell locks, a center-of-mass upward pass, and a force phase in
// which every body walks the tree — heavy read sharing of the top cells
// (well served by caches) over an irregular, scattered footprint.
type Barnes struct {
	p BarnesParams
}

// NewBarnes returns the benchmark for the given parameters.
func NewBarnes(p BarnesParams) *Barnes { return &Barnes{p: p} }

// Name implements Benchmark.
func (b *Barnes) Name() string { return "BARNES" }

const (
	barnesBodyBytes = 128
	barnesCellBytes = 128
	barnesLockBase  = 5000
)

// Build implements Benchmark.
func (b *Barnes) Build(g addr.Geometry, procs int) (*Program, error) {
	p := b.p
	if p.Bodies <= 0 || p.Timesteps <= 0 {
		return nil, fmt.Errorf("workload: bad BARNES parameters %+v", p)
	}
	// Reuse the complete-quadtree geometry: leaves sized for ~8 bodies.
	t := buildFMMTree(p.Bodies, 8)
	leaves := 1 << (2 * t.depth)

	rng := prng.New(p.Seed)
	leafBodies := make([][]int, leaves)
	bodyLeaf := make([]int, p.Bodies)
	for i := 0; i < p.Bodies; i++ {
		lf := i % leaves
		if rng.Intn(8) == 0 {
			lf = rng.Intn(leaves)
		}
		leafBodies[lf] = append(leafBodies[lf], i)
		bodyLeaf[i] = lf
	}

	l := vm.NewLayout(g)
	bodies := l.AllocArray("bodies", p.Bodies, barnesBodyBytes)
	cells := l.AllocArray("cells", t.boxes, barnesCellBytes)

	readCell := func(e *trace.Emitter, c int) {
		e.Read(cells.At(uint64(c) * barnesCellBytes))
		e.Read(cells.At(uint64(c)*barnesCellBytes + 8))
		e.Read(cells.At(uint64(c)*barnesCellBytes + 64))
		e.Read(cells.At(uint64(c)*barnesCellBytes + 72))
	}

	bar := &barrierSeq{}
	type tsBarriers struct {
		start  int
		built  int
		com    []int
		forces int
		update int
	}
	var bars []tsBarriers
	for ts := 0; ts < p.Timesteps; ts++ {
		sb := tsBarriers{start: bar.id(), built: bar.id()}
		for lv := t.depth; lv >= 1; lv-- {
			sb.com = append(sb.com, bar.id())
		}
		sb.forces = bar.id()
		sb.update = bar.id()
		bars = append(bars, sb)
	}

	gen := func(proc int) func(*trace.Emitter) {
		return func(e *trace.Emitter) {
			prng := prng.New(p.Seed ^ uint64(proc)<<18)
			blo, bhi := chunk(p.Bodies, procs, proc)
			for ts := 0; ts < p.Timesteps; ts++ {
				sb := bars[ts]
				e.Barrier(sb.start)

				// Tree build: each body descends from the root to its
				// leaf, then updates the leaf under its lock.
				for bd := blo; bd < bhi; bd++ {
					e.Read(bodies.At(uint64(bd) * barnesBodyBytes))
					lf := bodyLeaf[bd]
					x, y := lf%t.levelDim[t.depth], lf/t.levelDim[t.depth]
					for lv := 0; lv <= t.depth; lv++ {
						sh := uint(t.depth - lv)
						readCell(e, t.box(lv, x>>sh, y>>sh))
						e.Compute(10)
					}
					leaf := t.levelBase[t.depth] + lf
					e.Lock(barnesLockBase + leaf)
					e.Read(cells.At(uint64(leaf) * barnesCellBytes))
					e.Write(cells.At(uint64(leaf) * barnesCellBytes))
					e.Unlock(barnesLockBase + leaf)
				}
				e.Barrier(sb.built)

				// Center-of-mass pass, leaves to root, like FMM's upward
				// pass: read four children, write the parent.
				bi := 0
				for lv := t.depth; lv >= 1; lv-- {
					dim := t.levelDim[lv-1]
					clo, chi := chunk(dim*dim, procs, proc)
					for c := clo; c < chi; c++ {
						cx, cy := c%dim, c/dim
						for k := 0; k < 4; k++ {
							readCell(e, t.box(lv, 2*cx+k%2, 2*cy+k/2))
						}
						e.Compute(40)
						e.Write(cells.At(uint64(t.box(lv-1, cx, cy)) * barnesCellBytes))
					}
					e.Barrier(sb.com[bi])
					bi++
				}

				// Force phase: every body walks the tree. The top levels
				// are read in full (shared by everyone); deeper levels
				// open only the 3x3 neighbourhood around the body's cell.
				for bd := blo; bd < bhi; bd++ {
					e.Read(bodies.At(uint64(bd) * barnesBodyBytes))
					e.Read(bodies.At(uint64(bd)*barnesBodyBytes + 8))
					e.Read(bodies.At(uint64(bd)*barnesBodyBytes + 16))
					lf := bodyLeaf[bd]
					lx, ly := lf%t.levelDim[t.depth], lf/t.levelDim[t.depth]
					for lv := 0; lv <= t.depth; lv++ {
						dim := t.levelDim[lv]
						sh := uint(t.depth - lv)
						cx, cy := lx>>sh, ly>>sh
						if dim <= 4 {
							for y := 0; y < dim; y++ {
								for x := 0; x < dim; x++ {
									readCell(e, t.box(lv, x, y))
									e.Compute(25)
								}
							}
							continue
						}
						for y := cy - 1; y <= cy+1; y++ {
							for x := cx - 1; x <= cx+1; x++ {
								if x < 0 || y < 0 || x >= dim || y >= dim {
									continue
								}
								readCell(e, t.box(lv, x, y))
								e.Compute(25)
							}
						}
					}
					// Direct interactions with bodies in the home and
					// adjacent leaves (a deterministic random sample keeps
					// the stream size representative).
					dim := t.levelDim[t.depth]
					for k := 0; k < 3; k++ {
						nx := lx + prng.Intn(3) - 1
						ny := ly + prng.Intn(3) - 1
						if nx < 0 || ny < 0 || nx >= dim || ny >= dim {
							continue
						}
						for _, ob := range leafBodies[ny*dim+nx] {
							e.Read(bodies.At(uint64(ob) * barnesBodyBytes))
							e.Read(bodies.At(uint64(ob)*barnesBodyBytes + 8))
							e.Compute(25)
						}
					}
					e.Write(bodies.At(uint64(bd)*barnesBodyBytes + 64))
				}
				e.Barrier(sb.forces)

				// Position update.
				for bd := blo; bd < bhi; bd++ {
					e.Read(bodies.At(uint64(bd) * barnesBodyBytes))
					e.Write(bodies.At(uint64(bd) * barnesBodyBytes))
					e.Compute(8)
				}
				e.Barrier(sb.update)
			}
		}
	}
	return NewProgram("BARNES", l, procs, gen), nil
}
