package workload

import (
	"testing"

	"vcoma/internal/trace"
)

func TestMicroRegistry(t *testing.T) {
	micros := Micro(ScaleTest)
	if len(micros) != 3 {
		t.Fatalf("micro registry has %d entries", len(micros))
	}
	g := testGeometry()
	for _, b := range micros {
		pr, err := b.Build(g, g.Nodes())
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		checkProgram(t, pr)
	}
}

func TestMicroStreamIsPrivateAndSequential(t *testing.T) {
	g := testGeometry()
	pr, err := NewMicroStream(StreamParams{BytesPerProc: 1024, Passes: 1}).Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	streams := pr.Streams()
	for p, s := range streams {
		var prev uint64
		first := true
		for {
			ev, ok := s.Next()
			if !ok {
				break
			}
			if ev.Kind != trace.Read {
				continue
			}
			a := uint64(ev.Addr)
			if !first && a != prev && a != prev+8 {
				t.Fatalf("proc %d: non-sequential read %#x after %#x", p, a, prev)
			}
			prev, first = a, false
		}
	}
}

func TestMicroChaseSharedVsPrivateFootprint(t *testing.T) {
	g := testGeometry()
	shared, err := NewMicroChase(ChaseParams{Nodes: 64, Steps: 10, Shared: true}).Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	private, err := NewMicroChase(ChaseParams{Nodes: 64, Steps: 10, Shared: false}).Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Layout().TotalBytes()*4 != private.Layout().TotalBytes() {
		t.Fatalf("private footprint (%d) should be 4x shared (%d)",
			private.Layout().TotalBytes(), shared.Layout().TotalBytes())
	}
}

func TestMicroChaseIsAPermutationWalk(t *testing.T) {
	g := testGeometry()
	const nodes = 32
	pr, err := NewMicroChase(ChaseParams{Nodes: nodes, Steps: nodes, Shared: true}).Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Walking exactly Nodes steps must visit every node exactly once
	// (the permutation is a single cycle).
	s := pr.Streams()[0]
	seen := map[uint64]int{}
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		if ev.Kind == trace.Read {
			seen[uint64(ev.Addr)]++
		}
	}
	if len(seen) != nodes {
		t.Fatalf("walk visited %d distinct nodes, want %d", len(seen), nodes)
	}
	for a, n := range seen {
		if n != 1 {
			t.Fatalf("node %#x visited %d times", a, n)
		}
	}
}

func TestMicroValidation(t *testing.T) {
	g := testGeometry()
	if _, err := NewMicroStream(StreamParams{}).Build(g, 4); err == nil {
		t.Fatal("empty stream params accepted")
	}
	if _, err := NewMicroChase(ChaseParams{Nodes: 1, Steps: 1}).Build(g, 4); err == nil {
		t.Fatal("single-node chase accepted")
	}
	if _, err := NewMicroHotSpot(HotSpotParams{}).Build(g, 4); err == nil {
		t.Fatal("empty hotspot params accepted")
	}
}
