package workload

import (
	"testing"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/trace"
)

func testGeometry() addr.Geometry {
	return config.SmallTest().Geometry
}

func TestRegistryAndNames(t *testing.T) {
	benches := Registry(ScaleTest)
	if len(benches) != 6 {
		t.Fatalf("registry has %d benchmarks", len(benches))
	}
	for i, name := range Names() {
		if benches[i].Name() != name {
			t.Fatalf("order mismatch: %s vs %s", benches[i].Name(), name)
		}
		b, err := ByName(name, ScaleTest)
		if err != nil || b.Name() != name {
			t.Fatalf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("NOPE", ScaleTest); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestChunkPartition(t *testing.T) {
	for _, tc := range []struct{ n, procs int }{{10, 3}, {32, 32}, {7, 8}, {100, 1}} {
		covered := 0
		prevHi := 0
		for p := 0; p < tc.procs; p++ {
			lo, hi := chunk(tc.n, tc.procs, p)
			if lo != prevHi {
				t.Fatalf("chunk(%d,%d,%d): gap at %d", tc.n, tc.procs, p, lo)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.n || prevHi != tc.n {
			t.Fatalf("chunk(%d,%d) covered %d", tc.n, tc.procs, covered)
		}
	}
}

// checkProgram drains every stream of a program and validates the global
// structural invariants every benchmark must satisfy:
//   - all memory references fall inside allocated regions;
//   - every processor passes the same barriers in the same order;
//   - lock acquires and releases are balanced and properly nested per lock;
//   - the program is deterministic (two stream sets produce identical
//     event sequences).
func checkProgram(t *testing.T, pr *Program) {
	t.Helper()
	l := pr.Layout()

	first := pr.Streams()
	second := pr.Streams()
	var barrierSeqs [][]int
	totalRefs := uint64(0)

	for p := 0; p < pr.Procs(); p++ {
		evs := trace.Drain(first[p])
		evs2 := trace.Drain(second[p])
		if len(evs) != len(evs2) {
			t.Fatalf("proc %d: nondeterministic length %d vs %d", p, len(evs), len(evs2))
		}
		for i := range evs {
			if evs[i] != evs2[i] {
				t.Fatalf("proc %d: nondeterministic at event %d", p, i)
			}
		}

		var barriers []int
		held := map[int]bool{}
		for i, ev := range evs {
			switch ev.Kind {
			case trace.Read, trace.Write:
				totalRefs++
				if _, ok := l.Find(ev.Addr); !ok {
					t.Fatalf("proc %d event %d: address %#x outside every region", p, i, uint64(ev.Addr))
				}
			case trace.Barrier:
				if len(held) != 0 {
					t.Fatalf("proc %d: barrier %d reached holding locks %v", p, ev.ID, held)
				}
				barriers = append(barriers, ev.ID)
			case trace.LockAcquire:
				if held[ev.ID] {
					t.Fatalf("proc %d: recursive lock %d", p, ev.ID)
				}
				held[ev.ID] = true
			case trace.LockRelease:
				if !held[ev.ID] {
					t.Fatalf("proc %d: releasing unheld lock %d", p, ev.ID)
				}
				delete(held, ev.ID)
			}
		}
		if len(held) != 0 {
			t.Fatalf("proc %d: locks still held at end: %v", p, held)
		}
		barrierSeqs = append(barrierSeqs, barriers)
	}

	for p := 1; p < pr.Procs(); p++ {
		if len(barrierSeqs[p]) != len(barrierSeqs[0]) {
			t.Fatalf("proc %d passes %d barriers, proc 0 passes %d",
				p, len(barrierSeqs[p]), len(barrierSeqs[0]))
		}
		for i := range barrierSeqs[p] {
			if barrierSeqs[p][i] != barrierSeqs[0][i] {
				t.Fatalf("proc %d barrier %d is %d, proc 0's is %d",
					p, i, barrierSeqs[p][i], barrierSeqs[0][i])
			}
		}
	}
	if totalRefs == 0 {
		t.Fatal("program emits no memory references")
	}
}

func TestAllBenchmarksStructure(t *testing.T) {
	g := testGeometry()
	for _, bench := range Registry(ScaleTest) {
		bench := bench
		t.Run(bench.Name(), func(t *testing.T) {
			pr, err := bench.Build(g, g.Nodes())
			if err != nil {
				t.Fatal(err)
			}
			if pr.Name() != bench.Name() || pr.Procs() != g.Nodes() {
				t.Fatalf("program metadata: %s/%d", pr.Name(), pr.Procs())
			}
			checkProgram(t, pr)
		})
	}
}

func TestPaperFootprints(t *testing.T) {
	// Table 1: shared-memory footprints at paper scale (tolerance: the
	// paper's own accounting includes allocator overheads we do not
	// model, so match within a factor of two).
	want := map[string]float64{
		"RADIX": 6.12, "FFT": 51.29, "FMM": 29.23,
		"OCEAN": 15.52, "RAYTRACE": 34.86, "BARNES": 3.94,
	}
	g := config.Baseline().Geometry
	for _, bench := range Registry(ScalePaper) {
		pr, err := bench.Build(g, g.Nodes())
		if err != nil {
			t.Fatal(err)
		}
		mb := float64(pr.Layout().TotalBytes()) / (1 << 20)
		w := want[bench.Name()]
		if mb < w/2 || mb > w*2 {
			t.Errorf("%s footprint %.2f MB, paper %.2f MB", bench.Name(), mb, w)
		}
	}
}

func TestScales(t *testing.T) {
	for _, s := range []Scale{ScaleTest, ScaleSmall, ScalePaper} {
		if s.String() == "" || s.AMSetBits() == 0 {
			t.Fatalf("scale %d incomplete", s)
		}
	}
	if ScalePaper.AMSetBits() != 13 {
		t.Fatal("paper scale must keep the 4 MB attraction memory")
	}
}
