// Package cli holds the resilience plumbing shared by the vcoma commands:
// signal-aware run contexts and the flag groups that arm the simulation
// watchdog and the runner's retry policy. Keeping these in one place makes
// every binary interruptible and supervisable the same way.
package cli

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vcoma/internal/fsio"
	"vcoma/internal/runner"
	"vcoma/internal/sim"
)

// The shared exit-code convention of every vcoma binary:
//
//	0        success
//	1        error (bad flags, failed run, I/O)
//	2        partial output (-keep-going runs with failed cells)
//	128+sig  interrupted by a signal (130 SIGINT, 143 SIGTERM)
//
// Commands derive their run context from SignalContext and map their final
// error through ExitCode, so a Ctrl-C'd sweep and a SIGTERM'd daemon report
// the interruption the same way scripts expect.
const (
	ExitOK      = 0
	ExitErr     = 1
	ExitPartial = 2
)

// SignalError is the cancellation cause SignalContext installs: it names the
// signal that interrupted the run and carries the conventional exit status.
type SignalError struct {
	Sig os.Signal
}

func (e *SignalError) Error() string { return fmt.Sprintf("interrupted by %v", e.Sig) }

// ExitCode returns the conventional 128+signum status (130 for SIGINT, 143
// for SIGTERM); 130 when the signal number is unknown.
func (e *SignalError) ExitCode() int {
	if s, ok := e.Sig.(syscall.Signal); ok {
		return 128 + int(s)
	}
	return 130
}

// ExitCode maps a command's final error to the shared exit-code convention:
// 0 for nil, 128+signum when the error (or the run context's cancellation
// cause, for errors that only record context.Canceled) traces back to a
// SignalContext signal, and 1 otherwise. Partial-output status (2) is the
// caller's decision; a signal outranks it.
func ExitCode(ctx context.Context, err error) int {
	if err == nil {
		return ExitOK
	}
	var se *SignalError
	if errors.As(err, &se) {
		return se.ExitCode()
	}
	// Cancellation usually surfaces as context.Canceled from deep inside the
	// engine; the signal that caused it is recorded on the context.
	if ctx != nil && errors.Is(err, context.Canceled) {
		if errors.As(context.Cause(ctx), &se) {
			return se.ExitCode()
		}
	}
	return ExitErr
}

// SignalContext derives a context that SIGINT/SIGTERM cancels. The first
// signal finishes the terminal's current line, announces the shutdown, and
// cancels with a *SignalError cause naming the signal so in-flight work can
// flush journals and release locks (and so ExitCode can report 128+signum);
// a second signal force-quits with the conventional 128+signum status.
func SignalContext(parent context.Context, prog string) (context.Context, context.CancelCauseFunc) {
	ctx, cancel := context.WithCancelCause(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		fmt.Fprintf(os.Stderr, "\n%s: %v: cancelling, flushing state (signal again to force-quit)\n", prog, sig)
		cancel(&SignalError{Sig: sig})
		sig = <-ch
		if s, ok := sig.(syscall.Signal); ok {
			os.Exit(128 + int(s))
		}
		os.Exit(130)
	}()
	return ctx, cancel
}

// BudgetFlags registers the watchdog-budget flags on the default flag set
// and returns a function that assembles the sim.Budget after flag.Parse.
// All limits default to 0 (disarmed): legitimate paper-scale runs must
// never trip a default budget.
func BudgetFlags() func() sim.Budget {
	maxCycles := flag.Uint64("max-cycles", 0, "watchdog: abort any pass past this many simulated cycles (0 = unlimited)")
	maxEvents := flag.Uint64("max-events", 0, "watchdog: abort any pass past this many retired events (0 = unlimited)")
	stall := flag.Uint64("stall-events", 0, "watchdog: abort any pass after this many events without a processor clock advancing (livelock detector; 0 = off)")
	wall := flag.Duration("sim-wall", 0, "watchdog: abort any pass after this much wall-clock time (0 = unlimited)")
	return func() sim.Budget {
		return sim.Budget{MaxCycles: *maxCycles, MaxEvents: *maxEvents, StallEvents: *stall, MaxWall: *wall}
	}
}

// FsFaultFlags registers the storage fault-injection flags shared by every
// command and returns a builder that, after flag.Parse, assembles the
// filesystem seam: armed with the -fsfault failpoint spec (empty = plain
// durable I/O) and, when -fsfault-log is set, recording every operation
// through the seam. The returned dump function writes the recorded op log
// (a no-op without -fsfault-log); call it on every exit path — the log is
// most valuable precisely when the run failed.
func FsFaultFlags() func() (*fsio.FS, func() error, error) {
	spec := flag.String("fsfault", "", "storage failpoint spec, e.g. 'enospc:put:3', 'eio:fsync:*,torn:journal:128', 'powercut:7' (empty = none)")
	logPath := flag.String("fsfault-log", "", "record every filesystem op through the seam to this JSONL file")
	return func() (*fsio.FS, func() error, error) {
		fp, err := fsio.ParseFailpoints(*spec)
		if err != nil {
			return nil, nil, err
		}
		fs := fsio.New(fp)
		if *logPath == "" {
			return fs, func() error { return nil }, nil
		}
		wd, _ := os.Getwd()
		rec := fsio.NewRecorder(wd, false)
		fs.SetRecorder(rec)
		path := *logPath
		return fs, func() error { return rec.WriteFile(path) }, nil
	}
}

// AtomicOutput renders an output file into memory and writes it through the
// seam with whole-file atomicity: partial renders or injected faults never
// leave a torn CSV/JSON on disk under the requested name.
func AtomicOutput(fs *fsio.FS, tag, path string, render func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := render(&buf); err != nil {
		return err
	}
	return fs.WriteFileAtomic(tag, path, buf.Bytes())
}

// RetryFlags registers the per-pass deadline and transient-retry flags and
// returns a function assembling the runner.Retry policy after flag.Parse
// plus the parsed deadline.
func RetryFlags() (retry func() runner.Retry, jobTimeout *time.Duration) {
	retries := flag.Int("retries", 0, "retry transiently-failed passes up to this many times (exponential backoff with jitter; 0 = no retries)")
	jobTimeout = flag.Duration("job-timeout", 0, "per-pass deadline; a pass past it aborts with a watchdog diagnostic (0 = none)")
	return func() runner.Retry {
		r := runner.DefaultRetry
		r.Max = *retries
		return r
	}, jobTimeout
}
