package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"
)

// Structured logging shared by every vcoma binary. All operational output
// goes through log/slog so lines are machine-parseable and uniformly keyed:
//
//	prog       the emitting binary (vcoma-sim, vcoma-serve, …)
//	trace_id   request correlation id (service-side lines)
//	job_key    content-address of the job a line belongs to
//	tenant     submitting tenant (service-side lines)
//	outcome    final line only: ok, error, partial, interrupted, terminated
//	exit_code  final line only: the process's exit status
//	duration   final line only: wall time of the whole invocation
//
// The final line is the contract the exit-code table in the README is
// observable by: every binary emits exactly one, whatever the exit path.

// NewLogger builds a slog.Logger writing to w in the given format ("json"
// or anything else for text) at the given level, with prog attached to
// every line. A nil w discards everything.
func NewLogger(w io.Writer, prog, format string, level slog.Level) *slog.Logger {
	if w == nil {
		return Discard()
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h).With("prog", prog)
}

// Discard returns a logger that drops every record — the nil-object for
// APIs that take a *slog.Logger.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

// discardHandler is slog's no-op handler (slog.DiscardHandler is newer than
// the toolchain floor this module keeps).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// LogFlags registers -log-format and -log-level on the default flag set and
// returns a constructor assembling the binary's logger (stderr) after
// flag.Parse.
func LogFlags(prog string) func() *slog.Logger {
	format := flag.String("log-format", "text", "structured log format: text or json")
	level := flag.String("log-level", "info", "log level: debug, info, warn or error")
	return func() *slog.Logger {
		return NewLogger(os.Stderr, prog, *format, ParseLevel(*level))
	}
}

// ParseLevel maps a level name to a slog.Level; unknown spellings degrade
// to info rather than failing the whole invocation.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// Outcome names an exit code for the final log line: the README's exit-code
// table, spelled for humans and greppable by fleet tooling.
func Outcome(code int) string {
	switch code {
	case ExitOK:
		return "ok"
	case ExitPartial:
		return "partial"
	case 130:
		return "interrupted" // 128+SIGINT
	case 143:
		return "terminated" // 128+SIGTERM
	case ExitErr:
		return "error"
	default:
		if code > 128 {
			return fmt.Sprintf("signal(%d)", code-128)
		}
		return "error"
	}
}

// LogExit emits the binary's final structured line: outcome, exit code and
// wall duration, plus the error when there is one. Every vcoma binary calls
// it exactly once, on every exit path, so the shared exit-code convention
// is observable in logs, not just in $?. A nil logger falls back to a text
// logger on stderr — the final line must never be lost to wiring order.
func LogExit(l *slog.Logger, prog string, start time.Time, code int, err error) {
	if l == nil {
		l = NewLogger(os.Stderr, prog, "text", slog.LevelInfo)
	}
	attrs := []any{
		"outcome", Outcome(code),
		"exit_code", code,
		"duration", time.Since(start).Round(time.Millisecond).String(),
	}
	if err != nil {
		attrs = append(attrs, "error", err.Error())
	}
	switch {
	case code == ExitOK:
		l.Info("exit", attrs...)
	case code == ExitErr:
		l.Error("exit", attrs...)
	default:
		l.Warn("exit", attrs...)
	}
}
