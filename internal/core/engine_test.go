package core

import (
	"testing"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/vm"
)

func setup(t *testing.T, entries int, org config.TLBOrg) (*HomeEngine, *vm.System, config.Config) {
	t.Helper()
	cfg := config.SmallTest()
	cfg.Scheme = config.VCOMA
	sys := vm.NewSystem(cfg.Geometry, vm.VirtualOnly)
	eng, err := NewHomeEngine(0, cfg, sys, entries, org)
	if err != nil {
		t.Fatal(err)
	}
	return eng, sys, cfg
}

// vaAtHome returns the i-th distinct block address homed at node 0 of the
// SmallTest geometry (4 nodes, page numbers ≡ 0 mod 4).
func vaAtHome0(i int) addr.Virtual {
	return addr.Virtual(uint64(i*4)<<8 | 0x40)
}

func TestTranslateHitAndMiss(t *testing.T) {
	eng, sys, cfg := setup(t, 2, config.FullyAssoc)
	v := vaAtHome0(1)
	da, penalty := eng.Translate(v, true)
	if penalty != cfg.Timing.DLBMiss {
		t.Fatalf("cold translate penalty %d", penalty)
	}
	da2, penalty2 := eng.Translate(v, false)
	if penalty2 != 0 || da2 != da {
		t.Fatalf("warm translate: penalty %d, %d != %d", penalty2, da2, da)
	}
	// The directory address matches the VM's mapping.
	home, want := sys.DirAddrOf(v)
	if home != 0 || da != want {
		t.Fatalf("directory address %d, want %d at home %d", da, want, home)
	}
	st := eng.Stats()
	if st.Lookups != 2 || st.Misses != 1 || st.CriticalLookups != 1 || st.CriticalMisses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.PenaltyCycles != cfg.Timing.DLBMiss {
		t.Fatalf("penalty cycles %d", st.PenaltyCycles)
	}
	if !sys.Lookup(v).Referenced {
		t.Fatal("reference bit not set")
	}
}

func TestSharingCapacity(t *testing.T) {
	eng, _, _ := setup(t, 2, config.FullyAssoc)
	// Three distinct pages cycle through a 2-entry DLB: every round-trip
	// misses again (capacity), which is what the per-node TLBs of L0-L3
	// suffer and the DLB avoids by seeing only 1/P of the pages.
	vs := []addr.Virtual{vaAtHome0(1), vaAtHome0(2), vaAtHome0(3)}
	for round := 0; round < 3; round++ {
		for _, v := range vs {
			eng.Translate(v, false)
		}
	}
	if eng.Stats().Misses <= 3 {
		t.Fatalf("capacity misses expected, got %d", eng.Stats().Misses)
	}
	if eng.DLBStats().Accesses != 9 {
		t.Fatalf("accesses %d", eng.DLBStats().Accesses)
	}
}

func TestDirectMappedDLBUsesShiftedIndex(t *testing.T) {
	eng, _, _ := setup(t, 4, config.DirectMapped)
	// Pages homed at node 0 share their low (home) bits; the DM DLB must
	// still spread them across slots.
	for i := 1; i <= 4; i++ {
		eng.Translate(vaAtHome0(i), false)
	}
	for i := 1; i <= 4; i++ {
		if _, p := eng.Translate(vaAtHome0(i), false); p != 0 {
			t.Fatalf("page %d evicted: DM index ignores the home-bit shift", i)
		}
	}
}

func TestWrongHomePanics(t *testing.T) {
	eng, _, _ := setup(t, 2, config.FullyAssoc)
	defer func() {
		if recover() == nil {
			t.Fatal("translation for a foreign home did not panic")
		}
	}()
	eng.Translate(addr.Virtual(1<<8|0x40), true) // page 1: home is node 1
}

func TestModifiedBit(t *testing.T) {
	eng, sys, _ := setup(t, 2, config.FullyAssoc)
	v := vaAtHome0(1)
	eng.SetModified(v)
	if !sys.Lookup(v).Modified {
		t.Fatal("modify bit not set")
	}
}

func TestDirPagesTouched(t *testing.T) {
	eng, _, _ := setup(t, 8, config.FullyAssoc)
	eng.Translate(vaAtHome0(1), false)
	eng.Translate(vaAtHome0(1)+32, false) // same page, different block
	eng.Translate(vaAtHome0(2), false)
	if got := eng.Stats().DirPagesTouched; got != 2 {
		t.Fatalf("directory pages touched = %d, want 2", got)
	}
}

func TestRejectsPhysicalVM(t *testing.T) {
	cfg := config.SmallTest()
	sys := vm.NewSystem(cfg.Geometry, vm.PhysicalRoundRobin)
	if _, err := NewHomeEngine(0, cfg, sys, 4, config.FullyAssoc); err == nil {
		t.Fatal("home engine accepted a physically-mapped VM system")
	}
}
