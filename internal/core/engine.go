// Package core implements the paper's primary contribution: the V-COMA home
// node (§4). In V-COMA no processor has a TLB; the whole hierarchy is
// virtually indexed and tagged, and dynamic address translation happens at
// the home node as part of the cache coherence protocol. Each node's
// protocol engine (the paper's PE, akin to FLASH's MAGIC chip) translates
// virtual addresses of incoming requests into directory addresses through a
// DLB — the Directory Lookaside Buffer — backed by the home's page table,
// which allocates directory pages on demand.
//
// The three effects that make the DLB so effective (paper §5.2) fall out of
// this structure:
//
//   - filtering: the DLB only sees requests that missed every level of some
//     node's hierarchy, including its attraction memory;
//   - sharing: a DLB entry at the home serves all 32 nodes, so the
//     effective machine-wide DLB capacity is P times the per-node size;
//   - prefetching: one node's DLB fill covers every other node's later
//     access to the same page.
package core

import (
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/obs"
	"vcoma/internal/tlb"
	"vcoma/internal/vm"
)

// EngineStats counts one home engine's translation activity.
type EngineStats struct {
	// Lookups is the number of directory-address translations performed.
	Lookups uint64
	// CriticalLookups counts translations on some processor's critical
	// path (a stalled request), as opposed to replacement traffic.
	CriticalLookups uint64
	// Misses counts DLB misses (page-table walks by the PE).
	Misses uint64
	// CriticalMisses counts misses on the critical path.
	CriticalMisses uint64
	// PenaltyCycles is the total DLB miss service time incurred.
	PenaltyCycles uint64
	// DirPagesTouched is how many distinct directory pages were resolved.
	DirPagesTouched uint64
}

// HomeEngine is one node's V-COMA protocol engine: DLB plus page-table
// walker. The directory memory itself lives in package coherence; the
// engine's job is the virtual-address-to-directory-address step in front of
// it (paper Figure 7).
type HomeEngine struct {
	node   addr.Node
	g      addr.Geometry
	sys    *vm.System
	dlb    tlb.Buffer
	timing config.Timing
	stats  EngineStats
	tracer *obs.Tracer

	// seenDirPages backs the DirPagesTouched counter; lastDirPage is a
	// one-entry memo in front of it, since consecutive directory operations
	// overwhelmingly resolve within the same directory page.
	seenDirPages map[int]struct{}
	lastDirPage  int
}

// NewHomeEngine builds the engine for node n. The DLB has entries slots in
// the given organization; direct-mapped DLBs index with the page-number bits
// above the home bits, since all pages homed here share their low bits.
func NewHomeEngine(n addr.Node, cfg config.Config, sys *vm.System, entries int, org config.TLBOrg) (*HomeEngine, error) {
	if sys.Mode() != vm.VirtualOnly {
		return nil, fmt.Errorf("core: V-COMA home engine requires a virtual-only VM system, got %v", sys.Mode())
	}
	dlb, err := tlb.New(entries, org, cfg.Geometry.NodeBits, cfg.Seed^uint64(n)<<32^0xD1B)
	if err != nil {
		return nil, err
	}
	return &HomeEngine{
		node:         n,
		g:            cfg.Geometry,
		sys:          sys,
		dlb:          dlb,
		timing:       cfg.Timing,
		seenDirPages: make(map[int]struct{}),
		lastDirPage:  -1,
	}, nil
}

// Node returns the engine's node id.
func (e *HomeEngine) Node() addr.Node { return e.node }

// DLB exposes the engine's translation buffer (tests, reports).
func (e *HomeEngine) DLB() tlb.Buffer { return e.dlb }

// Stats returns the engine's counters.
func (e *HomeEngine) Stats() EngineStats { return e.stats }

// SetTracer attaches an event tracer; DLB fills and evictions become
// instant events on this node's "dlb" track. A nil tracer (the default)
// keeps Translate event-free.
func (e *HomeEngine) SetTracer(tr *obs.Tracer) { e.tracer = tr }

// RegisterMetrics registers the engine's counters under prefix (e.g.
// "node03/dlb") with an observability registry.
func (e *HomeEngine) RegisterMetrics(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	r.Probe(prefix+".lookups", func() float64 { return float64(e.stats.Lookups) })
	r.Probe(prefix+".misses", func() float64 { return float64(e.stats.Misses) })
	r.Probe(prefix+".penaltyCycles", func() float64 { return float64(e.stats.PenaltyCycles) })
	r.Probe(prefix+".dirPagesTouched", func() float64 { return float64(e.stats.DirPagesTouched) })
}

// Translate resolves the directory address for virtual block address v,
// charging a DLB access and returning the extra service cycles (the DLB
// miss penalty, or zero on a hit). critical marks translations on a stalled
// processor's path. The page's reference bit is set as a side effect, since
// the DLB sees the post-attraction-memory access stream (§4.3).
func (e *HomeEngine) Translate(v addr.Virtual, critical bool) (addr.DirAddr, uint64) {
	return e.TranslateAt(0, v, critical)
}

// TranslateAt is Translate with the current simulated time, used to
// timestamp DLB trace events. Callers without a clock use Translate.
func (e *HomeEngine) TranslateAt(now uint64, v addr.Virtual, critical bool) (addr.DirAddr, uint64) {
	// One page-table walk serves the home check, the directory address and
	// the Reference bit (the walk, not three separate Ensure lookups).
	pg := e.sys.Ensure(v)
	if pg.Home != e.node {
		panic(fmt.Sprintf("core: node %d asked to translate %#x homed at node %d", e.node, uint64(v), pg.Home))
	}
	da := e.g.DirAddrOf(pg.DirPage, v)
	pg.Referenced = true

	e.stats.Lookups++
	if critical {
		e.stats.CriticalLookups++
	}
	if dp := e.g.DirPageOf(da); dp != e.lastDirPage {
		if _, seen := e.seenDirPages[dp]; !seen {
			e.seenDirPages[dp] = struct{}{}
			e.stats.DirPagesTouched++
		}
		e.lastDirPage = dp
	}

	if e.dlb.Access(e.g.Page(v)) {
		return da, 0
	}
	e.stats.Misses++
	if critical {
		e.stats.CriticalMisses++
	}
	e.stats.PenaltyCycles += e.timing.DLBMiss
	if e.tracer.Enabled("dlb") {
		e.tracer.Instant("dlb", "dlb-fill", int(e.node), 0, now)
		// Once the miss count exceeds capacity the buffer must be
		// recycling entries, so each further fill implies an eviction.
		if e.stats.Misses > uint64(e.dlb.Entries()) {
			e.tracer.Instant("dlb", "dlb-evict", int(e.node), 0, now)
		}
	}
	return da, e.timing.DLBMiss
}

// SetModified records a write-ownership transfer for v's page: the home
// engine sets the Modify bit in the DLB's page-table entry (§4.3).
func (e *HomeEngine) SetModified(v addr.Virtual) { e.sys.SetModified(v) }

// DLBStats returns the underlying buffer's counters.
func (e *HomeEngine) DLBStats() tlb.Stats { return e.dlb.Stats() }
