package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vcoma/internal/config"
	"vcoma/internal/workload"
)

// The golden files pin the rendered Table 4 and Figure 10 outputs at test
// scale. The simulator is deterministic, so any diff is a real behavioural
// change: inspect it, and if intended, regenerate with
//
//	go test ./internal/experiments/ -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s — a deliberate behaviour change needs -update\ngot:\n%s\nwant:\n%s",
			path, got, string(want))
	}
}

func TestGoldenTable4(t *testing.T) {
	cfg := ConfigForScale(config.SmallTest(), workload.ScaleTest)
	bench, err := workload.ByName("RADIX", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	row, err := Table4(cfg, bench)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "table4_radix.golden", RenderTable4([]Table4Row{row}, false))
}

func TestGoldenFigure10(t *testing.T) {
	cfg := ConfigForScale(config.SmallTest(), workload.ScaleTest)
	res, err := Figure10(cfg, "RAYTRACE", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "figure10_raytrace.golden", res.Render(false))
}
