package experiments

import (
	"strings"
	"testing"

	"vcoma/internal/config"
	"vcoma/internal/workload"
)

func testCfg() config.Config {
	return ConfigForScale(config.SmallTest(), workload.ScaleTest)
}

func TestTimedBreakdownSumsToExecScale(t *testing.T) {
	bench, _ := workload.ByName("RADIX", workload.ScaleTest)
	b, err := Timed(testCfg().WithScheme(config.VCOMA), bench, "x")
	if err != nil {
		t.Fatal(err)
	}
	if b.Label != "x" || b.Exec == 0 {
		t.Fatalf("breakdown %+v", b)
	}
	// The per-processor average total is within [busy, exec]: processors
	// finish near the exec time under barrier synchronization.
	if b.Total() > float64(b.Exec)*1.01 {
		t.Fatalf("total %f exceeds exec %d", b.Total(), b.Exec)
	}
	if b.Total() < float64(b.Exec)*0.5 {
		t.Fatalf("total %f far below exec %d: accounting leak", b.Total(), b.Exec)
	}
}

func TestTable4Shape(t *testing.T) {
	bench, _ := workload.ByName("FMM", workload.ScaleTest)
	row, err := Table4(testCfg(), bench)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range Table4Sizes {
		l0 := row.Ratio[size]["L0-TLB"]
		dlb := row.Ratio[size]["DLB"]
		if l0 <= 0 {
			t.Fatalf("L0 ratio at %d: %f", size, l0)
		}
		if dlb >= l0 {
			t.Fatalf("DLB ratio (%f) not below L0 (%f) at size %d", dlb, l0, size)
		}
	}
	out := RenderTable4([]Table4Row{row}, false)
	if !strings.Contains(out, "FMM") {
		t.Fatal("render incomplete")
	}
}

func TestFigure10Variants(t *testing.T) {
	r, err := Figure10(testCfg(), "RAYTRACE", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"TLB/8", "TLB/8/DM", "DLB/8", "DLB/8/DM", "DLB/8/V2"}
	if len(r.Breakdowns) != len(labels) {
		t.Fatalf("breakdowns: %d", len(r.Breakdowns))
	}
	for i, b := range r.Breakdowns {
		if b.Label != labels[i] {
			t.Fatalf("breakdown %d label %q, want %q", i, b.Label, labels[i])
		}
		if b.Total() == 0 {
			t.Fatalf("%s: empty breakdown", b.Label)
		}
	}
	// The DLB configurations must carry less translation time than TLB/8.
	if r.Breakdowns[2].Trans >= r.Breakdowns[0].Trans {
		t.Fatalf("DLB/8 translation (%f) not below TLB/8 (%f)",
			r.Breakdowns[2].Trans, r.Breakdowns[0].Trans)
	}
	// Busy time is scheme-independent (same instruction stream).
	if r.Breakdowns[0].Busy != r.Breakdowns[2].Busy {
		t.Fatalf("busy differs across schemes: %f vs %f",
			r.Breakdowns[0].Busy, r.Breakdowns[2].Busy)
	}
	if !strings.Contains(r.Render(true), "normalized") {
		t.Fatal("render incomplete")
	}

	// Non-RAYTRACE benchmarks have no V2 bar.
	r2, err := Figure10(testCfg(), "FFT", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Breakdowns) != 4 {
		t.Fatalf("FFT breakdowns: %d", len(r2.Breakdowns))
	}
}

func TestFigure11Profile(t *testing.T) {
	bench, _ := workload.ByName("FFT", workload.ScaleTest)
	cfg := testCfg()
	r, err := Figure11(cfg, bench)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pressure) != cfg.Geometry.GlobalPageSets() {
		t.Fatalf("profile length %d", len(r.Pressure))
	}
	if r.MaxSlots != cfg.Geometry.PageSlotsPerGlobalSet() {
		t.Fatalf("capacity %d", r.MaxSlots)
	}
	var sum float64
	for _, v := range r.Pressure {
		if v < 0 {
			t.Fatalf("negative pressure %f", v)
		}
		sum += v
	}
	// Total pressure equals total pages / capacity.
	prog, _ := bench.Build(cfg.Geometry, cfg.Geometry.Nodes())
	pages := 0
	for _, reg := range prog.Layout().Regions() {
		first := cfg.Geometry.Page(reg.Base)
		last := cfg.Geometry.Page(reg.End() - 1)
		pages += int(last-first) + 1
	}
	want := float64(pages) / float64(r.MaxSlots)
	if sum < want*0.99 || sum > want*1.01 {
		t.Fatalf("profile sums to %f, want %f", sum, want)
	}
	if !strings.Contains(r.Render(false), "pressure") {
		t.Fatal("render incomplete")
	}
}

func TestSuiteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run")
	}
	s := &Suite{Cfg: config.Baseline(), Scale: workload.ScaleTest, Benchmarks: []string{"RADIX"}}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	md := res.RenderMarkdown()
	for _, want := range []string{
		"## Figure 8", "## Figure 9", "## Table 2", "## Table 3",
		"## Table 4", "## Figure 10", "## Figure 11", "PowerPC", "Management study",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(res.Mgmt) == 0 {
		t.Error("suite skipped the management study")
	}
}
