package experiments

import (
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/report"
	"vcoma/internal/workload"
)

// AblationRow measures one design variant of the V-COMA machine against
// the baseline.
type AblationRow struct {
	Label string
	// ExecTime is the parallel execution time.
	ExecTime uint64
	// RemoteStall is total remote-stall cycles across processors.
	RemoteStall uint64
	// Injections counts data injections (replacement traffic).
	Injections uint64
	// QueueCycles is total network queueing.
	QueueCycles uint64
	// Relative is ExecTime / baseline ExecTime.
	Relative float64
}

// AblationStudy quantifies the simulator's own design choices on the
// V-COMA machine (DESIGN.md's ablation list): master relocation in the
// replacement protocol, split request/reply networks, and protocol-engine
// occupancy. Each knob is disabled in isolation.
func AblationStudy(cfg config.Config, bench workload.Benchmark) ([]AblationRow, error) {
	type variant struct {
		label string
		mut   func(*config.Config)
	}
	variants := []variant{
		{"baseline (evaluated design)", func(*config.Config) {}},
		{"no master relocation", func(c *config.Config) { c.Ablation.NoMasterRelocation = true }},
		{"shared request/reply channel", func(c *config.Config) { c.Ablation.SharedNetworkChannel = true }},
		{"infinite PE bandwidth", func(c *config.Config) { c.Ablation.InfinitePEBandwidth = true }},
	}
	var rows []AblationRow
	var base uint64
	for _, v := range variants {
		c := cfg.WithScheme(config.VCOMA).WithTLB(8, config.FullyAssoc)
		v.mut(&c)
		m, res, err := runPass(c, bench, nil)
		if err != nil {
			return nil, err
		}
		tot := res.TotalProc()
		row := AblationRow{
			Label:       v.label,
			ExecTime:    res.ExecTime,
			RemoteStall: tot.StallRemote,
			Injections:  m.Protocol().Stats().Injections,
			QueueCycles: m.Protocol().Fabric().Stats().QueueCycles,
		}
		if base == 0 {
			base = res.ExecTime
		}
		row.Relative = float64(res.ExecTime) / float64(base)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAblation renders the ablation study.
func RenderAblation(rows []AblationRow, markdown bool) string {
	headers := []string{"variant", "exec cycles", "vs baseline", "remote stall", "injections", "net queue"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Label,
			fmt.Sprint(r.ExecTime),
			fmt.Sprintf("%.3f", r.Relative),
			report.Count(float64(r.RemoteStall)),
			fmt.Sprint(r.Injections),
			report.Count(float64(r.QueueCycles)),
		})
	}
	title := "Ablation — V-COMA design choices in isolation\n"
	if markdown {
		return title + "\n" + report.MarkdownTable(headers, out)
	}
	return title + report.Table(headers, out)
}

// DLBOrgStudy sweeps the DLB organization (the associativity dimension the
// paper only samples at its two extremes in Figure 9) on the V-COMA
// machine: fully associative, 4-way, 2-way and direct mapped at each size.
func DLBOrgStudy(cfg config.Config, bench workload.Benchmark, sizes []int) (map[config.TLBOrg]map[int]uint64, error) {
	out := make(map[config.TLBOrg]map[int]uint64)
	for _, org := range []config.TLBOrg{config.FullyAssoc, config.SetAssoc4, config.SetAssoc2, config.DirectMapped} {
		out[org] = make(map[int]uint64)
		for _, size := range sizes {
			c := cfg.WithScheme(config.VCOMA).WithTLB(size, org)
			m, _, err := runPass(c, bench, nil)
			if err != nil {
				return nil, err
			}
			var misses uint64
			for n := 0; n < c.Geometry.Nodes(); n++ {
				misses += m.Engine(addr.Node(n)).Stats().Misses
			}
			out[org][size] = misses
		}
	}
	return out, nil
}

// RenderDLBOrg renders the organization sweep.
func RenderDLBOrg(data map[config.TLBOrg]map[int]uint64, sizes []int, markdown bool) string {
	headers := []string{"organization"}
	for _, s := range sizes {
		headers = append(headers, fmt.Sprint(s))
	}
	var out [][]string
	for _, org := range []config.TLBOrg{config.FullyAssoc, config.SetAssoc4, config.SetAssoc2, config.DirectMapped} {
		row := []string{org.String()}
		for _, s := range sizes {
			row = append(row, fmt.Sprint(data[org][s]))
		}
		out = append(out, row)
	}
	title := "DLB associativity sweep — total DLB misses machine-wide\n"
	if markdown {
		return title + "\n" + report.MarkdownTable(headers, out)
	}
	return title + report.Table(headers, out)
}
