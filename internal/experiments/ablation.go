package experiments

import (
	"context"
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/report"
	"vcoma/internal/workload"
)

// AblationRow measures one design variant of the V-COMA machine against
// the baseline.
type AblationRow struct {
	Label string
	// ExecTime is the parallel execution time.
	ExecTime uint64
	// RemoteStall is total remote-stall cycles across processors.
	RemoteStall uint64
	// Injections counts data injections (replacement traffic).
	Injections uint64
	// QueueCycles is total network queueing.
	QueueCycles uint64
	// Relative is ExecTime / baseline ExecTime.
	Relative float64
}

// AblationVariant is one design knob disabled in isolation: a label and
// the exact configuration the timed pass runs.
type AblationVariant struct {
	Label string
	Cfg   config.Config
}

// AblationVariants enumerates the study's configurations on the V-COMA
// machine, baseline first (DESIGN.md's ablation list): master relocation in
// the replacement protocol, split request/reply networks, and
// protocol-engine occupancy.
func AblationVariants(cfg config.Config) []AblationVariant {
	base := cfg.WithScheme(config.VCOMA).WithTLB(8, config.FullyAssoc)
	noReloc := base
	noReloc.Ablation.NoMasterRelocation = true
	shared := base
	shared.Ablation.SharedNetworkChannel = true
	infPE := base
	infPE.Ablation.InfinitePEBandwidth = true
	return []AblationVariant{
		{"baseline (evaluated design)", base},
		{"no master relocation", noReloc},
		{"shared request/reply channel", shared},
		{"infinite PE bandwidth", infPE},
	}
}

// AblationRun executes one variant's pass. Relative is left zero; the
// assembly normalizes against the baseline row.
func AblationRun(v AblationVariant, bench workload.Benchmark) (AblationRow, error) {
	return AblationRunCtx(context.Background(), v, bench)
}

// AblationRunCtx is AblationRun under a runner context (cancellation,
// deadline, watchdog budget).
func AblationRunCtx(ctx context.Context, v AblationVariant, bench workload.Benchmark) (AblationRow, error) {
	m, res, err := runPassCtx(ctx, v.Cfg, bench, nil, nil)
	if err != nil {
		return AblationRow{}, err
	}
	tot := res.TotalProc()
	return AblationRow{
		Label:       v.Label,
		ExecTime:    res.ExecTime,
		RemoteStall: tot.StallRemote,
		Injections:  m.Protocol().Stats().Injections,
		QueueCycles: m.Protocol().Fabric().Stats().QueueCycles,
	}, nil
}

// NormalizeAblation fills each row's Relative against the first (baseline)
// row and returns rows for chaining.
func NormalizeAblation(rows []AblationRow) []AblationRow {
	if len(rows) == 0 || rows[0].ExecTime == 0 {
		return rows
	}
	base := float64(rows[0].ExecTime)
	for i := range rows {
		rows[i].Relative = float64(rows[i].ExecTime) / base
	}
	return rows
}

// AblationStudy quantifies the simulator's own design choices on the
// V-COMA machine, each knob disabled in isolation.
func AblationStudy(cfg config.Config, bench workload.Benchmark) ([]AblationRow, error) {
	var rows []AblationRow
	for _, v := range AblationVariants(cfg) {
		row, err := AblationRun(v, bench)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return NormalizeAblation(rows), nil
}

// RenderAblation renders the ablation study.
func RenderAblation(rows []AblationRow, markdown bool) string {
	headers := []string{"variant", "exec cycles", "vs baseline", "remote stall", "injections", "net queue"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Label,
			fmt.Sprint(r.ExecTime),
			fmt.Sprintf("%.3f", r.Relative),
			report.Count(float64(r.RemoteStall)),
			fmt.Sprint(r.Injections),
			report.Count(float64(r.QueueCycles)),
		})
	}
	title := "Ablation — V-COMA design choices in isolation\n"
	if markdown {
		return title + "\n" + report.MarkdownTable(headers, out)
	}
	return title + report.Table(headers, out)
}

// DLBOrgs are the organizations the associativity sweep covers.
var DLBOrgs = []config.TLBOrg{config.FullyAssoc, config.SetAssoc4, config.SetAssoc2, config.DirectMapped}

// DLBOrgCell runs one (organization, size) cell of the sweep on the V-COMA
// machine and returns the machine-wide DLB miss count.
func DLBOrgCell(cfg config.Config, bench workload.Benchmark, size int, org config.TLBOrg) (uint64, error) {
	return DLBOrgCellCtx(context.Background(), cfg, bench, size, org)
}

// DLBOrgCellCtx is DLBOrgCell under a runner context (cancellation,
// deadline, watchdog budget).
func DLBOrgCellCtx(ctx context.Context, cfg config.Config, bench workload.Benchmark, size int, org config.TLBOrg) (uint64, error) {
	c := cfg.WithScheme(config.VCOMA).WithTLB(size, org)
	m, _, err := runPassCtx(ctx, c, bench, nil, nil)
	if err != nil {
		return 0, err
	}
	var misses uint64
	for n := 0; n < c.Geometry.Nodes(); n++ {
		misses += m.Engine(addr.Node(n)).Stats().Misses
	}
	return misses, nil
}

// DLBOrgStudy sweeps the DLB organization (the associativity dimension the
// paper only samples at its two extremes in Figure 9) on the V-COMA
// machine: fully associative, 4-way, 2-way and direct mapped at each size.
func DLBOrgStudy(cfg config.Config, bench workload.Benchmark, sizes []int) (map[config.TLBOrg]map[int]uint64, error) {
	out := make(map[config.TLBOrg]map[int]uint64)
	for _, org := range DLBOrgs {
		out[org] = make(map[int]uint64)
		for _, size := range sizes {
			misses, err := DLBOrgCell(cfg, bench, size, org)
			if err != nil {
				return nil, err
			}
			out[org][size] = misses
		}
	}
	return out, nil
}

// RenderDLBOrg renders the organization sweep.
func RenderDLBOrg(data map[config.TLBOrg]map[int]uint64, sizes []int, markdown bool) string {
	headers := []string{"organization"}
	for _, s := range sizes {
		headers = append(headers, fmt.Sprint(s))
	}
	var out [][]string
	for _, org := range DLBOrgs {
		row := []string{org.String()}
		for _, s := range sizes {
			row = append(row, fmt.Sprint(data[org][s]))
		}
		out = append(out, row)
	}
	title := "DLB associativity sweep — total DLB misses machine-wide\n"
	if markdown {
		return title + "\n" + report.MarkdownTable(headers, out)
	}
	return title + report.Table(headers, out)
}
