package experiments

import (
	"context"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/machine"
	"vcoma/internal/report"
	"vcoma/internal/runner"
	"vcoma/internal/sim"
	"vcoma/internal/vm"
	"vcoma/internal/workload"
)

// RunSummaryOf renders one finished simulation in the report.RunSummary
// schema — the same schema vcoma-sim -json emits and the service's artifact
// store caches, so a CLI summary, a cached cell and a served result are
// directly comparable.
//
// SimSeconds is left zero: host wall time is not a property of the result,
// and excluding it keeps the summary deterministic (byte-identical across
// reruns, machines and restarts), which is what lets the artifact store
// deduplicate and re-serve it. Callers that want wall time stamp it after.
func RunSummaryOf(cfg config.Config, benchName string, scale workload.Scale, lay *vm.Layout, m *machine.Machine, res sim.Result) report.RunSummary {
	tot := res.TotalProc()
	ms := m.TotalStats()
	ps := m.Protocol().Stats()
	nproc := float64(len(res.Procs))

	sum := report.RunSummary{
		Benchmark:  benchName,
		Scheme:     cfg.Scheme.String(),
		Scale:      scale.String(),
		TLBEntries: cfg.TLBEntries,
		TLBOrg:     cfg.TLBOrg.String(),
		Seed:       cfg.Seed,
		SharedMB:   float64(lay.TotalBytes()) / (1 << 20),
		Regions:    len(lay.Regions()),
		ExecCycles: res.ExecTime,
		Breakdown: report.Breakdown{
			Busy:   float64(tot.Busy) / nproc,
			Sync:   float64(tot.Sync) / nproc,
			Local:  float64(tot.StallLocal) / nproc,
			Remote: float64(tot.StallRemote) / nproc,
			Trans:  float64(tot.Trans) / nproc,
			Exec:   res.ExecTime,
		},
		Refs:     ms.Refs,
		WritePct: 100 * float64(ms.Writes) / float64(ms.Refs),
		Hits: report.HitRates{
			FLC:     100 * float64(ms.FLCHits) / float64(ms.Refs),
			SLC:     100 * float64(ms.SLCHits) / float64(ms.Refs),
			LocalAM: 100 * float64(ms.LocalAM) / float64(ms.Refs),
			Remote:  100 * float64(ms.Remote) / float64(ms.Refs),
		},
		Protocol: report.ProtocolSummary{
			RemoteReads:   ps.RemoteReads,
			Upgrades:      ps.Upgrades,
			WriteFetches:  ps.WriteFetches,
			Invalidations: ps.Invalidations,
			SharedDrops:   ps.SharedDrops,
			Relocations:   ps.Relocations,
			Injections:    ps.Injections,
			InjectionHops: ps.InjectionHops,
			Swaps:         ps.Swaps,
		},
	}
	if ms.TLBAccesses > 0 {
		sum.TLB = &report.TranslationStats{
			Accesses:      ms.TLBAccesses,
			Misses:        ms.TLBMisses,
			MissPctOfRefs: 100 * float64(ms.TLBMisses) / float64(ms.Refs),
		}
	}
	if cfg.Scheme == config.VCOMA {
		var lookups, misses uint64
		for n := 0; n < cfg.Geometry.Nodes(); n++ {
			st := m.Engine(addr.Node(n)).Stats()
			lookups += st.Lookups
			misses += st.Misses
		}
		sum.DLB = &report.TranslationStats{
			Accesses:      lookups,
			Misses:        misses,
			MissPctOfRefs: 100 * float64(misses) / float64(ms.Refs),
		}
	}
	return sum
}

// SimulateCtx runs one benchmark on one exact configuration under a runner
// context — cancellation and deadline abort the pass, any WithBudget
// watchdog budget is armed, and a runner-installed observability sink
// instruments the run — and returns its machine-readable summary. This is
// the pass behind every vcoma-serve job.
func SimulateCtx(ctx context.Context, cfg config.Config, bench workload.Benchmark, scale workload.Scale) (report.RunSummary, error) {
	m, prog, res, err := passCtx(ctx, cfg, bench, nil, runner.ObserverFrom(ctx))
	if err != nil {
		return report.RunSummary{}, err
	}
	return RunSummaryOf(cfg, prog.Name(), scale, prog.Layout(), m, res), nil
}
