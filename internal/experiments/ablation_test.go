package experiments

import (
	"strings"
	"testing"

	"vcoma/internal/config"
	"vcoma/internal/workload"
)

func TestAblationStudy(t *testing.T) {
	cfg := ConfigForScale(config.SmallTest(), workload.ScaleTest)
	bench, err := workload.ByName("OCEAN", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := AblationStudy(cfg, bench)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0].Relative != 1.0 {
		t.Fatalf("baseline relative %f", rows[0].Relative)
	}
	// The shared-channel variant must queue at least as much as the
	// baseline (requests now wait behind blocks).
	var baseQ, sharedQ uint64
	for _, r := range rows {
		switch r.Label {
		case "baseline (evaluated design)":
			baseQ = r.QueueCycles
		case "shared request/reply channel":
			sharedQ = r.QueueCycles
		}
	}
	if sharedQ < baseQ {
		t.Fatalf("shared channel queued less (%d) than split channels (%d)", sharedQ, baseQ)
	}
	if !strings.Contains(RenderAblation(rows, false), "baseline") {
		t.Fatal("render incomplete")
	}
}

func TestDLBOrgStudy(t *testing.T) {
	cfg := ConfigForScale(config.SmallTest(), workload.ScaleTest)
	bench, err := workload.ByName("FFT", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{4, 16}
	data, err := DLBOrgStudy(cfg, bench, sizes)
	if err != nil {
		t.Fatal(err)
	}
	for _, org := range []config.TLBOrg{config.FullyAssoc, config.SetAssoc4, config.SetAssoc2, config.DirectMapped} {
		if data[org][4] < data[org][16] {
			t.Fatalf("%v: more entries, more misses (%d < %d)", org, data[org][4], data[org][16])
		}
	}
	if !strings.Contains(RenderDLBOrg(data, sizes, true), "FA") {
		t.Fatal("render incomplete")
	}
}
