package experiments

import (
	"context"
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/report"
	"vcoma/internal/vm"
	"vcoma/internal/workload"
)

// MgmtRow holds one scheme's average memory-management costs: the paper
// motivates V-COMA partly by the TLB-consistency problem (§1) and sketches
// the V-COMA protection-change protocol in §4.3. This study measures both
// operations on a warmed machine.
type MgmtRow struct {
	Scheme config.Scheme
	// ProtChangeCycles is the mean latency of a page protection change.
	ProtChangeCycles float64
	// ProtShootdowns is the mean number of translation-buffer entries
	// invalidated per protection change.
	ProtShootdowns float64
	// DemapCycles is the mean latency of unmapping a page.
	DemapCycles float64
	// DemapCopies is the mean number of attraction-memory copies evicted
	// per demap.
	DemapCopies float64
}

// MgmtStudyScheme warms one scheme's machine with the benchmark, then
// changes protection on — and afterwards unmaps — a sample of the
// workload's pages, reporting mean costs. It is the per-scheme pass the
// experiment runner schedules and caches.
func MgmtStudyScheme(cfg config.Config, bench workload.Benchmark, sch config.Scheme, samplePages int) (MgmtRow, error) {
	return MgmtStudySchemeCtx(context.Background(), cfg, bench, sch, samplePages)
}

// MgmtStudySchemeCtx is MgmtStudyScheme under a runner context
// (cancellation, deadline, watchdog budget).
func MgmtStudySchemeCtx(ctx context.Context, cfg config.Config, bench workload.Benchmark, sch config.Scheme, samplePages int) (MgmtRow, error) {
	c := cfg.WithScheme(sch).WithTLB(64, config.FullyAssoc)
	m, _, err := runPassCtx(ctx, c, bench, nil, nil)
	if err != nil {
		return MgmtRow{}, err
	}
	// Sample pages across the workload's regions.
	prog, err := bench.Build(c.Geometry, c.Geometry.Nodes())
	if err != nil {
		return MgmtRow{}, err
	}
	var pages []addr.Virtual
	for _, r := range prog.Layout().Regions() {
		for off := uint64(0); off < r.Bytes && len(pages) < samplePages; off += c.Geometry.PageSize() * 7 {
			pages = append(pages, c.Geometry.PageBase(r.Base+addr.Virtual(off)))
		}
		if len(pages) >= samplePages {
			break
		}
	}
	if len(pages) == 0 {
		return MgmtRow{}, fmt.Errorf("experiments: no pages to sample for %s", bench.Name())
	}

	row := MgmtRow{Scheme: sch}
	now := uint64(1 << 30)
	for _, v := range pages {
		res := m.ChangeProtection(now, 0, v, vm.ProtRead)
		row.ProtChangeCycles += float64(res.Cycles)
		row.ProtShootdowns += float64(res.TLBShootdowns)
		now += res.Cycles + 1000
	}
	for _, v := range pages {
		res, err := m.Demap(now, 0, v)
		if err != nil {
			return MgmtRow{}, err
		}
		row.DemapCycles += float64(res.Cycles)
		row.DemapCopies += float64(res.CopiesDropped)
		now += res.Cycles + 1000
	}
	n := float64(len(pages))
	row.ProtChangeCycles /= n
	row.ProtShootdowns /= n
	row.DemapCycles /= n
	row.DemapCopies /= n
	return row, nil
}

// MgmtStudy runs MgmtStudyScheme for every scheme in paper order.
func MgmtStudy(cfg config.Config, bench workload.Benchmark, samplePages int) ([]MgmtRow, error) {
	var rows []MgmtRow
	for _, sch := range config.Schemes() {
		row, err := MgmtStudyScheme(cfg, bench, sch, samplePages)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderMgmt renders the management study.
func RenderMgmt(rows []MgmtRow, markdown bool) string {
	headers := []string{"scheme", "prot-change cycles", "TLB/DLB invals", "demap cycles", "copies evicted"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Scheme.String(),
			fmt.Sprintf("%.0f", r.ProtChangeCycles),
			fmt.Sprintf("%.1f", r.ProtShootdowns),
			fmt.Sprintf("%.0f", r.DemapCycles),
			fmt.Sprintf("%.1f", r.DemapCopies),
		})
	}
	title := "Management study — page protection change and demap costs (§1, §4.3)\n"
	if markdown {
		return title + "\n" + report.MarkdownTable(headers, out)
	}
	return title + report.Table(headers, out)
}
