package experiments

import (
	"strings"
	"testing"

	"vcoma/internal/config"
	"vcoma/internal/runner"
	"vcoma/internal/sim"
	"vcoma/internal/workload"
)

// A fault in one section degrades the suite to a partial report instead of
// losing everything, and the surviving sections still render.
func TestSuiteKeepGoingPartialReport(t *testing.T) {
	chaos, err := runner.ParseChaos("panic:table4/RADIX")
	if err != nil {
		t.Fatal(err)
	}
	s := &Suite{
		Cfg:        config.Baseline(),
		Scale:      workload.ScaleTest,
		Benchmarks: []string{"RADIX"},
		KeepGoing:  true,
		Chaos:      chaos,
	}
	res, runErr := s.Run()
	if runErr == nil {
		t.Fatal("want error from injected panic")
	}
	if res == nil {
		t.Fatal("KeepGoing run must return the partial result alongside the error")
	}
	if !res.Partial() {
		t.Fatal("result not marked partial")
	}
	var sections []string
	for _, f := range res.Failures {
		sections = append(sections, f.Section)
		if f.Benchmark != "RADIX" || f.Err == "" {
			t.Errorf("failure = %+v", f)
		}
	}
	if len(sections) != 1 || sections[0] != "table 4" {
		t.Errorf("failed sections = %v, want exactly [table 4]", sections)
	}
	md := res.RenderMarkdown()
	if !strings.Contains(md, "## Failed cells — PARTIAL REPORT") {
		t.Error("partial report does not mark its failed cells")
	}
	if !strings.Contains(md, "| table 4 | RADIX |") {
		t.Error("failed-cells table missing the failed cell row")
	}
	// The untouched sections still carry data.
	if len(res.Fig8) != 1 || len(res.Fig10) != 1 || len(res.Fig11) != 1 || len(res.Mgmt) == 0 {
		t.Errorf("surviving sections incomplete: fig8=%d fig10=%d fig11=%d mgmt=%d",
			len(res.Fig8), len(res.Fig10), len(res.Fig11), len(res.Mgmt))
	}
}

// Without KeepGoing the same fault fails the whole run.
func TestSuiteFailFastOnFault(t *testing.T) {
	chaos, _ := runner.ParseChaos("panic:table4/RADIX")
	s := &Suite{
		Cfg:        config.Baseline(),
		Scale:      workload.ScaleTest,
		Benchmarks: []string{"RADIX"},
		Chaos:      chaos,
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("want error")
	}
}

// An impossibly tight watchdog budget trips every pass and surfaces as the
// suite's error — an injected livelock cannot hang the evaluation.
func TestSuiteWatchdogBudgetTrips(t *testing.T) {
	s := &Suite{
		Cfg:        config.Baseline(),
		Scale:      workload.ScaleTest,
		Benchmarks: []string{"RADIX"},
		Budget:     sim.Budget{MaxCycles: 8},
	}
	_, err := s.Run()
	if err == nil {
		t.Fatal("want watchdog trip")
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Errorf("err = %v, want a watchdog trip", err)
	}
}
