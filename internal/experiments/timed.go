package experiments

import (
	"vcoma/internal/config"
	"vcoma/internal/sim"
	"vcoma/internal/vm"
	"vcoma/internal/workload"
)

// Breakdown is a Figure 10 execution-time decomposition, averaged per
// processor, in cycles.
type Breakdown struct {
	Label string
	Busy  float64
	Sync  float64
	Local float64 // loc-stall: SLC hits and local attraction memory
	Remot float64 // rem-stall: attraction-memory misses
	Trans float64 // address-translation overhead
	// Exec is the parallel execution time (max processor finish).
	Exec uint64
}

// Total returns the per-processor cycle sum.
func (b Breakdown) Total() float64 { return b.Busy + b.Sync + b.Local + b.Remot + b.Trans }

// Timed runs one exact configuration and returns its breakdown.
func Timed(cfg config.Config, bench workload.Benchmark, label string) (Breakdown, error) {
	_, res, err := runPass(cfg, bench, nil)
	if err != nil {
		return Breakdown{}, err
	}
	return breakdownOf(label, res, cfg), nil
}

func breakdownOf(label string, res sim.Result, cfg config.Config) Breakdown {
	t := res.TotalProc()
	n := float64(cfg.Geometry.Nodes())
	return Breakdown{
		Label: label,
		Busy:  float64(t.Busy) / n,
		Sync:  float64(t.Sync) / n,
		Local: float64(t.StallLocal) / n,
		Remot: float64(t.StallRemote) / n,
		Trans: float64(t.Trans) / n,
		Exec:  res.ExecTime,
	}
}

// --- Table 4: translation time / total stall time (%) ---

// Table4Sizes are the TLB/DLB sizes of the paper's Table 4.
var Table4Sizes = []int{8, 16}

// Table4Row is one benchmark's ratios.
type Table4Row struct {
	Benchmark string
	// Ratio[size]["L0-TLB"|"DLB"] = translation cycles / (local+remote
	// stall cycles) * 100.
	Ratio map[int]map[string]float64
}

// Table4 runs the timed L0-TLB and V-COMA configurations at sizes 8 and 16
// and reports the paper's stall-ratio metric.
func Table4(cfg config.Config, bench workload.Benchmark) (Table4Row, error) {
	row := Table4Row{Benchmark: bench.Name(), Ratio: make(map[int]map[string]float64)}
	for _, size := range Table4Sizes {
		row.Ratio[size] = make(map[string]float64)
		for _, sch := range []config.Scheme{config.L0TLB, config.VCOMA} {
			c := cfg.WithScheme(sch).WithTLB(size, config.FullyAssoc)
			b, err := Timed(c, bench, "")
			if err != nil {
				return Table4Row{}, err
			}
			name := "L0-TLB"
			if sch == config.VCOMA {
				name = "DLB"
			}
			stall := b.Local + b.Remot
			if stall > 0 {
				row.Ratio[size][name] = 100 * b.Trans / stall
			}
		}
	}
	return row, nil
}

// --- Figure 10: execution time breakdown ---

// Figure10Result is one benchmark's set of configuration breakdowns, in the
// paper's order: TLB/8, TLB/8/DM, DLB/8, DLB/8/DM, and for RAYTRACE also
// DLB/8/V2 (ray stacks realigned to one page).
type Figure10Result struct {
	Benchmark  string
	Breakdowns []Breakdown
}

// Figure10 runs the paper's Figure 10 configurations for one benchmark at
// the given scale (the V2 variant needs to rebuild RAYTRACE with a 4 KB
// stack alignment, hence the scale rather than a prebuilt Benchmark).
func Figure10(cfg config.Config, name string, scale workload.Scale) (Figure10Result, error) {
	bench, err := workload.ByName(name, scale)
	if err != nil {
		return Figure10Result{}, err
	}
	r := Figure10Result{Benchmark: name}
	type variant struct {
		label  string
		scheme config.Scheme
		org    config.TLBOrg
	}
	for _, v := range []variant{
		{"TLB/8", config.L0TLB, config.FullyAssoc},
		{"TLB/8/DM", config.L0TLB, config.DirectMapped},
		{"DLB/8", config.VCOMA, config.FullyAssoc},
		{"DLB/8/DM", config.VCOMA, config.DirectMapped},
	} {
		c := cfg.WithScheme(v.scheme).WithTLB(8, v.org)
		b, err := Timed(c, bench, v.label)
		if err != nil {
			return Figure10Result{}, err
		}
		r.Breakdowns = append(r.Breakdowns, b)
	}
	if name == "RAYTRACE" {
		// V2: the raystruct padding aligned to one page instead of 32 KB,
		// spreading the stacks' page colours across global sets (§5.3).
		p := scale.Raytrace()
		p.StackAlign = cfg.Geometry.PageSize()
		v2 := workload.NewRaytrace(p)
		c := cfg.WithScheme(config.VCOMA).WithTLB(8, config.FullyAssoc)
		b, err := Timed(c, v2, "DLB/8/V2")
		if err != nil {
			return Figure10Result{}, err
		}
		r.Breakdowns = append(r.Breakdowns, b)
	}
	return r, nil
}

// --- Figure 11: pressure profile ---

// Figure11Result is the per-global-page-set occupancy fraction after
// preloading one benchmark on the V-COMA machine.
type Figure11Result struct {
	Benchmark string
	Pressure  []float64
	// MaxSlots is the global-set capacity P*K the fractions are relative
	// to.
	MaxSlots int
}

// Figure11 computes the pressure profile. No simulation is needed: the
// paper's profile is a property of the virtual address layout (pressure is
// set at page allocation, i.e. preload).
func Figure11(cfg config.Config, bench workload.Benchmark) (Figure11Result, error) {
	prog, err := bench.Build(cfg.Geometry, cfg.Geometry.Nodes())
	if err != nil {
		return Figure11Result{}, err
	}
	sys := vm.NewSystem(cfg.Geometry, vm.VirtualOnly)
	prog.Layout().PreloadAll(sys)
	return Figure11Result{
		Benchmark: bench.Name(),
		Pressure:  sys.PressureProfile(),
		MaxSlots:  cfg.Geometry.PageSlotsPerGlobalSet(),
	}, nil
}
