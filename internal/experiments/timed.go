package experiments

import (
	"context"
	"fmt"

	"vcoma/internal/config"
	"vcoma/internal/report"
	"vcoma/internal/runner"
	"vcoma/internal/sim"
	"vcoma/internal/vm"
	"vcoma/internal/workload"
)

// Breakdown is a Figure 10 execution-time decomposition, averaged per
// processor, in cycles. It is the shared report schema so runner cache
// entries and vcoma-sim -json output serialize identically.
type Breakdown = report.Breakdown

// Timed runs one exact configuration and returns its breakdown.
func Timed(cfg config.Config, bench workload.Benchmark, label string) (Breakdown, error) {
	return TimedCtx(context.Background(), cfg, bench, label)
}

// TimedCtx is Timed under a runner context: the pass is bounded by ctx
// (cancellation, deadline, WithBudget watchdog budget), and when the
// context carries an observability sink (runner.Options.Metrics) it is
// instrumented and the runner persists its time series next to the job's
// cache entry. The breakdown itself is identical either way.
func TimedCtx(ctx context.Context, cfg config.Config, bench workload.Benchmark, label string) (Breakdown, error) {
	_, res, err := runPassCtx(ctx, cfg, bench, nil, runner.ObserverFrom(ctx))
	if err != nil {
		return Breakdown{}, err
	}
	return breakdownOf(label, res, cfg), nil
}

func breakdownOf(label string, res sim.Result, cfg config.Config) Breakdown {
	t := res.TotalProc()
	n := float64(cfg.Geometry.Nodes())
	return Breakdown{
		Label:  label,
		Busy:   float64(t.Busy) / n,
		Sync:   float64(t.Sync) / n,
		Local:  float64(t.StallLocal) / n,
		Remote: float64(t.StallRemote) / n,
		Trans:  float64(t.Trans) / n,
		Exec:   res.ExecTime,
	}
}

// --- Table 4: translation time / total stall time (%) ---

// Table4Sizes are the TLB/DLB sizes of the paper's Table 4.
var Table4Sizes = []int{8, 16}

// Table4Row is one benchmark's ratios.
type Table4Row struct {
	Benchmark string
	// Ratio[size]["L0-TLB"|"DLB"] = translation cycles / (local+remote
	// stall cycles) * 100.
	Ratio map[int]map[string]float64
}

// table4Cell names one timed pass behind a Table 4 row.
type table4Cell struct {
	Size   int
	Scheme config.Scheme
	System string // "L0-TLB" or "DLB", the paper's row labels
}

func (c table4Cell) key() string { return fmt.Sprintf("%s/%d", c.System, c.Size) }

// table4Cells enumerates the timed passes behind one benchmark's Table 4
// row: the L0-TLB and V-COMA machines at each size.
func table4Cells() []table4Cell {
	var cells []table4Cell
	for _, size := range Table4Sizes {
		cells = append(cells,
			table4Cell{size, config.L0TLB, "L0-TLB"},
			table4Cell{size, config.VCOMA, "DLB"})
	}
	return cells
}

// table4FromBreakdowns assembles a Table 4 row from its four timed cells,
// keyed "system/size" (e.g. "DLB/16").
func table4FromBreakdowns(bench string, cells map[string]Breakdown) Table4Row {
	row := Table4Row{Benchmark: bench, Ratio: make(map[int]map[string]float64)}
	for _, c := range table4Cells() {
		if row.Ratio[c.Size] == nil {
			row.Ratio[c.Size] = make(map[string]float64)
		}
		b := cells[c.key()]
		if stall := b.Local + b.Remote; stall > 0 {
			row.Ratio[c.Size][c.System] = 100 * b.Trans / stall
		}
	}
	return row
}

// Table4 runs the timed L0-TLB and V-COMA configurations at sizes 8 and 16
// and reports the paper's stall-ratio metric.
func Table4(cfg config.Config, bench workload.Benchmark) (Table4Row, error) {
	cells := make(map[string]Breakdown)
	for _, c := range table4Cells() {
		b, err := Timed(cfg.WithScheme(c.Scheme).WithTLB(c.Size, config.FullyAssoc), bench, "")
		if err != nil {
			return Table4Row{}, err
		}
		cells[c.key()] = b
	}
	return table4FromBreakdowns(bench.Name(), cells), nil
}

// --- Figure 10: execution time breakdown ---

// Figure10Result is one benchmark's set of configuration breakdowns, in the
// paper's order: TLB/8, TLB/8/DM, DLB/8, DLB/8/DM, and for RAYTRACE also
// DLB/8/V2 (ray stacks realigned to one page).
type Figure10Result struct {
	Benchmark  string
	Breakdowns []Breakdown
}

// Fig10Variant is one timed configuration of Figure 10: a label, the exact
// machine configuration, and the benchmark instance to run (the V2 variant
// rebuilds RAYTRACE with page-aligned ray stacks, so the benchmark is part
// of the variant, not shared).
type Fig10Variant struct {
	Label string
	Cfg   config.Config
	Bench workload.Benchmark
}

// Figure10Variants enumerates the paper's Figure 10 configurations for one
// benchmark at the given scale, in rendering order.
func Figure10Variants(cfg config.Config, name string, scale workload.Scale) ([]Fig10Variant, error) {
	bench, err := workload.ByName(name, scale)
	if err != nil {
		return nil, err
	}
	variants := []Fig10Variant{
		{"TLB/8", cfg.WithScheme(config.L0TLB).WithTLB(8, config.FullyAssoc), bench},
		{"TLB/8/DM", cfg.WithScheme(config.L0TLB).WithTLB(8, config.DirectMapped), bench},
		{"DLB/8", cfg.WithScheme(config.VCOMA).WithTLB(8, config.FullyAssoc), bench},
		{"DLB/8/DM", cfg.WithScheme(config.VCOMA).WithTLB(8, config.DirectMapped), bench},
	}
	if name == "RAYTRACE" {
		// V2: the raystruct padding aligned to one page instead of 32 KB,
		// spreading the stacks' page colours across global sets (§5.3).
		p := scale.Raytrace()
		p.StackAlign = cfg.Geometry.PageSize()
		variants = append(variants, Fig10Variant{
			"DLB/8/V2",
			cfg.WithScheme(config.VCOMA).WithTLB(8, config.FullyAssoc),
			workload.NewRaytrace(p),
		})
	}
	return variants, nil
}

// Figure10 runs the paper's Figure 10 configurations for one benchmark at
// the given scale (the V2 variant needs to rebuild RAYTRACE with a 4 KB
// stack alignment, hence the scale rather than a prebuilt Benchmark).
func Figure10(cfg config.Config, name string, scale workload.Scale) (Figure10Result, error) {
	variants, err := Figure10Variants(cfg, name, scale)
	if err != nil {
		return Figure10Result{}, err
	}
	r := Figure10Result{Benchmark: name}
	for _, v := range variants {
		b, err := Timed(v.Cfg, v.Bench, v.Label)
		if err != nil {
			return Figure10Result{}, err
		}
		r.Breakdowns = append(r.Breakdowns, b)
	}
	return r, nil
}

// --- Figure 11: pressure profile ---

// Figure11Result is the per-global-page-set occupancy fraction after
// preloading one benchmark on the V-COMA machine.
type Figure11Result struct {
	Benchmark string
	Pressure  []float64
	// MaxSlots is the global-set capacity P*K the fractions are relative
	// to.
	MaxSlots int
}

// Figure11 computes the pressure profile. No simulation is needed: the
// paper's profile is a property of the virtual address layout (pressure is
// set at page allocation, i.e. preload).
func Figure11(cfg config.Config, bench workload.Benchmark) (Figure11Result, error) {
	prog, err := bench.Build(cfg.Geometry, cfg.Geometry.Nodes())
	if err != nil {
		return Figure11Result{}, err
	}
	sys := vm.NewSystem(cfg.Geometry, vm.VirtualOnly)
	prog.Layout().PreloadAll(sys)
	return Figure11Result{
		Benchmark: bench.Name(),
		Pressure:  sys.PressureProfile(),
		MaxSlots:  cfg.Geometry.PageSlotsPerGlobalSet(),
	}, nil
}
