package experiments

import (
	"fmt"
	"sort"

	"vcoma/internal/report"
)

// TagOverheadRow quantifies §6's cost discussion: virtual tags are longer
// than physical tags, growing the attraction memory's tag store. The paper
// works the numbers for the PowerPC address widths (52/32-bit and
// 80/64-bit) at 32, 64 and 128-byte blocks: 1.5%-2.5% of the attraction
// memory at 128 B, up to 6%-9% at 32 B.
type TagOverheadRow struct {
	BlockBytes int
	// ExtraTagBits is the per-block tag growth: virtual-tag width minus
	// physical-tag width plus the access-right bits virtual tags carry.
	ExtraTagBits int
	// OverheadPct is the extra tag storage as a percentage of the data
	// storage.
	OverheadPct float64
}

// TagOverhead computes the virtual-tag memory overhead for a machine with
// the given virtual and physical address widths and access-right bits, at
// each block size.
func TagOverhead(vaBits, paBits, rightsBits int, blockSizes []int) []TagOverheadRow {
	var rows []TagOverheadRow
	for _, bs := range blockSizes {
		extra := vaBits - paBits + rightsBits
		rows = append(rows, TagOverheadRow{
			BlockBytes:   bs,
			ExtraTagBits: extra,
			OverheadPct:  100 * float64(extra) / 8 / float64(bs),
		})
	}
	return rows
}

// PaperTagOverheads reproduces §6's two worked examples: the 32-bit
// PowerPC (52-bit VA, 32-bit PA) and the 64-bit PowerPC (80-bit VA, 64-bit
// PA), with four access-right bits.
func PaperTagOverheads() map[string][]TagOverheadRow {
	sizes := []int{32, 64, 128}
	return map[string][]TagOverheadRow{
		"PowerPC-32 (52b VA / 32b PA)": TagOverhead(52, 32, 4, sizes),
		"PowerPC-64 (80b VA / 64b PA)": TagOverhead(80, 64, 4, sizes),
	}
}

// RenderTagOverhead renders the tag-overhead analysis. Architectures render
// in sorted-name order so the output is deterministic.
func RenderTagOverhead(markdown bool) string {
	out := "Tag-memory overhead of virtual tagging (§6)\n"
	if markdown {
		out += "\n"
	}
	overheads := PaperTagOverheads()
	names := make([]string, 0, len(overheads))
	for name := range overheads {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rows := overheads[name]
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{
				fmt.Sprintf("%d B", r.BlockBytes),
				fmt.Sprintf("%d bits", r.ExtraTagBits),
				fmt.Sprintf("%.1f%%", r.OverheadPct),
			})
		}
		headers := []string{"block size", "extra tag", "of data store"}
		if markdown {
			out += "**" + name + "**\n\n" + report.MarkdownTable(headers, cells) + "\n"
		} else {
			out += name + "\n" + report.Table(headers, cells) + "\n"
		}
	}
	return out
}
