package experiments

import (
	"testing"

	"vcoma/internal/config"
	"vcoma/internal/workload"
)

// TestSuiteDeterministicAcrossWorkersAndCache is the report-determinism
// guarantee: the rendered Markdown must be byte-identical whether the suite
// runs on one worker, on many, against a cold cache, or entirely from a
// warm one.
func TestSuiteDeterministicAcrossWorkersAndCache(t *testing.T) {
	run := func(jobs int, cacheDir string) (string, int) {
		s := &Suite{
			Cfg:        config.Baseline(),
			Scale:      workload.ScaleTest,
			Benchmarks: []string{"RADIX"},
			Jobs:       jobs,
			CacheDir:   cacheDir,
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.RenderMarkdown(), res.CacheHits
	}

	serial, _ := run(1, "")
	parallel, _ := run(4, "")
	if serial != parallel {
		t.Error("1-worker and 4-worker reports differ")
	}

	cache := t.TempDir()
	cold, _ := run(4, cache)
	if cold != serial {
		t.Error("cold-cache report differs from uncached")
	}
	warm, hits := run(4, cache)
	if warm != serial {
		t.Error("warm-cache report differs from uncached")
	}
	if hits == 0 {
		t.Error("second cached run recomputed everything: no cache hits")
	}
}
