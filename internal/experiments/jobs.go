package experiments

import (
	"context"
	"fmt"

	"vcoma/internal/config"
	"vcoma/internal/runner"
	"vcoma/internal/workload"
)

// resultsVersion salts every job key. Bump it whenever a change to the
// simulator or to a result type invalidates previously cached results —
// old entries then simply miss and everything recomputes.
const resultsVersion = "results-v1"

// Plan enumerates experiment passes as runner jobs and reassembles their
// results. Every pass is keyed by a content hash of (results version, job
// kind, exact machine configuration, benchmark, scale, and any
// pass-specific parameters), so re-running a sweep after editing one
// scheme's configuration only re-simulates the affected cells, and results
// are identical no matter which worker — or which earlier cached run —
// produced them.
type Plan struct {
	cfg   config.Config
	scale workload.Scale
	jobs  []runner.Job
	// fig10Labels remembers each benchmark's variant labels in rendering
	// order so assembly can rebuild the figure without re-deriving them.
	fig10Labels map[string][]string
	// dlbSizes remembers each benchmark's sweep sizes.
	dlbSizes map[string][]int
}

// NewPlan starts an empty plan for a scale-adapted configuration.
func NewPlan(cfg config.Config, scale workload.Scale) *Plan {
	return &Plan{
		cfg:         cfg,
		scale:       scale,
		fig10Labels: make(map[string][]string),
		dlbSizes:    make(map[string][]int),
	}
}

// Jobs returns the enumerated jobs.
func (p *Plan) Jobs() []runner.Job { return p.jobs }

// Key content-hashes the plan's job list for journal verification: a
// resumed run must re-enumerate the exact plan it is resuming.
func (p *Plan) Key() runner.Key { return runner.PlanKey(p.jobs) }

// ApplyChaos wraps every planned job with c's fault injections; nil is a
// no-op. Job names, keys and dependencies are untouched, so cache and
// journal identity survive the wrapping. Testing and the -chaos flag only.
func (p *Plan) ApplyChaos(c *runner.Chaos) {
	if c != nil {
		p.jobs = c.Wrap(p.jobs)
	}
}

// key hashes a job's full input identity.
func (p *Plan) key(kind string, cfg config.Config, bench string, extra ...any) runner.Key {
	parts := []any{resultsVersion, kind, cfg, bench, p.scale.String()}
	return runner.KeyOf(append(parts, extra...)...)
}

// bench resolves a benchmark name at the plan's scale.
func (p *Plan) bench(name string) (workload.Benchmark, error) {
	return workload.ByName(name, p.scale)
}

// AddObserve enumerates the five observer passes of one benchmark
// (Figures 8/9, Tables 2/3).
func (p *Plan) AddObserve(name string) error {
	bench, err := p.bench(name)
	if err != nil {
		return err
	}
	for _, sch := range config.Schemes() {
		sch := sch
		p.jobs = append(p.jobs, runner.New(
			fmt.Sprintf("observe/%s/%v", name, sch),
			p.key("observe", ObservePassConfig(p.cfg, sch), name),
			func(ctx context.Context) (SchemePass, error) {
				return ObserveSchemeCtx(ctx, p.cfg, bench, sch)
			}))
	}
	return nil
}

// AddTable4 enumerates the four timed cells of one benchmark's Table 4 row.
func (p *Plan) AddTable4(name string) error {
	bench, err := p.bench(name)
	if err != nil {
		return err
	}
	for _, c := range table4Cells() {
		cellCfg := p.cfg.WithScheme(c.Scheme).WithTLB(c.Size, config.FullyAssoc)
		p.jobs = append(p.jobs, runner.New(
			fmt.Sprintf("table4/%s/%s", name, c.key()),
			p.key("timed", cellCfg, name),
			func(ctx context.Context) (Breakdown, error) {
				// The label is stamped at assembly so cells can share
				// cache entries with identically configured passes.
				return TimedCtx(ctx, cellCfg, bench, "")
			}))
	}
	return nil
}

// AddFigure10 enumerates one benchmark's Figure 10 variants (4, plus the
// RAYTRACE V2 relayout).
func (p *Plan) AddFigure10(name string) error {
	variants, err := Figure10Variants(p.cfg, name, p.scale)
	if err != nil {
		return err
	}
	var labels []string
	for _, v := range variants {
		v := v
		labels = append(labels, v.Label)
		// The V2 variant runs a rebuilt benchmark; its label is part of
		// the key because the configuration alone cannot distinguish it.
		var extra []any
		if v.Bench.Name() != name || v.Label == "DLB/8/V2" {
			extra = append(extra, v.Label)
		}
		p.jobs = append(p.jobs, runner.New(
			fmt.Sprintf("fig10/%s/%s", name, v.Label),
			p.key("timed", v.Cfg, name, extra...),
			func(ctx context.Context) (Breakdown, error) {
				return TimedCtx(ctx, v.Cfg, v.Bench, "")
			}))
	}
	p.fig10Labels[name] = labels
	return nil
}

// AddFigure11 adds one benchmark's pressure-profile job (layout only, no
// simulation).
func (p *Plan) AddFigure11(name string) error {
	bench, err := p.bench(name)
	if err != nil {
		return err
	}
	p.jobs = append(p.jobs, runner.New(
		fmt.Sprintf("fig11/%s", name),
		p.key("fig11", p.cfg, name),
		func(context.Context) (Figure11Result, error) {
			return Figure11(p.cfg, bench)
		}))
	return nil
}

// AddMgmt enumerates the five per-scheme management-study passes of one
// benchmark.
func (p *Plan) AddMgmt(name string, samplePages int) error {
	bench, err := p.bench(name)
	if err != nil {
		return err
	}
	for _, sch := range config.Schemes() {
		sch := sch
		p.jobs = append(p.jobs, runner.New(
			fmt.Sprintf("mgmt/%s/%v", name, sch),
			p.key("mgmt", p.cfg.WithScheme(sch).WithTLB(64, config.FullyAssoc), name, samplePages),
			func(ctx context.Context) (MgmtRow, error) {
				return MgmtStudySchemeCtx(ctx, p.cfg, bench, sch, samplePages)
			}))
	}
	return nil
}

// AddAblation enumerates one benchmark's ablation variants.
func (p *Plan) AddAblation(name string) error {
	bench, err := p.bench(name)
	if err != nil {
		return err
	}
	for _, v := range AblationVariants(p.cfg) {
		v := v
		p.jobs = append(p.jobs, runner.New(
			fmt.Sprintf("ablation/%s/%s", name, v.Label),
			p.key("ablation", v.Cfg, name, v.Label),
			func(ctx context.Context) (AblationRow, error) {
				return AblationRunCtx(ctx, v, bench)
			}))
	}
	return nil
}

// AddDLBOrg enumerates one benchmark's (organization × size) sweep cells.
func (p *Plan) AddDLBOrg(name string, sizes []int) error {
	bench, err := p.bench(name)
	if err != nil {
		return err
	}
	for _, org := range DLBOrgs {
		for _, size := range sizes {
			org, size := org, size
			p.jobs = append(p.jobs, runner.New(
				fmt.Sprintf("dlborg/%s/%v/%d", name, org, size),
				p.key("dlborg", p.cfg.WithScheme(config.VCOMA).WithTLB(size, org), name),
				func(ctx context.Context) (uint64, error) {
					return DLBOrgCellCtx(ctx, p.cfg, bench, size, org)
				}))
		}
	}
	p.dlbSizes[name] = append([]int(nil), sizes...)
	return nil
}

// Run executes the plan's jobs through the runner. Under CollectAll the
// result is returned alongside the joined error so callers can assemble
// whatever completed.
func (p *Plan) Run(ctx context.Context, opt runner.Options) (*PlanResult, error) {
	rr, err := runner.Run(ctx, p.jobs, opt)
	if rr == nil {
		return nil, err
	}
	return &PlanResult{plan: p, run: rr}, err
}

// PlanResult reassembles typed experiment results from a finished run.
// Every accessor is deterministic: it orders sub-results by the paper's
// fixed enumeration, never by completion order.
type PlanResult struct {
	plan *Plan
	run  *runner.RunResult
}

// Raw exposes the underlying runner result (cache hits, per-job walls).
func (r *PlanResult) Raw() *runner.RunResult { return r.run }

// Observed assembles one benchmark's five scheme passes.
func (r *PlanResult) Observed(name string) (*Observed, error) {
	passes := make(map[config.Scheme]SchemePass)
	for _, sch := range config.Schemes() {
		pass, err := runner.ValueOf[SchemePass](r.run, fmt.Sprintf("observe/%s/%v", name, sch))
		if err != nil {
			return nil, err
		}
		passes[sch] = pass
	}
	return AssembleObserved(name, passes), nil
}

// Table4 assembles one benchmark's stall-ratio row.
func (r *PlanResult) Table4(name string) (Table4Row, error) {
	cells := make(map[string]Breakdown)
	for _, c := range table4Cells() {
		b, err := runner.ValueOf[Breakdown](r.run, fmt.Sprintf("table4/%s/%s", name, c.key()))
		if err != nil {
			return Table4Row{}, err
		}
		cells[c.key()] = b
	}
	return table4FromBreakdowns(name, cells), nil
}

// Figure10 assembles one benchmark's execution-time breakdowns in
// rendering order, stamping the variant labels.
func (r *PlanResult) Figure10(name string) (Figure10Result, error) {
	labels, ok := r.plan.fig10Labels[name]
	if !ok {
		return Figure10Result{}, fmt.Errorf("experiments: no Figure 10 jobs planned for %s", name)
	}
	res := Figure10Result{Benchmark: name}
	for _, label := range labels {
		b, err := runner.ValueOf[Breakdown](r.run, fmt.Sprintf("fig10/%s/%s", name, label))
		if err != nil {
			return Figure10Result{}, err
		}
		b.Label = label
		res.Breakdowns = append(res.Breakdowns, b)
	}
	return res, nil
}

// Figure11 returns one benchmark's pressure profile.
func (r *PlanResult) Figure11(name string) (Figure11Result, error) {
	return runner.ValueOf[Figure11Result](r.run, fmt.Sprintf("fig11/%s", name))
}

// Mgmt assembles the management study's rows in paper scheme order.
func (r *PlanResult) Mgmt(name string) ([]MgmtRow, error) {
	var rows []MgmtRow
	for _, sch := range config.Schemes() {
		row, err := runner.ValueOf[MgmtRow](r.run, fmt.Sprintf("mgmt/%s/%v", name, sch))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Ablation assembles one benchmark's ablation rows, baseline first, and
// normalizes against it.
func (r *PlanResult) Ablation(name string) ([]AblationRow, error) {
	var rows []AblationRow
	for _, v := range AblationVariants(r.plan.cfg) {
		row, err := runner.ValueOf[AblationRow](r.run, fmt.Sprintf("ablation/%s/%s", name, v.Label))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return NormalizeAblation(rows), nil
}

// DLBOrg assembles one benchmark's associativity sweep.
func (r *PlanResult) DLBOrg(name string) (map[config.TLBOrg]map[int]uint64, error) {
	sizes, ok := r.plan.dlbSizes[name]
	if !ok {
		return nil, fmt.Errorf("experiments: no DLB sweep planned for %s", name)
	}
	out := make(map[config.TLBOrg]map[int]uint64)
	for _, org := range DLBOrgs {
		out[org] = make(map[int]uint64)
		for _, size := range sizes {
			misses, err := runner.ValueOf[uint64](r.run, fmt.Sprintf("dlborg/%s/%v/%d", name, org, size))
			if err != nil {
				return nil, err
			}
			out[org][size] = misses
		}
	}
	return out, nil
}
