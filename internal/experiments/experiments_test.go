package experiments

import (
	"strings"
	"testing"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/tlb"
	"vcoma/internal/workload"
)

// syntheticBank builds a MergedBank with prescribed per-node miss counts by
// feeding crafted page streams. For interpolation tests a direct fixture is
// simpler: build a bank from a page stream sized to produce a known curve.
func observedFixture(t *testing.T) *Observed {
	t.Helper()
	cfg := ConfigForScale(config.SmallTest(), workload.ScaleTest)
	bench, err := workload.ByName("RADIX", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := Observe(cfg, bench)
	if err != nil {
		t.Fatal(err)
	}
	return obs
}

func TestObserveProducesAllSchemes(t *testing.T) {
	obs := observedFixture(t)
	if obs.Benchmark != "RADIX" || obs.RefsPerNode <= 0 {
		t.Fatalf("metadata: %+v", obs)
	}
	for _, sch := range config.Schemes() {
		if obs.Banks[sch] == nil {
			t.Fatalf("missing bank for %v", sch)
		}
		if obs.Banks[sch].TotalAccesses() == 0 {
			t.Fatalf("%v observed no translation requests", sch)
		}
	}
	if obs.L2NoWb == nil {
		t.Fatal("missing L2/no_wback bank")
	}
	// The no-writeback stream is a subset of the L2 stream.
	if obs.L2NoWb.TotalAccesses() > obs.Banks[config.L2TLB].TotalAccesses() {
		t.Fatal("no_wback saw more requests than L2")
	}
}

func TestFigure8And9Shapes(t *testing.T) {
	obs := observedFixture(t)
	f8 := Figure8(obs)
	if len(f8.Series) != 6 { // five schemes + no_wback
		t.Fatalf("figure 8 has %d series", len(f8.Series))
	}
	// V-COMA must beat L0-TLB at every size (the paper's headline).
	var l0, vc Series
	for _, s := range f8.Series {
		switch s.Label {
		case "L0-TLB":
			l0 = s
		case "V-COMA":
			vc = s
		}
	}
	for _, n := range f8.Sizes {
		if vc.Points[n] > l0.Points[n] {
			t.Fatalf("V-COMA (%f) above L0-TLB (%f) at %d entries", vc.Points[n], l0.Points[n], n)
		}
	}

	f9 := Figure9(obs)
	if len(f9.Series) != 10 {
		t.Fatalf("figure 9 has %d series", len(f9.Series))
	}
	// DM never beats FA of the same scheme and size by more than noise:
	// check DM >= FA for L0 at the smallest size, where conflicts bite.
	var l0fa, l0dm Series
	for _, s := range f9.Series {
		switch s.Label {
		case "L0-TLB":
			l0fa = s
		case "L0-TLB/DM":
			l0dm = s
		}
	}
	if l0dm.Points[8] < l0fa.Points[8] {
		t.Fatalf("L0 DM (%f) below FA (%f) at 8 entries", l0dm.Points[8], l0fa.Points[8])
	}
}

func TestTable2RatesBounded(t *testing.T) {
	obs := observedFixture(t)
	row := Table2(obs)
	for _, size := range Table2Sizes {
		for _, sch := range config.Schemes() {
			r := row.Rate[size][sch]
			if r < 0 || r > 100 {
				t.Fatalf("rate %v/%d = %f", sch, size, r)
			}
		}
		// V-COMA is the smallest rate at every size here.
		for _, sch := range []config.Scheme{config.L0TLB, config.L1TLB} {
			if row.Rate[size][config.VCOMA] > row.Rate[size][sch] {
				t.Fatalf("V-COMA rate above %v at size %d", sch, size)
			}
		}
	}
}

func TestEquivalentSizeInterpolation(t *testing.T) {
	// Build a bank whose curve is known exactly: feed one pass over N
	// distinct pages so that misses(n) = N for any n >= N (cold only),
	// and larger for smaller n.
	specs := tlb.PaperSpecs()
	bank, err := tlb.NewBank(specs, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		for p := 0; p < 64; p++ {
			bank.Access(addr.PageNum(p))
		}
	}
	merged := tlb.Merge([]*tlb.Bank{bank})

	// A target below the flat cold floor is unreachable: -1.
	if got := equivalentSize(merged, 1); got != -1 {
		t.Fatalf("unreachable target gave %f", got)
	}
	// A target equal to the 64-entry miss count interpolates to <= 64.
	m64 := merged.MissesPerNode(tlb.Spec{Entries: 64, Org: config.FullyAssoc})
	got := equivalentSize(merged, m64)
	if got <= 0 || got > 64 {
		t.Fatalf("equivalent size %f for the 64-entry miss count", got)
	}
	// A huge target is satisfied by the smallest size.
	if got := equivalentSize(merged, 1e12); got != 8 {
		t.Fatalf("easy target gave %f", got)
	}
}

func TestRenderersProduceTables(t *testing.T) {
	obs := observedFixture(t)
	f8 := Figure8(obs).Render(false)
	if !strings.Contains(f8, "Figure 8") || !strings.Contains(f8, "V-COMA") {
		t.Fatal("figure 8 render incomplete")
	}
	f8md := Figure8(obs).Render(true)
	if !strings.Contains(f8md, "| --- |") {
		t.Fatal("figure 8 markdown render missing table")
	}
	t2 := RenderTable2([]Table2Row{Table2(obs)}, false)
	if !strings.Contains(t2, "RADIX") {
		t.Fatal("table 2 render incomplete")
	}
	t3 := RenderTable3([]Table3Row{Table3(obs)}, true)
	if !strings.Contains(t3, "L3-TLB") {
		t.Fatal("table 3 render incomplete")
	}
}

func TestPaperDataComplete(t *testing.T) {
	for _, name := range workload.Names() {
		if _, ok := PaperTable2[name]; !ok {
			t.Errorf("PaperTable2 missing %s", name)
		}
		if _, ok := PaperTable3[name]; !ok {
			t.Errorf("PaperTable3 missing %s", name)
		}
		if _, ok := PaperTable4[name]; !ok {
			t.Errorf("PaperTable4 missing %s", name)
		}
		if PaperTable1SharedMB[name] == 0 {
			t.Errorf("PaperTable1SharedMB missing %s", name)
		}
	}
}
