package experiments

import (
	"strings"
	"testing"

	"vcoma/internal/config"
	"vcoma/internal/workload"
)

func TestMgmtStudy(t *testing.T) {
	cfg := ConfigForScale(config.SmallTest(), workload.ScaleTest)
	bench, err := workload.ByName("BARNES", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := MgmtStudy(cfg, bench, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows: %d", len(rows))
	}
	var l0, vc MgmtRow
	for _, r := range rows {
		switch r.Scheme {
		case config.L0TLB:
			l0 = r
		case config.VCOMA:
			vc = r
		}
	}
	// The study's point: V-COMA protection changes avoid the shootdown
	// storm.
	if vc.ProtChangeCycles >= l0.ProtChangeCycles {
		t.Fatalf("V-COMA prot change (%f) not cheaper than L0 (%f)",
			vc.ProtChangeCycles, l0.ProtChangeCycles)
	}
	if vc.ProtShootdowns > 1 {
		t.Fatalf("V-COMA invalidated %f buffers per change", vc.ProtShootdowns)
	}
	out := RenderMgmt(rows, false)
	if !strings.Contains(out, "V-COMA") {
		t.Fatal("render incomplete")
	}
}

func TestTagOverheadMatchesPaper(t *testing.T) {
	// §6: "This will increase the tag memory by 1.5% ~ 2.5% of the
	// attraction memory (assuming 128 byte block size), and 3% ~ 4.5% for
	// 64 bytes, and 6% ~ 9% for 32 bytes" — the paper's 2-3 extra tag
	// bytes correspond to the PowerPC examples.
	for name, rows := range PaperTagOverheads() {
		for _, r := range rows {
			var lo, hi float64
			// The paper rounds the extra tag to whole bytes ("2 to 3
			// bytes"); allow the exact-bit computation to land a hair
			// past its rounded upper bounds.
			switch r.BlockBytes {
			case 128:
				lo, hi = 1.5, 2.6
			case 64:
				lo, hi = 3, 4.8
			case 32:
				lo, hi = 6, 9.5
			}
			if r.OverheadPct < lo || r.OverheadPct > hi {
				t.Errorf("%s at %d B: %.2f%% outside the paper's %g-%g%%",
					name, r.BlockBytes, r.OverheadPct, lo, hi)
			}
		}
	}
	if !strings.Contains(RenderTagOverhead(true), "PowerPC") {
		t.Fatal("render incomplete")
	}
}
