// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): the address-translation miss curves of Figure 8, the
// direct-mapped comparison of Figure 9, the miss-rate Table 2, the
// equivalent-TLB-size Table 3, the stall-ratio Table 4, the execution-time
// breakdown of Figure 10 (including the RAYTRACE "V2" relayout), and the
// global-set pressure profile of Figure 11.
//
// Two harness styles are used, mirroring the paper's methodology:
//
//   - Observed passes: one simulation per (benchmark, scheme) with an
//     observer bank of every TLB/DLB size and organization attached to the
//     scheme's translation tap points. Miss counting does not feed back
//     into timing, so one pass yields a whole curve (Figs 8/9, Tables 2/3).
//   - Timed passes: one simulation per exact configuration with the
//     translation penalty in the loop (Table 4, Figure 10).
package experiments

import (
	"context"
	"fmt"
	"sort"

	"vcoma/internal/config"
	"vcoma/internal/machine"
	"vcoma/internal/obs"
	"vcoma/internal/sim"
	"vcoma/internal/tlb"
	"vcoma/internal/workload"
)

// ObserveTLBEntries is the timed-TLB size used during observer passes:
// large, so the in-loop translation penalty is negligible and the observers
// see an interleaving close to translation-free execution.
const ObserveTLBEntries = 512

// Observed holds one benchmark's five observer passes.
type Observed struct {
	Benchmark string
	// RefsPerNode is the average number of processor references per node
	// (identical across schemes: the reference streams are deterministic).
	RefsPerNode float64
	// Banks maps each scheme to its merged per-node observer statistics.
	Banks map[config.Scheme]*tlb.MergedBank
	// L2NoWb is the L2-TLB stream without SLC writebacks.
	L2NoWb *tlb.MergedBank
}

// budgetCtxKey carries a sim.Budget through a runner context into every
// simulation pass of a plan.
type budgetCtxKey struct{}

// WithBudget arms the watchdog of every simulation pass run under ctx:
// jobs read the budget back out with BudgetFrom and install it on their
// engine. A zero budget is equivalent to not calling WithBudget.
func WithBudget(ctx context.Context, b sim.Budget) context.Context {
	if b.Zero() {
		return ctx
	}
	return context.WithValue(ctx, budgetCtxKey{}, b)
}

// BudgetFrom returns the watchdog budget installed by WithBudget, or the
// zero (disarmed) budget.
func BudgetFrom(ctx context.Context) sim.Budget {
	b, _ := ctx.Value(budgetCtxKey{}).(sim.Budget)
	return b
}

// shardsCtxKey carries the parallel shard count through a runner context.
type shardsCtxKey struct{}

// WithShards runs every simulation pass under ctx on the parallel engine
// with n shard goroutines (n ≤ 1 = sequential). Results are byte-identical
// either way, so shard count — like supervision and instrumentation — never
// invalidates a pass cache entry.
func WithShards(ctx context.Context, n int) context.Context {
	if n <= 1 {
		return ctx
	}
	return context.WithValue(ctx, shardsCtxKey{}, n)
}

// ShardsFrom returns the shard count installed by WithShards, or 0.
func ShardsFrom(ctx context.Context) int {
	n, _ := ctx.Value(shardsCtxKey{}).(int)
	return n
}

// runPass simulates one benchmark under one scheme with observers attached.
func runPass(cfg config.Config, bench workload.Benchmark, specs []tlb.Spec) (*machine.Machine, sim.Result, error) {
	m, _, res, err := passCtx(context.Background(), cfg, bench, specs, nil)
	return m, res, err
}

// runPassCtx is runPass under a runner context: the engine is bounded by
// ctx (cancellation and deadline abort the pass, deadlines with a watchdog
// diagnostic), armed with any WithBudget watchdog budget the context
// carries, and instrumented when the context's runner installed an
// observability sink (nil o = plain pass). Supervision and instrumentation
// are purely observational: a supervised, instrumented pass that does not
// trip computes the same result as a plain one — which is what lets
// metrics-enabled and watchdog-guarded runs share cache entries.
func runPassCtx(ctx context.Context, cfg config.Config, bench workload.Benchmark, specs []tlb.Spec, o *obs.Observer) (*machine.Machine, sim.Result, error) {
	m, _, res, err := passCtx(ctx, cfg, bench, specs, o)
	return m, res, err
}

// passCtx is the single pass implementation behind runPass/runPassCtx and
// SimulateCtx; it additionally returns the built program so callers can
// report the workload's layout.
func passCtx(ctx context.Context, cfg config.Config, bench workload.Benchmark, specs []tlb.Spec, o *obs.Observer) (*machine.Machine, *workload.Program, sim.Result, error) {
	// Request-scoped tracing: when a service request's span rides the
	// context, the pass's phases nest under it (all no-ops otherwise).
	parent := obs.SpanFrom(ctx)

	sp := parent.StartChild("build")
	sp.SetAttr("bench", bench.Name())
	m, err := machine.New(cfg)
	if err != nil {
		sp.End()
		return nil, nil, sim.Result{}, err
	}
	prog, err := bench.Build(cfg.Geometry, cfg.Geometry.Nodes())
	sp.End()
	if err != nil {
		return nil, nil, sim.Result{}, err
	}
	if specs != nil {
		if err := m.AttachObserverBanks(specs); err != nil {
			return nil, nil, sim.Result{}, err
		}
	}
	m.AttachObserver(o)
	m.Preload(prog.Layout())
	eng, err := sim.New(m, prog.Streams())
	if err != nil {
		return nil, nil, sim.Result{}, err
	}
	eng.SetBudget(BudgetFrom(ctx))
	eng.SetContext(ctx)
	eng.SetObserver(o)
	eng.SetParallel(ShardsFrom(ctx))
	simSp := parent.StartChild("simulate")
	simSp.SetAttr("scheme", cfg.Scheme.String())
	eng.SetSpan(simSp)
	res, err := eng.Run()
	simSp.End()
	if err != nil {
		return nil, nil, sim.Result{}, fmt.Errorf("experiments: %s/%v: %w", bench.Name(), cfg.Scheme, err)
	}
	return m, prog, res, nil
}

// SchemePass is the serializable result of one observer pass: one
// (benchmark, scheme) simulation with the paper's observer grid attached.
// It is the unit the experiment runner schedules and caches; five passes
// assemble into an Observed.
type SchemePass struct {
	// RefsPerNode is the average number of processor references per node.
	RefsPerNode float64 `json:"refsPerNode"`
	// Bank is the merged per-node observer statistics of the pass.
	Bank *tlb.MergedBank `json:"bank"`
	// NoWb is the L2-TLB stream without SLC writebacks (L2-TLB pass only).
	NoWb *tlb.MergedBank `json:"noWb,omitempty"`
}

// ObservePassConfig returns the exact machine configuration an observer
// pass runs: the scheme under study with a large timed TLB so the in-loop
// translation penalty is negligible.
func ObservePassConfig(cfg config.Config, sch config.Scheme) config.Config {
	return cfg.WithScheme(sch).WithTLB(ObserveTLBEntries, config.FullyAssoc)
}

// ObserveScheme runs one benchmark under one scheme with the full paper
// observer grid attached.
func ObserveScheme(cfg config.Config, bench workload.Benchmark, sch config.Scheme) (SchemePass, error) {
	return ObserveSchemeCtx(context.Background(), cfg, bench, sch)
}

// ObserveSchemeCtx is ObserveScheme under a runner context (cancellation,
// deadline, watchdog budget).
func ObserveSchemeCtx(ctx context.Context, cfg config.Config, bench workload.Benchmark, sch config.Scheme) (SchemePass, error) {
	m, _, err := runPassCtx(ctx, ObservePassConfig(cfg, sch), bench, tlb.PaperSpecs(), nil)
	if err != nil {
		return SchemePass{}, err
	}
	pass := SchemePass{
		RefsPerNode: float64(m.TotalStats().Refs) / float64(cfg.Geometry.Nodes()),
		Bank:        tlb.Merge(m.ObserverBanks()),
	}
	if sch == config.L2TLB {
		pass.NoWb = tlb.Merge(m.NoWritebackBanks())
	}
	return pass, nil
}

// AssembleObserved combines the five scheme passes of one benchmark. The
// reference streams are deterministic and scheme-independent, so
// RefsPerNode is taken from the first scheme in paper order.
func AssembleObserved(benchmark string, passes map[config.Scheme]SchemePass) *Observed {
	obs := &Observed{
		Benchmark: benchmark,
		Banks:     make(map[config.Scheme]*tlb.MergedBank),
	}
	for _, sch := range config.Schemes() {
		p, ok := passes[sch]
		if !ok {
			continue
		}
		obs.Banks[sch] = p.Bank
		if sch == config.L2TLB {
			obs.L2NoWb = p.NoWb
		}
		if obs.RefsPerNode == 0 {
			obs.RefsPerNode = p.RefsPerNode
		}
	}
	return obs
}

// Observe runs the five scheme passes for one benchmark with the full
// paper observer grid attached.
func Observe(cfg config.Config, bench workload.Benchmark) (*Observed, error) {
	passes := make(map[config.Scheme]SchemePass)
	for _, sch := range config.Schemes() {
		pass, err := ObserveScheme(cfg, bench, sch)
		if err != nil {
			return nil, err
		}
		passes[sch] = pass
	}
	return AssembleObserved(bench.Name(), passes), nil
}

// --- Figure 8: translation misses per node vs TLB/DLB size ---

// Series is one curve of Figure 8 or 9: a label and misses-per-node by
// buffer size.
type Series struct {
	Label  string
	Points map[int]float64
}

// Figure8 extracts the fully-associative miss curves: L0..L3, V-COMA, and
// L2-TLB/no_wback.
type Figure8Result struct {
	Benchmark string
	Sizes     []int
	Series    []Series
}

// Figure8 builds the Figure 8 curves from an observed benchmark.
func Figure8(obs *Observed) Figure8Result {
	r := Figure8Result{Benchmark: obs.Benchmark, Sizes: tlb.PaperSizes}
	for _, sch := range config.Schemes() {
		r.Series = append(r.Series, curve(sch.String(), obs.Banks[sch], config.FullyAssoc))
	}
	if obs.L2NoWb != nil {
		s := curve("L2-TLB/no_wback", obs.L2NoWb, config.FullyAssoc)
		r.Series = append(r.Series, s)
	}
	return r
}

func curve(label string, bank *tlb.MergedBank, org config.TLBOrg) Series {
	s := Series{Label: label, Points: make(map[int]float64)}
	for _, n := range tlb.PaperSizes {
		s.Points[n] = bank.MissesPerNode(tlb.Spec{Entries: n, Org: org})
	}
	return s
}

// --- Figure 9: direct-mapped vs fully-associative ---

// Figure9Result holds, per scheme, the FA and DM curves.
type Figure9Result struct {
	Benchmark string
	Sizes     []int
	Series    []Series // pairs: "<scheme>" (FA) and "<scheme>/DM"
}

// Figure9 builds the Figure 9 comparison from an observed benchmark.
func Figure9(obs *Observed) Figure9Result {
	r := Figure9Result{Benchmark: obs.Benchmark, Sizes: tlb.PaperSizes}
	for _, sch := range config.Schemes() {
		r.Series = append(r.Series,
			curve(sch.String(), obs.Banks[sch], config.FullyAssoc),
			curve(sch.String()+"/DM", obs.Banks[sch], config.DirectMapped))
	}
	return r
}

// --- Table 2: miss rates per processor reference (%) ---

// Table2Sizes are the buffer sizes reported in the paper's Table 2.
var Table2Sizes = []int{8, 32, 128}

// Table2Row is one benchmark's miss rates: [size][scheme] in percent.
type Table2Row struct {
	Benchmark string
	// Rate[size][scheme] = misses / processor references * 100.
	Rate map[int]map[config.Scheme]float64
}

// Table2 computes miss rates per processor reference from an observed
// benchmark.
func Table2(obs *Observed) Table2Row {
	row := Table2Row{Benchmark: obs.Benchmark, Rate: make(map[int]map[config.Scheme]float64)}
	for _, size := range Table2Sizes {
		row.Rate[size] = make(map[config.Scheme]float64)
		for _, sch := range config.Schemes() {
			mpn := obs.Banks[sch].MissesPerNode(tlb.Spec{Entries: size, Org: config.FullyAssoc})
			row.Rate[size][sch] = 100 * mpn / obs.RefsPerNode
		}
	}
	return row
}

// --- Table 3: TLB size equivalent to an 8-entry DLB ---

// Table3Row is one benchmark's equivalent TLB sizes per scheme. A value of
// -1 means "beyond 512" (no measured size reaches the DLB's miss count).
type Table3Row struct {
	Benchmark  string
	Equivalent map[config.Scheme]float64
}

// Table3 finds, for each TLB scheme, the (log-interpolated) TLB size whose
// per-node miss count equals the 8-entry DLB's in V-COMA.
func Table3(obs *Observed) Table3Row {
	target := obs.Banks[config.VCOMA].MissesPerNode(tlb.Spec{Entries: 8, Org: config.FullyAssoc})
	row := Table3Row{Benchmark: obs.Benchmark, Equivalent: make(map[config.Scheme]float64)}
	for _, sch := range []config.Scheme{config.L0TLB, config.L1TLB, config.L2TLB, config.L3TLB} {
		row.Equivalent[sch] = equivalentSize(obs.Banks[sch], target)
	}
	return row
}

// equivalentSize log-linearly interpolates the buffer size at which the
// scheme's miss curve crosses target.
func equivalentSize(bank *tlb.MergedBank, target float64) float64 {
	sizes := append([]int(nil), tlb.PaperSizes...)
	sort.Ints(sizes)
	prevSize, prevMiss := 0, 0.0
	for i, n := range sizes {
		miss := bank.MissesPerNode(tlb.Spec{Entries: n, Org: config.FullyAssoc})
		if miss <= target {
			if i == 0 {
				return float64(n)
			}
			// Interpolate between (prevSize, prevMiss) and (n, miss).
			if prevMiss <= miss {
				return float64(n)
			}
			frac := (prevMiss - target) / (prevMiss - miss)
			return float64(prevSize) + frac*float64(n-prevSize)
		}
		prevSize, prevMiss = n, miss
	}
	return -1 // beyond the largest measured size
}
