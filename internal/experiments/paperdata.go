package experiments

import "vcoma/internal/config"

// This file records the paper's published numbers (Tables 2, 3 and 4) so
// reports can show paper-vs-measured side by side. Figures 8-11 were
// published as plots without numeric labels; for those the comparison is
// against the qualitative shape (see ExpectedShapes).

// PaperTable2 is the paper's Table 2: TLB/DLB miss rates per processor
// reference (%), [benchmark][size][scheme].
var PaperTable2 = map[string]map[int]map[config.Scheme]float64{
	"RADIX": {
		8:   {config.L0TLB: 10.8, config.L1TLB: 10.2, config.L2TLB: 6.31, config.L3TLB: 3.48, config.VCOMA: 1.84},
		32:  {config.L0TLB: 8.06, config.L1TLB: 8.03, config.L2TLB: 5.43, config.L3TLB: 3.30, config.VCOMA: 0.02},
		128: {config.L0TLB: 5.39, config.L1TLB: 5.39, config.L2TLB: 3.96, config.L3TLB: 2.67, config.VCOMA: 0.01},
	},
	"FFT": {
		8:   {config.L0TLB: 2.02, config.L1TLB: 2.01, config.L2TLB: 1.47, config.L3TLB: 0.35, config.VCOMA: 0.17},
		32:  {config.L0TLB: 0.59, config.L1TLB: 0.59, config.L2TLB: 0.54, config.L3TLB: 0.24, config.VCOMA: 0.10},
		128: {config.L0TLB: 0.11, config.L1TLB: 0.11, config.L2TLB: 0.13, config.L3TLB: 0.15, config.VCOMA: 0.03},
	},
	"FMM": {
		8:   {config.L0TLB: 8.44, config.L1TLB: 1.68, config.L2TLB: 0.80, config.L3TLB: 0.24, config.VCOMA: 0.11},
		32:  {config.L0TLB: 2.43, config.L1TLB: 0.89, config.L2TLB: 0.65, config.L3TLB: 0.21, config.VCOMA: 0.01},
		128: {config.L0TLB: 0.40, config.L1TLB: 0.36, config.L2TLB: 0.35, config.L3TLB: 0.13, config.VCOMA: 0.004},
	},
	"RAYTRACE": {
		8:   {config.L0TLB: 2.23, config.L1TLB: 1.05, config.L2TLB: 0.74, config.L3TLB: 0.22, config.VCOMA: 0.17},
		32:  {config.L0TLB: 0.68, config.L1TLB: 0.55, config.L2TLB: 0.44, config.L3TLB: 0.16, config.VCOMA: 0.10},
		128: {config.L0TLB: 0.19, config.L1TLB: 0.19, config.L2TLB: 0.18, config.L3TLB: 0.13, config.VCOMA: 0.02},
	},
	"BARNES": {
		8:   {config.L0TLB: 2.68, config.L1TLB: 1.42, config.L2TLB: 0.43, config.L3TLB: 0.06, config.VCOMA: 0.03},
		32:  {config.L0TLB: 1.13, config.L1TLB: 0.91, config.L2TLB: 0.30, config.L3TLB: 0.05, config.VCOMA: 0.0001},
		128: {config.L0TLB: 0.18, config.L1TLB: 0.16, config.L2TLB: 0.10, config.L3TLB: 0.03, config.VCOMA: 0.0001},
	},
	"OCEAN": {
		8:   {config.L0TLB: 6.45, config.L1TLB: 3.86, config.L2TLB: 3.42, config.L3TLB: 0.48, config.VCOMA: 0.14},
		32:  {config.L0TLB: 1.87, config.L1TLB: 1.32, config.L2TLB: 1.58, config.L3TLB: 0.23, config.VCOMA: 0.04},
		128: {config.L0TLB: 0.16, config.L1TLB: 0.16, config.L2TLB: 0.30, config.L3TLB: 0.12, config.VCOMA: 0.003},
	},
}

// PaperTable3 is the paper's Table 3: the TLB size equivalent to an 8-entry
// DLB, [benchmark][scheme].
var PaperTable3 = map[string]map[config.Scheme]float64{
	"RADIX":    {config.L0TLB: 360, config.L1TLB: 360, config.L2TLB: 344, config.L3TLB: 256},
	"FFT":      {config.L0TLB: 60, config.L1TLB: 60, config.L2TLB: 86, config.L3TLB: 86},
	"FMM":      {config.L0TLB: 335, config.L1TLB: 321, config.L2TLB: 347, config.L3TLB: 187},
	"RAYTRACE": {config.L0TLB: 157, config.L1TLB: 152, config.L2TLB: 144, config.L3TLB: 27},
	"BARNES":   {config.L0TLB: 327, config.L1TLB: 318, config.L2TLB: 298, config.L3TLB: 160},
	"OCEAN":    {config.L0TLB: 175, config.L1TLB: 174, config.L2TLB: 251, config.L3TLB: 113},
}

// PaperTable4 is the paper's Table 4: address translation time / total
// stall time (%), [benchmark][config].
var PaperTable4 = map[string]map[string]float64{
	"RADIX":    {"L0-TLB/8": 10.61, "DLB/8": 1.25, "L0-TLB/16": 8.93, "DLB/16": 0.04},
	"FFT":      {"L0-TLB/8": 15.24, "DLB/8": 0.88, "L0-TLB/16": 12.56, "DLB/16": 0.76},
	"FMM":      {"L0-TLB/8": 96.54, "DLB/8": 1.15, "L0-TLB/16": 59.54, "DLB/16": 0.38},
	"RAYTRACE": {"L0-TLB/8": 30.95, "DLB/8": 1.04, "L0-TLB/16": 17.46, "DLB/16": 0.82},
	"BARNES":   {"L0-TLB/8": 38.14, "DLB/8": 0.45, "L0-TLB/16": 22.12, "DLB/16": 0.01},
	"OCEAN":    {"L0-TLB/8": 21.53, "DLB/8": 0.45, "L0-TLB/16": 15.95, "DLB/16": 0.23},
}

// PaperTable1SharedMB is the paper's Table 1 shared-memory footprints (MB).
var PaperTable1SharedMB = map[string]float64{
	"RADIX": 6.12, "FFT": 51.29, "FMM": 29.23,
	"OCEAN": 15.52, "RAYTRACE": 34.86, "BARNES": 3.94,
}

// ExpectedShapes documents what "reproduced" means for the figure-style
// experiments, whose published form is a plot.
var ExpectedShapes = map[string]string{
	"fig8": "Misses per node decrease with the TLB level (L0 >= L1 >= L2/no_wback >= L3 >> V-COMA); " +
		"SLC writebacks push L2-TLB above L2-TLB/no_wback (and occasionally above L0-TLB); " +
		"RADIX's curves stay flat until large sizes; V-COMA's DLB misses are negligible at every size.",
	"fig9": "The direct-mapped/fully-associative gap is huge for L0-TLB and shrinks monotonically " +
		"through L2-TLB and L3-TLB, nearly vanishing for V-COMA's DLB.",
	"fig10": "Translation overhead is visible in every TLB/8 bar and negligible in every DLB bar; " +
		"V-COMA's remaining categories roughly match the physical COMA except RAYTRACE, where the " +
		"32 KB-aligned ray stacks inflate sync/stall time and the 4 KB V2 layout repairs it.",
	"fig11": "Memory pressure is roughly uniform across global page sets without any tuning.",
}
