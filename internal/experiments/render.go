package experiments

import (
	"fmt"
	"strings"

	"vcoma/internal/config"
	"vcoma/internal/report"
)

// RenderFigure8 renders the miss curves as an aligned table (sizes across,
// schemes down), the textual equivalent of the paper's Figure 8 panel.
func (r Figure8Result) Render(markdown bool) string {
	headers := []string{"series \\ entries"}
	for _, n := range r.Sizes {
		headers = append(headers, fmt.Sprintf("%d", n))
	}
	var rows [][]string
	for _, s := range r.Series {
		row := []string{s.Label}
		for _, n := range r.Sizes {
			row = append(row, report.Count(s.Points[n]))
		}
		rows = append(rows, row)
	}
	title := fmt.Sprintf("Figure 8 — %s: address-translation misses per node vs TLB/DLB size\n", r.Benchmark)
	if markdown {
		return title + "\n" + report.MarkdownTable(headers, rows)
	}
	return title + report.Table(headers, rows)
}

// Render renders the Figure 9 FA-vs-DM table.
func (r Figure9Result) Render(markdown bool) string {
	headers := []string{"series \\ entries"}
	for _, n := range r.Sizes {
		headers = append(headers, fmt.Sprintf("%d", n))
	}
	var rows [][]string
	for _, s := range r.Series {
		row := []string{s.Label}
		for _, n := range r.Sizes {
			row = append(row, report.Count(s.Points[n]))
		}
		rows = append(rows, row)
	}
	title := fmt.Sprintf("Figure 9 — %s: direct-mapped vs fully-associative misses per node\n", r.Benchmark)
	if markdown {
		return title + "\n" + report.MarkdownTable(headers, rows)
	}
	return title + report.Table(headers, rows)
}

// RenderTable2 renders a full Table 2 across benchmarks.
func RenderTable2(rows []Table2Row, markdown bool) string {
	headers := []string{"benchmark"}
	for _, size := range Table2Sizes {
		for _, sch := range config.Schemes() {
			headers = append(headers, fmt.Sprintf("%s/%d", shortScheme(sch), size))
		}
	}
	var out [][]string
	for _, r := range rows {
		row := []string{r.Benchmark}
		for _, size := range Table2Sizes {
			for _, sch := range config.Schemes() {
				row = append(row, report.Rate(r.Rate[size][sch]))
			}
		}
		out = append(out, row)
	}
	title := "Table 2 — TLB/DLB miss rates per processor reference (%)\n"
	if markdown {
		return title + "\n" + report.MarkdownTable(headers, out)
	}
	return title + report.Table(headers, out)
}

func shortScheme(s config.Scheme) string {
	switch s {
	case config.L0TLB:
		return "L0"
	case config.L1TLB:
		return "L1"
	case config.L2TLB:
		return "L2"
	case config.L3TLB:
		return "L3"
	case config.VCOMA:
		return "V"
	default:
		return s.String()
	}
}

// RenderTable3 renders the equivalent-TLB-size table.
func RenderTable3(rows []Table3Row, markdown bool) string {
	headers := []string{"benchmark", "L0-TLB", "L1-TLB", "L2-TLB", "L3-TLB"}
	var out [][]string
	for _, r := range rows {
		row := []string{r.Benchmark}
		for _, sch := range []config.Scheme{config.L0TLB, config.L1TLB, config.L2TLB, config.L3TLB} {
			v := r.Equivalent[sch]
			if v < 0 {
				row = append(row, ">512")
			} else {
				row = append(row, fmt.Sprintf("%.0f", v))
			}
		}
		out = append(out, row)
	}
	title := "Table 3 — TLB size equivalent to an 8-entry DLB\n"
	if markdown {
		return title + "\n" + report.MarkdownTable(headers, out)
	}
	return title + report.Table(headers, out)
}

// RenderTable4 renders the stall-ratio table.
func RenderTable4(rows []Table4Row, markdown bool) string {
	headers := []string{"system"}
	for _, r := range rows {
		headers = append(headers, r.Benchmark)
	}
	var out [][]string
	for _, size := range Table4Sizes {
		for _, name := range []string{"L0-TLB", "DLB"} {
			row := []string{fmt.Sprintf("%s/%d", name, size)}
			for _, r := range rows {
				row = append(row, fmt.Sprintf("%.2f", r.Ratio[size][name]))
			}
			out = append(out, row)
		}
	}
	title := "Table 4 — address-translation time / total stall time (%)\n"
	if markdown {
		return title + "\n" + report.MarkdownTable(headers, out)
	}
	return title + report.Table(headers, out)
}

// Render renders the Figure 10 execution-time breakdowns, both absolute
// per-processor cycles and normalized to the first configuration.
func (r Figure10Result) Render(markdown bool) string {
	headers := []string{"config", "busy", "sync", "loc-stall", "rem-stall", "translation", "total", "normalized"}
	base := 0.0
	if len(r.Breakdowns) > 0 {
		base = r.Breakdowns[0].Total()
	}
	var out [][]string
	for _, b := range r.Breakdowns {
		out = append(out, []string{
			b.Label,
			report.Count(b.Busy), report.Count(b.Sync), report.Count(b.Local),
			report.Count(b.Remote), report.Count(b.Trans), report.Count(b.Total()),
			fmt.Sprintf("%.3f", b.Total()/base),
		})
	}
	title := fmt.Sprintf("Figure 10 — %s: execution time breakdown (cycles per processor)\n", r.Benchmark)
	if markdown {
		return title + "\n" + report.MarkdownTable(headers, out)
	}
	return title + report.Table(headers, out)
}

// Render renders the Figure 11 pressure profile as an ASCII chart plus
// summary statistics.
func (r Figure11Result) Render(markdown bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11 — %s: pressure per global page set (capacity %d page slots)\n",
		r.Benchmark, r.MaxSlots)
	minV, maxV, sum := 1e18, 0.0, 0.0
	for _, v := range r.Pressure {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
		sum += v
	}
	mean := sum / float64(len(r.Pressure))
	fmt.Fprintf(&b, "global page sets: %d   pressure mean=%.3f min=%.3f max=%.3f\n",
		len(r.Pressure), mean, minV, maxV)
	if markdown {
		b.WriteString("\n```\n")
	}
	b.WriteString(report.Profile(r.Pressure, 16, 40, func(v float64) string {
		return fmt.Sprintf("%.3f", v)
	}))
	if markdown {
		b.WriteString("```\n")
	}
	return b.String()
}
