package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"vcoma/internal/config"
	"vcoma/internal/fsio"
	"vcoma/internal/report"
	"vcoma/internal/runner"
	"vcoma/internal/sim"
	"vcoma/internal/workload"
)

// MgmtSamplePages is the number of pages the suite's management study
// samples per scheme.
const MgmtSamplePages = 16

// Suite runs the paper's complete evaluation and renders a Markdown report
// with paper-vs-measured numbers for every table and figure. Passes execute
// through the experiment runner: in parallel on a bounded worker pool, with
// optional on-disk result caching. The rendered report is byte-identical
// regardless of worker count or cache state.
type Suite struct {
	Cfg        config.Config
	Scale      workload.Scale
	Benchmarks []string // nil = all six
	// Log, if non-nil, receives per-job progress lines.
	Log io.Writer
	// Jobs is the worker-pool width; 0 means GOMAXPROCS.
	Jobs int
	// CacheDir, if non-empty, enables the content-addressed result cache
	// rooted there.
	CacheDir string
	// FS is the filesystem seam the cache opens through (nil = plain
	// durable I/O); arm it with failpoints to rehearse storage faults.
	FS *fsio.FS
	// Progress, if non-nil, observes the run (overrides the reporter the
	// suite would otherwise build from Log).
	Progress *runner.Progress
	// Context, if non-nil, bounds the run; cancellation skips pending
	// passes and returns the cause.
	Context context.Context
	// Metrics instruments each freshly-computed pass and writes its time
	// series next to the cache entry (see runner.Options.Metrics). The
	// rendered report is unaffected.
	Metrics bool
	// MetricsInterval is the sampler epoch in simulated cycles; 0 uses
	// runner.DefaultMetricsInterval.
	MetricsInterval uint64
	// KeepGoing degrades gracefully instead of failing fast: every pass
	// whose dependencies succeeded still runs, failed cells are collected
	// into SuiteResult.Failures, and Run returns the partial result
	// alongside the joined error so the caller can render what survived
	// (with the failures explicitly marked) and exit nonzero.
	KeepGoing bool
	// JobTimeout bounds each pass with a context deadline (see
	// runner.Options.JobTimeout). 0 means unbounded.
	JobTimeout time.Duration
	// Retry is the transient-failure retry policy (see
	// runner.Options.Retry).
	Retry runner.Retry
	// Budget arms the simulation watchdog of every pass: cycle, event,
	// forward-progress and wall-clock limits, tripping with a structured
	// diagnostic dump. The zero budget is disarmed.
	Budget sim.Budget
	// Journal, if non-nil, records every completed pass for -resume.
	Journal *runner.Journal
	// Chaos, if non-nil, wraps every pass with the configured fault
	// injections (testing and the -chaos flag only).
	Chaos *runner.Chaos
}

// CellFailure names one failed (or skipped) cell of a partial suite run.
type CellFailure struct {
	// Section is the report section the cell belongs to ("figures 8/9 +
	// tables 2/3", "table 4", "figure 10", "figure 11", "management study").
	Section string
	// Benchmark is the cell's workload.
	Benchmark string
	// Err is the failure rendered as text.
	Err string
}

// ConfigForScale adapts a machine configuration to a workload scale by
// shrinking the attraction memory with the data sets, as the paper does.
func ConfigForScale(cfg config.Config, scale workload.Scale) config.Config {
	cfg.Geometry.AMSetBits = scale.AMSetBits()
	return cfg
}

func (s *Suite) names() []string {
	if len(s.Benchmarks) > 0 {
		return s.Benchmarks
	}
	return workload.Names()
}

// SuiteResult holds everything the full evaluation produced.
type SuiteResult struct {
	Scale    workload.Scale
	Observed map[string]*Observed
	Fig8     []Figure8Result
	Fig9     []Figure9Result
	Tab2     []Table2Row
	Tab3     []Table3Row
	Tab4     []Table4Row
	Fig10    []Figure10Result
	Fig11    []Figure11Result
	Mgmt     []MgmtRow
	// Failures lists the cells a KeepGoing run could not compute, in
	// benchmark order. A complete run has none, so complete reports are
	// byte-identical whether or not KeepGoing was set.
	Failures []CellFailure
	// Elapsed and CacheHits describe the run, not the results; neither
	// appears in the rendered report.
	Elapsed   time.Duration
	CacheHits int
}

// Partial reports whether any cell failed.
func (r *SuiteResult) Partial() bool { return len(r.Failures) > 0 }

// Plan enumerates the full evaluation as runner jobs.
func (s *Suite) Plan() (*Plan, error) {
	cfg := ConfigForScale(s.Cfg, s.Scale)
	p := NewPlan(cfg, s.Scale)
	names := s.names()
	for _, name := range names {
		if err := p.AddObserve(name); err != nil {
			return nil, err
		}
		if err := p.AddTable4(name); err != nil {
			return nil, err
		}
		if err := p.AddFigure10(name); err != nil {
			return nil, err
		}
		if err := p.AddFigure11(name); err != nil {
			return nil, err
		}
	}
	// The management study runs once, on the first benchmark.
	if len(names) > 0 {
		if err := p.AddMgmt(names[0], MgmtSamplePages); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Run executes every experiment through the runner and assembles the
// results in benchmark order. Without KeepGoing, any failure aborts the
// run and Run returns (nil, err). With KeepGoing, Run always returns the
// assembled partial result; the error is non-nil exactly when the result
// is partial (SuiteResult.Failures lists the missing cells).
func (s *Suite) Run() (*SuiteResult, error) {
	start := time.Now()
	ctx := s.Context
	if ctx == nil {
		ctx = context.Background()
	}
	ctx = WithBudget(ctx, s.Budget)
	plan, err := s.Plan()
	if err != nil {
		return nil, err
	}
	plan.ApplyChaos(s.Chaos)
	prog := s.Progress
	if prog == nil {
		prog = runner.NewProgress(s.Log)
	}
	var cache *runner.Cache
	if s.CacheDir != "" {
		cache, err = runner.OpenCacheFS(s.CacheDir, s.FS)
		if err != nil {
			return nil, err
		}
	}
	policy := runner.FailFast
	if s.KeepGoing {
		policy = runner.CollectAll
	}
	pr, runErr := plan.Run(ctx, runner.Options{
		Workers:         s.Jobs,
		Cache:           cache,
		Policy:          policy,
		Progress:        prog,
		Metrics:         s.Metrics,
		MetricsInterval: s.MetricsInterval,
		JobTimeout:      s.JobTimeout,
		Retry:           s.Retry,
		Journal:         s.Journal,
	})
	if pr == nil || (runErr != nil && !s.KeepGoing) {
		return nil, runErr
	}

	res := &SuiteResult{Scale: s.Scale, Observed: make(map[string]*Observed)}
	// cell assembles one section cell, recording a failure instead of
	// aborting when the suite is degrading gracefully.
	cell := func(section, name string, f func() error) {
		if err := f(); err != nil {
			res.Failures = append(res.Failures, CellFailure{Section: section, Benchmark: name, Err: err.Error()})
		}
	}
	names := s.names()
	for _, name := range names {
		name := name
		cell("figures 8/9 + tables 2/3", name, func() error {
			obs, err := pr.Observed(name)
			if err != nil {
				return err
			}
			res.Observed[name] = obs
			res.Fig8 = append(res.Fig8, Figure8(obs))
			res.Fig9 = append(res.Fig9, Figure9(obs))
			res.Tab2 = append(res.Tab2, Table2(obs))
			res.Tab3 = append(res.Tab3, Table3(obs))
			return nil
		})
		cell("table 4", name, func() error {
			t4, err := pr.Table4(name)
			if err != nil {
				return err
			}
			res.Tab4 = append(res.Tab4, t4)
			return nil
		})
		cell("figure 10", name, func() error {
			f10, err := pr.Figure10(name)
			if err != nil {
				return err
			}
			res.Fig10 = append(res.Fig10, f10)
			return nil
		})
		cell("figure 11", name, func() error {
			f11, err := pr.Figure11(name)
			if err != nil {
				return err
			}
			res.Fig11 = append(res.Fig11, f11)
			return nil
		})
	}
	if len(names) > 0 {
		cell("management study", names[0], func() error {
			rows, err := pr.Mgmt(names[0])
			if err != nil {
				return err
			}
			res.Mgmt = rows
			return nil
		})
	}
	res.Elapsed = time.Since(start)
	res.CacheHits = pr.Raw().CacheHits
	return res, runErr
}

// RenderMarkdown produces the full paper-vs-measured report. The output
// depends only on the results, never on how they were computed: no wall
// times, worker counts or cache statistics appear, so reruns with any
// `-jobs` value or cache state render byte-identical reports.
func (r *SuiteResult) RenderMarkdown() string {
	var b []byte
	w := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format+"\n", args...)...)
	}

	w("# Experiments — paper vs. measured")
	w("")
	w("Workload scale: **%v** (see `internal/workload.Scale`; `paper` is Table 1 of the paper).", r.Scale)
	w("All numbers regenerate with `go run ./cmd/vcoma-report -scale %v`.", r.Scale)
	w("")

	w("## Figure 8 — translation misses per node vs TLB/DLB size")
	w("")
	w("Paper shape: %s", ExpectedShapes["fig8"])
	w("")
	for _, f := range r.Fig8 {
		w("%s", f.Render(true))
	}

	w("## Figure 9 — direct-mapped vs fully-associative")
	w("")
	w("Paper shape: %s", ExpectedShapes["fig9"])
	w("")
	for _, f := range r.Fig9 {
		w("%s", f.Render(true))
	}

	w("## Table 2 — miss rates per processor reference (%%)")
	w("")
	w("%s", RenderTable2(r.Tab2, true))
	w("Paper's Table 2 for comparison:")
	w("")
	w("%s", RenderTable2(paperTable2Rows(r.names()), true))

	w("## Table 3 — TLB size equivalent to an 8-entry DLB")
	w("")
	w("%s", RenderTable3(r.Tab3, true))
	w("Paper's Table 3 for comparison:")
	w("")
	w("%s", RenderTable3(paperTable3Rows(r.names()), true))

	w("## Table 4 — translation time / total stall time (%%)")
	w("")
	w("%s", RenderTable4(r.Tab4, true))
	w("Paper's Table 4 for comparison:")
	w("")
	w("%s", renderPaperTable4(r.names()))

	w("## Figure 10 — execution time breakdown")
	w("")
	w("Paper shape: %s", ExpectedShapes["fig10"])
	w("")
	for _, f := range r.Fig10 {
		w("%s", f.Render(true))
	}

	w("## Figure 11 — global page set pressure")
	w("")
	w("Paper shape: %s", ExpectedShapes["fig11"])
	w("")
	for _, f := range r.Fig11 {
		w("%s", f.Render(true))
	}

	if len(r.Failures) > 0 {
		w("## Failed cells — PARTIAL REPORT")
		w("")
		w("The cells below could not be computed; every other section reflects")
		w("only the jobs that completed. Rerun with `-resume` to fill them in.")
		w("")
		w("| section | benchmark | error |")
		w("|---|---|---|")
		for _, f := range r.Failures {
			w("| %s | %s | %s |", f.Section, f.Benchmark, strings.ReplaceAll(f.Err, "|", "\\|"))
		}
		w("")
	}

	w("## Extensions beyond the paper's tables")
	w("")
	w("%s", RenderTagOverhead(true))
	if len(r.Mgmt) > 0 {
		w("%s", RenderMgmt(r.Mgmt, true))
		w("Protection changes and demaps in the TLB schemes interrupt every")
		w("processor (a shootdown); V-COMA updates one home node's page table")
		w("and DLB and notifies only the nodes the directory says hold blocks")
		w("of the page (paper §1 motivation, §4.3 protocol).")
		w("")
	}
	return string(b)
}

func (r *SuiteResult) names() []string {
	var out []string
	for _, f := range r.Fig8 {
		out = append(out, f.Benchmark)
	}
	return out
}

func paperTable2Rows(names []string) []Table2Row {
	var rows []Table2Row
	for _, n := range names {
		if data, ok := PaperTable2[n]; ok {
			rows = append(rows, Table2Row{Benchmark: n, Rate: data})
		}
	}
	return rows
}

func paperTable3Rows(names []string) []Table3Row {
	var rows []Table3Row
	for _, n := range names {
		if data, ok := PaperTable3[n]; ok {
			rows = append(rows, Table3Row{Benchmark: n, Equivalent: data})
		}
	}
	return rows
}

func renderPaperTable4(names []string) string {
	headers := []string{"system"}
	var present []string
	for _, n := range names {
		if _, ok := PaperTable4[n]; ok {
			headers = append(headers, n)
			present = append(present, n)
		}
	}
	var out [][]string
	for _, sys := range []string{"L0-TLB/8", "DLB/8", "L0-TLB/16", "DLB/16"} {
		row := []string{sys}
		for _, n := range present {
			row = append(row, fmt.Sprintf("%.2f", PaperTable4[n][sys]))
		}
		out = append(out, row)
	}
	return report.MarkdownTable(headers, out)
}
