package experiments

import (
	"fmt"
	"io"
	"time"

	"vcoma/internal/config"
	"vcoma/internal/report"
	"vcoma/internal/workload"
)

// Suite runs the paper's complete evaluation and renders a Markdown report
// with paper-vs-measured numbers for every table and figure.
type Suite struct {
	Cfg        config.Config
	Scale      workload.Scale
	Benchmarks []string // nil = all six
	// Log, if non-nil, receives progress lines.
	Log io.Writer
}

func (s *Suite) logf(format string, args ...any) {
	if s.Log != nil {
		fmt.Fprintf(s.Log, format+"\n", args...)
	}
}

// ConfigForScale adapts a machine configuration to a workload scale by
// shrinking the attraction memory with the data sets, as the paper does.
func ConfigForScale(cfg config.Config, scale workload.Scale) config.Config {
	cfg.Geometry.AMSetBits = scale.AMSetBits()
	return cfg
}

func (s *Suite) names() []string {
	if len(s.Benchmarks) > 0 {
		return s.Benchmarks
	}
	return workload.Names()
}

// SuiteResult holds everything the full evaluation produced.
type SuiteResult struct {
	Scale    workload.Scale
	Observed map[string]*Observed
	Fig8     []Figure8Result
	Fig9     []Figure9Result
	Tab2     []Table2Row
	Tab3     []Table3Row
	Tab4     []Table4Row
	Fig10    []Figure10Result
	Fig11    []Figure11Result
	Mgmt     []MgmtRow
	Elapsed  time.Duration
}

// Run executes every experiment.
func (s *Suite) Run() (*SuiteResult, error) {
	start := time.Now()
	cfg := ConfigForScale(s.Cfg, s.Scale)
	res := &SuiteResult{Scale: s.Scale, Observed: make(map[string]*Observed)}
	for _, name := range s.names() {
		bench, err := workload.ByName(name, s.Scale)
		if err != nil {
			return nil, err
		}

		s.logf("[%s] observer passes (5 schemes)...", name)
		obs, err := Observe(cfg, bench)
		if err != nil {
			return nil, err
		}
		res.Observed[name] = obs
		res.Fig8 = append(res.Fig8, Figure8(obs))
		res.Fig9 = append(res.Fig9, Figure9(obs))
		res.Tab2 = append(res.Tab2, Table2(obs))
		res.Tab3 = append(res.Tab3, Table3(obs))

		s.logf("[%s] timed passes (Table 4)...", name)
		t4, err := Table4(cfg, bench)
		if err != nil {
			return nil, err
		}
		res.Tab4 = append(res.Tab4, t4)

		s.logf("[%s] timed passes (Figure 10)...", name)
		f10, err := Figure10(cfg, name, s.Scale)
		if err != nil {
			return nil, err
		}
		res.Fig10 = append(res.Fig10, f10)

		f11, err := Figure11(cfg, bench)
		if err != nil {
			return nil, err
		}
		res.Fig11 = append(res.Fig11, f11)
	}
	// The management study runs once, on the first benchmark.
	if len(s.names()) > 0 {
		bench, err := workload.ByName(s.names()[0], s.Scale)
		if err == nil {
			s.logf("[%s] management study (5 schemes)...", bench.Name())
			if rows, err := MgmtStudy(cfg, bench, 16); err == nil {
				res.Mgmt = rows
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// RenderMarkdown produces the full paper-vs-measured report.
func (r *SuiteResult) RenderMarkdown() string {
	var b []byte
	w := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format+"\n", args...)...)
	}

	w("# Experiments — paper vs. measured")
	w("")
	w("Workload scale: **%v** (see `internal/workload.Scale`; `paper` is Table 1 of the paper).", r.Scale)
	w("Suite wall time: %v. All numbers regenerate with `go run ./cmd/vcoma-report -scale %v`.", r.Elapsed.Round(time.Second), r.Scale)
	w("")

	w("## Figure 8 — translation misses per node vs TLB/DLB size")
	w("")
	w("Paper shape: %s", ExpectedShapes["fig8"])
	w("")
	for _, f := range r.Fig8 {
		w("%s", f.Render(true))
	}

	w("## Figure 9 — direct-mapped vs fully-associative")
	w("")
	w("Paper shape: %s", ExpectedShapes["fig9"])
	w("")
	for _, f := range r.Fig9 {
		w("%s", f.Render(true))
	}

	w("## Table 2 — miss rates per processor reference (%%)")
	w("")
	w("%s", RenderTable2(r.Tab2, true))
	w("Paper's Table 2 for comparison:")
	w("")
	w("%s", RenderTable2(paperTable2Rows(r.names()), true))

	w("## Table 3 — TLB size equivalent to an 8-entry DLB")
	w("")
	w("%s", RenderTable3(r.Tab3, true))
	w("Paper's Table 3 for comparison:")
	w("")
	w("%s", RenderTable3(paperTable3Rows(r.names()), true))

	w("## Table 4 — translation time / total stall time (%%)")
	w("")
	w("%s", RenderTable4(r.Tab4, true))
	w("Paper's Table 4 for comparison:")
	w("")
	w("%s", renderPaperTable4(r.names()))

	w("## Figure 10 — execution time breakdown")
	w("")
	w("Paper shape: %s", ExpectedShapes["fig10"])
	w("")
	for _, f := range r.Fig10 {
		w("%s", f.Render(true))
	}

	w("## Figure 11 — global page set pressure")
	w("")
	w("Paper shape: %s", ExpectedShapes["fig11"])
	w("")
	for _, f := range r.Fig11 {
		w("%s", f.Render(true))
	}

	w("## Extensions beyond the paper's tables")
	w("")
	w("%s", RenderTagOverhead(true))
	if len(r.Mgmt) > 0 {
		w("%s", RenderMgmt(r.Mgmt, true))
		w("Protection changes and demaps in the TLB schemes interrupt every")
		w("processor (a shootdown); V-COMA updates one home node's page table")
		w("and DLB and notifies only the nodes the directory says hold blocks")
		w("of the page (paper §1 motivation, §4.3 protocol).")
		w("")
	}
	return string(b)
}

func (r *SuiteResult) names() []string {
	var out []string
	for _, f := range r.Fig8 {
		out = append(out, f.Benchmark)
	}
	return out
}

func paperTable2Rows(names []string) []Table2Row {
	var rows []Table2Row
	for _, n := range names {
		if data, ok := PaperTable2[n]; ok {
			rows = append(rows, Table2Row{Benchmark: n, Rate: data})
		}
	}
	return rows
}

func paperTable3Rows(names []string) []Table3Row {
	var rows []Table3Row
	for _, n := range names {
		if data, ok := PaperTable3[n]; ok {
			rows = append(rows, Table3Row{Benchmark: n, Equivalent: data})
		}
	}
	return rows
}

func renderPaperTable4(names []string) string {
	headers := []string{"system"}
	var present []string
	for _, n := range names {
		if _, ok := PaperTable4[n]; ok {
			headers = append(headers, n)
			present = append(present, n)
		}
	}
	var out [][]string
	for _, sys := range []string{"L0-TLB/8", "DLB/8", "L0-TLB/16", "DLB/16"} {
		row := []string{sys}
		for _, n := range present {
			row = append(row, fmt.Sprintf("%.2f", PaperTable4[n][sys]))
		}
		out = append(out, row)
	}
	return report.MarkdownTable(headers, out)
}
