package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"vcoma/internal/addr"
	"vcoma/internal/prng"
)

func TestRecordReplayRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: Read, Addr: 0x123456},
		{Kind: Write, Addr: 0xABCDEF0},
		{Kind: Compute, Cycles: 999},
		{Kind: LockAcquire, ID: 17},
		{Kind: LockRelease, ID: 17},
		{Kind: Barrier, ID: 3},
	}
	var buf bytes.Buffer
	rec, err := NewRecorder(NewSliceStream(events), &buf)
	if err != nil {
		t.Fatal(err)
	}
	got := Drain(rec)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) || rec.Count() != uint64(len(events)) {
		t.Fatalf("recorder passed %d events, counted %d", len(got), rec.Count())
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := Drain(rd)
	if rd.Err() != nil {
		t.Fatal(rd.Err())
	}
	if len(replayed) != len(events) {
		t.Fatalf("replayed %d of %d events", len(replayed), len(events))
	}
	for i := range events {
		if replayed[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, replayed[i], events[i])
		}
	}
}

func TestRecordReplayProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, n uint16) bool {
		rng := prng.New(seed)
		count := int(n%500) + 1
		events := make([]Event, count)
		for i := range events {
			switch rng.Intn(6) {
			case 0:
				events[i] = Event{Kind: Read, Addr: addr.Virtual(rng.Uint64() >> 8)}
			case 1:
				events[i] = Event{Kind: Write, Addr: addr.Virtual(rng.Uint64() >> 8)}
			case 2:
				events[i] = Event{Kind: Compute, Cycles: rng.Uint64n(1 << 30)}
			case 3:
				events[i] = Event{Kind: LockAcquire, ID: rng.Intn(1000)}
			case 4:
				events[i] = Event{Kind: LockRelease, ID: rng.Intn(1000)}
			default:
				events[i] = Event{Kind: Barrier, ID: rng.Intn(1000)}
			}
		}
		var buf bytes.Buffer
		rec, err := NewRecorder(NewSliceStream(events), &buf)
		if err != nil {
			return false
		}
		Drain(rec)
		if rec.Close() != nil {
			return false
		}
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		replayed := Drain(rd)
		if rd.Err() != nil || len(replayed) != len(events) {
			return false
		}
		for i := range events {
			if replayed[i] != events[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("VC"))); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("VCOMATR\x63"))); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReaderTruncatedEvent(t *testing.T) {
	var buf bytes.Buffer
	rec, _ := NewRecorder(NewSliceStream([]Event{{Kind: Read, Addr: 0xFFFFFFFF}}), &buf)
	Drain(rec)
	rec.Close()
	full := buf.Bytes()
	rd, err := NewReader(bytes.NewReader(full[:len(full)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if evs := Drain(rd); len(evs) != 0 {
		t.Fatalf("decoded %d events from a truncated trace", len(evs))
	}
	if rd.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

func TestReaderUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("VCOMATR\x01")
	buf.WriteByte(200) // bogus kind
	buf.WriteByte(0)
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	Drain(rd)
	if rd.Err() == nil {
		t.Fatal("unknown kind not reported")
	}
}
