// Package trace defines the event vocabulary flowing from workloads to the
// simulation engine: shared-memory reads and writes, compute delays, and the
// synchronization operations (locks and barriers) that the engine arbitrates.
//
// A workload is a set of per-processor event Streams. Only shared-data
// accesses are emitted, matching the paper's methodology (§5.1): private
// stack/instruction traffic is folded into Compute events.
package trace

import (
	"fmt"

	"vcoma/internal/addr"
)

// Kind discriminates event types.
type Kind uint8

const (
	// Read is a shared-data load of up to one FLC block.
	Read Kind = iota
	// Write is a shared-data store of up to one FLC block.
	Write
	// Compute advances the processor's clock by Cycles without touching
	// shared memory (models private computation).
	Compute
	// LockAcquire blocks until the lock named by ID is free, then takes it.
	LockAcquire
	// LockRelease frees the lock named by ID.
	LockRelease
	// Barrier blocks until every processor in the machine has arrived at
	// the same barrier event.
	Barrier
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Compute:
		return "compute"
	case LockAcquire:
		return "lock"
	case LockRelease:
		return "unlock"
	case Barrier:
		return "barrier"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one step of a processor's program.
type Event struct {
	Kind   Kind
	Addr   addr.Virtual // Read, Write
	Cycles uint64       // Compute
	ID     int          // LockAcquire, LockRelease, Barrier
}

// Stream produces a processor's events in program order. Next returns
// ok=false when the program has finished. Streams are single-consumer.
type Stream interface {
	Next() (Event, bool)
}

// BatchStream is optionally implemented by streams that can hand out whole
// event batches. Consumers on hot paths (the simulation engine) pull
// batches to amortize per-event interface dispatch; a returned slice is
// valid only until the next NextBatch or Next call on the same stream.
// NextBatch may return empty slices; ok=false means the program finished.
type BatchStream interface {
	NextBatch() ([]Event, bool)
}

// Closer is implemented by streams holding resources (generator goroutines).
type Closer interface {
	Close()
}

// CloseStream releases s's resources if it has any.
func CloseStream(s Stream) {
	if c, ok := s.(Closer); ok {
		c.Close()
	}
}

// SliceStream replays a pre-built event slice.
type SliceStream struct {
	events []Event
	pos    int
}

// NewSliceStream returns a Stream over events.
func NewSliceStream(events []Event) *SliceStream {
	return &SliceStream{events: events}
}

// Next implements Stream.
func (s *SliceStream) Next() (Event, bool) {
	if s.pos >= len(s.events) {
		return Event{}, false
	}
	e := s.events[s.pos]
	s.pos++
	return e, true
}

// NextBatch implements BatchStream: the whole unread remainder at once.
func (s *SliceStream) NextBatch() ([]Event, bool) {
	if s.pos >= len(s.events) {
		return nil, false
	}
	b := s.events[s.pos:]
	s.pos = len(s.events)
	return b, true
}

// Remaining returns how many events have not been consumed yet.
func (s *SliceStream) Remaining() int { return len(s.events) - s.pos }

// Drain consumes a stream to completion and returns all events. Intended for
// tests and analysis, not for full-size runs.
func Drain(s Stream) []Event {
	var out []Event
	for {
		e, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// Stats summarises an event stream.
type Stats struct {
	Reads, Writes       uint64
	ComputeEvents       uint64
	ComputeCycles       uint64
	Locks, Unlocks      uint64
	Barriers            uint64
	DistinctPages       int
	DistinctAMBlocks    int
	FirstAddr, LastAddr addr.Virtual
}

// MemoryRefs returns the total number of shared-memory references.
func (st Stats) MemoryRefs() uint64 { return st.Reads + st.Writes }

// Measure drains s and computes its statistics using geometry g for page and
// block accounting.
func Measure(s Stream, g addr.Geometry) Stats {
	var st Stats
	pages := make(map[addr.PageNum]struct{})
	blocks := make(map[addr.Virtual]struct{})
	first := true
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		switch e.Kind {
		case Read:
			st.Reads++
		case Write:
			st.Writes++
		case Compute:
			st.ComputeEvents++
			st.ComputeCycles += e.Cycles
		case LockAcquire:
			st.Locks++
		case LockRelease:
			st.Unlocks++
		case Barrier:
			st.Barriers++
		}
		if e.Kind == Read || e.Kind == Write {
			pages[g.Page(e.Addr)] = struct{}{}
			blocks[g.Block(e.Addr)] = struct{}{}
			if first {
				st.FirstAddr = e.Addr
				first = false
			}
			st.LastAddr = e.Addr
		}
	}
	st.DistinctPages = len(pages)
	st.DistinctAMBlocks = len(blocks)
	return st
}
