package trace

import (
	"testing"

	"vcoma/internal/addr"
)

func testGeometry() addr.Geometry {
	return addr.Geometry{NodeBits: 2, PageBits: 8, AMBlockBits: 5, AMSetBits: 6, AMAssocBits: 1}
}

func TestSliceStream(t *testing.T) {
	events := []Event{
		{Kind: Read, Addr: 0x100},
		{Kind: Write, Addr: 0x200},
		{Kind: Barrier, ID: 3},
	}
	s := NewSliceStream(events)
	for i, want := range events {
		got, ok := s.Next()
		if !ok || got != want {
			t.Fatalf("event %d: got %+v ok=%v", i, got, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream did not end")
	}
	if s.Remaining() != 0 {
		t.Fatalf("remaining = %d", s.Remaining())
	}
}

func TestGeneratorOrderAndCompletion(t *testing.T) {
	const n = 10000 // force multiple batches
	g := NewGenerator(func(e *Emitter) {
		for i := 0; i < n; i++ {
			e.Read(addr.Virtual(i))
		}
	})
	for i := 0; i < n; i++ {
		ev, ok := g.Next()
		if !ok {
			t.Fatalf("stream ended early at %d", i)
		}
		if ev.Kind != Read || ev.Addr != addr.Virtual(i) {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
	}
	if _, ok := g.Next(); ok {
		t.Fatal("stream did not end after all events")
	}
	g.Close() // safe after drain
}

func TestGeneratorEarlyClose(t *testing.T) {
	done := make(chan struct{})
	g := NewGenerator(func(e *Emitter) {
		defer close(done)
		for i := 0; ; i++ {
			e.Read(addr.Virtual(i))
		}
	})
	if _, ok := g.Next(); !ok {
		t.Fatal("no first event")
	}
	g.Close()
	<-done // the producer goroutine must unwind
	g.Close()
}

func TestGeneratorPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("program panic did not propagate")
		}
	}()
	g := NewGenerator(func(e *Emitter) {
		panic("workload bug")
	})
	for {
		if _, ok := g.Next(); !ok {
			return
		}
	}
}

func TestEmitterKinds(t *testing.T) {
	g := NewGenerator(func(e *Emitter) {
		e.Read(1)
		e.Write(2)
		e.Compute(5)
		e.Compute(0) // dropped
		e.Lock(7)
		e.Unlock(7)
		e.Barrier(9)
	})
	events := Drain(g)
	wantKinds := []Kind{Read, Write, Compute, LockAcquire, LockRelease, Barrier}
	if len(events) != len(wantKinds) {
		t.Fatalf("got %d events, want %d", len(events), len(wantKinds))
	}
	for i, k := range wantKinds {
		if events[i].Kind != k {
			t.Fatalf("event %d kind %v, want %v", i, events[i].Kind, k)
		}
	}
	if events[2].Cycles != 5 || events[3].ID != 7 || events[5].ID != 9 {
		t.Fatal("event payloads wrong")
	}
}

func TestRanges(t *testing.T) {
	g := NewGenerator(func(e *Emitter) {
		e.ReadRange(0x1000, 128, 32)
		e.WriteRange(0x2000, 64, 16)
	})
	events := Drain(g)
	if len(events) != 4+4 {
		t.Fatalf("got %d events", len(events))
	}
	for i := 0; i < 4; i++ {
		if events[i].Kind != Read || events[i].Addr != addr.Virtual(0x1000+32*i) {
			t.Fatalf("read %d: %+v", i, events[i])
		}
	}
	for i := 0; i < 4; i++ {
		if events[4+i].Kind != Write || events[4+i].Addr != addr.Virtual(0x2000+16*i) {
			t.Fatalf("write %d: %+v", i, events[4+i])
		}
	}
}

func TestZeroStridePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero stride did not panic")
		}
	}()
	e := &Emitter{gen: NewGenerator(func(*Emitter) {})}
	e.ReadRange(0, 10, 0)
}

func TestMeasure(t *testing.T) {
	g := testGeometry()
	s := NewSliceStream([]Event{
		{Kind: Read, Addr: 0x100},
		{Kind: Read, Addr: 0x104}, // same page, same block
		{Kind: Write, Addr: 0x200},
		{Kind: Compute, Cycles: 11},
		{Kind: LockAcquire, ID: 1},
		{Kind: LockRelease, ID: 1},
		{Kind: Barrier, ID: 0},
	})
	st := Measure(s, g)
	if st.Reads != 2 || st.Writes != 1 || st.MemoryRefs() != 3 {
		t.Fatalf("refs wrong: %+v", st)
	}
	if st.ComputeEvents != 1 || st.ComputeCycles != 11 {
		t.Fatalf("compute wrong: %+v", st)
	}
	if st.Locks != 1 || st.Unlocks != 1 || st.Barriers != 1 {
		t.Fatalf("sync wrong: %+v", st)
	}
	if st.DistinctPages != 2 || st.DistinctAMBlocks != 2 {
		t.Fatalf("distinct wrong: %+v", st)
	}
	if st.FirstAddr != 0x100 || st.LastAddr != 0x200 {
		t.Fatalf("first/last wrong: %+v", st)
	}
}
