package trace

import "vcoma/internal/addr"

// generatorBatch is the number of events buffered per channel send. Large
// enough that channel synchronization is negligible per event, small enough
// that short per-processor streams (a few thousand events at test scale)
// don't pay for zeroing mostly-unused 128KB batches on every machine build.
const generatorBatch = 1024

// Generator adapts a straight-line program function into a pull-based
// Stream. The program runs in its own goroutine and emits events through an
// Emitter; the consumer pulls them with Next. Abandoning a Generator without
// draining it requires Close, which unwinds the producer goroutine.
type Generator struct {
	ch   chan []Event
	done chan struct{}
	// free carries spent batches back to the producer for reuse: the
	// consumer finishes a batch, hands the backing array over, and the
	// producer refills it instead of allocating. Steady-state generation
	// therefore keeps a constant number of live batches regardless of
	// stream length.
	free   chan []Event
	batch  []Event
	pos    int
	closed bool
	// failure carries a panic raised by the program function; it is
	// re-raised on the consumer side by Next, so a workload bug surfaces
	// in the simulation goroutine instead of killing the process from an
	// anonymous goroutine.
	failure any
}

// stopGenerator is the sentinel panic value used to unwind a producer
// goroutine when the consumer closes the stream early.
type stopGenerator struct{}

// NewGenerator starts program in a goroutine and returns a Stream of the
// events it emits. The program function must emit all its events through the
// provided Emitter and then return.
func NewGenerator(program func(*Emitter)) *Generator {
	g := &Generator{
		ch:   make(chan []Event, 4),
		free: make(chan []Event, 4),
		done: make(chan struct{}),
	}
	go func() {
		defer close(g.ch)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopGenerator); !ok {
					g.failure = r // real panic: hand to the consumer
				}
			}
		}()
		e := &Emitter{gen: g, batch: make([]Event, 0, generatorBatch)}
		program(e)
		e.finish()
	}()
	return g
}

// Next implements Stream. If the program function panicked, Next re-raises
// that panic once the buffered events are drained.
func (g *Generator) Next() (Event, bool) {
	for g.pos >= len(g.batch) {
		if g.batch != nil {
			// The batch is fully consumed (events are returned by value):
			// recycle its backing array to the producer. Drop it if the
			// free list is full.
			select {
			case g.free <- g.batch[:0]:
			default:
			}
			g.batch = nil
		}
		batch, ok := <-g.ch
		if !ok {
			if g.failure != nil {
				panic(g.failure)
			}
			return Event{}, false
		}
		g.batch, g.pos = batch, 0
	}
	e := g.batch[g.pos]
	g.pos++
	return e, true
}

// NextBatch implements BatchStream: it returns the unread remainder of the
// current batch, or pulls the next one — one channel operation per ~4096
// events instead of per-event interface calls. The returned slice is valid
// only until the next NextBatch or Next call (its backing array is then
// recycled to the producer). Re-raises a producer panic like Next.
func (g *Generator) NextBatch() ([]Event, bool) {
	if g.pos < len(g.batch) {
		b := g.batch[g.pos:]
		g.pos = len(g.batch)
		return b, true
	}
	if g.batch != nil {
		select {
		case g.free <- g.batch[:0]:
		default:
		}
		g.batch, g.pos = nil, 0
	}
	batch, ok := <-g.ch
	if !ok {
		if g.failure != nil {
			panic(g.failure)
		}
		return nil, false
	}
	g.batch, g.pos = batch, len(batch)
	return batch, true
}

// Close unwinds the producer goroutine. Safe to call multiple times and
// after the stream is drained.
func (g *Generator) Close() {
	if g.closed {
		return
	}
	g.closed = true
	close(g.done)
	// Drain any in-flight batches so the producer's pending send completes
	// and it observes done on its next flush.
	for range g.ch {
	}
}

// Emitter is the API workload programs use to emit events. It buffers events
// into batches; flushes happen automatically.
type Emitter struct {
	gen   *Generator
	batch []Event
}

func (e *Emitter) emit(ev Event) {
	e.batch = append(e.batch, ev)
	if len(e.batch) >= generatorBatch {
		e.flush()
	}
}

func (e *Emitter) flush() {
	if len(e.batch) == 0 {
		return
	}
	batch := e.batch
	select {
	case e.batch = <-e.gen.free:
	default:
		e.batch = make([]Event, 0, generatorBatch)
	}
	e.send(batch)
}

// finish hands off the last partial batch when the program returns; unlike
// flush it does not take a replacement batch nobody will fill.
func (e *Emitter) finish() {
	if len(e.batch) == 0 {
		return
	}
	e.send(e.batch)
	e.batch = nil
}

func (e *Emitter) send(batch []Event) {
	select {
	case e.gen.ch <- batch:
	case <-e.gen.done:
		panic(stopGenerator{})
	}
}

// Read emits a shared-data load at v.
func (e *Emitter) Read(v addr.Virtual) { e.emit(Event{Kind: Read, Addr: v}) }

// Write emits a shared-data store at v.
func (e *Emitter) Write(v addr.Virtual) { e.emit(Event{Kind: Write, Addr: v}) }

// Compute emits a compute delay of the given cycles; zero-cycle delays are
// dropped.
func (e *Emitter) Compute(cycles uint64) {
	if cycles == 0 {
		return
	}
	e.emit(Event{Kind: Compute, Cycles: cycles})
}

// Lock emits a lock acquisition of lock id.
func (e *Emitter) Lock(id int) { e.emit(Event{Kind: LockAcquire, ID: id}) }

// Unlock emits a release of lock id.
func (e *Emitter) Unlock(id int) { e.emit(Event{Kind: LockRelease, ID: id}) }

// Barrier emits arrival at barrier id.
func (e *Emitter) Barrier(id int) { e.emit(Event{Kind: Barrier, ID: id}) }

// ReadRange emits loads covering [base, base+bytes) at stride-sized steps.
// Use the FLC block size as stride to model a sequential scan.
func (e *Emitter) ReadRange(base addr.Virtual, bytes, stride uint64) {
	if stride == 0 {
		panic("trace: zero stride")
	}
	for off := uint64(0); off < bytes; off += stride {
		e.Read(base + addr.Virtual(off))
	}
}

// WriteRange emits stores covering [base, base+bytes) at stride-sized steps.
func (e *Emitter) WriteRange(base addr.Virtual, bytes, stride uint64) {
	if stride == 0 {
		panic("trace: zero stride")
	}
	for off := uint64(0); off < bytes; off += stride {
		e.Write(base + addr.Virtual(off))
	}
}
