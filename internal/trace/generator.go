package trace

import "vcoma/internal/addr"

// generatorBatch is the number of events buffered per channel send. Large
// enough that channel synchronization is negligible per event.
const generatorBatch = 4096

// Generator adapts a straight-line program function into a pull-based
// Stream. The program runs in its own goroutine and emits events through an
// Emitter; the consumer pulls them with Next. Abandoning a Generator without
// draining it requires Close, which unwinds the producer goroutine.
type Generator struct {
	ch     chan []Event
	done   chan struct{}
	batch  []Event
	pos    int
	closed bool
	// failure carries a panic raised by the program function; it is
	// re-raised on the consumer side by Next, so a workload bug surfaces
	// in the simulation goroutine instead of killing the process from an
	// anonymous goroutine.
	failure any
}

// stopGenerator is the sentinel panic value used to unwind a producer
// goroutine when the consumer closes the stream early.
type stopGenerator struct{}

// NewGenerator starts program in a goroutine and returns a Stream of the
// events it emits. The program function must emit all its events through the
// provided Emitter and then return.
func NewGenerator(program func(*Emitter)) *Generator {
	g := &Generator{
		ch:   make(chan []Event, 4),
		done: make(chan struct{}),
	}
	go func() {
		defer close(g.ch)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopGenerator); !ok {
					g.failure = r // real panic: hand to the consumer
				}
			}
		}()
		e := &Emitter{gen: g}
		program(e)
		e.flush()
	}()
	return g
}

// Next implements Stream. If the program function panicked, Next re-raises
// that panic once the buffered events are drained.
func (g *Generator) Next() (Event, bool) {
	for g.pos >= len(g.batch) {
		batch, ok := <-g.ch
		if !ok {
			if g.failure != nil {
				panic(g.failure)
			}
			return Event{}, false
		}
		g.batch, g.pos = batch, 0
	}
	e := g.batch[g.pos]
	g.pos++
	return e, true
}

// Close unwinds the producer goroutine. Safe to call multiple times and
// after the stream is drained.
func (g *Generator) Close() {
	if g.closed {
		return
	}
	g.closed = true
	close(g.done)
	// Drain any in-flight batches so the producer's pending send completes
	// and it observes done on its next flush.
	for range g.ch {
	}
}

// Emitter is the API workload programs use to emit events. It buffers events
// into batches; flushes happen automatically.
type Emitter struct {
	gen   *Generator
	batch []Event
}

func (e *Emitter) emit(ev Event) {
	e.batch = append(e.batch, ev)
	if len(e.batch) >= generatorBatch {
		e.flush()
	}
}

func (e *Emitter) flush() {
	if len(e.batch) == 0 {
		return
	}
	batch := e.batch
	e.batch = make([]Event, 0, generatorBatch)
	select {
	case e.gen.ch <- batch:
	case <-e.gen.done:
		panic(stopGenerator{})
	}
}

// Read emits a shared-data load at v.
func (e *Emitter) Read(v addr.Virtual) { e.emit(Event{Kind: Read, Addr: v}) }

// Write emits a shared-data store at v.
func (e *Emitter) Write(v addr.Virtual) { e.emit(Event{Kind: Write, Addr: v}) }

// Compute emits a compute delay of the given cycles; zero-cycle delays are
// dropped.
func (e *Emitter) Compute(cycles uint64) {
	if cycles == 0 {
		return
	}
	e.emit(Event{Kind: Compute, Cycles: cycles})
}

// Lock emits a lock acquisition of lock id.
func (e *Emitter) Lock(id int) { e.emit(Event{Kind: LockAcquire, ID: id}) }

// Unlock emits a release of lock id.
func (e *Emitter) Unlock(id int) { e.emit(Event{Kind: LockRelease, ID: id}) }

// Barrier emits arrival at barrier id.
func (e *Emitter) Barrier(id int) { e.emit(Event{Kind: Barrier, ID: id}) }

// ReadRange emits loads covering [base, base+bytes) at stride-sized steps.
// Use the FLC block size as stride to model a sequential scan.
func (e *Emitter) ReadRange(base addr.Virtual, bytes, stride uint64) {
	if stride == 0 {
		panic("trace: zero stride")
	}
	for off := uint64(0); off < bytes; off += stride {
		e.Read(base + addr.Virtual(off))
	}
}

// WriteRange emits stores covering [base, base+bytes) at stride-sized steps.
func (e *Emitter) WriteRange(base addr.Virtual, bytes, stride uint64) {
	if stride == 0 {
		panic("trace: zero stride")
	}
	for off := uint64(0); off < bytes; off += stride {
		e.Write(base + addr.Virtual(off))
	}
}
