package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"vcoma/internal/addr"
)

// This file implements trace capture and replay: any Stream can be recorded
// to a compact binary format and replayed later, which decouples workload
// generation from simulation (the classic trace-driven methodology) and
// lets users feed their own traces to the machine without writing a
// generator.
//
// Format: a 12-byte header ("VCOMATRACE" + version), then one record per
// event: a kind byte followed by a varint payload (address for memory
// events, cycles for compute, id for synchronization events).

const (
	traceMagic   = "VCOMATR"
	traceVersion = 1
)

// Recorder wraps a Stream, copying every event to a writer as it is
// consumed. Close the recorder (not just the underlying stream) to flush.
type Recorder struct {
	inner Stream
	w     *bufio.Writer
	err   error
	count uint64
}

// NewRecorder returns a stream that records everything read through it.
func NewRecorder(inner Stream, w io.Writer) (*Recorder, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return nil, err
	}
	return &Recorder{inner: inner, w: bw}, nil
}

// Next implements Stream.
func (r *Recorder) Next() (Event, bool) {
	ev, ok := r.inner.Next()
	if !ok {
		return ev, false
	}
	if r.err == nil {
		r.err = writeEvent(r.w, ev)
		if r.err == nil {
			r.count++
		}
	}
	return ev, true
}

// Count returns how many events have been recorded.
func (r *Recorder) Count() uint64 { return r.count }

// Close flushes the recording and releases the inner stream. It reports
// any write error encountered during recording.
func (r *Recorder) Close() error {
	CloseStream(r.inner)
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

func writeEvent(w *bufio.Writer, ev Event) error {
	if err := w.WriteByte(byte(ev.Kind)); err != nil {
		return err
	}
	var payload uint64
	switch ev.Kind {
	case Read, Write:
		payload = uint64(ev.Addr)
	case Compute:
		payload = ev.Cycles
	case LockAcquire, LockRelease, Barrier:
		payload = uint64(ev.ID)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], payload)
	_, err := w.Write(buf[:n])
	return err
}

// Reader replays a recorded trace as a Stream.
type Reader struct {
	r    *bufio.Reader
	err  error
	done bool
}

// NewReader opens a recorded trace. It validates the header eagerly.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(traceMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head[:len(traceMagic)]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", head[:len(traceMagic)])
	}
	if head[len(traceMagic)] != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", head[len(traceMagic)])
	}
	return &Reader{r: br}, nil
}

// Next implements Stream.
func (rd *Reader) Next() (Event, bool) {
	if rd.done || rd.err != nil {
		return Event{}, false
	}
	kindByte, err := rd.r.ReadByte()
	if err == io.EOF {
		rd.done = true
		return Event{}, false
	}
	if err != nil {
		rd.err = err
		rd.done = true
		return Event{}, false
	}
	payload, err := binary.ReadUvarint(rd.r)
	if err != nil {
		rd.err = fmt.Errorf("trace: truncated event: %w", err)
		rd.done = true
		return Event{}, false
	}
	ev := Event{Kind: Kind(kindByte)}
	switch ev.Kind {
	case Read, Write:
		ev.Addr = addr.Virtual(payload)
	case Compute:
		ev.Cycles = payload
	case LockAcquire, LockRelease, Barrier:
		ev.ID = int(payload)
	default:
		rd.err = fmt.Errorf("trace: unknown event kind %d", kindByte)
		rd.done = true
		return Event{}, false
	}
	return ev, true
}

// Err returns the first decode error, if any (a clean EOF is not an error).
func (rd *Reader) Err() error { return rd.err }
