package check

import (
	"testing"

	"vcoma/internal/check/fuzzgen"
	"vcoma/internal/config"
	"vcoma/internal/workload"
)

// TestParallelParityFuzzWorkloads checks the tentpole claim on derived
// random workloads: every scheme, every shard count, byte-identical
// summaries.
func TestParallelParityFuzzWorkloads(t *testing.T) {
	cases := []struct {
		seed, scenario, size uint64
	}{
		{1, 0, 64},
		{2, 1, 48},
		{3, 3, 96},
		{5, 4, 32},
	}
	for _, c := range cases {
		w := fuzzgen.Derive(c.seed, c.scenario, c.size)
		if err := ParallelDifferential(config.SmallTest(), w, []int{2, 4, 8}); err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
	}
}

// TestParallelParityBenchmarks checks parity on the real SPLASH-2 kernels
// at test scale, one representative scheme pair per run to keep it fast:
// the physically-indexed extreme (L0-TLB) and the paper's V-COMA.
func TestParallelParityBenchmarks(t *testing.T) {
	for _, name := range []string{"RADIX", "FFT", "OCEAN"} {
		b, err := workload.ByName(name, workload.ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		for _, sch := range []config.Scheme{config.L0TLB, config.L2TLB, config.VCOMA} {
			cfg := config.SmallTest().WithScheme(sch)
			if err := VerifyParallelParity(cfg, b, []int{2, 4, 8}); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}
