// Package check is the simulator's correctness-verification subsystem. The
// paper's whole evaluation rests on one unstated invariant: all five
// translation schemes execute the same architectural computation and differ
// only in timing. This package makes that an executable property, in three
// layers:
//
//  1. a runtime invariant Checker, attached through the protocol's event
//     sink and the machine's access-checker seam, which validates the
//     COMA-F safety properties after every reference and eviction (one
//     master per line, the last copy survives replacement, directory state
//     agrees with the cached copies, cache inclusion) and replays each
//     read/write against a shadow memory to flag loads that return a value
//     sequential consistency forbids;
//  2. a cross-scheme Differential oracle that runs one workload under all
//     five schemes and asserts identical architectural outcomes (values,
//     final memory image, per-processor reference streams);
//  3. a deterministic workload fuzzer (package fuzzgen, the FuzzMachine /
//     FuzzSchemesAgree targets, and the cmd/vcoma-check soak binary) that
//     drives both oracles with seeded random reference patterns.
//
// The simulator carries no data payloads, so the shadow memory models each
// block's value as its write count ("version") and follows the protocol's
// data-provenance events (coherence.Sink) to know which version every copy
// holds. Under a correct protocol every readable copy holds the globally
// latest version; a stale read is a sequential-consistency violation.
//
// Everything here is purely observational: attaching a Checker must not
// change any simulated outcome or cycle count (verified by
// TestCheckerIsObservational), so runner cache sharing and suite
// determinism hold.
package check

import (
	"fmt"
	"strings"

	"vcoma/internal/addr"
	"vcoma/internal/coherence"
	"vcoma/internal/config"
	"vcoma/internal/machine"
	"vcoma/internal/mem"
)

// Violation is one detected correctness failure.
type Violation struct {
	// Ref is the number of completed references when the violation was
	// detected (0 = during preload or a standalone scan).
	Ref uint64
	// Msg describes the failure.
	Msg string
}

func (v Violation) String() string { return fmt.Sprintf("after ref %d: %s", v.Ref, v.Msg) }

// Checker is the runtime invariant checker and shadow-memory oracle for one
// machine. Build one with Attach; read failures with Err or Violations.
type Checker struct {
	m    *machine.Machine
	prot *coherence.Protocol
	g    addr.Geometry

	// Shadow memory, keyed by virtual block address (the scheme-neutral
	// name of a datum): global is the latest version of each block (its
	// write count), backing the version in backing store, ver the last
	// version each node's copy carried. Versions persist after a copy is
	// removed — presence is the directory's business, provenance is ours.
	global  map[addr.Virtual]uint64
	backing map[addr.Virtual]uint64
	ver     []map[addr.Virtual]uint64

	// touched accumulates blocks whose architectural state changed since
	// the last settle point; they are re-validated after each reference.
	touched map[addr.Virtual]struct{}

	refs       uint64
	refsByProc []uint64

	scanEvery     uint64
	maxViolations int
	invariants    bool
	violations    []Violation

	collectValues bool
	valueDigests  []uint64
}

// Attach builds a Checker for m and wires it into the protocol's event sink
// and the machine's access-checker seam. Call before Preload. scanEvery is
// the full-scan period in references (0 = only at Settle/Final);
// maxViolations caps how many failures are recorded (<=0 means 16).
func Attach(m *machine.Machine, scanEvery uint64, maxViolations int) *Checker {
	if maxViolations <= 0 {
		maxViolations = 16
	}
	g := m.Geometry()
	c := &Checker{
		m:             m,
		prot:          m.Protocol(),
		g:             g,
		global:        make(map[addr.Virtual]uint64),
		backing:       make(map[addr.Virtual]uint64),
		ver:           make([]map[addr.Virtual]uint64, g.Nodes()),
		touched:       make(map[addr.Virtual]struct{}),
		refsByProc:    make([]uint64, g.Nodes()),
		scanEvery:     scanEvery,
		maxViolations: maxViolations,
		invariants:    true,
		valueDigests:  make([]uint64, g.Nodes()),
	}
	for i := range c.valueDigests {
		c.valueDigests[i] = fnvOffset
	}
	for i := range c.ver {
		c.ver[i] = make(map[addr.Virtual]uint64)
	}
	m.Protocol().SetSink(c)
	m.SetAccessChecker(c)
	return c
}

// DisableInvariants turns off invariant validation and SC assertions,
// keeping only the shadow-memory bookkeeping and digests. The differential
// oracle uses this to demonstrate that it catches bugs on its own.
func (c *Checker) DisableInvariants() { c.invariants = false }

// CollectValues turns on the per-reference value digest (see ValueDigest).
func (c *Checker) CollectValues() { c.collectValues = true }

// Refs returns the number of completed references observed.
func (c *Checker) Refs() uint64 { return c.refs }

// RefsByProc returns the per-processor reference counts.
func (c *Checker) RefsByProc() []uint64 {
	out := make([]uint64, len(c.refsByProc))
	copy(out, c.refsByProc)
	return out
}

// ValueDigests returns one FNV-1a digest per processor over its (block,
// version, write) observations in program order. Only meaningful after
// CollectValues. Program order is scheme-invariant, so for race-free
// workloads — where each read's observed version is also
// interleaving-invariant — the digests must agree across schemes. (A global
// execution-order digest would not: schemes interleave processors
// differently, which is the paper's subject, not a bug.)
func (c *Checker) ValueDigests() []uint64 {
	out := make([]uint64, len(c.valueDigests))
	copy(out, c.valueDigests)
	return out
}

// Image returns the final memory image as per-virtual-block write counts —
// an interleaving-invariant fingerprint of the architectural computation.
func (c *Checker) Image() map[addr.Virtual]uint64 {
	out := make(map[addr.Virtual]uint64, len(c.global))
	for k, v := range c.global {
		out[k] = v
	}
	return out
}

// Violations returns the recorded failures.
func (c *Checker) Violations() []Violation { return c.violations }

// Err returns nil if no violation was recorded, else an error summarizing
// the first failures.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d violation(s)", len(c.violations))
	for i, v := range c.violations {
		if i == 4 {
			fmt.Fprintf(&b, "; ...")
			break
		}
		fmt.Fprintf(&b, "; %s", v)
	}
	return fmt.Errorf("%s", b.String())
}

func (c *Checker) fail(format string, args ...any) {
	if !c.invariants || len(c.violations) >= c.maxViolations {
		return
	}
	c.violations = append(c.violations, Violation{Ref: c.refs, Msg: fmt.Sprintf(format, args...)})
}

// virt maps a protocol block address to the virtual block it names.
func (c *Checker) virt(block uint64) addr.Virtual {
	return c.m.VirtualOfProtoBlock(block)
}

func (c *Checker) touch(vb addr.Virtual) { c.touched[vb] = struct{}{} }

// --- coherence.Sink ---

// CopyInstalled implements coherence.Sink: record the version the new copy
// carries, following the data's provenance.
func (c *Checker) CopyInstalled(n addr.Node, block uint64, s mem.State, src coherence.DataSource, from addr.Node) {
	vb := c.virt(block)
	switch src {
	case coherence.SrcPreload, coherence.SrcBacking:
		c.ver[n][vb] = c.backing[vb]
	case coherence.SrcMaster, coherence.SrcInjection:
		c.ver[n][vb] = c.ver[from][vb]
	case coherence.SrcLocal:
		// Ownership upgrade: the node already held the data.
	}
	c.touch(vb)
}

// CopyRemoved implements coherence.Sink.
func (c *Checker) CopyRemoved(n addr.Node, block uint64, reason coherence.RemoveReason) {
	c.touch(c.virt(block))
}

// StateChanged implements coherence.Sink.
func (c *Checker) StateChanged(n addr.Node, block uint64, s mem.State) {
	c.touch(c.virt(block))
}

// BlockSwapped implements coherence.Sink: the last copy's data went back to
// backing store.
func (c *Checker) BlockSwapped(block uint64, from addr.Node) {
	vb := c.virt(block)
	c.backing[vb] = c.ver[from][vb]
	c.touch(vb)
}

// BlockEvicted implements coherence.Sink: a deliberate evict writes the
// master's data back to backing store.
func (c *Checker) BlockEvicted(block uint64, master addr.Node) {
	vb := c.virt(block)
	c.backing[vb] = c.ver[master][vb]
	c.touch(vb)
}

// --- machine.AccessChecker ---

// PostAccess implements machine.AccessChecker: replay the reference against
// the shadow memory, assert the SC and ownership properties, and validate
// every block the transaction touched.
func (c *Checker) PostAccess(n addr.Node, va addr.Virtual, write bool, r machine.AccessResult) {
	c.refs++
	c.refsByProc[n]++
	vb := c.g.Block(va)
	pb := c.m.ProtoBlock(va)

	if write {
		c.global[vb]++
		v := c.global[vb]
		c.ver[n][vb] = v
		if st := c.prot.StateAt(n, pb); st != mem.Exclusive {
			c.fail("write of %#x at node %d completed without Exclusive ownership (AM state %v)", uint64(vb), n, st)
		}
		c.observeValue(n, vb, v, true)
	} else {
		st := c.prot.StateAt(n, pb)
		if !st.Readable() {
			c.fail("read of %#x at node %d completed with no local AM copy", uint64(vb), n)
		}
		v := c.ver[n][vb]
		if want := c.global[vb]; v != want {
			c.fail("SC violation: node %d read block %#x version %d but the latest write is version %d (stale copy)",
				n, uint64(vb), v, want)
		}
		c.observeValue(n, vb, v, false)
	}

	c.checkTLBResidency(n, va, write)
	c.touch(vb)
	c.checkTouched()
	if c.scanEvery > 0 && c.refs%c.scanEvery == 0 {
		c.fullScan()
	}
}

// checkTLBResidency asserts the translation-buffer residency the scheme
// guarantees: L0 translates every reference up front, so the page must be
// TLB-resident afterwards; in L1 the write-through FLC makes every write
// consult the TLB.
func (c *Checker) checkTLBResidency(n addr.Node, va addr.Virtual, write bool) {
	if !c.invariants {
		return
	}
	scheme := c.m.Config().Scheme
	if scheme != config.L0TLB && !(scheme == config.L1TLB && write) {
		return
	}
	buf := c.m.TLB(n)
	if buf == nil {
		return
	}
	if p := c.g.Page(va); !buf.Probe(p) {
		c.fail("%v: node %d accessed page %#x but its TLB does not hold it", scheme, n, uint64(p))
	}
}

// checkTouched validates every block whose state changed since the last
// settle point: directory/AM agreement and set occupancy.
func (c *Checker) checkTouched() {
	if len(c.touched) == 0 {
		return
	}
	if c.invariants {
		nodes := c.g.Nodes()
		assoc := c.g.AMAssoc()
		dir := c.prot.Directory()
		for vb := range c.touched {
			pb := c.m.ProtoBlock(vb)
			if err := dir.CheckBlock(pb, c.probe, nodes); err != nil {
				c.fail("%v", err)
			}
			for i := 0; i < nodes; i++ {
				if w := c.prot.AM(addr.Node(i)).OccupiedWays(pb); w > assoc {
					c.fail("node %d AM set of block %#x holds %d ways, capacity %d", i, pb, w, assoc)
				}
			}
		}
	}
	clear(c.touched)
}

func (c *Checker) probe(n addr.Node, block uint64) coherence.ProbeState {
	st := c.prot.AM(n).Probe(block)
	return coherence.ProbeState{
		Present:   st != mem.Invalid,
		Master:    st.IsMaster(),
		Exclusive: st == mem.Exclusive,
	}
}

// fullScan validates the whole machine: directory-wide agreement, cache
// inclusion, and orphan copies (AM blocks absent from their directory
// entry, which per-block checks starting from the directory cannot see).
func (c *Checker) fullScan() {
	if !c.invariants {
		return
	}
	if err := c.m.CheckInvariants(); err != nil {
		c.fail("%v", err)
	}
	dir := c.prot.Directory()
	for i := 0; i < c.g.Nodes(); i++ {
		n := addr.Node(i)
		c.prot.AM(n).ForEachValid(func(block uint64, s mem.State) {
			e := dir.Lookup(block)
			if e == nil || !e.Holds(n) {
				c.fail("node %d holds block %#x (%v) absent from its directory entry (orphan copy)", i, block, s)
			}
		})
	}
}

// Settle validates the whole machine at a known-quiescent point (after
// Preload, before the run).
func (c *Checker) Settle() {
	c.checkTouched()
	c.fullScan()
}

// Final validates the whole machine after the run.
func (c *Checker) Final() {
	c.checkTouched()
	c.fullScan()
}

func (c *Checker) observeValue(n addr.Node, vb addr.Virtual, version uint64, write bool) {
	if !c.collectValues {
		return
	}
	d := c.valueDigests[n]
	d = fnvMix(d, uint64(vb))
	d = fnvMix(d, version)
	if write {
		d = fnvMix(d, 1)
	} else {
		d = fnvMix(d, 0)
	}
	c.valueDigests[n] = d
}
