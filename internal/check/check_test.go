package check

import (
	"reflect"
	"strings"
	"testing"

	"vcoma/internal/check/fuzzgen"
	"vcoma/internal/coherence"
	"vcoma/internal/config"
	"vcoma/internal/machine"
	"vcoma/internal/sim"
	"vcoma/internal/trace"
	"vcoma/internal/workload"
)

// benchConfig matches the benchmark-suite test configuration: SmallTest
// geometry with the AM sized for the scale (see experiments.ConfigForScale).
func benchConfig(s config.Scheme) config.Config {
	cfg := config.SmallTest().WithScheme(s)
	cfg.Geometry.AMSetBits = workload.ScaleTest.AMSetBits()
	return cfg
}

// plainRun mirrors the top-level run path with no checker attached — the
// baseline for the observational-purity test.
func plainRun(t *testing.T, cfg config.Config, bench workload.Benchmark) (sim.Result, machine.NodeStats) {
	t.Helper()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := bench.Build(cfg.Geometry, cfg.Geometry.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	m.Preload(prog.Layout())
	eng, err := sim.New(m, prog.Streams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, m.TotalStats()
}

// TestCheckerOnBenchmarks runs the full invariant checker and shadow-memory
// oracle over every benchmark of the suite under every scheme.
func TestCheckerOnBenchmarks(t *testing.T) {
	schemes := config.Schemes()
	if testing.Short() {
		schemes = []config.Scheme{config.L0TLB, config.VCOMA}
	}
	for _, bench := range workload.Registry(workload.ScaleTest) {
		for _, s := range schemes {
			t.Run(bench.Name()+"/"+s.String(), func(t *testing.T) {
				out, err := RunChecked(benchConfig(s), bench, Options{ScanEvery: 4096})
				if err != nil {
					t.Fatal(err)
				}
				if out.Checker.Refs() == 0 {
					t.Fatal("checker observed no references")
				}
			})
		}
	}
}

// TestSchemesAgreeOnBenchmarks runs the differential oracle over the suite:
// all five schemes must produce identical streams, reference counts, and
// final memory images. Values are not compared — the benchmarks use locks,
// so per-reference values are timing-dependent.
func TestSchemesAgreeOnBenchmarks(t *testing.T) {
	benches := workload.Registry(workload.ScaleTest)
	if testing.Short() {
		benches = benches[:2]
	}
	for _, bench := range benches {
		t.Run(bench.Name(), func(t *testing.T) {
			res, err := Differential(benchConfig(config.L0TLB), bench, DiffOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCheckerIsObservational proves attaching the checker changes nothing:
// execution time, event count, and every machine counter are identical with
// and without it. This is what lets checked and unchecked runs share runner
// caches.
func TestCheckerIsObservational(t *testing.T) {
	bench, err := workload.ByName("RADIX", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	fuzz := fuzzgen.Derive(3, uint64(fuzzgen.Thrash), 64)
	for _, s := range config.Schemes() {
		t.Run(s.String(), func(t *testing.T) {
			for _, w := range []workload.Benchmark{bench, fuzz} {
				cfg := benchConfig(s)
				plain, stats := plainRun(t, cfg, w)
				out, err := RunChecked(cfg, w, Options{ScanEvery: 512, CollectValues: true})
				if err != nil {
					t.Fatalf("%s: %v", w.Name(), err)
				}
				if out.Sim.ExecTime != plain.ExecTime {
					t.Errorf("%s: checked run took %d cycles, plain run %d", w.Name(), out.Sim.ExecTime, plain.ExecTime)
				}
				if out.Sim.Events != plain.Events {
					t.Errorf("%s: checked run executed %d events, plain run %d", w.Name(), out.Sim.Events, plain.Events)
				}
				if got := out.Machine.TotalStats(); !reflect.DeepEqual(got, stats) {
					t.Errorf("%s: machine counters differ between checked and plain runs:\n checked %+v\n plain   %+v", w.Name(), got, stats)
				}
			}
		})
	}
}

// TestCheckerManySeeds soaks the checker over seeded random workloads,
// cycling scenarios and schemes (the acceptance floor is 1000 seeds).
func TestCheckerManySeeds(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 150
	}
	for seed := 0; seed < n; seed++ {
		w := fuzzgen.Derive(uint64(seed), uint64(seed), uint64(seed)*31)
		cfg := config.SmallTest().WithScheme(config.Scheme(seed % 5))
		if _, err := RunChecked(cfg, w, Options{ScanEvery: 512}); err != nil {
			t.Fatalf("seed %d (%s under %v): %v", seed, w.Name(), cfg.Scheme, err)
		}
	}
}

// TestSchemesAgreeOnFuzzSeeds runs the differential oracle over seeded
// random workloads, with per-reference value comparison on the race-free
// scenarios.
func TestSchemesAgreeOnFuzzSeeds(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 6
	}
	for seed := 0; seed < n; seed++ {
		w := fuzzgen.Derive(uint64(seed), uint64(seed), uint64(seed)*17)
		res, err := Differential(config.SmallTest(), w, DiffOptions{
			CompareValues: w.RaceFree(),
			ScanEvery:     2048,
		})
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, w.Name(), err)
		}
		if err := res.Err(); err != nil {
			t.Fatalf("seed %d (%s): %v", seed, w.Name(), err)
		}
	}
}

// TestInjectedBugCaughtByChecker proves the invariant checker detects
// deliberately broken protocol behaviour. Each subtest first runs clean to
// show the workload actually exercises the sabotaged path.
func TestInjectedBugCaughtByChecker(t *testing.T) {
	t.Run("DropLastCopy", func(t *testing.T) {
		w := fuzzgen.Derive(7, uint64(fuzzgen.Pathological), 64)
		cfg := config.SmallTest().WithScheme(config.VCOMA)
		clean, err := RunChecked(cfg, w, Options{ScanEvery: 256})
		if err != nil {
			t.Fatalf("clean run: %v", err)
		}
		if st := clean.Machine.Protocol().Stats(); st.Injections+st.Swaps == 0 {
			t.Fatal("workload does not exercise sole-copy master eviction; the bug would never trigger")
		}
		out, err := RunChecked(cfg, w, Options{ScanEvery: 256, Mutate: func(m *machine.Machine) {
			m.Protocol().InjectTestBug(coherence.BugDropLastCopy)
		}})
		if err == nil {
			t.Fatal("checker missed the injected last-copy drop")
		}
		if !violationMentions(out, "last copy", "stale", "no local") {
			t.Errorf("violations do not describe the data loss: %v", err)
		}
	})
	t.Run("SkipInvalidate", func(t *testing.T) {
		w := fuzzgen.Derive(11, uint64(fuzzgen.Partitioned), 80)
		cfg := config.SmallTest().WithScheme(config.VCOMA)
		clean, err := RunChecked(cfg, w, Options{ScanEvery: 256})
		if err != nil {
			t.Fatalf("clean run: %v", err)
		}
		if st := clean.Machine.Protocol().Stats(); st.Invalidations == 0 {
			t.Fatal("workload performs no invalidations; the bug would never trigger")
		}
		_, err = RunChecked(cfg, w, Options{ScanEvery: 256, Mutate: func(m *machine.Machine) {
			m.Protocol().InjectTestBug(coherence.BugSkipInvalidate)
		}})
		if err == nil {
			t.Fatal("checker missed the injected skipped invalidation")
		}
	})
}

func violationMentions(out *Outcome, words ...string) bool {
	if out == nil {
		return false
	}
	for _, v := range out.Checker.Violations() {
		for _, w := range words {
			if strings.Contains(v.Msg, w) {
				return true
			}
		}
	}
	return false
}

// TestInjectedBugCaughtByDifferential proves the cross-scheme oracle
// catches the same injected bug with the invariant checker switched off:
// breaking one scheme makes its observed values diverge from the others.
func TestInjectedBugCaughtByDifferential(t *testing.T) {
	w := fuzzgen.Derive(7, uint64(fuzzgen.Pathological), 64)
	clean, err := Differential(config.SmallTest(), w, DiffOptions{CompareValues: true})
	if err != nil {
		t.Fatalf("clean differential: %v", err)
	}
	if err := clean.Err(); err != nil {
		t.Fatalf("clean differential: %v", err)
	}
	res, err := Differential(config.SmallTest(), w, DiffOptions{
		CompareValues: true,
		Mutate: func(s config.Scheme, m *machine.Machine) {
			if s == config.VCOMA {
				m.Protocol().InjectTestBug(coherence.BugDropLastCopy)
			}
		},
	})
	if err != nil {
		t.Fatalf("mutated differential: %v", err)
	}
	if res.Err() == nil {
		t.Fatal("differential oracle missed the injected last-copy drop")
	}
}

// TestFuzzgenDeterministic proves a derived workload is bit-for-bit
// reproducible: two independent builds emit identical event streams.
func TestFuzzgenDeterministic(t *testing.T) {
	for sc := fuzzgen.Scenario(0); sc < fuzzgen.NumScenarios; sc++ {
		w := fuzzgen.Derive(42, uint64(sc), 77)
		a := drainAll(t, w)
		b := drainAll(t, w)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two builds emitted different streams", w.Name())
		}
	}
}

func drainAll(t *testing.T, w *fuzzgen.Workload) [][]trace.Event {
	t.Helper()
	cfg := config.SmallTest()
	prog, err := w.Build(cfg.Geometry, cfg.Geometry.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	streams := prog.Streams()
	out := make([][]trace.Event, len(streams))
	for i, s := range streams {
		for {
			ev, ok := s.Next()
			if !ok {
				break
			}
			out[i] = append(out[i], ev)
		}
	}
	return out
}
