package check

import (
	"fmt"
	"sort"
	"strings"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/machine"
	"vcoma/internal/workload"
)

// DiffOptions configures the cross-scheme differential oracle.
type DiffOptions struct {
	// Invariants also runs the full invariant checker inside each scheme's
	// run (a violation there fails the whole differential immediately).
	Invariants bool
	// CompareValues also compares the per-reference value digests. Only
	// sound for race-free workloads, where the version every read observes
	// is interleaving-invariant.
	CompareValues bool
	// ScanEvery is forwarded to each run's checker.
	ScanEvery uint64
	// Mutate, if non-nil, runs on each scheme's machine before the run —
	// the hook negative tests use to break exactly one scheme.
	Mutate func(config.Scheme, *machine.Machine)
}

// DiffResult is a completed differential: one outcome per scheme plus any
// detected disagreements.
type DiffResult struct {
	Outcomes   map[config.Scheme]*Outcome
	Mismatches []string
}

// Err returns nil if all schemes agreed, else an error listing the
// disagreements.
func (r *DiffResult) Err() error {
	if len(r.Mismatches) == 0 {
		return nil
	}
	return fmt.Errorf("check: schemes disagree: %s", strings.Join(r.Mismatches, "; "))
}

// Differential runs bench under all five translation schemes derived from
// base and asserts they perform the same architectural computation:
// identical per-processor reference counts and event-stream digests,
// identical final memory images, and (for race-free workloads, with
// CompareValues) identical per-reference value observations. The schemes
// may differ arbitrarily in timing — that is the paper's subject — but
// never in outcome.
func Differential(base config.Config, bench workload.Benchmark, opt DiffOptions) (*DiffResult, error) {
	res := &DiffResult{Outcomes: make(map[config.Scheme]*Outcome)}
	var refScheme config.Scheme
	var ref *Outcome
	for _, s := range config.Schemes() {
		cfg := base.WithScheme(s)
		ro := Options{
			ScanEvery:     opt.ScanEvery,
			CollectValues: opt.CompareValues,
			NoInvariants:  !opt.Invariants,
		}
		if opt.Mutate != nil {
			scheme := s
			ro.Mutate = func(m *machine.Machine) { opt.Mutate(scheme, m) }
		}
		out, err := RunChecked(cfg, bench, ro)
		if err != nil {
			return nil, fmt.Errorf("check: differential under %v: %w", s, err)
		}
		res.Outcomes[s] = out
		if ref == nil {
			refScheme, ref = s, out
			continue
		}
		res.compare(refScheme, ref, s, out, opt)
	}
	return res, nil
}

func (r *DiffResult) compare(rs config.Scheme, ref *Outcome, s config.Scheme, out *Outcome, opt DiffOptions) {
	mismatch := func(format string, args ...any) {
		r.Mismatches = append(r.Mismatches, fmt.Sprintf(format, args...))
	}
	for p := range ref.RefsByProc {
		if ref.RefsByProc[p] != out.RefsByProc[p] {
			mismatch("proc %d issued %d refs under %v but %d under %v",
				p, ref.RefsByProc[p], rs, out.RefsByProc[p], s)
		}
	}
	for p := range ref.StreamDigests {
		if ref.StreamDigests[p] != out.StreamDigests[p] {
			mismatch("proc %d executed a different event stream under %v than under %v", p, s, rs)
		}
	}
	if diffs := imageDiff(ref.Image, out.Image); len(diffs) > 0 {
		mismatch("final memory image differs between %v and %v at %d block(s), first: %s",
			rs, s, len(diffs), diffs[0])
	}
	if opt.CompareValues {
		for p := range ref.ValueDigests {
			if ref.ValueDigests[p] != out.ValueDigests[p] {
				mismatch("proc %d value digest %#x under %v but %#x under %v (some read observed a different value)",
					p, ref.ValueDigests[p], rs, out.ValueDigests[p], s)
			}
		}
	}
}

// imageDiff returns human-readable descriptions of blocks whose final write
// counts differ, sorted by block address.
func imageDiff(a, b map[addr.Virtual]uint64) []string {
	blocks := make(map[addr.Virtual]struct{}, len(a))
	for k := range a {
		blocks[k] = struct{}{}
	}
	for k := range b {
		blocks[k] = struct{}{}
	}
	var diff []addr.Virtual
	for k := range blocks {
		if a[k] != b[k] {
			diff = append(diff, k)
		}
	}
	sort.Slice(diff, func(i, j int) bool { return diff[i] < diff[j] })
	out := make([]string, len(diff))
	for i, k := range diff {
		out[i] = fmt.Sprintf("block %#x: %d vs %d writes", uint64(k), a[k], b[k])
	}
	return out
}
