package fuzzgen_test

import (
	"testing"

	"vcoma/internal/check"
	"vcoma/internal/check/fuzzgen"
	"vcoma/internal/config"
)

// FuzzParallelParity is the randomized half of the parallel engine's
// cycle-identity proof: a derived workload must produce a byte-identical
// run summary — per-processor breakdowns and event digests, machine-wide
// counters, protocol/network/VM totals, and the final cache and
// attraction-memory image — at shards ∈ {1, 2, 4, 8} under all five
// translation schemes. Inputs: (seed, scenario, size), exactly as
// FuzzSchemesAgree takes them.
//
// The test lives in package fuzzgen_test so the generator package itself
// stays import-cycle-free (check imports nothing of fuzzgen outside tests).
//
// Run natively:  go test -run=^$ -fuzz=FuzzParallelParity ./internal/check/fuzzgen/
func FuzzParallelParity(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(32))
	f.Add(uint64(2), uint64(1), uint64(48))
	f.Add(uint64(3), uint64(2), uint64(24))
	f.Add(uint64(4), uint64(3), uint64(64))
	f.Add(uint64(5), uint64(4), uint64(16))
	f.Fuzz(func(t *testing.T, seed, scenario, size uint64) {
		w := fuzzgen.Derive(seed, scenario, size)
		if err := check.ParallelDifferential(config.SmallTest(), w, []int{2, 4, 8}); err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
	})
}
