// Package fuzzgen derives deterministic random workloads from fuzz seeds
// for the correctness oracles in internal/check. Each scenario targets a
// protocol mechanism the hand-written benchmarks exercise only incidentally:
// migratory ownership rotation, contended locks, barrier storms,
// attraction-memory capacity thrash within one global page set (the paper's
// replacement/injection/swap chain), and the pathological page-alignment
// case behind RAYTRACE's 32KB stack padding (§6.2).
//
// A derived workload is a workload.Benchmark: bit-for-bit reproducible from
// (seed, scenario, size), independent of the translation scheme, and — for
// every scenario but Locked — race-free, meaning the version each read
// observes is interleaving-invariant, so even per-reference values must
// agree across schemes.
package fuzzgen

import (
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/prng"
	"vcoma/internal/trace"
	"vcoma/internal/vm"
	"vcoma/internal/workload"
)

// Scenario selects the shape of a derived workload.
type Scenario uint8

const (
	// Partitioned rotates block ownership across barrier-separated phases:
	// read-sharing phases build up copysets, write phases invalidate them
	// and migrate masters.
	Partitioned Scenario = iota
	// Locked increments lock-protected shared counters — the only scenario
	// with timing-dependent read values (lock grant order is a race).
	Locked
	// BarrierStorm runs many barriers with tiny work between them.
	BarrierStorm
	// Thrash overcommits one global page set so replacement must run the
	// full injection chain, forcing relocations, injections, and swaps.
	Thrash
	// Pathological aligns every processor's stack to the same page color
	// (the RAYTRACE padding case) and walks them across page boundaries.
	Pathological
	// NumScenarios is the number of scenarios; Derive reduces modulo this.
	NumScenarios
)

func (s Scenario) String() string {
	switch s {
	case Partitioned:
		return "partitioned"
	case Locked:
		return "locked"
	case BarrierStorm:
		return "barrierstorm"
	case Thrash:
		return "thrash"
	case Pathological:
		return "pathological"
	default:
		return fmt.Sprintf("Scenario(%d)", uint8(s))
	}
}

// ScenarioByName returns the scenario with the given String name.
func ScenarioByName(name string) (Scenario, error) {
	for s := Scenario(0); s < NumScenarios; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("fuzzgen: unknown scenario %q", name)
}

// Workload is a derived fuzz workload. It implements workload.Benchmark.
type Workload struct {
	Seed uint64
	Kind Scenario
	// Ops scales the per-processor work (references per phase); Derive
	// clamps it so a single run stays fast.
	Ops int
}

// Derive maps raw fuzz inputs to a valid workload: any three uint64 values
// produce something runnable.
func Derive(seed, scenario, size uint64) *Workload {
	return &Workload{
		Seed: seed,
		Kind: Scenario(scenario % uint64(NumScenarios)),
		Ops:  8 + int(size%121), // 8..128
	}
}

// RaceFree reports whether every read's observed value is
// interleaving-invariant, making per-reference value digests comparable
// across schemes.
func (w *Workload) RaceFree() bool { return w.Kind != Locked }

// Name implements workload.Benchmark.
func (w *Workload) Name() string {
	return fmt.Sprintf("FUZZ-%s-%x-%d", w.Kind, w.Seed, w.Ops)
}

// procSeed decorrelates per-processor streams from one workload seed.
func (w *Workload) procSeed(p int) uint64 {
	return w.Seed ^ (uint64(p)+1)*0x9e3779b97f4a7c15
}

// Build implements workload.Benchmark.
func (w *Workload) Build(g addr.Geometry, procs int) (*workload.Program, error) {
	switch w.Kind {
	case Partitioned:
		return w.buildPartitioned(g, procs), nil
	case Locked:
		return w.buildLocked(g, procs), nil
	case BarrierStorm:
		return w.buildBarrierStorm(g, procs), nil
	case Thrash:
		return w.buildThrash(g, procs), nil
	case Pathological:
		return w.buildPathological(g, procs), nil
	default:
		return nil, fmt.Errorf("fuzzgen: scenario %v not buildable", w.Kind)
	}
}

// buildPartitioned: data blocks with per-phase ownership b%procs rotating
// each phase. Even phases everyone READS every block (copyset grows to all
// nodes); odd phases each owner read-modify-writes its blocks (invalidating
// the shared copies and migrating masters).
func (w *Workload) buildPartitioned(g addr.Geometry, procs int) *workload.Program {
	bs := g.AMBlockSize()
	shape := prng.New(w.Seed)
	nb := procs * (2 + int(shape.Uint64n(4))) // 2..5 blocks per proc
	phases := 2 * (2 + int(shape.Uint64n(3))) // 4..8 phases, share/write pairs
	reps := max(1, w.Ops/nb)

	layout := vm.NewLayout(g)
	data := layout.Alloc("data", uint64(nb)*bs, 0)

	gen := func(p int) func(*trace.Emitter) {
		return func(e *trace.Emitter) {
			rng := prng.New(w.procSeed(p))
			for ph := 0; ph < phases; ph++ {
				if ph%2 == 0 {
					// Sharing phase: everyone reads everything.
					for _, b := range rng.Perm(nb) {
						e.Read(data.At(uint64(b) * bs))
					}
				} else {
					// Write phase: rotating exclusive ownership.
					for r := 0; r < reps; r++ {
						for _, b := range rng.Perm(nb) {
							if (b+ph)%procs != p {
								continue
							}
							a := data.At(uint64(b) * bs)
							e.Read(a)
							e.Write(a)
						}
						e.Compute(1 + rng.Uint64n(8))
					}
				}
				e.Barrier(ph)
			}
		}
	}
	return workload.NewProgram(w.Name(), layout, procs, gen)
}

// buildLocked: lock-protected counter increments. Which version a read
// observes depends on the lock grant order, so this scenario is not
// race-free — but the total writes per counter are fixed, so the final
// memory image is still scheme-invariant.
func (w *Workload) buildLocked(g addr.Geometry, procs int) *workload.Program {
	bs := g.AMBlockSize()
	shape := prng.New(w.Seed)
	nlocks := 1 + int(shape.Uint64n(3)) // 1..3 contended locks
	iters := max(2, w.Ops/2)

	layout := vm.NewLayout(g)
	counters := layout.Alloc("counters", uint64(nlocks)*bs, 0)

	gen := func(p int) func(*trace.Emitter) {
		return func(e *trace.Emitter) {
			rng := prng.New(w.procSeed(p))
			for i := 0; i < iters; i++ {
				l := rng.Intn(nlocks)
				a := counters.At(uint64(l) * bs)
				e.Lock(l)
				e.Read(a)
				e.Write(a)
				e.Unlock(l)
				e.Compute(1 + rng.Uint64n(16))
			}
			e.Barrier(0)
		}
	}
	return workload.NewProgram(w.Name(), layout, procs, gen)
}

// buildBarrierStorm: many barriers with a private write and a shared
// read-only read between each pair.
func (w *Workload) buildBarrierStorm(g addr.Geometry, procs int) *workload.Program {
	bs := g.AMBlockSize()
	nbar := min(48, max(4, w.Ops))

	layout := vm.NewLayout(g)
	priv := layout.Alloc("priv", uint64(procs)*bs, 0)
	ro := layout.Alloc("ro", 2*bs, 0)

	gen := func(p int) func(*trace.Emitter) {
		return func(e *trace.Emitter) {
			rng := prng.New(w.procSeed(p))
			mine := priv.At(uint64(p) * bs)
			for k := 0; k < nbar; k++ {
				e.Write(mine)
				e.Read(mine)
				e.Read(ro.At(uint64(k%2) * bs))
				e.Compute(1 + rng.Uint64n(4))
				e.Barrier(k)
			}
		}
	}
	return workload.NewProgram(w.Name(), layout, procs, gen)
}

// buildThrash: more same-colored hot pages than one global page set holds,
// so attraction-memory replacement must relocate masters, inject victims,
// and ultimately swap blocks out of the machine. Ownership of in-page block
// classes rotates each round so swapped blocks get refetched.
func (w *Workload) buildThrash(g addr.Geometry, procs int) *workload.Program {
	bs := g.AMBlockSize()
	shape := prng.New(w.Seed)
	colorAlign := g.PageSize() << g.GlobalPageSetBits()
	npages := g.PageSlotsPerGlobalSet() + 2 + int(shape.Uint64n(3))
	rounds := 2 + int(shape.Uint64n(2))
	bpp := g.BlocksPerPage()

	layout := vm.NewLayout(g)
	pages := make([]vm.Region, npages)
	for i := range pages {
		pages[i] = layout.Alloc(fmt.Sprintf("hot%02d", i), g.PageSize(), colorAlign)
	}

	gen := func(p int) func(*trace.Emitter) {
		return func(e *trace.Emitter) {
			rng := prng.New(w.procSeed(p))
			for r := 0; r < rounds; r++ {
				// Proc p owns in-page block indices i with (i+r)%procs == p;
				// classes are disjoint across procs, so the round is race-free.
				for _, pg := range rng.Perm(npages) {
					for i := 0; i < bpp; i++ {
						if (i+r)%procs != p {
							continue
						}
						a := pages[pg].At(uint64(i) * bs)
						e.Write(a)
						e.Read(a)
					}
				}
				e.Barrier(r)
			}
		}
	}
	return workload.NewProgram(w.Name(), layout, procs, gen)
}

// buildPathological: the RAYTRACE padding case (§6.2) — every page of every
// processor's stack allocated at the same page-color alignment (one region
// per page, so pages do not spread across colors), making all stacks
// compete for a single global page set. Each stack alone overcommits its
// node's ways, every node's ways fill with its own masters, so replacement
// runs the injection chain off its end into swaps; the pop walk then
// refetches swapped blocks.
func (w *Workload) buildPathological(g addr.Geometry, procs int) *workload.Program {
	bs := g.AMBlockSize()
	bpp := g.BlocksPerPage()
	colorAlign := g.PageSize() << g.GlobalPageSetBits()
	stackPages := max(2, g.PageSlotsPerGlobalSet()/procs+1)
	iters := max(2, w.Ops/8)

	layout := vm.NewLayout(g)
	stacks := make([][]vm.Region, procs)
	for p := range stacks {
		stacks[p] = make([]vm.Region, stackPages)
		for j := range stacks[p] {
			stacks[p][j] = layout.Alloc(fmt.Sprintf("stack%02d-%02d", p, j), g.PageSize(), colorAlign)
		}
	}
	scene := layout.Alloc("scene", 4*bs, 0)

	gen := func(p int) func(*trace.Emitter) {
		return func(e *trace.Emitter) {
			rng := prng.New(w.procSeed(p))
			mine := stacks[p]
			for it := 0; it < iters; it++ {
				// Push: walk the stack forward, page by page.
				for _, pg := range mine {
					for i := 0; i < bpp; i++ {
						a := pg.At(uint64(i) * bs)
						e.Write(a)
						e.Read(a)
					}
				}
				// Pop: walk back, re-reading without writing — a block whose
				// last copy was lost in replacement surfaces here as a stale
				// read.
				for j := len(mine) - 1; j >= 0; j-- {
					for i := bpp - 1; i >= 0; i-- {
						e.Read(mine[j].At(uint64(i) * bs))
					}
				}
				e.Read(scene.At(rng.Uint64n(4) * bs))
				e.Compute(1 + rng.Uint64n(8))
			}
			e.Barrier(0)
		}
	}
	return workload.NewProgram(w.Name(), layout, procs, gen)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
