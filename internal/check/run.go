package check

import (
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/machine"
	"vcoma/internal/sim"
	"vcoma/internal/trace"
	"vcoma/internal/workload"
)

// Options configures a checked run.
type Options struct {
	// ScanEvery is the full-invariant-scan period in references
	// (0 = scan only after preload and at the end).
	ScanEvery uint64
	// MaxViolations caps recorded failures (<=0 means 16).
	MaxViolations int
	// CollectValues enables the per-reference value digest (needed by the
	// differential oracle for race-free workloads).
	CollectValues bool
	// NoInvariants disables invariant validation and SC assertions,
	// keeping only shadow-memory bookkeeping and digests. The differential
	// oracle sets this to prove it catches bugs without the checker's help.
	NoInvariants bool
	// Mutate, if non-nil, runs on the freshly built machine before the
	// checker attaches — the hook negative tests use to inject protocol
	// bugs.
	Mutate func(*machine.Machine)
}

// Outcome is a completed checked run: the simulation results plus the
// architectural fingerprints the oracles compare.
type Outcome struct {
	Machine *machine.Machine
	Sim     sim.Result
	Program *workload.Program
	Checker *Checker

	// RefsByProc is the number of shared references each processor issued
	// — scheme-invariant because streams are pregenerated.
	RefsByProc []uint64
	// StreamDigests fingerprints each processor's executed event sequence
	// (kind, address, cycles, id) — scheme-invariant for the same reason.
	StreamDigests []uint64
	// ValueDigests fingerprints each processor's (block, version)
	// observations in program order; empty digests unless
	// Options.CollectValues. Scheme-invariant only for race-free workloads.
	ValueDigests []uint64
	// Image is the final memory image as per-virtual-block write counts.
	Image map[addr.Virtual]uint64
}

// RunChecked builds a machine for cfg, attaches a Checker, runs bench to
// completion, and returns the outcome. The returned error is non-nil for
// build/run failures and for recorded checker violations; the Outcome is
// still returned alongside a violation error so callers can inspect it.
func RunChecked(cfg config.Config, bench workload.Benchmark, opt Options) (*Outcome, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	prog, err := bench.Build(cfg.Geometry, cfg.Geometry.Nodes())
	if err != nil {
		return nil, err
	}
	if opt.Mutate != nil {
		opt.Mutate(m)
	}

	ck := Attach(m, opt.ScanEvery, opt.MaxViolations)
	if opt.NoInvariants {
		ck.DisableInvariants()
	}
	if opt.CollectValues {
		ck.CollectValues()
	}

	m.Preload(prog.Layout())
	ck.Settle()

	eng, err := sim.New(m, prog.Streams())
	if err != nil {
		return nil, err
	}
	nodes := cfg.Geometry.Nodes()
	digests := make([]uint64, nodes)
	for i := range digests {
		digests[i] = fnvOffset
	}
	eng.SetStepObserver(func(proc int, ev trace.Event) {
		d := digests[proc]
		d = fnvMix(d, uint64(ev.Kind))
		d = fnvMix(d, uint64(ev.Addr))
		d = fnvMix(d, ev.Cycles)
		d = fnvMix(d, uint64(ev.ID))
		digests[proc] = d
	})

	res, err := eng.Run()
	if err != nil {
		return nil, fmt.Errorf("check: running %s on %v: %w", prog.Name(), cfg.Scheme, err)
	}
	ck.Final()

	out := &Outcome{
		Machine:       m,
		Sim:           res,
		Program:       prog,
		Checker:       ck,
		RefsByProc:    ck.RefsByProc(),
		StreamDigests: digests,
		ValueDigests:  ck.ValueDigests(),
		Image:         ck.Image(),
	}
	return out, ck.Err()
}
