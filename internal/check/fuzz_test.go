package check

import (
	"testing"

	"vcoma/internal/check/fuzzgen"
	"vcoma/internal/config"
)

// FuzzMachine drives one machine with a derived random workload under one
// scheme and asserts every protocol invariant and the shadow-memory oracle
// hold throughout. Inputs: (seed, scenario, size, scheme) — fuzzgen.Derive
// and the scheme modulo make any four uint64 values runnable.
//
// Run natively:  go test -run=^$ -fuzz=FuzzMachine ./internal/check/
func FuzzMachine(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(32), uint64(0))
	f.Add(uint64(2), uint64(1), uint64(16), uint64(4))
	f.Add(uint64(3), uint64(3), uint64(64), uint64(2))
	f.Fuzz(func(t *testing.T, seed, scenario, size, scheme uint64) {
		cfg := config.SmallTest().WithScheme(config.Scheme(scheme % 5))
		w := fuzzgen.Derive(seed, scenario, size)
		if _, err := RunChecked(cfg, w, Options{ScanEvery: 512}); err != nil {
			t.Fatalf("%s under %v: %v", w.Name(), cfg.Scheme, err)
		}
	})
}

// FuzzSchemesAgree runs one derived workload under all five translation
// schemes with the invariant checker on, and asserts they perform the same
// architectural computation (the paper's implicit equivalence claim).
// Inputs: (seed, scenario, size).
//
// Run natively:  go test -run=^$ -fuzz=FuzzSchemesAgree ./internal/check/
func FuzzSchemesAgree(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(24))
	f.Add(uint64(2), uint64(3), uint64(48))
	f.Add(uint64(5), uint64(4), uint64(12))
	f.Fuzz(func(t *testing.T, seed, scenario, size uint64) {
		w := fuzzgen.Derive(seed, scenario, size)
		res, err := Differential(config.SmallTest(), w, DiffOptions{
			Invariants:    true,
			CompareValues: w.RaceFree(),
			ScanEvery:     1024,
		})
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if err := res.Err(); err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
	})
}
