package check

import (
	"fmt"
	"strings"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/machine"
	"vcoma/internal/mem"
	"vcoma/internal/sim"
	"vcoma/internal/trace"
	"vcoma/internal/workload"
)

// This file is the sequential-vs-parallel axis of the differential oracle.
// The parallel engine (internal/sim/parallel.go) claims byte-identity with
// the sequential engine at any shard count; here that claim is checked by
// rendering everything observable about a finished run — per-processor time
// breakdowns, per-node memory-system counters, protocol/network/VM totals,
// per-processor event-stream digests, and a digest of the final cache and
// attraction-memory image — into one string and comparing the bytes.
//
// The runs are deliberately unchecked (no shadow-memory Checker attached):
// an access checker makes the machine parallel-ineligible, which would
// silently compare the sequential engine against itself.

// ParitySummary runs bench under cfg on the engine with the given shard
// count (≤ 1 = sequential) and renders the complete observable outcome.
// Two runs are equivalent iff their summaries are byte-identical.
func ParitySummary(cfg config.Config, bench workload.Benchmark, shards int) (string, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return "", err
	}
	prog, err := bench.Build(cfg.Geometry, cfg.Geometry.Nodes())
	if err != nil {
		return "", err
	}
	m.Preload(prog.Layout())
	eng, err := sim.New(m, prog.Streams())
	if err != nil {
		return "", err
	}
	nodes := cfg.Geometry.Nodes()
	digests := make([]uint64, nodes)
	for i := range digests {
		digests[i] = fnvOffset
	}
	eng.SetStepObserver(func(proc int, ev trace.Event) {
		d := digests[proc]
		d = fnvMix(d, uint64(ev.Kind))
		d = fnvMix(d, uint64(ev.Addr))
		d = fnvMix(d, ev.Cycles)
		d = fnvMix(d, uint64(ev.ID))
		digests[proc] = d
	})
	eng.SetParallel(shards)
	res, err := eng.Run()
	if err != nil {
		return "", fmt.Errorf("check: parity run %s/%v x%d: %w", prog.Name(), cfg.Scheme, shards, err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s %v exec=%d events=%d\n", prog.Name(), cfg.Scheme, res.ExecTime, res.Events)
	for i, p := range res.Procs {
		fmt.Fprintf(&b, "proc %02d %+v digest=%016x\n", i, p, digests[i])
	}
	fmt.Fprintf(&b, "machine %+v\n", m.TotalStats())
	for n := 0; n < nodes; n++ {
		fmt.Fprintf(&b, "node %02d %+v image=%016x\n", n, m.NodeStats(addr.Node(n)), nodeImageDigest(m, addr.Node(n)))
	}
	fmt.Fprintf(&b, "protocol %+v\n", m.Protocol().Stats())
	fmt.Fprintf(&b, "network %+v\n", m.Protocol().Fabric().Stats())
	fmt.Fprintf(&b, "vm faults=%d mapped=%d overflow=%d\n", m.VM().Faults(), m.VM().MappedPages(), m.VM().OverflowCount())
	if err := m.CheckInvariants(); err != nil {
		fmt.Fprintf(&b, "INVARIANT VIOLATION: %v\n", err)
	}
	return b.String(), nil
}

// nodeImageDigest fingerprints node n's final memory image: every valid
// FLC and SLC block with its dirty bit, and every valid attraction-memory
// block with its coherence state, in their deterministic storage orders.
func nodeImageDigest(m *machine.Machine, n addr.Node) uint64 {
	d := uint64(fnvOffset)
	for _, blk := range m.FLC(n).ValidBlocks() {
		d = fnvMix(d, blk)
	}
	d = fnvMix(d, 0xF1)
	for _, blk := range m.SLC(n).ValidBlocks() {
		d = fnvMix(d, blk)
		if m.SLC(n).Dirty(blk) {
			d = fnvMix(d, 1)
		}
	}
	d = fnvMix(d, 0xF2)
	m.Protocol().AM(n).ForEachValid(func(block uint64, s mem.State) {
		d = fnvMix(d, block)
		d = fnvMix(d, uint64(s))
	})
	return d
}

// VerifyParallelParity runs bench under cfg sequentially and at each of the
// given shard counts, and fails with a diff-oriented error on the first
// summary mismatch.
func VerifyParallelParity(cfg config.Config, bench workload.Benchmark, shards []int) error {
	want, err := ParitySummary(cfg, bench, 1)
	if err != nil {
		return err
	}
	for _, s := range shards {
		if s <= 1 {
			continue
		}
		got, err := ParitySummary(cfg, bench, s)
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("check: parallel parity broken at %d shards (%v):\n%s", s, cfg.Scheme, summaryDiff(want, got))
		}
	}
	return nil
}

// ParallelDifferential extends the differential oracle along the
// sequential-vs-parallel axis: every scheme must produce byte-identical
// summaries at every shard count.
func ParallelDifferential(cfg config.Config, bench workload.Benchmark, shards []int) error {
	for _, sch := range config.Schemes() {
		if err := VerifyParallelParity(cfg.WithScheme(sch), bench, shards); err != nil {
			return err
		}
	}
	return nil
}

// summaryDiff renders the first few differing lines of two summaries.
func summaryDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&b, "  seq: %s\n  par: %s\n", w, g)
		if shown++; shown >= 8 {
			b.WriteString("  ...\n")
			break
		}
	}
	return b.String()
}
