package check

// FNV-1a, 64-bit. The oracles fingerprint event streams and value
// observations with it; it is stable across runs and platforms, which is
// all a differential comparison needs.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvMix folds one uint64 into an FNV-1a digest, byte by byte.
func fnvMix(d, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		d ^= v & 0xff
		d *= fnvPrime
		v >>= 8
	}
	return d
}
