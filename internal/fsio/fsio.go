// Package fsio is the harness's filesystem seam: every durable write the
// runner cache, the journals, the artifact store and the trace sidecars
// perform goes through an *FS, which (a) implements the write-temp → fsync →
// rename → fsync-parent discipline once, correctly, instead of five slightly
// different ways, (b) hosts a deterministic failpoint engine so tests and
// smokes can inject ENOSPC, EIO, torn writes and power cuts at the Nth
// matching operation (see ParseFailpoints), and (c) can record an op log of
// every primitive it performed — the input to the crashsim power-cut
// prefix sweep and the artifact CI uploads when a fault smoke fails.
//
// A nil *FS is valid everywhere and performs the real, fully durable
// operations with no counting and no faults, so library callers that never
// touch fault injection pay nothing for the seam.
package fsio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
)

// Primitive operation names, the first axis failpoints match on (the second
// is the caller-supplied tag naming the logical write site: "put",
// "journal", "trace", "probe", ...).
const (
	OpMkdir     = "mkdir"
	OpCreate    = "create" // truncating create
	OpOpen      = "open"   // append-mode open (keeps existing bytes)
	OpWrite     = "write"
	OpAppend    = "append"
	OpFsync     = "fsync"
	OpRename    = "rename"
	OpFsyncDir  = "fsyncdir"
	OpRemove    = "remove"
	OpRemoveAll = "removeall"
	OpRead      = "read"
)

// Counters is a snapshot of an FS's lifetime activity.
type Counters struct {
	Ops      uint64 // primitive operations attempted
	Errors   uint64 // operations that failed (injected or real)
	Injected uint64 // failures injected by the failpoint engine
}

// FS is the filesystem seam. The zero value and nil are both plain
// passthroughs; New returns an FS whose operations consult a failpoint set
// and count into Counters.
type FS struct {
	fp  atomic.Pointer[Failpoints]
	rec atomic.Pointer[Recorder]

	ops, errs, injected atomic.Uint64
}

// New returns an FS armed with fp (nil fp = no faults, but counting and
// recording still work — the serve daemon always runs on an instance so its
// /metrics can export fsio counters).
func New(fp *Failpoints) *FS {
	fs := &FS{}
	if fp != nil {
		fs.fp.Store(fp)
	}
	return fs
}

// SetFailpoints swaps the armed failpoint set; nil disarms. Safe under
// concurrent operations — the serve daemon's /debug/fsfault endpoint uses
// it to clear or rearm faults on a live server.
func (fs *FS) SetFailpoints(fp *Failpoints) {
	if fs == nil {
		return
	}
	if fp == nil {
		fs.fp.Store(nil)
		return
	}
	fs.fp.Store(fp)
}

// ArmedSpec returns the armed failpoint set's spec string ("" when none).
func (fs *FS) ArmedSpec() string {
	if fs == nil {
		return ""
	}
	return fs.fp.Load().String()
}

// SetRecorder attaches an op recorder; nil detaches.
func (fs *FS) SetRecorder(r *Recorder) {
	if fs == nil {
		return
	}
	if r == nil {
		fs.rec.Store(nil)
		return
	}
	fs.rec.Store(r)
}

// Counters snapshots the FS's op/error/injection tallies (zero for nil).
func (fs *FS) Counters() Counters {
	if fs == nil {
		return Counters{}
	}
	return Counters{Ops: fs.ops.Load(), Errors: fs.errs.Load(), Injected: fs.injected.Load()}
}

// gate counts one primitive op and consults the failpoints. It returns the
// torn-write byte bound (<0: write everything) and the injected error, if
// any. Real-op outcomes are recorded separately by the callers.
func (fs *FS) gate(op, tag, path string) (tear int, err error) {
	if fs == nil {
		return -1, nil
	}
	fs.ops.Add(1)
	fp := fs.fp.Load()
	if fp == nil {
		return -1, nil
	}
	tear, err = fp.gate(op, tag)
	if err != nil {
		fs.injected.Add(1)
		err = &FaultError{Op: op, Tag: tag, Path: path, Err: err}
	}
	return tear, err
}

// record appends one op to the attached recorder, noting real failures so
// the op log is a faithful trace even when the disk itself misbehaved.
func (fs *FS) record(op, tag, path, path2 string, data []byte, err error) {
	if fs == nil {
		return
	}
	if err != nil {
		fs.errs.Add(1)
	}
	if r := fs.rec.Load(); r != nil {
		r.add(op, tag, path, path2, data, err)
	}
}

// ReadFile reads the named file (failpoint-injectable as op "read").
func (fs *FS) ReadFile(tag, path string) ([]byte, error) {
	if _, err := fs.gate(OpRead, tag, path); err != nil {
		fs.record(OpRead, tag, path, "", nil, err)
		return nil, err
	}
	data, err := os.ReadFile(path)
	fs.record(OpRead, tag, path, "", nil, err)
	return data, err
}

// MkdirAll creates dir and any missing parents.
func (fs *FS) MkdirAll(tag, dir string) error {
	if _, err := fs.gate(OpMkdir, tag, dir); err != nil {
		fs.record(OpMkdir, tag, dir, "", nil, err)
		return err
	}
	err := os.MkdirAll(dir, 0o755)
	fs.record(OpMkdir, tag, dir, "", nil, err)
	return err
}

// Remove unlinks path.
func (fs *FS) Remove(tag, path string) error {
	if _, err := fs.gate(OpRemove, tag, path); err != nil {
		fs.record(OpRemove, tag, path, "", nil, err)
		return err
	}
	err := os.Remove(path)
	fs.record(OpRemove, tag, path, "", nil, err)
	return err
}

// RemoveAll removes path and everything below it.
func (fs *FS) RemoveAll(tag, path string) error {
	if _, err := fs.gate(OpRemoveAll, tag, path); err != nil {
		fs.record(OpRemoveAll, tag, path, "", nil, err)
		return err
	}
	err := os.RemoveAll(path)
	fs.record(OpRemoveAll, tag, path, "", nil, err)
	return err
}

// Rename renames old to new and fsyncs new's parent directory, the step that
// makes the rename itself survive a power cut.
func (fs *FS) Rename(tag, oldpath, newpath string) error {
	if _, err := fs.gate(OpRename, tag, oldpath); err != nil {
		fs.record(OpRename, tag, oldpath, newpath, nil, err)
		return err
	}
	if err := os.Rename(oldpath, newpath); err != nil {
		fs.record(OpRename, tag, oldpath, newpath, nil, err)
		return err
	}
	fs.record(OpRename, tag, oldpath, newpath, nil, nil)
	return fs.SyncDir(tag, filepath.Dir(newpath))
}

// SyncDir fsyncs a directory, making renames and unlinks inside it durable.
// A no-op on platforms where directories cannot be fsync'd.
func (fs *FS) SyncDir(tag, dir string) error {
	if _, err := fs.gate(OpFsyncDir, tag, dir); err != nil {
		fs.record(OpFsyncDir, tag, dir, "", nil, err)
		return err
	}
	err := syncDir(dir)
	fs.record(OpFsyncDir, tag, dir, "", nil, err)
	return err
}

func syncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil // directory handles cannot be fsync'd there
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFileAtomic writes data to path so that after any crash the file holds
// either its previous contents or exactly data, durably:
//
//	mkdir parents → create temp → write → fsync temp → rename → fsync dir
//
// The temp file is removed on any failure, so an injected or real error
// never leaves a partial entry behind.
func (fs *FS) WriteFileAtomic(tag, path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := fs.MkdirAll(tag, dir); err != nil {
		return err
	}
	if _, err := fs.gate(OpCreate, tag, path); err != nil {
		fs.record(OpCreate, tag, path, "", nil, err)
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	fs.record(OpCreate, tag, tmpName(tmp), "", nil, err)
	if err != nil {
		return err
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmp.Name())
		fs.record(OpRemove, tag, tmp.Name(), "", nil, nil)
	}
	if err := fs.writeTo(tag, tmp, data); err != nil {
		cleanup()
		return err
	}
	if err := fs.fsyncFile(tag, tmp); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		fs.record(OpRemove, tag, tmp.Name(), "", nil, nil)
		return err
	}
	if _, err := fs.gate(OpRename, tag, tmp.Name()); err != nil {
		fs.record(OpRename, tag, tmp.Name(), path, nil, err)
		os.Remove(tmp.Name())
		fs.record(OpRemove, tag, tmp.Name(), "", nil, nil)
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		fs.record(OpRename, tag, tmp.Name(), path, nil, err)
		os.Remove(tmp.Name())
		return err
	}
	fs.record(OpRename, tag, tmp.Name(), path, nil, nil)
	return fs.SyncDir(tag, dir)
}

func tmpName(f *os.File) string {
	if f == nil {
		return ""
	}
	return f.Name()
}

// writeTo performs one gated, torn-able write of data to f (op "write").
func (fs *FS) writeTo(tag string, f *os.File, data []byte) error {
	tear, err := fs.gate(OpWrite, tag, f.Name())
	if err != nil {
		if tear >= 0 && tear < len(data) {
			// A torn write really lands its prefix on disk before failing —
			// that is the point: recovery code must meet genuinely torn bytes.
			n, _ := f.Write(data[:tear])
			fs.record(OpWrite, tag, f.Name(), "", data[:n], err)
			return err
		}
		fs.record(OpWrite, tag, f.Name(), "", nil, err)
		return err
	}
	n, err := f.Write(data)
	fs.record(OpWrite, tag, f.Name(), "", data[:n], err)
	return err
}

// fsyncFile performs one gated fsync of f (op "fsync").
func (fs *FS) fsyncFile(tag string, f *os.File) error {
	if _, err := fs.gate(OpFsync, tag, f.Name()); err != nil {
		fs.record(OpFsync, tag, f.Name(), "", nil, err)
		return err
	}
	err := f.Sync()
	fs.record(OpFsync, tag, f.Name(), "", nil, err)
	return err
}

// WriteFile is the plain, non-atomic, non-durable write — for advisory
// sidecars (quarantine .reason files) whose loss costs nothing.
func (fs *FS) WriteFile(tag, path string, data []byte) error {
	if _, err := fs.gate(OpCreate, tag, path); err != nil {
		fs.record(OpCreate, tag, path, "", nil, err)
		return err
	}
	fs.record(OpCreate, tag, path, "", nil, nil)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	err = fs.writeTo(tag, f, data)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// AppendFile is an open append-mode file whose writes and fsyncs route
// through the seam — the journals' handle.
type AppendFile struct {
	fs   *FS
	tag  string
	path string
	f    *os.File
}

// Create opens path truncated for journal-style appending.
func (fs *FS) Create(tag, path string) (*AppendFile, error) {
	return fs.openAppend(OpCreate, tag, path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC)
}

// OpenAppend opens path for appending, creating it if needed.
func (fs *FS) OpenAppend(tag, path string) (*AppendFile, error) {
	return fs.openAppend(OpOpen, tag, path, os.O_WRONLY|os.O_CREATE|os.O_APPEND)
}

func (fs *FS) openAppend(op, tag, path string, flag int) (*AppendFile, error) {
	if _, err := fs.gate(op, tag, path); err != nil {
		fs.record(op, tag, path, "", nil, err)
		return nil, err
	}
	f, err := os.OpenFile(path, flag, 0o644)
	fs.record(op, tag, path, "", nil, err)
	if err != nil {
		return nil, err
	}
	return &AppendFile{fs: fs, tag: tag, path: path, f: f}, nil
}

// Write makes an AppendFile an io.Writer (streaming recorders, encoders);
// it is Append with the io.Writer contract on the return values.
func (a *AppendFile) Write(p []byte) (int, error) {
	if err := a.Append(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Append writes data at the end of the file (op "append", torn-able).
func (a *AppendFile) Append(data []byte) error {
	tear, err := a.fs.gate(OpAppend, a.tag, a.path)
	if err != nil {
		if tear >= 0 && tear < len(data) {
			n, _ := a.f.Write(data[:tear])
			a.fs.record(OpAppend, a.tag, a.path, "", data[:n], err)
			return err
		}
		a.fs.record(OpAppend, a.tag, a.path, "", nil, err)
		return err
	}
	n, err := a.f.Write(data)
	a.fs.record(OpAppend, a.tag, a.path, "", data[:n], err)
	return err
}

// Sync fsyncs the file — each journal record's durability point.
func (a *AppendFile) Sync() error {
	return a.fs.fsyncFile(a.tag, a.f)
}

// Close closes the underlying file.
func (a *AppendFile) Close() error {
	return a.f.Close()
}

// Path returns the file's path.
func (a *AppendFile) Path() string { return a.path }

// FaultError is an injected failure. It unwraps to the underlying errno
// (syscall.ENOSPC, syscall.EIO, or ErrPowerCut), so errors.Is sees exactly
// what a real bad disk would produce.
type FaultError struct {
	Op   string
	Tag  string
	Path string
	Err  error
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("fsio: injected fault at %s (tag %s, %s): %v", e.Op, e.Tag, e.Path, e.Err)
}

func (e *FaultError) Unwrap() error { return e.Err }

// IsInjected reports whether err traces back to the failpoint engine, so
// tests can tell injected faults from real disk trouble.
func IsInjected(err error) bool {
	var fe *FaultError
	return errors.As(err, &fe)
}
