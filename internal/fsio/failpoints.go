package fsio

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// ErrPowerCut is the error every op returns once a powercut failpoint has
// tripped: from that op on, the "machine" is off and nothing reaches disk.
// It unwraps to syscall.EIO, which is what a dying disk controller reports.
var ErrPowerCut = fmt.Errorf("power cut: %w", syscall.EIO)

// A rule is one failpoint: inject kind when the Nth..Mth operation matching
// match (an op name, a tag, or "*") comes through.
type rule struct {
	kind  string // "enospc" | "eio" | "torn" | "powercut"
	match string
	from  int // 1-based count window over matching ops; 0 = every op
	to    int // inclusive; 0 with from==0 means "*"
	tear  int // torn: bytes that land before the failure

	seen int // matching ops observed so far (guarded by Failpoints.mu)
}

func (r *rule) matches(op, tag string) bool {
	return r.match == "*" || r.match == op || r.match == tag
}

func (r *rule) window(n int) bool {
	if r.from == 0 {
		return true // "*"
	}
	return n >= r.from && n <= r.to
}

// Failpoints is a parsed `-fsfault` spec: an ordered rule list plus the
// power-cut trip state. One instance is shared by every op on an FS; its
// counters advance under a mutex so injection points are deterministic even
// under concurrent writers (the ops race, but each sees a unique count).
type Failpoints struct {
	mu    sync.Mutex
	rules []*rule
	spec  string

	cutAfter int // powercut: trip after this many total ops (0 = no powercut)
	totalOps int
	cut      bool
}

// ParseFailpoints parses a comma-separated failpoint spec, mirroring the
// chaos-spec grammar:
//
//	enospc:<match>:<count>   ENOSPC on the <count>'th op matching <match>
//	eio:<match>:<count>      EIO likewise
//	torn:<match>:<bytes>     first matching write/append lands only <bytes>
//	                         bytes, then fails with EIO
//	powercut:<n>             after <n> total ops, every op fails (power off)
//
// <match> is an op name (create, open, write, fsync, rename, fsyncdir,
// append, remove, removeall, mkdir, read), a caller tag (put, journal,
// trace, probe, ...), or `*`. <count> is `N`, `*` (every matching op), or `N-M`
// (an inclusive 1-based window). The first rule that triggers wins.
func ParseFailpoints(spec string) (*Failpoints, error) {
	fp := &Failpoints{spec: spec}
	if strings.TrimSpace(spec) == "" {
		return fp, nil
	}
	bad := func(part, why string) error {
		return fmt.Errorf("fsfault %q: %s", part, why)
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		switch fields[0] {
		case "enospc", "eio":
			if len(fields) != 3 {
				return nil, bad(part, "want kind:match:count")
			}
			from, to, err := parseCount(fields[2])
			if err != nil {
				return nil, bad(part, err.Error())
			}
			fp.rules = append(fp.rules, &rule{kind: fields[0], match: fields[1], from: from, to: to})
		case "torn":
			if len(fields) != 3 {
				return nil, bad(part, "want torn:match:bytes")
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, bad(part, "bytes must be a non-negative integer")
			}
			// A torn rule fires once, on the first matching write.
			fp.rules = append(fp.rules, &rule{kind: "torn", match: fields[1], from: 1, to: 1, tear: n})
		case "powercut":
			if len(fields) != 2 {
				return nil, bad(part, "want powercut:n")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, bad(part, "n must be a non-negative integer")
			}
			fp.cutAfter = n + 1 // trip on op n+1
		default:
			return nil, bad(part, "unknown kind (want enospc, eio, torn, powercut)")
		}
	}
	return fp, nil
}

// MustFailpoints is ParseFailpoints for tests and wired-in specs.
func MustFailpoints(spec string) *Failpoints {
	fp, err := ParseFailpoints(spec)
	if err != nil {
		panic(err)
	}
	return fp
}

func parseCount(s string) (from, to int, err error) {
	if s == "*" {
		return 0, 0, nil
	}
	if lo, hi, ok := strings.Cut(s, "-"); ok {
		f, err1 := strconv.Atoi(lo)
		t, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || f < 1 || t < f {
			return 0, 0, fmt.Errorf("count window must be N-M with 1 <= N <= M")
		}
		return f, t, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, 0, fmt.Errorf("count must be a positive integer, `*`, or N-M")
	}
	return n, n, nil
}

// String re-renders the spec the Failpoints were parsed from.
func (fp *Failpoints) String() string {
	if fp == nil {
		return ""
	}
	return fp.spec
}

// gate decides the fate of one operation. tear < 0 means "not torn".
func (fp *Failpoints) gate(op, tag string) (tear int, err error) {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	fp.totalOps++
	if fp.cut || (fp.cutAfter > 0 && fp.totalOps >= fp.cutAfter) {
		fp.cut = true
		return -1, ErrPowerCut
	}
	for _, r := range fp.rules {
		if !r.matches(op, tag) {
			continue
		}
		r.seen++
		if !r.window(r.seen) {
			continue
		}
		switch r.kind {
		case "enospc":
			return -1, syscall.ENOSPC
		case "eio":
			return -1, syscall.EIO
		case "torn":
			if op == OpWrite || op == OpAppend {
				return r.tear, syscall.EIO
			}
			r.seen-- // only writes tear; don't burn the window on others
		}
	}
	return -1, nil
}
