package fsio

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestNilFSIsDurablePassthrough(t *testing.T) {
	dir := t.TempDir()
	var fs *FS // nil: the plain, always-durable seam
	path := filepath.Join(dir, "sub", "a.json")
	if err := fs.WriteFileAtomic("put", path, []byte("hello")); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	got, err := fs.ReadFile("get", path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	af, err := fs.OpenAppend("journal", filepath.Join(dir, "j.log"))
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	if err := af.Append([]byte("line\n")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := af.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := af.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := fs.Remove("evict", path); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if fs.Counters() != (Counters{}) {
		t.Fatalf("nil FS should not count")
	}
}

func TestParseFailpointsGrammar(t *testing.T) {
	good := []string{
		"",
		"enospc:put:3",
		"eio:fsync:*",
		"torn:journal:128",
		"powercut:7",
		"enospc:put:1-4, eio:*:2",
		"enospc:write:*,torn:append:0",
	}
	for _, spec := range good {
		if _, err := ParseFailpoints(spec); err != nil {
			t.Errorf("ParseFailpoints(%q): %v", spec, err)
		}
	}
	bad := []string{
		"enospc:put",     // missing count
		"enospc:put:0",   // count must be >= 1
		"enospc:put:x",   // not a number
		"enospc:put:4-2", // inverted window
		"torn:x",         // missing bytes
		"torn:x:-1",      // negative bytes
		"powercut:x",     // not a number
		"flaky:put:1",    // chaos kind, not an fsfault kind
		"enospc:put:1:extra",
	}
	for _, spec := range bad {
		if _, err := ParseFailpoints(spec); err == nil {
			t.Errorf("ParseFailpoints(%q): want error", spec)
		}
	}
	if got := MustFailpoints("enospc:put:3").String(); got != "enospc:put:3" {
		t.Errorf("String() = %q", got)
	}
}

func TestEnospcAtNthMatchingOp(t *testing.T) {
	// Counts are over matching primitive ops: a WriteFileAtomic under tag
	// "put" is mkdir,create,write,fsync,rename,fsyncdir, so `enospc:put:2`
	// fails the first logical call at its create step — and because the
	// failure precedes the temp file, nothing lands on disk at all.
	dir := t.TempDir()
	fs := New(MustFailpoints("enospc:put:2"))
	p := func(i byte) string { return filepath.Join(dir, string('a'+i)+".json") }

	err := fs.WriteFileAtomic("put", p(0), []byte("one"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("first put: want ENOSPC, got %v", err)
	}
	if !IsInjected(err) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("failed put left files: %v", ents)
	}
	// The window was exactly op 2; the next call's six ops all pass.
	if err := fs.WriteFileAtomic("put", p(1), []byte("two")); err != nil {
		t.Fatalf("second put should pass: %v", err)
	}
	if got, _ := os.ReadFile(p(1)); string(got) != "two" {
		t.Fatalf("entry = %q", got)
	}
	c := fs.Counters()
	if c.Injected != 1 {
		t.Fatalf("Injected = %d, want 1", c.Injected)
	}
}

func TestTornAppendLandsPrefix(t *testing.T) {
	dir := t.TempDir()
	fs := New(MustFailpoints("torn:journal:4"))
	path := filepath.Join(dir, "j.log")
	af, err := fs.OpenAppend("journal", path)
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	err = af.Append([]byte("0123456789\n"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn append: want EIO, got %v", err)
	}
	af.Close()
	got, _ := os.ReadFile(path)
	if string(got) != "0123" {
		t.Fatalf("torn append landed %q, want %q", got, "0123")
	}
	// The rule fired once; the next append goes through whole.
	af, err = fs.OpenAppend("journal", path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := af.Append([]byte("rest\n")); err != nil {
		t.Fatalf("append after torn: %v", err)
	}
	af.Close()
	got, _ = os.ReadFile(path)
	if string(got) != "0123rest\n" {
		t.Fatalf("after recovery append: %q", got)
	}
}

func TestPowerCutFailsEverythingAfterN(t *testing.T) {
	dir := t.TempDir()
	fs := New(MustFailpoints("powercut:3"))
	af, err := fs.OpenAppend("journal", filepath.Join(dir, "j.log")) // op 1
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	if err := af.Append([]byte("a\n")); err != nil { // op 2
		t.Fatalf("append 1: %v", err)
	}
	if err := af.Sync(); err != nil { // op 3: the last op that succeeds
		t.Fatalf("sync: %v", err)
	}
	if err := af.Append([]byte("b\n")); !errors.Is(err, ErrPowerCut) { // op 4: machine is off
		t.Fatalf("append after cut: want ErrPowerCut, got %v", err)
	}
	if !errors.Is(fs.Remove("x", filepath.Join(dir, "j.log")), syscall.EIO) {
		t.Fatalf("ops after cut must keep failing")
	}
	af.Close()
}

func TestFsyncFailpointByOpName(t *testing.T) {
	dir := t.TempDir()
	fs := New(MustFailpoints("eio:fsync:*"))
	err := fs.WriteFileAtomic("put", filepath.Join(dir, "a.json"), []byte("x"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO from fsync failpoint, got %v", err)
	}
	// Atomicity held: the temp never got renamed into place.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("fsync failure left files behind: %v", ents)
	}
}

func TestCountWindow(t *testing.T) {
	fs := New(MustFailpoints("eio:read:2-3"))
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	os.WriteFile(path, []byte("v"), 0o644)
	for i, wantErr := range []bool{false, true, true, false, false} {
		_, err := fs.ReadFile("get", path)
		if (err != nil) != wantErr {
			t.Fatalf("read %d: err=%v, wantErr=%v", i+1, err, wantErr)
		}
	}
}

func TestRecorderTraceAndDump(t *testing.T) {
	dir := t.TempDir()
	fs := New(MustFailpoints("enospc:put:*"))
	rec := NewRecorder(dir, true)
	fs.SetRecorder(rec)

	fs.WriteFileAtomic("meta", filepath.Join(dir, "m.json"), []byte("ok"))
	fs.WriteFileAtomic("put", filepath.Join(dir, "p.json"), []byte("no"))

	ops := rec.Ops()
	if len(ops) == 0 {
		t.Fatalf("no ops recorded")
	}
	var wroteData, sawFault bool
	for i, op := range ops {
		if op.Seq != i+1 {
			t.Fatalf("seq gap at %d: %+v", i, op)
		}
		if filepath.IsAbs(op.Path) {
			t.Fatalf("path not rooted: %+v", op)
		}
		if op.Op == OpWrite && string(op.Data) == "ok" {
			wroteData = true
		}
		if op.Tag == "put" && op.Err != "" {
			sawFault = true
		}
	}
	if !wroteData {
		t.Fatalf("write payload not captured: %+v", ops)
	}
	if !sawFault {
		t.Fatalf("injected fault not recorded: %+v", ops)
	}

	logPath := filepath.Join(t.TempDir(), "oplog.jsonl")
	if err := rec.WriteFile(logPath); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	b, err := os.ReadFile(logPath)
	if err != nil || len(b) == 0 {
		t.Fatalf("op log empty: %v", err)
	}
}

func TestWriteFileAtomicOpOrder(t *testing.T) {
	// The durability fix this package exists for: temp is fsync'd before the
	// rename, and the parent dir is fsync'd after. Regression-tested via the
	// op log, as the issue asks.
	dir := t.TempDir()
	fs := New(nil)
	rec := NewRecorder(dir, false)
	fs.SetRecorder(rec)
	if err := fs.WriteFileAtomic("put", filepath.Join(dir, "a.json"), []byte("x")); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	var seq []string
	for _, op := range rec.Ops() {
		if op.Op == OpMkdir {
			continue
		}
		seq = append(seq, op.Op)
	}
	want := []string{OpCreate, OpWrite, OpFsync, OpRename, OpFsyncDir}
	if len(seq) != len(want) {
		t.Fatalf("op sequence %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("op %d = %s, want %s (full: %v)", i, seq[i], want[i], seq)
		}
	}
}

func TestSetFailpointsRuntimeSwap(t *testing.T) {
	dir := t.TempDir()
	fs := New(MustFailpoints("enospc:put:*"))
	path := filepath.Join(dir, "a.json")
	if err := fs.WriteFileAtomic("put", path, []byte("x")); err == nil {
		t.Fatalf("armed fault did not fire")
	}
	fs.SetFailpoints(nil)
	if got := fs.ArmedSpec(); got != "" {
		t.Fatalf("ArmedSpec after clear = %q", got)
	}
	if err := fs.WriteFileAtomic("put", path, []byte("x")); err != nil {
		t.Fatalf("after clear: %v", err)
	}
	fs.SetFailpoints(MustFailpoints("eio:put:*"))
	if err := fs.WriteFileAtomic("put", path, []byte("y")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("rearmed: want EIO, got %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "x" {
		t.Fatalf("failed overwrite clobbered the entry: %q", got)
	}
}
