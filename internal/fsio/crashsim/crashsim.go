// Package crashsim is the power-cut crash-consistency harness: it replays
// every prefix of a recorded fsio op trace into a shadow directory,
// materializing the on-disk states a real power cut could leave behind, and
// runs a caller-supplied recovery check against each one.
//
// The model follows ext4-style ordering semantics (the ALICE model): file
// *content* becomes durable at fsync(file); namespace operations — create,
// rename, unlink — become durable at fsync(parent dir). Between an applied
// operation and its durability point, a crash may or may not preserve it,
// and an in-flight write may land only a prefix of its bytes. For each op
// prefix the harness therefore materializes up to three crash states:
//
//	durable — only namespace ops whose parent dir was fsync'd, with each
//	          file truncated to its last-fsync'd length (the guaranteed
//	          floor: what MUST survive)
//	applied — every op landed in full (the ceiling: the no-reordering case)
//	torn    — the applied namespace, but unsynced tails half-written
//	          (the adversarial middle: torn final records, partial temps)
//
// Recovery code is correct when the check passes on all of them, for every
// prefix: nothing unsynced or torn is ever served, and whatever the journal
// promised durable is still there.
package crashsim

import (
	"fmt"
	"os"
	"path/filepath"

	"vcoma/internal/fsio"
)

// CheckFunc reopens the recovered state rooted at dir and returns an error
// if any recovery invariant is violated.
type CheckFunc func(dir string) error

// Options tunes a sweep.
type Options struct {
	// Every checks only each Every'th prefix (plus the empty and full
	// prefixes, always). 0 or 1 = every prefix.
	Every int
}

// Run sweeps every prefix of ops × every crash-state variant, materializes
// each into a fresh shadow directory under scratch, and calls check on it.
// The first failing (prefix, variant) aborts the sweep with a descriptive
// error; nil means every reachable crash state recovers.
func Run(ops []fsio.Op, scratch string, check CheckFunc) error {
	return RunOpts(ops, scratch, check, Options{})
}

// RunOpts is Run with sweep options.
func RunOpts(ops []fsio.Op, scratch string, check CheckFunc, opts Options) error {
	every := opts.Every
	if every < 1 {
		every = 1
	}
	seen := make(map[string]bool) // dedupe identical materialized states
	n := 0
	for k := 0; k <= len(ops); k++ {
		if k%every != 0 && k != len(ops) {
			continue
		}
		st := replay(ops[:k])
		for _, v := range []variant{durable, applied, torn} {
			files := st.render(v)
			fp := fingerprint(files)
			if seen[fp] {
				continue
			}
			seen[fp] = true
			n++
			dir := filepath.Join(scratch, fmt.Sprintf("crash-%04d-%s", k, v))
			if err := materialize(dir, st, files); err != nil {
				return fmt.Errorf("crashsim: materialize prefix %d/%d %s: %w", k, len(ops), v, err)
			}
			if err := check(dir); err != nil {
				return fmt.Errorf("crashsim: prefix %d/%d, %s state (%d files): %w",
					k, len(ops), v, len(files), err)
			}
			os.RemoveAll(dir)
		}
	}
	if n == 0 {
		return fmt.Errorf("crashsim: empty sweep (no ops)")
	}
	return nil
}

type variant string

const (
	durable variant = "durable"
	applied variant = "applied"
	torn    variant = "torn"
)

// inode carries a file's full applied content plus how much of it has been
// made durable by fsync. Shared between the visible and durable namespaces
// so a rename doesn't fork content.
type inode struct {
	data   []byte
	synced int
}

type state struct {
	vis  map[string]*inode // namespace after every applied op
	dur  map[string]*inode // namespace as of the last parent-dir fsync
	dirs map[string]bool
}

// replay folds a trace prefix into the model. Failed ops are skipped except
// torn writes/appends, whose recorded partial payload really landed.
func replay(ops []fsio.Op) *state {
	st := &state{vis: map[string]*inode{}, dur: map[string]*inode{}, dirs: map[string]bool{}}
	for _, op := range ops {
		if op.Err != "" && len(op.Data) == 0 {
			continue // pure failure: nothing reached the disk
		}
		switch op.Op {
		case fsio.OpMkdir:
			st.dirs[op.Path] = true
		case fsio.OpCreate:
			st.vis[op.Path] = &inode{} // truncating create
		case fsio.OpOpen:
			if _, ok := st.vis[op.Path]; !ok {
				st.vis[op.Path] = &inode{}
			}
		case fsio.OpWrite:
			ino, ok := st.vis[op.Path]
			if !ok {
				ino = &inode{}
				st.vis[op.Path] = ino
			}
			// Writes in this codebase are single whole-file writes after a
			// truncating create, so a write replaces content from offset 0.
			ino.data = append([]byte(nil), op.Data...)
			ino.synced = 0
		case fsio.OpAppend:
			ino, ok := st.vis[op.Path]
			if !ok {
				ino = &inode{}
				st.vis[op.Path] = ino
			}
			ino.data = append(ino.data, op.Data...)
		case fsio.OpFsync:
			if ino, ok := st.vis[op.Path]; ok {
				ino.synced = len(ino.data)
				// ext4 journaling: fsync of a file commits its inode and,
				// for a fresh file, the directory entry pointing at it —
				// but NOT a later rename, which still needs the dir sync.
				st.dur[op.Path] = ino
			}
		case fsio.OpRename:
			if ino, ok := st.vis[op.Path]; ok {
				delete(st.vis, op.Path)
				st.vis[op.Path2] = ino
			}
		case fsio.OpFsyncDir:
			st.syncNamespace(op.Path)
		case fsio.OpRemove:
			delete(st.vis, op.Path)
		case fsio.OpRemoveAll:
			// Model subtree removal as immediately durable: the harness's
			// recovery invariants must hold whether or not the removal
			// survived, and the durable/applied pair already covers "kept".
			for p := range st.vis {
				if p == op.Path || within(p, op.Path) {
					delete(st.vis, p)
				}
			}
			for p := range st.dur {
				if p == op.Path || within(p, op.Path) {
					delete(st.dur, p)
				}
			}
		}
	}
	return st
}

// syncNamespace makes dir's entries durable: every visible child is now in
// the durable namespace, every removed/renamed-away child is gone from it.
func (st *state) syncNamespace(dir string) {
	for p, ino := range st.vis {
		if filepath.Dir(p) == dir {
			st.dur[p] = ino
		}
	}
	for p := range st.dur {
		if filepath.Dir(p) == dir {
			if _, ok := st.vis[p]; !ok {
				delete(st.dur, p)
			}
		}
	}
}

func within(p, root string) bool {
	rel, err := filepath.Rel(root, p)
	return err == nil && rel != ".." && !escapes(rel)
}

func escapes(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// render materializes one crash-state variant as path → content.
func (st *state) render(v variant) map[string][]byte {
	out := make(map[string][]byte)
	switch v {
	case durable:
		for p, ino := range st.dur {
			out[p] = append([]byte(nil), ino.data[:min(ino.synced, len(ino.data))]...)
		}
	case applied:
		for p, ino := range st.vis {
			out[p] = append([]byte(nil), ino.data...)
		}
	case torn:
		for p, ino := range st.vis {
			keep := len(ino.data)
			if ino.synced < keep {
				keep = ino.synced + (keep-ino.synced)/2
			}
			out[p] = append([]byte(nil), ino.data[:keep]...)
		}
	}
	return out
}

// fingerprint identifies a materialized state so duplicate (prefix, variant)
// states are checked once.
func fingerprint(files map[string][]byte) string {
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sortStrings(paths)
	buf := make([]byte, 0, 256)
	for _, p := range paths {
		buf = append(buf, p...)
		buf = append(buf, 0)
		buf = append(buf, fmt.Sprintf("%d:", len(files[p]))...)
		buf = append(buf, files[p]...)
		buf = append(buf, 0)
	}
	return string(buf)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func materialize(dir string, st *state, files map[string][]byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for d := range st.dirs {
		if filepath.IsAbs(d) {
			continue // op escaped the recorder root; nothing to shadow
		}
		if err := os.MkdirAll(filepath.Join(dir, d), 0o755); err != nil {
			return err
		}
	}
	for p, data := range files {
		if filepath.IsAbs(p) {
			continue
		}
		full := filepath.Join(dir, p)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(full, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
