package crashsim

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vcoma/internal/fsio"
)

// recordAtomicPuts records two WriteFileAtomic calls and returns the trace.
func recordAtomicPuts(t *testing.T) []fsio.Op {
	t.Helper()
	root := t.TempDir()
	fs := fsio.New(nil)
	rec := fsio.NewRecorder(root, true)
	fs.SetRecorder(rec)
	if err := fs.WriteFileAtomic("put", filepath.Join(root, "aa", "one.json"), []byte(`{"v":1}`)); err != nil {
		t.Fatalf("put one: %v", err)
	}
	if err := fs.WriteFileAtomic("put", filepath.Join(root, "bb", "two.json"), []byte(`{"v":2}`)); err != nil {
		t.Fatalf("put two: %v", err)
	}
	return rec.Ops()
}

func TestAtomicWriteNeverVisiblyPartial(t *testing.T) {
	// The whole point of WriteFileAtomic: in every crash state, each final
	// path is either absent or holds its complete payload. Torn bytes may
	// exist only under temp names, which recovery ignores.
	ops := recordAtomicPuts(t)
	if len(ops) < 10 {
		t.Fatalf("trace too short: %d ops", len(ops))
	}
	err := Run(ops, t.TempDir(), func(dir string) error {
		for rel, want := range map[string]string{
			filepath.Join("aa", "one.json"): `{"v":1}`,
			filepath.Join("bb", "two.json"): `{"v":2}`,
		} {
			b, err := os.ReadFile(filepath.Join(dir, rel))
			if os.IsNotExist(err) {
				continue // absent is a legal crash outcome
			}
			if err != nil {
				return err
			}
			if string(b) != want {
				return fmt.Errorf("%s visible with partial content %q", rel, b)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
}

func TestFinalPrefixIsFullyDurable(t *testing.T) {
	// After the complete trace, even the durable floor must hold both
	// entries: that is what fsync-before-rename + dir-sync buys.
	ops := recordAtomicPuts(t)
	st := replay(ops)
	files := st.render(durable)
	for _, rel := range []string{filepath.Join("aa", "one.json"), filepath.Join("bb", "two.json")} {
		b, ok := files[rel]
		if !ok {
			t.Fatalf("durable state after full trace missing %s (have %v)", rel, keys(files))
		}
		if !strings.HasPrefix(string(b), `{"v":`) {
			t.Fatalf("durable %s = %q", rel, b)
		}
	}
}

func TestUnsyncedRenameIsNotDurable(t *testing.T) {
	// A rename whose parent dir was never fsync'd shows up in the applied
	// state but not the durable one — the lost-but-not-synced rename case.
	root := t.TempDir()
	fs := fsio.New(nil)
	rec := fsio.NewRecorder(root, true)
	fs.SetRecorder(rec)
	af, err := fs.Create("x", filepath.Join(root, "tmp1"))
	if err != nil {
		t.Fatal(err)
	}
	af.Append([]byte("payload"))
	af.Sync()
	af.Close()
	// Bare os.Rename semantics: no dir sync afterwards (simulate the old
	// buggy writeFileAtomic by renaming outside the seam's Rename helper).
	os.Rename(filepath.Join(root, "tmp1"), filepath.Join(root, "final"))
	// Record the rename op by hand-appending via the model: re-record with
	// a trace built from ops + synthetic rename.
	ops := append(rec.Ops(), fsio.Op{Op: fsio.OpRename, Path: "tmp1", Path2: "final"})

	st := replay(ops)
	if _, ok := st.render(applied)["final"]; !ok {
		t.Fatalf("applied state missing renamed file")
	}
	durFiles := st.render(durable)
	if _, ok := durFiles["final"]; ok {
		t.Fatalf("unsynced rename must not be durable: %v", keys(durFiles))
	}
	// With the dir fsync the rename becomes durable.
	ops = append(ops, fsio.Op{Op: fsio.OpFsyncDir, Path: "."})
	durFiles = replay(ops).render(durable)
	if string(durFiles["final"]) != "payload" {
		t.Fatalf("synced rename not durable: %v", keys(durFiles))
	}
}

func TestTornTailAppend(t *testing.T) {
	// journal-style: synced records survive whole, the unsynced tail tears.
	root := t.TempDir()
	fs := fsio.New(nil)
	rec := fsio.NewRecorder(root, true)
	fs.SetRecorder(rec)
	af, err := fs.Create("journal", filepath.Join(root, "j.log"))
	if err != nil {
		t.Fatal(err)
	}
	af.Append([]byte("rec-one\n"))
	af.Sync()
	af.Append([]byte("rec-two\n"))
	// no sync: this record is in flight when the power goes
	af.Close()

	st := replay(rec.Ops())
	if got := string(st.render(durable)["j.log"]); got != "rec-one\n" {
		t.Fatalf("durable journal = %q, want only the synced record", got)
	}
	if got := string(st.render(applied)["j.log"]); got != "rec-one\nrec-two\n" {
		t.Fatalf("applied journal = %q", got)
	}
	tornB := string(st.render(torn)["j.log"])
	if !strings.HasPrefix(tornB, "rec-one\n") || tornB == "rec-one\nrec-two\n" || len(tornB) <= len("rec-one\n") {
		t.Fatalf("torn journal = %q, want a strict partial tail", tornB)
	}
}

func TestRunReportsFailingPrefix(t *testing.T) {
	ops := recordAtomicPuts(t)
	wantFail := filepath.Join("bb", "two.json")
	err := Run(ops, t.TempDir(), func(dir string) error {
		if _, err := os.Stat(filepath.Join(dir, wantFail)); err == nil {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatalf("sweep should fail once two.json appears")
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "prefix") {
		t.Fatalf("error lacks context: %v", err)
	}
}

func TestRunOptsEveryStillCoversEnds(t *testing.T) {
	ops := recordAtomicPuts(t)
	var sawEmpty, sawFull bool
	err := RunOpts(ops, t.TempDir(), func(dir string) error {
		ents := 0
		filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
			if err == nil && info != nil && !info.IsDir() {
				ents++
			}
			return nil
		})
		if ents == 0 {
			sawEmpty = true
		}
		if ents == 2 {
			sawFull = true
		}
		return nil
	}, Options{Every: 5})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if !sawEmpty || !sawFull {
		t.Fatalf("strided sweep must still include the empty and full prefixes (empty=%v full=%v)", sawEmpty, sawFull)
	}
}

func keys(m map[string][]byte) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
