package fsio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Op is one recorded filesystem primitive. Paths are stored relative to the
// recorder's root when they fall under it, so a trace replays into any
// shadow directory. Data is captured only for write/append ops (and only
// when the recorder was created with captureData), because those are the
// ops crashsim must re-materialize.
type Op struct {
	Seq   int    `json:"seq"`
	Op    string `json:"op"`
	Tag   string `json:"tag"`
	Path  string `json:"path"`
	Path2 string `json:"path2,omitempty"` // rename target
	Data  []byte `json:"data,omitempty"`
	Err   string `json:"err,omitempty"` // non-empty: the op failed (injected or real)
}

// Recorder accumulates the op log of an FS. Attach with FS.SetRecorder.
type Recorder struct {
	mu      sync.Mutex
	root    string
	capture bool
	ops     []Op
}

// NewRecorder returns a recorder rooting relative paths at root. With
// captureData, write/append payloads are kept (needed for crashsim replay;
// skip it for long-running servers where the log is diagnostic only).
func NewRecorder(root string, captureData bool) *Recorder {
	return &Recorder{root: filepath.Clean(root), capture: captureData}
}

func (r *Recorder) rel(path string) string {
	if path == "" {
		return ""
	}
	if rel, err := filepath.Rel(r.root, path); err == nil && !escapesRoot(rel) {
		return rel
	}
	return path
}

// escapesRoot reports whether a Rel result climbs out of the root.
func escapesRoot(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

func (r *Recorder) add(op, tag, path, path2 string, data []byte, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := Op{
		Seq:   len(r.ops) + 1,
		Op:    op,
		Tag:   tag,
		Path:  r.rel(path),
		Path2: r.rel(path2),
	}
	if err != nil {
		e.Err = err.Error()
	}
	if r.capture && data != nil && (op == OpWrite || op == OpAppend) {
		e.Data = bytes.Clone(data)
	}
	r.ops = append(r.ops, e)
}

// Ops returns a copy of the recorded trace.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}

// Len returns the number of recorded ops.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// WriteFile dumps the op log as JSONL — the artifact CI uploads when a
// fault smoke fails. Written with plain os calls: the op log must come out
// even when the FS it watched is mid-fault.
func (r *Recorder) WriteFile(path string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var buf bytes.Buffer
	for _, op := range r.ops {
		b, err := json.Marshal(op)
		if err != nil {
			return fmt.Errorf("fsio: encode op %d: %w", op.Seq, err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
