package sim

import (
	"strings"
	"testing"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/machine"
	"vcoma/internal/trace"
)

func newMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(config.SmallTest())
	if err != nil {
		t.Fatal(err)
	}
	// Preload a working range so accesses resolve.
	g := m.Geometry()
	m.VM().Preload(0x10000, 8*1024)
	for off := uint64(0); off < 8*1024; off += g.AMBlockSize() {
		va := g.Block(addr.Virtual(0x10000 + off))
		m.Protocol().Preload(uint64(m.VM().Translate(va)), m.VM().PlacementNode(va))
	}
	return m
}

func streams(events ...[]trace.Event) []trace.Stream {
	out := make([]trace.Stream, len(events))
	for i, evs := range events {
		out[i] = trace.NewSliceStream(evs)
	}
	return out
}

func run(t *testing.T, m *machine.Machine, ss []trace.Stream) Result {
	t.Helper()
	e, err := New(m, ss)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStreamCountValidation(t *testing.T) {
	m := newMachine(t)
	if _, err := New(m, streams(nil, nil)); err == nil {
		t.Fatal("wrong stream count accepted")
	}
}

func TestComputeAccountsBusy(t *testing.T) {
	m := newMachine(t)
	ss := streams(
		[]trace.Event{{Kind: trace.Compute, Cycles: 123}},
		nil, nil, nil,
	)
	res := run(t, m, ss)
	if res.Procs[0].Busy != 123 || res.Procs[0].Finish != 123 {
		t.Fatalf("proc 0: %+v", res.Procs[0])
	}
	if res.ExecTime != 123 {
		t.Fatalf("exec time %d", res.ExecTime)
	}
	if res.Events != 1 {
		t.Fatalf("events %d", res.Events)
	}
}

func TestMemoryRefsStallAndCount(t *testing.T) {
	m := newMachine(t)
	ss := streams(
		[]trace.Event{
			{Kind: trace.Read, Addr: 0x10000},
			{Kind: trace.Read, Addr: 0x10000}, // FLC hit
			{Kind: trace.Write, Addr: 0x10100},
		},
		nil, nil, nil,
	)
	res := run(t, m, ss)
	p := res.Procs[0]
	if p.Refs != 3 {
		t.Fatalf("refs %d", p.Refs)
	}
	if p.StallLocal+p.StallRemote+p.Trans == 0 {
		t.Fatal("no stall recorded for cold accesses")
	}
	if got := p.Total(); got != p.Finish {
		t.Fatalf("breakdown sum %d != finish %d", got, p.Finish)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	m := newMachine(t)
	ss := streams(
		[]trace.Event{{Kind: trace.Compute, Cycles: 1000}, {Kind: trace.Barrier, ID: 0}},
		[]trace.Event{{Kind: trace.Barrier, ID: 0}},
		[]trace.Event{{Kind: trace.Compute, Cycles: 50}, {Kind: trace.Barrier, ID: 0}},
		[]trace.Event{{Kind: trace.Barrier, ID: 0}},
	)
	res := run(t, m, ss)
	// Everyone finishes at or after the slowest arrival.
	for i, p := range res.Procs {
		if p.Finish < 1000 {
			t.Fatalf("proc %d finished at %d, before the slowest barrier arrival", i, p.Finish)
		}
	}
	// The fast processors accumulated sync time.
	if res.Procs[1].Sync == 0 || res.Procs[3].Sync == 0 {
		t.Fatal("waiters recorded no sync time")
	}
	if res.Procs[0].Sync >= res.Procs[1].Sync {
		t.Fatal("the slowest arrival should wait the least")
	}
}

func TestLockMutualExclusionAndQueueing(t *testing.T) {
	m := newMachine(t)
	// All four processors take the same lock around a compute section.
	evs := func(pre uint64) []trace.Event {
		return []trace.Event{
			{Kind: trace.Compute, Cycles: pre},
			{Kind: trace.LockAcquire, ID: 5},
			{Kind: trace.Compute, Cycles: 100},
			{Kind: trace.LockRelease, ID: 5},
		}
	}
	res := run(t, m, streams(evs(0), evs(1), evs(2), evs(3)))
	// Critical sections cannot overlap: total span >= 4 * 100.
	if res.ExecTime < 400 {
		t.Fatalf("exec %d: critical sections overlapped", res.ExecTime)
	}
	var totalSync uint64
	for _, p := range res.Procs {
		totalSync += p.Sync
	}
	if totalSync == 0 {
		t.Fatal("no lock sync time recorded")
	}
}

func TestUnlockWithoutLockFails(t *testing.T) {
	m := newMachine(t)
	e, err := New(m, streams(
		[]trace.Event{{Kind: trace.LockRelease, ID: 1}},
		nil, nil, nil,
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil || !strings.Contains(err.Error(), "releases lock") {
		t.Fatalf("bad release not detected: %v", err)
	}
}

func TestUnbalancedBarrierDeadlocks(t *testing.T) {
	m := newMachine(t)
	e, err := New(m, streams(
		[]trace.Event{{Kind: trace.Barrier, ID: 0}},
		[]trace.Event{{Kind: trace.Barrier, ID: 0}},
		[]trace.Event{{Kind: trace.Barrier, ID: 0}},
		nil, // proc 3 never arrives
	))
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("deadlock not detected: %v", err)
	}
	// Proc 3's empty stream finishes; the three barrier arrivals must be
	// classified as barrier waiters, not lock waiters.
	if want := "1 done, 3 waiting (0 at locks, 3 at barriers) of 4"; !strings.Contains(err.Error(), want) {
		t.Fatalf("waiter classification wrong: %v (want %q)", err, want)
	}
}

func TestLockNeverGrantedTwice(t *testing.T) {
	m := newMachine(t)
	e, err := New(m, streams(
		[]trace.Event{{Kind: trace.LockAcquire, ID: 9}},
		[]trace.Event{{Kind: trace.LockAcquire, ID: 9}}, // blocks forever
		nil, nil,
	))
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run()
	if err == nil {
		t.Fatal("lock held at end with a waiter should deadlock")
	}
	// Proc 0 finishes still holding the lock; proc 1 is the only waiter and
	// is queued at the lock, not a barrier.
	if want := "3 done, 1 waiting (1 at locks, 0 at barriers) of 4"; !strings.Contains(err.Error(), want) {
		t.Fatalf("waiter classification wrong: %v (want %q)", err, want)
	}
}

func TestDeadlockClassifiesMixedWaiters(t *testing.T) {
	m := newMachine(t)
	// Proc 0 takes the lock and parks at a barrier that never fills; proc 1
	// queues behind the lock; proc 2 joins the barrier; proc 3 exits. The
	// diagnostic must split the three waiters as one lock waiter and two
	// barrier waiters (the seed code counted all three as lock waiters AND
	// reported the barrier arrivals on top).
	e, err := New(m, streams(
		[]trace.Event{{Kind: trace.LockAcquire, ID: 1}, {Kind: trace.Barrier, ID: 0}},
		[]trace.Event{{Kind: trace.LockAcquire, ID: 1}},
		[]trace.Event{{Kind: trace.Barrier, ID: 0}},
		nil,
	))
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("deadlock not detected: %v", err)
	}
	if want := "1 done, 3 waiting (1 at locks, 2 at barriers) of 4"; !strings.Contains(err.Error(), want) {
		t.Fatalf("waiter classification wrong: %v (want %q)", err, want)
	}
}

// TestMaxClockSeesLockGrant pins the watchdog-staleness fix: a lock grant
// advances the *granted* processor's clock past everything the executing
// processor ever reaches, and if the grantee retires no further events the
// seed engine never folded that advance into maxClock — the livelock
// detector and the sim/watchdog/maxClock probe ran on stale progress.
func TestMaxClockSeesLockGrant(t *testing.T) {
	m := newMachine(t)
	e, err := New(m, streams(
		[]trace.Event{
			{Kind: trace.LockAcquire, ID: 7},
			{Kind: trace.Compute, Cycles: 500},
			{Kind: trace.LockRelease, ID: 7},
		},
		// Proc 1 blocks on the lock and finishes the moment it is granted:
		// the grant is the last advance of its clock, and it is performed by
		// proc 0's release step.
		[]trace.Event{{Kind: trace.LockAcquire, ID: 7}},
		nil, nil,
	))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[1].Finish <= res.Procs[0].Finish {
		t.Fatalf("test premise broken: grantee should finish last (%d vs %d)",
			res.Procs[1].Finish, res.Procs[0].Finish)
	}
	if e.maxClock != res.ExecTime {
		t.Fatalf("maxClock %d stale after lock grant: execution reached %d", e.maxClock, res.ExecTime)
	}
}

// TestMaxClockSeesBarrierRelease is the barrier-side twin: the release loop
// rewrites every arrived processor's clock, and maxClock must track the
// largest staggered restart even when no released processor executes again.
func TestMaxClockSeesBarrierRelease(t *testing.T) {
	m := newMachine(t)
	var evs [][]trace.Event
	for p := 0; p < 4; p++ {
		evs = append(evs, []trace.Event{{Kind: trace.Barrier, ID: 0}})
	}
	e, err := New(m, streams(evs...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if e.maxClock != res.ExecTime {
		t.Fatalf("maxClock %d stale after barrier release: execution reached %d", e.maxClock, res.ExecTime)
	}
}

func TestDeterminism(t *testing.T) {
	build := func() (*machine.Machine, []trace.Stream) {
		m := newMachine(t)
		var ss []trace.Stream
		for p := 0; p < 4; p++ {
			p := p
			ss = append(ss, trace.NewGenerator(func(e *trace.Emitter) {
				for i := 0; i < 500; i++ {
					e.Read(addr.Virtual(0x10000 + (i*13+p*7)%4096))
					if i%5 == 0 {
						e.Write(addr.Virtual(0x10000 + (i*29)%4096))
					}
					if i%100 == 0 {
						e.Barrier(i / 100)
					}
				}
			}))
		}
		return m, ss
	}
	m1, s1 := build()
	m2, s2 := build()
	r1 := run(t, m1, s1)
	r2 := run(t, m2, s2)
	if r1.ExecTime != r2.ExecTime || r1.Events != r2.Events {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", r1.ExecTime, r1.Events, r2.ExecTime, r2.Events)
	}
	for i := range r1.Procs {
		if r1.Procs[i] != r2.Procs[i] {
			t.Fatalf("proc %d diverged: %+v vs %+v", i, r1.Procs[i], r2.Procs[i])
		}
	}
}

func TestTotalProc(t *testing.T) {
	m := newMachine(t)
	res := run(t, m, streams(
		[]trace.Event{{Kind: trace.Compute, Cycles: 10}},
		[]trace.Event{{Kind: trace.Compute, Cycles: 30}},
		nil, nil,
	))
	tot := res.TotalProc()
	if tot.Busy != 40 || tot.Finish != 30 {
		t.Fatalf("total %+v", tot)
	}
}

func TestLockGrantsAreFIFO(t *testing.T) {
	m := newMachine(t)
	// Proc 0 takes the lock; procs 1..3 arrive in a known order (their
	// compute prefixes stagger the arrivals); grants must follow arrival
	// order.
	evs := func(pre uint64) []trace.Event {
		return []trace.Event{
			{Kind: trace.Compute, Cycles: pre},
			{Kind: trace.LockAcquire, ID: 1},
			{Kind: trace.Compute, Cycles: 10},
			{Kind: trace.LockRelease, ID: 1},
		}
	}
	res := run(t, m, streams(evs(0), evs(100), evs(200), evs(300)))
	// Completion order == arrival order: finish times strictly increase.
	for i := 1; i < 4; i++ {
		if res.Procs[i].Finish <= res.Procs[i-1].Finish {
			t.Fatalf("proc %d finished at %d, before proc %d at %d — not FIFO",
				i, res.Procs[i].Finish, i-1, res.Procs[i-1].Finish)
		}
	}
}

func TestBarrierReleaseStagger(t *testing.T) {
	m := newMachine(t)
	var evs [][]trace.Event
	for p := 0; p < 4; p++ {
		evs = append(evs, []trace.Event{{Kind: trace.Barrier, ID: 0}})
	}
	res := run(t, m, streams(evs...))
	finishes := map[uint64]bool{}
	for _, p := range res.Procs {
		finishes[p.Finish] = true
	}
	if len(finishes) < 2 {
		t.Fatal("all processors released at the same cycle: no stagger")
	}
}

func TestEngineRunsGeneratorStreams(t *testing.T) {
	m := newMachine(t)
	var ss []trace.Stream
	for p := 0; p < 4; p++ {
		ss = append(ss, trace.NewGenerator(func(e *trace.Emitter) {
			for i := 0; i < 100; i++ {
				e.Read(addr.Virtual(0x10000 + i*16))
			}
			e.Barrier(0)
		}))
	}
	res := run(t, m, ss)
	if res.Events != 4*101 {
		t.Fatalf("events %d", res.Events)
	}
}
