package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"vcoma/internal/addr"
	"vcoma/internal/machine"
	"vcoma/internal/trace"
)

// This file is the parallel round engine. The sequential engine retires
// events in (clock, proc)-key order; the parallel engine produces the
// byte-identical run by splitting each scheduling window into two phases:
//
//  1. Burst: processors are partitioned across shard goroutines. Each shard
//     steps its processors through a bounded burst of *contained* events —
//     those the machine proves touch only the issuing node's private state
//     (machine.AccessContained) — against frozen global state, recording
//     every event on a per-processor tape. The first event that needs
//     global state (coherence, SLC fill, page mapping, synchronization)
//     parks the processor with the event pushed back. Processors whose
//     clock is already past the round window park immediately and pay
//     nothing: their events cannot commit this round anyway.
//
//  2. Commit + drain: the cutoff is the smallest parked scheduling key.
//     Tape entries at keys ≤ cutoff are committed — contained events on
//     distinct nodes commute, and per-processor clock trajectories equal
//     the sequential ones, so the key-merged tapes are exactly the
//     sequential retirement prefix. Entries beyond the cutoff are rewound
//     (node state rolled back to the round checkpoint, the committed prefix
//     re-executed, pulled events re-delivered) because the drain may
//     invalidate their inputs. The drain then runs the ordinary sequential
//     loop — full coherence, locks, barriers — for a bounded quantum
//     starting at the cutoff.
//
// The drain quantum adapts to the workload's phase: when bursts commit
// little (sync- or miss-dominated stretches, where the cutoff sits right at
// the frontier) the quantum grows toward parDrainMax so the engine behaves
// like the sequential loop with a cheap parallel probe per quantum; when
// bursts commit well (compute-dense stretches with high cache hit rates) it
// shrinks toward parDrainMin and most events retire through the parallel
// phase.
//
// Every decision (burst caps, park classification, cutoff, drain quantum,
// adaptation) depends only on per-processor state and frozen global state,
// never on shard count or goroutine timing, so the committed event sequence
// — counters, digests, final memory image — is invariant across shard
// counts and equal to the sequential engine's. That invariance is what
// internal/check's parity harness and FuzzParallelParity verify.

const (
	// parRoundCap bounds one processor's burst per round, which bounds both
	// the tape memory and how far past a budget the engine can run before
	// the round barrier checks it.
	parRoundCap = 512
	// parWindow bounds a burst in simulated cycles past the round's minimum
	// processor clock. Only events below the smallest parked key commit, so
	// a processor far ahead of the frontier would speculate entirely in
	// vain; the window keeps the wasted work proportional to the frontier's
	// real spread.
	parWindow = 1024
	// parDrainMin and parDrainMax bound the adaptive sequential-drain
	// quantum; the next round re-enters the burst phase for whatever became
	// runnable.
	parDrainMin = 128
	parDrainMax = 4096
)

// SetParallel selects the number of shard goroutines for Run. n ≤ 1 (the
// default) is the sequential engine. Any n produces byte-identical results;
// runs that cannot use shards (machine-level instrumentation attached,
// non-batching streams, single processor) silently run sequentially.
func (e *Engine) SetParallel(n int) { e.shards = n }

// parallelOK reports whether this run can use the round engine.
func (e *Engine) parallelOK() bool {
	if len(e.procs) < 2 {
		return false
	}
	if !e.m.ParallelEligible() {
		return false
	}
	for i := range e.procs {
		// Push-back of a parked event needs batch indices to rewind.
		if e.procs[i].batcher == nil {
			return false
		}
	}
	return true
}

// parEvent is one tape entry: the event, its scheduling key at issue, and
// the processor clock after it executed (checked on replay).
type parEvent struct {
	key  uint64
	post uint64
	ev   trace.Event
}

// parProc is one processor's per-round state.
type parProc struct {
	tape   []parEvent
	parked bool
	armed  bool // a node checkpoint is open and must be closed this round

	snapClock uint64
	snapStats ProcStats
	snapNode  machine.NodeSnapshot

	// pending double-buffers rewindProc's re-delivery queue: the engine may
	// still be consuming the slice installed by the previous rewind when the
	// next one builds its queue, so the builder alternates buffers.
	pending [2][]trace.Event
	flip    int
}

// parRunner is the round engine's bookkeeping.
type parRunner struct {
	e      *Engine
	shards int
	procs  []parProc

	quantum   int // current drain quantum, adapted each round
	rounds    uint64
	committed uint64 // contained events committed at round barriers
	drained   uint64 // events executed by sequential drains
}

func (e *Engine) runParallel() error {
	r := &parRunner{e: e, shards: e.shards, quantum: parDrainMin}
	if r.shards > len(e.procs) {
		r.shards = len(e.procs)
	}
	r.procs = make([]parProc, len(e.procs))
	e.par = r
	for {
		runnable := false
		for i := range e.procs {
			if !e.procs[i].done && !e.procs[i].waiting {
				runnable = true
				break
			}
		}
		if !runnable {
			return nil // all done, or deadlocked: Run's tail decides
		}
		if err := r.round(); err != nil {
			return err
		}
	}
}

func (r *parRunner) round() error {
	e := r.e
	r.rounds++

	minClock := ^uint64(0)
	for i := range e.procs {
		p := &e.procs[i]
		if !p.done && !p.waiting && p.clock < minClock {
			minClock = p.clock
		}
	}
	windowEnd := minClock + parWindow

	// Burst phase: shard s owns processors s, s+shards, s+2*shards, ...
	// Shards touch only their own processors' node state; global state is
	// frozen until the drain, and the WaitGroup orders everything after.
	var wg sync.WaitGroup
	for s := 1; s < r.shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r.burstShard(s, windowEnd)
		}(s)
	}
	r.burstShard(0, windowEnd)
	wg.Wait()

	// Cutoff: the smallest parked key. Events at keys beyond it may read
	// state the drain is about to change, so they cannot commit this round.
	cutoff := ^uint64(0)
	for i := range r.procs {
		if r.procs[i].parked {
			if k := packSchedKey(e.procs[i].clock, int32(i)); k < cutoff {
				cutoff = k
			}
		}
	}

	// Rewind phase: every tape past the cutoff is rolled back and its
	// committed prefix re-executed. A rewind touches only the processor and
	// its own node's state, so this phase shards exactly like the burst.
	for s := 1; s < r.shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r.rewindShard(s, cutoff)
		}(s)
	}
	r.rewindShard(0, cutoff)
	wg.Wait()

	// Account the committed prefixes.
	total := 0
	for i := range r.procs {
		total += len(r.procs[i].tape)
		e.noteClock(e.procs[i].clock)
	}
	r.committed += uint64(total)
	if e.stepObs != nil || e.sampler != nil {
		r.replayMerged()
	} else {
		e.events += uint64(total)
	}
	if err := r.checkBudgetBarrier(); err != nil {
		return err
	}

	// Drain: the ordinary sequential engine picks up at the cutoff.
	for i := range e.procs {
		p := &e.procs[i]
		if p.done || p.waiting {
			e.schedUpdate(i, schedIdle)
		} else {
			e.schedUpdate(i, packSchedKey(p.clock, int32(i)))
		}
	}
	supervised := !e.budget.Zero() || e.ctx != nil
	steps := 0
	for steps < r.quantum {
		top := e.sched[1]
		if top == schedIdle {
			break
		}
		i := int(top & (1<<schedIndexBits - 1))
		if err := e.step(i); err != nil {
			return err
		}
		steps++
		if supervised {
			if err := e.checkBudget(); err != nil {
				return err
			}
		}
		p := &e.procs[i]
		if p.done || p.waiting {
			e.schedUpdate(i, schedIdle)
		} else {
			e.schedUpdate(i, packSchedKey(p.clock, int32(i)))
		}
	}
	r.drained += uint64(steps)

	// Adapt the next drain quantum to this round's commits. Commits per
	// round track the workload's contained-streak length, not the quantum,
	// so the test is against the finest quantum: if bursts out-commit a
	// minimum drain, finer rounds raise the parallel fraction; if they
	// commit almost nothing, coarser rounds amortize the barrier. Both
	// counts are shard-count-invariant, so the quantum trajectory — and
	// with it the round structure — is too.
	if total >= parDrainMin {
		if r.quantum > parDrainMin {
			r.quantum /= 2
		}
	} else if uint64(total)*2 < uint64(steps) && r.quantum < parDrainMax {
		r.quantum *= 2
	}
	return nil
}

func (r *parRunner) burstShard(s int, windowEnd uint64) {
	for i := s; i < len(r.e.procs); i += r.shards {
		r.burstProc(i, windowEnd)
	}
}

// rewindShard applies the cutoff to shard s's processors: tapes that run
// past it are rewound (rewindProc), fully-kept tapes just close their
// checkpoint.
func (r *parRunner) rewindShard(s int, cutoff uint64) {
	for i := s; i < len(r.e.procs); i += r.shards {
		pp := &r.procs[i]
		keep := len(pp.tape)
		for keep > 0 && pp.tape[keep-1].key > cutoff {
			keep--
		}
		if keep < len(pp.tape) {
			r.rewindProc(i, keep) // closes the checkpoint via RestoreNode
			pp.tape = pp.tape[:keep]
		} else if pp.armed {
			r.e.m.CommitNode(addr.Node(i))
		}
		pp.armed = false
	}
}

// burstProc steps processor i through contained events until it parks (a
// non-contained event, pushed back), caps out, or finishes its stream.
func (r *parRunner) burstProc(i int, windowEnd uint64) {
	e := r.e
	p := &e.procs[i]
	pp := &r.procs[i]
	pp.tape = pp.tape[:0]
	pp.parked = false
	if p.done || p.waiting {
		return
	}
	if p.clock >= windowEnd {
		// Past the window: park at the current clock without opening a
		// checkpoint. The unexamined next event still bounds the cutoff.
		pp.parked = true
		return
	}
	pp.snapClock, pp.snapStats = p.clock, p.stats
	e.m.SnapshotNode(addr.Node(i), &pp.snapNode)
	pp.armed = true
	for {
		if len(pp.tape) >= parRoundCap || p.clock >= windowEnd {
			// A capped processor parks exactly like a non-contained event:
			// its unexamined next event bounds the cutoff, so no drain
			// event can slip in ahead of it.
			pp.parked = true
			return
		}
		var ev trace.Event
		if p.bpos < len(p.batch) {
			ev = p.batch[p.bpos]
			p.bpos++
		} else {
			var ok bool
			if ev, ok = p.refill(); !ok {
				p.done = true
				return
			}
		}
		key := packSchedKey(p.clock, int32(i))
		if !r.execContained(i, ev) {
			p.bpos-- // push the event back for the drain
			pp.parked = true
			return
		}
		pp.tape = append(pp.tape, parEvent{key: key, post: p.clock, ev: ev})
	}
}

// execContained executes ev on processor i iff it is contained, mirroring
// step's accounting exactly. Used by both the burst and the rewind replay.
func (r *parRunner) execContained(i int, ev trace.Event) bool {
	p := &r.e.procs[i]
	switch ev.Kind {
	case trace.Compute:
		p.stats.Busy += ev.Cycles
		p.clock += ev.Cycles
		return true
	case trace.Read, trace.Write:
		res, ok := r.e.m.AccessContained(p.clock, addr.Node(i), ev.Addr, ev.Kind == trace.Write)
		if !ok {
			return false
		}
		p.stats.Refs++
		p.clock += res.Cycles
		p.stats.Trans += res.TransCycles
		stall := res.Cycles - res.TransCycles
		if res.Class == machine.ClassRemote {
			p.stats.StallRemote += stall
		} else {
			p.stats.StallLocal += stall
		}
		return true
	default:
		// Synchronization (and anything unknown) always goes through the
		// sequential drain.
		return false
	}
}

// rewindProc rolls processor i back to the round checkpoint, re-executes the
// first keep tape entries (they commit this round), and queues everything
// else it had pulled from its stream for re-delivery.
func (r *parRunner) rewindProc(i, keep int) {
	e := r.e
	p := &e.procs[i]
	pp := &r.procs[i]

	// Re-deliver the rewound tape suffix, then the rest of the in-flight
	// batch (which includes any pushed-back parked event). The batch is
	// still live — its producer recycles it only on the next NextBatch, and
	// the alternate scratch buffer is free for the same reason — so copying
	// here is safe, and refill takes over when this runs dry.
	suffix := pp.tape[keep:]
	pending := pp.pending[pp.flip][:0]
	pp.flip ^= 1
	for j := range suffix {
		pending = append(pending, suffix[j].ev)
	}
	pending = append(pending, p.batch[p.bpos:]...)
	pp.pending[pp.flip^1] = pending
	p.batch, p.bpos = pending, 0
	p.done = false

	p.clock, p.stats = pp.snapClock, pp.snapStats
	e.m.RestoreNode(addr.Node(i), &pp.snapNode)
	for j := 0; j < keep; j++ {
		t := &pp.tape[j]
		if !r.execContained(i, t.ev) || p.clock != t.post {
			panic(fmt.Sprintf("sim: parallel replay diverged on proc %d", i))
		}
	}
}

// replayMerged fires the per-event observers (step observer, epoch sampler,
// event counter) for the round's committed tapes in exact sequential
// retirement order: ascending scheduling key, with a processor's equal-key
// runs kept in program order. Only observed runs pay for the merge; plain
// runs just add the counts.
func (r *parRunner) replayMerged() {
	e := r.e
	heads := make([]int, len(r.procs))
	for {
		best := -1
		var bestKey uint64
		for i := range r.procs {
			t := r.procs[i].tape
			if heads[i] >= len(t) {
				continue
			}
			if k := t[heads[i]].key; best < 0 || k < bestKey {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			return
		}
		t := &r.procs[best].tape[heads[best]]
		heads[best]++
		e.events++
		if e.stepObs != nil {
			e.stepObs(best, t.ev)
		}
		e.sampler.Tick(t.post)
	}
}

// checkBudgetBarrier is the round-barrier budget check. Unlike the per-step
// checkBudget it always polls wall clock and context — a mostly-contained
// run retires few events through the drain, so the periodic poll there can
// be arbitrarily far apart. Tripping here (rather than mid-burst) keeps the
// dump coherent: it reflects exactly the committed prefix of the run.
func (r *parRunner) checkBudgetBarrier() error {
	e := r.e
	if err := e.checkBudget(); err != nil {
		return err
	}
	if e.budget.MaxWall > 0 && time.Since(e.wallStart) > e.budget.MaxWall {
		return e.trip(fmt.Sprintf("wall-clock budget exceeded (limit %v)", e.budget.MaxWall))
	}
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return e.trip("context deadline exceeded")
			}
			return err
		}
	}
	return nil
}
