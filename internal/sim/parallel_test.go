package sim

import (
	"errors"
	"fmt"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"vcoma/internal/addr"
	"vcoma/internal/machine"
	"vcoma/internal/trace"
)

func addrOf(a uint64) addr.Virtual { return addr.Virtual(a) }

// mixedEvents builds a 4-proc workload mixing every event kind the engine
// handles — compute, reads and writes over the preloaded range (hits and
// misses), contended locks, barriers — sized so parallel runs go through
// many rounds, bursts, rewinds and drains.
func mixedEvents(n int) [][]trace.Event {
	out := make([][]trace.Event, 4)
	for p := range out {
		evs := make([]trace.Event, 0, n)
		for k := 0; k < n; k++ {
			switch k % 7 {
			case 0:
				evs = append(evs, trace.Event{Kind: trace.Compute, Cycles: uint64(1 + (k+p)%5)})
			case 1, 2:
				// A small hot set: mostly FLC hits, the contained fast path.
				a := uint64(0x10000 + 64*((k+p)%16))
				evs = append(evs, trace.Event{Kind: trace.Read, Addr: addrOf(a)})
			case 3:
				a := uint64(0x10000 + 64*((k*3+p)%96))
				evs = append(evs, trace.Event{Kind: trace.Write, Addr: addrOf(a)})
			case 4:
				evs = append(evs, trace.Event{Kind: trace.Read, Addr: addrOf(uint64(0x10000 + 64*((k*7)%128)))})
			case 5:
				if k%35 == 5 {
					evs = append(evs, trace.Event{Kind: trace.LockAcquire, ID: k % 3},
						trace.Event{Kind: trace.LockRelease, ID: k % 3})
				}
			case 6:
				if k%49 == 6 {
					evs = append(evs, trace.Event{Kind: trace.Barrier, ID: 1})
				}
			}
		}
		// Everyone meets at the same number of barrier episodes.
		evs = append(evs, trace.Event{Kind: trace.Barrier, ID: 9})
		out[p] = evs
	}
	return out
}

// runShards runs the same workload at the given shard count on a fresh
// machine and returns the result plus machine totals.
func runShards(t *testing.T, events [][]trace.Event, shards int) (Result, machine.NodeStats, *Engine) {
	t.Helper()
	m := newMachine(t)
	e, err := New(m, streams(events...))
	if err != nil {
		t.Fatal(err)
	}
	e.SetParallel(shards)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, m.TotalStats(), e
}

// TestParallelMatchesSequential pins the tentpole claim at the engine level:
// identical Result structs and machine totals at every shard count, on a
// workload that exercises bursts, rewinds, sync drains and stream ends.
func TestParallelMatchesSequential(t *testing.T) {
	events := mixedEvents(4000)
	want, wantTot, _ := runShards(t, events, 1)
	for _, shards := range []int{2, 3, 4, 8} {
		got, gotTot, e := runShards(t, events, shards)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shards=%d: result diverged\nseq: %+v\npar: %+v", shards, want, got)
		}
		if wantTot != gotTot {
			t.Errorf("shards=%d: machine totals diverged\nseq: %+v\npar: %+v", shards, wantTot, gotTot)
		}
		if e.par == nil {
			t.Fatalf("shards=%d: parallel runner never engaged", shards)
		}
	}
}

// TestParallelCommitsBursts guards against the engine silently degrading to
// drain-only rounds: a hit-dominated workload must retire a meaningful
// share of its events through the parallel burst phase.
func TestParallelCommitsBursts(t *testing.T) {
	events := make([][]trace.Event, 4)
	for p := range events {
		evs := make([]trace.Event, 0, 20000)
		for k := 0; k < 20000; k++ {
			// Eight hot blocks per proc: after the first touches, every
			// access is an FLC hit — contained.
			a := uint64(0x10000 + 64*((k%8)+8*p))
			evs = append(evs, trace.Event{Kind: trace.Read, Addr: addrOf(a)})
		}
		events[p] = evs
	}
	_, _, e := runShards(t, events, 4)
	if e.par == nil {
		t.Fatal("parallel runner never engaged")
	}
	if e.par.committed == 0 {
		t.Fatalf("no events committed through bursts (rounds=%d drained=%d)", e.par.rounds, e.par.drained)
	}
	if e.par.committed < e.par.drained {
		t.Errorf("hit-dominated workload drained more than it committed: committed=%d drained=%d",
			e.par.committed, e.par.drained)
	}
}

// TestParallelObserverOrder checks the merged observer replay: the step
// observer must see the exact sequential retirement order even when events
// retire through parallel bursts.
func TestParallelObserverOrder(t *testing.T) {
	events := mixedEvents(1500)
	trail := func(shards int) string {
		m := newMachine(t)
		e, err := New(m, streams(events...))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		e.SetStepObserver(func(proc int, ev trace.Event) {
			fmt.Fprintf(&b, "%d:%d:%d;", proc, ev.Kind, ev.Addr)
		})
		e.SetParallel(shards)
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	want := trail(1)
	for _, shards := range []int{2, 4} {
		if got := trail(shards); got != want {
			t.Errorf("shards=%d: observer saw a different event order", shards)
		}
	}
}

// parallelLine matches the one Render line that legitimately differs across
// shard counts (it names the shard count itself).
var parallelLine = regexp.MustCompile(`(?m)^  parallel: .*\n`)

// TestParallelWatchdogDumpCoherent is the regression test for watchdog
// dumps under parallel mode: the budget must trip at a round barrier or
// inside the drain — never mid-burst — so the dump reflects one committed
// prefix, identical at every shard count up to the shard-count line itself.
func TestParallelWatchdogDumpCoherent(t *testing.T) {
	events := mixedEvents(4000)
	dumpAt := func(shards int) *Dump {
		m := newMachine(t)
		e, err := New(m, streams(events...))
		if err != nil {
			t.Fatal(err)
		}
		e.SetParallel(shards)
		e.SetBudget(Budget{MaxEvents: 3000})
		_, err = e.Run()
		var wd *WatchdogError
		if !errors.As(err, &wd) {
			t.Fatalf("shards=%d: want *WatchdogError, got %v", shards, err)
		}
		return wd.Dump
	}
	want := dumpAt(2)
	if want.Shards != 2 || want.Rounds == 0 {
		t.Errorf("dump must identify the round engine: shards=%d rounds=%d", want.Shards, want.Rounds)
	}
	if !strings.Contains(want.Render(), "parallel: 2 shards") {
		t.Errorf("render missing the parallel line:\n%s", want.Render())
	}
	wantText := parallelLine.ReplaceAllString(want.Render(), "")
	for _, shards := range []int{4, 8} {
		got := dumpAt(shards)
		if got.Rounds != want.Rounds {
			t.Errorf("shards=%d: %d rounds at trip, want %d (round structure must be shard-invariant)",
				shards, got.Rounds, want.Rounds)
		}
		gotText := parallelLine.ReplaceAllString(got.Render(), "")
		if gotText != wantText {
			t.Errorf("shards=%d: dump diverged from shards=2:\n%s\n--- vs ---\n%s", shards, gotText, wantText)
		}
	}
	// The sequential engine tripped on the same budget must agree on the
	// committed state too — parallel overshoot past MaxEvents is bounded
	// by one round's commits, and the dump snapshot stays coherent.
	seq := dumpAt(1)
	if seq.Shards != 0 || strings.Contains(seq.Render(), "parallel:") {
		t.Errorf("sequential dump must not report shards: %+v", seq.Shards)
	}
}

// TestLockQueueRingWraparound exercises lockState's ring buffer directly:
// FIFO order must survive qhead resets in both push (append after full
// drain) and pop (drain to empty mid-stream), across several cycles.
func TestLockQueueRingWraparound(t *testing.T) {
	var l lockState
	next := int32(0)
	expect := int32(0)
	push := func(n int) {
		for k := 0; k < n; k++ {
			l.push(next, uint64(next))
			next++
		}
	}
	pop := func(n int) {
		t.Helper()
		for k := 0; k < n; k++ {
			w := l.pop()
			if w.proc != expect || w.arrived != uint64(expect) {
				t.Fatalf("pop: got proc %d arrived %d, want %d", w.proc, w.arrived, expect)
			}
			expect++
		}
	}
	push(3)
	pop(2)  // qhead=2, len=3
	push(4) // grows past the head
	pop(5)  // drains to empty: qhead reset in pop
	if l.queueLen() != 0 {
		t.Fatalf("queue should be empty, len %d", l.queueLen())
	}
	push(2) // push after reset reuses the backing array
	pop(1)
	pop(1) // qhead == len again
	for cycle := 0; cycle < 50; cycle++ {
		push(1 + cycle%4)
		pop(1 + cycle%4)
	}
	if l.queueLen() != 0 || l.qhead != 0 {
		t.Fatalf("ring did not reset: len %d qhead %d", l.queueLen(), l.qhead)
	}
}

// TestSyncIDOverflowTables drives lock and barrier IDs outside the dense
// tables — at, above, and below the maxDenseSyncID bound, including
// negative — through a real contended run, sequentially and in parallel.
func TestSyncIDOverflowTables(t *testing.T) {
	ids := []int{0, maxDenseSyncID - 1, maxDenseSyncID, maxDenseSyncID + 17, 1 << 20, -1, -99}
	events := make([][]trace.Event, 4)
	for p := range events {
		var evs []trace.Event
		for _, id := range ids {
			evs = append(evs,
				trace.Event{Kind: trace.Compute, Cycles: uint64(1 + p)},
				trace.Event{Kind: trace.LockAcquire, ID: id},
				trace.Event{Kind: trace.Compute, Cycles: 5},
				trace.Event{Kind: trace.LockRelease, ID: id},
				trace.Event{Kind: trace.Barrier, ID: id},
			)
		}
		events[p] = evs
	}
	want, wantTot, _ := runShards(t, events, 1)
	if want.ExecTime == 0 {
		t.Fatal("overflow-ID run did not execute")
	}
	for _, p := range want.Procs {
		if p.Sync == 0 {
			t.Fatalf("no sync time recorded under contention: %+v", p)
		}
	}
	got, gotTot, _ := runShards(t, events, 4)
	if !reflect.DeepEqual(want, got) || wantTot != gotTot {
		t.Errorf("overflow-ID run diverged between sequential and parallel:\nseq: %+v\npar: %+v", want, got)
	}
}

// TestPackSchedKeyOverflowPanics pins the 48-bit packed-clock guard: a clock
// at the key boundary must panic loudly rather than misorder the schedule.
func TestPackSchedKeyOverflowPanics(t *testing.T) {
	if k := packSchedKey(1<<48-1, 7); k>>schedIndexBits != 1<<48-1 {
		t.Fatalf("key %x lost clock bits", k)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("packSchedKey accepted a clock beyond 48 bits")
		}
	}()
	packSchedKey(1<<48, 0)
}
