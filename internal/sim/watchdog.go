package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"vcoma/internal/addr"
	"vcoma/internal/coherence"
	"vcoma/internal/network"
)

// Budget bounds a run. The zero value means unsupervised: the engine runs
// until the workload completes or deadlocks. Any non-zero field arms the
// watchdog, which aborts the run with a *WatchdogError carrying a full
// diagnostic Dump instead of letting a diverging simulation spin forever.
type Budget struct {
	// MaxCycles aborts the run when any processor's clock passes this many
	// simulated cycles.
	MaxCycles uint64 `json:"maxCycles,omitempty"`
	// MaxEvents aborts the run after this many retired events.
	MaxEvents uint64 `json:"maxEvents,omitempty"`
	// StallEvents aborts the run when this many events retire without any
	// processor's clock advancing — the no-forward-progress (livelock)
	// detector: events are being executed but simulated time stands still.
	StallEvents uint64 `json:"stallEvents,omitempty"`
	// MaxWall aborts the run after this much host wall-clock time.
	MaxWall time.Duration `json:"maxWall,omitempty"`
}

// Zero reports whether no budget is armed.
func (b Budget) Zero() bool {
	return b.MaxCycles == 0 && b.MaxEvents == 0 && b.StallEvents == 0 && b.MaxWall == 0
}

// String renders the armed limits ("cycles≤1000000 wall≤30s"), or "none".
func (b Budget) String() string {
	var parts []string
	if b.MaxCycles > 0 {
		parts = append(parts, fmt.Sprintf("cycles≤%d", b.MaxCycles))
	}
	if b.MaxEvents > 0 {
		parts = append(parts, fmt.Sprintf("events≤%d", b.MaxEvents))
	}
	if b.StallEvents > 0 {
		parts = append(parts, fmt.Sprintf("stall<%d", b.StallEvents))
	}
	if b.MaxWall > 0 {
		parts = append(parts, fmt.Sprintf("wall≤%v", b.MaxWall))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// ProcDump is one processor's state at the moment the watchdog tripped.
type ProcDump struct {
	Proc  int    `json:"proc"`
	Clock uint64 `json:"clock"`
	// State is "running", "done", or "waiting" (blocked at a lock or
	// barrier; Blocked names which).
	State string `json:"state"`
	// Blocked names the synchronization object a waiting processor is
	// blocked on ("lock 3", "barrier 1").
	Blocked string `json:"blocked,omitempty"`
	Busy    uint64 `json:"busy"`
	Sync    uint64 `json:"sync"`
	Refs    uint64 `json:"refs"`
}

// LockDump is one lock's state: who holds it and how deep its queue is.
type LockDump struct {
	ID         int   `json:"id"`
	Owner      int   `json:"owner"`
	Held       bool  `json:"held"`
	QueueDepth int   `json:"queueDepth"`
	Queue      []int `json:"queue,omitempty"`
}

// BarrierDump is one barrier's state: who has arrived and who is missing.
type BarrierDump struct {
	ID      int   `json:"id"`
	Arrived []int `json:"arrived"`
	Missing int   `json:"missing"`
}

// NodeDump is one node's memory-system activity at the trip point.
type NodeDump struct {
	Node        int    `json:"node"`
	Refs        uint64 `json:"refs"`
	Remote      uint64 `json:"remote"`
	StallLocal  uint64 `json:"stallLocal"`
	StallRemote uint64 `json:"stallRemote"`
	TransCycles uint64 `json:"transCycles"`
	TLBMisses   uint64 `json:"tlbMisses"`
}

// Dump is the watchdog's structured diagnostic: everything needed to see
// why a run stopped making progress, serializable as JSON and renderable as
// text. Wall-clock readings are deliberately excluded so the render of a
// given simulation state is byte-stable (golden-testable).
type Dump struct {
	Reason string `json:"reason"`
	Budget Budget `json:"budget"`
	// Cycle is the largest processor clock reached.
	Cycle uint64 `json:"cycle"`
	// Events is the number of retired events.
	Events uint64 `json:"events"`
	// StallWindow is the number of events retired since any clock last
	// advanced (the livelock window at the trip point).
	StallWindow uint64 `json:"stallWindow"`
	// Shards and Rounds describe the parallel round engine when it was
	// active (zero for sequential runs). A parallel trip fires only at a
	// round barrier or inside the sequential drain — never mid-burst — so
	// every clock and counter below reflects the same committed prefix of
	// the run regardless of shard count.
	Shards   int             `json:"shards,omitempty"`
	Rounds   uint64          `json:"rounds,omitempty"`
	Procs    []ProcDump      `json:"procs"`
	Locks    []LockDump      `json:"locks,omitempty"`
	Barriers []BarrierDump   `json:"barriers,omitempty"`
	Nodes    []NodeDump      `json:"nodes,omitempty"`
	Protocol coherence.Stats `json:"protocol"`
	Network  network.Stats   `json:"network"`
}

// Render formats the dump as an indented text block for terminals and logs.
func (d *Dump) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "watchdog: %s\n", d.Reason)
	fmt.Fprintf(&b, "  budget: %v\n", d.Budget)
	fmt.Fprintf(&b, "  at cycle %d after %d events (%d events since last clock advance)\n",
		d.Cycle, d.Events, d.StallWindow)
	if d.Shards > 0 {
		fmt.Fprintf(&b, "  parallel: %d shards, %d rounds (barrier-coherent snapshot)\n", d.Shards, d.Rounds)
	}
	running, done, waiting := 0, 0, 0
	for _, p := range d.Procs {
		switch p.State {
		case "done":
			done++
		case "waiting":
			waiting++
		default:
			running++
		}
	}
	fmt.Fprintf(&b, "  processors: %d running, %d waiting, %d done\n", running, waiting, done)
	for _, p := range d.Procs {
		line := fmt.Sprintf("    proc %2d  clock=%-10d %-8s", p.Proc, p.Clock, p.State)
		if p.Blocked != "" {
			line += " on " + p.Blocked
		}
		fmt.Fprintf(&b, "%s  busy=%d sync=%d refs=%d\n", line, p.Busy, p.Sync, p.Refs)
	}
	if len(d.Locks) > 0 {
		b.WriteString("  locks:\n")
		for _, l := range d.Locks {
			if l.Held {
				fmt.Fprintf(&b, "    lock %d held by proc %d, %d queued %v\n", l.ID, l.Owner, l.QueueDepth, l.Queue)
			} else {
				fmt.Fprintf(&b, "    lock %d free, %d queued %v\n", l.ID, l.QueueDepth, l.Queue)
			}
		}
	}
	if len(d.Barriers) > 0 {
		b.WriteString("  barriers:\n")
		for _, br := range d.Barriers {
			fmt.Fprintf(&b, "    barrier %d: %d arrived %v, waiting for %d more\n",
				br.ID, len(br.Arrived), br.Arrived, br.Missing)
		}
	}
	if len(d.Nodes) > 0 {
		b.WriteString("  per-node memory system (refs / remote / trans-cycles / tlb-misses):\n")
		for _, n := range d.Nodes {
			fmt.Fprintf(&b, "    node %2d  %d / %d / %d / %d\n",
				n.Node, n.Refs, n.Remote, n.TransCycles, n.TLBMisses)
		}
	}
	fmt.Fprintf(&b, "  protocol: %d remote reads, %d upgrades, %d write fetches, %d invalidations, %d injections, %d swaps\n",
		d.Protocol.RemoteReads, d.Protocol.Upgrades, d.Protocol.WriteFetches,
		d.Protocol.Invalidations, d.Protocol.Injections, d.Protocol.Swaps)
	fmt.Fprintf(&b, "  network: %d requests, %d blocks, %d queue cycles\n",
		d.Network.Requests, d.Network.Blocks, d.Network.QueueCycles)
	return b.String()
}

// WatchdogError is the structured abort the watchdog raises when a budget
// is exceeded. It implements Timeout() so the experiment runner classifies
// it into the timeout error class (aborted-with-diagnostic, not retryable).
type WatchdogError struct {
	Dump *Dump
}

// Error returns a one-line summary; the full diagnostic is in Dump.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("sim: watchdog: %s (cycle %d, %d events)", e.Dump.Reason, e.Dump.Cycle, e.Dump.Events)
}

// Timeout marks the error as a budget/deadline abort (net.Error idiom).
func (e *WatchdogError) Timeout() bool { return true }

// SetBudget arms the watchdog. Call before Run; a zero budget disarms it.
func (e *Engine) SetBudget(b Budget) { e.budget = b }

// SetContext bounds the run by ctx: the engine polls it periodically and
// aborts with ctx's error when it is cancelled or past its deadline. The
// deadline abort carries a *WatchdogError diagnostic like any budget trip.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// wallCheckPeriod is how many events pass between wall-clock and context
// polls; clock/event budgets are checked every step.
const wallCheckPeriod = 4096

// checkBudget enforces the armed budget after each step. It returns a
// non-nil error exactly when the run must abort.
func (e *Engine) checkBudget() error {
	b := e.budget
	if e.maxClock > e.lastClock {
		e.lastClock = e.maxClock
		e.eventsAtAdvance = e.events
	}
	if b.Zero() && e.ctx == nil {
		return nil
	}
	if b.MaxCycles > 0 && e.maxClock > b.MaxCycles {
		return e.trip(fmt.Sprintf("cycle budget exceeded (%d > %d simulated cycles)", e.maxClock, b.MaxCycles))
	}
	if b.MaxEvents > 0 && e.events > b.MaxEvents {
		return e.trip(fmt.Sprintf("event budget exceeded (%d > %d retired events)", e.events, b.MaxEvents))
	}
	if b.StallEvents > 0 && e.events-e.eventsAtAdvance >= b.StallEvents {
		return e.trip(fmt.Sprintf("no forward progress: %d events retired without any processor clock advancing past %d",
			e.events-e.eventsAtAdvance, e.maxClock))
	}
	if e.events%wallCheckPeriod == 0 {
		if b.MaxWall > 0 && time.Since(e.wallStart) > b.MaxWall {
			return e.trip(fmt.Sprintf("wall-clock budget exceeded (limit %v)", b.MaxWall))
		}
		if e.ctx != nil {
			if err := e.ctx.Err(); err != nil {
				if errors.Is(err, context.DeadlineExceeded) {
					return e.trip("context deadline exceeded")
				}
				return err
			}
		}
	}
	return nil
}

// trip builds the diagnostic dump and wraps it in a WatchdogError.
func (e *Engine) trip(reason string) error {
	e.tripCounter.Inc()
	return &WatchdogError{Dump: e.dump(reason)}
}

// dump snapshots the engine, machine, protocol and network state.
func (e *Engine) dump(reason string) *Dump {
	d := &Dump{
		Reason:      reason,
		Budget:      e.budget,
		Cycle:       e.maxClock,
		Events:      e.events,
		StallWindow: e.events - e.eventsAtAdvance,
	}
	if e.par != nil {
		d.Shards = e.par.shards
		d.Rounds = e.par.rounds
	}

	// Which synchronization object is each waiting processor blocked on?
	// eachLock/eachBarrier iterate the dense tables in ID order (overflow
	// IDs, sorted, follow) and skip untouched entries.
	blockedOn := make(map[int]string)
	e.eachLock(func(id int, l *lockState) {
		ld := LockDump{ID: id, Held: l.held, Owner: int(l.owner), QueueDepth: l.queueLen()}
		for k := l.qhead; k < len(l.queue); k++ {
			p := int(l.queue[k].proc)
			blockedOn[p] = fmt.Sprintf("lock %d", id)
			ld.Queue = append(ld.Queue, p)
		}
		if !l.held {
			ld.Owner = -1
		}
		d.Locks = append(d.Locks, ld)
	})
	e.eachBarrier(func(id int, br *barrierState) {
		arrived := make([]int, 0, len(br.arrived))
		for _, p := range br.arrived {
			blockedOn[int(p)] = fmt.Sprintf("barrier %d", id)
			arrived = append(arrived, int(p))
		}
		d.Barriers = append(d.Barriers, BarrierDump{
			ID:      id,
			Arrived: arrived,
			Missing: len(e.procs) - len(br.arrived),
		})
	})

	for i := range e.procs {
		p := &e.procs[i]
		pd := ProcDump{
			Proc: i, Clock: p.clock, State: "running",
			Busy: p.stats.Busy, Sync: p.stats.Sync, Refs: p.stats.Refs,
		}
		switch {
		case p.done:
			pd.State = "done"
		case p.waiting:
			pd.State = "waiting"
			pd.Blocked = blockedOn[i]
		}
		d.Procs = append(d.Procs, pd)
	}

	for n := 0; n < e.m.Geometry().Nodes(); n++ {
		st := e.m.NodeStats(addr.Node(n))
		d.Nodes = append(d.Nodes, NodeDump{
			Node: n, Refs: st.Refs, Remote: st.Remote,
			StallLocal: st.StallLocal, StallRemote: st.StallRemote,
			TransCycles: st.TransCycles, TLBMisses: st.TLBMisses,
		})
	}
	d.Protocol = e.m.Protocol().Stats()
	d.Network = e.m.Protocol().Fabric().Stats()
	return d
}
