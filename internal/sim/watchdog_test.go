package sim

import (
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vcoma/internal/config"
	"vcoma/internal/machine"
	"vcoma/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// repeatStream replays one event forever: the minimal diverging workload.
type repeatStream struct{ ev trace.Event }

func (s repeatStream) Next() (trace.Event, bool) { return s.ev, true }

func newTestEngine(t *testing.T, streams []trace.Stream) *Engine {
	t.Helper()
	m, err := machine.New(config.SmallTest())
	if err != nil {
		t.Fatal(err)
	}
	if n := m.Geometry().Nodes(); len(streams) != n {
		t.Fatalf("test wants %d streams, machine has %d nodes", len(streams), n)
	}
	e, err := New(m, streams)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// livelockStreams builds a 4-proc workload that spins forever without the
// clock advancing: proc 0 parks at a barrier, proc 1 takes a lock and ends,
// proc 2 queues on that lock, and proc 3 spins zero-cost compute events.
func livelockStreams() []trace.Stream {
	return []trace.Stream{
		trace.NewSliceStream([]trace.Event{{Kind: trace.Barrier, ID: 1}}),
		trace.NewSliceStream([]trace.Event{{Kind: trace.LockAcquire, ID: 7}}),
		trace.NewSliceStream([]trace.Event{{Kind: trace.LockAcquire, ID: 7}}),
		repeatStream{trace.Event{Kind: trace.Compute, Cycles: 0}},
	}
}

func TestWatchdogLivelockDetected(t *testing.T) {
	e := newTestEngine(t, livelockStreams())
	e.SetBudget(Budget{StallEvents: 1000})
	_, err := e.Run()
	var wd *WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("want *WatchdogError, got %v", err)
	}
	if !wd.Timeout() {
		t.Error("WatchdogError must report Timeout() = true")
	}
	d := wd.Dump
	if d.StallWindow < 1000 {
		t.Errorf("stall window %d, want >= 1000", d.StallWindow)
	}
	if len(d.Locks) != 1 || d.Locks[0].QueueDepth != 1 || d.Locks[0].Queue[0] != 2 {
		t.Errorf("lock dump wrong: %+v", d.Locks)
	}
	if len(d.Barriers) != 1 || d.Barriers[0].Missing != 3 {
		t.Errorf("barrier dump wrong: %+v", d.Barriers)
	}
	waiting := 0
	for _, p := range d.Procs {
		if p.State == "waiting" && p.Blocked == "" {
			t.Errorf("proc %d waiting with no blocked-on object", p.Proc)
		}
		if p.State == "waiting" {
			waiting++
		}
	}
	if waiting != 2 {
		t.Errorf("%d waiting processors in dump, want 2 (barrier + lock queue)", waiting)
	}
}

// TestWatchdogDumpGolden pins the rendered diagnostic, the artifact
// operators read when a sweep cell hangs. Regenerate deliberately with
//
//	go test ./internal/sim/ -run TestWatchdogDumpGolden -update
func TestWatchdogDumpGolden(t *testing.T) {
	e := newTestEngine(t, livelockStreams())
	e.SetBudget(Budget{StallEvents: 1000, MaxCycles: 1 << 30})
	_, err := e.Run()
	var wd *WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("want *WatchdogError, got %v", err)
	}
	got := wd.Dump.Render()
	path := filepath.Join("testdata", "watchdog_livelock.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err2 := os.ReadFile(path)
	if err2 != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err2)
	}
	if got != string(want) {
		t.Errorf("dump render differs from %s — a deliberate change needs -update\ngot:\n%s\nwant:\n%s",
			path, got, string(want))
	}
}

func TestWatchdogCycleBudget(t *testing.T) {
	streams := []trace.Stream{
		repeatStream{trace.Event{Kind: trace.Compute, Cycles: 100}},
		trace.NewSliceStream(nil),
		trace.NewSliceStream(nil),
		trace.NewSliceStream(nil),
	}
	e := newTestEngine(t, streams)
	e.SetBudget(Budget{MaxCycles: 10_000})
	_, err := e.Run()
	var wd *WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("want *WatchdogError, got %v", err)
	}
	if wd.Dump.Cycle <= 10_000 || wd.Dump.Cycle > 10_000+200 {
		t.Errorf("tripped at cycle %d, want just past 10000", wd.Dump.Cycle)
	}
}

func TestWatchdogEventBudget(t *testing.T) {
	e := newTestEngine(t, livelockStreams())
	e.SetBudget(Budget{MaxEvents: 500})
	_, err := e.Run()
	var wd *WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("want *WatchdogError, got %v", err)
	}
	if wd.Dump.Events != 501 {
		t.Errorf("tripped after %d events, want 501", wd.Dump.Events)
	}
}

func TestWatchdogWallBudget(t *testing.T) {
	e := newTestEngine(t, livelockStreams())
	e.SetBudget(Budget{MaxWall: time.Millisecond})
	done := make(chan error, 1)
	go func() {
		_, err := e.Run()
		done <- err
	}()
	select {
	case err := <-done:
		var wd *WatchdogError
		if !errors.As(err, &wd) {
			t.Fatalf("want *WatchdogError, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("wall budget did not abort a livelocked run")
	}
}

func TestWatchdogContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	e := newTestEngine(t, livelockStreams())
	e.SetContext(ctx)
	_, err := e.Run()
	var wd *WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("context deadline should trip the watchdog, got %v", err)
	}
}

func TestWatchdogContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := newTestEngine(t, livelockStreams())
	e.SetContext(ctx)
	_, err := e.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var wd *WatchdogError
	if errors.As(err, &wd) {
		t.Error("plain cancellation must not masquerade as a watchdog timeout")
	}
}

// A generous budget must not change the result of a healthy run.
func TestWatchdogObservational(t *testing.T) {
	mk := func() []trace.Stream {
		var streams []trace.Stream
		for p := 0; p < 4; p++ {
			streams = append(streams, trace.NewSliceStream([]trace.Event{
				{Kind: trace.Compute, Cycles: 10},
				{Kind: trace.Barrier, ID: 1},
				{Kind: trace.Compute, Cycles: 5},
			}))
		}
		return streams
	}
	plain := newTestEngine(t, mk())
	res1, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	guarded := newTestEngine(t, mk())
	guarded.SetBudget(Budget{MaxCycles: 1 << 40, MaxEvents: 1 << 40, StallEvents: 1 << 40, MaxWall: time.Hour})
	guarded.SetContext(context.Background())
	res2, err := guarded.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res1.ExecTime != res2.ExecTime || res1.Events != res2.Events {
		t.Errorf("budget changed the run: %+v vs %+v", res1, res2)
	}
}
