// Package sim is the execution engine: it interleaves the per-processor
// event streams of a workload over the machine's memory system under
// sequential consistency, arbitrates locks and barriers, and accounts each
// processor's time into the paper's Figure 10 categories — busy, sync,
// local stall, remote stall, and address-translation overhead.
//
// Scheduling is cycle-ordered: at every step the runnable processor with
// the smallest clock executes its next event atomically. Memory references
// stall the issuing processor until globally performed (sequential
// consistency, §5.3); the machine layer returns each reference's latency.
package sim

import (
	"context"
	"fmt"
	"time"

	"vcoma/internal/addr"
	"vcoma/internal/machine"
	"vcoma/internal/obs"
	"vcoma/internal/trace"
)

// ProcStats is one processor's time breakdown.
type ProcStats struct {
	Busy        uint64 // compute cycles
	Sync        uint64 // lock + barrier waiting and transfer cycles
	StallLocal  uint64 // SLC hits and local attraction-memory service
	StallRemote uint64 // coherence transactions
	Trans       uint64 // address-translation penalties on this proc's path
	Finish      uint64 // clock value at the processor's last event
	Refs        uint64 // shared-memory references issued
}

// Total returns the sum of all time categories.
func (p ProcStats) Total() uint64 {
	return p.Busy + p.Sync + p.StallLocal + p.StallRemote + p.Trans
}

// Result is a finished run.
type Result struct {
	Procs []ProcStats
	// ExecTime is the parallel execution time: the largest finish clock.
	ExecTime uint64
	// Events is the total number of events executed.
	Events uint64
}

// TotalProc sums the per-processor breakdowns.
func (r Result) TotalProc() ProcStats {
	var t ProcStats
	for _, p := range r.Procs {
		t.Busy += p.Busy
		t.Sync += p.Sync
		t.StallLocal += p.StallLocal
		t.StallRemote += p.StallRemote
		t.Trans += p.Trans
		t.Refs += p.Refs
		if p.Finish > t.Finish {
			t.Finish = p.Finish
		}
	}
	return t
}

type procState struct {
	stream  trace.Stream
	clock   uint64
	stats   ProcStats
	done    bool
	waiting bool // blocked at a lock or barrier
}

type lockState struct {
	held    bool
	owner   int
	queue   []int // waiting processors, FIFO
	arrival map[int]uint64
}

type barrierState struct {
	arrived []int
	latest  uint64
}

// Engine drives one run. Build with New, run with Run.
type Engine struct {
	m        *machine.Machine
	procs    []procState
	locks    map[int]*lockState
	barriers map[int]*barrierState
	events   uint64

	// Watchdog state (see watchdog.go): an optional budget, the context
	// bounding the run, and the forward-progress trackers the livelock
	// detector compares against.
	budget          Budget
	ctx             context.Context
	wallStart       time.Time
	maxClock        uint64 // largest processor clock seen so far
	lastClock       uint64 // maxClock at the last observed advance
	eventsAtAdvance uint64 // events retired when lastClock was recorded
	tripCounter     *obs.Counter

	sampler *obs.Sampler
	tracer  *obs.Tracer
	span    *obs.Span

	// stepObs observes every executed event in global execution order
	// (nil by default). internal/check digests the architectural event
	// stream through it; the callback must be purely observational.
	stepObs func(proc int, ev trace.Event)
}

// SetSpan attaches a request-scoped trace span to the run. On completion
// the engine annotates it with the simulated cycle count and the number of
// retired events — the deepest link in the one-trace-id chain from HTTP
// accept down to the simulated cycle. Purely observational: a nil span (the
// default) costs one nil check, and annotating never changes the result.
func (e *Engine) SetSpan(s *obs.Span) { e.span = s }

// SetStepObserver registers a callback invoked after each executed event
// (memory references, compute, and synchronization), in the engine's global
// execution order. A nil callback (the default) keeps the engine unchanged.
func (e *Engine) SetStepObserver(f func(proc int, ev trace.Event)) { e.stepObs = f }

// New builds an engine for machine m and one event stream per processor.
// The stream count must equal the machine's node count.
func New(m *Machine, streams []trace.Stream) (*Engine, error) {
	return newEngine(m, streams)
}

// Machine is re-exported so callers need not import internal/machine just
// for the type name in signatures.
type Machine = machine.Machine

func newEngine(m *machine.Machine, streams []trace.Stream) (*Engine, error) {
	if len(streams) != m.Geometry().Nodes() {
		return nil, fmt.Errorf("sim: %d streams for %d nodes", len(streams), m.Geometry().Nodes())
	}
	e := &Engine{
		m:        m,
		locks:    make(map[int]*lockState),
		barriers: make(map[int]*barrierState),
	}
	for _, s := range streams {
		e.procs = append(e.procs, procState{stream: s})
	}
	return e, nil
}

// SetObserver wires an observability sink into the engine: per-processor
// time-breakdown probes, the epoch sampler (driven by the executing
// processor's clock, which the cycle-ordered scheduler keeps
// non-decreasing), and "sync"-category trace events for lock and barrier
// waits. Call before Run; the machine's own AttachObserver is separate.
func (e *Engine) SetObserver(o *obs.Observer) {
	if o == nil {
		return
	}
	e.sampler = o.Samp()
	e.tracer = o.Tr()
	r := o.Reg()
	if r == nil {
		return
	}
	r.Probe("sim/events", func() float64 { return float64(e.events) })
	if !e.budget.Zero() {
		// Watchdog instrumentation: how close the run is to the livelock
		// trip point, and how many times the watchdog has fired.
		r.Probe("sim/watchdog/stallWindow", func() float64 { return float64(e.events - e.eventsAtAdvance) })
		r.Probe("sim/watchdog/maxClock", func() float64 { return float64(e.maxClock) })
	}
	e.tripCounter = r.Counter("sim/watchdog/trips")
	for i := range e.procs {
		p := &e.procs[i]
		pre := fmt.Sprintf("proc%02d", i)
		r.Probe(pre+"/busy", func() float64 { return float64(p.stats.Busy) })
		r.Probe(pre+"/sync", func() float64 { return float64(p.stats.Sync) })
		r.Probe(pre+"/stallLocal", func() float64 { return float64(p.stats.StallLocal) })
		r.Probe(pre+"/stallRemote", func() float64 { return float64(p.stats.StallRemote) })
		r.Probe(pre+"/trans", func() float64 { return float64(p.stats.Trans) })
		r.Probe(pre+"/refs", func() float64 { return float64(p.stats.Refs) })
	}
}

// Run executes the workload to completion and returns the per-processor
// accounting. Streams are closed on return.
func (e *Engine) Run() (Result, error) {
	defer func() {
		for i := range e.procs {
			trace.CloseStream(e.procs[i].stream)
		}
	}()
	e.wallStart = time.Now()
	supervised := !e.budget.Zero() || e.ctx != nil
	for {
		i := e.pickRunnable()
		if i < 0 {
			if e.allDone() {
				break
			}
			return Result{}, e.deadlockError()
		}
		if err := e.step(i); err != nil {
			return Result{}, err
		}
		if supervised {
			if err := e.checkBudget(); err != nil {
				return Result{}, err
			}
		}
	}
	res := Result{Events: e.events}
	for i := range e.procs {
		p := &e.procs[i]
		p.stats.Finish = p.clock
		res.Procs = append(res.Procs, p.stats)
		if p.clock > res.ExecTime {
			res.ExecTime = p.clock
		}
	}
	e.sampler.Finish(res.ExecTime)
	e.span.SetAttrUint("exec_cycles", res.ExecTime)
	e.span.SetAttrUint("events", res.Events)
	return res, nil
}

// pickRunnable returns the runnable processor with the smallest clock
// (lowest index breaks ties), or -1.
func (e *Engine) pickRunnable() int {
	best := -1
	for i := range e.procs {
		p := &e.procs[i]
		if p.done || p.waiting {
			continue
		}
		if best < 0 || p.clock < e.procs[best].clock {
			best = i
		}
	}
	return best
}

func (e *Engine) allDone() bool {
	for i := range e.procs {
		if !e.procs[i].done {
			return false
		}
	}
	return true
}

func (e *Engine) deadlockError() error {
	waitingBarrier, waitingLock, done := 0, 0, 0
	for i := range e.procs {
		if e.procs[i].done {
			done++
		} else if e.procs[i].waiting {
			waitingLock++ // refined below if it helps debugging
		}
	}
	for _, b := range e.barriers {
		waitingBarrier += len(b.arrived)
	}
	return fmt.Errorf("sim: deadlock: %d done, %d waiting (%d at barriers) of %d processors — unbalanced barriers or a lock never released",
		done, waitingLock, waitingBarrier, len(e.procs))
}

func (e *Engine) step(i int) error {
	p := &e.procs[i]
	ev, ok := p.stream.Next()
	if !ok {
		p.done = true
		return nil
	}
	e.events++
	switch ev.Kind {
	case trace.Compute:
		p.stats.Busy += ev.Cycles
		p.clock += ev.Cycles
	case trace.Read, trace.Write:
		p.stats.Refs++
		res := e.m.Access(p.clock, addr.Node(i), ev.Addr, ev.Kind == trace.Write)
		p.clock += res.Cycles
		p.stats.Trans += res.TransCycles
		stall := res.Cycles - res.TransCycles
		if res.Class == machine.ClassRemote {
			p.stats.StallRemote += stall
		} else {
			p.stats.StallLocal += stall
		}
	case trace.LockAcquire:
		e.lockAcquire(i, ev.ID)
	case trace.LockRelease:
		if err := e.lockRelease(i, ev.ID); err != nil {
			return err
		}
	case trace.Barrier:
		e.barrierArrive(i, ev.ID)
	default:
		return fmt.Errorf("sim: processor %d: unknown event kind %v", i, ev.Kind)
	}
	if p.clock > e.maxClock {
		e.maxClock = p.clock
	}
	if e.stepObs != nil {
		e.stepObs(i, ev)
	}
	e.sampler.Tick(p.clock)
	return nil
}

// lockTransferCost is the cost of one lock message exchange with the lock's
// home node, derived from the machine's request timing.
func (e *Engine) lockTransferCost() uint64 {
	return 2 * e.m.Config().Timing.NetRequest
}

func (e *Engine) lockHomeDistance(id int) uint64 {
	// Locks live at a home node; every operation is a request round trip.
	return e.lockTransferCost()
}

func (e *Engine) lockAcquire(i, id int) {
	l := e.locks[id]
	if l == nil {
		l = &lockState{arrival: make(map[int]uint64)}
		e.locks[id] = l
	}
	p := &e.procs[i]
	if !l.held {
		cost := e.lockHomeDistance(id)
		l.held = true
		l.owner = i
		p.stats.Sync += cost
		p.clock += cost
		return
	}
	l.queue = append(l.queue, i)
	l.arrival[i] = p.clock
	p.waiting = true
}

func (e *Engine) lockRelease(i, id int) error {
	l := e.locks[id]
	if l == nil || !l.held || l.owner != i {
		return fmt.Errorf("sim: processor %d releases lock %d it does not hold", i, id)
	}
	p := &e.procs[i]
	cost := e.lockHomeDistance(id)
	p.stats.Sync += cost
	p.clock += cost
	releaseDone := p.clock

	if len(l.queue) == 0 {
		l.held = false
		return nil
	}
	next := l.queue[0]
	l.queue = l.queue[1:]
	np := &e.procs[next]
	arrived := l.arrival[next]
	delete(l.arrival, next)
	grant := releaseDone
	if arrived > grant {
		grant = arrived
	}
	grant += e.lockHomeDistance(id)
	np.stats.Sync += grant - arrived
	np.clock = grant
	np.waiting = false
	l.owner = next
	if e.tracer.Enabled("sync") {
		e.tracer.Complete("sync", "lock-wait", next, 0, arrived, grant-arrived)
	}
	return nil
}

func (e *Engine) barrierArrive(i, id int) {
	b := e.barriers[id]
	if b == nil {
		b = &barrierState{}
		e.barriers[id] = b
	}
	p := &e.procs[i]
	notify := e.m.Config().Timing.BarrierNotify
	p.clock += notify
	p.stats.Sync += notify
	b.arrived = append(b.arrived, i)
	if p.clock > b.latest {
		b.latest = p.clock
	}
	if len(b.arrived) < len(e.procs) {
		p.waiting = true
		return
	}
	// Last arrival: release everyone after the latest arrival. The release
	// notifications serialize on the barrier home's network port, so each
	// processor restarts a few cycles after the previous one — without the
	// stagger every processor would re-issue its first post-barrier miss
	// in the same cycle, an artificial convoy no real machine exhibits.
	release := b.latest + notify
	const releaseStagger = 4
	for k, j := range b.arrived {
		q := &e.procs[j]
		r := release + uint64(k)*releaseStagger
		// q.clock still holds j's arrival time (waiting processors do not
		// advance), which makes the barrier phase a complete event from
		// arrival to restart on j's track.
		if e.tracer.Enabled("sync") {
			e.tracer.Complete("sync", "barrier", j, 0, q.clock, r-q.clock)
		}
		q.stats.Sync += r - q.clock
		q.clock = r
		q.waiting = false
	}
	delete(e.barriers, id)
}
