// Package sim is the execution engine: it interleaves the per-processor
// event streams of a workload over the machine's memory system under
// sequential consistency, arbitrates locks and barriers, and accounts each
// processor's time into the paper's Figure 10 categories — busy, sync,
// local stall, remote stall, and address-translation overhead.
//
// Scheduling is cycle-ordered: at every step the runnable processor with
// the smallest clock executes its next event atomically. Memory references
// stall the issuing processor until globally performed (sequential
// consistency, §5.3); the machine layer returns each reference's latency.
package sim

import (
	"context"
	"fmt"
	"sort"
	"time"

	"vcoma/internal/addr"
	"vcoma/internal/machine"
	"vcoma/internal/obs"
	"vcoma/internal/trace"
)

// ProcStats is one processor's time breakdown.
type ProcStats struct {
	Busy        uint64 // compute cycles
	Sync        uint64 // lock + barrier waiting and transfer cycles
	StallLocal  uint64 // SLC hits and local attraction-memory service
	StallRemote uint64 // coherence transactions
	Trans       uint64 // address-translation penalties on this proc's path
	Finish      uint64 // clock value at the processor's last event
	Refs        uint64 // shared-memory references issued
}

// Total returns the sum of all time categories.
func (p ProcStats) Total() uint64 {
	return p.Busy + p.Sync + p.StallLocal + p.StallRemote + p.Trans
}

// Result is a finished run.
type Result struct {
	Procs []ProcStats
	// ExecTime is the parallel execution time: the largest finish clock.
	ExecTime uint64
	// Events is the total number of events executed.
	Events uint64
}

// TotalProc sums the per-processor breakdowns.
func (r Result) TotalProc() ProcStats {
	var t ProcStats
	for _, p := range r.Procs {
		t.Busy += p.Busy
		t.Sync += p.Sync
		t.StallLocal += p.StallLocal
		t.StallRemote += p.StallRemote
		t.Trans += p.Trans
		t.Refs += p.Refs
		if p.Finish > t.Finish {
			t.Finish = p.Finish
		}
	}
	return t
}

type procState struct {
	stream  trace.Stream
	clock   uint64
	stats   ProcStats
	done    bool
	waiting bool // blocked at a lock or barrier

	// Batch-consumption state: when the stream implements
	// trace.BatchStream, events are pulled thousands at a time and read
	// from batch by index — per-event stream dispatch disappears from the
	// hot loop. batcher is nil for plain streams.
	batcher trace.BatchStream
	batch   []trace.Event
	bpos    int
}

// refill pulls the next batch (or single event, for plain streams) once the
// local batch runs dry. The in-batch fast path lives inline in step.
func (p *procState) refill() (trace.Event, bool) {
	if p.batcher != nil {
		for {
			b, ok := p.batcher.NextBatch()
			if !ok {
				return trace.Event{}, false
			}
			if len(b) > 0 {
				p.batch, p.bpos = b, 1
				return b[0], true
			}
		}
	}
	return p.stream.Next()
}

// waiter is one queued lock acquirer: who, and the clock it arrived at.
type waiter struct {
	proc    int32
	arrived uint64
}

// lockState is slice-backed: the FIFO queue is a ring over one backing
// array (qhead marks the front), so steady-state lock traffic allocates
// nothing after the first contention.
type lockState struct {
	held  bool
	owner int32
	qhead int
	queue []waiter
}

func (l *lockState) queueLen() int { return len(l.queue) - l.qhead }

func (l *lockState) push(p int32, arrived uint64) {
	if l.qhead == len(l.queue) {
		l.qhead, l.queue = 0, l.queue[:0]
	}
	l.queue = append(l.queue, waiter{p, arrived})
}

func (l *lockState) pop() waiter {
	w := l.queue[l.qhead]
	l.qhead++
	if l.qhead == len(l.queue) {
		l.qhead, l.queue = 0, l.queue[:0]
	}
	return w
}

// barrierState keeps its arrival list across episodes: a completed barrier
// resets arrived to length zero instead of being deleted, so the next
// episode of the same barrier reuses the backing array.
type barrierState struct {
	arrived []int32
	latest  uint64
}

// maxDenseSyncID bounds the dense lock/barrier tables. Workload IDs are
// small (SPLASH-2 kernels top out near 5000); anything larger or negative
// falls back to a map so a pathological trace cannot balloon the tables.
const maxDenseSyncID = 1 << 16

// Engine drives one run. Build with New, run with Run.
type Engine struct {
	m        *machine.Machine
	procs    []procState
	locks    []lockState    // dense, indexed by lock ID
	barriers []barrierState // dense, indexed by barrier ID
	locksOv  map[int]*lockState
	barrsOv  map[int]*barrierState
	events   uint64

	// sched is a tournament (min) tree over packed (clock << 16 | index)
	// scheduling keys: leaf schedLeaf+p holds processor p's key (schedIdle
	// while p is done or blocked), every inner node the minimum of its two
	// children, so sched[1] is always the key of the processor the
	// cycle-ordered rule runs next. A clock advance updates one leaf and
	// replays its root path — O(log P) single-word compares on one small
	// contiguous array, cheaper per event than either the seed engine's
	// O(P) pickRunnable scan over procState records or a binary heap's
	// sift-with-position-maps.
	sched     []uint64
	schedLeaf int

	// Watchdog state (see watchdog.go): an optional budget, the context
	// bounding the run, and the forward-progress trackers the livelock
	// detector compares against.
	budget          Budget
	ctx             context.Context
	wallStart       time.Time
	maxClock        uint64 // largest processor clock seen so far
	lastClock       uint64 // maxClock at the last observed advance
	eventsAtAdvance uint64 // events retired when lastClock was recorded
	tripCounter     *obs.Counter

	sampler *obs.Sampler
	tracer  *obs.Tracer
	span    *obs.Span

	// stepObs observes every executed event in global execution order
	// (nil by default). internal/check digests the architectural event
	// stream through it; the callback must be purely observational.
	stepObs func(proc int, ev trace.Event)

	// shards selects the parallel round engine when > 1 (see parallel.go);
	// par holds its bookkeeping while a parallel run is active.
	shards int
	par    *parRunner
}

// SetSpan attaches a request-scoped trace span to the run. On completion
// the engine annotates it with the simulated cycle count and the number of
// retired events — the deepest link in the one-trace-id chain from HTTP
// accept down to the simulated cycle. Purely observational: a nil span (the
// default) costs one nil check, and annotating never changes the result.
func (e *Engine) SetSpan(s *obs.Span) { e.span = s }

// SetStepObserver registers a callback invoked after each executed event
// (memory references, compute, and synchronization), in the engine's global
// execution order. A nil callback (the default) keeps the engine unchanged.
func (e *Engine) SetStepObserver(f func(proc int, ev trace.Event)) { e.stepObs = f }

// New builds an engine for machine m and one event stream per processor.
// The stream count must equal the machine's node count.
func New(m *Machine, streams []trace.Stream) (*Engine, error) {
	return newEngine(m, streams)
}

// Machine is re-exported so callers need not import internal/machine just
// for the type name in signatures.
type Machine = machine.Machine

func newEngine(m *machine.Machine, streams []trace.Stream) (*Engine, error) {
	if len(streams) != m.Geometry().Nodes() {
		return nil, fmt.Errorf("sim: %d streams for %d nodes", len(streams), m.Geometry().Nodes())
	}
	e := &Engine{m: m}
	for _, s := range streams {
		p := procState{stream: s}
		p.batcher, _ = s.(trace.BatchStream)
		e.procs = append(e.procs, p)
	}
	// Every processor starts runnable at clock 0. Leaves pad to a power of
	// two; unused leaves stay schedIdle and never win.
	leaf := 1
	for leaf < len(e.procs) {
		leaf <<= 1
	}
	e.schedLeaf = leaf
	e.sched = make([]uint64, 2*leaf)
	for i := range e.sched {
		e.sched[i] = schedIdle
	}
	for i := range e.procs {
		e.sched[leaf+i] = packSchedKey(0, int32(i))
	}
	for n := leaf - 1; n >= 1; n-- {
		l, r := e.sched[2*n], e.sched[2*n+1]
		if r < l {
			l = r
		}
		e.sched[n] = l
	}
	return e, nil
}

// lockAt returns the lock table entry for id, creating it on first use.
func (e *Engine) lockAt(id int) *lockState {
	if id >= 0 && id < maxDenseSyncID {
		if id >= len(e.locks) {
			grown := make([]lockState, id+1)
			copy(grown, e.locks)
			e.locks = grown
		}
		return &e.locks[id]
	}
	if e.locksOv == nil {
		e.locksOv = make(map[int]*lockState)
	}
	l := e.locksOv[id]
	if l == nil {
		l = &lockState{}
		e.locksOv[id] = l
	}
	return l
}

// barrierAt returns the barrier table entry for id, creating it on first use.
func (e *Engine) barrierAt(id int) *barrierState {
	if id >= 0 && id < maxDenseSyncID {
		if id >= len(e.barriers) {
			grown := make([]barrierState, id+1)
			copy(grown, e.barriers)
			e.barriers = grown
		}
		return &e.barriers[id]
	}
	if e.barrsOv == nil {
		e.barrsOv = make(map[int]*barrierState)
	}
	b := e.barrsOv[id]
	if b == nil {
		b = &barrierState{}
		e.barrsOv[id] = b
	}
	return b
}

// eachLock visits every lock that has ever been touched, in ID order for
// the dense table followed by overflow IDs; used only on the diagnostic
// paths (deadlock, watchdog dump), never per event.
func (e *Engine) eachLock(f func(id int, l *lockState)) {
	for id := range e.locks {
		if l := &e.locks[id]; l.held || l.queueLen() > 0 {
			f(id, l)
		}
	}
	for _, id := range sortedKeys(e.locksOv) {
		if l := e.locksOv[id]; l.held || l.queueLen() > 0 {
			f(id, l)
		}
	}
}

// eachBarrier visits every barrier currently holding arrivals.
func (e *Engine) eachBarrier(f func(id int, b *barrierState)) {
	for id := range e.barriers {
		if b := &e.barriers[id]; len(b.arrived) > 0 {
			f(id, b)
		}
	}
	for _, id := range sortedKeys(e.barrsOv) {
		if b := e.barrsOv[id]; len(b.arrived) > 0 {
			f(id, b)
		}
	}
}

func sortedKeys[V any](m map[int]V) []int {
	if len(m) == 0 {
		return nil
	}
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// SetObserver wires an observability sink into the engine: per-processor
// time-breakdown probes, the epoch sampler (driven by the executing
// processor's clock, which the cycle-ordered scheduler keeps
// non-decreasing), and "sync"-category trace events for lock and barrier
// waits. Call before Run; the machine's own AttachObserver is separate.
func (e *Engine) SetObserver(o *obs.Observer) {
	if o == nil {
		return
	}
	e.sampler = o.Samp()
	e.tracer = o.Tr()
	r := o.Reg()
	if r == nil {
		return
	}
	r.Probe("sim/events", func() float64 { return float64(e.events) })
	if !e.budget.Zero() {
		// Watchdog instrumentation: how close the run is to the livelock
		// trip point, and how many times the watchdog has fired.
		r.Probe("sim/watchdog/stallWindow", func() float64 { return float64(e.events - e.eventsAtAdvance) })
		r.Probe("sim/watchdog/maxClock", func() float64 { return float64(e.maxClock) })
	}
	e.tripCounter = r.Counter("sim/watchdog/trips")
	for i := range e.procs {
		p := &e.procs[i]
		pre := fmt.Sprintf("proc%02d", i)
		r.Probe(pre+"/busy", func() float64 { return float64(p.stats.Busy) })
		r.Probe(pre+"/sync", func() float64 { return float64(p.stats.Sync) })
		r.Probe(pre+"/stallLocal", func() float64 { return float64(p.stats.StallLocal) })
		r.Probe(pre+"/stallRemote", func() float64 { return float64(p.stats.StallRemote) })
		r.Probe(pre+"/trans", func() float64 { return float64(p.stats.Trans) })
		r.Probe(pre+"/refs", func() float64 { return float64(p.stats.Refs) })
	}
}

// Run executes the workload to completion and returns the per-processor
// accounting. Streams are closed on return.
//
// The scheduler reads the tournament-tree root: sched[1] is exactly the
// (clock, index)-least runnable processor the seed engine's O(P) pickRunnable
// scan would select (packed keys embed the index, so distinct processors
// never compare equal). A processor whose refreshed key still holds the root
// is re-stepped immediately without any tree traffic beyond its own leaf
// path — and that path update already folded in any lock grants or barrier
// releases the step handed out.
func (e *Engine) Run() (Result, error) {
	defer func() {
		for i := range e.procs {
			trace.CloseStream(e.procs[i].stream)
		}
	}()
	e.wallStart = time.Now()
	if e.shards > 1 && e.parallelOK() {
		if err := e.runParallel(); err != nil {
			return Result{}, err
		}
	} else if err := e.runLoop(); err != nil {
		return Result{}, err
	}
	if !e.allDone() {
		return Result{}, e.deadlockError()
	}
	res := Result{Events: e.events}
	for i := range e.procs {
		p := &e.procs[i]
		p.stats.Finish = p.clock
		res.Procs = append(res.Procs, p.stats)
		if p.clock > res.ExecTime {
			res.ExecTime = p.clock
		}
	}
	e.sampler.Finish(res.ExecTime)
	e.span.SetAttrUint("exec_cycles", res.ExecTime)
	e.span.SetAttrUint("events", res.Events)
	return res, nil
}

// runLoop is the sequential scheduling loop, run to quiescence: it returns
// nil once no processor is runnable (workload complete, or deadlocked —
// Run's caller distinguishes the two), or the first step/budget error.
func (e *Engine) runLoop() error {
	supervised := !e.budget.Zero() || e.ctx != nil
	for {
		top := e.sched[1]
		if top == schedIdle {
			return nil // nobody runnable: finished, or deadlocked
		}
		i := int(top & (1<<schedIndexBits - 1))
		p := &e.procs[i]
		for {
			if err := e.step(i); err != nil {
				return err
			}
			if supervised {
				if err := e.checkBudget(); err != nil {
					return err
				}
			}
			if p.done || p.waiting {
				e.schedUpdate(i, schedIdle)
				break
			}
			k := packSchedKey(p.clock, int32(i))
			e.schedUpdate(i, k)
			if e.sched[1] != k {
				break // p lost the minimum: re-read the root
			}
			// p is still the strict scheduler minimum: retire its next
			// event without re-reading the root.
		}
	}
}

// schedIndexBits is the low-bit width a processor index occupies inside a
// packed scheduling key; the clock lives in the 48 bits above it.
const schedIndexBits = 16

// schedIdle is the key of a processor that cannot run (done or blocked):
// larger than every packable key, so it never wins the argmin scan.
const schedIdle = ^uint64(0)

// packSchedKey packs (clock, index) into one integer whose natural order is
// the cycle-ordered scheduling rule: smallest clock first, lowest index on
// ties. 48 bits of clock bound a run at ~2.8e14 cycles, far beyond any
// budgeted simulation; the guard keeps an overflow loud instead of silently
// misordering the schedule.
func packSchedKey(clock uint64, idx int32) uint64 {
	if clock >= 1<<(64-schedIndexBits) {
		panic("sim: clock overflows scheduling key")
	}
	return clock<<schedIndexBits | uint64(idx)
}

// schedUpdate sets processor i's scheduling key and replays its leaf-to-root
// tournament path. The replay stops as soon as a recomputed node is
// unchanged, since every ancestor depends only on node values below it.
func (e *Engine) schedUpdate(i int, k uint64) {
	t := e.sched
	n := e.schedLeaf + i
	t[n] = k
	for n >>= 1; n >= 1; n >>= 1 {
		l, r := t[2*n], t[2*n+1]
		if r < l {
			l = r
		}
		if t[n] == l {
			return
		}
		t[n] = l
	}
}

// wakeProc marks a blocked processor runnable again at its (already
// advanced) clock — a lock grant or barrier release.
func (e *Engine) wakeProc(p int32) {
	e.schedUpdate(int(p), packSchedKey(e.procs[p].clock, p))
}

func (e *Engine) allDone() bool {
	for i := range e.procs {
		if !e.procs[i].done {
			return false
		}
	}
	return true
}

func (e *Engine) deadlockError() error {
	done, waiting := 0, 0
	for i := range e.procs {
		if e.procs[i].done {
			done++
		} else if e.procs[i].waiting {
			waiting++
		}
	}
	// Classify each waiter by the synchronization object it is actually
	// blocked on: a waiting processor sits in exactly one lock queue or one
	// barrier's arrival list (a full barrier releases synchronously, so any
	// barrier still present holds only blocked processors).
	atLock, atBarrier := 0, 0
	e.eachLock(func(_ int, l *lockState) { atLock += l.queueLen() })
	e.eachBarrier(func(_ int, b *barrierState) { atBarrier += len(b.arrived) })
	return fmt.Errorf("sim: deadlock: %d done, %d waiting (%d at locks, %d at barriers) of %d processors — unbalanced barriers or a lock never released",
		done, waiting, atLock, atBarrier, len(e.procs))
}

func (e *Engine) step(i int) error {
	p := &e.procs[i]
	var ev trace.Event
	if p.bpos < len(p.batch) {
		ev = p.batch[p.bpos]
		p.bpos++
	} else {
		var ok bool
		if ev, ok = p.refill(); !ok {
			p.done = true
			return nil
		}
	}
	e.events++
	switch ev.Kind {
	case trace.Compute:
		p.stats.Busy += ev.Cycles
		p.clock += ev.Cycles
	case trace.Read, trace.Write:
		p.stats.Refs++
		res := e.m.Access(p.clock, addr.Node(i), ev.Addr, ev.Kind == trace.Write)
		p.clock += res.Cycles
		p.stats.Trans += res.TransCycles
		stall := res.Cycles - res.TransCycles
		if res.Class == machine.ClassRemote {
			p.stats.StallRemote += stall
		} else {
			p.stats.StallLocal += stall
		}
	case trace.LockAcquire:
		e.lockAcquire(i, ev.ID)
	case trace.LockRelease:
		if err := e.lockRelease(i, ev.ID); err != nil {
			return err
		}
	case trace.Barrier:
		e.barrierArrive(i, ev.ID)
	default:
		return fmt.Errorf("sim: processor %d: unknown event kind %v", i, ev.Kind)
	}
	e.noteClock(p.clock)
	if e.stepObs != nil {
		e.stepObs(i, ev)
	}
	e.sampler.Tick(p.clock)
	return nil
}

// noteClock folds a clock advance into the watchdog's forward-progress
// tracker. Every site that moves a processor clock must report it here —
// lock grants and barrier releases advance processors other than the one
// executing, and missing those leaves the livelock detector staring at a
// stale maxClock.
func (e *Engine) noteClock(c uint64) {
	if c > e.maxClock {
		e.maxClock = c
	}
}

// lockTransferCost is the cost of one lock message exchange with the lock's
// home node, derived from the machine's request timing.
func (e *Engine) lockTransferCost() uint64 {
	return 2 * e.m.Config().Timing.NetRequest
}

func (e *Engine) lockHomeDistance(id int) uint64 {
	// Locks live at a home node; every operation is a request round trip.
	return e.lockTransferCost()
}

func (e *Engine) lockAcquire(i, id int) {
	l := e.lockAt(id)
	p := &e.procs[i]
	if !l.held {
		cost := e.lockHomeDistance(id)
		l.held = true
		l.owner = int32(i)
		p.stats.Sync += cost
		p.clock += cost
		return
	}
	l.push(int32(i), p.clock)
	p.waiting = true
}

func (e *Engine) lockRelease(i, id int) error {
	l := e.lockAt(id)
	if !l.held || l.owner != int32(i) {
		return fmt.Errorf("sim: processor %d releases lock %d it does not hold", i, id)
	}
	p := &e.procs[i]
	cost := e.lockHomeDistance(id)
	p.stats.Sync += cost
	p.clock += cost
	releaseDone := p.clock

	if l.queueLen() == 0 {
		l.held = false
		return nil
	}
	w := l.pop()
	next := int(w.proc)
	np := &e.procs[next]
	arrived := w.arrived
	grant := releaseDone
	if arrived > grant {
		grant = arrived
	}
	grant += e.lockHomeDistance(id)
	np.stats.Sync += grant - arrived
	np.clock = grant
	e.noteClock(np.clock)
	np.waiting = false
	l.owner = w.proc
	e.wakeProc(w.proc)
	if e.tracer.Enabled("sync") {
		e.tracer.Complete("sync", "lock-wait", next, 0, arrived, grant-arrived)
	}
	return nil
}

func (e *Engine) barrierArrive(i, id int) {
	b := e.barrierAt(id)
	p := &e.procs[i]
	notify := e.m.Config().Timing.BarrierNotify
	p.clock += notify
	p.stats.Sync += notify
	b.arrived = append(b.arrived, int32(i))
	if p.clock > b.latest {
		b.latest = p.clock
	}
	if len(b.arrived) < len(e.procs) {
		p.waiting = true
		return
	}
	// Last arrival: release everyone after the latest arrival. The release
	// notifications serialize on the barrier home's network port, so each
	// processor restarts a few cycles after the previous one — without the
	// stagger every processor would re-issue its first post-barrier miss
	// in the same cycle, an artificial convoy no real machine exhibits.
	release := b.latest + notify
	const releaseStagger = 4
	for k, j := range b.arrived {
		q := &e.procs[j]
		r := release + uint64(k)*releaseStagger
		// q.clock still holds j's arrival time (waiting processors do not
		// advance), which makes the barrier phase a complete event from
		// arrival to restart on j's track.
		if e.tracer.Enabled("sync") {
			e.tracer.Complete("sync", "barrier", int(j), 0, q.clock, r-q.clock)
		}
		q.stats.Sync += r - q.clock
		q.clock = r
		e.noteClock(q.clock)
		q.waiting = false
		if int(j) != i {
			// The executing (last-arriving) processor is already in the
			// heap; everyone it released re-enters here.
			e.wakeProc(j)
		}
	}
	// Reset in place: the next episode of this barrier reuses the backing
	// array (the seed engine deleted and re-allocated the map entry).
	b.arrived = b.arrived[:0]
	b.latest = 0
}
