package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{
		{"xxxxxx", "1"},
		{"y", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines: %d", len(lines))
	}
	// All rows render to the same width.
	w := len(lines[0])
	for i, l := range lines {
		if len(strings.TrimRight(l, " ")) > w {
			t.Fatalf("row %d wider than header: %q", i, l)
		}
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("no separator: %q", lines[1])
	}
}

func TestMarkdownTable(t *testing.T) {
	out := MarkdownTable([]string{"h1", "h2"}, [][]string{{"a", "b"}})
	want := "| h1 | h2 |\n| --- | --- |\n| a | b |\n"
	if out != want {
		t.Fatalf("got %q", out)
	}
}

func TestCount(t *testing.T) {
	cases := map[float64]string{
		-1:      ">512",
		0.5:     "0.50",
		3.25:    "3.2",
		42:      "42",
		15000:   "15.0k",
		2500000: "2.50M",
	}
	for v, want := range cases {
		if got := Count(v); got != want {
			t.Errorf("Count(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestRate(t *testing.T) {
	if Rate(10.61) != "10.61" || Rate(0.004) != "0.0040" || Rate(0) != "0" {
		t.Fatalf("rate formats: %q %q %q", Rate(10.61), Rate(0.004), Rate(0))
	}
}

func TestBar(t *testing.T) {
	if Bar(0.5, 10) != "#####....." {
		t.Fatalf("bar: %q", Bar(0.5, 10))
	}
	if Bar(-1, 4) != "...." || Bar(2, 4) != "####" {
		t.Fatal("bar clamping")
	}
}

func TestProfile(t *testing.T) {
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i) / 64
	}
	out := Profile(vals, 8, 20, func(v float64) string { return "x" })
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("buckets: %d", len(lines))
	}
	if Profile(nil, 4, 10, nil) != "(empty)\n" {
		t.Fatal("empty profile")
	}
	// All-zero values must not divide by zero.
	if out := Profile([]float64{0, 0}, 2, 10, func(v float64) string { return "0" }); out == "" {
		t.Fatal("zero profile")
	}
}
