package report

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"vcoma/internal/obs"
)

// summaryFixture builds a RunSummary with every optional observability field
// populated, the way an instrumented vcoma-sim -json run does.
func summaryFixture() RunSummary {
	reg := obs.NewRegistry()
	reg.Counter("node00/refs").Add(100)
	reg.Counter("node01/refs").Add(50)
	s := obs.NewSampler(reg, 1000)
	s.Tick(1000)
	s.Tick(2000)
	s.Finish(2500)
	ts := s.Export()

	h := reg.Histogram("lat/access")
	for _, v := range []uint64{1, 3, 500, 1200} {
		h.Observe(v)
	}

	return RunSummary{
		Benchmark:  "RADIX",
		Scheme:     "V-COMA",
		Scale:      "test",
		TLBEntries: 8,
		TLBOrg:     "FA",
		ExecCycles: 2500,
		Breakdown: Breakdown{
			Label: "DLB/8", Busy: 10, Sync: 20, Local: 30, Remote: 40, Trans: 5, Exec: 2500,
		},
		Refs:       150,
		Hits:       HitRates{FLC: 55.5, SLC: 20, LocalAM: 1, Remote: 23.5},
		DLB:        &TranslationStats{Accesses: 150, Misses: 3, MissPctOfRefs: 2},
		Protocol:   ProtocolSummary{RemoteReads: 7, WriteFetches: 2},
		TimeSeries: &ts,
		Latency:    reg.Histograms(),
	}
}

func TestRunSummaryRoundTrip(t *testing.T) {
	want := summaryFixture()
	data, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var got RunSummary
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the summary:\ngot  %+v\nwant %+v", got, want)
	}

	// The decoded time series still answers queries.
	if v, ok := got.TimeSeries.Last("node00/refs"); !ok || v != 100 {
		t.Fatalf("decoded final sample = %v, ok=%v", v, ok)
	}
	if len(got.Latency) != 1 || got.Latency[0].Name != "lat/access" {
		t.Fatalf("decoded latency %+v", got.Latency)
	}
	if got.Latency[0].Count != 4 {
		t.Fatalf("decoded histogram count %d", got.Latency[0].Count)
	}
}

func TestRunSummaryOptionalFieldsOmitted(t *testing.T) {
	// An uninstrumented run must serialize without the observability keys,
	// so pre-observability consumers see an unchanged schema.
	plain := RunSummary{Benchmark: "FFT", Breakdown: Breakdown{Busy: 1}}
	data, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"timeSeries", "latency", "tlb", "dlb"} {
		if strings.Contains(string(data), `"`+key+`"`) {
			t.Fatalf("plain summary leaked %q: %s", key, data)
		}
	}
	var got RunSummary
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.TimeSeries != nil || got.Latency != nil {
		t.Fatalf("optional fields materialized: %+v", got)
	}
}
