// Package report renders experiment results as fixed-width text and
// Markdown tables, and draws simple ASCII charts for the figure-style
// results. The cmd tools and the EXPERIMENTS.md generator are built on it.
package report

import (
	"fmt"
	"strings"
)

// Table renders an aligned fixed-width text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// MarkdownTable renders a GitHub-flavoured Markdown table.
func MarkdownTable(headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(headers, " | ") + " |\n")
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// Count formats a float count compactly: integers under 10 exactly,
// thousands with a k suffix.
func Count(v float64) string {
	switch {
	case v < 0:
		return ">512"
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 10000:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v >= 10:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Rate formats a percentage with the paper's Table 2 style: two to four
// significant digits depending on magnitude.
func Rate(pct float64) string {
	switch {
	case pct >= 1:
		return fmt.Sprintf("%.2f", pct)
	case pct >= 0.01:
		return fmt.Sprintf("%.2f", pct)
	case pct > 0:
		return fmt.Sprintf("%.4f", pct)
	default:
		return "0"
	}
}

// Bar renders a horizontal ASCII bar of the given fraction of width.
func Bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// Profile renders a sequence of values (e.g. the Figure 11 pressure
// profile) as a compact multi-row ASCII chart: values are bucketed into
// groups and each bucket shows min/mean/max as a bar.
func Profile(values []float64, buckets, width int, format func(float64) string) string {
	if len(values) == 0 {
		return "(empty)\n"
	}
	if buckets <= 0 || buckets > len(values) {
		buckets = len(values)
	}
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	per := (len(values) + buckets - 1) / buckets
	for lo := 0; lo < len(values); lo += per {
		hi := lo + per
		if hi > len(values) {
			hi = len(values)
		}
		minV, sum, mx := values[lo], 0.0, values[lo]
		for _, v := range values[lo:hi] {
			if v < minV {
				minV = v
			}
			if v > mx {
				mx = v
			}
			sum += v
		}
		mean := sum / float64(hi-lo)
		fmt.Fprintf(&b, "%4d-%-4d |%s| mean=%s min=%s max=%s\n",
			lo, hi-1, Bar(mean/maxV, width), format(mean), format(minV), format(mx))
	}
	return b.String()
}
