package report

import "vcoma/internal/obs"

// Breakdown is a per-processor execution-time decomposition in cycles: the
// unit of Figure 10 and Table 4, of the runner's cached timed-pass results,
// and of the vcoma-sim -json output. One schema serves all three, so a
// cached cell and a CLI summary are directly comparable.
type Breakdown struct {
	Label  string  `json:"label,omitempty"`
	Busy   float64 `json:"busy"`
	Sync   float64 `json:"sync"`
	Local  float64 `json:"locStall"` // SLC hits and local attraction memory
	Remote float64 `json:"remStall"` // attraction-memory misses
	Trans  float64 `json:"translation"`
	// Exec is the parallel execution time (max processor finish).
	Exec uint64 `json:"execCycles"`
}

// Total returns the per-processor cycle sum.
func (b Breakdown) Total() float64 { return b.Busy + b.Sync + b.Local + b.Remote + b.Trans }

// HitRates are the memory-hierarchy hit fractions of a run, in percent of
// processor references.
type HitRates struct {
	FLC     float64 `json:"flc"`
	SLC     float64 `json:"slc"`
	LocalAM float64 `json:"localAM"`
	Remote  float64 `json:"remote"`
}

// TranslationStats summarizes TLB or DLB behaviour for a run.
type TranslationStats struct {
	Accesses uint64 `json:"accesses"`
	Misses   uint64 `json:"misses"`
	// MissPctOfRefs is misses as a percentage of processor references.
	MissPctOfRefs float64 `json:"missPctOfRefs"`
}

// ProtocolSummary is the coherence-protocol activity of a run.
type ProtocolSummary struct {
	RemoteReads   uint64 `json:"remoteReads"`
	Upgrades      uint64 `json:"upgrades"`
	WriteFetches  uint64 `json:"writeFetches"`
	Invalidations uint64 `json:"invalidations"`
	SharedDrops   uint64 `json:"sharedDrops"`
	Relocations   uint64 `json:"relocations"`
	Injections    uint64 `json:"injections"`
	InjectionHops uint64 `json:"injectionHops"`
	Swaps         uint64 `json:"swaps"`
}

// RunSummary is the machine-readable form of one simulation run, emitted by
// vcoma-sim -json.
type RunSummary struct {
	Benchmark  string `json:"benchmark"`
	Scheme     string `json:"scheme"`
	Scale      string `json:"scale"`
	TLBEntries int    `json:"tlbEntries"`
	TLBOrg     string `json:"tlbOrg"`
	Seed       uint64 `json:"seed"`

	SharedMB   float64 `json:"sharedMB"`
	Regions    int     `json:"regions"`
	ExecCycles uint64  `json:"execCycles"`
	// SimSeconds is the host wall time of the simulation.
	SimSeconds float64 `json:"simSeconds"`

	Breakdown Breakdown `json:"breakdown"`

	Refs     uint64            `json:"refs"`
	WritePct float64           `json:"writePct"`
	Hits     HitRates          `json:"hitPct"`
	TLB      *TranslationStats `json:"tlb,omitempty"`
	DLB      *TranslationStats `json:"dlb,omitempty"`

	Protocol ProtocolSummary `json:"protocol"`

	// TimeSeries is the run's epoch-sampled metrics (present when the run
	// was instrumented with -metrics-interval).
	TimeSeries *obs.TimeSeries `json:"timeSeries,omitempty"`
	// Latency holds the run's latency histograms (instrumented runs only).
	Latency []obs.HistogramSnapshot `json:"latency,omitempty"`
}
