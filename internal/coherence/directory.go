// Package coherence implements the flat-COMA (COMA-F) write-invalidate
// protocol of the paper (§4.2): per-home directories tracking the master
// copy and copyset of every block, read and write/upgrade transactions, and
// the replacement/injection chain that preserves the last copy of a block
// when a master is evicted.
//
// The protocol operates on "protocol addresses": physical block addresses in
// the physically-addressed schemes (L0/L1/L2-TLB) and virtual block
// addresses in L3-TLB and V-COMA (where page colouring makes the two index
// identically and the home node is the same either way — paper Figure 4).
// A pluggable home function maps a block to its home node.
package coherence

import (
	"fmt"
	"math/bits"

	"vcoma/internal/addr"
)

// Entry is one directory entry: the global state of one memory block.
type Entry struct {
	// Copyset is the bitmask of nodes holding a copy, including the
	// master. The protocol supports up to 64 nodes.
	Copyset uint64
	// Master is the node holding the master (MasterShared or Exclusive)
	// copy. Meaningless when Copyset is zero.
	Master addr.Node
	// Swapped marks a block whose last copy was pushed out of the machine
	// (injection chain exhausted); the next access refetches it from
	// backing store.
	Swapped bool
}

// Holders returns the number of nodes in the copyset.
func (e *Entry) Holders() int { return bits.OnesCount64(e.Copyset) }

// Holds reports whether node n is in the copyset.
func (e *Entry) Holds(n addr.Node) bool { return e.Copyset&(1<<uint(n)) != 0 }

// Add inserts node n into the copyset.
func (e *Entry) Add(n addr.Node) { e.Copyset |= 1 << uint(n) }

// Remove deletes node n from the copyset.
func (e *Entry) Remove(n addr.Node) { e.Copyset &^= 1 << uint(n) }

// AnyHolderExcept returns some copyset node other than n, or (-1, false).
func (e *Entry) AnyHolderExcept(n addr.Node) (addr.Node, bool) {
	rest := e.Copyset &^ (1 << uint(n))
	if rest == 0 {
		return -1, false
	}
	return addr.Node(bits.TrailingZeros64(rest)), true
}

// Directory is the machine-wide set of directory entries, logically
// partitioned across home nodes by the home function.
//
// Entries are carved out of fixed-capacity chunks rather than allocated
// one by one: preloading a working set touches thousands of blocks, and
// per-Entry allocations dominated the simulator's heap profile. A chunk is
// never reallocated once handed out, so *Entry pointers stay stable for
// the life of the directory.
type Directory struct {
	entries map[uint64]*Entry
	arena   []Entry // current chunk; full when len == cap
}

// arenaChunk is the entry-arena chunk size.
const arenaChunk = 1024

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{entries: make(map[uint64]*Entry)}
}

// Lookup returns the entry for block, or nil.
func (d *Directory) Lookup(block uint64) *Entry { return d.entries[block] }

// Ensure returns the entry for block, creating an empty one if needed.
func (d *Directory) Ensure(block uint64) *Entry {
	e := d.entries[block]
	if e == nil {
		if len(d.arena) == cap(d.arena) {
			d.arena = make([]Entry, 0, arenaChunk)
		}
		d.arena = d.arena[:len(d.arena)+1]
		e = &d.arena[len(d.arena)-1]
		d.entries[block] = e
	}
	return e
}

// Remove deletes block's entry, if any (address-mapping change: the
// directory page is reclaimed).
func (d *Directory) Remove(block uint64) { delete(d.entries, block) }

// Len returns the number of entries.
func (d *Directory) Len() int { return len(d.entries) }

// CheckInvariants validates directory-wide consistency against the per-node
// attraction memories via the probe function (which must return each node's
// view of the block without side effects). Used by tests and debug runs.
func (d *Directory) CheckInvariants(probe func(n addr.Node, block uint64) ProbeState, nodes int) error {
	for block := range d.entries {
		if err := d.CheckBlock(block, probe, nodes); err != nil {
			return err
		}
	}
	return nil
}

// CheckBlock validates one block's directory entry against the per-node
// attraction memories: exactly one master, copyset/presence agreement,
// Exclusive implies sole holder, and an empty copyset only for swapped
// blocks. A block with no entry must have no resident copies. Used by the
// runtime invariant checker (internal/check) after every touched reference.
func (d *Directory) CheckBlock(block uint64, probe func(n addr.Node, block uint64) ProbeState, nodes int) error {
	e := d.entries[block]
	if e == nil {
		for n := 0; n < nodes; n++ {
			if probe(addr.Node(n), block).Present {
				return fmt.Errorf("coherence: block %#x has no directory entry but node %d holds a copy", block, n)
			}
		}
		return nil
	}
	if e.Copyset == 0 {
		if !e.Swapped {
			return fmt.Errorf("coherence: block %#x has empty copyset but is not swapped (last copy destroyed)", block)
		}
		for n := 0; n < nodes; n++ {
			if probe(addr.Node(n), block).Present {
				return fmt.Errorf("coherence: block %#x swapped but node %d holds a copy", block, n)
			}
		}
		return nil
	}
	if e.Swapped {
		return fmt.Errorf("coherence: block %#x swapped with non-empty copyset %#x", block, e.Copyset)
	}
	if !e.Holds(e.Master) {
		return fmt.Errorf("coherence: block %#x master %d not in copyset %#x", block, e.Master, e.Copyset)
	}
	masters := 0
	for n := 0; n < nodes; n++ {
		st := probe(addr.Node(n), block)
		inSet := e.Holds(addr.Node(n))
		if st.Present != inSet {
			return fmt.Errorf("coherence: block %#x node %d presence %v disagrees with copyset %#x",
				block, n, st.Present, e.Copyset)
		}
		if st.Master {
			masters++
			if addr.Node(n) != e.Master {
				return fmt.Errorf("coherence: block %#x node %d is master but directory says %d",
					block, n, e.Master)
			}
		}
		if st.Exclusive && e.Holders() != 1 {
			return fmt.Errorf("coherence: block %#x exclusive at node %d with %d holders",
				block, n, e.Holders())
		}
	}
	if masters != 1 {
		return fmt.Errorf("coherence: block %#x has %d masters", block, masters)
	}
	return nil
}

// ProbeState is a node's view of a block for invariant checking.
type ProbeState struct {
	Present   bool
	Master    bool // MasterShared or Exclusive
	Exclusive bool
}
