package coherence

import (
	"testing"
	"testing/quick"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/mem"
	"vcoma/internal/prng"
)

func testGeometry() addr.Geometry {
	return addr.Geometry{NodeBits: 2, PageBits: 8, AMBlockBits: 5, AMSetBits: 6, AMAssocBits: 1}
}

func newProtocol(t *testing.T, hooks Hooks) *Protocol {
	t.Helper()
	g := testGeometry()
	p, err := New(g, config.Baseline().Timing, func(block uint64) addr.Node {
		return g.HomeNode(addr.Virtual(block))
	}, hooks, 42)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// blockAtHome returns a block address homed at node h (page number ≡ h mod 4)
// with an arbitrary distinct page per index i.
func blockAtHome(h addr.Node, i int) uint64 {
	return uint64(i*4+int(h))<<8 | 0x20
}

func TestPreloadPlacesMaster(t *testing.T) {
	p := newProtocol(t, nil)
	b := blockAtHome(1, 0)
	p.Preload(b, 2)
	if p.StateAt(2, b) != mem.MasterShared {
		t.Fatalf("state at placement node: %v", p.StateAt(2, b))
	}
	e := p.Directory().Lookup(p.align(b))
	if e == nil || e.Master != 2 || e.Holders() != 1 {
		t.Fatalf("directory entry %+v", e)
	}
	p.Preload(b, 3) // idempotent: already resident
	if p.StateAt(3, b) != mem.Invalid {
		t.Fatal("second preload installed a second master")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadMigratesSharedCopy(t *testing.T) {
	p := newProtocol(t, nil)
	b := blockAtHome(0, 0)
	p.Preload(b, 1)

	r := p.Access(0, 2, b, false)
	if r.LocalHit {
		t.Fatal("remote read reported local")
	}
	if p.StateAt(2, b) != mem.Shared || p.StateAt(1, b) != mem.MasterShared {
		t.Fatalf("states after read: requester=%v master=%v", p.StateAt(2, b), p.StateAt(1, b))
	}
	e := p.Directory().Lookup(p.align(b))
	if e.Holders() != 2 || !e.Holds(2) || e.Master != 1 {
		t.Fatalf("directory %+v", e)
	}
	// The second read hits locally and is cheaper.
	r2 := p.Access(r.Latency, 2, b, false)
	if !r2.LocalHit || r2.Latency != p.timing.AMHit {
		t.Fatalf("second read: %+v", r2)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadDowngradesExclusive(t *testing.T) {
	p := newProtocol(t, nil)
	b := blockAtHome(0, 0)
	p.Preload(b, 1)
	p.Access(0, 1, b, true) // local upgrade MS -> E
	if p.StateAt(1, b) != mem.Exclusive {
		t.Fatalf("upgrade failed: %v", p.StateAt(1, b))
	}
	p.Access(100, 3, b, false)
	if p.StateAt(1, b) != mem.MasterShared || p.StateAt(3, b) != mem.Shared {
		t.Fatalf("downgrade: master=%v reader=%v", p.StateAt(1, b), p.StateAt(3, b))
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteInvalidatesAllCopies(t *testing.T) {
	p := newProtocol(t, nil)
	b := blockAtHome(0, 0)
	p.Preload(b, 1)
	p.Access(0, 2, b, false)
	p.Access(0, 3, b, false)
	if p.Directory().Lookup(p.align(b)).Holders() != 3 {
		t.Fatal("setup: want 3 holders")
	}

	r := p.Access(1000, 2, b, true) // upgrade from Shared
	if r.LocalHit {
		t.Fatal("upgrade reported local")
	}
	if p.StateAt(2, b) != mem.Exclusive {
		t.Fatalf("writer state %v", p.StateAt(2, b))
	}
	for _, n := range []addr.Node{1, 3} {
		if p.StateAt(n, b) != mem.Invalid {
			t.Fatalf("node %d still holds the block: %v", n, p.StateAt(n, b))
		}
	}
	e := p.Directory().Lookup(p.align(b))
	if e.Holders() != 1 || e.Master != 2 {
		t.Fatalf("directory %+v", e)
	}
	st := p.Stats()
	if st.Upgrades != 1 || st.Invalidations != 2 {
		t.Fatalf("stats %+v", st)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFetchesFromMaster(t *testing.T) {
	p := newProtocol(t, nil)
	b := blockAtHome(1, 0)
	p.Preload(b, 0)
	r := p.Access(0, 3, b, true)
	if r.LocalHit || p.StateAt(3, b) != mem.Exclusive || p.StateAt(0, b) != mem.Invalid {
		t.Fatalf("write fetch: %+v, states %v/%v", r, p.StateAt(3, b), p.StateAt(0, b))
	}
	if p.Stats().WriteFetches != 1 {
		t.Fatalf("stats %+v", p.Stats())
	}
}

func TestColdCreate(t *testing.T) {
	p := newProtocol(t, nil)
	b := blockAtHome(0, 7)
	r := p.Access(0, 2, b, false)
	if r.LocalHit || p.StateAt(2, b) != mem.MasterShared {
		t.Fatalf("cold read: %+v state %v", r, p.StateAt(2, b))
	}
	if p.Stats().ColdCreates != 1 {
		t.Fatal("cold create not counted")
	}
	b2 := blockAtHome(0, 8)
	p.Access(0, 1, b2, true)
	if p.StateAt(1, b2) != mem.Exclusive {
		t.Fatal("cold write not exclusive")
	}
}

func TestMasterRelocation(t *testing.T) {
	p := newProtocol(t, nil)
	g := testGeometry()
	// Node 2's AM is 2-way; fill one set with two masters, both also
	// shared by node 3, then force an eviction with a third block in the
	// same set.
	setStride := uint64(g.AMSets()) * g.AMBlockSize() // 2 KB
	b0, b1, b2 := uint64(0x20), 0x20+setStride, 0x20+2*setStride
	p.Preload(b0, 2)
	p.Preload(b1, 2)
	p.Access(0, 3, b0, false) // node 3 holds a Shared copy of b0

	// Node 2 reads b2 (same set): victim must be chosen; b0 can relocate
	// its mastership to node 3.
	p.Access(0, 2, b2, false)
	if p.Stats().Relocations == 0 && p.Stats().Injections == 0 && p.Stats().SharedDrops == 0 {
		t.Fatalf("no replacement activity: %+v", p.Stats())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Whatever was evicted, exactly one master per resident block remains
	// (checked by invariants) and b2 is now readable at node 2.
	if !p.StateAt(2, b2).Readable() {
		t.Fatal("fetched block not resident")
	}
}

func TestInjectionAndSwap(t *testing.T) {
	g := testGeometry()
	p := newProtocol(t, nil)
	// Fill the same AM set on EVERY node with masters so an eviction has
	// nowhere to go: the chain must swap the victim out, and a later
	// access must refetch it.
	setStride := uint64(g.AMSets()) * g.AMBlockSize()
	idx := 0
	fill := func(n addr.Node) []uint64 {
		var blocks []uint64
		for w := 0; w < g.AMAssoc(); w++ {
			b := uint64(0x20) + uint64(idx)*setStride
			idx++
			p.Preload(b, n)
			blocks = append(blocks, b)
		}
		return blocks
	}
	var all []uint64
	for n := 0; n < g.Nodes(); n++ {
		all = append(all, fill(addr.Node(n))...)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every slot of this global set holds a sole master. One more block in
	// the same set: installing it at node 0 evicts a master whose
	// injection chain finds no Invalid or Shared slot anywhere.
	extra := uint64(0x20) + uint64(idx)*setStride
	p.Access(0, 0, extra, false)
	if p.Stats().Swaps != 1 {
		t.Fatalf("swaps = %d, want 1 (stats %+v)", p.Stats().Swaps, p.Stats())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Find the swapped block and access it again: it must refetch.
	var swapped uint64
	for _, b := range append(all, extra) {
		if e := p.Directory().Lookup(b); e != nil && e.Swapped {
			swapped = b
			break
		}
	}
	if swapped == 0 {
		t.Fatal("no swapped block found")
	}
	p.Access(0, 1, swapped, false)
	if p.Stats().SwapRefetches != 1 {
		t.Fatalf("refetches = %d", p.Stats().SwapRefetches)
	}
	if !p.StateAt(1, swapped).Readable() {
		t.Fatal("refetched block not readable")
	}
}

func TestHooksFire(t *testing.T) {
	type rec struct {
		dirLookups int
		backInvals int
		replTrans  int
	}
	var r rec
	hooks := hookFuncs{
		dir:  func(addr.Node, uint64, bool) uint64 { r.dirLookups++; return 3 },
		back: func(addr.Node, uint64) { r.backInvals++ },
		repl: func(addr.Node, uint64) uint64 { r.replTrans++; return 0 },
	}
	p := newProtocol(t, hooks)
	b := blockAtHome(0, 0)
	p.Preload(b, 1)
	p.Access(0, 2, b, false)
	res := p.Access(0, 3, b, true)
	if r.dirLookups < 2 {
		t.Fatalf("dir lookups = %d", r.dirLookups)
	}
	if r.backInvals < 2 { // nodes 1 and 2 lose their copies
		t.Fatalf("back invalidations = %d", r.backInvals)
	}
	if res.TransCycles == 0 {
		t.Fatal("hook cycles not reported as translation time")
	}
}

type hookFuncs struct {
	dir  func(addr.Node, uint64, bool) uint64
	back func(addr.Node, uint64)
	repl func(addr.Node, uint64) uint64
}

func (h hookFuncs) DirLookup(_ uint64, n addr.Node, b uint64, c bool) uint64 { return h.dir(n, b, c) }
func (h hookFuncs) BackInvalidate(n addr.Node, b uint64)                     { h.back(n, b) }
func (h hookFuncs) ReplacementTranslate(_ uint64, n addr.Node, b uint64) uint64 {
	return h.repl(n, b)
}

func TestRandomOperationsPreserveInvariants(t *testing.T) {
	// Property: after any sequence of reads and writes from random nodes
	// to a pool of blocks (sized to force evictions), every directory
	// invariant holds and latencies are sane.
	err := quick.Check(func(seed uint64) bool {
		p := newProtocol(t, nil)
		g := testGeometry()
		rng := prng.New(seed)
		// 64 blocks spread over 8 pages: small enough to conflict.
		blocks := make([]uint64, 64)
		for i := range blocks {
			blocks[i] = uint64(0x10000) + uint64(i)*g.AMBlockSize()
			p.Preload(blocks[i], addr.Node(rng.Intn(g.Nodes())))
		}
		now := uint64(0)
		for op := 0; op < 400; op++ {
			n := addr.Node(rng.Intn(g.Nodes()))
			b := blocks[rng.Intn(len(blocks))]
			res := p.Access(now, n, b, rng.Intn(3) == 0)
			if res.Latency == 0 && !res.LocalHit {
				return false
			}
			now += res.Latency/8 + 1
		}
		return p.CheckInvariants() == nil
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTooManyNodesRejected(t *testing.T) {
	g := addr.Geometry{NodeBits: 7, PageBits: 12, AMBlockBits: 7, AMSetBits: 13, AMAssocBits: 2}
	_, err := New(g, config.Baseline().Timing, func(uint64) addr.Node { return 0 }, nil, 1)
	if err == nil {
		t.Fatal("128 nodes accepted with a 64-bit copyset")
	}
	if _, err := New(testGeometry(), config.Baseline().Timing, nil, nil, 1); err == nil {
		t.Fatal("nil home function accepted")
	}
}

func TestRandomOperationsNoRelocationAblation(t *testing.T) {
	// The no-relocation ablation exercises the injection chain much
	// harder (every master eviction injects); invariants must still hold.
	err := quick.Check(func(seed uint64) bool {
		p := newProtocol(t, nil)
		p.DisableMasterRelocation()
		g := testGeometry()
		rng := prng.New(seed)
		blocks := make([]uint64, 96)
		for i := range blocks {
			blocks[i] = uint64(0x40000) + uint64(i)*g.AMBlockSize()
			p.Preload(blocks[i], addr.Node(rng.Intn(g.Nodes())))
		}
		now := uint64(0)
		for op := 0; op < 400; op++ {
			n := addr.Node(rng.Intn(g.Nodes()))
			b := blocks[rng.Intn(len(blocks))]
			res := p.Access(now, n, b, rng.Intn(3) == 0)
			now += res.Latency/8 + 1
		}
		return p.CheckInvariants() == nil
	}, &quick.Config{MaxCount: 15})
	if err != nil {
		t.Fatal(err)
	}
}
