package coherence

import (
	"vcoma/internal/addr"
	"vcoma/internal/mem"
)

// DataSource says where the data of an installed copy came from. The
// simulator carries no data payloads, so a verification layer reconstructs
// values by following these provenance edges (internal/check's shadow
// memory).
type DataSource uint8

const (
	// SrcPreload: initial placement from backing store before the run.
	SrcPreload DataSource = iota
	// SrcBacking: refetch from backing store (cold create or swap-in).
	SrcBacking
	// SrcMaster: the block's master copy supplied the data.
	SrcMaster
	// SrcInjection: an evicted master copy carried the data here.
	SrcInjection
	// SrcLocal: the node already held the data (ownership upgrade).
	SrcLocal
)

func (s DataSource) String() string {
	switch s {
	case SrcPreload:
		return "preload"
	case SrcBacking:
		return "backing"
	case SrcMaster:
		return "master"
	case SrcInjection:
		return "injection"
	case SrcLocal:
		return "local"
	default:
		return "DataSource(?)"
	}
}

// RemoveReason says why a node lost its attraction-memory copy.
type RemoveReason uint8

const (
	// RemInvalidate: a write transaction invalidated the copy.
	RemInvalidate RemoveReason = iota
	// RemSharedDrop: a Shared victim was silently replaced.
	RemSharedDrop
	// RemMasterEvict: a master victim was displaced; a relocation,
	// injection or swap event follows.
	RemMasterEvict
	// RemBlockEvict: EvictBlock removed the copy (demap or page-out).
	RemBlockEvict
)

func (r RemoveReason) String() string {
	switch r {
	case RemInvalidate:
		return "invalidate"
	case RemSharedDrop:
		return "shared-drop"
	case RemMasterEvict:
		return "master-evict"
	case RemBlockEvict:
		return "block-evict"
	default:
		return "RemoveReason(?)"
	}
}

// Sink observes every architectural state change the protocol makes:
// installs (with data provenance), removals, in-place state changes, and
// blocks leaving the machine. Events carry no timestamps — they describe
// the architectural computation, which must be identical whether or not a
// sink is attached (the cycle-invariance contract of internal/check).
//
// Events are emitted in the protocol's execution order, which under the
// engine's sequential-consistency scheduling is a total order.
type Sink interface {
	// CopyInstalled fires when node n gains (or re-states) a copy of
	// block, with the data source and the node it came from.
	CopyInstalled(n addr.Node, block uint64, s mem.State, src DataSource, from addr.Node)
	// CopyRemoved fires when node n loses its copy of block.
	CopyRemoved(n addr.Node, block uint64, reason RemoveReason)
	// StateChanged fires on an in-place state transition at node n
	// (Exclusive→MasterShared on a remote read, Shared→MasterShared on a
	// relocation).
	StateChanged(n addr.Node, block uint64, s mem.State)
	// BlockSwapped fires when block's last copy falls off the injection
	// chain: node from's data is written back to backing store.
	BlockSwapped(block uint64, from addr.Node)
	// BlockEvicted fires when EvictBlock discards a resident block: the
	// master's data is written back to backing store before the copies
	// are dropped.
	BlockEvicted(block uint64, master addr.Node)
}

// SetSink attaches an architectural-event sink. A nil sink (the default)
// keeps the protocol event-free; attaching one must not change any
// simulated outcome or timing.
func (p *Protocol) SetSink(s Sink) { p.sink = s }

// TestBug selects a deliberately broken protocol behaviour, used only by
// negative tests to prove the verification layer catches real coherence
// bugs. Production configurations never set one.
type TestBug uint8

const (
	// BugNone: correct protocol (the default).
	BugNone TestBug = iota
	// BugDropLastCopy: a master eviction with no other copy silently
	// discards the data instead of injecting it — the machine loses the
	// last copy of the line.
	BugDropLastCopy
	// BugSkipInvalidate: a write transaction skips invalidating the first
	// other holder, leaving a stale copy readable at that node.
	BugSkipInvalidate
)

// InjectTestBug arms a deliberate protocol bug for negative testing.
func (p *Protocol) InjectTestBug(b TestBug) { p.bug = b }
