package coherence

import (
	"testing"

	"vcoma/internal/addr"
	"vcoma/internal/config"
)

// These tests pin the protocol's latency composition against the paper's
// §5.1 timing model, on a quiet machine (no contention).

func timing() config.Timing { return config.Baseline().Timing }

func TestRemoteReadLatencyComposition(t *testing.T) {
	p := newProtocol(t, nil)
	tm := timing()
	b := blockAtHome(1, 0) // home node 1
	p.Preload(b, 2)        // master at node 2

	// Requester 3, home 1, master 2, all distinct:
	// local AM probe + request to home + dir lookup + forward to master +
	// master AM access + block to requester.
	want := tm.AMHit + tm.NetRequest + tm.DirLookup + tm.NetRequest + tm.AMHit + tm.NetBlock
	r := p.Access(0, 3, b, false)
	if r.Latency != want {
		t.Fatalf("remote read latency %d, want %d", r.Latency, want)
	}
}

func TestRemoteReadMasterAtHome(t *testing.T) {
	p := newProtocol(t, nil)
	tm := timing()
	b := blockAtHome(1, 0)
	p.Preload(b, 1) // master IS the home
	want := tm.AMHit + tm.NetRequest + tm.DirLookup + tm.AMHit + tm.NetBlock
	r := p.Access(0, 3, b, false)
	if r.Latency != want {
		t.Fatalf("read (master at home) latency %d, want %d", r.Latency, want)
	}
}

func TestLocalMissToOwnHome(t *testing.T) {
	p := newProtocol(t, nil)
	tm := timing()
	b := blockAtHome(1, 0)
	p.Preload(b, 2)
	// Requester == home: the request crosses no network.
	want := tm.AMHit + tm.DirLookup + tm.NetRequest + tm.AMHit + tm.NetBlock
	r := p.Access(0, 1, b, false)
	if r.Latency != want {
		t.Fatalf("home-local read latency %d, want %d", r.Latency, want)
	}
}

func TestUpgradeLatencyComposition(t *testing.T) {
	p := newProtocol(t, nil)
	tm := timing()
	b := blockAtHome(1, 0)
	p.Preload(b, 2)
	p.Access(0, 3, b, false) // node 3 now Shared; master 2

	// Node 3 upgrade: probe + req to home + dir + parallel invalidation of
	// node 2 (inval + ack) + grant back to 3.
	start := uint64(100000) // past all port busy times
	want := tm.AMHit + tm.NetRequest + tm.DirLookup + (tm.NetRequest + tm.NetRequest) + tm.NetRequest
	r := p.Access(start, 3, b, true)
	if r.Latency != want {
		t.Fatalf("upgrade latency %d, want %d", r.Latency, want)
	}
}

func TestLocalHitLatency(t *testing.T) {
	p := newProtocol(t, nil)
	tm := timing()
	b := blockAtHome(0, 0)
	p.Preload(b, 2)
	if r := p.Access(0, 2, b, false); !r.LocalHit || r.Latency != tm.AMHit {
		t.Fatalf("local read: %+v", r)
	}
	p.Access(0, 2, b, true) // upgrade to E
	if r := p.Access(50000, 2, b, true); !r.LocalHit || r.Latency != tm.AMHit {
		t.Fatalf("local exclusive write: %+v", r)
	}
}

func TestPEQueueingSerializesHomeLookups(t *testing.T) {
	// Make the PE service long (a slow DLB walk) so that back-to-back
	// lookups at the same home visibly queue; with InfinitePEBandwidth
	// they must not.
	slowDLB := hookFuncs{
		dir:  func(addr.Node, uint64, bool) uint64 { return 100 },
		back: func(addr.Node, uint64) {},
		repl: func(addr.Node, uint64) uint64 { return 0 },
	}
	run := func(infinite bool) (uint64, uint64) {
		p := newProtocol(t, slowDLB)
		if infinite {
			p.DisablePEQueueing()
		}
		b1 := blockAtHome(1, 0)
		b2 := blockAtHome(1, 1)
		p.Preload(b1, 2)
		p.Preload(b2, 2)
		r1 := p.Access(0, 3, b1, false)
		r2 := p.Access(0, 0, b2, false)
		return r1.Latency, r2.Latency
	}
	q1, q2 := run(false)
	if q2 <= q1 {
		t.Fatalf("no PE queueing: %d then %d", q1, q2)
	}
	f1, f2 := run(true)
	if f2-f1 >= q2-q1 {
		t.Fatalf("infinite PE bandwidth did not shrink the gap: %d vs %d", f2-f1, q2-q1)
	}
}

func TestSwapRefetchCharged(t *testing.T) {
	p := newProtocol(t, nil)
	tm := timing()
	b := blockAtHome(0, 3)
	e := p.dir.Ensure(p.align(b))
	e.Swapped = true
	r := p.Access(0, 2, b, false)
	if r.Latency < tm.SwapFetch {
		t.Fatalf("swap refetch latency %d below the swap cost %d", r.Latency, tm.SwapFetch)
	}
}

func TestEvictBlockAndPage(t *testing.T) {
	p := newProtocol(t, nil)
	b := blockAtHome(0, 0)
	p.Preload(b, 1)
	p.Access(0, 2, b, false)
	p.Access(0, 3, b, false)
	st := p.EvictBlock(0, b)
	if st.CopiesDropped != 3 || st.Blocks != 1 {
		t.Fatalf("evict stats %+v", st)
	}
	if p.dir.Lookup(p.align(b)) != nil {
		t.Fatal("directory entry survived eviction")
	}
	for n := addr.Node(0); n < 4; n++ {
		if p.StateAt(n, b).Readable() {
			t.Fatalf("node %d still holds the block", n)
		}
	}
	// Idempotent.
	if st := p.EvictBlock(0, b); st.CopiesDropped != 0 || st.Blocks != 0 {
		t.Fatalf("double eviction: %+v", st)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Page eviction covers all blocks of the page.
	g := testGeometry()
	base := uint64(0x30000)
	for off := uint64(0); off < g.PageSize(); off += g.AMBlockSize() {
		p.Preload(base+off, 2)
	}
	pst := p.EvictPage(0, base)
	if pst.Blocks != g.BlocksPerPage() {
		t.Fatalf("page eviction removed %d entries, want %d", pst.Blocks, g.BlocksPerPage())
	}
}
