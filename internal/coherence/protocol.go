package coherence

import (
	"fmt"
	"math/bits"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/mem"
	"vcoma/internal/network"
	"vcoma/internal/obs"
	"vcoma/internal/prng"
)

// Hooks let the machine layer observe and extend protocol actions without
// the protocol knowing about TLBs, DLBs or processor caches.
type Hooks interface {
	// DirLookup fires on every directory operation at a home node's
	// protocol engine, at simulated time now. The returned cycles extend
	// the engine's service time — V-COMA returns its DLB miss penalty
	// here, other schemes 0. onCriticalPath is true when a requesting
	// processor is stalled on this operation (false for replacement hints
	// and injections).
	DirLookup(now uint64, home addr.Node, block uint64, onCriticalPath bool) uint64
	// BackInvalidate fires when node loses an attraction-memory block
	// (invalidation or replacement); the machine must invalidate the
	// processor caches above to maintain inclusion.
	BackInvalidate(node addr.Node, block uint64)
	// ReplacementTranslate fires at simulated time now when node must
	// translate a victim block's address to send replacement traffic
	// (L3-TLB counts these TLB accesses; other schemes return 0). Off the
	// critical path.
	ReplacementTranslate(now uint64, node addr.Node, block uint64) uint64
}

// NopHooks is a Hooks implementation that does nothing; useful in tests.
type NopHooks struct{}

// DirLookup implements Hooks.
func (NopHooks) DirLookup(uint64, addr.Node, uint64, bool) uint64 { return 0 }

// BackInvalidate implements Hooks.
func (NopHooks) BackInvalidate(addr.Node, uint64) {}

// ReplacementTranslate implements Hooks.
func (NopHooks) ReplacementTranslate(uint64, addr.Node, uint64) uint64 { return 0 }

// Stats counts protocol activity machine-wide.
type Stats struct {
	LocalReadHits  uint64 // reads satisfied by the local attraction memory
	LocalWriteHits uint64 // writes finding local Exclusive state
	RemoteReads    uint64 // read transactions through a home directory
	Upgrades       uint64 // writes that only needed ownership, no data
	WriteFetches   uint64 // writes that fetched the block from the master
	Invalidations  uint64 // copies invalidated by write transactions
	SharedDrops    uint64 // silent Shared replacements (with home hint)
	Relocations    uint64 // master evictions resolved by promoting a Shared copy
	Injections     uint64 // master evictions that moved data to another node
	InjectionHops  uint64 // forwarding hops taken by injections (0 = accepted at home)
	Swaps          uint64 // injections that fell off the chain (block left machine)
	SwapRefetches  uint64 // accesses that brought a swapped block back
	ColdCreates    uint64 // blocks created on first touch without preload
}

// Result reports one protocol access back to the machine layer.
type Result struct {
	// LocalHit is true when the access completed in the local node's
	// attraction memory.
	LocalHit bool
	// Latency is the total protocol latency in processor cycles,
	// including network, queueing at protocol engines, and any
	// critical-path translation penalty returned by hooks.
	Latency uint64
	// TransCycles is the portion of Latency contributed by hook-returned
	// translation penalties (V-COMA's DLB misses on this access's path).
	TransCycles uint64
}

// Protocol executes COMA-F transactions atomically at access time. It owns
// the per-node attraction memories, the directory and the fabric.
type Protocol struct {
	g      addr.Geometry
	timing config.Timing
	home   func(block uint64) addr.Node
	ams    []*mem.AM
	dir    *Directory
	fabric *network.Fabric
	hooks  Hooks
	rng    *prng.Source
	peBusy []uint64
	stats  Stats
	tracer *obs.Tracer
	sink   Sink

	noRelocation bool
	infinitePE   bool
	bug          TestBug
}

// DisableMasterRelocation makes every master eviction inject data instead
// of promoting an existing Shared copy (ablation).
func (p *Protocol) DisableMasterRelocation() { p.noRelocation = true }

// DisablePEQueueing removes home-engine occupancy (ablation: infinite
// protocol-engine bandwidth).
func (p *Protocol) DisablePEQueueing() { p.infinitePE = true }

// New builds a protocol instance. home maps a protocol block address to its
// home node; hooks may be nil for no-op hooks.
func New(g addr.Geometry, timing config.Timing, home func(block uint64) addr.Node, hooks Hooks, seed uint64) (*Protocol, error) {
	if g.Nodes() > 64 {
		return nil, fmt.Errorf("coherence: copyset bitmask supports at most 64 nodes, got %d", g.Nodes())
	}
	if home == nil {
		return nil, fmt.Errorf("coherence: nil home function")
	}
	if hooks == nil {
		hooks = NopHooks{}
	}
	p := &Protocol{
		g:      g,
		timing: timing,
		home:   home,
		dir:    NewDirectory(),
		fabric: network.New(g.Nodes(), timing.NetRequest, timing.NetBlock),
		hooks:  hooks,
		rng:    prng.New(seed),
		peBusy: make([]uint64, g.Nodes()),
	}
	for i := 0; i < g.Nodes(); i++ {
		p.ams = append(p.ams, mem.New(g))
	}
	return p, nil
}

// AM returns node n's attraction memory (tests and machine wiring).
func (p *Protocol) AM(n addr.Node) *mem.AM { return p.ams[n] }

// Directory returns the machine-wide directory.
func (p *Protocol) Directory() *Directory { return p.dir }

// Fabric returns the interconnect model.
func (p *Protocol) Fabric() *network.Fabric { return p.fabric }

// Stats returns the protocol counters.
func (p *Protocol) Stats() Stats { return p.stats }

// SetTracer attaches an event tracer. Coherence transactions become
// "coh"-category complete events on the requester's track and replacement
// actions become "repl" instants on the evicting node's track. A nil
// tracer (the default) keeps the protocol event-free.
func (p *Protocol) SetTracer(tr *obs.Tracer) { p.tracer = tr }

// RegisterMetrics registers machine-wide protocol counters ("coh/" series)
// with an observability registry, alongside the fabric's own series.
func (p *Protocol) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Probe("coh/localReadHits", func() float64 { return float64(p.stats.LocalReadHits) })
	r.Probe("coh/localWriteHits", func() float64 { return float64(p.stats.LocalWriteHits) })
	r.Probe("coh/remoteReads", func() float64 { return float64(p.stats.RemoteReads) })
	r.Probe("coh/upgrades", func() float64 { return float64(p.stats.Upgrades) })
	r.Probe("coh/writeFetches", func() float64 { return float64(p.stats.WriteFetches) })
	r.Probe("coh/invalidations", func() float64 { return float64(p.stats.Invalidations) })
	r.Probe("coh/sharedDrops", func() float64 { return float64(p.stats.SharedDrops) })
	r.Probe("coh/relocations", func() float64 { return float64(p.stats.Relocations) })
	r.Probe("coh/injections", func() float64 { return float64(p.stats.Injections) })
	r.Probe("coh/swaps", func() float64 { return float64(p.stats.Swaps) })
	r.Probe("coh/swapRefetches", func() float64 { return float64(p.stats.SwapRefetches) })
	p.fabric.RegisterMetrics(r)
}

// Home returns the home node of a protocol block address.
func (p *Protocol) Home(block uint64) addr.Node { return p.home(p.align(block)) }

func (p *Protocol) align(a uint64) uint64 { return a &^ (p.g.AMBlockSize() - 1) }

func (p *Protocol) bit(n addr.Node) uint64 { return 1 << uint(n) }

// Preload installs block's master copy at node at (its page's initial
// placement) with a directory entry at the home, modelling the data
// placement before the run (§5.1: data sets are preloaded, no paging
// simulated). Evictions during preload go through the normal replacement
// path, though a placement respecting global-set capacity never evicts.
func (p *Protocol) Preload(block uint64, at addr.Node) {
	b := p.align(block)
	if p.ams[at].Probe(b) != mem.Invalid {
		return
	}
	e := p.dir.Ensure(b)
	if e.Copyset != 0 {
		return // already resident somewhere
	}
	e.Master = at
	e.Copyset = p.bit(at)
	e.Swapped = false
	p.installAt(0, at, b, mem.MasterShared, SrcPreload, at)
}

// StateAt returns node n's attraction-memory state for block, without side
// effects. The machine's write fast path uses this to test for Exclusive.
func (p *Protocol) StateAt(n addr.Node, block uint64) mem.State {
	return p.ams[n].Probe(p.align(block))
}

// peService runs one directory operation at home h starting no earlier than
// t, returning (completion time, hook-extra cycles). Arriving operations
// queue behind the engine's busy time.
func (p *Protocol) peService(t uint64, h addr.Node, block uint64, critical bool) (uint64, uint64) {
	start := t
	if !p.infinitePE && p.peBusy[h] > start {
		start = p.peBusy[h]
	}
	extra := p.hooks.DirLookup(start, h, block, critical)
	done := start + p.timing.DirLookup + extra
	if !p.infinitePE {
		p.peBusy[h] = done
	}
	return done, extra
}

// Access performs a read (write=false) or write (write=true) of block by
// node n starting at time now, executing the full COMA-F transaction and
// returning its latency breakdown.
func (p *Protocol) Access(now uint64, n addr.Node, block uint64, write bool) Result {
	b := p.align(block)
	st := p.ams[n].Lookup(b)

	// Local fast paths.
	if !write && st.Readable() {
		p.stats.LocalReadHits++
		return Result{LocalHit: true, Latency: p.timing.AMHit}
	}
	if write && st == mem.Exclusive {
		p.stats.LocalWriteHits++
		return Result{LocalHit: true, Latency: p.timing.AMHit}
	}

	// Miss: the local probe costs one AM access, then the transaction.
	t := now + p.timing.AMHit
	var trans uint64

	h := p.home(b)
	t = p.fabric.Send(t, n, h, network.Request)
	var extra uint64
	t, extra = p.peService(t, h, b, true)
	trans += extra

	e := p.dir.Lookup(b)
	if e == nil || (e.Copyset == 0 && !e.Swapped) {
		// First touch without preload: create the block at the requester.
		p.stats.ColdCreates++
		e = p.dir.Ensure(b)
		return p.refetch(now, t, trans, n, e, b, write, false)
	}
	if e.Swapped {
		p.stats.SwapRefetches++
		return p.refetch(now, t, trans, n, e, b, write, true)
	}

	if !write {
		return p.remoteRead(now, t, trans, n, h, e, b, st)
	}
	return p.remoteWrite(now, t, trans, n, h, e, b, st)
}

// refetch services an access to a block with no resident copy (cold or
// swapped): the block materializes at the requester from backing store.
func (p *Protocol) refetch(now, t, trans uint64, n addr.Node, e *Entry, b uint64, write, swapped bool) Result {
	if swapped {
		t += p.timing.SwapFetch
	}
	newState := mem.MasterShared
	if write {
		newState = mem.Exclusive
	}
	e.Master = n
	e.Copyset = p.bit(n)
	e.Swapped = false
	p.installAt(t, n, b, newState, SrcBacking, n)
	if p.tracer.Enabled("coh") {
		name := "cold-fetch"
		if swapped {
			name = "swap-refetch"
		}
		p.tracer.Complete("coh", name, int(n), 0, now, t-now)
	}
	return Result{Latency: t - now, TransCycles: trans}
}

func (p *Protocol) remoteRead(now, t, trans uint64, n, h addr.Node, e *Entry, b uint64, prior mem.State) Result {
	if prior != mem.Invalid {
		panic(fmt.Sprintf("coherence: remote read of block %#x with local state %v", b, prior))
	}
	if e.Master == n {
		panic(fmt.Sprintf("coherence: node %d missed on block %#x it masters", n, b))
	}
	p.stats.RemoteReads++
	m := e.Master
	// Forward to the master, read its attraction memory, send the block
	// straight to the requester.
	t = p.fabric.Send(t, h, m, network.Request)
	t += p.timing.AMHit
	if p.ams[m].Probe(b) == mem.Exclusive {
		p.ams[m].SetState(b, mem.MasterShared)
		if p.sink != nil {
			p.sink.StateChanged(m, b, mem.MasterShared)
		}
	}
	t = p.fabric.Send(t, m, n, network.BlockTransfer)
	e.Add(n)
	p.installAt(t, n, b, mem.Shared, SrcMaster, m)
	if p.tracer.Enabled("coh") {
		p.tracer.Complete("coh", "remote-read", int(n), 0, now, t-now)
	}
	return Result{Latency: t - now, TransCycles: trans}
}

func (p *Protocol) remoteWrite(now, t, trans uint64, n, h addr.Node, e *Entry, b uint64, prior mem.State) Result {
	hasData := prior == mem.Shared || prior == mem.MasterShared
	oldMaster := e.Master

	// Data path: fetch from the master if the requester has no copy.
	tData := t
	src, from := SrcLocal, n
	if !hasData {
		p.stats.WriteFetches++
		m := oldMaster
		if m == n {
			panic(fmt.Sprintf("coherence: node %d write-misses block %#x it masters", n, b))
		}
		src, from = SrcMaster, m
		tData = p.fabric.Send(t, h, m, network.Request)
		tData += p.timing.AMHit
		tData = p.fabric.Send(tData, m, n, network.BlockTransfer)
	} else {
		p.stats.Upgrades++
	}

	// Invalidation path: all holders except the requester, in parallel;
	// each sends an acknowledgement back to the home. Iterating the set
	// bits of the copyset directly visits holders in the same ascending
	// node order as a full scan without touching the non-holders.
	tInval := t
	skippedOne := false
	for rest := e.Copyset &^ p.bit(n); rest != 0; rest &= rest - 1 {
		o := addr.Node(bits.TrailingZeros64(rest))
		if p.bug == BugSkipInvalidate && !skippedOne {
			// Injected test bug: this holder keeps a stale readable copy.
			skippedOne = true
			continue
		}
		was := p.ams[o].Invalidate(b)
		if was == mem.Invalid {
			panic(fmt.Sprintf("coherence: directory lists node %d for block %#x but AM has no copy", o, b))
		}
		p.hooks.BackInvalidate(o, b)
		if p.sink != nil {
			p.sink.CopyRemoved(o, b, RemInvalidate)
		}
		p.stats.Invalidations++
		ta := p.fabric.Send(t, h, o, network.Request)
		ta = p.fabric.Send(ta, o, h, network.Request)
		if ta > tInval {
			tInval = ta
		}
	}

	// The write completes when both data and all acks are in, plus the
	// ownership grant from home to requester.
	tDone := tData
	if tInval > tDone {
		tDone = tInval
	}
	tDone = p.fabric.Send(tDone, h, n, network.Request)

	e.Master = n
	e.Copyset = p.bit(n)
	p.installAt(tDone, n, b, mem.Exclusive, src, from)
	if p.tracer.Enabled("coh") {
		name := "upgrade"
		if !hasData {
			name = "write-fetch"
		}
		p.tracer.Complete("coh", name, int(n), 0, now, tDone-now)
	}
	return Result{Latency: tDone - now, TransCycles: trans}
}

// installAt places block b at node n with the given state and resolves any
// displaced victim: Shared victims are dropped with a replacement hint,
// master victims are relocated or injected (§4.2). Replacement traffic is
// off the requester's critical path; it only occupies the network and the
// protocol engines.
func (p *Protocol) installAt(now uint64, n addr.Node, b uint64, s mem.State, src DataSource, from addr.Node) {
	v, evicted := p.ams[n].Install(b, s)
	if p.sink != nil {
		p.sink.CopyInstalled(n, b, s, src, from)
	}
	if !evicted {
		return
	}
	p.hooks.BackInvalidate(n, v.Block)
	if v.State.IsMaster() {
		if p.sink != nil {
			p.sink.CopyRemoved(n, v.Block, RemMasterEvict)
		}
		p.replaceMaster(now, n, v)
	} else {
		if p.sink != nil {
			p.sink.CopyRemoved(n, v.Block, RemSharedDrop)
		}
		p.dropShared(now, n, v.Block)
	}
}

// dropShared handles replacement of a Shared copy: the copy vanishes and a
// hint message updates the home directory so the copyset stays exact.
func (p *Protocol) dropShared(now uint64, n addr.Node, b uint64) {
	p.stats.SharedDrops++
	e := p.dir.Lookup(b)
	if e == nil || !e.Holds(n) {
		panic(fmt.Sprintf("coherence: shared drop of block %#x not in directory for node %d", b, n))
	}
	e.Remove(n)
	h := p.home(b)
	if p.tracer.Enabled("repl") {
		p.tracer.Instant("repl", "drop-shared", int(n), 0, now)
	}
	t := now + p.hooks.ReplacementTranslate(now, n, b)
	t = p.fabric.Send(t, n, h, network.Request)
	p.peService(t, h, b, false)
}

// replaceMaster handles eviction of a MasterShared or Exclusive copy. If
// another node already holds a Shared copy, mastership relocates to it with
// a directory update; otherwise the data is injected at the home node and
// forwarded along a pseudo-random chain until some node has room (§4.2),
// falling off to backing store if no node accepts.
func (p *Protocol) replaceMaster(now uint64, n addr.Node, v mem.Victim) {
	b := v.Block
	e := p.dir.Lookup(b)
	if e == nil || e.Master != n {
		panic(fmt.Sprintf("coherence: master replacement of block %#x but directory master is not node %d", b, n))
	}
	t := now + p.hooks.ReplacementTranslate(now, n, b)
	h := p.home(b)

	if o, ok := e.AnyHolderExcept(n); ok && !p.noRelocation {
		// Promote an existing Shared copy to master: directory update only.
		p.stats.Relocations++
		if p.tracer.Enabled("repl") {
			p.tracer.Instant("repl", "relocate", int(n), 0, now)
		}
		e.Remove(n)
		e.Master = o
		t = p.fabric.Send(t, n, h, network.Request)
		t, _ = p.peService(t, h, b, false)
		// Notify the promoted node.
		p.fabric.Send(t, h, o, network.Request)
		if p.ams[o].Probe(b) != mem.Shared {
			panic(fmt.Sprintf("coherence: promoting node %d for block %#x but its state is %v", o, b, p.ams[o].Probe(b)))
		}
		p.ams[o].SetState(b, mem.MasterShared)
		if p.sink != nil {
			p.sink.StateChanged(o, b, mem.MasterShared)
		}
		return
	}

	// Sole copy: inject. The data travels to the home first.
	e.Remove(n)
	if p.bug == BugDropLastCopy {
		// Injected test bug: the machine's last copy is silently discarded —
		// no injection, no swap, the directory entry is left inconsistent.
		return
	}
	t = p.fabric.Send(t, n, h, network.BlockTransfer)
	t, _ = p.peService(t, h, b, false)

	cur := h
	hops := uint64(0)
	tries := 0
	for {
		accept := false
		if cur == h {
			// The home accepts only into a spare Invalid slot.
			accept = p.ams[cur].HasFreeWay(b)
		} else if cur != n {
			ok, _ := p.ams[cur].HasDroppableWay(b)
			accept = ok
		}
		if accept {
			p.stats.Injections++
			p.stats.InjectionHops += hops
			if p.tracer.Enabled("repl") {
				p.tracer.Instant("repl", "inject", int(n), 0, now)
			}
			e.Master = cur
			e.Add(cur)
			p.installVictimAt(t, cur, b, n)
			return
		}
		tries++
		if tries > p.g.Nodes() {
			// No slot accepted the injection. If some node still holds a
			// Shared copy (possible only under the no-relocation
			// ablation), mastership must relocate there — dropping the
			// last data is a correctness matter, not a policy one.
			if o, ok := e.AnyHolderExcept(n); ok {
				p.stats.Relocations++
				e.Master = o
				p.fabric.Send(t, p.home(b), o, network.Request)
				if p.ams[o].Probe(b) != mem.Shared {
					panic(fmt.Sprintf("coherence: forced relocation to node %d but its state is %v", o, p.ams[o].Probe(b)))
				}
				p.ams[o].SetState(b, mem.MasterShared)
				if p.sink != nil {
					p.sink.StateChanged(o, b, mem.MasterShared)
				}
				return
			}
			// The block leaves the machine (would be paged out).
			p.stats.Swaps++
			if p.tracer.Enabled("repl") {
				p.tracer.Instant("repl", "swap", int(n), 0, now)
			}
			e.Swapped = true
			if p.sink != nil {
				p.sink.BlockSwapped(b, n)
			}
			return
		}
		var next addr.Node
		if cur == h {
			next = addr.Node(p.rng.Intn(p.g.Nodes()))
		} else {
			next = addr.Node((int(cur) + 1) % p.g.Nodes())
		}
		t = p.fabric.Send(t, cur, next, network.BlockTransfer)
		t, _ = p.peService(t, p.home(b), b, false)
		cur = next
		hops++
	}
}

// installVictimAt installs an injected block at its accepting node as the
// new master; from is the evicting node whose data the injection carries.
// The node was checked to have an Invalid or Shared slot, so the displaced
// way (if any) is a Shared copy, handled as a drop.
func (p *Protocol) installVictimAt(now uint64, n addr.Node, b uint64, from addr.Node) {
	v, evicted := p.ams[n].Install(b, mem.MasterShared)
	if p.sink != nil {
		p.sink.CopyInstalled(n, b, mem.MasterShared, SrcInjection, from)
	}
	if !evicted {
		return
	}
	if v.State.IsMaster() {
		panic(fmt.Sprintf("coherence: injection at node %d displaced master block %#x", n, v.Block))
	}
	p.hooks.BackInvalidate(n, v.Block)
	if p.sink != nil {
		p.sink.CopyRemoved(n, v.Block, RemSharedDrop)
	}
	p.dropShared(now, n, v.Block)
}

// CheckInvariants verifies directory/AM agreement machine-wide.
func (p *Protocol) CheckInvariants() error {
	return p.dir.CheckInvariants(func(n addr.Node, block uint64) ProbeState {
		st := p.ams[n].Probe(block)
		return ProbeState{
			Present:   st != mem.Invalid,
			Master:    st.IsMaster(),
			Exclusive: st == mem.Exclusive,
		}
	}, p.g.Nodes())
}
