package coherence

import (
	"vcoma/internal/addr"
	"vcoma/internal/network"
)

// EvictStats summarises a block or page eviction.
type EvictStats struct {
	// CopiesDropped is the number of attraction-memory copies invalidated.
	CopiesDropped int
	// Blocks is the number of directory entries removed.
	Blocks int
	// Done is the completion time (all invalidation acks collected).
	Done uint64
}

// EvictBlock removes every copy of block from the machine and deletes its
// directory entry: the protocol half of an address-mapping change
// (§2.2.1) or a page-out. The home issues invalidations to every holder
// and collects acknowledgements; the returned time includes the fan-out.
// Evicting an unknown or swapped block is a no-op.
func (p *Protocol) EvictBlock(now uint64, block uint64) EvictStats {
	b := p.align(block)
	e := p.dir.Lookup(b)
	if e == nil {
		return EvictStats{Done: now}
	}
	h := p.home(b)
	t, _ := p.peService(now, h, b, false)
	st := EvictStats{Blocks: 1, Done: t}
	if p.sink != nil && e.Copyset != 0 {
		// The master's data is written back to backing store before the
		// copies drop.
		p.sink.BlockEvicted(b, e.Master)
	}
	for o := addr.Node(0); int(o) < p.g.Nodes(); o++ {
		if !e.Holds(o) {
			continue
		}
		was := p.ams[o].Invalidate(b)
		if was.IsMaster() {
			// The data is being discarded deliberately; no injection.
		}
		p.hooks.BackInvalidate(o, b)
		if p.sink != nil {
			p.sink.CopyRemoved(o, b, RemBlockEvict)
		}
		st.CopiesDropped++
		ta := p.fabric.Send(t, h, o, network.Request)
		ta = p.fabric.Send(ta, o, h, network.Request)
		if ta > st.Done {
			st.Done = ta
		}
	}
	p.dir.Remove(b)
	return st
}

// EvictPage evicts every block of the page containing v, returning the
// aggregate statistics. Used by demap and page-out paths.
func (p *Protocol) EvictPage(now uint64, pageBase uint64) EvictStats {
	var total EvictStats
	total.Done = now
	bs := p.g.AMBlockSize()
	base := pageBase &^ (p.g.PageSize() - 1)
	for off := uint64(0); off < p.g.PageSize(); off += bs {
		st := p.EvictBlock(now, base+off)
		total.CopiesDropped += st.CopiesDropped
		total.Blocks += st.Blocks
		if st.Done > total.Done {
			total.Done = st.Done
		}
	}
	return total
}
