package coherence

import (
	"testing"

	"vcoma/internal/addr"
	"vcoma/internal/mem"
)

// sameSetBlock returns block addresses that all map to one AM set: same
// in-page block offset (0x20) and page numbers congruent modulo the 8
// global page sets of the test geometry (pages 1, 9, 17, ...).
func sameSetBlock(i int) uint64 { return uint64(1+8*i)<<8 | 0x20 }

// TestLastCopySurvivesSoleEviction forces replacement of a set's LRU way
// while it holds the machine's only copy of a block: the replacement path
// must inject the data into another node, never destroy it (§4.2).
func TestLastCopySurvivesSoleEviction(t *testing.T) {
	p := newProtocol(t, nil)
	n := addr.Node(0)
	b1, b2, b3 := sameSetBlock(0), sameSetBlock(1), sameSetBlock(2)
	if p.g.AMSet(b1) != p.g.AMSet(b2) || p.g.AMSet(b1) != p.g.AMSet(b3) {
		t.Fatalf("test blocks do not share an AM set: %d %d %d", p.g.AMSet(b1), p.g.AMSet(b2), p.g.AMSet(b3))
	}

	// Three cold writes fill node 0's 2-way set and displace b1 — the
	// machine's sole (Exclusive) copy.
	t1 := p.Access(0, n, b1, true).Latency
	t2 := t1 + p.Access(t1, n, b2, true).Latency
	p.Access(t2, n, b3, true)

	if st := p.StateAt(n, b1); st != mem.Invalid {
		t.Fatalf("victim still resident at evicting node: %v", st)
	}
	e := p.Directory().Lookup(p.align(b1))
	if e == nil {
		t.Fatal("directory entry destroyed with the last copy")
	}
	if e.Swapped {
		t.Fatalf("sole copy swapped out although other nodes had free ways: %+v", e)
	}
	if e.Holders() != 1 || e.Master == n {
		t.Fatalf("after injection: %+v (want one holder, not node %d)", e, n)
	}
	if st := p.StateAt(e.Master, b1); !st.IsMaster() {
		t.Fatalf("injected copy at node %d is %v, not a master state", e.Master, st)
	}
	if s := p.Stats(); s.Injections != 1 || s.Swaps != 0 {
		t.Fatalf("stats %+v: want exactly one injection, no swap", s)
	}

	// The data survived: a later read finds it in the machine instead of
	// recreating it from backing store.
	cold := p.Stats().ColdCreates
	p.Access(1000000, n, b1, false)
	if p.Stats().ColdCreates != cold {
		t.Fatal("read after eviction recreated the block cold — the last copy was lost")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMasterEvictionRelocatesToSharedCopy evicts a MasterShared copy while
// another node holds the block Shared: the cheap resolution is promoting
// that copy to master (relocation), with no data transfer.
func TestMasterEvictionRelocatesToSharedCopy(t *testing.T) {
	p := newProtocol(t, nil)
	n, reader := addr.Node(0), addr.Node(2)
	b1, b2, b3 := sameSetBlock(0), sameSetBlock(1), sameSetBlock(2)

	t1 := p.Access(0, n, b1, true).Latency // Exclusive at node 0
	t2 := t1 + p.Access(t1, reader, b1, false).Latency
	// Node 0 now MasterShared, node 2 Shared. Fill node 0's set.
	t3 := t2 + p.Access(t2, n, b2, true).Latency
	p.Access(t3, n, b3, true)

	if st := p.StateAt(reader, b1); st != mem.MasterShared {
		t.Fatalf("surviving copy at node %d is %v, want MasterShared", reader, st)
	}
	e := p.Directory().Lookup(p.align(b1))
	if e == nil || e.Master != reader || e.Holders() != 1 {
		t.Fatalf("directory after relocation: %+v", e)
	}
	if s := p.Stats(); s.Relocations != 1 || s.Injections != 0 {
		t.Fatalf("stats %+v: want exactly one relocation, no injection", s)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEvictBlockRemovesAllCopies covers the deliberate-eviction path
// (address-mapping change / page-out): every copy drops, the directory
// entry goes away, and repeating the evict is a no-op.
func TestEvictBlockRemovesAllCopies(t *testing.T) {
	p := newProtocol(t, nil)
	b := blockAtHome(1, 0)
	p.Preload(b, 1)
	p.Access(0, 2, b, false) // node 1 master, node 2 shared

	st := p.EvictBlock(5, b)
	if st.CopiesDropped != 2 || st.Blocks != 1 {
		t.Fatalf("evict stats %+v: want 2 copies, 1 block", st)
	}
	if st.Done < 5 {
		t.Fatalf("completion time %d before the evict started", st.Done)
	}
	if p.StateAt(1, b) != mem.Invalid || p.StateAt(2, b) != mem.Invalid {
		t.Fatal("copies survived EvictBlock")
	}
	if p.Directory().Lookup(p.align(b)) != nil {
		t.Fatal("directory entry survived EvictBlock")
	}

	again := p.EvictBlock(7, b)
	if again.Blocks != 0 || again.CopiesDropped != 0 || again.Done != 7 {
		t.Fatalf("evicting an unknown block is not a no-op: %+v", again)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
