package mem

import (
	"testing"
	"testing/quick"

	"vcoma/internal/addr"
)

func g() addr.Geometry {
	return addr.Geometry{NodeBits: 2, PageBits: 8, AMBlockBits: 5, AMSetBits: 6, AMAssocBits: 1}
}

func TestStates(t *testing.T) {
	if Invalid.Readable() || !Shared.Readable() || !MasterShared.Readable() || !Exclusive.Readable() {
		t.Fatal("Readable wrong")
	}
	if Shared.IsMaster() || Invalid.IsMaster() || !MasterShared.IsMaster() || !Exclusive.IsMaster() {
		t.Fatal("IsMaster wrong")
	}
	for s, w := range map[State]string{Invalid: "I", Shared: "S", MasterShared: "MS", Exclusive: "E"} {
		if s.String() != w {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestLookupInstallInvalidate(t *testing.T) {
	m := New(g())
	if m.Lookup(0x100) != Invalid {
		t.Fatal("cold lookup not Invalid")
	}
	m.Install(0x100, Shared)
	if m.Lookup(0x100) != Shared {
		t.Fatal("installed block not found")
	}
	if m.Probe(0x11F) != Shared { // same 32 B block
		t.Fatal("unaligned probe failed")
	}
	m.SetState(0x100, Exclusive)
	if m.Probe(0x100) != Exclusive {
		t.Fatal("SetState did not apply")
	}
	if m.Invalidate(0x100) != Exclusive {
		t.Fatal("Invalidate returned wrong prior state")
	}
	if m.Invalidate(0x100) != Invalid {
		t.Fatal("double invalidate found state")
	}
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Installs != 1 || st.Invalidates != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSetStatePanics(t *testing.T) {
	m := New(g())
	defer func() {
		if recover() == nil {
			t.Fatal("SetState on absent block did not panic")
		}
	}()
	m.SetState(0x100, Shared)
}

func TestVictimPreference(t *testing.T) {
	m := New(g()) // 2-way, 64 sets, 32 B blocks: set stride 2 KB

	// Fill set 0 with a Shared and a MasterShared block.
	m.Install(0x0000, Shared)
	m.Install(0x0800, MasterShared)
	// Install into the full set: the Shared block must be the victim even
	// though the master is older in LRU terms.
	m.Lookup(0x0800) // make the master MRU... then touch shared
	m.Lookup(0x0000) // shared is MRU now; master is LRU
	v, evicted := m.Install(0x1000, Exclusive)
	if !evicted || v.State != Shared || v.Block != 0x0000 {
		t.Fatalf("victim %+v, want the Shared block", v)
	}

	// Now the set holds two masters: LRU master is evicted.
	v, evicted = m.Install(0x1800, Exclusive)
	if !evicted || !v.State.IsMaster() {
		t.Fatalf("victim %+v, want a master", v)
	}
	if m.Stats().MasterEvict != 1 {
		t.Fatalf("master evictions = %d", m.Stats().MasterEvict)
	}
}

func TestInstallExistingUpdatesState(t *testing.T) {
	m := New(g())
	m.Install(0x100, Shared)
	v, evicted := m.Install(0x100, Exclusive)
	if evicted || v != (Victim{}) {
		t.Fatalf("reinstall evicted %+v", v)
	}
	if m.Probe(0x100) != Exclusive {
		t.Fatal("reinstall did not update state")
	}
	if m.Stats().Installs != 1 {
		t.Fatal("reinstall counted as install")
	}
}

func TestAcceptanceChecks(t *testing.T) {
	m := New(g())
	if !m.HasFreeWay(0x0) {
		t.Fatal("empty set has no free way")
	}
	m.Install(0x0000, MasterShared)
	m.Install(0x0800, Shared)
	if m.HasFreeWay(0x0) {
		t.Fatal("full set reports a free way")
	}
	ok, kind := m.HasDroppableWay(0x0)
	if !ok || kind != Shared {
		t.Fatalf("droppable: %v %v", ok, kind)
	}
	m.Invalidate(0x0800)
	ok, kind = m.HasDroppableWay(0x0)
	if !ok || kind != Invalid {
		t.Fatalf("droppable after invalidate: %v %v", ok, kind)
	}
	m.Install(0x0800, Exclusive)
	m.SetState(0x0000, Exclusive)
	if ok, _ := m.HasDroppableWay(0x0); ok {
		t.Fatal("set full of masters reports droppable")
	}
}

func TestOccupancyAndCounts(t *testing.T) {
	m := New(g())
	m.Install(0x0, Shared)
	m.Install(0x20, MasterShared)
	m.Install(0x40, Exclusive)
	if m.CountState(Shared) != 1 || m.CountState(MasterShared) != 1 || m.CountState(Exclusive) != 1 {
		t.Fatal("state counts wrong")
	}
	want := 3.0 / float64(g().AMBlocksPerNode())
	if m.Occupancy() != want {
		t.Fatalf("occupancy %v, want %v", m.Occupancy(), want)
	}
	if m.OccupiedWays(0x0) != 1 {
		t.Fatalf("occupied ways %d", m.OccupiedWays(0x0))
	}
}

func TestSetBounded(t *testing.T) {
	// Property: a set never holds more than K blocks, and an installed
	// block is always immediately present.
	err := quick.Check(func(raw []uint16, states []uint8) bool {
		m := New(g())
		for i, r := range raw {
			s := State(1 + uint8(i)%3)
			if i < len(states) {
				s = State(1 + states[i]%3)
			}
			b := uint64(r)
			m.Install(b, s)
			if !m.Probe(b).Readable() {
				return false
			}
			if m.OccupiedWays(b) > g().AMAssoc() {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
