// Package mem implements the attraction memory (AM) of a COMA node: a large
// set-associative cache of memory blocks with the four stable states of the
// COMA-F protocol. The AM holds no data payloads — only tags and states —
// because the simulator tracks placement and coherence, not values.
//
// The AM is indexed by whatever block address the translation scheme uses
// (physical for L0/L1/L2-TLB, virtual for L3-TLB and V-COMA); with page
// colouring both index identically (paper Figure 4), so the model takes
// plain uint64 block addresses.
package mem

import (
	"fmt"

	"vcoma/internal/addr"
)

// State is the COMA-F stable state of an attraction-memory block (§4.2).
type State uint8

const (
	// Invalid: the slot holds no valid block.
	Invalid State = iota
	// Shared: a read-only copy; at least one other node holds the block
	// and one of them is the master.
	Shared
	// MasterShared: the distinguished copy responsible for the data's
	// survival; other Shared copies may exist.
	MasterShared
	// Exclusive: the only copy, writable.
	Exclusive
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case MasterShared:
		return "MS"
	case Exclusive:
		return "E"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// IsMaster reports whether the state carries data-survival responsibility:
// evicting such a block requires injection, not a silent drop.
func (s State) IsMaster() bool { return s == MasterShared || s == Exclusive }

// Readable reports whether a local access can read the block.
func (s State) Readable() bool { return s != Invalid }

// Stats counts attraction-memory activity.
type Stats struct {
	Hits        uint64 // lookups that found the block in a readable state
	Misses      uint64 // lookups that did not
	Installs    uint64
	Evictions   uint64 // valid blocks displaced by installs
	MasterEvict uint64 // displaced blocks that required injection
	Invalidates uint64 // external invalidations that found the block
}

// Victim describes a block displaced by an install.
type Victim struct {
	Block uint64
	State State
}

// AM is one node's attraction memory.
type AM struct {
	g    addr.Geometry
	ways int

	tags  []uint64
	state []State
	age   []uint32

	stats Stats
}

// New returns an empty attraction memory for geometry g.
func New(g addr.Geometry) *AM {
	n := g.AMBlocksPerNode()
	return &AM{
		g:     g,
		ways:  g.AMAssoc(),
		tags:  make([]uint64, n),
		state: make([]State, n),
		age:   make([]uint32, n),
	}
}

// Stats returns the activity counters.
func (m *AM) Stats() Stats { return m.stats }

// BlockAddr aligns a to an AM block boundary.
func (m *AM) BlockAddr(a uint64) uint64 { return a &^ (m.g.AMBlockSize() - 1) }

func (m *AM) setBase(block uint64) int { return m.g.AMSet(block) * m.ways }

func (m *AM) find(block uint64) int {
	b := m.BlockAddr(block)
	base := m.setBase(b)
	for i := base; i < base+m.ways; i++ {
		if m.state[i] != Invalid && m.tags[i] == b {
			return i
		}
	}
	return -1
}

func (m *AM) touch(i int) {
	old := m.age[i]
	if old == 0 {
		// Already most recent — repeated hits to the same block skip the
		// aging loop (the dominant pattern on bursty reference streams).
		return
	}
	base := (i / m.ways) * m.ways
	for j := base; j < base+m.ways; j++ {
		if m.age[j] < old {
			m.age[j]++
		}
	}
	m.age[i] = 0
}

// Lookup returns the state of the block, or Invalid if absent, counting a
// hit or miss and updating recency on hits.
func (m *AM) Lookup(block uint64) State {
	if i := m.find(block); i >= 0 {
		m.stats.Hits++
		m.touch(i)
		return m.state[i]
	}
	m.stats.Misses++
	return Invalid
}

// Probe returns the state of the block without statistics or recency
// side effects.
func (m *AM) Probe(block uint64) State {
	if i := m.find(block); i >= 0 {
		return m.state[i]
	}
	return Invalid
}

// SetState changes the state of a resident block; it panics if the block is
// absent (protocol bookkeeping bug).
func (m *AM) SetState(block uint64, s State) {
	i := m.find(block)
	if i < 0 {
		panic(fmt.Sprintf("mem: SetState(%#x, %v) on absent block", block, s))
	}
	if s == Invalid {
		panic("mem: use Invalidate to remove a block")
	}
	m.state[i] = s
}

// Invalidate removes the block if present, returning its prior state
// (Invalid if absent).
func (m *AM) Invalidate(block uint64) State {
	i := m.find(block)
	if i < 0 {
		return Invalid
	}
	m.stats.Invalidates++
	s := m.state[i]
	m.state[i] = Invalid
	return s
}

// HasFreeWay reports whether block's set has an Invalid slot — the home
// node's injection-acceptance condition (§4.2).
func (m *AM) HasFreeWay(block uint64) bool {
	base := m.setBase(m.BlockAddr(block))
	for i := base; i < base+m.ways; i++ {
		if m.state[i] == Invalid {
			return true
		}
	}
	return false
}

// HasDroppableWay reports whether block's set has an Invalid or Shared slot
// — the forwarded-injection acceptance condition (§4.2). The returned state
// tells which kind was found (Invalid preferred).
func (m *AM) HasDroppableWay(block uint64) (ok bool, kind State) {
	base := m.setBase(m.BlockAddr(block))
	kind = Invalid
	found := false
	for i := base; i < base+m.ways; i++ {
		switch m.state[i] {
		case Invalid:
			return true, Invalid
		case Shared:
			found, kind = true, Shared
		}
	}
	return found, kind
}

// Install places block with the given state, choosing a victim way:
// an Invalid way if available, else the least-recently-used Shared way,
// else the least-recently-used way overall. The displaced block, if any, is
// returned for the protocol layer to drop or inject. Installing a block
// already present just updates its state.
func (m *AM) Install(block uint64, s State) (Victim, bool) {
	b := m.BlockAddr(block)
	if i := m.find(b); i >= 0 {
		m.state[i] = s
		m.touch(i)
		return Victim{}, false
	}
	m.stats.Installs++
	base := m.setBase(b)
	way := -1
	// Pass 1: an Invalid slot.
	for i := base; i < base+m.ways; i++ {
		if m.state[i] == Invalid {
			way = i
			break
		}
	}
	// Pass 2: the LRU Shared slot (cheap to drop).
	if way < 0 {
		var bestAge uint32
		for i := base; i < base+m.ways; i++ {
			if m.state[i] == Shared && (way < 0 || m.age[i] >= bestAge) {
				way, bestAge = i, m.age[i]
			}
		}
	}
	// Pass 3: the LRU slot overall (master eviction -> injection).
	if way < 0 {
		var bestAge uint32
		for i := base; i < base+m.ways; i++ {
			if way < 0 || m.age[i] >= bestAge {
				way, bestAge = i, m.age[i]
			}
		}
	}
	var v Victim
	evicted := false
	if m.state[way] != Invalid {
		v = Victim{Block: m.tags[way], State: m.state[way]}
		evicted = true
		m.stats.Evictions++
		if v.State.IsMaster() {
			m.stats.MasterEvict++
		}
	}
	m.tags[way] = b
	m.state[way] = s
	// Enter as the oldest so touch ages the whole set (see the same
	// pattern in package cache): without this, installs into Invalid ways
	// would not advance their set-mates' ages.
	m.age[way] = uint32(m.ways)
	m.touch(way)
	return v, evicted
}

// ForEachValid calls f for every valid block with its state, in storage
// order. f must not mutate the AM. Used by machine-wide invariant scans.
func (m *AM) ForEachValid(f func(block uint64, s State)) {
	for i, st := range m.state {
		if st != Invalid {
			f(m.tags[i], st)
		}
	}
}

// OccupiedWays returns how many slots of block's set are valid.
func (m *AM) OccupiedWays(block uint64) int {
	base := m.setBase(m.BlockAddr(block))
	n := 0
	for i := base; i < base+m.ways; i++ {
		if m.state[i] != Invalid {
			n++
		}
	}
	return n
}

// Occupancy returns the fraction of all slots holding valid blocks.
func (m *AM) Occupancy() float64 {
	n := 0
	for _, s := range m.state {
		if s != Invalid {
			n++
		}
	}
	return float64(n) / float64(len(m.state))
}

// CountState returns how many blocks are in state s.
func (m *AM) CountState(s State) int {
	n := 0
	for _, st := range m.state {
		if st == s {
			n++
		}
	}
	return n
}
