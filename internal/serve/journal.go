package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"vcoma/internal/fsio"
	"vcoma/internal/runner"
)

// journalSchema versions the accept-log format.
const journalSchema = "vcoma-serve-journal-v1"

// journalName is the accept log's file name inside the state directory.
const journalName = "serve-journal.json"

// journalRecord is one line of the accept log. The first line is a header
// carrying only Schema; every other line is an operation on one job key.
type journalRecord struct {
	Schema string `json:"schema,omitempty"`
	// Op is accept, done, fail or cancel.
	Op  string     `json:"op,omitempty"`
	Key runner.Key `json:"key,omitempty"`
	// Req is the original wire request, kept on accept records so a
	// restarted server can re-resolve and re-enqueue the job.
	Req *Request `json:"req,omitempty"`
}

// Journal is the server's crash-safe accept log: every admitted job is
// recorded (fsync'd) before the client hears 202, and retired when it
// reaches a terminal state. On restart the pending set — accepted but not
// retired — is re-enqueued, so a SIGTERM'd server picks its backlog back up
// and, because results are content-addressed, serves byte-identical
// artifacts for them. A torn final line (crash mid-write) is tolerated and
// dropped, like the runner journal.
type Journal struct {
	path string
	fs   *fsio.FS
	f    *fsio.AppendFile
	// tainted records that the previous append may have left partial bytes
	// at the tail; the next append starts a fresh line so a good record
	// never glues onto a torn one.
	tainted bool
}

// OpenJournal opens (creating if needed) the accept log in stateDir,
// returning the journal and the pending requests replayed from any previous
// incarnation. The log is compacted on open: retired records are dropped
// and only the pending accepts are rewritten.
func OpenJournal(stateDir string) (*Journal, []Request, error) {
	return OpenJournalFS(stateDir, nil)
}

// OpenJournalFS is OpenJournal through an explicit filesystem seam (nil =
// plain durable I/O), so accept-log appends, fsyncs and the compaction
// rename are fault-injectable and op-traced.
func OpenJournalFS(stateDir string, fs *fsio.FS) (*Journal, []Request, error) {
	if err := fs.MkdirAll("journal", stateDir); err != nil {
		return nil, nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	path := filepath.Join(stateDir, journalName)
	pending, err := replay(path)
	if err != nil {
		return nil, nil, err
	}

	// Compact: rewrite header + pending accepts as one atomic, durable
	// replacement (fsio fsyncs the temp before the rename and the state dir
	// after it — the dir sync the old hand-rolled compaction was missing),
	// then reopen for appending.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(journalRecord{Schema: journalSchema}); err != nil {
		return nil, nil, err
	}
	for i := range pending {
		req := pending[i]
		key, ok := keyOf(req)
		if !ok {
			continue
		}
		if err := enc.Encode(journalRecord{Op: "accept", Key: key, Req: &req}); err != nil {
			return nil, nil, err
		}
	}
	if err := fs.WriteFileAtomic("journal", path, buf.Bytes()); err != nil {
		return nil, nil, err
	}

	f, err := fs.OpenAppend("journal", path)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{path: path, fs: fs, f: f}, pending, nil
}

// keyOf resolves a journaled request to its job key; requests that no
// longer resolve (schema drift) are dropped from the pending set.
func keyOf(r Request) (runner.Key, bool) {
	spec, err := r.Resolve()
	if err != nil {
		return "", false
	}
	return spec.Key(), true
}

// replay reads the log and returns the pending (accepted, not retired)
// requests in accept order. One request per key — coalesced waiters are
// HTTP connections, which do not survive a restart.
func replay(path string) ([]Request, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	type slot struct {
		req   Request
		alive bool
	}
	byKey := map[runner.Key]*slot{}
	var order []runner.Key
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn final line is expected after a crash; drop it. A torn
			// line anywhere else means everything after it is suspect, so
			// stop replaying there too.
			break
		}
		if first {
			first = false
			if rec.Schema != "" {
				if rec.Schema != journalSchema {
					// Foreign schema: start fresh rather than misread it.
					return nil, nil
				}
				continue
			}
		}
		switch rec.Op {
		case "accept":
			if rec.Req == nil || rec.Key == "" {
				continue
			}
			if s, ok := byKey[rec.Key]; ok {
				s.alive = true
				continue
			}
			byKey[rec.Key] = &slot{req: *rec.Req, alive: true}
			order = append(order, rec.Key)
		case "done", "fail", "cancel":
			if s, ok := byKey[rec.Key]; ok {
				s.alive = false
			}
		}
	}
	var pending []Request
	for _, k := range order {
		if s := byKey[k]; s.alive {
			pending = append(pending, s.req)
		}
	}
	return pending, nil
}

// record appends one line and fsyncs it — the durability point.
func (j *Journal) record(rec journalRecord) error {
	if j == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line := append(data, '\n')
	if j.tainted {
		line = append([]byte{'\n'}, line...)
	}
	if err := j.f.Append(line); err != nil {
		j.tainted = true
		return err
	}
	j.tainted = false
	return j.f.Sync()
}

// Accept records an admitted job before its 202 is sent.
func (j *Journal) Accept(key runner.Key, req Request) error {
	return j.record(journalRecord{Op: "accept", Key: key, Req: &req})
}

// Done retires a job that finished with its artifact stored.
func (j *Journal) Done(key runner.Key) error {
	return j.record(journalRecord{Op: "done", Key: key})
}

// Fail retires a job that errored (it is not re-run on restart; the client
// saw the failure).
func (j *Journal) Fail(key runner.Key) error {
	return j.record(journalRecord{Op: "fail", Key: key})
}

// Cancel retires a job every waiter abandoned.
func (j *Journal) Cancel(key runner.Key) error {
	return j.record(journalRecord{Op: "cancel", Key: key})
}

// Close closes the log file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}
