package serve

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
)

// TestServiceEventsSlowConsumer pins the SSE isolation contract: a consumer
// that connects and then never reads must not block the worker (the worker
// appends to the Job and signals; only the per-connection handler goroutine
// writes to the socket), and once the consumers disconnect every handler
// goroutine exits. Run under -race in CI.
func TestServiceEventsSlowConsumer(t *testing.T) {
	_, ts, _ := testServer(t, t.TempDir(), func(o *Options) { o.Chaos = gateChaos(t) })

	before := runtime.NumGoroutine()

	// Park the single worker on the gate job so consumers attach to a
	// genuinely running job.
	gate := submitJob(t, ts.URL, gateReq, http.StatusAccepted)
	waitFor(t, "gate running", func() bool { return jobState(t, ts.URL, gate.Key) == "running" })

	// Stalled consumers: speak just enough HTTP to get the stream started,
	// confirm the 200, then never read another byte.
	const consumers = 4
	conns := make([]net.Conn, consumers)
	for i := range conns {
		c, err := net.Dial("tcp", ts.Listener.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		fmt.Fprintf(c, "GET /v1/jobs/%s/events HTTP/1.1\r\nHost: test\r\nAccept: text/event-stream\r\n\r\n", gate.Key)
		status, err := bufio.NewReader(c).ReadString('\n')
		if err != nil {
			t.Fatalf("consumer %d: reading status line: %v", i, err)
		}
		if !strings.Contains(status, " 200 ") {
			t.Fatalf("consumer %d: events stream answered %q", i, status)
		}
		conns[i] = c
	}

	// With every consumer stalled, the worker must still retire the gate job
	// (cancel is the only way to end a hung chaos job)...
	if code, body := del(t, cancelURL(ts.URL, gate)); code != http.StatusOK {
		t.Fatalf("cancel gate: %d: %s", code, body)
	}
	waitFor(t, "gate canceled", func() bool { return jobState(t, ts.URL, gate.Key) == "canceled" })

	// ...and the freed worker must run fresh work to completion while the
	// dead-weight connections are still attached.
	key := submitKey(t, ts.URL, Request{Bench: "RADIX", Scheme: "l0", Scale: "test"}, http.StatusAccepted)
	waitFor(t, "follow-up job done", func() bool { return jobState(t, ts.URL, key) == "done" })

	// Disconnect. Every events-handler goroutine (and the server-side conn
	// goroutines) must drain back to the pre-test baseline.
	for _, c := range conns {
		c.Close()
	}
	waitFor(t, "goroutines to drain", func() bool {
		http.DefaultClient.CloseIdleConnections()
		return runtime.NumGoroutine() <= before+2
	})
}
