// Package serve turns the vcoma harness into a long-running simulation
// service: an HTTP/JSON front end over a multi-tenant job queue layered on
// internal/runner, with the content-addressed result cache promoted to a
// shared artifact store. Requests are keyed exactly like runner cache
// entries, so two tenants asking for the same cell share one simulation and
// one stored artifact, and a server restart re-serves previous results
// byte-identically.
package serve

import (
	"fmt"
	"strings"

	"vcoma/internal/config"
	"vcoma/internal/experiments"
	"vcoma/internal/obs"
	"vcoma/internal/runner"
	"vcoma/internal/workload"
)

// requestVersion salts every job key. Bumping it orphans served results the
// same way bumping the runner cache schema orphans cache entries — the
// invalidation path for request-semantics changes.
const requestVersion = "vcoma-serve-v1"

// Priority orders jobs in the queue and picks load-shedding victims.
// Smaller is more urgent.
type Priority int

const (
	PriorityHigh Priority = iota
	PriorityNormal
	PriorityLow
	numPriorities
)

func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityNormal:
		return "normal"
	case PriorityLow:
		return "low"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// ParsePriority maps the wire spelling to a Priority; empty means normal.
func ParsePriority(s string) (Priority, error) {
	switch strings.ToLower(s) {
	case "", "normal":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	case "low":
		return PriorityLow, nil
	default:
		return 0, fmt.Errorf("serve: unknown priority %q (want high, normal or low)", s)
	}
}

// Request is the submit-body schema: one simulation cell named the same way
// the suite and the cache name them. Tenant and Priority route the job
// through the queue but are deliberately excluded from the job key, so
// key-equal requests from different tenants coalesce onto one simulation
// and one shared artifact.
type Request struct {
	// Bench is a paper benchmark name (RADIX, FFT, FMM, OCEAN, RAYTRACE,
	// BARNES; case-insensitive).
	Bench string `json:"bench"`
	// Scheme is one of l0, l1, l2, l3, vcoma.
	Scheme string `json:"scheme"`
	// Scale is test, small or paper.
	Scale string `json:"scale"`
	// TLB overrides the TLB/DLB entry count (default: baseline's 8).
	TLB int `json:"tlb,omitempty"`
	// Org is the TLB organization: fa (default) or dm.
	Org string `json:"org,omitempty"`
	// Seed overrides the baseline seed when nonzero.
	Seed uint64 `json:"seed,omitempty"`
	// Priority is high, normal (default) or low.
	Priority string `json:"priority,omitempty"`
	// Tenant names the submitting client for fairness accounting; empty
	// clients share the "anon" tenant.
	Tenant string `json:"tenant,omitempty"`
}

// Spec is a validated, normalized request: the exact simulation inputs plus
// the queueing attributes, ready to run.
//
// Trace, Root and Profile are per-submit observability state: like Tenant
// and Priority they ride the queue but are deliberately excluded from Key,
// so a traced and an untraced request for the same cell still coalesce onto
// one simulation and one artifact.
type Spec struct {
	Config   config.Config
	Bench    workload.Benchmark
	Scale    workload.Scale
	Priority Priority
	Tenant   string

	// Trace is the submit's request trace (nil = untraced).
	Trace *obs.Trace
	// Root is the open request-root span, ended when the job retires.
	Root *obs.Span
	// Profile asks for a CPU-profile artifact next to the result.
	Profile bool
}

// Key returns the job's content address: a hash of everything that can
// change the result and nothing that can't. It doubles as the job ID in the
// HTTP API and as the artifact store key.
func (s Spec) Key() runner.Key {
	return runner.KeyOf(requestVersion, "sim", s.Config, s.Bench.Name(), s.Scale.String())
}

// Resolve validates a wire request and assembles the simulation spec. The
// configuration goes through config.Validate, so a malformed request is
// rejected at the API boundary with the same diagnostics the CLIs print.
func (r Request) Resolve() (Spec, error) {
	scale, err := parseScale(r.Scale)
	if err != nil {
		return Spec{}, err
	}
	scheme, err := parseScheme(r.Scheme)
	if err != nil {
		return Spec{}, err
	}
	org, err := parseOrg(r.Org)
	if err != nil {
		return Spec{}, err
	}
	prio, err := ParsePriority(r.Priority)
	if err != nil {
		return Spec{}, err
	}
	bench, err := workload.ByName(strings.ToUpper(strings.TrimSpace(r.Bench)), scale)
	if err != nil {
		return Spec{}, err
	}

	cfg := experiments.ConfigForScale(config.Baseline(), scale).WithScheme(scheme)
	entries := cfg.TLBEntries
	if r.TLB != 0 {
		entries = r.TLB
	}
	cfg = cfg.WithTLB(entries, org)
	if r.Seed != 0 {
		cfg.Seed = r.Seed
	}
	if err := cfg.Validate(); err != nil {
		return Spec{}, err
	}

	tenant := strings.TrimSpace(r.Tenant)
	if tenant == "" {
		tenant = "anon"
	}
	return Spec{Config: cfg, Bench: bench, Scale: scale, Priority: prio, Tenant: tenant}, nil
}

// Name renders the spec the way runner jobs are named, so progress lines,
// journal records and chaos matchers all see the same identity.
func (s Spec) Name() string {
	return fmt.Sprintf("serve/%s/%s/%s/%d%s", s.Bench.Name(), s.Config.Scheme, s.Scale, s.Config.TLBEntries, s.Config.TLBOrg)
}

func parseScheme(s string) (config.Scheme, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "l0", "l0-tlb":
		return config.L0TLB, nil
	case "l1", "l1-tlb":
		return config.L1TLB, nil
	case "l2", "l2-tlb":
		return config.L2TLB, nil
	case "l3", "l3-tlb":
		return config.L3TLB, nil
	case "v", "vcoma", "v-coma":
		return config.VCOMA, nil
	default:
		return 0, fmt.Errorf("serve: unknown scheme %q (want l0, l1, l2, l3 or vcoma)", s)
	}
}

func parseScale(s string) (workload.Scale, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "test":
		return workload.ScaleTest, nil
	case "small":
		return workload.ScaleSmall, nil
	case "paper":
		return workload.ScalePaper, nil
	default:
		return 0, fmt.Errorf("serve: unknown scale %q (want test, small or paper)", s)
	}
}

func parseOrg(s string) (config.TLBOrg, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "fa":
		return config.FullyAssoc, nil
	case "dm":
		return config.DirectMapped, nil
	default:
		return 0, fmt.Errorf("serve: unknown TLB organization %q (want fa or dm)", s)
	}
}
