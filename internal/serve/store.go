package serve

import (
	"container/list"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"vcoma/internal/fsio"
	"vcoma/internal/runner"
)

// Store promotes the runner's content-addressed cache to the service's
// shared artifact store: every finished simulation is one checksummed,
// quarantine-guarded cache entry, deduplicated across tenants by
// construction (the key hashes the inputs, not the requester), with a
// size-bounded LRU layered on top so a long-lived server doesn't grow its
// disk footprint without bound.
//
// The LRU index is advisory, not authoritative: entries live on disk in the
// cache's own layout, and a rebooted server reseeds recency from file
// mtimes. Evicting an entry that a concurrent reader is fetching is safe —
// cache entries are only ever atomically replaced or unlinked, so the
// reader sees either the old valid bytes or a plain miss (and a miss just
// means the cell is recomputed on next request).
type Store struct {
	cache *runner.Cache
	fs    *fsio.FS

	mu       sync.Mutex
	maxBytes int64
	total    int64
	lru      *list.List                   // front = most recent
	index    map[runner.Key]*list.Element // value: *entry
	evicted  uint64
}

type entry struct {
	key  runner.Key
	size int64
}

// OpenStore opens (creating if needed) an artifact store rooted at dir,
// bounded to maxBytes of entry payload (0 = unbounded). Existing entries
// are indexed by modification time so recency survives restarts.
func OpenStore(dir string, maxBytes int64) (*Store, error) {
	return OpenStoreFS(dir, maxBytes, nil)
}

// OpenStoreFS is OpenStore through an explicit filesystem seam (nil = plain
// durable I/O): artifact puts, evictions and quarantines become
// fault-injectable and op-traced.
func OpenStoreFS(dir string, maxBytes int64, fs *fsio.FS) (*Store, error) {
	c, err := runner.OpenCacheFS(dir, fs)
	if err != nil {
		return nil, err
	}
	s := &Store{
		cache:    c,
		fs:       fs,
		maxBytes: maxBytes,
		lru:      list.New(),
		index:    map[runner.Key]*list.Element{},
	}
	if err := s.reindex(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.evictLocked(runner.Key(""))
	s.mu.Unlock()
	return s, nil
}

// Cache exposes the underlying runner cache so the worker's runner.Run can
// write results straight into the store.
func (s *Store) Cache() *runner.Cache { return s.cache }

// ProfilePath returns where key's optional CPU-profile sidecar lives: next
// to the artifact, with the .json suffix swapped for .cpuprofile (so reindex
// and the LRU never mistake it for an artifact).
func (s *Store) ProfilePath(key runner.Key) string {
	return strings.TrimSuffix(s.cache.EntryPath(key), ".json") + ".cpuprofile"
}

// Contains reports whether key's artifact file exists on disk right now.
// The worker uses it to detect a swallowed store write (runner.Run treats a
// failed Put as non-fatal) so degraded-mode serving can take over.
func (s *Store) Contains(key runner.Key) bool {
	_, err := os.Stat(s.cache.EntryPath(key))
	return err == nil
}

// reindex scans the cache directory and seeds the LRU from file mtimes
// (oldest = least recent). Only the cache's own two-hex-digit shard layout
// is consulted; quarantine and metrics sidecars are skipped.
func (s *Store) reindex() error {
	type onDisk struct {
		key   runner.Key
		size  int64
		mtime int64
	}
	var found []onDisk
	shards, err := os.ReadDir(s.cache.Dir())
	if err != nil {
		return err
	}
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.cache.Dir(), sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if f.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".metrics.json") {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			key := runner.Key(strings.TrimSuffix(name, ".json"))
			found = append(found, onDisk{key: key, size: info.Size(), mtime: info.ModTime().UnixNano()})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range found {
		el := s.lru.PushFront(&entry{key: e.key, size: e.size})
		s.index[e.key] = el
		s.total += e.size
	}
	return nil
}

// GetRaw fetches the stored artifact bytes for key exactly as written —
// the byte-identity guarantee the API's result endpoint serves — and marks
// the entry most recently used. Corrupt entries are quarantined by the
// underlying cache and surface as plain misses.
func (s *Store) GetRaw(key runner.Key) (json.RawMessage, bool) {
	raw, ok := s.cache.GetRaw(key)
	s.mu.Lock()
	if el, seen := s.index[key]; seen {
		if ok {
			s.lru.MoveToFront(el)
		} else {
			// The file vanished or was quarantined underneath us: drop it
			// from the accounting.
			s.removeLocked(el)
		}
	}
	s.mu.Unlock()
	return raw, ok
}

// Note records that key was just written to the underlying cache (by the
// worker's runner.Run), accounts its size, and evicts least-recently-used
// entries until the store fits its budget. The entry just noted is never
// its own eviction victim.
func (s *Store) Note(key runner.Key) {
	info, err := os.Stat(s.cache.EntryPath(key))
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[key]; ok {
		// Overwrite: adjust the accounted size.
		e := el.Value.(*entry)
		s.total += info.Size() - e.size
		e.size = info.Size()
		s.lru.MoveToFront(el)
	} else {
		el := s.lru.PushFront(&entry{key: key, size: info.Size()})
		s.index[key] = el
		s.total += info.Size()
	}
	s.evictLocked(key)
}

// evictLocked drops LRU entries until total <= maxBytes, sparing keep.
func (s *Store) evictLocked(keep runner.Key) {
	if s.maxBytes <= 0 {
		return
	}
	for s.total > s.maxBytes && s.lru.Len() > 0 {
		el := s.lru.Back()
		e := el.Value.(*entry)
		if e.key == keep {
			if s.lru.Len() == 1 {
				return // a single oversized entry is kept: it is the working set
			}
			el = el.Prev()
			e = el.Value.(*entry)
		}
		if err := s.cache.Remove(e.key); err != nil {
			// The unlink failed and the bytes are still on disk: keep the
			// entry accounted (accounting must track reality, not intent) and
			// stop evicting — a dying disk does not get better inside this
			// loop, and the next Note retries.
			return
		}
		s.removeLocked(el)
		s.evicted++
		// The profile sidecar rides its artifact: best-effort removal so
		// eviction never strands an orphaned .cpuprofile on disk.
		s.fs.Remove("evict", s.ProfilePath(e.key))
	}
}

func (s *Store) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.lru.Remove(el)
	delete(s.index, e.key)
	s.total -= e.size
}

// StoreStats is the store's introspection snapshot.
type StoreStats struct {
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	MaxBytes    int64  `json:"max_bytes"`
	Evicted     uint64 `json:"evicted"`
	Quarantined int    `json:"quarantined"`
}

// Snapshot reports size, occupancy and eviction tallies.
func (s *Store) Snapshot() StoreStats {
	s.mu.Lock()
	st := StoreStats{
		Entries:  s.lru.Len(),
		Bytes:    s.total,
		MaxBytes: s.maxBytes,
		Evicted:  s.evicted,
	}
	s.mu.Unlock()
	st.Quarantined = s.cache.Quarantined()
	return st
}
