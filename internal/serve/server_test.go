package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vcoma/internal/runner"
)

// testServer boots a Server on its own state dir plus an httptest front end.
// The returned stop func drains it (cancel + Shutdown + close listener).
func testServer(t *testing.T, stateDir string, mutate func(*Options)) (*Server, *httptest.Server, func()) {
	t.Helper()
	opts := Options{
		StateDir: stateDir,
		Workers:  1,
		MaxQueue: 16,
	}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	var stopped bool
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ts.Close()
		cancel()
		s.Shutdown()
	}
	t.Cleanup(stop)
	return s, ts, stop
}

func post(t *testing.T, url string, body any) (int, []byte, http.Header) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out, resp.Header
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func del(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, url, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

// waitFor polls until pred passes or the deadline expires.
func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func jobState(t *testing.T, base, key string) string {
	code, body := get(t, base+"/v1/jobs/"+key)
	if code != http.StatusOK {
		return fmt.Sprintf("http-%d", code)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("status body: %v", err)
	}
	return st.State
}

// metricValue scrapes one series from /metrics by its internal registry
// name ("serve/coalesced"), translated to the exposition name the same way
// the server renders it.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	_, body := get(t, base+"/metrics")
	pn := promName(name)
	for _, line := range strings.Split(string(body), "\n") {
		var v float64
		if n, _ := fmt.Sscanf(line, pn+" %g", &v); n == 1 {
			return v
		}
	}
	return -1
}

func submitJob(t *testing.T, base string, r Request, wantCode int) submitResponse {
	t.Helper()
	code, body, _ := post(t, base+"/v1/jobs", r)
	if code != wantCode {
		t.Fatalf("submit %+v: code %d (want %d): %s", r, code, wantCode, body)
	}
	var resp submitResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func submitKey(t *testing.T, base string, r Request, wantCode int) string {
	t.Helper()
	return submitJob(t, base, r, wantCode).Key
}

// cancelURL builds the DELETE target carrying the submit's waiter token.
func cancelURL(base string, resp submitResponse) string {
	return base + "/v1/jobs/" + resp.Key + "?waiter=" + resp.Waiter
}

// gateChaos holds any L3 job mid-flight, parking the single worker so tests
// can pile work behind it deterministically.
func gateChaos(t *testing.T) *runner.Chaos {
	t.Helper()
	chaos, err := runner.ParseChaos("hang:L3-TLB")
	if err != nil {
		t.Fatal(err)
	}
	return chaos
}

var gateReq = Request{Bench: "RADIX", Scheme: "l3", Scale: "test", Tenant: "gate"}

// TestServiceCoalescingRunsOneSimulation is the ISSUE's first acceptance
// criterion: two concurrent key-equal clients trigger exactly one
// simulation, both served the same artifact bytes.
func TestServiceCoalescingRunsOneSimulation(t *testing.T) {
	_, ts, _ := testServer(t, t.TempDir(), func(o *Options) { o.Chaos = gateChaos(t) })

	// Park the worker on the gate job.
	gate := submitJob(t, ts.URL, gateReq, http.StatusAccepted)
	gateKey := gate.Key
	waitFor(t, "gate running", func() bool { return jobState(t, ts.URL, gateKey) == "running" })

	// Two clients, different tenants, same cell.
	target := func(tenant string) Request {
		return Request{Bench: "RADIX", Scheme: "l0", Scale: "test", Tenant: tenant}
	}
	k1 := submitKey(t, ts.URL, target("alice"), http.StatusAccepted)
	k2 := submitKey(t, ts.URL, target("bob"), http.StatusAccepted)
	if k1 != k2 {
		t.Fatalf("key-equal requests got distinct keys %s %s", k1, k2)
	}
	if got := metricValue(t, ts.URL, "serve/coalesced"); got != 1 {
		t.Fatalf("coalesced=%v, want 1", got)
	}

	// A DELETE without the waiter token must not touch the job (the key is
	// shared across tenants; the token is the cancel capability).
	if code, _ := del(t, ts.URL+"/v1/jobs/"+gateKey); code != http.StatusForbidden {
		t.Fatalf("tokenless cancel: %d, want 403", code)
	}
	// Release the gate: its only waiter cancels, freeing the worker.
	if code, body := del(t, cancelURL(ts.URL, gate)); code != http.StatusOK {
		t.Fatalf("cancel gate: %d %s", code, body)
	}
	waitFor(t, "target done", func() bool { return jobState(t, ts.URL, k1) == "done" })

	c1, b1 := get(t, ts.URL+"/v1/jobs/"+k1+"/result")
	c2, b2 := get(t, ts.URL+"/v1/jobs/"+k2+"/result")
	if c1 != http.StatusOK || c2 != http.StatusOK {
		t.Fatalf("result fetch: %d %d", c1, c2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("coalesced clients got different bytes")
	}
	if got := metricValue(t, ts.URL, "serve/sims.executed"); got != 1 {
		t.Fatalf("sims.executed=%v, want exactly 1", got)
	}

	// A third key-equal request is now a store hit: 200, same bytes.
	code, body, _ := post(t, ts.URL+"/v1/jobs", target("carol"))
	if code != http.StatusOK {
		t.Fatalf("post-completion submit: %d", code)
	}
	var resp submitResponse
	json.Unmarshal(body, &resp)
	if resp.State != "done" {
		t.Fatalf("post-completion state %q", resp.State)
	}
	if got := metricValue(t, ts.URL, "serve/sims.executed"); got != 1 {
		t.Fatalf("store hit re-ran the simulation: sims.executed=%v", got)
	}
}

// TestServiceFloodRejectedWithoutStarvation is the second acceptance
// criterion: an over-budget flood is 429'd with Retry-After while already
// admitted jobs still complete.
func TestServiceFloodRejectedWithoutStarvation(t *testing.T) {
	_, ts, _ := testServer(t, t.TempDir(), func(o *Options) {
		o.Chaos = gateChaos(t)
		o.MaxQueue = 2
	})

	gate := submitJob(t, ts.URL, gateReq, http.StatusAccepted)
	gateKey := gate.Key
	waitFor(t, "gate running", func() bool { return jobState(t, ts.URL, gateKey) == "running" })

	// Fill the admitted backlog.
	admitted := []string{
		submitKey(t, ts.URL, Request{Bench: "RADIX", Scheme: "l0", Scale: "test"}, http.StatusAccepted),
		submitKey(t, ts.URL, Request{Bench: "RADIX", Scheme: "l1", Scale: "test"}, http.StatusAccepted),
	}
	// Flood: same priority, distinct keys — all must bounce with 429 +
	// Retry-After, shedding nothing.
	for i := uint64(1); i <= 5; i++ {
		code, body, hdr := post(t, ts.URL+"/v1/jobs", Request{Bench: "RADIX", Scheme: "l2", Scale: "test", Seed: i})
		if code != http.StatusTooManyRequests {
			t.Fatalf("flood %d: code %d: %s", i, code, body)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatalf("flood %d: no Retry-After", i)
		}
	}
	if got := metricValue(t, ts.URL, "serve/rejected.overload"); got != 5 {
		t.Fatalf("rejected=%v, want 5", got)
	}
	if got := metricValue(t, ts.URL, "serve/shed"); got != 0 {
		t.Fatalf("equal-priority flood shed %v jobs", got)
	}

	// The admitted jobs are not starved: release the gate and they finish.
	del(t, cancelURL(ts.URL, gate))
	for _, k := range admitted {
		k := k
		waitFor(t, "admitted job done", func() bool { return jobState(t, ts.URL, k) == "done" })
	}
}

// TestServiceDrainRestartByteIdentical is the third acceptance criterion:
// SIGTERM mid-job → restart → resume yields a byte-identical result to an
// uninterrupted run.
func TestServiceDrainRestartByteIdentical(t *testing.T) {
	target := Request{Bench: "RADIX", Scheme: "vcoma", Scale: "test"}

	// Reference: an uninterrupted server computes the cell.
	_, refTS, refStop := testServer(t, t.TempDir(), nil)
	refKey := submitKey(t, refTS.URL, target, http.StatusAccepted)
	waitFor(t, "reference done", func() bool { return jobState(t, refTS.URL, refKey) == "done" })
	code, refBytes := get(t, refTS.URL+"/v1/jobs/"+refKey+"/result")
	if code != http.StatusOK {
		t.Fatalf("reference result: %d", code)
	}
	refStop()

	// Interrupted: chaos holds the job mid-flight; drain hits while it runs.
	stateDir := t.TempDir()
	chaos, err := runner.ParseChaos("hang:V-COMA")
	if err != nil {
		t.Fatal(err)
	}
	_, ts1, stop1 := testServer(t, stateDir, func(o *Options) { o.Chaos = chaos })
	key := submitKey(t, ts1.URL, target, http.StatusAccepted)
	if key != refKey {
		t.Fatalf("same request keyed differently across servers: %s vs %s", key, refKey)
	}
	waitFor(t, "victim running", func() bool { return jobState(t, ts1.URL, key) == "running" })
	stop1() // SIGTERM path: cancel workers, requeue in-flight, journal stays pending

	// Restart on the same state dir, chaos off: the journal re-enqueues the
	// job and it completes.
	_, ts2, _ := testServer(t, stateDir, nil)
	waitFor(t, "resumed done", func() bool { return jobState(t, ts2.URL, key) == "done" })
	code, gotBytes := get(t, ts2.URL+"/v1/jobs/"+key+"/result")
	if code != http.StatusOK {
		t.Fatalf("resumed result: %d", code)
	}
	if !bytes.Equal(gotBytes, refBytes) {
		t.Fatalf("resumed result differs from uninterrupted run:\n%s\nvs\n%s", gotBytes, refBytes)
	}
	if got := metricValue(t, ts2.URL, "serve/resumed"); got != 1 {
		t.Fatalf("resumed=%v, want 1", got)
	}
}

func TestServiceCancelQueuedJob(t *testing.T) {
	_, ts, _ := testServer(t, t.TempDir(), func(o *Options) { o.Chaos = gateChaos(t) })
	gate := submitJob(t, ts.URL, gateReq, http.StatusAccepted)
	gateKey := gate.Key
	waitFor(t, "gate running", func() bool { return jobState(t, ts.URL, gateKey) == "running" })

	job := submitJob(t, ts.URL, Request{Bench: "RADIX", Scheme: "l0", Scale: "test"}, http.StatusAccepted)
	key := job.Key
	if job.Waiter == "" {
		t.Fatalf("202 carried no waiter_id")
	}
	if code, body := del(t, cancelURL(ts.URL, job)); code != http.StatusOK {
		t.Fatalf("cancel: %d %s", code, body)
	}
	if st := jobState(t, ts.URL, key); st != "canceled" {
		t.Fatalf("state after cancel: %q", st)
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/"+key+"/result"); code != http.StatusInternalServerError {
		t.Fatalf("result of canceled job: %d, want 500", code)
	}
	// The canceled job must never run.
	del(t, cancelURL(ts.URL, gate))
	time.Sleep(50 * time.Millisecond)
	if got := metricValue(t, ts.URL, "serve/sims.executed"); got != 0 {
		t.Fatalf("canceled job was simulated (%v)", got)
	}
}

func TestServiceValidationAndIntrospection(t *testing.T) {
	_, ts, _ := testServer(t, t.TempDir(), nil)
	if code, _, _ := post(t, ts.URL+"/v1/jobs", Request{Bench: "NOPE", Scheme: "l0", Scale: "test"}); code != http.StatusBadRequest {
		t.Fatalf("unknown bench: %d", code)
	}
	if code, _, _ := post(t, ts.URL+"/v1/jobs", Request{Bench: "RADIX", Scheme: "warp", Scale: "test"}); code != http.StatusBadRequest {
		t.Fatalf("unknown scheme: %d", code)
	}
	if code, _, _ := post(t, ts.URL+"/v1/jobs", Request{Bench: "RADIX", Scheme: "l0", Scale: "test", TLB: 3, Org: "dm"}); code != http.StatusBadRequest {
		t.Fatalf("config.Validate must reject a non-power-of-two DM TLB: %d", code)
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code, _ := get(t, ts.URL+"/v1/queue"); code != http.StatusOK {
		t.Fatalf("queue introspection: %d", code)
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/ffffffffffffffff"); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", code)
	}
	// A {key} that is not exact sha256-hex must 404 before it reaches the
	// store's file layout — ServeMux decodes %2F inside the wildcard, so a
	// traversal key would otherwise escape the artifact directory (and the
	// cache quarantines what it reads but can't validate).
	for _, k := range []string{
		"..%2F..%2Fserve-journal",
		strings.Repeat("A", 64), // right length, wrong alphabet
		strings.Repeat("f", 63), // right alphabet, wrong length
	} {
		if code, _ := get(t, ts.URL+"/v1/jobs/"+k); code != http.StatusNotFound {
			t.Fatalf("malformed key %q: %d, want 404", k, code)
		}
		if code, _ := get(t, ts.URL+"/v1/jobs/"+k+"/result"); code != http.StatusNotFound {
			t.Fatalf("malformed key %q result: %d, want 404", k, code)
		}
		if code, _ := del(t, ts.URL+"/v1/jobs/"+k); code != http.StatusNotFound {
			t.Fatalf("malformed key %q cancel: %d, want 404", k, code)
		}
	}
	if code, _ := get(t, ts.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof: %d", code)
	}
}

func TestServiceSweepExpandsSchemes(t *testing.T) {
	_, ts, _ := testServer(t, t.TempDir(), nil)
	code, body, _ := post(t, ts.URL+"/v1/sweeps", map[string]any{
		"bench": "RADIX", "scale": "test", "schemes": []string{"l0", "vcoma"},
	})
	if code != http.StatusAccepted {
		t.Fatalf("sweep: %d %s", code, body)
	}
	var resp struct {
		Jobs []submitResponse `json:"jobs"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Jobs) != 2 {
		t.Fatalf("sweep expanded to %d jobs, want 2", len(resp.Jobs))
	}
	for _, j := range resp.Jobs {
		j := j
		waitFor(t, "sweep job done", func() bool { return jobState(t, ts.URL, j.Key) == "done" })
	}
}
