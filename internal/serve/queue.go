package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"vcoma/internal/obs"
	"vcoma/internal/runner"
)

// State is a job's position in its lifecycle.
type State int

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued State = iota
	// StateRunning: a worker is simulating it.
	StateRunning
	// StateDone: finished; the result is in the artifact store.
	StateDone
	// StateFailed: the simulation errored; Err holds the rendering.
	StateFailed
	// StateCanceled: every waiter canceled before it finished.
	StateCanceled
	// StateShed: evicted from the queue to admit higher-priority work.
	StateShed
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	case StateShed:
		return "shed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether the state can no longer change.
func (s State) Terminal() bool { return s >= StateDone }

// ErrOverloaded is returned by Submit when the queue is full and no
// lower-priority victim exists to shed. The API layer maps it to
// 429 + Retry-After.
var ErrOverloaded = errors.New("serve: queue full")

// ErrTenantLimit is returned when one tenant alone exceeds its queued-job
// allowance; unlike ErrOverloaded it triggers no shedding, because the
// pressure is self-inflicted.
var ErrTenantLimit = errors.New("serve: tenant queue limit reached")

// ErrClosed is returned by Next and Submit after Close — the drain path.
var ErrClosed = errors.New("serve: queue closed")

// Job is one coalesced unit of work: every key-equal request maps onto the
// same Job, which runs the simulation at most once. Its identity is the
// content-address of its inputs, so it doubles as the HTTP job ID and the
// artifact-store key.
type Job struct {
	Spec Spec
	Key  runner.Key

	mu       sync.Mutex
	state    State
	err      string
	waiters  map[string]string // cancellation token → tenant; empty → cancel
	priority Priority          // effective: most urgent among waiters
	tenant   string            // fairness bucket (first submitter)
	tenants  map[string]int    // waiter count per tenant, for introspection
	progress []string
	change   chan struct{}      // closed and replaced on every visible change
	cancel   context.CancelFunc // set while running
	cancelRequested bool

	// Request-trace state (nil when the submit was untraced). The first
	// submitter's trace is the job's trace; later coalesced submits attach
	// to it as spans rather than bringing their own.
	trace     *obs.Trace
	root      *obs.Span // request root, ended when the job retires
	queueSpan *obs.Span // open queue-wait span while queued
	profile   bool      // any waiter asked for a CPU profile artifact

	queuedAt  time.Time
	startedAt time.Time
	doneAt    time.Time
}

// newWaiterID mints an unguessable per-waiter cancellation token. Job keys
// are shared across tenants by design (that is what coalescing means), so
// the key alone must not authorize cancellation; only the submitter who was
// handed this token can withdraw their own waiter.
func newWaiterID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("serve: reading random waiter id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// notifyLocked wakes every watcher; callers hold j.mu.
func (j *Job) notifyLocked() {
	close(j.change)
	j.change = make(chan struct{})
}

// Watch returns a channel that is closed on the job's next visible change
// (state transition or new progress line). Callers re-Watch after each wake.
func (j *Job) Watch() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.change
}

// Status is a point-in-time snapshot of a job for the HTTP API.
type Status struct {
	Key      string    `json:"key"`
	Name     string    `json:"name"`
	TraceID  string    `json:"trace_id,omitempty"`
	State    string    `json:"state"`
	Priority string    `json:"priority"`
	Tenants  int       `json:"tenants"`
	Waiters  int       `json:"waiters"`
	Error    string    `json:"error,omitempty"`
	Progress []string  `json:"progress,omitempty"`
	QueuedAt time.Time `json:"queued_at"`
	StartedAt *time.Time `json:"started_at,omitempty"`
	DoneAt    *time.Time `json:"done_at,omitempty"`
}

// Snapshot renders the job's current status.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		Key:      string(j.Key),
		Name:     j.Spec.Name(),
		TraceID:  string(j.trace.ID()),
		State:    j.state.String(),
		Priority: j.priority.String(),
		Tenants:  len(j.tenants),
		Waiters:  len(j.waiters),
		Error:    j.err,
		Progress: append([]string(nil), j.progress...),
		QueuedAt: j.queuedAt,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		s.StartedAt = &t
	}
	if !j.doneAt.IsZero() {
		t := j.doneAt
		s.DoneAt = &t
	}
	return s
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// appendProgress records one progress-reporter line and wakes watchers.
func (j *Job) appendProgress(line string) {
	j.mu.Lock()
	j.progress = append(j.progress, line)
	j.notifyLocked()
	j.mu.Unlock()
}

// Trace returns the job's request trace (nil when untraced).
func (j *Job) Trace() *obs.Trace {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// TraceID returns the job's trace id, or "" when untraced.
func (j *Job) TraceID() obs.TraceID {
	return j.Trace().ID()
}

// Root returns the job's open request-root span (nil when untraced).
func (j *Job) Root() *obs.Span {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.root
}

// Profile reports whether any waiter asked for a CPU profile.
func (j *Job) Profile() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.profile
}

// endTraceLocked closes the job's request trace with its final outcome.
// Callers hold j.mu. Span methods are nil-safe, so untraced jobs fall
// through for free.
func (j *Job) endTraceLocked(outcome string) {
	j.queueSpan.End()
	j.queueSpan = nil
	j.root.SetAttr("outcome", outcome)
	j.root.End()
}

// bindCancel installs the running job's cancel func; if a waiter already
// asked for cancellation between dequeue and bind, it fires immediately.
func (j *Job) bindCancel(cancel context.CancelFunc) {
	j.mu.Lock()
	j.cancel = cancel
	req := j.cancelRequested
	j.mu.Unlock()
	if req {
		cancel()
	}
}

// bucket is one priority level: per-tenant FIFOs drained round-robin so a
// tenant flooding the queue delays its own jobs, not its neighbours'.
type bucket struct {
	order []string // round-robin tenant rotation
	fifos map[string][]*Job
}

func newBucket() *bucket { return &bucket{fifos: map[string][]*Job{}} }

func (b *bucket) push(j *Job) {
	if _, ok := b.fifos[j.tenant]; !ok {
		b.order = append(b.order, j.tenant)
	}
	b.fifos[j.tenant] = append(b.fifos[j.tenant], j)
}

// pop dequeues the next job round-robin across tenants.
func (b *bucket) pop() *Job {
	for len(b.order) > 0 {
		t := b.order[0]
		fifo := b.fifos[t]
		if len(fifo) == 0 {
			b.order = b.order[1:]
			delete(b.fifos, t)
			continue
		}
		j := fifo[0]
		b.fifos[t] = fifo[1:]
		// Rotate the tenant to the back so the next pop serves someone else.
		b.order = append(b.order[1:], t)
		if len(b.fifos[t]) == 0 {
			b.order = b.order[:len(b.order)-1]
			delete(b.fifos, t)
		}
		return j
	}
	return nil
}

// remove unlinks a specific job (cancel or shed path).
func (b *bucket) remove(j *Job) bool {
	fifo := b.fifos[j.tenant]
	for i, q := range fifo {
		if q == j {
			b.fifos[j.tenant] = append(fifo[:i:i], fifo[i+1:]...)
			if len(b.fifos[j.tenant]) == 0 {
				delete(b.fifos, j.tenant)
				for k, t := range b.order {
					if t == j.tenant {
						b.order = append(b.order[:k], b.order[k+1:]...)
						break
					}
				}
			}
			return true
		}
	}
	return false
}

// shedVictim picks the job shedding evicts: the most recently enqueued job
// of the bucket's least-recently-served tenant — the waiter with the least
// invested wait time.
func (b *bucket) shedVictim() *Job {
	if len(b.order) == 0 {
		return nil
	}
	t := b.order[len(b.order)-1]
	fifo := b.fifos[t]
	if len(fifo) == 0 {
		return nil
	}
	return fifo[len(fifo)-1]
}

// doneRetention bounds how many finished jobs the queue remembers for
// status queries; results themselves live in the artifact store, so an
// evicted record only loses the transient metadata (timings, progress log).
const doneRetention = 512

// Queue is the admission-controlled, multi-tenant job queue. All methods
// are safe for concurrent use.
type Queue struct {
	maxQueue     int // queued-job bound; beyond it Submit sheds or rejects
	maxPerTenant int // per-tenant queued bound; 0 = unlimited

	// OnShed, when set before use, is called (with internal locks held —
	// it must not call back into the queue) for every job evicted by load
	// shedding, so the server can retire it in the journal.
	OnShed func(*Job)

	mu        sync.Mutex
	buckets   [numPriorities]*bucket
	jobs      map[runner.Key]*Job // queued + running
	queued    int
	running   int
	done      map[runner.Key]*Job
	doneOrder []runner.Key
	wake      chan struct{}
	closedCh  chan struct{}
	closed    bool

	// Shed and coalesce tallies for /metrics.
	shedCount     uint64
	coalesceCount uint64
}

// NewQueue builds a queue admitting at most maxQueue queued jobs
// (running jobs are not counted — admission control protects the backlog,
// not the workers) and, when maxPerTenant > 0, at most that many queued
// jobs per tenant.
func NewQueue(maxQueue, maxPerTenant int) *Queue {
	q := &Queue{
		maxQueue:     maxQueue,
		maxPerTenant: maxPerTenant,
		jobs:         map[runner.Key]*Job{},
		done:         map[runner.Key]*Job{},
		wake:         make(chan struct{}, 1),
		closedCh:     make(chan struct{}),
	}
	for i := range q.buckets {
		q.buckets[i] = newBucket()
	}
	return q
}

// Outcome says what Submit did with a request.
type Outcome int

const (
	// OutcomeQueued: a new job was enqueued.
	OutcomeQueued Outcome = iota
	// OutcomeCoalesced: an identical job was already queued or running; the
	// request joined it as an additional waiter.
	OutcomeCoalesced
	// OutcomeDone: the job already finished (still in retention) — the
	// caller can fetch the result immediately.
	OutcomeDone
)

// Submit admits one request. Key-equal requests coalesce onto the in-flight
// job (raising its priority if the newcomer is more urgent). When the
// backlog is full, a strictly-less-urgent queued job is shed to make room;
// with no victim available the request is rejected with ErrOverloaded.
// The returned waiter id is this submitter's cancellation token; it is
// empty when the job already finished (nothing left to cancel).
func (q *Queue) Submit(spec Spec) (*Job, string, Outcome, error) {
	key := spec.Key()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, "", 0, ErrClosed
	}

	if j, ok := q.jobs[key]; ok {
		q.coalesceCount++
		waiter := q.joinLocked(j, spec)
		return j, waiter, OutcomeCoalesced, nil
	}
	if j, ok := q.done[key]; ok && j.State() == StateDone {
		return j, "", OutcomeDone, nil
	}

	if q.maxPerTenant > 0 && q.queuedForTenantLocked(spec.Tenant) >= q.maxPerTenant {
		return nil, "", 0, fmt.Errorf("%w: tenant %q has %d jobs queued", ErrTenantLimit, spec.Tenant, q.maxPerTenant)
	}
	if q.queued >= q.maxQueue {
		if !q.shedLocked(spec.Priority) {
			return nil, "", 0, ErrOverloaded
		}
	}

	waiter := newWaiterID()
	j := &Job{
		Spec:     spec,
		Key:      key,
		state:    StateQueued,
		waiters:  map[string]string{waiter: spec.Tenant},
		priority: spec.Priority,
		tenant:   spec.Tenant,
		tenants:  map[string]int{spec.Tenant: 1},
		change:   make(chan struct{}),
		queuedAt: time.Now(),
		trace:    spec.Trace,
		root:     spec.Root,
		profile:  spec.Profile,
	}
	j.queueSpan = spec.Root.StartChild("queue-wait")
	q.jobs[key] = j
	q.buckets[spec.Priority].push(j)
	q.queued++
	q.signalLocked()
	return j, waiter, OutcomeQueued, nil
}

// joinLocked adds one waiter to an in-flight job, promoting its queue
// position if the newcomer is more urgent. Returns the newcomer's waiter id.
// The newcomer's own trace (if any) is abandoned by the caller; instead the
// attach is recorded as a coalesce-attach span on the job's trace, so the
// one trace that exists for the key shows every rider.
func (q *Queue) joinLocked(j *Job, spec Spec) string {
	waiter := newWaiterID()
	j.mu.Lock()
	j.waiters[waiter] = spec.Tenant
	j.tenants[spec.Tenant]++
	raise := spec.Priority < j.priority
	queued := j.state == StateQueued
	old := j.priority
	if raise {
		j.priority = spec.Priority
	}
	if spec.Profile {
		j.profile = true
	}
	if sp := j.root.StartChild("coalesce-attach"); sp != nil {
		sp.SetAttr("tenant", spec.Tenant)
		sp.SetAttr("priority", spec.Priority.String())
		if id := spec.Trace.ID(); id != "" {
			sp.SetAttr("joined_trace_id", string(id))
		}
		sp.End()
	}
	j.mu.Unlock()
	if raise && queued {
		if q.buckets[old].remove(j) {
			q.buckets[spec.Priority].push(j)
		}
	}
	return waiter
}

func (q *Queue) queuedForTenantLocked(tenant string) int {
	n := 0
	for _, b := range q.buckets {
		n += len(b.fifos[tenant])
	}
	return n
}

// shedLocked evicts one queued job strictly less urgent than incoming,
// scanning from the least urgent bucket up. Returns false when nothing
// qualifies — equal-priority work is never shed.
func (q *Queue) shedLocked(incoming Priority) bool {
	for p := numPriorities - 1; p > incoming; p-- {
		v := q.buckets[p].shedVictim()
		if v == nil {
			continue
		}
		q.buckets[p].remove(v)
		delete(q.jobs, v.Key)
		q.queued--
		q.shedCount++
		q.retireLocked(v)
		v.mu.Lock()
		v.state = StateShed
		v.err = "shed: evicted by higher-priority work under load"
		v.doneAt = time.Now()
		v.endTraceLocked("shed")
		v.notifyLocked()
		v.mu.Unlock()
		if q.OnShed != nil {
			q.OnShed(v)
		}
		return true
	}
	return false
}

// signalLocked nudges one idle worker.
func (q *Queue) signalLocked() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// Next blocks until a job is available, then transitions it to running and
// returns it. The worker must call bindCancel with the run's cancel func,
// then Finish when done. Returns ErrClosed after Close drains dispatch.
func (q *Queue) Next(ctx context.Context) (*Job, error) {
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return nil, ErrClosed
		}
		for _, b := range q.buckets {
			if j := b.pop(); j != nil {
				q.queued--
				q.running++
				if q.queued > 0 {
					q.signalLocked() // more work: wake the next idle worker
				}
				q.mu.Unlock()
				j.mu.Lock()
				j.state = StateRunning
				j.startedAt = time.Now()
				j.queueSpan.End()
				j.queueSpan = nil
				j.notifyLocked()
				j.mu.Unlock()
				return j, nil
			}
		}
		q.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		case <-q.closedCh:
			return nil, ErrClosed
		case <-q.wake:
		}
	}
}

// Finish retires a running job with its outcome. canceled marks jobs whose
// every waiter gave up; they are distinguishable from failures.
func (q *Queue) Finish(j *Job, err error) {
	q.mu.Lock()
	delete(q.jobs, j.Key)
	q.running--
	q.retireLocked(j)
	q.mu.Unlock()

	j.mu.Lock()
	switch {
	case err == nil:
		j.state = StateDone
	case (errors.Is(err, context.Canceled) && j.cancelRequested):
		j.state = StateCanceled
		j.err = "canceled by all waiters"
	default:
		j.state = StateFailed
		j.err = err.Error()
	}
	j.cancel = nil
	j.doneAt = time.Now()
	j.endTraceLocked(j.state.String())
	j.notifyLocked()
	j.mu.Unlock()
}

// Requeue puts a dequeued-but-unfinished job back at its priority — the
// drain path for in-flight work interrupted by shutdown, so the journal and
// a restarted server see it as pending rather than failed.
func (q *Queue) Requeue(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.jobs[j.Key]; !ok {
		return
	}
	q.running--
	q.queued++
	j.mu.Lock()
	j.state = StateQueued
	j.startedAt = time.Time{}
	j.cancel = nil
	// The job waits again, so the trace gets a fresh queue-wait span.
	j.queueSpan = j.root.StartChild("queue-wait")
	j.notifyLocked()
	prio := j.priority
	j.mu.Unlock()
	q.buckets[prio].push(j)
	q.signalLocked()
}

// retireLocked moves a job into bounded done-retention. A key retired more
// than once (fail, resubmit, finish) keeps its original doneOrder slot, so
// the order never holds duplicates and eviction at the retention boundary
// is always safe.
func (q *Queue) retireLocked(j *Job) {
	if _, ok := q.done[j.Key]; !ok {
		q.doneOrder = append(q.doneOrder, j.Key)
	}
	q.done[j.Key] = j
	for len(q.doneOrder) > doneRetention {
		old := q.doneOrder[0]
		q.doneOrder = q.doneOrder[1:]
		delete(q.done, old)
	}
}

// Cancel removes the waiter identified by its submit-issued token from the
// job. When the last waiter leaves, a queued job is withdrawn immediately
// and a running one has its context canceled (the worker then Finishes it
// as canceled). Returns found=false when the key is unknown, and
// removed=false when the key exists but the token matches none of its
// waiters — key-equal jobs coalesce across tenants, so the key alone must
// not let one client drain waiters that other tenants registered.
func (q *Queue) Cancel(key runner.Key, waiter string) (found, removed bool) {
	q.mu.Lock()
	j, ok := q.jobs[key]
	if !ok {
		_, ok = q.done[key]
		q.mu.Unlock()
		return ok, ok // already terminal: cancel is a no-op, but the key exists
	}

	j.mu.Lock()
	tenant, ok := j.waiters[waiter]
	if !ok {
		j.mu.Unlock()
		q.mu.Unlock()
		return true, false
	}
	delete(j.waiters, waiter)
	if j.tenants[tenant]--; j.tenants[tenant] <= 0 {
		delete(j.tenants, tenant)
	}
	if len(j.waiters) > 0 {
		j.notifyLocked()
		j.mu.Unlock()
		q.mu.Unlock()
		return true, true
	}
	// Last waiter gone.
	if j.state == StateQueued {
		j.state = StateCanceled
		j.err = "canceled by all waiters"
		j.doneAt = time.Now()
		j.endTraceLocked("canceled")
		j.notifyLocked()
		prio := j.priority
		j.mu.Unlock()
		q.buckets[prio].remove(j)
		delete(q.jobs, key)
		q.queued--
		q.retireLocked(j)
		q.mu.Unlock()
		return true, true
	}
	// Running: ask the worker to stop; Finish records the terminal state.
	j.cancelRequested = true
	cancel := j.cancel
	j.mu.Unlock()
	q.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true, true
}

// Get looks a job up by key among queued, running and retained-done jobs.
func (q *Queue) Get(key runner.Key) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j, ok := q.jobs[key]; ok {
		return j, true
	}
	j, ok := q.done[key]
	return j, ok
}

// Close stops admission and dispatch: Submit and Next return ErrClosed.
// Queued jobs stay queued (the journal remembers them for the next boot).
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	close(q.closedCh)
}

// Stats is the queue's introspection snapshot for /metrics and /v1/queue.
type Stats struct {
	Queued      int            `json:"queued"`
	Running     int            `json:"running"`
	PerPriority map[string]int `json:"per_priority"`
	PerTenant   map[string]int `json:"per_tenant"`
	Shed        uint64         `json:"shed"`
	Coalesced   uint64         `json:"coalesced"`
}

// Snapshot reports current depth and tallies.
func (q *Queue) Snapshot() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := Stats{
		Queued:      q.queued,
		Running:     q.running,
		PerPriority: map[string]int{},
		PerTenant:   map[string]int{},
		Shed:        q.shedCount,
		Coalesced:   q.coalesceCount,
	}
	for p, b := range q.buckets {
		n := 0
		for t, fifo := range b.fifos {
			n += len(fifo)
			s.PerTenant[t] += len(fifo)
		}
		if n > 0 {
			s.PerPriority[Priority(p).String()] = n
		}
	}
	return s
}
