package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalReplayPendingOnly(t *testing.T) {
	dir := t.TempDir()
	j, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal has %d pending", len(pending))
	}
	r1 := req("l0", "normal", "a", 1)
	r2 := req("l1", "normal", "a", 2)
	r3 := req("l2", "normal", "a", 3)
	k1, _ := keyOf(r1)
	k3, _ := keyOf(r3)
	for _, rec := range []struct {
		r Request
	}{{r1}, {r2}, {r3}} {
		k, _ := keyOf(rec.r)
		if err := j.Accept(k, rec.r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Done(k1); err != nil {
		t.Fatal(err)
	}
	if err := j.Cancel(k3); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, pending, err = OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Scheme != "l1" {
		t.Fatalf("pending after replay: %+v, want just the l1 request", pending)
	}
}

func TestJournalCompactsOnOpen(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 20; i++ {
		r := req("l0", "normal", "a", i)
		k, _ := keyOf(r)
		if err := j.Accept(k, r); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := j.Done(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	j.Close()

	j2, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pending) != 10 {
		t.Fatalf("pending=%d, want 10", len(pending))
	}
	// The compacted file holds the header plus one accept per pending job.
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(string(data)), "\n") + 1
	if lines != 11 {
		t.Fatalf("compacted journal has %d lines, want 11 (header + 10 accepts)", lines)
	}
}

func TestJournalToleratesTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := req("l0", "normal", "a", 1)
	k, _ := keyOf(r)
	if err := j.Accept(k, r); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a crash mid-append: a half-written record at the tail.
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","key":"deadbe`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("torn line broke replay: %v", err)
	}
	defer j2.Close()
	if len(pending) != 1 {
		t.Fatalf("pending=%d after torn line, want 1 (the accept still counts)", len(pending))
	}
}
