package serve

import (
	"encoding/json"
	"sync"
	"time"

	"vcoma/internal/runner"
)

// health is the server's storage-health state machine. Persistent write
// failures (journal appends, artifact puts, trace sidecars) flip the server
// into degraded mode: it keeps computing and serving results from memory,
// bypassing the store, and reports the degradation on /healthz and /metrics.
//
// The transition out of degraded is deliberately one-way-gated: an ordinary
// successful write resets the consecutive-failure counter but does NOT clear
// degraded — only the periodic write probe's success does. A disk that is
// intermittently accepting writes is still a disk nobody should trust with
// durability promises, so the server stays degraded until a probe proves the
// state directory writable again.
type health struct {
	mu sync.Mutex
	// degradeAfter is how many consecutive write failures flip degraded.
	degradeAfter int
	consecutive  int
	degraded     bool
	reason       string
	since        time.Time

	writeFails uint64
	probeFails uint64
}

func newHealth(degradeAfter int) *health {
	if degradeAfter < 1 {
		degradeAfter = 1
	}
	return &health{degradeAfter: degradeAfter}
}

// writeFailed records a failed durable write of kind op (e.g. "journal",
// "store-put", "trace") and reports whether this failure flipped the server
// into degraded mode.
func (h *health) writeFailed(op string, err error) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.writeFails++
	h.consecutive++
	if h.degraded || h.consecutive < h.degradeAfter {
		return false
	}
	h.degraded = true
	h.reason = op + ": " + err.Error()
	h.since = time.Now()
	return true
}

// writeOK records a successful durable write. It resets the
// consecutive-failure counter but never clears degraded — see the type
// comment.
func (h *health) writeOK() {
	h.mu.Lock()
	h.consecutive = 0
	h.mu.Unlock()
}

// probeFailed records a failed self-heal probe.
func (h *health) probeFailed() {
	h.mu.Lock()
	h.probeFails++
	h.mu.Unlock()
}

// probeOK records a successful self-heal probe and reports whether it
// cleared degraded mode.
func (h *health) probeOK() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecutive = 0
	if !h.degraded {
		return false
	}
	h.degraded = false
	h.reason = ""
	h.since = time.Time{}
	return true
}

// Degraded reports whether the server is in degraded mode.
func (h *health) Degraded() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.degraded
}

// HealthStats is the health snapshot exposed on /v1/queue and /metrics.
type HealthStats struct {
	Degraded      bool   `json:"degraded"`
	Reason        string `json:"reason,omitempty"`
	DegradedSince string `json:"degraded_since,omitempty"`
	WriteFailures uint64 `json:"write_failures"`
	ProbeFailures uint64 `json:"probe_failures"`
}

func (h *health) Snapshot() HealthStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HealthStats{
		Degraded:      h.degraded,
		Reason:        h.reason,
		WriteFailures: h.writeFails,
		ProbeFailures: h.probeFails,
	}
	if h.degraded {
		st.DegradedSince = h.since.UTC().Format(time.RFC3339)
	}
	return st
}

// memResults is the degraded-mode result holdover: when the artifact store
// cannot persist a finished simulation, its result bytes are parked here so
// the work is not recomputed or lost while the disk is down. Entries are the
// same bytes a store hit would serve (the envelope's raw result payload), so
// the byte-identity contract of /v1/jobs/{id}/result holds either way. The
// map is FIFO-capped: this is a life raft, not a second cache.
type memResults struct {
	mu     sync.Mutex
	cap    int
	order  []runner.Key
	byKey  map[runner.Key]json.RawMessage
	served uint64
}

const defaultMemResultsCap = 128

func newMemResults(cap int) *memResults {
	if cap < 1 {
		cap = defaultMemResultsCap
	}
	return &memResults{cap: cap, byKey: map[runner.Key]json.RawMessage{}}
}

// Put parks key's raw result bytes, evicting the oldest entry if full.
func (m *memResults) Put(key runner.Key, raw json.RawMessage) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byKey[key]; !ok {
		for len(m.order) >= m.cap {
			old := m.order[0]
			m.order = m.order[1:]
			delete(m.byKey, old)
		}
		m.order = append(m.order, key)
	}
	m.byKey[key] = append(json.RawMessage(nil), raw...)
}

// Get returns the parked bytes for key, counting the hit.
func (m *memResults) Get(key runner.Key) (json.RawMessage, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	raw, ok := m.byKey[key]
	if ok {
		m.served++
	}
	return raw, ok
}

// Has reports whether key is parked without counting a hit.
func (m *memResults) Has(key runner.Key) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.byKey[key]
	return ok
}

// Drop removes key (called once the store holds the entry durably again).
func (m *memResults) Drop(key runner.Key) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byKey[key]; !ok {
		return
	}
	delete(m.byKey, key)
	for i, k := range m.order {
		if k == key {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// Len reports how many results are parked.
func (m *memResults) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byKey)
}

// Served reports how many degraded-mode reads were answered from memory.
func (m *memResults) Served() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.served
}
