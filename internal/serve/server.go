package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vcoma/internal/cli"
	"vcoma/internal/experiments"
	"vcoma/internal/fsio"
	"vcoma/internal/obs"
	"vcoma/internal/report"
	"vcoma/internal/runner"
	"vcoma/internal/sim"
)

// Options configures a Server.
type Options struct {
	// StateDir holds everything durable: the artifact store (StateDir/
	// artifacts), the accept journal and the advisory lock. Two servers
	// sharing a StateDir is a configuration error the lock catches.
	StateDir string
	// Workers bounds concurrent simulations; <= 0 means 1.
	Workers int
	// MaxQueue bounds the backlog; <= 0 means 64.
	MaxQueue int
	// MaxPerTenant bounds one tenant's queued jobs; 0 = no bound.
	MaxPerTenant int
	// MaxStoreBytes bounds the artifact store; 0 = unbounded.
	MaxStoreBytes int64
	// JobTimeout bounds each simulation attempt; 0 = unbounded.
	JobTimeout time.Duration
	// Retry re-runs transiently-failed simulations.
	Retry runner.Retry
	// Budget arms the simulation watchdog inside every job.
	Budget sim.Budget
	// Metrics writes per-job observability sidecars next to artifacts.
	Metrics bool
	// Chaos, if non-nil, wraps every job with the fault injector — the
	// smoke test's handle for holding a job mid-flight.
	Chaos *runner.Chaos
	// DrainGrace bounds the HTTP shutdown on SIGTERM; 0 means 5s.
	DrainGrace time.Duration
	// FS is the filesystem seam every durable write goes through (journal,
	// artifacts, traces); nil means a plain durable passthrough. Arm it with
	// failpoints (-fsfault) to rehearse disk failure.
	FS *fsio.FS
	// FaultControl exposes POST /debug/fsfault for swapping failpoint specs
	// at runtime. Off by default: it is a chaos-drill tool, not an API.
	FaultControl bool
	// ProbeInterval paces the degraded-mode self-heal probe; 0 means 2s.
	ProbeInterval time.Duration
	// DegradeAfter is how many consecutive durable-write failures flip the
	// server into degraded mode; 0 means 1 (first failure degrades).
	DegradeAfter int
	// Log receives structured operational lines; nil silences them. Every
	// job-scoped line carries trace_id, job_key and tenant.
	Log *slog.Logger
}

// Server is the vcoma simulation service: an HTTP/JSON API over the
// multi-tenant Queue, executing jobs through runner.Run into the shared
// artifact Store, journaling admissions so a restart resumes the backlog.
type Server struct {
	opts    Options
	log     *slog.Logger
	queue   *Queue
	store   *Store
	journal *Journal
	lock    *runner.DirLock
	metrics *serverMetrics
	fs      *fsio.FS
	health  *health
	mem     *memResults

	jmu sync.Mutex // serializes journal writes

	// profiling guards the process-global CPU profiler: the Go runtime
	// allows one profile at a time, so concurrent ?profile=cpu jobs race
	// for the slot and losers run unprofiled.
	profiling atomic.Bool

	wg        sync.WaitGroup
	draining  chan struct{}
	drainOnce sync.Once
}

// jobLog returns the logger for one job's lines: every record carries the
// trace_id/job_key/tenant triple the README documents, so one grep by any
// of the three reconstructs the job's history.
func (s *Server) jobLog(j *Job) *slog.Logger {
	return s.log.With(
		"trace_id", string(j.TraceID()),
		"job_key", string(j.Key),
		"tenant", j.Spec.Tenant,
	)
}

// New opens the state directory (store, journal, lock) and replays any
// pending backlog from a previous incarnation into the queue. The server
// does no work until Start.
func New(opts Options) (*Server, error) {
	if opts.StateDir == "" {
		return nil, fmt.Errorf("serve: empty state directory")
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 64
	}
	if opts.DrainGrace <= 0 {
		opts.DrainGrace = 5 * time.Second
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 2 * time.Second
	}
	if opts.FS == nil {
		// Always run through the seam, even unarmed: the fsio op/error
		// counters on /metrics stay live either way.
		opts.FS = fsio.New(nil)
	}

	store, err := OpenStoreFS(filepath.Join(opts.StateDir, "artifacts"), opts.MaxStoreBytes, opts.FS)
	if err != nil {
		return nil, err
	}
	lock, err := runner.AcquireDirLock(opts.StateDir)
	if err != nil {
		return nil, err
	}
	journal, pending, err := OpenJournalFS(opts.StateDir, opts.FS)
	if err != nil {
		lock.Release()
		return nil, err
	}

	log := opts.Log
	if log == nil {
		log = cli.Discard()
	}
	s := &Server{
		opts:     opts,
		log:      log,
		queue:    NewQueue(opts.MaxQueue, opts.MaxPerTenant),
		store:    store,
		journal:  journal,
		lock:     lock,
		fs:       opts.FS,
		health:   newHealth(opts.DegradeAfter),
		mem:      newMemResults(0),
		draining: make(chan struct{}),
	}
	s.metrics = newServerMetrics(s)
	s.queue.OnShed = func(j *Job) {
		s.metrics.shed.Add(1)
		// Journal write deferred out of the queue's critical section is not
		// worth the machinery here: shedding is rare and the fsync is small.
		s.journalRetire(j.Key, "cancel")
		s.writeTrace(j)
		s.jobLog(j).Warn("job shed", "name", j.Spec.Name())
	}

	// Resume: jobs accepted by the previous incarnation re-enter the queue;
	// ones whose artifact already exists are simply retired.
	for _, req := range pending {
		spec, err := req.Resolve()
		if err != nil {
			continue // compaction already dropped these, but be safe
		}
		key := spec.Key()
		if _, ok := store.GetRaw(key); ok {
			s.journalRetire(key, "done")
			continue
		}
		// A resumed job gets a fresh trace: the original's spans died with
		// the previous process, but the re-run should still be traceable.
		spec.Trace = obs.NewTrace(obs.NewTraceID())
		spec.Root = spec.Trace.StartSpan("request")
		spec.Root.SetAttr("name", spec.Name())
		spec.Root.SetAttr("tenant", spec.Tenant)
		spec.Root.SetAttr("resumed", "true")
		// The waiter token is discarded: the server itself is the resumed
		// job's only waiter (HTTP clients did not survive the restart), so
		// it runs to completion and lands in the store.
		if _, _, _, err := s.queue.Submit(spec); err != nil {
			// Leave it pending in the journal; the next boot retries.
			s.log.Warn("resume: not re-enqueued", "name", spec.Name(), "job_key", string(key), "error", err.Error())
			continue
		}
		s.metrics.resumed.Add(1)
		s.log.Info("resume: re-enqueued", "name", spec.Name(), "job_key", string(key), "trace_id", string(spec.Trace.ID()))
	}
	return s, nil
}

// journalRetire writes a terminal journal record, serialized because the
// queue, workers and handlers all retire jobs.
func (s *Server) journalRetire(key runner.Key, op string) {
	s.jmu.Lock()
	var err error
	switch op {
	case "done":
		err = s.journal.Done(key)
	case "fail":
		err = s.journal.Fail(key)
	default:
		err = s.journal.Cancel(key)
	}
	s.jmu.Unlock()
	s.noteWrite("journal", err)
	if err != nil {
		s.log.Warn("journal", "op", op, "job_key", string(key), "error", err.Error())
	}
}

func (s *Server) journalAccept(key runner.Key, req Request) error {
	s.jmu.Lock()
	err := s.journal.Accept(key, req)
	s.jmu.Unlock()
	s.noteWrite("journal", err)
	return err
}

// noteWrite feeds a durable-write outcome into the health state machine,
// logging the transition when a failure flips the server degraded.
func (s *Server) noteWrite(op string, err error) {
	if err == nil {
		s.health.writeOK()
		return
	}
	if s.health.writeFailed(op, err) {
		s.log.Error("entering degraded mode", "op", op, "error", err.Error())
	}
}

// Start launches the worker pool under ctx. Cancelling ctx stops dispatch;
// in-flight jobs are cancelled and re-queued in memory (and stay pending in
// the journal), which is the drain path.
func (s *Server) Start(ctx context.Context) {
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				j, err := s.queue.Next(ctx)
				if err != nil {
					return
				}
				s.runJob(ctx, j)
			}
		}()
	}
	// Self-heal probe: while degraded, periodically prove the state dir
	// writable again with a full atomic write; only this probe's success
	// clears degraded mode (see health).
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.opts.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if s.health.Degraded() {
					s.probeWrite()
				}
			}
		}
	}()
}

// probeWrite attempts one full durable write in the state directory.
func (s *Server) probeWrite() {
	path := filepath.Join(s.opts.StateDir, ".fsio-probe")
	if err := s.fs.WriteFileAtomic("probe", path, []byte("probe\n")); err != nil {
		s.health.probeFailed()
		s.log.Warn("degraded: write probe failed", "error", err.Error())
		return
	}
	s.fs.Remove("probe", path)
	if s.health.probeOK() {
		s.log.Info("leaving degraded mode: write probe succeeded")
	}
}

// Shutdown completes the drain: stops admission, waits for workers to
// return, then closes the journal and releases the lock. Safe to call once
// after the Start context is cancelled.
func (s *Server) Shutdown() {
	s.drainOnce.Do(func() { close(s.draining) })
	s.queue.Close()
	s.wg.Wait()
	if err := s.journal.Close(); err != nil {
		s.log.Warn("journal close", "error", err.Error())
	}
	if err := s.lock.Release(); err != nil {
		s.log.Warn("lock release", "error", err.Error())
	}
}

// runJob executes one dequeued job through runner.Run: the artifact store's
// cache serves key-equal repeats, chaos wraps it when configured, and the
// progress reporter streams lines into the job's event log. The job's trace
// rides the context into the runner, the experiment passes and the engine,
// so one trace id spans HTTP accept to simulated cycle.
func (s *Server) runJob(ctx context.Context, j *Job) {
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	j.bindCancel(cancel)

	spec := j.Spec
	jl := s.jobLog(j)
	waited := time.Since(j.Snapshot().QueuedAt)
	s.metrics.observeQueueWait(uint64(waited.Milliseconds()))

	runSp := j.Root().StartChild("run")
	runCtx := obs.WithSpan(obs.WithTrace(jobCtx, j.Trace()), runSp)
	jl.Info("job start", "name", spec.Name(), "queue_wait", waited.Round(time.Millisecond).String())

	var stopProfile func()
	if j.Profile() {
		stopProfile = s.startProfile(jl, j.Key, runSp)
	}

	rj := runner.New(spec.Name(), j.Key, func(c context.Context) (report.RunSummary, error) {
		return experiments.SimulateCtx(experiments.WithBudget(c, s.opts.Budget), spec.Config, spec.Bench, spec.Scale)
	})
	jobs := []runner.Job{rj}
	if s.opts.Chaos != nil {
		jobs = s.opts.Chaos.Wrap(jobs)
	}
	pw := &jobWriter{j: j}
	progress := runner.NewProgress(pw)
	start := time.Now()
	res, err := runner.Run(runCtx, jobs, runner.Options{
		Workers:    1,
		Cache:      s.store.Cache(),
		Progress:   progress,
		Metrics:    s.opts.Metrics,
		JobTimeout: s.opts.JobTimeout,
		Retry:      s.opts.Retry,
	})
	pw.flush()
	if stopProfile != nil {
		stopProfile()
	}
	elapsed := time.Since(start)

	if err == nil {
		cached := false
		if r, ok := res.Jobs[spec.Name()]; ok && r.Cached {
			cached = true
		}
		if cached {
			s.metrics.storeHits.Add(1)
		} else {
			s.metrics.simsExecuted.Add(1)
			s.metrics.observeRunTime(uint64(elapsed.Milliseconds()))
		}
		runSp.SetAttr("cached", strconv.FormatBool(cached))
		runSp.End()
		if s.store.Contains(j.Key) {
			s.health.writeOK()
			s.mem.Drop(j.Key)
		} else if r, found := res.Jobs[spec.Name()]; found {
			// The simulation finished but its artifact never landed —
			// runner.Run treats a failed Put as non-fatal, so a dying disk
			// surfaces here as a silently absent entry. Park the result bytes
			// (identical to what the store would have served: the envelope's
			// raw payload is json.Marshal of the value) so the work is served
			// from memory instead of lost, and degrade.
			if raw, merr := json.Marshal(r.Value); merr == nil {
				s.mem.Put(j.Key, raw)
			}
			s.noteWrite("store-put", errStorePut)
			jl.Warn("artifact not persisted; serving from memory", "name", spec.Name())
		}
		s.store.Note(j.Key)
		s.journalRetire(j.Key, "done")
		s.queue.Finish(j, nil)
		s.writeTrace(j)
		jl.Info("job done", "state", StateDone.String(), "cached", cached, "duration", elapsed.Round(time.Millisecond).String())
		return
	}

	// Drain: the worker context died but no waiter asked to cancel — put
	// the job back so the journal's pending record matches the queue, and
	// the next incarnation re-runs it.
	if ctx.Err() != nil && j.State() == StateRunning {
		canceled := false
		j.mu.Lock()
		canceled = j.cancelRequested
		j.mu.Unlock()
		if !canceled {
			runSp.SetAttr("outcome", "requeued")
			runSp.End()
			jl.Info("drain: requeueing", "name", spec.Name())
			s.queue.Requeue(j)
			return
		}
	}

	runSp.SetAttr("error", err.Error())
	runSp.End()
	j.mu.Lock()
	canceled := j.cancelRequested
	j.mu.Unlock()
	if canceled && errors.Is(err, context.Canceled) {
		s.metrics.canceled.Add(1)
		s.journalRetire(j.Key, "cancel")
		s.queue.Finish(j, err)
		s.writeTrace(j)
		jl.Warn("job canceled", "duration", elapsed.Round(time.Millisecond).String())
		return
	}
	s.metrics.failed.Add(1)
	s.journalRetire(j.Key, "fail")
	s.queue.Finish(j, err)
	s.writeTrace(j)
	jl.Error("job failed", "error", err.Error(), "duration", elapsed.Round(time.Millisecond).String())
}

// jobWriter adapts the runner progress reporter to the job's event log,
// splitting the byte stream on newlines (buffering partial lines) so each
// progress entry is exactly one line — entries feed SSE `data:` fields,
// whose framing an embedded newline would corrupt.
type jobWriter struct {
	j   *Job
	mu  sync.Mutex
	buf []byte
}

func (w *jobWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, p...)
	for {
		i := bytes.IndexByte(w.buf, '\n')
		if i < 0 {
			break
		}
		w.emit(w.buf[:i])
		w.buf = w.buf[i+1:]
	}
	return len(p), nil
}

func (w *jobWriter) emit(line []byte) {
	for len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	if len(line) > 0 {
		w.j.appendProgress(string(line))
	}
}

// flush emits any unterminated tail once the job's run is over.
func (w *jobWriter) flush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.emit(w.buf)
	w.buf = nil
}

// Run serves the HTTP API on addr until ctx is cancelled (SIGTERM via
// cli.SignalContext), then drains: stop accepting, shut the listener down
// within DrainGrace, cancel in-flight work (requeued + journaled pending),
// flush and release state. Returns the cancellation cause so callers can
// map a signal to its conventional exit status.
func (s *Server) Run(ctx context.Context, addr string) error {
	s.Start(ctx)
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	s.log.Info("listening", "addr", addr, "state", s.opts.StateDir, "workers", s.opts.Workers, "queue", s.opts.MaxQueue)

	select {
	case <-ctx.Done():
		s.log.Info("draining", "cause", fmt.Sprint(context.Cause(ctx)))
		shCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainGrace)
		defer cancel()
		_ = srv.Shutdown(shCtx)
		s.Shutdown()
		return context.Cause(ctx)
	case err := <-errCh:
		s.Shutdown()
		return err
	}
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs            submit one simulation (Request JSON)
//	POST   /v1/sweeps          submit one request per scheme
//	GET    /v1/jobs/{key}      job status
//	GET    /v1/jobs/{key}/result  stored artifact bytes (byte-identical)
//	GET    /v1/jobs/{key}/events  SSE: status changes + progress lines
//	GET    /v1/jobs/{key}/trace   request span tree (?format=chrome → Perfetto)
//	GET    /v1/jobs/{key}/profile CPU-profile artifact (submit with ?profile=cpu)
//	DELETE /v1/jobs/{key}      remove this waiter (cancel when last)
//	GET    /v1/queue           queue + store + health snapshot
//	GET    /healthz            liveness: "ok" or "degraded"
//	GET    /metrics            Prometheus text exposition
//	GET    /debug/pprof/       live profiling
//	GET    /debug/fsfault      armed failpoint spec + fsio counters (opt-in)
//	POST   /debug/fsfault      swap the failpoint spec (empty body disarms)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{key}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{key}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{key}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{key}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{key}/profile", s.handleProfile)
	mux.HandleFunc("DELETE /v1/jobs/{key}", s.handleCancel)
	mux.HandleFunc("GET /v1/queue", s.handleQueue)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.health.Degraded() {
			// Still 200: a degraded server is alive and serving — restarting
			// it would only lose the memory-held results.
			io.WriteString(w, "degraded\n")
			return
		}
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.metrics.write(w)
	})
	if s.opts.FaultControl {
		mux.HandleFunc("GET /debug/fsfault", s.handleFsFaultGet)
		mux.HandleFunc("POST /debug/fsfault", s.handleFsFaultSet)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// submitResponse is the body of a submit's 200/202. Waiter is this
// submitter's private cancellation token: job keys are shared across
// tenants (coalescing), so DELETE requires the token, not just the key.
// TraceID is the id every log line, span and Perfetto slice for this
// request carries; it is echoed in the X-Vcoma-Trace response header.
type submitResponse struct {
	Key     string `json:"key"`
	Name    string `json:"name"`
	State   string `json:"state"`
	Waiter  string `json:"waiter_id,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	Result  string `json:"result_url"`
	Events  string `json:"events_url"`
	Trace   string `json:"trace_url,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) draining429(w http.ResponseWriter) bool {
	select {
	case <-s.draining:
		w.Header().Set("Retry-After", "10")
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: draining"))
		return true
	default:
		return false
	}
}

// retryAfter estimates seconds until queue pressure clears: backlog over
// worker count, floored at 1 — advisory, monotone in load.
func (s *Server) retryAfter() string {
	st := s.queue.Snapshot()
	secs := (st.Queued + st.Running) / s.opts.Workers
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// errJournal marks an admission refused because the accept record could not
// be made durable; the API maps it to 503 so the client retries rather than
// trusting a 202 a crash could forget.
var errJournal = errors.New("serve: journal write failed")

// errStorePut marks a finished job whose artifact never landed on disk.
var errStorePut = errors.New("serve: artifact put did not land")

// admit runs one resolved spec through the store fast path and the queue,
// journaling fresh admissions. Shared by submit and sweep. Every admission
// mints a trace; when the request coalesces onto an in-flight job, the
// minted trace is abandoned (ended as coalesced) and the response carries
// the job's original trace id — one key, one trace, every rider visible as
// a coalesce-attach span on it.
func (s *Server) admit(req Request, spec Spec) (submitResponse, int, error) {
	key := spec.Key()
	spec.Trace = obs.NewTrace(obs.NewTraceID())
	spec.Root = spec.Trace.StartSpan("request")
	spec.Root.SetAttr("name", spec.Name())
	spec.Root.SetAttr("tenant", spec.Tenant)
	spec.Root.SetAttr("priority", spec.Priority.String())
	resp := submitResponse{
		Key:     string(key),
		Name:    spec.Name(),
		TraceID: string(spec.Trace.ID()),
		Result:  "/v1/jobs/" + string(key) + "/result",
		Events:  "/v1/jobs/" + string(key) + "/events",
		Trace:   "/v1/jobs/" + string(key) + "/trace",
	}
	al := s.log.With("trace_id", resp.TraceID, "job_key", string(key), "tenant", spec.Tenant)

	admitSp := spec.Root.StartChild("admit")
	// Fast path: the artifact already exists — answer without queueing.
	if _, ok := s.store.GetRaw(key); ok {
		s.metrics.storeHits.Add(1)
		admitSp.SetAttr("outcome", "store-hit")
		admitSp.End()
		spec.Root.SetAttr("outcome", "store-hit")
		spec.Root.End()
		resp.State = StateDone.String()
		al.Info("submit", "name", spec.Name(), "outcome", "store-hit")
		return resp, http.StatusOK, nil
	}
	// Degraded fast path: a result the store could not persist still answers
	// from the memory holdover — no recompute, no queue slot.
	if s.mem.Has(key) {
		s.metrics.storeHits.Add(1)
		admitSp.SetAttr("outcome", "mem-hit")
		admitSp.End()
		spec.Root.SetAttr("outcome", "mem-hit")
		spec.Root.End()
		resp.State = StateDone.String()
		al.Info("submit", "name", spec.Name(), "outcome", "mem-hit")
		return resp, http.StatusOK, nil
	}

	// Journal before the client hears 202: once accepted, a crash must not
	// lose the job. The accept is fsync'd before the queue can even start
	// it — a worker's "done" can then never precede it in the log — and a
	// journal failure refuses the job instead of accepting it undurably.
	jsp := admitSp.StartChild("journal-fsync")
	err := s.journalAccept(key, req)
	jsp.End()
	if err != nil {
		al.Error("journal accept", "error", err.Error())
		return resp, 0, fmt.Errorf("%w: %v", errJournal, err)
	}
	j, waiter, outcome, err := s.queue.Submit(spec)
	if err != nil {
		// Not admitted after all: retire the speculative accept so a
		// restart does not resurrect a job the client was refused.
		s.journalRetire(key, "cancel")
		al.Warn("submit rejected", "name", spec.Name(), "error", err.Error())
		return resp, 0, err
	}
	s.metrics.submits.Add(1)
	resp.Waiter = waiter
	switch outcome {
	case OutcomeDone:
		s.journalRetire(key, "done")
		admitSp.SetAttr("outcome", "done-retained")
		admitSp.End()
		spec.Root.SetAttr("outcome", "done-retained")
		spec.Root.End()
		resp.State = StateDone.String()
		al.Info("submit", "name", spec.Name(), "outcome", "done-retained")
		return resp, http.StatusOK, nil
	case OutcomeCoalesced:
		// The duplicate accept record is harmless: replay tracks liveness
		// per key, and the job's eventual retirement covers every accept.
		s.metrics.coalesced.Add(1)
		admitSp.SetAttr("outcome", "coalesced")
		admitSp.End()
		spec.Root.SetAttr("outcome", "coalesced")
		spec.Root.End()
		// The coalesce-attach span on the job's trace is the surviving
		// record; hand the client the id it can actually fetch spans under.
		if id := j.TraceID(); id != "" {
			resp.TraceID = string(id)
		}
		resp.State = j.State().String()
		al.Info("submit", "name", spec.Name(), "outcome", "coalesced", "joined_trace_id", resp.TraceID)
		return resp, http.StatusAccepted, nil
	default:
		// The queue owns the trace now; the root span stays open until the
		// job retires.
		admitSp.SetAttr("outcome", "queued")
		admitSp.End()
		resp.State = StateQueued.String()
		al.Info("submit", "name", spec.Name(), "outcome", "queued", "priority", spec.Priority.String())
		return resp, http.StatusAccepted, nil
	}
}

func (s *Server) rejectStatus(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", s.retryAfter())
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrTenantLimit):
		s.metrics.tenantLimit.Add(1)
		w.Header().Set("Retry-After", s.retryAfter())
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed), errors.Is(err, errJournal):
		w.Header().Set("Retry-After", "10")
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// parseProfile validates the opt-in ?profile= submit flag: "cpu" asks for a
// CPU-profile artifact next to the result, empty means none.
func parseProfile(r *http.Request) (bool, error) {
	switch r.URL.Query().Get("profile") {
	case "":
		return false, nil
	case "cpu":
		return true, nil
	default:
		return false, fmt.Errorf("serve: unknown profile %q (want cpu)", r.URL.Query().Get("profile"))
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining429(w) {
		return
	}
	profile, err := parseProfile(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decoding request: %w", err))
		return
	}
	spec, err := req.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec.Profile = profile
	resp, status, err := s.admit(req, spec)
	if err != nil {
		s.rejectStatus(w, err)
		return
	}
	w.Header().Set("X-Vcoma-Trace", resp.TraceID)
	writeJSON(w, status, resp)
}

// sweepRequest expands one request template over all five schemes.
type sweepRequest struct {
	Request
	// Schemes optionally restricts the sweep; empty = all five.
	Schemes []string `json:"schemes,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.draining429(w) {
		return
	}
	var req sweepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decoding request: %w", err))
		return
	}
	schemes := req.Schemes
	if len(schemes) == 0 {
		schemes = []string{"l0", "l1", "l2", "l3", "vcoma"}
	}
	var out []submitResponse
	for _, scheme := range schemes {
		one := req.Request
		one.Scheme = scheme
		spec, err := one.Resolve()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp, _, err := s.admit(one, spec)
		if err != nil {
			// Partial sweep: report what was admitted plus the refusal.
			s.rejectStatus(w, fmt.Errorf("%w (admitted %d of %d)", err, len(out), len(schemes)))
			return
		}
		out = append(out, resp)
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"jobs": out})
}

// validKey reports whether a {key} path segment is a well-formed job key:
// exactly the 64 lowercase hex digits of a sha256. The segment feeds the
// artifact store's file layout (and Go 1.22's ServeMux decodes %2F inside
// wildcards), so anything else — traversal sequences especially — must be
// rejected at the API boundary before it reaches any store or queue lookup.
func validKey(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// lookup validates the {key} path segment and resolves it against the
// queue. A malformed key resolves to the empty key, which misses every
// queue and store probe, so the handlers fall through to their 404s.
func (s *Server) lookup(r *http.Request) (runner.Key, *Job, bool) {
	raw := r.PathValue("key")
	if !validKey(raw) {
		return "", nil, false
	}
	key := runner.Key(raw)
	j, ok := s.queue.Get(key)
	return key, j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	key, j, ok := s.lookup(r)
	if ok {
		writeJSON(w, http.StatusOK, j.Snapshot())
		return
	}
	// Not in the queue's memory: a stored artifact still answers, so
	// results survive both retention eviction and restarts.
	if _, stored := s.store.GetRaw(key); stored {
		writeJSON(w, http.StatusOK, Status{Key: string(key), State: StateDone.String()})
		return
	}
	if s.mem.Has(key) {
		writeJSON(w, http.StatusOK, Status{Key: string(key), State: StateDone.String()})
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %.16s…", key))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key, j, ok := s.lookup(r)
	raw, stored := s.store.GetRaw(key)
	if stored {
		// The artifact bytes are served exactly as cached — the
		// byte-identity contract across coalesced waiters and restarts.
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
		return
	}
	// Degraded-mode fallback: results the store could not persist are still
	// byte-identical from the memory holdover.
	if raw, held := s.mem.Get(key); held {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Vcoma-Served-From", "memory")
		w.Write(raw)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %.16s…", key))
		return
	}
	switch j.State() {
	case StateFailed, StateCanceled, StateShed:
		writeJSON(w, http.StatusInternalServerError, j.Snapshot())
	default:
		w.Header().Set("Retry-After", s.retryAfter())
		writeJSON(w, http.StatusAccepted, j.Snapshot())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("key")
	if !validKey(raw) {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %.16s…", raw))
		return
	}
	key := runner.Key(raw)
	found, removed := s.queue.Cancel(key, r.URL.Query().Get("waiter"))
	if !found {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %.16s…", key))
		return
	}
	if !removed {
		writeError(w, http.StatusForbidden, errors.New("serve: cancel requires the waiter_id issued by your submit (?waiter=…)"))
		return
	}
	if j, ok := s.queue.Get(key); ok {
		// A queued job whose last waiter just left went terminal without a
		// worker ever seeing it; persist its trace here.
		if j.State() == StateCanceled {
			s.writeTrace(j)
			s.jobLog(j).Info("job canceled while queued", "name", j.Spec.Name())
		}
		writeJSON(w, http.StatusOK, j.Snapshot())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"key": string(key), "state": "canceled"})
}

func (s *Server) handleQueue(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"queue":  s.queue.Snapshot(),
		"store":  s.store.Snapshot(),
		"health": s.health.Snapshot(),
	})
}

// handleEvents streams a job's lifecycle as server-sent events: a `status`
// event per state change and a `progress` event per reporter line, with
// heartbeats so idle proxies keep the stream open. The stream ends when the
// job reaches a terminal state.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	_, j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: unknown job"))
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusNotImplemented, errors.New("serve: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	sent := 0 // progress lines already delivered
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		change := j.Watch()
		st := j.Snapshot()
		for ; sent < len(st.Progress); sent++ {
			fmt.Fprintf(w, "event: progress\ndata: %s\n\n", st.Progress[sent])
		}
		data, _ := json.Marshal(st)
		fmt.Fprintf(w, "event: status\ndata: %s\n\n", data)
		fl.Flush()
		if j.State().Terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.draining:
			return
		case <-heartbeat.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case <-change:
		}
	}
}
