package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// req builds a wire request for one cell; scheme and seed vary the key.
func req(scheme, prio, tenant string, seed uint64) Request {
	return Request{Bench: "RADIX", Scheme: scheme, Scale: "test", Priority: prio, Tenant: tenant, Seed: seed}
}

func mustSpec(t *testing.T, r Request) Spec {
	t.Helper()
	spec, err := r.Resolve()
	if err != nil {
		t.Fatalf("Resolve(%+v): %v", r, err)
	}
	return spec
}

func TestRequestKeyExcludesTenantAndPriority(t *testing.T) {
	a := mustSpec(t, req("l0", "high", "alice", 0))
	b := mustSpec(t, req("l0", "low", "bob", 0))
	if a.Key() != b.Key() {
		t.Fatalf("tenant/priority leaked into the key: %s vs %s", a.Key(), b.Key())
	}
	c := mustSpec(t, req("l1", "high", "alice", 0))
	if a.Key() == c.Key() {
		t.Fatalf("different schemes share a key")
	}
}

func TestSubmitCoalescesEqualKeys(t *testing.T) {
	q := NewQueue(8, 0)
	j1, w1, out1, err := q.Submit(mustSpec(t, req("l0", "normal", "alice", 0)))
	if err != nil || out1 != OutcomeQueued {
		t.Fatalf("first submit: %v %v", out1, err)
	}
	j2, w2, out2, err := q.Submit(mustSpec(t, req("l0", "normal", "bob", 0)))
	if err != nil || out2 != OutcomeCoalesced {
		t.Fatalf("second submit: %v %v", out2, err)
	}
	if j1 != j2 {
		t.Fatalf("coalesced submits produced distinct jobs")
	}
	if w1 == "" || w2 == "" || w1 == w2 {
		t.Fatalf("waiter ids not distinct: %q %q", w1, w2)
	}
	if st := q.Snapshot(); st.Queued != 1 || st.Coalesced != 1 {
		t.Fatalf("snapshot after coalesce: %+v", st)
	}
	if s := j1.Snapshot(); s.Waiters != 2 || s.Tenants != 2 {
		t.Fatalf("waiters=%d tenants=%d, want 2/2", s.Waiters, s.Tenants)
	}
}

func TestQueueFullRejects(t *testing.T) {
	q := NewQueue(2, 0)
	for i := uint64(1); i <= 2; i++ {
		if _, _, _, err := q.Submit(mustSpec(t, req("l0", "normal", "a", i))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// Same priority: nothing to shed, so the third request bounces.
	_, _, _, err := q.Submit(mustSpec(t, req("l0", "normal", "a", 3)))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow submit: got %v, want ErrOverloaded", err)
	}
}

func TestShedMakesRoomForHigherPriority(t *testing.T) {
	q := NewQueue(2, 0)
	var low []*Job
	for i := uint64(1); i <= 2; i++ {
		j, _, _, err := q.Submit(mustSpec(t, req("l0", "low", "a", i)))
		if err != nil {
			t.Fatalf("low submit %d: %v", i, err)
		}
		low = append(low, j)
	}
	hi, _, out, err := q.Submit(mustSpec(t, req("l0", "high", "b", 3)))
	if err != nil || out != OutcomeQueued {
		t.Fatalf("high submit: %v %v", out, err)
	}
	shed := 0
	for _, j := range low {
		if j.State() == StateShed {
			shed++
		}
	}
	if shed != 1 {
		t.Fatalf("shed %d low jobs, want exactly 1", shed)
	}
	if st := q.Snapshot(); st.Queued != 2 || st.Shed != 1 {
		t.Fatalf("snapshot after shed: %+v", st)
	}
	if hi.State() != StateQueued {
		t.Fatalf("high job state %v, want queued", hi.State())
	}
	// The remaining low job is still a victim for the next high submit…
	if _, _, _, err := q.Submit(mustSpec(t, req("l0", "high", "b", 4))); err != nil {
		t.Fatalf("second high submit: %v", err)
	}
	// …but once only high-priority work is queued, equal priority must
	// never shed: the next high submit bounces instead.
	if _, _, _, err := q.Submit(mustSpec(t, req("l0", "high", "b", 5))); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("equal-priority overflow: got %v, want ErrOverloaded", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	q := NewQueue(8, 0)
	j, w, _, err := q.Submit(mustSpec(t, req("l0", "normal", "a", 0)))
	if err != nil {
		t.Fatal(err)
	}
	if found, removed := q.Cancel(j.Key, w); !found || !removed {
		t.Fatalf("cancel with own waiter id: found=%v removed=%v", found, removed)
	}
	if j.State() != StateCanceled {
		t.Fatalf("state %v, want canceled", j.State())
	}
	if st := q.Snapshot(); st.Queued != 0 {
		t.Fatalf("queue still holds %d after cancel", st.Queued)
	}
	// The canceled job must never be dispatched.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if got, err := q.Next(ctx); err == nil {
		t.Fatalf("Next returned canceled job %s", got.Key)
	}
	// Its record survives in retention for status queries.
	if _, ok := q.Get(j.Key); !ok {
		t.Fatalf("canceled job dropped from retention")
	}
}

func TestCancelOnlyLastWaiterWithdraws(t *testing.T) {
	q := NewQueue(8, 0)
	j, w1, _, _ := q.Submit(mustSpec(t, req("l0", "normal", "a", 0)))
	_, w2, _, _ := q.Submit(mustSpec(t, req("l0", "normal", "b", 0))) // coalesce
	if found, removed := q.Cancel(j.Key, w1); !found || !removed || j.State() != StateQueued {
		t.Fatalf("first cancel should only drop one waiter (state %v)", j.State())
	}
	// Replaying a spent token (or guessing one) must not drain other
	// tenants' waiters: the key is shared, the token is not.
	if found, removed := q.Cancel(j.Key, w1); !found || removed {
		t.Fatalf("spent waiter id still cancels: found=%v removed=%v", found, removed)
	}
	if found, removed := q.Cancel(j.Key, "not-a-waiter"); !found || removed {
		t.Fatalf("bogus waiter id cancels: found=%v removed=%v", found, removed)
	}
	if j.State() != StateQueued {
		t.Fatalf("unauthorized cancels changed state to %v", j.State())
	}
	if found, removed := q.Cancel(j.Key, w2); !found || !removed || j.State() != StateCanceled {
		t.Fatalf("second cancel should withdraw the job (state %v)", j.State())
	}
}

func TestCancelRunningJobFiresContext(t *testing.T) {
	q := NewQueue(8, 0)
	j, w, _, _ := q.Submit(mustSpec(t, req("l0", "normal", "a", 0)))
	got, err := q.Next(context.Background())
	if err != nil || got != j {
		t.Fatalf("Next: %v %v", got, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.bindCancel(cancel)
	if found, removed := q.Cancel(j.Key, w); !found || !removed {
		t.Fatalf("cancel with own waiter id: found=%v removed=%v", found, removed)
	}
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatalf("cancel did not fire the running job's context")
	}
	q.Finish(j, context.Canceled)
	if j.State() != StateCanceled {
		t.Fatalf("state %v, want canceled", j.State())
	}
}

func TestTenantRoundRobin(t *testing.T) {
	q := NewQueue(16, 0)
	// Tenant a floods three jobs before tenant b's one arrives.
	for i := uint64(1); i <= 3; i++ {
		q.Submit(mustSpec(t, req("l0", "normal", "a", i)))
	}
	q.Submit(mustSpec(t, req("l0", "normal", "b", 10)))
	var order []string
	for i := 0; i < 4; i++ {
		j, err := q.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, j.Spec.Tenant)
	}
	// Round-robin: b is served second, not last.
	want := []string{"a", "b", "a", "a"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

func TestPriorityDispatchOrder(t *testing.T) {
	q := NewQueue(16, 0)
	lo, _, _, _ := q.Submit(mustSpec(t, req("l0", "low", "a", 1)))
	hi, _, _, _ := q.Submit(mustSpec(t, req("l0", "high", "a", 2)))
	j, err := q.Next(context.Background())
	if err != nil || j != hi {
		t.Fatalf("first dispatch %v, want the high-priority job", j.Spec.Priority)
	}
	j, err = q.Next(context.Background())
	if err != nil || j != lo {
		t.Fatalf("second dispatch %v, want the low-priority job", j.Spec.Priority)
	}
}

func TestCoalesceRaisesPriority(t *testing.T) {
	q := NewQueue(16, 0)
	j, _, _, _ := q.Submit(mustSpec(t, req("l0", "low", "a", 1)))
	q.Submit(mustSpec(t, req("l0", "normal", "a", 2)))
	// A high-priority waiter joins the low job: it must now dispatch first.
	q.Submit(mustSpec(t, req("l0", "high", "b", 1)))
	got, err := q.Next(context.Background())
	if err != nil || got != j {
		t.Fatalf("promoted job not dispatched first")
	}
}

func TestTenantLimit(t *testing.T) {
	q := NewQueue(16, 2)
	for i := uint64(1); i <= 2; i++ {
		if _, _, _, err := q.Submit(mustSpec(t, req("l0", "normal", "a", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := q.Submit(mustSpec(t, req("l0", "normal", "a", 3))); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("got %v, want ErrTenantLimit", err)
	}
	// Another tenant is unaffected.
	if _, _, _, err := q.Submit(mustSpec(t, req("l0", "normal", "b", 4))); err != nil {
		t.Fatalf("tenant b rejected: %v", err)
	}
}

func TestRequeueAfterDrain(t *testing.T) {
	q := NewQueue(8, 0)
	j, _, _, _ := q.Submit(mustSpec(t, req("l0", "normal", "a", 0)))
	if _, err := q.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	q.Requeue(j)
	if j.State() != StateQueued {
		t.Fatalf("state %v after requeue, want queued", j.State())
	}
	got, err := q.Next(context.Background())
	if err != nil || got != j {
		t.Fatalf("requeued job not redispatched")
	}
}
