package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"

	"vcoma/internal/fsio"
)

// fsFaultView is the /debug/fsfault introspection body.
type fsFaultView struct {
	Armed    string        `json:"armed"`
	Counters fsio.Counters `json:"counters"`
	Health   HealthStats   `json:"health"`
}

func (s *Server) fsFaultSnapshot() fsFaultView {
	return fsFaultView{
		Armed:    s.fs.ArmedSpec(),
		Counters: s.fs.Counters(),
		Health:   s.health.Snapshot(),
	}
}

func (s *Server) handleFsFaultGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fsFaultSnapshot())
}

// handleFsFaultSet swaps the armed failpoint spec at runtime: the plain-text
// body is a spec in the -fsfault grammar; an empty body disarms. Only
// registered when Options.FaultControl is set — this is the chaos drill's
// control surface, not part of the API.
func (s *Server) handleFsFaultSet(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4096))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: reading failpoint spec: %w", err))
		return
	}
	spec := strings.TrimSpace(string(body))
	if spec == "" {
		s.fs.SetFailpoints(nil)
		s.log.Warn("failpoints disarmed via /debug/fsfault")
		writeJSON(w, http.StatusOK, s.fsFaultSnapshot())
		return
	}
	fp, err := fsio.ParseFailpoints(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.fs.SetFailpoints(fp)
	s.log.Warn("failpoints armed via /debug/fsfault", "spec", spec)
	writeJSON(w, http.StatusOK, s.fsFaultSnapshot())
}
