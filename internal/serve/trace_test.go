package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"vcoma/internal/cli"
	"vcoma/internal/obs"
)

// syncBuf captures the server's log from concurrent goroutines.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// spanNames flattens a span tree into the set of span names it holds.
func spanNames(nodes []obs.SpanNode, into map[string]bool) {
	for _, n := range nodes {
		into[n.Name] = true
		spanNames(n.Children, into)
	}
}

// TestServiceTraceEndToEnd is the tentpole acceptance criterion: one
// submitted job yields the same trace id in the 202 body, the X-Vcoma-Trace
// header, every structured log line about the job, the /trace span tree —
// which holds the full accept-to-simulate chain — and the persisted
// Perfetto file.
func TestServiceTraceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	logBuf := &syncBuf{}
	_, ts, _ := testServer(t, dir, func(o *Options) {
		o.Log = cli.NewLogger(logBuf, "vcoma-serve", "json", slog.LevelDebug)
	})

	code, body, hdr := post(t, ts.URL+"/v1/jobs", Request{Bench: "RADIX", Scheme: "l0", Scale: "test", Tenant: "tracer"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, body)
	}
	var resp submitResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID == "" || !obs.ValidTraceID(resp.TraceID) {
		t.Fatalf("202 carried no valid trace id: %q", resp.TraceID)
	}
	if got := hdr.Get("X-Vcoma-Trace"); got != resp.TraceID {
		t.Fatalf("X-Vcoma-Trace %q != body trace_id %q", got, resp.TraceID)
	}
	if resp.Trace == "" {
		t.Fatal("202 carried no trace_url")
	}
	waitFor(t, "job done", func() bool { return jobState(t, ts.URL, resp.Key) == "done" })

	// The status snapshot names the same trace.
	var st Status
	_, stBody := get(t, ts.URL+"/v1/jobs/"+resp.Key)
	if err := json.Unmarshal(stBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.TraceID != resp.TraceID {
		t.Fatalf("status trace_id %q != submit trace_id %q", st.TraceID, resp.TraceID)
	}

	// The span tree is served under the same id and holds the whole chain
	// from HTTP accept to the simulation pass.
	code, tb := get(t, ts.URL+resp.Trace)
	if code != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", resp.Trace, code, tb)
	}
	var tree obs.SpanTree
	if err := json.Unmarshal(tb, &tree); err != nil {
		t.Fatalf("span tree is not valid JSON: %v", err)
	}
	if string(tree.TraceID) != resp.TraceID {
		t.Fatalf("span tree trace_id %q != submit trace_id %q", tree.TraceID, resp.TraceID)
	}
	names := map[string]bool{}
	spanNames(tree.Spans, names)
	for _, want := range []string{"request", "admit", "journal-fsync", "queue-wait", "run", "build", "simulate"} {
		if !names[want] {
			t.Errorf("span tree lacks the %s span (has %v)", want, names)
		}
	}

	// A Perfetto-loadable trace file is persisted next to the spans and
	// carries the id.
	chrome, err := os.ReadFile(filepath.Join(dir, "traces", resp.Key+".trace.json"))
	if err != nil {
		t.Fatalf("persisted Perfetto trace: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &doc); err != nil {
		t.Fatalf("Perfetto trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("Perfetto trace holds no events")
	}
	if !bytes.Contains(chrome, []byte(resp.TraceID)) {
		t.Fatal("Perfetto trace lacks the trace id")
	}

	// A plain submit must not have produced a profile artifact.
	if code, _ := get(t, ts.URL+"/v1/jobs/"+resp.Key+"/profile"); code != http.StatusNotFound {
		t.Fatalf("unprofiled job serves a profile: %d", code)
	}

	// Every log line about this job carries the trace id — the grep contract
	// operators rely on.
	jobLines := 0
	for _, line := range strings.Split(logBuf.String(), "\n") {
		if !strings.Contains(line, `"job_key":"`+resp.Key+`"`) {
			continue
		}
		jobLines++
		if !strings.Contains(line, `"trace_id":"`+resp.TraceID+`"`) {
			t.Errorf("job log line lacks trace_id: %s", line)
		}
	}
	if jobLines < 2 {
		t.Fatalf("expected at least start+done log lines for the job, got %d", jobLines)
	}
}

// TestServiceProfileCapture pins the opt-in CPU-profile artifact: a submit
// with ?profile=cpu stores a pprof profile next to the result (created
// before the store's shard directory exists — a regression), served by
// GET /v1/jobs/{key}/profile, and counted by vcoma_serve_profiles.
func TestServiceProfileCapture(t *testing.T) {
	_, ts, _ := testServer(t, t.TempDir(), nil)

	code, body, _ := post(t, ts.URL+"/v1/jobs?profile=cpu", Request{Bench: "RADIX", Scheme: "l1", Scale: "test"})
	if code != http.StatusAccepted {
		t.Fatalf("profiled submit: %d: %s", code, body)
	}
	var resp submitResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "profiled job done", func() bool { return jobState(t, ts.URL, resp.Key) == "done" })

	code, prof := get(t, ts.URL+"/v1/jobs/"+resp.Key+"/profile")
	if code != http.StatusOK {
		t.Fatalf("GET profile: %d: %s", code, prof)
	}
	if len(prof) == 0 {
		t.Fatal("profile artifact is empty")
	}
	if got := metricValue(t, ts.URL, "serve/profiles"); got != 1 {
		t.Fatalf("serve/profiles = %g, want 1", got)
	}

	// An unknown profile kind is rejected before the body is even decoded.
	code, _, _ = post(t, ts.URL+"/v1/jobs?profile=heap", Request{Bench: "RADIX", Scheme: "l1", Scale: "test"})
	if code != http.StatusBadRequest {
		t.Fatalf("profile=heap: %d, want 400", code)
	}
}
