package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"vcoma/internal/runner"
)

// fill puts a payload of roughly size bytes under a derived key and
// accounts it in the store.
func fill(t *testing.T, s *Store, i int, size int) runner.Key {
	t.Helper()
	key := runner.KeyOf("store-test", i)
	payload := make([]byte, size)
	for j := range payload {
		payload[j] = byte('a' + i%26)
	}
	if err := s.Cache().Put(key, fmt.Sprintf("job-%d", i), string(payload)); err != nil {
		t.Fatal(err)
	}
	s.Note(key)
	return key
}

func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// Each entry is ~1.2 KB on disk (payload + envelope); cap at ~4 KB so
	// the fourth insert evicts the least recently used.
	s, err := OpenStore(dir, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	k0 := fill(t, s, 0, 1024)
	k1 := fill(t, s, 1, 1024)
	k2 := fill(t, s, 2, 1024)
	// Touch k0 so k1 is now the least recently used.
	if _, ok := s.GetRaw(k0); !ok {
		t.Fatalf("k0 missing before eviction")
	}
	k3 := fill(t, s, 3, 1024)
	if _, ok := s.GetRaw(k1); ok {
		t.Fatalf("k1 survived eviction; LRU order ignored")
	}
	for _, k := range []runner.Key{k0, k2, k3} {
		if _, ok := s.GetRaw(k); !ok {
			t.Fatalf("recently-used key %.16s… evicted", k)
		}
	}
	st := s.Snapshot()
	if st.Evicted == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("store over budget after eviction: %+v", st)
	}
}

func TestStoreReindexAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k0 := fill(t, s, 0, 512)
	time.Sleep(10 * time.Millisecond) // distinct mtimes order the reseeded LRU
	k1 := fill(t, s, 1, 512)

	// Reopen with a budget that only fits one entry: the older k0 goes.
	s2, err := OpenStore(dir, 900)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.GetRaw(k1); !ok {
		t.Fatalf("newest entry evicted at reopen")
	}
	if _, ok := s2.GetRaw(k0); ok {
		t.Fatalf("oldest entry survived a one-entry budget")
	}
}

// TestEvictionRacesConcurrentRead drives GetRaw and Note/evict from
// separate goroutines (run under -race): a reader racing an eviction must
// see either valid bytes or a clean miss — never a torn read or a data
// race. The runner cache guarantees this via atomic replace/unlink; this
// test pins the Store's locking on top of it.
func TestEvictionRacesConcurrentRead(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 3<<10) // ~2 entries resident at a time
	if err != nil {
		t.Fatal(err)
	}
	hot := fill(t, s, 0, 1024)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			raw, ok := s.GetRaw(hot)
			if ok && len(raw) == 0 {
				t.Error("torn read: ok with empty payload")
				return
			}
		}
	}()
	// Writer loop: churn new entries so the bound keeps evicting, the hot
	// key included whenever the reader hasn't touched it recently enough.
	for i := 1; i < 60; i++ {
		fill(t, s, i, 1024)
	}
	close(stop)
	wg.Wait()

	if st := s.Snapshot(); st.Bytes > st.MaxBytes {
		t.Fatalf("store over budget after churn: %+v", st)
	}
}

func TestStoreQuarantineSurvivesAccounting(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := fill(t, s, 0, 256)
	// Corrupt the entry in place: the next read quarantines it and reports
	// a miss, and the store drops it from the LRU accounting.
	path := s.Cache().EntryPath(k)
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Cache().SetLog(nil)
	if _, ok := s.GetRaw(k); ok {
		t.Fatalf("corrupt entry served")
	}
	if got := s.Snapshot().Quarantined; got != 1 {
		t.Fatalf("quarantined=%d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine")); err != nil {
		t.Fatalf("quarantine dir missing: %v", err)
	}
	if s.Snapshot().Entries != 0 {
		t.Fatalf("quarantined entry still accounted: %+v", s.Snapshot())
	}
}
