package serve

import (
	"fmt"
	"testing"

	"vcoma/internal/fsio"
	"vcoma/internal/fsio/crashsim"
	"vcoma/internal/runner"
)

// TestCrashSweepAcceptJournal replays every power-cut prefix of a recorded
// accept/retire story and asserts the journal's recovery invariants: reopen
// never errors (compaction tolerates any torn tail), the pending set it
// replays is always a subset of the accepts that were made durable, and a
// second reopen (compaction idempotence) replays the identical set.
func TestCrashSweepAcceptJournal(t *testing.T) {
	reqs := make([]Request, 3)
	accepted := map[runner.Key]bool{}
	for i := range reqs {
		reqs[i] = Request{Bench: "RADIX", Scheme: []string{"l0", "l1", "l2"}[i], Scale: "test", Seed: 7}
	}

	root := t.TempDir()
	fs := fsio.New(nil)
	rec := fsio.NewRecorder(root, true)
	fs.SetRecorder(rec)
	j, pending, err := OpenJournalFS(root, fs)
	if err != nil {
		t.Fatalf("OpenJournalFS: %v", err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal replayed %d pending", len(pending))
	}
	for _, r := range reqs {
		spec, err := r.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Accept(spec.Key(), r); err != nil {
			t.Fatalf("Accept: %v", err)
		}
		accepted[spec.Key()] = true
	}
	// Retire the first (done) and cancel the second; the third stays pending.
	spec0, _ := reqs[0].Resolve()
	spec1, _ := reqs[1].Resolve()
	spec2, _ := reqs[2].Resolve()
	if err := j.Done(spec0.Key()); err != nil {
		t.Fatalf("Done: %v", err)
	}
	if err := j.Cancel(spec1.Key()); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	err = crashsim.Run(rec.Ops(), t.TempDir(), func(dir string) error {
		jj, pend, err := OpenJournal(dir)
		if err != nil {
			return fmt.Errorf("reopen: %w", err)
		}
		jj.Close()
		seen := map[runner.Key]bool{}
		for _, r := range pend {
			sp, err := r.Resolve()
			if err != nil {
				return fmt.Errorf("pending request does not resolve: %w", err)
			}
			if !accepted[sp.Key()] {
				return fmt.Errorf("pending key %.8s was never accepted", sp.Key())
			}
			if seen[sp.Key()] {
				return fmt.Errorf("pending key %.8s replayed twice", sp.Key())
			}
			seen[sp.Key()] = true
		}
		// Idempotence: reopening the compacted journal replays the same set.
		jj2, pend2, err := OpenJournal(dir)
		if err != nil {
			return fmt.Errorf("second reopen: %w", err)
		}
		jj2.Close()
		if len(pend2) != len(pend) {
			return fmt.Errorf("compaction not idempotent: %d then %d pending", len(pend), len(pend2))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("crash sweep: %v", err)
	}

	// The full, uninterrupted state must replay exactly the unretired accept.
	_, pend, err := OpenJournal(root)
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	if len(pend) != 1 {
		t.Fatalf("final pending = %d requests, want 1", len(pend))
	}
	if sp, _ := pend[0].Resolve(); sp.Key() != spec2.Key() {
		t.Fatalf("final pending key %.8s, want %.8s", sp.Key(), spec2.Key())
	}
}
