package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vcoma/internal/fsio"
	"vcoma/internal/runner"
)

// postText POSTs a plain-text body (the /debug/fsfault control format).
func postText(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func healthzBody(t *testing.T, base string) string {
	t.Helper()
	_, body := get(t, base+"/healthz")
	return strings.TrimSpace(string(body))
}

// TestDegradedServingUnderENOSPC is the tentpole's serving contract: with
// the artifact store's disk full, a submitted job still computes, its result
// is served byte-identically from memory, the server reports degraded on
// /healthz and /metrics, and clearing the fault heals it via the write probe.
func TestDegradedServingUnderENOSPC(t *testing.T) {
	req := Request{Bench: "RADIX", Scheme: "l0", Scale: "test", Seed: 9}

	// Reference bytes from a healthy server.
	_, healthyTS, healthyStop := testServer(t, t.TempDir(), nil)
	refKey := submitKey(t, healthyTS.URL, req, http.StatusAccepted)
	waitFor(t, "reference job done", func() bool { return jobState(t, healthyTS.URL, refKey) == StateDone.String() })
	code, ref := get(t, healthyTS.URL+"/v1/jobs/"+refKey+"/result")
	if code != http.StatusOK {
		t.Fatalf("reference result: %d", code)
	}
	healthyStop()

	// Degraded server: every artifact put and every self-heal probe hits
	// ENOSPC, so degraded mode must hold until the spec is cleared.
	fs := fsio.New(fsio.MustFailpoints("enospc:put:*,enospc:probe:*"))
	s, ts, _ := testServer(t, t.TempDir(), func(o *Options) {
		o.FS = fs
		o.FaultControl = true
		o.ProbeInterval = 20 * time.Millisecond
	})

	key := submitKey(t, ts.URL, req, http.StatusAccepted)
	if key != refKey {
		t.Fatalf("key mismatch: %s vs %s", key, refKey)
	}
	waitFor(t, "job done despite dead store", func() bool { return jobState(t, ts.URL, key) == StateDone.String() })

	// The result is served from memory, byte-identical to the healthy run.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + key + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got := new(bytes.Buffer)
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded result: %d: %s", resp.StatusCode, got)
	}
	if resp.Header.Get("X-Vcoma-Served-From") != "memory" {
		t.Fatalf("result not served from memory (header %q)", resp.Header.Get("X-Vcoma-Served-From"))
	}
	if !bytes.Equal(got.Bytes(), ref) {
		t.Fatalf("memory-served result differs from stored reference:\n got %.120s\nwant %.120s", got, ref)
	}
	if n := countArtifacts(t, s.opts.StateDir); n != 0 {
		t.Fatalf("%d artifact files materialized despite ENOSPC", n)
	}

	// Health surfaces on /healthz and /metrics.
	if h := healthzBody(t, ts.URL); h != "degraded" {
		t.Fatalf("healthz = %q, want degraded", h)
	}
	if v := metricValue(t, ts.URL, "serve/degraded"); v != 1 {
		t.Fatalf("serve/degraded = %g, want 1", v)
	}
	if v := metricValue(t, ts.URL, "serve/mem.results"); v < 1 {
		t.Fatalf("serve/mem.results = %g, want >= 1", v)
	}
	if v := metricValue(t, ts.URL, "fsio/injected"); v < 1 {
		t.Fatalf("fsio/injected = %g, want >= 1", v)
	}

	// A repeat submit answers 200 from the memory holdover — no recompute.
	repeat := submitJob(t, ts.URL, req, http.StatusOK)
	if repeat.State != StateDone.String() {
		t.Fatalf("repeat submit state = %s", repeat.State)
	}

	// Clearing the failpoints over /debug/fsfault lets the probe heal it.
	if code, body := postText(t, ts.URL+"/debug/fsfault", ""); code != http.StatusOK {
		t.Fatalf("fsfault clear: %d: %s", code, body)
	}
	waitFor(t, "probe heal", func() bool { return healthzBody(t, ts.URL) == "ok" })
	if v := metricValue(t, ts.URL, "serve/degraded"); v != 0 {
		t.Fatalf("serve/degraded after heal = %g, want 0", v)
	}
}

// countArtifacts counts artifact payload files under StateDir/artifacts.
func countArtifacts(t *testing.T, stateDir string) int {
	t.Helper()
	n := 0
	filepath.WalkDir(filepath.Join(stateDir, "artifacts"), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") && !strings.HasSuffix(path, ".metrics.json") {
			n++
		}
		return nil
	})
	return n
}

// TestJournalFailureRefusesAcceptWith503 is the 202 contract: an accept
// whose journal record cannot be made durable is refused with 503 +
// Retry-After, never acknowledged, and flips the server degraded.
func TestJournalFailureRefusesAcceptWith503(t *testing.T) {
	fs := fsio.New(nil)
	s, ts, _ := testServer(t, t.TempDir(), func(o *Options) {
		o.FS = fs
		o.FaultControl = true
		o.ProbeInterval = 20 * time.Millisecond
	})
	// Arm after boot (the spec would otherwise fail journal open): journal
	// appends die, and so do probes, pinning degraded mode open.
	fs.SetFailpoints(fsio.MustFailpoints("eio:append:*,eio:probe:*"))

	code, body, hdr := post(t, ts.URL+"/v1/jobs", Request{Bench: "RADIX", Scheme: "l1", Scale: "test"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit with dead journal: code %d: %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatalf("503 without Retry-After")
	}
	if !s.health.Degraded() {
		t.Fatalf("journal failure did not degrade the server")
	}
	if h := healthzBody(t, ts.URL); h != "degraded" {
		t.Fatalf("healthz = %q, want degraded", h)
	}

	// GET /debug/fsfault reports the armed spec and injected counts.
	if _, body := get(t, ts.URL+"/debug/fsfault"); !strings.Contains(string(body), "eio:append:*") {
		t.Fatalf("fsfault introspection missing armed spec: %s", body)
	}

	// Disarm: the probe heals, and the same submit is accepted durably.
	fs.SetFailpoints(nil)
	waitFor(t, "probe heal", func() bool { return healthzBody(t, ts.URL) == "ok" })
	key := submitKey(t, ts.URL, Request{Bench: "RADIX", Scheme: "l1", Scale: "test"}, http.StatusAccepted)
	waitFor(t, "job done after heal", func() bool { return jobState(t, ts.URL, key) == StateDone.String() })
}

// TestFsFaultControlRejectsBadSpec guards the runtime control endpoint.
func TestFsFaultControlRejectsBadSpec(t *testing.T) {
	_, ts, _ := testServer(t, t.TempDir(), func(o *Options) {
		o.FaultControl = true
	})
	if code, _ := postText(t, ts.URL+"/debug/fsfault", "bogus:spec:here:extra"); code != http.StatusBadRequest {
		t.Fatalf("bad spec accepted: %d", code)
	}
	// Without FaultControl the routes do not exist.
	_, ts2, _ := testServer(t, t.TempDir(), nil)
	if code, _ := get(t, ts2.URL+"/debug/fsfault"); code != http.StatusNotFound {
		t.Fatalf("fsfault exposed without FaultControl: %d", code)
	}
}

// TestTornPersistedTraceServes404 is satellite 2's recovery behavior: a
// span dump a crash tore mid-write is indistinguishable from absent.
func TestTornPersistedTraceServes404(t *testing.T) {
	s, ts, _ := testServer(t, t.TempDir(), nil)
	key := runner.Key(strings.Repeat("ab", 32))
	if err := os.MkdirAll(s.traceDir(), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.spanPath(key), []byte(`{"name":"request","spans":[{"na`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, body := get(t, ts.URL+"/v1/jobs/"+string(key)+"/trace"); code != http.StatusNotFound {
		t.Fatalf("torn trace served: %d: %s", code, body)
	}
	// A whole file still serves.
	if err := os.WriteFile(s.spanPath(key), []byte(`{"name":"request"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/"+string(key)+"/trace"); code != http.StatusOK {
		t.Fatalf("whole trace not served: %d", code)
	}
}

// TestStoreEvictionUnderRemoveFailure: a store whose unlink fails must keep
// its LRU accounting matched to what is actually on disk — no phantom free
// space, every entry still readable.
func TestStoreEvictionUnderRemoveFailure(t *testing.T) {
	dir := t.TempDir()
	fs := fsio.New(nil)
	st, err := OpenStoreFS(dir, 1, fs) // 1 byte: everything over-budget
	if err != nil {
		t.Fatal(err)
	}
	st.Cache().SetLog(nil)
	keys := make([]runner.Key, 3)
	for i := range keys {
		keys[i] = runner.KeyOf("serve-evict", i)
		if err := st.Cache().Put(keys[i], "job", map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	fs.SetFailpoints(fsio.MustFailpoints("eio:evict:*"))
	for _, k := range keys {
		st.Note(k)
	}
	snap := st.Snapshot()
	if snap.Entries != 3 || snap.Evicted != 0 {
		t.Fatalf("accounting drifted under failed eviction: %+v", snap)
	}
	for _, k := range keys {
		if _, ok := st.GetRaw(k); !ok {
			t.Fatalf("entry %.8s lost under failed eviction", k)
		}
	}
	// Disarm: the next Note drains the over-budget tail for real.
	fs.SetFailpoints(nil)
	st.Note(keys[2])
	snap = st.Snapshot()
	if snap.Evicted == 0 || snap.Entries >= 3 {
		t.Fatalf("eviction did not resume after disarm: %+v", snap)
	}
	if fmt.Sprint(snap.Quarantined) != "0" {
		t.Fatalf("eviction quarantined entries: %+v", snap)
	}
}
