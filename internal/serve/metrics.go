package serve

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"vcoma/internal/obs"
)

// serverMetrics is the service's own instrumentation. The obs package's
// instruments are deliberately single-threaded (simulation-loop speed), so
// the HTTP layer keeps its hot counters in atomics and exposes them to the
// obs.Registry as probes, and serializes histogram access behind a mutex.
type serverMetrics struct {
	reg *obs.Registry

	submits      atomic.Uint64 // accepted requests (incl. coalesced)
	coalesced    atomic.Uint64 // requests joined onto an in-flight job
	storeHits    atomic.Uint64 // requests answered from the artifact store
	simsExecuted atomic.Uint64 // simulations actually run (not cache hits)
	rejected     atomic.Uint64 // 429s (queue full)
	tenantLimit  atomic.Uint64 // 429s (per-tenant bound)
	shed         atomic.Uint64 // queued jobs evicted for higher priority
	canceled     atomic.Uint64 // jobs whose every waiter gave up
	failed       atomic.Uint64 // simulations that errored
	resumed      atomic.Uint64 // jobs re-enqueued from the journal at boot

	hmu       sync.Mutex
	queueWait *obs.Histogram // milliseconds queued before a worker picked it up
	runTime   *obs.Histogram // milliseconds simulating (fresh runs only)
}

func newServerMetrics(queue *Queue, store *Store) *serverMetrics {
	m := &serverMetrics{reg: obs.NewRegistry()}
	probe := func(name string, v *atomic.Uint64) {
		m.reg.Probe(name, func() float64 { return float64(v.Load()) })
	}
	probe("serve/submits", &m.submits)
	probe("serve/coalesced", &m.coalesced)
	probe("serve/store.hits", &m.storeHits)
	probe("serve/sims.executed", &m.simsExecuted)
	probe("serve/rejected.overload", &m.rejected)
	probe("serve/rejected.tenant", &m.tenantLimit)
	probe("serve/shed", &m.shed)
	probe("serve/canceled", &m.canceled)
	probe("serve/failed", &m.failed)
	probe("serve/resumed", &m.resumed)
	m.reg.Probe("serve/queue.depth", func() float64 { return float64(queue.Snapshot().Queued) })
	m.reg.Probe("serve/queue.running", func() float64 { return float64(queue.Snapshot().Running) })
	m.reg.Probe("serve/store.bytes", func() float64 { return float64(store.Snapshot().Bytes) })
	m.reg.Probe("serve/store.entries", func() float64 { return float64(store.Snapshot().Entries) })
	m.reg.Probe("serve/store.evicted", func() float64 { return float64(store.Snapshot().Evicted) })
	m.reg.Probe("serve/store.quarantined", func() float64 { return float64(store.Snapshot().Quarantined) })
	m.queueWait = m.reg.Histogram("serve/lat.queue_wait_ms")
	m.runTime = m.reg.Histogram("serve/lat.run_ms")
	return m
}

func (m *serverMetrics) observeQueueWait(ms uint64) {
	m.hmu.Lock()
	m.queueWait.Observe(ms)
	m.hmu.Unlock()
}

func (m *serverMetrics) observeRunTime(ms uint64) {
	m.hmu.Lock()
	m.runTime.Observe(ms)
	m.hmu.Unlock()
}

// write renders the text exposition for GET /metrics: one `name value` line
// per scalar metric, then count/sum/max plus cumulative `le` buckets per
// histogram — greppable by scripts and close enough to the common scrape
// formats to be machine-ingested.
func (m *serverMetrics) write(w io.Writer) {
	for _, name := range m.reg.Names() {
		if v, ok := m.reg.Value(name); ok {
			fmt.Fprintf(w, "%s %g\n", name, v)
		}
	}
	m.hmu.Lock()
	hists := m.reg.Histograms()
	m.hmu.Unlock()
	for _, h := range hists {
		fmt.Fprintf(w, "%s.count %d\n", h.Name, h.Count)
		fmt.Fprintf(w, "%s.sum %d\n", h.Name, h.Sum)
		fmt.Fprintf(w, "%s.max %d\n", h.Name, h.Max)
		cum := uint64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s.bucket{le=%q} %d\n", h.Name, fmt.Sprint(b.Hi), cum)
		}
	}
}
