package serve

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"vcoma/internal/obs"
)

// serverMetrics is the service's own instrumentation. The obs package's
// instruments are deliberately single-threaded (simulation-loop speed), so
// the HTTP layer keeps its hot counters in atomics and exposes them to the
// obs.Registry as probes, and serializes histogram access behind a mutex.
type serverMetrics struct {
	reg *obs.Registry

	submits      atomic.Uint64 // accepted requests (incl. coalesced)
	coalesced    atomic.Uint64 // requests joined onto an in-flight job
	storeHits    atomic.Uint64 // requests answered from the artifact store
	simsExecuted atomic.Uint64 // simulations actually run (not cache hits)
	rejected     atomic.Uint64 // 429s (queue full)
	tenantLimit  atomic.Uint64 // 429s (per-tenant bound)
	shed         atomic.Uint64 // queued jobs evicted for higher priority
	canceled     atomic.Uint64 // jobs whose every waiter gave up
	failed       atomic.Uint64 // simulations that errored
	resumed      atomic.Uint64 // jobs re-enqueued from the journal at boot
	profiles     atomic.Uint64 // CPU-profile artifacts captured

	hmu       sync.Mutex
	queueWait *obs.Histogram // milliseconds queued before a worker picked it up
	runTime   *obs.Histogram // milliseconds simulating (fresh runs only)
}

// metricMeta maps each registry name to its Prometheus HELP text and TYPE.
// Names absent from the table are exposed as untyped gauges without help —
// nothing is silently dropped when someone registers a new probe.
var metricMeta = map[string]struct{ Help, Type string }{
	"serve/submits":           {"Accepted requests, including coalesced joins.", "counter"},
	"serve/coalesced":         {"Requests joined onto an already in-flight job.", "counter"},
	"serve/store.hits":        {"Requests answered directly from the artifact store.", "counter"},
	"serve/sims.executed":     {"Simulations actually executed (store misses).", "counter"},
	"serve/rejected.overload": {"Submits rejected because the queue was full with no shed victim.", "counter"},
	"serve/rejected.tenant":   {"Submits rejected by the per-tenant queued-job bound.", "counter"},
	"serve/shed":              {"Queued jobs evicted to admit higher-priority work.", "counter"},
	"serve/canceled":          {"Jobs canceled because every waiter withdrew.", "counter"},
	"serve/failed":            {"Jobs whose simulation errored.", "counter"},
	"serve/resumed":           {"Jobs re-enqueued from the accept journal at boot.", "counter"},
	"serve/profiles":          {"CPU-profile artifacts captured alongside results.", "counter"},
	"serve/queue.depth":       {"Jobs currently queued.", "gauge"},
	"serve/queue.running":     {"Jobs currently being simulated.", "gauge"},
	"serve/store.bytes":       {"Artifact store payload bytes on disk.", "gauge"},
	"serve/store.entries":     {"Artifact store entries on disk.", "gauge"},
	"serve/store.evicted":     {"Artifacts evicted by the store's LRU bound.", "counter"},
	"serve/store.quarantined": {"Corrupt artifacts quarantined by checksum verification.", "counter"},
	"serve/lat.queue_wait_ms": {"Milliseconds a job waited in queue before dispatch.", "histogram"},
	"serve/lat.run_ms":        {"Milliseconds a fresh simulation took end to end.", "histogram"},
	"serve/degraded":          {"1 while the server is in storage-degraded mode, else 0.", "gauge"},
	"serve/write.failures":    {"Durable write failures (journal, artifact puts, traces).", "counter"},
	"serve/probe.failures":    {"Failed degraded-mode self-heal write probes.", "counter"},
	"serve/mem.results":       {"Results currently held only in memory (store bypass).", "gauge"},
	"serve/mem.served":        {"Result reads answered from the memory holdover.", "counter"},
	"fsio/ops":                {"Filesystem operations through the fsio seam.", "counter"},
	"fsio/errors":             {"Filesystem operations that returned an error.", "counter"},
	"fsio/injected":           {"Filesystem errors injected by armed failpoints.", "counter"},
}

func newServerMetrics(s *Server) *serverMetrics {
	queue, store := s.queue, s.store
	m := &serverMetrics{reg: obs.NewRegistry()}
	probe := func(name string, v *atomic.Uint64) {
		m.reg.Probe(name, func() float64 { return float64(v.Load()) })
	}
	probe("serve/submits", &m.submits)
	probe("serve/coalesced", &m.coalesced)
	probe("serve/store.hits", &m.storeHits)
	probe("serve/sims.executed", &m.simsExecuted)
	probe("serve/rejected.overload", &m.rejected)
	probe("serve/rejected.tenant", &m.tenantLimit)
	probe("serve/shed", &m.shed)
	probe("serve/canceled", &m.canceled)
	probe("serve/failed", &m.failed)
	probe("serve/resumed", &m.resumed)
	probe("serve/profiles", &m.profiles)
	m.reg.Probe("serve/queue.depth", func() float64 { return float64(queue.Snapshot().Queued) })
	m.reg.Probe("serve/queue.running", func() float64 { return float64(queue.Snapshot().Running) })
	m.reg.Probe("serve/store.bytes", func() float64 { return float64(store.Snapshot().Bytes) })
	m.reg.Probe("serve/store.entries", func() float64 { return float64(store.Snapshot().Entries) })
	m.reg.Probe("serve/store.evicted", func() float64 { return float64(store.Snapshot().Evicted) })
	m.reg.Probe("serve/store.quarantined", func() float64 { return float64(store.Snapshot().Quarantined) })
	m.reg.Probe("serve/degraded", func() float64 {
		if s.health.Degraded() {
			return 1
		}
		return 0
	})
	m.reg.Probe("serve/write.failures", func() float64 { return float64(s.health.Snapshot().WriteFailures) })
	m.reg.Probe("serve/probe.failures", func() float64 { return float64(s.health.Snapshot().ProbeFailures) })
	m.reg.Probe("serve/mem.results", func() float64 { return float64(s.mem.Len()) })
	m.reg.Probe("serve/mem.served", func() float64 { return float64(s.mem.Served()) })
	m.reg.Probe("fsio/ops", func() float64 { return float64(s.fs.Counters().Ops) })
	m.reg.Probe("fsio/errors", func() float64 { return float64(s.fs.Counters().Errors) })
	m.reg.Probe("fsio/injected", func() float64 { return float64(s.fs.Counters().Injected) })
	m.queueWait = m.reg.Histogram("serve/lat.queue_wait_ms")
	m.runTime = m.reg.Histogram("serve/lat.run_ms")
	return m
}

func (m *serverMetrics) observeQueueWait(ms uint64) {
	m.hmu.Lock()
	m.queueWait.Observe(ms)
	m.hmu.Unlock()
}

func (m *serverMetrics) observeRunTime(ms uint64) {
	m.hmu.Lock()
	m.runTime.Observe(ms)
	m.hmu.Unlock()
}

// promName maps an internal registry name ("serve/lat.queue_wait_ms") to a
// legal Prometheus metric name ("vcoma_serve_lat_queue_wait_ms"): every
// non-alphanumeric rune becomes an underscore under a vcoma_ namespace.
func promName(name string) string {
	b := make([]byte, 0, len(name)+6)
	b = append(b, "vcoma_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// write renders GET /metrics in the Prometheus text exposition format:
// every series preceded by its # HELP and # TYPE lines, histograms as
// cumulative _bucket{le="..."} series (power-of-two upper bounds, closed by
// le="+Inf") plus _sum and _count. The histogram's observed maximum, which
// the bucket layout would otherwise round up, is kept as a companion
// _max gauge.
func (m *serverMetrics) write(w io.Writer) {
	for _, name := range m.reg.Names() {
		v, ok := m.reg.Value(name)
		if !ok {
			continue
		}
		pn := promName(name)
		meta := metricMeta[name]
		if meta.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", pn, meta.Help)
		}
		typ := meta.Type
		if typ == "" {
			typ = "gauge"
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", pn, typ)
		fmt.Fprintf(w, "%s %g\n", pn, v)
	}
	m.hmu.Lock()
	hists := m.reg.Histograms()
	m.hmu.Unlock()
	for _, h := range hists {
		pn := promName(h.Name)
		if meta := metricMeta[h.Name]; meta.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", pn, meta.Help)
		}
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		cum := uint64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.Hi, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
		fmt.Fprintf(w, "# TYPE %s_max gauge\n", pn)
		fmt.Fprintf(w, "%s_max %d\n", pn, h.Max)
	}
}
