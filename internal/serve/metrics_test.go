package serve

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// TestMetricsPrometheusExposition validates GET /metrics against the text
// exposition format: every sample under the vcoma_ namespace with a TYPE
// declaration, histograms rendered as cumulative _bucket{le="..."} series
// closed by +Inf and accompanied by _sum/_count, and no internal registry
// names leaking through.
func TestMetricsPrometheusExposition(t *testing.T) {
	_, ts, _ := testServer(t, t.TempDir(), nil)

	// One real run so the latency histograms hold observations.
	key := submitKey(t, ts.URL, Request{Bench: "RADIX", Scheme: "l0", Scale: "test"}, http.StatusAccepted)
	waitFor(t, "job done", func() bool { return jobState(t, ts.URL, key) == "done" })

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q, want text exposition v0.0.4", ct)
	}

	types := map[string]string{}  // series name -> declared TYPE
	help := map[string]bool{}     // series with a HELP line
	values := map[string]float64{} // full sample name (incl. labels) -> value
	var order []string             // sample names in exposition order
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("HELP line without text: %q", line)
			}
			help[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("TYPE line declares unknown type: %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		name, val := line[:i], line[i+1:]
		if !strings.HasPrefix(name, "vcoma_") {
			t.Fatalf("sample outside the vcoma_ namespace: %q", line)
		}
		if strings.Contains(name, "/") {
			t.Fatalf("internal registry name leaked: %q", line)
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("unparseable sample value in %q: %v", line, err)
		}
		v, _ := strconv.ParseFloat(val, 64)
		values[name] = v
		order = append(order, name)
	}

	// Every sample's base series must carry a TYPE declaration. A histogram
	// declaration covers its _bucket/_sum/_count children.
	base := func(name string) string {
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if s := strings.TrimSuffix(name, suf); s != name && types[s] == "histogram" {
				return s
			}
		}
		return name
	}
	for _, name := range order {
		if _, ok := types[base(name)]; !ok {
			t.Errorf("sample %q has no TYPE declaration", name)
		}
	}

	// Spot-check the counters the run must have moved.
	if types["vcoma_serve_sims_executed"] != "counter" {
		t.Errorf("vcoma_serve_sims_executed declared %q, want counter", types["vcoma_serve_sims_executed"])
	}
	if got := values["vcoma_serve_sims_executed"]; got != 1 {
		t.Errorf("vcoma_serve_sims_executed = %g, want 1", got)
	}

	// Histogram contract: cumulative buckets closed by +Inf == _count, with
	// _sum present and both latency histograms populated by the run.
	for _, h := range []string{"vcoma_serve_lat_queue_wait_ms", "vcoma_serve_lat_run_ms"} {
		if types[h] != "histogram" {
			t.Fatalf("%s declared %q, want histogram", h, types[h])
		}
		if !help[h] {
			t.Errorf("%s has no HELP line", h)
		}
		var last float64
		var buckets int
		var inf bool
		for _, name := range order {
			if !strings.HasPrefix(name, h+"_bucket{le=\"") {
				continue
			}
			buckets++
			v := values[name]
			if v < last {
				t.Errorf("%s buckets not cumulative: %q drops %g -> %g", h, name, last, v)
			}
			last = v
			if name == h+`_bucket{le="+Inf"}` {
				inf = true
			}
		}
		if buckets == 0 {
			t.Fatalf("%s exposes no buckets", h)
		}
		if !inf {
			t.Fatalf("%s lacks the +Inf bucket", h)
		}
		count, ok := values[h+"_count"]
		if !ok {
			t.Fatalf("%s lacks _count", h)
		}
		if _, ok := values[h+"_sum"]; !ok {
			t.Fatalf("%s lacks _sum", h)
		}
		if infv := values[h+`_bucket{le="+Inf"}`]; infv != count {
			t.Errorf("%s +Inf bucket %g != _count %g", h, infv, count)
		}
		if count < 1 {
			t.Errorf("%s _count = %g after a fresh run, want >= 1", h, count)
		}
	}
}
