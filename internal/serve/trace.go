package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"

	"vcoma/internal/obs"
	"vcoma/internal/runner"
)

// Per-job trace persistence. When a job retires, its request trace is
// written twice under StateDir/traces: <key>.spans.json (the span tree the
// /trace endpoint serves, exactly) and <key>.trace.json (the same spans as a
// Chrome/Perfetto trace-event file, loadable into the viewer next to the
// simulator's own per-node dumps). Live jobs serve their tree from memory;
// the files make traces outlive done-retention and restarts.

// traceRetention bounds how many trace file pairs StateDir/traces keeps;
// older pairs are pruned oldest-first. Matches the queue's done-retention
// scale rather than the (much larger) artifact store bound, because traces
// describe requests, not results.
const traceRetention = doneRetention

func (s *Server) traceDir() string {
	return filepath.Join(s.opts.StateDir, "traces")
}

func (s *Server) spanPath(key runner.Key) string {
	return filepath.Join(s.traceDir(), string(key)+".spans.json")
}

func (s *Server) chromePath(key runner.Key) string {
	return filepath.Join(s.traceDir(), string(key)+".trace.json")
}

// writeTrace persists a retired job's trace files, atomically: each sidecar
// is written whole through the fsio seam (temp + fsync + rename), so a crash
// or fault mid-write never leaves a torn trace to serve later. Failures are
// logged and fed to the health tracker, not fatal: tracing is observational
// and must never fail a job that simulated correctly.
func (s *Server) writeTrace(j *Job) {
	tr := j.Trace()
	if tr == nil {
		return
	}
	if err := s.fs.MkdirAll("trace", s.traceDir()); err != nil {
		s.log.Warn("trace dir", "error", err.Error())
		return
	}
	tree := tr.Export()
	b, err := json.MarshalIndent(tree, "", "  ")
	if err == nil {
		err = s.fs.WriteFileAtomic("trace", s.spanPath(j.Key), append(b, '\n'))
		s.noteWrite("trace", err)
	}
	if err != nil {
		s.log.Warn("trace write", "trace_id", string(tr.ID()), "job_key", string(j.Key), "error", err.Error())
		return
	}
	// The Perfetto rendering: a fresh tracer holding just this request's
	// track (pid 0 = the service, tid 1 = the request), rendered to memory
	// and persisted with the same atomic discipline.
	ct := obs.NewTracer(4096, "")
	tr.AppendChrome(ct, 0, 1)
	var buf bytes.Buffer
	if err := ct.WriteJSON(&buf, "vcoma-serve request "+string(tr.ID())); err == nil {
		err = s.fs.WriteFileAtomic("trace", s.chromePath(j.Key), buf.Bytes())
		s.noteWrite("trace", err)
	}
	if err != nil {
		s.log.Warn("trace write", "trace_id", string(tr.ID()), "job_key", string(j.Key), "error", err.Error())
	}
	s.pruneTraces()
}

// pruneTraces drops the oldest trace files once the directory exceeds
// retention. Best-effort: a failed scan just means pruning waits for the
// next retirement.
func (s *Server) pruneTraces() {
	ents, err := os.ReadDir(s.traceDir())
	if err != nil {
		return
	}
	// Two files per job; prune by span-dump count so pairs leave together.
	type aged struct {
		key   string
		mtime int64
	}
	var dumps []aged
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".json" {
			continue
		}
		const suffix = ".spans.json"
		if len(name) <= len(suffix) || name[len(name)-len(suffix):] != suffix {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		dumps = append(dumps, aged{key: name[:len(name)-len(suffix)], mtime: info.ModTime().UnixNano()})
	}
	if len(dumps) <= traceRetention {
		return
	}
	sort.Slice(dumps, func(i, j int) bool { return dumps[i].mtime < dumps[j].mtime })
	for _, d := range dumps[:len(dumps)-traceRetention] {
		os.Remove(filepath.Join(s.traceDir(), d.key+".spans.json"))
		os.Remove(filepath.Join(s.traceDir(), d.key+".trace.json"))
	}
}

// handleTrace serves a job's span tree: live jobs (queued, running, or still
// in done-retention) export straight from memory — open spans show their
// duration so far — and retired jobs fall back to the persisted span dump.
// ?format=chrome serves the Perfetto trace-event rendering instead.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	key, j, ok := s.lookup(r)
	chrome := r.URL.Query().Get("format") == "chrome"
	if ok {
		if tr := j.Trace(); tr != nil {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Vcoma-Trace", string(tr.ID()))
			if chrome {
				ct := obs.NewTracer(4096, "")
				tr.AppendChrome(ct, 0, 1)
				_ = ct.WriteJSON(w, "vcoma-serve request "+string(tr.ID()))
				return
			}
			writeJSON(w, http.StatusOK, tr.Export())
			return
		}
	}
	path := s.spanPath(key)
	if chrome {
		path = s.chromePath(key)
	}
	// Persisted dumps are validated before serving: a file a crash or fault
	// tore mid-write (pre-atomic-write vintage, or a corrupted disk) is
	// indistinguishable from absent — a torn trace must never be served.
	if b, err := os.ReadFile(path); err == nil && json.Valid(b) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("serve: no trace for job %.16s…", key))
}

// handleProfile serves the CPU-profile artifact captured for a job submitted
// with ?profile=cpu, once its run is over.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("key")
	if !validKey(raw) {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %.16s…", raw))
		return
	}
	b, err := os.ReadFile(s.store.ProfilePath(runner.Key(raw)))
	if err != nil {
		writeError(w, http.StatusNotFound, errors.New("serve: no CPU profile for this job (submit with ?profile=cpu)"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="`+raw[:16]+`.cpuprofile"`)
	w.Write(b)
}

// startProfile begins the opt-in CPU profile for a job. The Go runtime
// allows one CPU profile per process, so concurrent profiled jobs race for
// a single slot; the loser runs unprofiled (logged, never failed). Returns
// the stop func, or nil when no profile was started.
func (s *Server) startProfile(jl *slog.Logger, key runner.Key, sp *obs.Span) func() {
	if !s.profiling.CompareAndSwap(false, true) {
		jl.Warn("cpu profile skipped: another job is profiling")
		return nil
	}
	// The profile lands in the store's shard directory for the key, which
	// the store itself only creates at put time — after the run.
	path := s.store.ProfilePath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.profiling.Store(false)
		jl.Warn("cpu profile skipped", "error", err.Error())
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		s.profiling.Store(false)
		jl.Warn("cpu profile skipped", "error", err.Error())
		return nil
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		s.profiling.Store(false)
		jl.Warn("cpu profile skipped", "error", err.Error())
		return nil
	}
	sp.SetAttr("profile", "cpu")
	return func() {
		pprof.StopCPUProfile()
		err := f.Close()
		s.profiling.Store(false)
		if err != nil {
			jl.Warn("cpu profile close", "error", err.Error())
			return
		}
		s.metrics.profiles.Add(1)
		jl.Info("cpu profile written", "path", path)
	}
}
