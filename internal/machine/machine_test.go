package machine

import (
	"testing"
	"testing/quick"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/mem"
	"vcoma/internal/prng"
	"vcoma/internal/tlb"
	"vcoma/internal/vm"
)

func newMachine(t *testing.T, scheme config.Scheme) *Machine {
	t.Helper()
	cfg := config.SmallTest().WithScheme(scheme)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// preloadRange maps and preloads [base, base+bytes).
func preloadRange(m *Machine, base addr.Virtual, bytes uint64) {
	l := vm.NewLayout(m.Geometry())
	// Layout always starts at LayoutBase; preload directly instead.
	_ = l
	g := m.Geometry()
	m.VM().Preload(base, bytes)
	for off := uint64(0); off < bytes; off += g.AMBlockSize() {
		va := g.Block(base + addr.Virtual(off))
		m.Protocol().Preload(m.protoAddr(va), m.VM().PlacementNode(va))
	}
}

func TestL0TranslatesEveryReference(t *testing.T) {
	m := newMachine(t, config.L0TLB)
	preloadRange(m, 0x10000, 4096)
	for i := 0; i < 100; i++ {
		m.Access(uint64(i*10), 0, addr.Virtual(0x10000+i*8), i%4 == 0)
	}
	st := m.NodeStats(0)
	if st.TLBAccesses != 100 {
		t.Fatalf("L0 TLB accesses = %d, want 100", st.TLBAccesses)
	}
}

func TestL1TranslatesWritesAndFLCMisses(t *testing.T) {
	m := newMachine(t, config.L1TLB)
	preloadRange(m, 0x10000, 4096)
	// Warm one FLC block with a read (1 miss), then re-read it (hits, no
	// translation), then write it twice (write-through: both translate).
	v := addr.Virtual(0x10000)
	m.Access(0, 0, v, false)
	base := m.NodeStats(0).TLBAccesses
	if base != 1 {
		t.Fatalf("FLC read miss translations = %d, want 1", base)
	}
	for i := 0; i < 5; i++ {
		m.Access(100, 0, v, false) // FLC hits: no translation
	}
	if got := m.NodeStats(0).TLBAccesses; got != base {
		t.Fatalf("FLC read hits translated: %d", got)
	}
	m.Access(200, 0, v, true)
	m.Access(300, 0, v, true)
	if got := m.NodeStats(0).TLBAccesses; got != base+2 {
		t.Fatalf("writes translated %d times, want 2", got-base)
	}
}

func TestL2TranslatesBelowSLCOnly(t *testing.T) {
	m := newMachine(t, config.L2TLB)
	preloadRange(m, 0x10000, 4096)
	v := addr.Virtual(0x10000)
	m.Access(0, 0, v, false) // SLC miss: translate
	if got := m.NodeStats(0).TLBAccesses; got != 1 {
		t.Fatalf("SLC miss translations = %d", got)
	}
	m.Access(100, 0, v+16, false) // FLC miss, SLC hit (32 B SLC block): no translation
	if got := m.NodeStats(0).TLBAccesses; got != 1 {
		t.Fatalf("SLC hit translated: %d", got)
	}
	// A write needs ownership: the upgrade goes below the SLC even though
	// the SLC holds the block.
	m.Access(200, 0, v, true)
	if got := m.NodeStats(0).TLBAccesses; got != 2 {
		t.Fatalf("upgrade translations = %d, want 2", got)
	}
	// Second write: SLC hit with Exclusive AM state: no translation.
	m.Access(300, 0, v, true)
	if got := m.NodeStats(0).TLBAccesses; got != 2 {
		t.Fatalf("exclusive write translated: %d", got)
	}
}

func TestL2WritebackTranslation(t *testing.T) {
	m := newMachine(t, config.L2TLB)
	g := m.Geometry()
	// Dirty many distinct SLC sets' worth of blocks so evictions produce
	// writebacks, each of which must translate its victim's page.
	span := uint64(8 * 1024) // 8x the 1 KB SLC
	preloadRange(m, 0x10000, span)
	now := uint64(0)
	for off := uint64(0); off < span; off += 32 {
		m.Access(now, 0, addr.Virtual(0x10000+off), true)
		now += 1000
	}
	st := m.NodeStats(0)
	if st.SLCWritebacks == 0 {
		t.Fatal("no writebacks generated")
	}
	// Translations: one per write (miss/upgrade) + one per writeback.
	writes := span / 32
	if st.TLBAccesses != uint64(writes)+st.SLCWritebacks {
		t.Fatalf("TLB accesses = %d, want %d writes + %d writebacks",
			st.TLBAccesses, writes, st.SLCWritebacks)
	}
	_ = g
}

func TestL2NoWritebackVariant(t *testing.T) {
	cfg := config.SmallTest().WithScheme(config.L2TLB)
	cfg.NoWritebackTLB = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	preloadRange(m, 0x10000, 8*1024)
	now := uint64(0)
	for off := uint64(0); off < 8*1024; off += 32 {
		m.Access(now, 0, addr.Virtual(0x10000+off), true)
		now += 1000
	}
	st := m.NodeStats(0)
	if st.SLCWritebacks == 0 {
		t.Fatal("no writebacks generated")
	}
	if st.TLBAccesses != 8*1024/32 {
		t.Fatalf("TLB accesses = %d, want one per write only", st.TLBAccesses)
	}
}

func TestL3TranslatesOnlyLocalMisses(t *testing.T) {
	m := newMachine(t, config.L3TLB)
	preloadRange(m, 0x10000, 4096)
	// First touch: where does page 0x10000's data sit? PlacementNode
	// decides; find a VA placed at node 0 so its reads are local.
	g := m.Geometry()
	var local, remote addr.Virtual
	for off := uint64(0); off < 4096; off += g.PageSize() {
		v := addr.Virtual(0x10000 + off)
		if m.VM().PlacementNode(v) == 0 && local == 0 {
			local = v
		} else if m.VM().PlacementNode(v) != 0 && remote == 0 {
			remote = v
		}
	}
	if local == 0 || remote == 0 {
		t.Fatal("setup: need both local and remote pages")
	}
	m.Access(0, 0, local, false)
	if got := m.NodeStats(0).TLBAccesses; got != 0 {
		t.Fatalf("local AM hit translated: %d", got)
	}
	m.Access(100, 0, remote, false)
	if got := m.NodeStats(0).TLBAccesses; got != 1 {
		t.Fatalf("remote miss translations = %d, want 1", got)
	}
}

func TestVCOMAUsesDLBNotTLB(t *testing.T) {
	m := newMachine(t, config.VCOMA)
	preloadRange(m, 0x10000, 4096)
	now := uint64(0)
	for i := 0; i < 50; i++ {
		m.Access(now, 1, addr.Virtual(0x10000+i*32), i%3 == 0)
		now += 500
	}
	if m.TLB(1) != nil {
		t.Fatal("V-COMA node has a TLB")
	}
	total := uint64(0)
	for n := 0; n < m.Geometry().Nodes(); n++ {
		total += m.Engine(addr.Node(n)).Stats().Lookups
	}
	if total == 0 {
		t.Fatal("no DLB lookups recorded")
	}
	if m.NodeStats(1).TLBAccesses != 0 {
		t.Fatal("V-COMA counted TLB accesses")
	}
}

func TestRemoteWriteBackInvalidatesCaches(t *testing.T) {
	for _, scheme := range config.Schemes() {
		m := newMachine(t, scheme)
		preloadRange(m, 0x10000, 4096)
		v := addr.Virtual(0x10040)
		m.Access(0, 0, v, false) // node 0 caches the block
		if m.FLC(0).OccupiedLines() == 0 {
			t.Fatalf("%v: read did not fill the FLC", scheme)
		}
		m.Access(1000, 1, v, true) // node 1 takes exclusive ownership

		// Node 0 must not hit its caches on the invalidated block.
		flcAddr, slcAddr := uint64(v), uint64(v)
		if scheme == config.L0TLB {
			flcAddr = uint64(m.VM().Translate(v))
			slcAddr = flcAddr
		}
		if scheme == config.L1TLB || scheme == config.L2TLB {
			pa := uint64(m.VM().Translate(v))
			if scheme == config.L1TLB {
				slcAddr = pa
			} else {
				// L2: caches are virtual.
			}
		}
		if m.FLC(0).Contains(flcAddr) {
			t.Errorf("%v: FLC at node 0 still holds the block after a remote write", scheme)
		}
		if m.SLC(0).Contains(slcAddr) {
			t.Errorf("%v: SLC at node 0 still holds the block after a remote write", scheme)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Errorf("%v: %v", scheme, err)
		}
	}
}

func TestInclusionProperty(t *testing.T) {
	// Property: after any access sequence, every valid SLC block is backed
	// by a readable block in the local attraction memory (inclusion).
	for _, scheme := range config.Schemes() {
		scheme := scheme
		err := quick.Check(func(seed uint64) bool {
			m := newMachine(t, scheme)
			preloadRange(m, 0x10000, 16*1024)
			rng := prng.New(seed)
			now := uint64(0)
			for i := 0; i < 300; i++ {
				n := addr.Node(rng.Intn(4))
				v := addr.Virtual(0x10000 + rng.Uint64n(16*1024))
				m.Access(now, n, v, rng.Intn(3) == 0)
				now += 200
			}
			g := m.Geometry()
			for n := addr.Node(0); int(n) < g.Nodes(); n++ {
				for _, block := range m.SLC(n).ValidBlocks() {
					// Map the SLC's address space into the protocol's:
					// only L2 has a virtual SLC over a physical AM.
					proto := block
					if scheme == config.L2TLB {
						proto = uint64(m.VM().Translate(addr.Virtual(block)))
					}
					if m.Protocol().StateAt(n, proto&^(g.AMBlockSize()-1)) == mem.Invalid {
						return false
					}
				}
			}
			return m.CheckInvariants() == nil
		}, &quick.Config{MaxCount: 10})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
	}
}

func TestObserverBanks(t *testing.T) {
	cfg := config.SmallTest().WithScheme(config.L2TLB)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := []tlb.Spec{{Entries: 4, Org: config.FullyAssoc}}
	if err := m.AttachObserverBanks(specs); err != nil {
		t.Fatal(err)
	}
	if len(m.ObserverBanks()) != 4 || len(m.NoWritebackBanks()) != 4 {
		t.Fatal("bank counts wrong")
	}
	preloadRange(m, 0x10000, 8*1024)
	now := uint64(0)
	for off := uint64(0); off < 8*1024; off += 32 {
		m.Access(now, 0, addr.Virtual(0x10000+off), true)
		now += 1000
	}
	withWB := tlb.Merge(m.ObserverBanks()).TotalAccesses()
	noWB := tlb.Merge(m.NoWritebackBanks()).TotalAccesses()
	if withWB <= noWB {
		t.Fatalf("writeback bank (%d) should see more requests than no_wback (%d)", withWB, noWB)
	}
}

func TestAccessClassesAndStats(t *testing.T) {
	m := newMachine(t, config.L0TLB)
	preloadRange(m, 0x10000, 4096)
	v := addr.Virtual(0x10000)
	r1 := m.Access(0, 0, v, false)
	if r1.Class == ClassFLCHit {
		t.Fatal("cold access classified as FLC hit")
	}
	r2 := m.Access(100, 0, v, false)
	if r2.Class != ClassFLCHit || r2.Cycles != r2.TransCycles {
		t.Fatalf("warm access: %+v", r2)
	}
	ts := m.TotalStats()
	if ts.Refs != 2 || ts.Reads != 2 {
		t.Fatalf("stats %+v", ts)
	}
	for _, c := range []Class{ClassFLCHit, ClassSLCHit, ClassLocalAM, ClassRemote, Class(9)} {
		if c.String() == "" {
			t.Fatal("empty class string")
		}
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.SmallTest()
	cfg.TLBEntries = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}
