// Package machine assembles a full simulated node — FLC, SLC, attraction
// memory, translation hardware — for each of the paper's five dynamic
// address translation schemes, and routes every processor reference through
// the right sequence of lookups, translations and coherence transactions.
//
// The scheme determines three things (paper §3):
//
//   - which levels are virtually vs physically addressed,
//   - where translation requests are generated (the "tap points"), and
//   - who pays the translation penalty (the requesting processor's TLB, or
//     the home node's DLB inside the protocol engine).
//
// | scheme | FLC | SLC | AM | translation requests                        |
// |--------|-----|-----|----|---------------------------------------------|
// | L0-TLB | PA  | PA  | PA | every processor reference                   |
// | L1-TLB | VA  | PA  | PA | FLC read misses + every write (FLC is WT)   |
// | L2-TLB | VA  | VA  | PA | below-SLC transactions + SLC writebacks     |
// | L3-TLB | VA  | VA  | VA | local-node misses + master replacements     |
// | V-COMA | VA  | VA  | VA | none: home-node DLB inside the protocol     |
package machine

import (
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/cache"
	"vcoma/internal/coherence"
	"vcoma/internal/config"
	"vcoma/internal/core"
	"vcoma/internal/mem"
	"vcoma/internal/obs"
	"vcoma/internal/tlb"
	"vcoma/internal/vm"
)

// Class says where a reference was satisfied.
type Class int

const (
	// ClassFLCHit: satisfied by the first-level cache (zero latency).
	ClassFLCHit Class = iota
	// ClassSLCHit: satisfied by the second-level cache.
	ClassSLCHit
	// ClassLocalAM: satisfied by the local attraction memory.
	ClassLocalAM
	// ClassRemote: required a coherence transaction through a home node.
	ClassRemote
)

func (c Class) String() string {
	switch c {
	case ClassFLCHit:
		return "flc-hit"
	case ClassSLCHit:
		return "slc-hit"
	case ClassLocalAM:
		return "local-am"
	case ClassRemote:
		return "remote"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// AccessResult reports one reference's cost.
type AccessResult struct {
	// Cycles is the processor stall time for this reference, including
	// any translation penalties on its critical path.
	Cycles uint64
	// TransCycles is the translation-penalty portion of Cycles.
	TransCycles uint64
	// Class says where the reference was satisfied.
	Class Class
}

// NodeStats aggregates one node's memory-system activity.
type NodeStats struct {
	Refs   uint64
	Reads  uint64
	Writes uint64

	FLCHits uint64
	SLCHits uint64
	LocalAM uint64
	Remote  uint64

	// StallLocal is stall time on local service (SLC hits, local AM).
	StallLocal uint64
	// StallRemote is stall time on coherence transactions (excluding the
	// translation portion).
	StallRemote uint64
	// TransCycles is stall time attributable to address translation
	// (TLB miss penalties here, DLB miss penalties on this node's
	// critical paths for V-COMA).
	TransCycles uint64

	TLBAccesses   uint64
	TLBMisses     uint64
	SLCWritebacks uint64
}

// TotalStall returns local + remote stall (the paper's Table 4 denominator).
func (s NodeStats) TotalStall() uint64 { return s.StallLocal + s.StallRemote }

// Machine is the simulated multiprocessor memory system.
type Machine struct {
	cfg config.Config
	g   addr.Geometry

	sys  *vm.System
	prot *coherence.Protocol

	flcs []*cache.Cache
	slcs []*cache.Cache

	tlbs    []tlb.Buffer       // per-node timed TLB (nil for V-COMA)
	engines []*core.HomeEngine // per-node home engines (V-COMA only)

	banks     []*tlb.Bank // observer: the scheme's translation-request stream
	nowbBanks []*tlb.Bank // observer: L2 stream without writebacks

	stats []NodeStats

	// Observability (all nil unless AttachObserver is called; every use is
	// nil-receiver safe, so the access paths pay only a nil check).
	tracer    *obs.Tracer
	latAccess *obs.Histogram // stall cycles of every reference
	latRemote *obs.Histogram // stall cycles of remote transactions

	// checker is the correctness-verification hook (nil unless
	// SetAccessChecker is called); it observes completed references and
	// must not change any simulated outcome.
	checker AccessChecker
}

// AccessChecker observes every completed processor reference, after the
// machine has fully executed it. internal/check implements this to drive
// its invariant checks and shadow-memory oracle; a checker must be purely
// observational.
type AccessChecker interface {
	PostAccess(n addr.Node, va addr.Virtual, write bool, r AccessResult)
}

// SetAccessChecker attaches a correctness checker to the access path. A nil
// checker (the default) keeps the path check-free.
func (m *Machine) SetAccessChecker(c AccessChecker) { m.checker = c }

// New builds a machine for cfg.
func New(cfg config.Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := cfg.Geometry
	var mode vm.Mode
	switch cfg.Scheme {
	case config.L0TLB, config.L1TLB, config.L2TLB:
		mode = vm.PhysicalRoundRobin
	case config.L3TLB:
		mode = vm.Colored
	case config.VCOMA:
		mode = vm.VirtualOnly
	}
	m := &Machine{
		cfg:   cfg,
		g:     g,
		sys:   vm.NewSystem(g, mode),
		stats: make([]NodeStats, g.Nodes()),
	}

	home := func(block uint64) addr.Node {
		if mode == vm.VirtualOnly || mode == vm.Colored {
			return g.HomeNode(addr.Virtual(block))
		}
		return g.HomeNodeOfFrame(g.FrameOf(addr.Physical(block)))
	}
	prot, err := coherence.New(g, cfg.Timing, home, m, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Ablation.NoMasterRelocation {
		prot.DisableMasterRelocation()
	}
	if cfg.Ablation.InfinitePEBandwidth {
		prot.DisablePEQueueing()
	}
	if cfg.Ablation.SharedNetworkChannel {
		prot.Fabric().UseSharedChannel()
	}
	m.prot = prot

	for i := 0; i < g.Nodes(); i++ {
		m.flcs = append(m.flcs, cache.New(cfg.FLC))
		m.slcs = append(m.slcs, cache.New(cfg.SLC))
	}

	if cfg.Scheme == config.VCOMA {
		for i := 0; i < g.Nodes(); i++ {
			eng, err := core.NewHomeEngine(addr.Node(i), cfg, m.sys, cfg.TLBEntries, cfg.TLBOrg)
			if err != nil {
				return nil, err
			}
			m.engines = append(m.engines, eng)
		}
	} else {
		for i := 0; i < g.Nodes(); i++ {
			buf, err := tlb.New(cfg.TLBEntries, cfg.TLBOrg, 0, cfg.Seed^uint64(i)<<24^0x71B)
			if err != nil {
				return nil, err
			}
			m.tlbs = append(m.tlbs, buf)
		}
	}
	return m, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() config.Config { return m.cfg }

// Geometry returns the machine's geometry.
func (m *Machine) Geometry() addr.Geometry { return m.g }

// VM returns the virtual-memory system.
func (m *Machine) VM() *vm.System { return m.sys }

// Protocol returns the coherence protocol instance.
func (m *Machine) Protocol() *coherence.Protocol { return m.prot }

// FLC and SLC return node n's caches (tests, reports).
func (m *Machine) FLC(n addr.Node) *cache.Cache { return m.flcs[n] }

// SLC returns node n's second-level cache.
func (m *Machine) SLC(n addr.Node) *cache.Cache { return m.slcs[n] }

// Engine returns node n's V-COMA home engine, or nil.
func (m *Machine) Engine(n addr.Node) *core.HomeEngine {
	if m.engines == nil {
		return nil
	}
	return m.engines[n]
}

// TLB returns node n's timed TLB, or nil for V-COMA.
func (m *Machine) TLB(n addr.Node) tlb.Buffer {
	if m.tlbs == nil {
		return nil
	}
	return m.tlbs[n]
}

// NodeStats returns a copy of node n's counters.
func (m *Machine) NodeStats(n addr.Node) NodeStats { return m.stats[n] }

// TotalStats sums counters across nodes.
func (m *Machine) TotalStats() NodeStats {
	var t NodeStats
	for i := range m.stats {
		s := &m.stats[i]
		t.Refs += s.Refs
		t.Reads += s.Reads
		t.Writes += s.Writes
		t.FLCHits += s.FLCHits
		t.SLCHits += s.SLCHits
		t.LocalAM += s.LocalAM
		t.Remote += s.Remote
		t.StallLocal += s.StallLocal
		t.StallRemote += s.StallRemote
		t.TransCycles += s.TransCycles
		t.TLBAccesses += s.TLBAccesses
		t.TLBMisses += s.TLBMisses
		t.SLCWritebacks += s.SLCWritebacks
	}
	return t
}

// AttachObserverBanks installs multi-configuration translation-buffer
// observers on the scheme's tap points: one bank per node (per home node
// for V-COMA). For L2-TLB a second bank per node observes the stream
// without writebacks (the paper's L2-TLB/no_wback). Call before running.
func (m *Machine) AttachObserverBanks(specs []tlb.Spec) error {
	shift := uint(0)
	if m.cfg.Scheme == config.VCOMA {
		shift = m.g.NodeBits
	}
	for i := 0; i < m.g.Nodes(); i++ {
		b, err := tlb.NewBank(specs, shift, m.cfg.Seed^uint64(i)<<16^0xBA6)
		if err != nil {
			return err
		}
		m.banks = append(m.banks, b)
	}
	if m.cfg.Scheme == config.L2TLB {
		for i := 0; i < m.g.Nodes(); i++ {
			b, err := tlb.NewBank(specs, 0, m.cfg.Seed^uint64(i)<<16^0x209B)
			if err != nil {
				return err
			}
			m.nowbBanks = append(m.nowbBanks, b)
		}
	}
	return nil
}

// AttachObserver wires an observability sink through every layer of the
// machine: per-node probes over the node counters, cache and translation
// buffer metrics, protocol and fabric series, access-latency histograms,
// and the event tracer for the protocol and home engines. All probes are
// pull-style reads of existing counters, so the simulated timing is
// untouched. Call before running; a nil or disabled observer is a no-op.
func (m *Machine) AttachObserver(o *obs.Observer) {
	if o == nil {
		return
	}
	r := o.Reg()
	m.tracer = o.Tr()
	if r != nil {
		for i := 0; i < m.g.Nodes(); i++ {
			i := i
			pre := fmt.Sprintf("node%02d", i)
			st := &m.stats[i]
			r.Probe(pre+"/refs", func() float64 { return float64(st.Refs) })
			r.Probe(pre+"/remote", func() float64 { return float64(st.Remote) })
			r.Probe(pre+"/tlb.accesses", func() float64 { return float64(st.TLBAccesses) })
			r.Probe(pre+"/tlb.misses", func() float64 { return float64(st.TLBMisses) })
			r.Probe(pre+"/slc.writebacks", func() float64 { return float64(st.SLCWritebacks) })
			r.Probe(pre+"/trans.cycles", func() float64 { return float64(st.TransCycles) })
			r.Probe(pre+"/am.occupancy", func() float64 { return m.prot.AM(addr.Node(i)).Occupancy() })
			m.flcs[i].RegisterMetrics(r, pre+"/flc")
			m.slcs[i].RegisterMetrics(r, pre+"/slc")
			if m.tlbs != nil {
				tlb.RegisterBuffer(r, pre+"/tlb.hw", m.tlbs[i])
			}
			if m.engines != nil {
				m.engines[i].RegisterMetrics(r, pre+"/dlb")
				tlb.RegisterBuffer(r, pre+"/dlb.hw", m.engines[i].DLB())
			}
		}
		m.prot.RegisterMetrics(r)
		m.latAccess = r.Histogram("lat/access")
		m.latRemote = r.Histogram("lat/remote")
	}
	m.prot.SetTracer(m.tracer)
	for _, e := range m.engines {
		e.SetTracer(m.tracer)
	}
}

// ObserverBanks returns the per-node primary banks (nil if not attached).
func (m *Machine) ObserverBanks() []*tlb.Bank { return m.banks }

// NoWritebackBanks returns the per-node L2/no_wback banks (nil unless the
// scheme is L2-TLB and banks are attached).
func (m *Machine) NoWritebackBanks() []*tlb.Bank { return m.nowbBanks }

// Preload installs every page and AM block of the layout's regions,
// modelling the paper's preloaded data sets: each page's master blocks are
// placed at the node its global-set slot names (spreading frames across the
// machine), with the directory entry at the block's home node. Must run
// before the first Access.
func (m *Machine) Preload(l *vm.Layout) {
	l.PreloadAll(m.sys)
	bs := m.g.AMBlockSize()
	for _, r := range l.Regions() {
		for off := uint64(0); off < r.Bytes; off += bs {
			va := m.g.Block(r.Base + addr.Virtual(off))
			m.prot.Preload(m.protoAddr(va), m.sys.PlacementNode(va))
		}
	}
}

// protoAddr maps a virtual address into the protocol's address space.
func (m *Machine) protoAddr(va addr.Virtual) uint64 {
	if m.cfg.Scheme <= config.L2TLB {
		return uint64(m.sys.Translate(va))
	}
	return uint64(va)
}

// ProtoBlock returns the protocol address of the AM block containing va,
// mapping the page on first touch. Verification layers use this to relate
// virtual blocks to protocol/directory state.
func (m *Machine) ProtoBlock(va addr.Virtual) uint64 {
	return m.protoAddr(m.g.Block(va))
}

// VirtualOfProtoBlock maps a protocol block address back to the virtual
// block it caches — the reverse of ProtoBlock. Identity in the virtually-
// addressed schemes (L3-TLB, V-COMA); a backpointer lookup otherwise. The
// block's page must be mapped.
func (m *Machine) VirtualOfProtoBlock(block uint64) addr.Virtual {
	if m.cfg.Scheme <= config.L2TLB {
		return m.sys.ReverseTranslate(addr.Physical(block))
	}
	return addr.Virtual(block)
}

// tlbAccess charges a translation request at node n for page p at simulated
// time now, feeding the observer banks and the timed TLB, and returns the
// penalty cycles. writeback marks SLC-writeback translations (L2-TLB),
// which the no_wback observer skips and which the timed TLB skips under
// NoWritebackTLB.
func (m *Machine) tlbAccess(now uint64, n addr.Node, p addr.PageNum, writeback bool) uint64 {
	if m.banks != nil {
		m.banks[n].Access(p)
	}
	if !writeback && m.nowbBanks != nil {
		m.nowbBanks[n].Access(p)
	}
	if writeback && m.cfg.NoWritebackTLB {
		return 0
	}
	if m.tlbs == nil {
		return 0
	}
	st := &m.stats[n]
	st.TLBAccesses++
	if m.tlbs[n].Access(p) {
		return 0
	}
	st.TLBMisses++
	if m.tracer.Enabled("trans") {
		m.tracer.Instant("trans", "tlb-miss", int(n), 0, now)
	}
	return m.cfg.Timing.TLBMiss
}

// --- coherence.Hooks ---

// DirLookup implements coherence.Hooks: V-COMA's home-node translation.
func (m *Machine) DirLookup(now uint64, home addr.Node, block uint64, critical bool) uint64 {
	if m.cfg.Scheme != config.VCOMA {
		return 0
	}
	va := addr.Virtual(block)
	if m.banks != nil {
		m.banks[home].Access(m.g.Page(va))
	}
	_, penalty := m.engines[home].TranslateAt(now, va, critical)
	return penalty
}

// BackInvalidate implements coherence.Hooks: when node loses an AM block,
// the caches above it are invalidated to preserve inclusion, converting the
// protocol address into each cache's address space (backpointers, §2.2.2).
func (m *Machine) BackInvalidate(node addr.Node, block uint64) {
	bs := m.g.AMBlockSize()
	var flcA, slcA uint64
	switch m.cfg.Scheme {
	case config.L0TLB:
		flcA, slcA = block, block
	case config.L1TLB:
		va := uint64(m.sys.ReverseTranslate(addr.Physical(block)))
		flcA, slcA = va, block
	case config.L2TLB:
		va := uint64(m.sys.ReverseTranslate(addr.Physical(block)))
		flcA, slcA = va, va
	default: // L3, V-COMA: everything virtual
		flcA, slcA = block, block
	}
	m.slcs[node].InvalidateRange(slcA, bs)
	m.flcs[node].InvalidateRange(flcA, bs)
}

// ReplacementTranslate implements coherence.Hooks: in L3-TLB the coherence
// protocol runs on physical addresses, so a node evicting a master copy of
// a virtually-tagged AM block translates its address to send the
// replacement; these TLB accesses are part of L3's translation stream.
func (m *Machine) ReplacementTranslate(now uint64, node addr.Node, block uint64) uint64 {
	if m.cfg.Scheme != config.L3TLB {
		return 0
	}
	return m.tlbAccess(now, node, m.g.Page(addr.Virtual(block)), false)
}

// --- the access path ---

// Access routes one processor reference through node n's hierarchy at time
// now, returning its cost. Addresses are virtual; write selects a store.
func (m *Machine) Access(now uint64, n addr.Node, va addr.Virtual, write bool) AccessResult {
	st := &m.stats[n]
	st.Refs++
	if write {
		st.Writes++
	} else {
		st.Reads++
	}

	g := m.g
	scheme := m.cfg.Scheme
	var trans uint64

	// L0: every reference is translated up front.
	if scheme == config.L0TLB {
		trans += m.tlbAccess(now, n, g.Page(va), false)
	}

	// Resolve per-level addresses.
	var pa uint64
	if scheme <= config.L2TLB {
		pa = uint64(m.sys.Translate(va))
	}
	var flcAddr, slcAddr uint64
	switch scheme {
	case config.L0TLB:
		flcAddr, slcAddr = pa, pa
	case config.L1TLB:
		flcAddr, slcAddr = uint64(va), pa
	default:
		flcAddr, slcAddr = uint64(va), uint64(va)
	}
	protoBlock := m.protoAddr(g.Block(va))

	flc, slc := m.flcs[n], m.slcs[n]

	var res AccessResult
	if !write {
		res = m.read(now, n, va, flcAddr, slcAddr, protoBlock, trans, flc, slc, st)
	} else {
		res = m.write(now, n, va, flcAddr, slcAddr, protoBlock, trans, flc, slc, st)
	}
	if m.checker != nil {
		m.checker.PostAccess(n, va, write, res)
	}
	return res
}

func (m *Machine) read(now uint64, n addr.Node, va addr.Virtual, flcAddr, slcAddr uint64, protoBlock uint64, trans uint64, flc, slc *cache.Cache, st *NodeStats) AccessResult {
	if flc.Read(flcAddr).Hit {
		st.FLCHits++
		st.TransCycles += trans
		m.latAccess.Observe(trans)
		return AccessResult{Cycles: trans, TransCycles: trans, Class: ClassFLCHit}
	}

	// FLC read miss: L1-TLB translates here.
	if m.cfg.Scheme == config.L1TLB {
		trans += m.tlbAccess(now, n, m.g.Page(va), false)
	}

	rs := slc.Read(slcAddr)
	m.handleSLCVictim(now, n, rs, &trans)
	if rs.Hit {
		st.SLCHits++
		st.StallLocal += m.cfg.Timing.SLCHit
		st.TransCycles += trans
		m.latAccess.Observe(m.cfg.Timing.SLCHit + trans)
		return AccessResult{Cycles: m.cfg.Timing.SLCHit + trans, TransCycles: trans, Class: ClassSLCHit}
	}

	// Below the SLC: L2-TLB translates every such transaction; L3-TLB only
	// when the local node cannot satisfy it.
	switch m.cfg.Scheme {
	case config.L2TLB:
		trans += m.tlbAccess(now, n, m.g.Page(va), false)
	case config.L3TLB:
		if m.prot.StateAt(n, protoBlock) == mem.Invalid {
			trans += m.tlbAccess(now, n, m.g.Page(va), false)
		}
	}

	res := m.prot.Access(now+trans, n, protoBlock, false)
	trans += res.TransCycles
	st.TransCycles += trans
	cycles := trans + res.Latency - res.TransCycles
	m.latAccess.Observe(cycles)
	if res.LocalHit {
		st.LocalAM++
		st.StallLocal += res.Latency - res.TransCycles
		return AccessResult{Cycles: cycles, TransCycles: trans, Class: ClassLocalAM}
	}
	st.Remote++
	st.StallRemote += res.Latency - res.TransCycles
	m.latRemote.Observe(cycles)
	return AccessResult{Cycles: cycles, TransCycles: trans, Class: ClassRemote}
}

func (m *Machine) write(now uint64, n addr.Node, va addr.Virtual, flcAddr, slcAddr uint64, protoBlock uint64, trans uint64, flc, slc *cache.Cache, st *NodeStats) AccessResult {
	// Write-through FLC: update on hit, never allocate, always continue.
	flc.Write(flcAddr)

	// L1-TLB: the SLC is physical, so every write-through access
	// translates.
	if m.cfg.Scheme == config.L1TLB {
		trans += m.tlbAccess(now, n, m.g.Page(va), false)
	}

	ws := slc.Write(slcAddr)
	m.handleSLCVictim(now, n, ws, &trans)

	if ws.Hit && m.prot.StateAt(n, protoBlock) == mem.Exclusive {
		// The write completes in the SLC with ownership already held.
		st.SLCHits++
		st.StallLocal += m.cfg.Timing.SLCHit
		st.TransCycles += trans
		m.latAccess.Observe(m.cfg.Timing.SLCHit + trans)
		return AccessResult{Cycles: m.cfg.Timing.SLCHit + trans, TransCycles: trans, Class: ClassSLCHit}
	}

	// Ownership (and possibly data) must come from below the SLC.
	switch m.cfg.Scheme {
	case config.L2TLB:
		trans += m.tlbAccess(now, n, m.g.Page(va), false)
	case config.L3TLB:
		if m.prot.StateAt(n, protoBlock) != mem.Exclusive {
			trans += m.tlbAccess(now, n, m.g.Page(va), false)
		}
	}

	res := m.prot.Access(now+trans, n, protoBlock, true)
	trans += res.TransCycles
	st.TransCycles += trans
	cycles := trans + res.Latency - res.TransCycles
	m.latAccess.Observe(cycles)
	if m.cfg.Scheme == config.VCOMA && !res.LocalHit {
		// The home engine records the page's Modify bit on ownership
		// transfers (§4.3).
		m.engines[m.prot.Home(protoBlock)].SetModified(va)
	}
	if res.LocalHit {
		st.LocalAM++
		st.StallLocal += res.Latency - res.TransCycles
		return AccessResult{Cycles: cycles, TransCycles: trans, Class: ClassLocalAM}
	}
	st.Remote++
	st.StallRemote += res.Latency - res.TransCycles
	m.latRemote.Observe(cycles)
	return AccessResult{Cycles: cycles, TransCycles: trans, Class: ClassRemote}
}

// handleSLCVictim resolves an SLC fill's displaced line: the FLC is
// back-invalidated to keep inclusion, and a dirty victim becomes a
// writeback into the attraction memory — which in L2-TLB means a
// translation request for the victim's page (poor locality, the paper's
// write-back effect, §2.2.2/§5.2).
func (m *Machine) handleSLCVictim(now uint64, n addr.Node, r cache.Result, trans *uint64) {
	if !r.Evicted {
		return
	}
	bs := m.cfg.SLC.BlockBytes
	flcA := r.Victim
	if m.cfg.Scheme == config.L1TLB {
		// SLC victims are physical but the FLC is virtual: follow the
		// backpointer.
		flcA = uint64(m.sys.ReverseTranslate(addr.Physical(r.Victim)))
	}
	m.flcs[n].InvalidateRange(flcA, bs)

	if r.VictimDirty {
		m.stats[n].SLCWritebacks++
		if m.cfg.Scheme == config.L2TLB {
			// The victim's address is virtual; writing it back to the
			// physical AM requires translation.
			vpage := m.g.Page(addr.Virtual(r.Victim))
			*trans += m.tlbAccess(now, n, vpage, true)
		}
	}
}

// PressureProfile returns the Figure 11 pressure profile.
func (m *Machine) PressureProfile() []float64 { return m.sys.PressureProfile() }

// CheckInvariants verifies cross-layer consistency: directory/AM agreement
// and cache inclusion (every valid SLC/FLC block backed by a valid local AM
// block). Tests and debug runs call this; it is O(machine size).
func (m *Machine) CheckInvariants() error {
	if err := m.prot.CheckInvariants(); err != nil {
		return err
	}
	return m.checkInclusion()
}

// checkInclusion walks every node's caches top-down: a valid FLC block must
// be covered by a valid SLC block, and a valid SLC block by a readable local
// attraction-memory copy, converting between the per-level address spaces of
// the scheme (see the package table).
func (m *Machine) checkInclusion() error {
	for i := range m.slcs {
		n := addr.Node(i)
		for _, b := range m.slcs[i].ValidBlocks() {
			pb, ok := m.protoOfSLCAddr(b)
			if !ok {
				return fmt.Errorf("machine: node %d SLC holds block %#x of an unmapped page", i, b)
			}
			if m.prot.StateAt(n, pb) == mem.Invalid {
				return fmt.Errorf("machine: node %d SLC block %#x (proto %#x) has no local AM copy (inclusion broken)", i, b, pb)
			}
		}
		for _, b := range m.flcs[i].ValidBlocks() {
			sa, ok := m.slcAddrOfFLCAddr(b)
			if !ok {
				return fmt.Errorf("machine: node %d FLC holds block %#x of an unmapped page", i, b)
			}
			if !m.slcs[i].Contains(sa) {
				return fmt.Errorf("machine: node %d FLC block %#x not covered by its SLC (inclusion broken)", i, b)
			}
		}
	}
	return nil
}

// protoOfSLCAddr converts an SLC-space address to the protocol address
// space. ok is false when the conversion needs a translation and the page
// is not mapped (which inclusion forbids: a cached block's page is always
// resident).
func (m *Machine) protoOfSLCAddr(a uint64) (uint64, bool) {
	if m.cfg.Scheme == config.L2TLB {
		// Virtual SLC above a physical attraction memory.
		p := m.sys.Lookup(addr.Virtual(a))
		if p == nil {
			return 0, false
		}
		return uint64(m.g.PhysAddr(p.Frame, addr.Virtual(a))), true
	}
	// L0/L1: both physical. L3/V-COMA: both virtual.
	return a, true
}

// slcAddrOfFLCAddr converts an FLC-space address to the SLC address space.
func (m *Machine) slcAddrOfFLCAddr(a uint64) (uint64, bool) {
	if m.cfg.Scheme == config.L1TLB {
		// Virtual FLC above a physical SLC.
		p := m.sys.Lookup(addr.Virtual(a))
		if p == nil {
			return 0, false
		}
		return uint64(m.g.PhysAddr(p.Frame, addr.Virtual(a))), true
	}
	return a, true
}
