package machine

import (
	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/mem"
	"vcoma/internal/tlb"
)

// This file is the machine half of the parallel engine (internal/sim's
// parallel.go): a classification of references into "contained" ones — those
// whose entire effect is confined to the issuing node's private state (FLC,
// SLC, timed TLB, NodeStats) — and a checkpoint of exactly that state.
// Contained references from different nodes commute, so the parallel engine
// may execute them concurrently against frozen global state and still commit
// them in exact sequential order. Everything else (coherence transactions,
// SLC fills and victims, first-touch page mapping, synchronization) is
// deferred to the engine's sequential drain.

// ParallelEligible reports whether this machine supports the parallel
// engine's contained access path. Observer instrumentation (banks, tracer,
// histograms) and access checkers see references in global order through
// shared state, so an instrumented machine degrades to the sequential
// engine; results are identical either way.
func (m *Machine) ParallelEligible() bool {
	if m.banks != nil || m.nowbBanks != nil || m.checker != nil {
		return false
	}
	if m.tracer != nil || m.latAccess != nil || m.latRemote != nil {
		return false
	}
	for _, b := range m.tlbs {
		if _, ok := b.(tlb.Snapshottable); !ok {
			return false
		}
	}
	return true
}

// NodeSnapshot is a reusable checkpoint of one node's contained state. The
// caches checkpoint themselves through their set-granular undo journals
// (armed here, rolled back or committed below) — a burst touches a handful
// of sets, so copying whole tag arrays per round would dwarf the burst
// itself. The timed TLB (if the scheme has one) is tiny and is copied
// outright, as are the node's statistics. Everything the contained path
// cannot touch — attraction memory, directory, network, VM — stays frozen
// between round barriers and needs no checkpoint.
type NodeSnapshot struct {
	tlb   tlb.Snapshot
	stats NodeStats
}

// SnapshotNode checkpoints node n's contained state into s, reusing s's
// buffers across rounds. Every checkpoint must be closed by exactly one
// RestoreNode or CommitNode before the node's state is read globally.
func (m *Machine) SnapshotNode(n addr.Node, s *NodeSnapshot) {
	m.flcs[n].ArmUndo()
	m.slcs[n].ArmUndo()
	if m.tlbs != nil {
		m.tlbs[n].(tlb.Snapshottable).SnapshotTo(&s.tlb)
	}
	s.stats = m.stats[n]
}

// RestoreNode rolls node n's contained state back to the open checkpoint.
func (m *Machine) RestoreNode(n addr.Node, s *NodeSnapshot) {
	m.flcs[n].RollbackUndo()
	m.slcs[n].RollbackUndo()
	if m.tlbs != nil {
		m.tlbs[n].(tlb.Snapshottable).RestoreFrom(&s.tlb)
	}
	m.stats[n] = s.stats
}

// CommitNode closes node n's open checkpoint keeping all mutations (the
// whole burst committed, nothing to rewind).
func (m *Machine) CommitNode(n addr.Node) {
	m.flcs[n].DisarmUndo()
	m.slcs[n].DisarmUndo()
}

// AccessContained executes one reference if and only if it is contained,
// mirroring Access cycle-for-cycle and counter-for-counter on those paths.
// It returns ok=false — with no state touched at all — when the reference
// needs anything beyond node n's private state:
//
//   - the page is unmapped (schemes ≤ L2 translate up front; first touch
//     assigns a frame, which must happen in sequential order),
//   - a read misses both caches (the SLC fill goes through the protocol),
//   - a write misses the SLC or hits it without ownership (an upgrade or
//     fetch transaction),
//   - which leaves: FLC hits, FLC-miss/SLC-hit reads (the FLC fill is
//     write-through and its victims are silently dropped), and SLC-hit
//     writes with the block already Exclusive.
//
// The classification is pure (Contains/Probe/TryTranslate only); mutation
// starts only after the reference is known to be contained, in exactly the
// order Access would perform it.
func (m *Machine) AccessContained(now uint64, n addr.Node, va addr.Virtual, write bool) (AccessResult, bool) {
	g := m.g
	scheme := m.cfg.Scheme

	var pa uint64
	if scheme <= config.L2TLB {
		p, ok := m.sys.TryTranslate(va)
		if !ok {
			return AccessResult{}, false
		}
		pa = uint64(p)
	}
	var flcAddr, slcAddr uint64
	switch scheme {
	case config.L0TLB:
		flcAddr, slcAddr = pa, pa
	case config.L1TLB:
		flcAddr, slcAddr = uint64(va), pa
	default:
		flcAddr, slcAddr = uint64(va), uint64(va)
	}
	flc, slc := m.flcs[n], m.slcs[n]

	if !write {
		if !flc.Contains(flcAddr) && !slc.Contains(slcAddr) {
			return AccessResult{}, false
		}
	} else {
		if !slc.Contains(slcAddr) {
			return AccessResult{}, false
		}
		var protoBlock uint64
		if scheme <= config.L2TLB {
			pb, ok := m.sys.TryTranslate(g.Block(va))
			if !ok {
				return AccessResult{}, false
			}
			protoBlock = uint64(pb)
		} else {
			protoBlock = uint64(g.Block(va))
		}
		if m.prot.StateAt(n, protoBlock) != mem.Exclusive {
			return AccessResult{}, false
		}
	}

	// Commit: the exact mutation sequence of Access for these cases.
	st := &m.stats[n]
	st.Refs++
	if write {
		st.Writes++
	} else {
		st.Reads++
	}
	var trans uint64
	if scheme == config.L0TLB {
		trans += m.tlbAccess(now, n, g.Page(va), false)
	}

	if !write {
		if flc.ReadU(flcAddr).Hit {
			st.FLCHits++
			st.TransCycles += trans
			m.latAccess.Observe(trans)
			return AccessResult{Cycles: trans, TransCycles: trans, Class: ClassFLCHit}, true
		}
		if scheme == config.L1TLB {
			trans += m.tlbAccess(now, n, g.Page(va), false)
		}
		rs := slc.ReadU(slcAddr)
		if !rs.Hit || rs.Evicted {
			panic("machine: contained read diverged from its classification")
		}
		st.SLCHits++
		st.StallLocal += m.cfg.Timing.SLCHit
		st.TransCycles += trans
		m.latAccess.Observe(m.cfg.Timing.SLCHit + trans)
		return AccessResult{Cycles: m.cfg.Timing.SLCHit + trans, TransCycles: trans, Class: ClassSLCHit}, true
	}

	flc.WriteU(flcAddr)
	if scheme == config.L1TLB {
		trans += m.tlbAccess(now, n, g.Page(va), false)
	}
	ws := slc.WriteU(slcAddr)
	if !ws.Hit || ws.Evicted {
		panic("machine: contained write diverged from its classification")
	}
	st.SLCHits++
	st.StallLocal += m.cfg.Timing.SLCHit
	st.TransCycles += trans
	m.latAccess.Observe(m.cfg.Timing.SLCHit + trans)
	return AccessResult{Cycles: m.cfg.Timing.SLCHit + trans, TransCycles: trans, Class: ClassSLCHit}, true
}
