package machine

import (
	"testing"

	"vcoma/internal/addr"
	"vcoma/internal/config"
)

// These tests pin the per-class latencies of the full access path against
// the §5.1 model: FLC hits are free, SLC hits cost 6, local attraction-
// memory service 74 (+probe composition for remote).

func TestFLCHitIsFree(t *testing.T) {
	m := newMachine(t, config.VCOMA)
	preloadRange(m, 0x10000, 4096)
	v := addr.Virtual(0x10000)
	m.Access(0, 0, v, false)
	r := m.Access(1000, 0, v, false)
	if r.Class != ClassFLCHit || r.Cycles != 0 {
		t.Fatalf("FLC hit: %+v", r)
	}
}

func TestSLCHitCost(t *testing.T) {
	m := newMachine(t, config.VCOMA)
	preloadRange(m, 0x10000, 4096)
	v := addr.Virtual(0x10000)
	m.Access(0, 0, v, false)
	// Same SLC block (32 B), different FLC block (16 B): FLC miss, SLC hit.
	r := m.Access(1000, 0, v+16, false)
	if r.Class != ClassSLCHit || r.Cycles != m.Config().Timing.SLCHit {
		t.Fatalf("SLC hit: %+v", r)
	}
}

func TestLocalAMCost(t *testing.T) {
	m := newMachine(t, config.VCOMA)
	preloadRange(m, 0x10000, 4096)
	// Find a block placed locally at node 0.
	g := m.Geometry()
	var local addr.Virtual
	for off := uint64(0); off < 4096; off += g.PageSize() {
		if m.VM().PlacementNode(addr.Virtual(0x10000+off)) == 0 {
			local = addr.Virtual(0x10000 + off)
			break
		}
	}
	if local == 0 {
		t.Skip("no locally-placed page in the range")
	}
	r := m.Access(0, 0, local, false)
	if r.Class != ClassLocalAM || r.Cycles != m.Config().Timing.AMHit {
		t.Fatalf("local AM: %+v", r)
	}
}

func TestRemoteCostExceedsBlockTransfer(t *testing.T) {
	m := newMachine(t, config.VCOMA)
	preloadRange(m, 0x10000, 4096)
	g := m.Geometry()
	var remote addr.Virtual
	for off := uint64(0); off < 4096; off += g.PageSize() {
		if m.VM().PlacementNode(addr.Virtual(0x10000+off)) != 0 {
			remote = addr.Virtual(0x10000 + off)
			break
		}
	}
	r := m.Access(0, 0, remote, false)
	if r.Class != ClassRemote {
		t.Fatalf("remote access classified %v", r.Class)
	}
	tm := m.Config().Timing
	min := tm.AMHit + tm.NetRequest + tm.DirLookup + tm.NetBlock
	if r.Cycles < min {
		t.Fatalf("remote cost %d below the message floor %d", r.Cycles, min)
	}
}

func TestL0TLBPenaltyOnCriticalPath(t *testing.T) {
	cfg := config.SmallTest().WithScheme(config.L0TLB).WithTLB(1, config.FullyAssoc)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	preloadRange(m, 0x10000, 4096)
	a, b := addr.Virtual(0x10000), addr.Virtual(0x10110) // different pages and FLC sets
	m.Access(0, 0, a, false)
	m.Access(1000, 0, b, false) // evicts a's entry (1-entry TLB)
	r := m.Access(2000, 0, a, false)
	// FLC still warm, but the TLB misses: the access costs exactly the
	// miss penalty.
	if r.Class != ClassFLCHit || r.TransCycles != cfg.Timing.TLBMiss || r.Cycles != cfg.Timing.TLBMiss {
		t.Fatalf("TLB-miss-on-FLC-hit: %+v", r)
	}
}

func TestStatsStallDecomposition(t *testing.T) {
	// Node stats must decompose: every access's cycles land in exactly
	// one stall bucket plus translation.
	m := newMachine(t, config.L0TLB)
	preloadRange(m, 0x10000, 8192)
	var sum uint64
	now := uint64(0)
	for i := 0; i < 200; i++ {
		r := m.Access(now, 0, addr.Virtual(0x10000+(i*56)%8192), i%3 == 0)
		sum += r.Cycles
		now += r.Cycles + 10
	}
	st := m.NodeStats(0)
	if st.StallLocal+st.StallRemote+st.TransCycles != sum {
		t.Fatalf("decomposition: %d + %d + %d != %d",
			st.StallLocal, st.StallRemote, st.TransCycles, sum)
	}
	if st.FLCHits+st.SLCHits+st.LocalAM+st.Remote > st.Refs {
		t.Fatalf("class counts exceed refs: %+v", st)
	}
}
