package machine

import (
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/network"
	"vcoma/internal/vm"
)

// MgmtResult reports a memory-management operation (protection change or
// demap): its latency and how much state it had to touch.
type MgmtResult struct {
	// Cycles is the initiating processor's latency for the operation.
	Cycles uint64
	// TLBShootdowns is the number of per-node TLB entries invalidated
	// (always 0 or 1 for V-COMA: the home's DLB entry).
	TLBShootdowns int
	// CacheFlushes is the number of cache blocks invalidated to keep
	// page-level attributes consistent.
	CacheFlushes int
	// CopiesDropped is the number of attraction-memory copies evicted
	// (demap only).
	CopiesDropped int
}

// interProcessorInterrupt is the charged cost for interrupting a remote
// processor to run a TLB-invalidation handler — the classic shootdown cost
// that V-COMA avoids (paper §1: "TLB consistency must be maintained").
const interProcessorInterrupt = 200

// ChangeProtection changes the page-level protection of v's page, issued
// by node n at time now, and returns the operation's cost (paper §4.3).
//
// In the TLB schemes the new attributes must reach every node's private
// TLB: a machine-wide shootdown (interrupt, invalidate, acknowledge), plus
// — in the virtual-cache schemes — flushing the page's blocks from the
// caches that cache access-right bits (§2.2.4).
//
// In V-COMA one message goes to the page's home: the PE updates the page
// table and its own DLB, then pushes update messages to the nodes that the
// directory says hold blocks of the page.
func (m *Machine) ChangeProtection(now uint64, n addr.Node, v addr.Virtual, prot vm.Prot) MgmtResult {
	page := m.sys.SetProtection(v, prot)
	if m.cfg.Scheme == config.VCOMA {
		return m.vcomaProtChange(now, n, v, page)
	}
	return m.tlbProtChange(now, n, v)
}

func (m *Machine) tlbProtChange(now uint64, n addr.Node, v addr.Virtual) MgmtResult {
	res := MgmtResult{}
	pn := m.g.Page(v)
	fabric := m.prot.Fabric()
	done := now
	for o := addr.Node(0); int(o) < m.g.Nodes(); o++ {
		// Interrupt every processor, invalidate its TLB entry, collect
		// the acknowledgement. Shootdowns are synchronous and global:
		// nothing tells us which TLBs actually cache the entry.
		t := fabric.Send(now, n, o, network.Request)
		t += interProcessorInterrupt
		if m.tlbs[o].Probe(pn) {
			res.TLBShootdowns++
		}
		m.tlbs[o].Invalidate(pn)
		res.CacheFlushes += m.flushPageFromCaches(o, v)
		t = fabric.Send(t, o, n, network.Request)
		if t > done {
			done = t
		}
	}
	res.Cycles = done - now
	return res
}

func (m *Machine) vcomaProtChange(now uint64, n addr.Node, v addr.Virtual, page *vm.Page) MgmtResult {
	res := MgmtResult{}
	fabric := m.prot.Fabric()
	home := page.Home
	// One request to the home; the PE updates page table and DLB.
	t := fabric.Send(now, n, home, network.Request)
	t += m.cfg.Timing.DirLookup
	if m.engines[home].DLB().Probe(m.g.Page(v)) {
		res.TLBShootdowns = 1
	}
	// The DLB entry itself stays valid (the translation is unchanged);
	// only the cached attribute changes, which the engine's page table
	// already reflects. Push updates to every node holding blocks of the
	// page, per the directory.
	done := t
	holders := m.pageHolders(v)
	for _, o := range holders {
		ta := fabric.Send(t, home, o, network.Request)
		res.CacheFlushes += m.flushPageFromCaches(o, v)
		ta = fabric.Send(ta, o, home, network.Request)
		if ta > done {
			done = ta
		}
	}
	// Completion notice back to the initiator.
	done = fabric.Send(done, home, n, network.Request)
	res.Cycles = done - now
	return res
}

// pageHolders returns the set of nodes holding at least one block of v's
// page, according to the directory.
func (m *Machine) pageHolders(v addr.Virtual) []addr.Node {
	var mask uint64
	base := uint64(m.g.PageBase(v))
	for off := uint64(0); off < m.g.PageSize(); off += m.g.AMBlockSize() {
		if e := m.prot.Directory().Lookup(m.protoAddr(addr.Virtual(base + off))); e != nil {
			mask |= e.Copyset
		}
	}
	var out []addr.Node
	for o := addr.Node(0); int(o) < m.g.Nodes(); o++ {
		if mask&(1<<uint(o)) != 0 {
			out = append(out, o)
		}
	}
	return out
}

// flushPageFromCaches removes every block of v's page from node o's FLC
// and SLC (in whatever address space each uses), returning the number of
// blocks that were present.
func (m *Machine) flushPageFromCaches(o addr.Node, v addr.Virtual) int {
	base := m.g.PageBase(v)
	size := m.g.PageSize()
	flcA, slcA := uint64(base), uint64(base)
	switch m.cfg.Scheme {
	case config.L0TLB:
		pa := uint64(m.sys.Translate(base))
		flcA, slcA = pa, pa
	case config.L1TLB:
		slcA = uint64(m.sys.Translate(base))
	}
	flushed := 0
	before := m.slcs[o].OccupiedLines() + m.flcs[o].OccupiedLines()
	m.slcs[o].InvalidateRange(slcA, size)
	m.flcs[o].InvalidateRange(flcA, size)
	flushed = before - m.slcs[o].OccupiedLines() - m.flcs[o].OccupiedLines()
	return flushed
}

// Demap removes v's page mapping entirely — an address-mapping change
// (§2.2.1). All cached state derived from the mapping must go: TLB entries
// machine-wide (or the home's DLB entry), cache blocks, attraction-memory
// copies and directory entries. Returns an error if the page is unmapped.
func (m *Machine) Demap(now uint64, n addr.Node, v addr.Virtual) (MgmtResult, error) {
	if m.sys.Lookup(v) == nil {
		return MgmtResult{}, fmt.Errorf("machine: demap of unmapped address %#x", uint64(v))
	}
	// All cached state must be purged before the mapping disappears: the
	// eviction path still reverse-translates physical victims.
	protoBase := m.protoAddr(m.g.PageBase(v))

	var res MgmtResult
	pn := m.g.Page(v)
	if m.cfg.Scheme == config.VCOMA {
		// One message to the home: the PE drops the DLB entry and
		// reclaims the directory page.
		fabric := m.prot.Fabric()
		home := m.g.HomeNode(v)
		t := fabric.Send(now, n, home, network.Request)
		t += m.cfg.Timing.DirLookup
		if m.engines[home].DLB().Probe(pn) {
			res.TLBShootdowns = 1
		}
		m.engines[home].DLB().Invalidate(pn)
		ev := m.prot.EvictPage(t, protoBase)
		res.CopiesDropped = ev.CopiesDropped
		res.Cycles = ev.Done - now
		for o := addr.Node(0); int(o) < m.g.Nodes(); o++ {
			res.CacheFlushes += m.flushPageVirtual(o, v)
		}
	} else {
		// TLB schemes: machine-wide shootdown, then evict the frame's
		// blocks.
		sd := m.tlbProtChangeForDemap(now, n, pn, v)
		res.TLBShootdowns = sd.TLBShootdowns
		res.CacheFlushes = sd.CacheFlushes
		ev := m.prot.EvictPage(now+sd.Cycles, protoBase)
		res.CopiesDropped = ev.CopiesDropped
		res.Cycles = ev.Done - now
	}

	if _, err := m.sys.Unmap(v); err != nil {
		return MgmtResult{}, err
	}
	return res, nil
}

// tlbProtChangeForDemap is the shootdown half of Demap for the TLB
// schemes; it must not consult the VM (the mapping is already gone).
func (m *Machine) tlbProtChangeForDemap(now uint64, n addr.Node, pn addr.PageNum, v addr.Virtual) MgmtResult {
	res := MgmtResult{}
	fabric := m.prot.Fabric()
	done := now
	for o := addr.Node(0); int(o) < m.g.Nodes(); o++ {
		t := fabric.Send(now, n, o, network.Request)
		t += interProcessorInterrupt
		if m.tlbs[o].Probe(pn) {
			res.TLBShootdowns++
		}
		m.tlbs[o].Invalidate(pn)
		res.CacheFlushes += m.flushPageVirtual(o, v)
		t = fabric.Send(t, o, n, network.Request)
		if t > done {
			done = t
		}
	}
	res.Cycles = done - now
	return res
}

// flushPageVirtual flushes a page from node o's caches when the caches'
// own address spaces may no longer be reachable through the VM (demap):
// virtual levels flush by VA directly; physical levels are flushed by the
// protocol's back-invalidation during EvictPage, so nothing extra here.
func (m *Machine) flushPageVirtual(o addr.Node, v addr.Virtual) int {
	base := uint64(m.g.PageBase(v))
	size := m.g.PageSize()
	n := 0
	switch m.cfg.Scheme {
	case config.L0TLB:
		// Both caches physical: EvictPage's back-invalidation covers them.
	case config.L1TLB:
		before := m.flcs[o].OccupiedLines()
		m.flcs[o].InvalidateRange(base, size)
		n += before - m.flcs[o].OccupiedLines()
	default: // L2, L3, V-COMA: both caches virtual
		before := m.flcs[o].OccupiedLines() + m.slcs[o].OccupiedLines()
		m.flcs[o].InvalidateRange(base, size)
		m.slcs[o].InvalidateRange(base, size)
		n += before - m.flcs[o].OccupiedLines() - m.slcs[o].OccupiedLines()
	}
	return n
}

// CheckProtection verifies an access against v's page protection without
// performing it, returning an error on a violation. The timed Access path
// does not check (the workloads never violate); management tests and the
// protection example use this entry point.
func (m *Machine) CheckProtection(v addr.Virtual, write bool) error {
	want := vm.ProtRead
	if write {
		want = vm.ProtWrite
	}
	if p := m.sys.Protection(v); !p.Allows(want) {
		return fmt.Errorf("machine: %v access to %#x violates page protection %v",
			want, uint64(v), p)
	}
	return nil
}
