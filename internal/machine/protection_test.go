package machine

import (
	"testing"

	"vcoma/internal/addr"
	"vcoma/internal/config"
	"vcoma/internal/mem"
	"vcoma/internal/vm"
)

func TestProtString(t *testing.T) {
	if vm.ProtRW.String() != "rw-" || vm.ProtExec.String() != "--x" {
		t.Fatalf("prot strings: %v %v", vm.ProtRW, vm.ProtExec)
	}
}

func TestCheckProtection(t *testing.T) {
	m := newMachine(t, config.VCOMA)
	preloadRange(m, 0x10000, 4096)
	v := addr.Virtual(0x10000)
	if err := m.CheckProtection(v, true); err != nil {
		t.Fatalf("default rw page rejected a write: %v", err)
	}
	m.ChangeProtection(0, 0, v, vm.ProtRead)
	if err := m.CheckProtection(v, true); err == nil {
		t.Fatal("write to read-only page allowed")
	}
	if err := m.CheckProtection(v, false); err != nil {
		t.Fatalf("read of read-only page rejected: %v", err)
	}
}

func TestProtChangeShootsDownTLBs(t *testing.T) {
	m := newMachine(t, config.L0TLB)
	preloadRange(m, 0x10000, 4096)
	v := addr.Virtual(0x10000)
	// Warm the TLB of two nodes.
	m.Access(0, 0, v, false)
	m.Access(0, 2, v, false)
	res := m.ChangeProtection(1000, 1, v, vm.ProtRead)
	if res.TLBShootdowns != 2 {
		t.Fatalf("shootdowns = %d, want 2", res.TLBShootdowns)
	}
	if res.Cycles == 0 {
		t.Fatal("shootdown was free")
	}
	pn := m.Geometry().Page(v)
	for n := addr.Node(0); n < 4; n++ {
		if m.TLB(n).Probe(pn) {
			t.Fatalf("node %d TLB still maps the page", n)
		}
	}
}

func TestProtChangeVCOMACheaperThanShootdown(t *testing.T) {
	// The paper's §4.3 point: a protection change in V-COMA is one
	// home-node transaction plus holder updates, not a machine-wide
	// interrupt storm.
	var costs [2]uint64
	for i, sch := range []config.Scheme{config.L0TLB, config.VCOMA} {
		m := newMachine(t, sch)
		preloadRange(m, 0x10000, 4096)
		v := addr.Virtual(0x10000)
		m.Access(0, 0, v, false)
		res := m.ChangeProtection(1000, 0, v, vm.ProtRead)
		costs[i] = res.Cycles
	}
	if costs[1] >= costs[0] {
		t.Fatalf("V-COMA protection change (%d) not cheaper than L0 shootdown (%d)",
			costs[1], costs[0])
	}
}

func TestProtChangeFlushesVirtualCaches(t *testing.T) {
	m := newMachine(t, config.VCOMA)
	preloadRange(m, 0x10000, 4096)
	v := addr.Virtual(0x10000)
	m.Access(0, 2, v, false)
	if !m.SLC(2).Contains(uint64(v)) {
		t.Fatal("setup: SLC not warm")
	}
	res := m.ChangeProtection(1000, 0, v, vm.ProtRead)
	if res.CacheFlushes == 0 {
		t.Fatal("no cache blocks flushed")
	}
	if m.SLC(2).Contains(uint64(v)) || m.FLC(2).Contains(uint64(v)) {
		t.Fatal("holder's caches still hold the page after a protection change")
	}
}

func TestDemapRemovesEverything(t *testing.T) {
	for _, sch := range config.Schemes() {
		m := newMachine(t, sch)
		preloadRange(m, 0x10000, 4096)
		v := addr.Virtual(0x10000)
		// Spread copies: two readers and a writer on various blocks.
		m.Access(0, 0, v, false)
		m.Access(0, 2, v, false)
		m.Access(0, 3, v+64, true)

		res, err := m.Demap(5000, 1, v)
		if err != nil {
			t.Fatalf("%v: %v", sch, err)
		}
		if res.CopiesDropped == 0 {
			t.Fatalf("%v: no attraction-memory copies dropped", sch)
		}
		if res.Cycles == 0 {
			t.Fatalf("%v: demap was free", sch)
		}
		if m.VM().Lookup(v) != nil {
			t.Fatalf("%v: page still mapped", sch)
		}
		// No node may still hold any block of the page.
		g := m.Geometry()
		for n := addr.Node(0); int(n) < g.Nodes(); n++ {
			if m.FLC(n).OccupiedLines()+m.SLC(n).OccupiedLines() > 0 {
				// Cache occupancy from OTHER pages is fine; check this page.
				for off := uint64(0); off < g.PageSize(); off += 16 {
					if m.FLC(n).Contains(uint64(v) + off) {
						t.Fatalf("%v: node %d FLC holds demapped page", sch, n)
					}
				}
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", sch, err)
		}
		// Demapping again fails cleanly.
		if _, err := m.Demap(9000, 1, v); err == nil {
			t.Fatalf("%v: double demap succeeded", sch)
		}
	}
}

func TestDemapVCOMAAvoidsShootdownStorm(t *testing.T) {
	var shootdowns [2]int
	for i, sch := range []config.Scheme{config.L3TLB, config.VCOMA} {
		m := newMachine(t, sch)
		preloadRange(m, 0x10000, 4096)
		v := addr.Virtual(0x10000)
		// Make every node touch the page so TLBs/DLB are warm.
		for n := addr.Node(0); n < 4; n++ {
			m.Access(uint64(n)*100, n, v, false)
		}
		res, err := m.Demap(5000, 0, v)
		if err != nil {
			t.Fatal(err)
		}
		shootdowns[i] = res.TLBShootdowns
	}
	if shootdowns[1] > 1 {
		t.Fatalf("V-COMA demap touched %d translation buffers, want at most 1", shootdowns[1])
	}
}

func TestDemappedBlocksRefetchable(t *testing.T) {
	// After a demap, re-touching the address remaps the page and
	// refetches data (fresh, from backing store).
	m := newMachine(t, config.VCOMA)
	preloadRange(m, 0x10000, 4096)
	v := addr.Virtual(0x10000)
	m.Access(0, 2, v, false)
	if _, err := m.Demap(1000, 0, v); err != nil {
		t.Fatal(err)
	}
	r := m.Access(10000, 2, v, false)
	if r.Cycles == 0 {
		t.Fatal("access to demapped page was free")
	}
	if m.Protocol().StateAt(2, uint64(m.Geometry().Block(v))) == mem.Invalid {
		t.Fatal("refetched block absent")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
