package runner

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "nested", "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("roundtrip", 1)
	want := payload{N: 42, S: "x"}
	if err := c.Put(key, "job", want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !c.Get(key, &got) || got != want {
		t.Fatalf("got %+v", got)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d", c.Len())
	}
	// A different key misses.
	if c.Get(KeyOf("other"), &got) {
		t.Fatal("miss reported as hit")
	}
}

// entryPath locates the single entry file of a one-entry cache.
func entryPath(t *testing.T, c *Cache, key Key) string {
	t.Helper()
	p := filepath.Join(c.Dir(), string(key[:2]), string(key)+".json")
	if _, err := os.Stat(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCacheCorruptedEntriesFallBackToRecompute(t *testing.T) {
	for name, corrupt := range map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)/2] },
		"garbage":      func([]byte) []byte { return []byte("not json at all {{{") },
		"empty":        func([]byte) []byte { return nil },
		"wrong-key":    func(b []byte) []byte { return []byte(strings.Replace(string(b), `"key":"`, `"key":"00`, 1)) },
		"wrong-schema": func(b []byte) []byte { return []byte(strings.Replace(string(b), cacheSchema, "vcoma-cache-v0", 1)) },
	} {
		t.Run(name, func(t *testing.T) {
			c, err := OpenCache(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := KeyOf("corrupt", name)
			var executions atomic.Int64
			j := New("j", key, func(context.Context) (payload, error) {
				executions.Add(1)
				return payload{N: 9}, nil
			})
			// Warm the cache, then corrupt the entry on disk.
			if _, err := Run(context.Background(), []Job{j}, Options{Cache: c}); err != nil {
				t.Fatal(err)
			}
			path := entryPath(t, c, key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			// The corrupted entry must be a miss: the job recomputes.
			rr, err := Run(context.Background(), []Job{j}, Options{Cache: c})
			if err != nil {
				t.Fatal(err)
			}
			if rr.CacheHits != 0 || executions.Load() != 2 {
				t.Fatalf("corrupt entry served: hits=%d execs=%d", rr.CacheHits, executions.Load())
			}
			v, err := ValueOf[payload](rr, "j")
			if err != nil || v.N != 9 {
				t.Fatalf("recomputed value %+v, %v", v, err)
			}
			// And the recomputation repaired the entry.
			rr, err = Run(context.Background(), []Job{j}, Options{Cache: c})
			if err != nil || rr.CacheHits != 1 {
				t.Fatalf("entry not repaired: hits=%d, %v", rr.CacheHits, err)
			}
		})
	}
}

func TestCacheClear(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Put(KeyOf("clear", i), "j", i); err != nil {
			t.Fatal(err)
		}
	}
	// An unrelated file in the directory must survive Clear.
	keep := filepath.Join(dir, "README")
	if err := os.WriteFile(keep, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 5 {
		t.Fatalf("len %d", c.Len())
	}
	if err := c.Clear(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("len after clear %d", c.Len())
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatal("Clear removed an unrelated file")
	}
	// The cache still works after clearing.
	if err := c.Put(KeyOf("clear", 99), "j", 99); err != nil {
		t.Fatal(err)
	}
	var v int
	if !c.Get(KeyOf("clear", 99), &v) || v != 99 {
		t.Fatal("cache unusable after Clear")
	}
}

func TestCacheFailedJobsAreNotCached(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("failing")
	calls := 0
	j := New("j", key, func(context.Context) (int, error) {
		calls++
		if calls == 1 {
			panic("first attempt dies")
		}
		return 5, nil
	})
	if _, err := Run(context.Background(), []Job{j}, Options{Cache: c}); err == nil {
		t.Fatal("panic not reported")
	}
	if c.Len() != 0 {
		t.Fatal("failed job left a cache entry")
	}
	rr, err := Run(context.Background(), []Job{j}, Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := ValueOf[int](rr, "j"); v != 5 {
		t.Fatalf("retry value %d", v)
	}
}
