package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Chaos is a fault injector for the experiment pipeline itself — the
// negative-testing discipline of coherence.InjectTestBug applied one layer
// up. It wraps a job plan so that selected jobs panic, hang until their
// context aborts them, fail transiently, or trigger a mid-run cancellation,
// and it can corrupt on-disk cache entries in place; the chaos tests and
// the CI chaos smoke use it to prove the supervisor detects, retries,
// quarantines and resumes correctly.
//
// Faults are matched by job-name substring and injected deterministically,
// so a chaos run is as reproducible as a healthy one.
type Chaos struct {
	Faults []Fault

	mu        sync.Mutex
	attempts  map[string]int
	completed int
	cancel    context.CancelCauseFunc
}

// FaultKind enumerates the injectable pipeline faults.
type FaultKind int

const (
	// FaultPanic makes matching jobs panic on every execution.
	FaultPanic FaultKind = iota
	// FaultHang makes matching jobs block until their context ends —
	// modelling a hung simulation that only the per-job deadline (or a
	// run-level cancellation) can reclaim.
	FaultHang
	// FaultFlaky makes matching jobs fail with a transient error on their
	// first Count attempts, then succeed — exercising the retry/backoff
	// path end to end.
	FaultFlaky
	// FaultCancel cancels the run context after Count jobs have completed,
	// modelling a SIGTERM arriving mid-sweep.
	FaultCancel
	// FaultCorrupt corrupts the existing cache entries of matching jobs in
	// place (see CorruptMatching); the wrapped jobs themselves are
	// untouched.
	FaultCorrupt
)

// Fault is one injected failure: a kind, a job-name substring to match
// (unused for FaultCancel), and a count (FaultFlaky: transient failures
// before success; FaultCancel: completed jobs before cancellation).
type Fault struct {
	Kind  FaultKind
	Match string
	Count int
}

// ErrChaosCancel is the cancellation cause a FaultCancel injects.
var ErrChaosCancel = errors.New("chaos: injected mid-run cancellation")

// ParseChaos parses a comma-separated fault spec:
//
//	panic:<substr>      matching jobs panic
//	hang:<substr>       matching jobs block until their context aborts them
//	flaky:<substr>:<k>  matching jobs fail transiently k times, then succeed
//	cancel:<n>          cancel the run after n completed jobs
//	corrupt:<substr>    corrupt matching jobs' cache entries before the run
//
// An empty spec yields a nil (disarmed) Chaos.
func ParseChaos(spec string) (*Chaos, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	c := &Chaos{attempts: make(map[string]int)}
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		bad := func() error {
			return fmt.Errorf("runner: bad chaos fault %q (want panic:<substr>, hang:<substr>, flaky:<substr>:<k>, cancel:<n>, or corrupt:<substr>)", part)
		}
		f := Fault{}
		switch fields[0] {
		case "panic", "hang", "corrupt":
			if len(fields) != 2 || fields[1] == "" {
				return nil, bad()
			}
			f.Kind = map[string]FaultKind{"panic": FaultPanic, "hang": FaultHang, "corrupt": FaultCorrupt}[fields[0]]
			f.Match = fields[1]
		case "flaky":
			if len(fields) != 3 || fields[1] == "" {
				return nil, bad()
			}
			k, err := strconv.Atoi(fields[2])
			if err != nil || k < 1 {
				return nil, bad()
			}
			f.Kind, f.Match, f.Count = FaultFlaky, fields[1], k
		case "cancel":
			if len(fields) != 2 {
				return nil, bad()
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				return nil, bad()
			}
			f.Kind, f.Count = FaultCancel, n
		default:
			return nil, bad()
		}
		c.Faults = append(c.Faults, f)
	}
	return c, nil
}

// String renders the armed faults in spec form.
func (c *Chaos) String() string {
	if c == nil {
		return ""
	}
	var parts []string
	for _, f := range c.Faults {
		switch f.Kind {
		case FaultPanic:
			parts = append(parts, "panic:"+f.Match)
		case FaultHang:
			parts = append(parts, "hang:"+f.Match)
		case FaultFlaky:
			parts = append(parts, fmt.Sprintf("flaky:%s:%d", f.Match, f.Count))
		case FaultCancel:
			parts = append(parts, fmt.Sprintf("cancel:%d", f.Count))
		case FaultCorrupt:
			parts = append(parts, "corrupt:"+f.Match)
		}
	}
	return strings.Join(parts, ",")
}

// BindCancel gives the injector the run context's cancel function, armed by
// any FaultCancel fault. Call it with the CancelCauseFunc guarding the
// context passed to Run.
func (c *Chaos) BindCancel(cancel context.CancelCauseFunc) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.cancel = cancel
	c.mu.Unlock()
}

// Wrap returns the plan with every execution fault woven into the matching
// jobs' run functions. Names, keys and dependencies are untouched, so
// cache identity and report assembly are exactly those of a healthy run.
// A nil Chaos returns jobs unchanged.
func (c *Chaos) Wrap(jobs []Job) []Job {
	if c == nil {
		return jobs
	}
	out := make([]Job, len(jobs))
	for i := range jobs {
		out[i] = jobs[i]
		inner := out[i].run
		name := out[i].Name
		out[i].run = func(ctx context.Context) (any, error) {
			if err := c.before(ctx, name); err != nil {
				return nil, err
			}
			v, err := inner(ctx)
			c.after(name)
			return v, err
		}
	}
	return out
}

// before injects pre-execution faults for one attempt of the named job.
func (c *Chaos) before(ctx context.Context, name string) error {
	c.mu.Lock()
	attempt := c.attempts[name]
	c.attempts[name]++
	c.mu.Unlock()
	for _, f := range c.Faults {
		if f.Match == "" || !strings.Contains(name, f.Match) {
			continue
		}
		switch f.Kind {
		case FaultPanic:
			panic(fmt.Sprintf("chaos: injected panic in %s", name))
		case FaultHang:
			<-ctx.Done()
			return ctx.Err()
		case FaultFlaky:
			if attempt < f.Count {
				return Transient(fmt.Errorf("chaos: injected transient failure %d/%d in %s", attempt+1, f.Count, name))
			}
		}
	}
	return nil
}

// after counts a completed execution and fires any armed FaultCancel.
func (c *Chaos) after(name string) {
	c.mu.Lock()
	c.completed++
	n := c.completed
	cancel := c.cancel
	c.mu.Unlock()
	if cancel == nil {
		return
	}
	for _, f := range c.Faults {
		if f.Kind == FaultCancel && n == f.Count {
			cancel(ErrChaosCancel)
		}
	}
}

// CorruptMatching applies every FaultCorrupt fault to the cache: each
// existing entry of a matching job has its recorded checksum damaged in
// place (still valid JSON, so the quarantine reason is the checksum
// mismatch, the subtlest corruption the cache can detect). It returns how
// many entries were corrupted. Call it after the cache is populated and
// before the run that should trip over the damage.
func (c *Chaos) CorruptMatching(cache *Cache, jobs []Job) (int, error) {
	if c == nil || cache == nil {
		return 0, nil
	}
	n := 0
	for _, f := range c.Faults {
		if f.Kind != FaultCorrupt {
			continue
		}
		for i := range jobs {
			j := &jobs[i]
			if j.Key == "" || !strings.Contains(j.Name, f.Match) {
				continue
			}
			corrupted, err := corruptEntry(cache.EntryPath(j.Key))
			if err != nil {
				return n, fmt.Errorf("runner: chaos: corrupting %s: %w", j.Name, err)
			}
			if corrupted {
				n++
			}
		}
	}
	return n, nil
}

// corruptEntry damages the entry file at path: a parsable envelope gets its
// checksum flipped (valid JSON, wrong sum); anything else is overwritten
// with garbage. Reports false when no entry exists.
func corruptEntry(path string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	var e envelope
	if json.Unmarshal(data, &e) == nil && len(e.Sum) > 0 {
		flip := byte('0')
		if e.Sum[0] == '0' {
			flip = '1'
		}
		e.Sum = string(flip) + e.Sum[1:]
		if out, err := json.Marshal(e); err == nil {
			return true, os.WriteFile(path, out, 0o644)
		}
	}
	return true, os.WriteFile(path, []byte("chaos: corrupted entry\n"), 0o644)
}
