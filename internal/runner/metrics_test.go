package runner

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"vcoma/internal/obs"
)

func TestCacheMetricsSidecarRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("metrics", 1)
	reg := obs.NewRegistry()
	reg.Counter("refs").Add(12)
	s := obs.NewSampler(reg, 100)
	s.Tick(100)
	s.Finish(250)
	ts := s.Export()
	want := JobMetrics{Job: "j", TimeSeries: &ts}
	if err := c.PutMetrics(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.GetMetrics(key)
	if !ok || got.Job != "j" {
		t.Fatalf("got %+v, ok=%v", got, ok)
	}
	if v, ok := got.TimeSeries.Last("refs"); !ok || v != 12 {
		t.Fatalf("final refs sample = %v, ok=%v", v, ok)
	}
	// The sidecar is informational: it must not count as a cache entry.
	if c.Len() != 0 {
		t.Fatalf("sidecar counted as entry: len %d", c.Len())
	}
	if _, ok := c.GetMetrics(KeyOf("other")); ok {
		t.Fatal("miss reported as hit")
	}
}

func TestRunWritesMetricsSidecar(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("sidecar")
	j := New("j", key, func(ctx context.Context) (int, error) {
		o := ObserverFrom(ctx)
		if o == nil {
			t.Error("Metrics run installed no observer")
			return 0, nil
		}
		o.Registry.Counter("work").Add(7)
		o.Sampler.Finish(42)
		return 1, nil
	})
	if _, err := Run(context.Background(), []Job{j}, Options{Cache: c, Metrics: true}); err != nil {
		t.Fatal(err)
	}
	m, ok := c.GetMetrics(key)
	if !ok {
		t.Fatal("no metrics sidecar written")
	}
	if m.Job != "j" {
		t.Fatalf("sidecar job %q", m.Job)
	}
	if v, ok := m.TimeSeries.Last("work"); !ok || v != 7 {
		t.Fatalf("final work sample = %v, ok=%v", v, ok)
	}
	// The sidecar lives next to the entry, named <key>.metrics.json.
	p := filepath.Join(c.Dir(), string(key[:2]), string(key)+".metrics.json")
	if _, err := os.Stat(p); err != nil {
		t.Fatal(err)
	}

	// A cache hit recomputes nothing, so it rewrites no metrics — and a
	// Metrics-off run installs no observer.
	j2 := New("j2", KeyOf("plain"), func(ctx context.Context) (int, error) {
		if ObserverFrom(ctx) != nil {
			t.Error("observer installed without Metrics")
		}
		return 2, nil
	})
	rr, err := Run(context.Background(), []Job{j, j2}, Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if rr.CacheHits != 1 {
		t.Fatalf("hits %d", rr.CacheHits)
	}
	if _, ok := c.GetMetrics(KeyOf("plain")); ok {
		t.Fatal("Metrics-off run wrote a sidecar")
	}
}
