package runner

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"syscall"
	"time"
)

// ErrClass is the runner's error taxonomy. Every failed job is classified so
// the scheduler knows how to react: transient failures are retried with
// backoff, timeouts abort with their diagnostic, panics and permanent errors
// fail immediately, and cancellations propagate without being counted as job
// faults.
type ErrClass int

const (
	// ClassNone means the job did not fail.
	ClassNone ErrClass = iota
	// ClassPermanent is a deterministic failure; retrying cannot help.
	ClassPermanent
	// ClassTransient is a failure marked retryable (Transient); the runner
	// retries it with exponential backoff up to Options.Retry.Max times.
	ClassTransient
	// ClassTimeout is a deadline or budget abort (context deadline, sim
	// watchdog). Not retried: the same budget would trip again.
	ClassTimeout
	// ClassPanic is a recovered job panic (PanicError).
	ClassPanic
	// ClassCancelled is a run-level cancellation (SIGINT/SIGTERM or parent
	// context); the job itself is not at fault.
	ClassCancelled
	// ClassDisk is a storage failure (ENOSPC, EIO, read-only filesystem,
	// disk quota). Not retried: a full or dying disk does not heal inside a
	// backoff window, so burning bounded retries on it only delays the
	// diagnosis. The serve layer treats this class as a degraded-mode
	// trigger rather than a job fault.
	ClassDisk
)

func (c ErrClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassPermanent:
		return "permanent"
	case ClassTransient:
		return "transient"
	case ClassTimeout:
		return "timeout"
	case ClassPanic:
		return "panic"
	case ClassCancelled:
		return "cancelled"
	case ClassDisk:
		return "disk"
	default:
		return fmt.Sprintf("ErrClass(%d)", int(c))
	}
}

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string   { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// Transient wraps err to mark it retryable: the runner will re-run the job
// with exponential backoff instead of failing it. Use for environmental
// failures (I/O contention, injected chaos) — never for deterministic
// simulation errors, which would retry forever to the same result.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// timeouter is the net.Error-style marker budget aborts implement
// (sim.WatchdogError among them); the runner classifies them as timeouts
// without importing the simulator.
type timeouter interface{ Timeout() bool }

// retryabler marks errors as transient without wrapping through Transient.
type retryabler interface{ Transient() bool }

// Classify maps an error into the taxonomy. Precedence: panics, disk
// faults, explicit transient markers, cancellation, deadline/budget
// timeouts, permanent. Disk outranks an explicit Transient marker on
// purpose: an environmental wrapper around ENOSPC must not send the
// scheduler into a retry loop against a full disk.
func Classify(err error) ErrClass {
	if err == nil {
		return ClassNone
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return ClassPanic
	}
	if isDiskErr(err) {
		return ClassDisk
	}
	var tr retryabler
	if errors.As(err, &tr) && tr.Transient() {
		return ClassTransient
	}
	if errors.Is(err, context.Canceled) {
		return ClassCancelled
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassTimeout
	}
	var to timeouter
	if errors.As(err, &to) && to.Timeout() {
		return ClassTimeout
	}
	return ClassPermanent
}

// isDiskErr recognizes storage-level failures by errno, however deeply
// wrapped: no free space, I/O error, read-only filesystem, quota exceeded.
func isDiskErr(err error) bool {
	return errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, syscall.EIO) ||
		errors.Is(err, syscall.EROFS) ||
		errors.Is(err, syscall.EDQUOT)
}

// Retry bounds the runner's reaction to transient job failures.
type Retry struct {
	// Max is the number of retries after the first attempt; 0 disables
	// retrying.
	Max int
	// BaseDelay is the first backoff delay; doubled each retry. Defaults to
	// 100ms when Max > 0.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Defaults to 5s.
	MaxDelay time.Duration
}

// DefaultRetry is the policy the sweep CLIs use: three retries starting at
// 100 ms.
var DefaultRetry = Retry{Max: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}

// delay computes the backoff before retry number attempt (0-based) of the
// named job: exponential with a deterministic ±25% jitter derived from the
// job name, so a fleet of failing jobs de-synchronizes identically on every
// run (no randomness, which would break reproducibility of run logs).
func (r Retry) delay(name string, attempt int) time.Duration {
	base := r.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := r.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := fnv.New32a()
	fmt.Fprintf(h, "%s/%d", name, attempt)
	// Jitter in [-25%, +25%) of d.
	jitter := int64(h.Sum32()%1000) - 500 // [-500, 500)
	d += time.Duration(int64(d) / 2000 * jitter)
	if d < 0 {
		d = 0
	}
	return d
}

// sleepCtx sleeps for d unless ctx ends first; it reports whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
