package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"vcoma/internal/fsio"
)

// journalSchema versions the journal file format.
const journalSchema = "vcoma-journal-v1"

// Journal is an append-only record of a suite run, written next to the
// result cache. Each completed job appends one line, synced to disk, so a
// run killed mid-flight (SIGTERM, panic, power loss) leaves an exact record
// of how far it got. A journal whose run completed is deleted; one left
// behind marks an interrupted run that `vcoma-sweep -resume` can continue —
// the plan hash in the header guarantees the resume is continuing the same
// sweep (same experiment, benchmarks, scale and configuration), and the
// content-addressed cache supplies the already-computed results.
type Journal struct {
	path string
	plan Key
	fs   *fsio.FS

	mu      sync.Mutex
	f       *fsio.AppendFile
	entries map[string]JournalEntry
	// tainted records that the previous append failed and may have left
	// partial bytes at the tail; the next append starts a fresh line so a
	// good record never glues onto a torn one.
	tainted bool
}

// journalHeader is the first line of the file.
type journalHeader struct {
	Schema string `json:"schema"`
	// Plan is the content hash of the whole job plan (names and keys in
	// order); a resume against a different plan is refused.
	Plan Key `json:"plan"`
	// Jobs is the planned job count, for progress reporting.
	Jobs int `json:"jobs"`
}

// JournalEntry is one recorded job completion.
type JournalEntry struct {
	Job      string `json:"job"`
	Status   string `json:"status"` // "done" or "failed"
	Class    string `json:"class,omitempty"`
	Error    string `json:"error,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Cached   bool   `json:"cached,omitempty"`
}

// CreateJournal starts a fresh journal at path for a plan of total jobs,
// truncating any previous (crashed) journal.
func CreateJournal(path string, plan Key, total int) (*Journal, error) {
	return CreateJournalFS(path, plan, total, nil)
}

// CreateJournalFS is CreateJournal through an explicit filesystem seam (nil
// = plain durable I/O), so journal appends and syncs are fault-injectable.
func CreateJournalFS(path string, plan Key, total int, fs *fsio.FS) (*Journal, error) {
	f, err := fs.Create("journal", path)
	if err != nil {
		return nil, fmt.Errorf("runner: creating journal: %w", err)
	}
	j := &Journal{path: path, plan: plan, fs: fs, f: f, entries: make(map[string]JournalEntry)}
	if err := j.append(journalHeader{Schema: journalSchema, Plan: plan, Jobs: total}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// ResumeJournal reopens an interrupted run's journal at path, verifying it
// belongs to the same plan. It returns the journal (reopened for append)
// and the entries already recorded. A missing file is an error: there is
// nothing to resume.
func ResumeJournal(path string, plan Key) (*Journal, map[string]JournalEntry, error) {
	return ResumeJournalFS(path, plan, nil)
}

// ResumeJournalFS is ResumeJournal through an explicit filesystem seam.
func ResumeJournalFS(path string, plan Key, fs *fsio.FS) (*Journal, map[string]JournalEntry, error) {
	data, err := fs.ReadFile("journal", path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("runner: no journal at %s: nothing to resume (the previous run completed, or never started)", path)
		}
		return nil, nil, fmt.Errorf("runner: reading journal: %w", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return nil, nil, fmt.Errorf("runner: journal %s is empty", path)
	}
	var h journalHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil || h.Schema != journalSchema {
		return nil, nil, fmt.Errorf("runner: journal %s has an unrecognized header", path)
	}
	if h.Plan != plan {
		return nil, nil, fmt.Errorf("runner: journal %s records a different sweep (plan %.16s…, this run is %.16s…) — rerun with the original flags, or start fresh without -resume", path, h.Plan, plan)
	}
	entries := make(map[string]JournalEntry)
	for sc.Scan() {
		var e JournalEntry
		// A torn final line (the crash point) is expected; skip it.
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Job == "" {
			continue
		}
		entries[e.Job] = e
	}
	f, err := fs.OpenAppend("journal", path)
	if err != nil {
		return nil, nil, fmt.Errorf("runner: reopening journal: %w", err)
	}
	j := &Journal{path: path, plan: plan, fs: fs, f: f, entries: entries}
	return j, entries, nil
}

// record appends one job completion and syncs it to disk.
func (j *Journal) record(r Result) {
	e := JournalEntry{Job: r.Name, Status: "done", Attempts: r.Attempts, Cached: r.Cached}
	if r.Err != nil {
		e.Status = "failed"
		e.Class = r.Class.String()
		e.Error = r.Err.Error()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	j.entries[r.Name] = e
	_ = j.appendLocked(e)
}

func (j *Journal) append(v any) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(v)
}

func (j *Journal) appendLocked(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line := append(data, '\n')
	if j.tainted {
		// The previous append may have torn mid-line; open a new line so
		// this record stays parseable (the orphaned fragment line is
		// skipped on resume like any torn line).
		line = append([]byte{'\n'}, line...)
	}
	if err := j.f.Append(line); err != nil {
		j.tainted = true
		return err
	}
	j.tainted = false
	// Sync each record: the journal exists precisely for the crash case.
	return j.f.Sync()
}

// Done counts jobs recorded as done (succeeded).
func (j *Journal) Done() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.entries {
		if e.Status == "done" {
			n++
		}
	}
	return n
}

// Failed counts jobs recorded as failed.
func (j *Journal) Failed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.entries {
		if e.Status == "failed" {
			n++
		}
	}
	return n
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close flushes and closes the journal, leaving the file in place (an
// interrupted run keeps its journal so -resume can find it).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Complete closes and deletes the journal: the run finished, there is
// nothing left to resume.
func (j *Journal) Complete() error {
	if err := j.Close(); err != nil {
		return err
	}
	return j.fs.Remove("journal", j.path)
}
