package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func job(name string, fn func(context.Context) (int, error)) Job {
	return New(name, "", fn)
}

func constJob(name string, v int) Job {
	return job(name, func(context.Context) (int, error) { return v, nil })
}

func TestRunAllJobsSucceed(t *testing.T) {
	var jobs []Job
	for i := 0; i < 20; i++ {
		i := i
		jobs = append(jobs, constJob(fmt.Sprintf("j%d", i), i*i))
	}
	rr, err := Run(context.Background(), jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Jobs) != 20 {
		t.Fatalf("got %d results", len(rr.Jobs))
	}
	for i := 0; i < 20; i++ {
		v, err := ValueOf[int](rr, fmt.Sprintf("j%d", i))
		if err != nil || v != i*i {
			t.Fatalf("j%d = %d, %v", i, v, err)
		}
	}
}

func TestRunRespectsWorkerBound(t *testing.T) {
	var cur, max atomic.Int64
	var jobs []Job
	for i := 0; i < 16; i++ {
		jobs = append(jobs, job(fmt.Sprintf("j%d", i), func(context.Context) (int, error) {
			n := cur.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			return 0, nil
		}))
	}
	if _, err := Run(context.Background(), jobs, Options{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got > 3 {
		t.Fatalf("observed %d concurrent jobs with Workers=3", got)
	}
}

func TestRunDependencyOrder(t *testing.T) {
	var mu sync.Mutex
	var order []string
	rec := func(name string) Job {
		j := job(name, func(context.Context) (int, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return 0, nil
		})
		return j
	}
	a, b, c := rec("a"), rec("b"), rec("c")
	b.Deps = []string{"a"}
	c.Deps = []string{"a", "b"}
	rr, err := Run(context.Background(), []Job{c, b, a}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Jobs) != 3 {
		t.Fatalf("results: %d", len(rr.Jobs))
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if !(pos["a"] < pos["b"] && pos["b"] < pos["c"]) {
		t.Fatalf("order %v violates DAG", order)
	}
}

func TestRunDetectsBadGraphs(t *testing.T) {
	a := constJob("a", 1)
	a.Deps = []string{"b"}
	b := constJob("b", 2)
	b.Deps = []string{"a"}
	if _, err := Run(context.Background(), []Job{a, b}, Options{}); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
	c := constJob("c", 3)
	c.Deps = []string{"nope"}
	if _, err := Run(context.Background(), []Job{c}, Options{}); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("unknown dep not detected: %v", err)
	}
	if _, err := Run(context.Background(), []Job{constJob("d", 1), constJob("d", 2)}, Options{}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate not detected: %v", err)
	}
	if _, err := Run(context.Background(), []Job{{Name: "raw"}}, Options{}); err == nil {
		t.Fatal("job not built with New accepted")
	}
}

// A panicking job must not take down the pool: its result carries a
// PanicError and, under CollectAll, every other job still completes.
func TestRunPanicIsolation(t *testing.T) {
	jobs := []Job{
		job("boom", func(context.Context) (int, error) { panic("translation fault") }),
		constJob("ok1", 1),
		constJob("ok2", 2),
	}
	rr, err := Run(context.Background(), jobs, Options{Workers: 2, Policy: CollectAll})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not reported: %v", err)
	}
	var pe *PanicError
	if !errors.As(rr.Jobs["boom"].Err, &pe) {
		t.Fatalf("boom error %T", rr.Jobs["boom"].Err)
	}
	if pe.Value != "translation fault" || len(pe.Stack) == 0 {
		t.Fatalf("panic detail lost: %+v", pe)
	}
	for _, name := range []string{"ok1", "ok2"} {
		if rr.Jobs[name].Err != nil {
			t.Fatalf("%s did not survive the panic: %v", name, rr.Jobs[name].Err)
		}
	}
}

// Under FailFast, a failure cancels jobs that have not started and skips
// dependents; the first error is returned.
func TestRunFailFastSkipsPending(t *testing.T) {
	bad := errors.New("bad cell")
	started := make(chan struct{})
	jobs := []Job{
		job("fail", func(context.Context) (int, error) {
			<-started // ensure the slow job is in flight first
			return 0, bad
		}),
		job("slow", func(ctx context.Context) (int, error) {
			close(started)
			<-ctx.Done() // cancelled by the failure
			return 0, ctx.Err()
		}),
		constJob("late1", 1), constJob("late2", 2), constJob("late3", 3),
	}
	dep := constJob("dependent", 4)
	dep.Deps = []string{"fail"}
	jobs = append(jobs, dep)
	rr, err := Run(context.Background(), jobs, Options{Workers: 2, Policy: FailFast})
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want %v", err, bad)
	}
	if !errors.Is(rr.Jobs["dependent"].Err, ErrSkipped) || !rr.Jobs["dependent"].Skipped {
		t.Fatalf("dependent not skipped: %+v", rr.Jobs["dependent"])
	}
	if len(rr.Jobs) != 6 {
		t.Fatalf("result map not total: %d entries", len(rr.Jobs))
	}
}

// A dependent of a failed job must not run even when its other
// dependencies complete later.
func TestRunDependentOfFailureNeverRuns(t *testing.T) {
	var ran atomic.Bool
	fail := job("fail", func(context.Context) (int, error) { return 0, errors.New("x") })
	ok := constJob("ok", 1)
	dep := job("dep", func(context.Context) (int, error) { ran.Store(true); return 0, nil })
	dep.Deps = []string{"fail", "ok"}
	rr, err := Run(context.Background(), []Job{fail, ok, dep}, Options{Workers: 1, Policy: CollectAll})
	if err == nil {
		t.Fatal("no error")
	}
	if ran.Load() {
		t.Fatal("dependent of failed job executed")
	}
	if !rr.Jobs["dep"].Skipped {
		t.Fatalf("dep: %+v", rr.Jobs["dep"])
	}
	if rr.Jobs["ok"].Err != nil {
		t.Fatalf("ok: %+v", rr.Jobs["ok"])
	}
}

// Cancelling the parent context mid-pool stops the run: in-flight jobs see
// the cancellation, queued jobs are skipped, and Run reports the cause.
func TestRunContextCancellationMidPool(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inFlight := make(chan struct{})
	var jobs []Job
	jobs = append(jobs, job("inflight", func(ctx context.Context) (int, error) {
		close(inFlight)
		<-ctx.Done()
		return 0, ctx.Err()
	}))
	// The gate releases the queued jobs only once the run is already
	// cancelled, so they deterministically reach the pool post-cancel.
	jobs = append(jobs, job("gate", func(ctx context.Context) (int, error) {
		<-ctx.Done()
		return 0, nil
	}))
	for i := 0; i < 10; i++ {
		q := job(fmt.Sprintf("queued%d", i), func(context.Context) (int, error) {
			time.Sleep(time.Millisecond)
			return 0, nil
		})
		q.Deps = []string{"gate"}
		jobs = append(jobs, q)
	}
	go func() {
		<-inFlight
		cancel()
	}()
	rr, err := Run(ctx, jobs, Options{Workers: 2, Policy: FailFast})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(rr.Jobs["inflight"].Err, context.Canceled) {
		t.Fatalf("inflight: %+v", rr.Jobs["inflight"])
	}
	skipped := 0
	for _, r := range rr.Jobs {
		if r.Skipped {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("no queued job was skipped after cancellation")
	}
	if len(rr.Jobs) != len(jobs) {
		t.Fatalf("result map not total: %d/%d", len(rr.Jobs), len(jobs))
	}
}

type payload struct {
	N int
	S string
}

// Cached jobs are served without executing; equal keys share entries.
func TestRunServesFromCache(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var executions atomic.Int64
	mk := func(name string) Job {
		return New(name, KeyOf("payload", 7), func(context.Context) (payload, error) {
			executions.Add(1)
			return payload{N: 7, S: "seven"}, nil
		})
	}
	rr, err := Run(context.Background(), []Job{mk("a")}, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if rr.CacheHits != 0 || executions.Load() != 1 {
		t.Fatalf("cold run: hits=%d execs=%d", rr.CacheHits, executions.Load())
	}
	// Second run, different job name, same key: served from cache.
	rr, err = Run(context.Background(), []Job{mk("b")}, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if rr.CacheHits != 1 || executions.Load() != 1 {
		t.Fatalf("warm run: hits=%d execs=%d", rr.CacheHits, executions.Load())
	}
	v, err := ValueOf[payload](rr, "b")
	if err != nil || v != (payload{N: 7, S: "seven"}) {
		t.Fatalf("cached value %+v, %v", v, err)
	}
	// Unkeyed jobs never touch the cache.
	rr, err = Run(context.Background(), []Job{job("nokey", func(context.Context) (int, error) { return 1, nil })},
		Options{Cache: cache})
	if err != nil || rr.CacheHits != 0 {
		t.Fatalf("unkeyed job interacted with cache: %+v, %v", rr, err)
	}
}

// An entry that decodes into the wrong type is dropped and recomputed.
func TestRunRecomputesOnUndecodableEntry(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("shape-change")
	if err := cache.Put(key, "old", "a string, not a payload"); err != nil {
		t.Fatal(err)
	}
	var executions atomic.Int64
	j := New("j", key, func(context.Context) (payload, error) {
		executions.Add(1)
		return payload{N: 1}, nil
	})
	rr, err := Run(context.Background(), []Job{j}, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if executions.Load() != 1 || rr.CacheHits != 0 {
		t.Fatalf("undecodable entry served: execs=%d hits=%d", executions.Load(), rr.CacheHits)
	}
	// The recomputed value replaced the bad entry.
	var p payload
	if !cache.Get(key, &p) || p.N != 1 {
		t.Fatalf("cache not repaired: %+v", p)
	}
}

func TestKeyOfIsStableAndDiscriminating(t *testing.T) {
	type cfg struct {
		A int
		B string
	}
	k1 := KeyOf("kind", cfg{1, "x"}, "RADIX")
	k2 := KeyOf("kind", cfg{1, "x"}, "RADIX")
	if k1 != k2 {
		t.Fatal("KeyOf not deterministic")
	}
	if KeyOf("kind", cfg{2, "x"}, "RADIX") == k1 {
		t.Fatal("config change did not change key")
	}
	if KeyOf("kind", cfg{1, "x"}, "FFT") == k1 {
		t.Fatal("benchmark change did not change key")
	}
	if KeyOf("other", cfg{1, "x"}, "RADIX") == k1 {
		t.Fatal("kind change did not change key")
	}
	if len(k1) != 64 {
		t.Fatalf("key length %d", len(k1))
	}
}

func TestRunEmptyJobList(t *testing.T) {
	rr, err := Run(context.Background(), nil, Options{})
	if err != nil || len(rr.Jobs) != 0 {
		t.Fatalf("empty run: %+v, %v", rr, err)
	}
}
