package runner

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// timeoutErr mimics sim.WatchdogError's net.Error-style marker without
// importing the simulator.
type timeoutErr struct{}

func (timeoutErr) Error() string { return "budget exceeded" }
func (timeoutErr) Timeout() bool { return true }

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrClass
	}{
		{"nil", nil, ClassNone},
		{"plain", errors.New("boom"), ClassPermanent},
		{"wrapped plain", fmt.Errorf("ctx: %w", errors.New("boom")), ClassPermanent},
		{"transient", Transient(errors.New("io pressure")), ClassTransient},
		{"wrapped transient", fmt.Errorf("job: %w", Transient(errors.New("x"))), ClassTransient},
		{"cancelled", context.Canceled, ClassCancelled},
		{"wrapped cancelled", fmt.Errorf("run: %w", context.Canceled), ClassCancelled},
		{"deadline", context.DeadlineExceeded, ClassTimeout},
		{"timeouter", timeoutErr{}, ClassTimeout},
		{"wrapped timeouter", fmt.Errorf("job: %w", timeoutErr{}), ClassTimeout},
		{"panic", &PanicError{Job: "j", Value: "v"}, ClassPanic},
		{"wrapped panic", fmt.Errorf("job: %w", &PanicError{Job: "j"}), ClassPanic},
		// A panic wrapping nothing still outranks other markers.
		{"transient nil", Transient(nil), ClassNone},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("%s: Classify(%v) = %v, want %v", c.name, c.err, got, c.want)
		}
	}
}

func TestErrClassString(t *testing.T) {
	for cl, want := range map[ErrClass]string{
		ClassNone: "none", ClassPermanent: "permanent", ClassTransient: "transient",
		ClassTimeout: "timeout", ClassPanic: "panic", ClassCancelled: "cancelled",
		ErrClass(99): "ErrClass(99)",
	} {
		if got := cl.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(cl), got, want)
		}
	}
}

// Transient failures retry with backoff until they succeed.
func TestRunTransientRetrySucceeds(t *testing.T) {
	attempts := 0
	jobs := []Job{job("flaky", func(context.Context) (int, error) {
		attempts++
		if attempts < 3 {
			return 0, Transient(errors.New("injected"))
		}
		return 42, nil
	})}
	rr, err := Run(context.Background(), jobs, Options{
		Retry: Retry{Max: 3, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := rr.Jobs["flaky"]
	if res.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", res.Attempts)
	}
	if res.Class != ClassNone {
		t.Errorf("Class = %v, want none", res.Class)
	}
	if v, _ := ValueOf[int](rr, "flaky"); v != 42 {
		t.Errorf("value = %d, want 42", v)
	}
}

// A transient failure past the retry budget surfaces as the job's error.
func TestRunTransientRetryExhausted(t *testing.T) {
	attempts := 0
	jobs := []Job{job("doomed", func(context.Context) (int, error) {
		attempts++
		return 0, Transient(errors.New("still broken"))
	})}
	rr, err := Run(context.Background(), jobs, Options{
		Retry: Retry{Max: 2, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond},
	})
	if err == nil {
		t.Fatal("want error after exhausted retries")
	}
	res := rr.Jobs["doomed"]
	if attempts != 3 || res.Attempts != 3 {
		t.Errorf("attempts = %d (recorded %d), want 3 (initial + 2 retries)", attempts, res.Attempts)
	}
	if res.Class != ClassTransient {
		t.Errorf("Class = %v, want transient", res.Class)
	}
}

// Permanent failures never retry.
func TestRunPermanentFailsFast(t *testing.T) {
	attempts := 0
	jobs := []Job{job("perm", func(context.Context) (int, error) {
		attempts++
		return 0, errors.New("deterministic failure")
	})}
	rr, err := Run(context.Background(), jobs, Options{Retry: DefaultRetry})
	if err == nil {
		t.Fatal("want error")
	}
	if attempts != 1 {
		t.Errorf("permanent error ran %d times, want 1", attempts)
	}
	if rr.Jobs["perm"].Class != ClassPermanent {
		t.Errorf("Class = %v, want permanent", rr.Jobs["perm"].Class)
	}
}

// A hung job is reclaimed by the per-job deadline and classified timeout,
// not retried.
func TestRunJobTimeoutAborts(t *testing.T) {
	attempts := 0
	jobs := []Job{job("hung", func(ctx context.Context) (int, error) {
		attempts++
		<-ctx.Done()
		return 0, ctx.Err()
	})}
	rr, err := Run(context.Background(), jobs, Options{
		JobTimeout: 5 * time.Millisecond,
		Retry:      DefaultRetry,
	})
	if err == nil {
		t.Fatal("want timeout error")
	}
	if attempts != 1 {
		t.Errorf("timed-out job ran %d times, want 1 (timeouts are not retried)", attempts)
	}
	if cl := rr.Jobs["hung"].Class; cl != ClassTimeout {
		t.Errorf("Class = %v, want timeout", cl)
	}
}

// A panicking job is classified panic and not retried.
func TestRunPanicClassified(t *testing.T) {
	attempts := 0
	jobs := []Job{job("bomb", func(context.Context) (int, error) {
		attempts++
		panic("injected")
	})}
	rr, err := Run(context.Background(), jobs, Options{Retry: DefaultRetry})
	if err == nil {
		t.Fatal("want panic error")
	}
	if attempts != 1 {
		t.Errorf("panicking job ran %d times, want 1", attempts)
	}
	if cl := rr.Jobs["bomb"].Class; cl != ClassPanic {
		t.Errorf("Class = %v, want panic", cl)
	}
}

// Backoff delays are deterministic per (job, attempt), grow exponentially,
// and respect the cap.
func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	r := Retry{Max: 10, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	for attempt := 0; attempt < 10; attempt++ {
		d1 := r.delay("observe/RADIX/L0-TLB", attempt)
		d2 := r.delay("observe/RADIX/L0-TLB", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: delay not deterministic: %v vs %v", attempt, d1, d2)
		}
		if d1 < 0 || d1 > time.Second+time.Second/4 {
			t.Errorf("attempt %d: delay %v outside [0, cap+25%%]", attempt, d1)
		}
	}
	// Different jobs de-synchronize.
	same := 0
	for i := 0; i < 8; i++ {
		if r.delay(fmt.Sprintf("job%d", i), 2) == r.delay(fmt.Sprintf("job%d", i+100), 2) {
			same++
		}
	}
	if same == 8 {
		t.Error("jitter does not vary across job names")
	}
	// Zero-value policy defaults apply.
	if d := (Retry{Max: 1}).delay("j", 0); d <= 0 || d > 200*time.Millisecond {
		t.Errorf("defaulted first delay %v outside (0, 200ms]", d)
	}
}

// Cancelling mid-backoff surfaces the cancellation, not the transient cause.
func TestRunCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := []Job{job("flaky", func(context.Context) (int, error) {
		cancel()
		return 0, Transient(errors.New("injected"))
	})}
	rr, err := Run(ctx, jobs, Options{
		Retry: Retry{Max: 5, BaseDelay: time.Hour, MaxDelay: time.Hour},
	})
	if err == nil {
		t.Fatal("want error")
	}
	if cl := rr.Jobs["flaky"].Class; cl != ClassCancelled {
		t.Errorf("Class = %v, want cancelled", cl)
	}
}
