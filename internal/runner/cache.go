package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"vcoma/internal/fsio"
)

// cacheSchema versions the on-disk entry envelope. Bumping it orphans every
// existing entry (they fail validation and are recomputed), which is the
// intended cache-invalidation path for format changes. v2 added the result
// checksum.
const cacheSchema = "vcoma-cache-v2"

// quarantineDir is the subdirectory corrupt entries are moved to.
const quarantineDir = "quarantine"

// Cache is a content-addressed on-disk store of job results. Each entry is
// one JSON file named after the job key, so the layout is transparent:
//
//	<dir>/<first two key hex digits>/<key>.json
//
// Entries are self-describing (they embed the schema version, the key, a
// sha256 checksum of the result, and the job name that produced them) and
// are written atomically and durably via fsio.WriteFileAtomic (temp file →
// fsync → rename → parent-dir fsync), so concurrent runners sharing a
// directory never observe torn writes and a power cut never loses a
// completed Put.
//
// An entry from an older schema is a silent miss (recomputed and
// overwritten — the expected upgrade path). A corrupt entry — unreadable
// JSON, checksum mismatch, key mismatch — is never silently discarded: it
// is moved to <dir>/quarantine/ beside a .reason file explaining what was
// wrong, and a warning is logged, so data corruption is observable instead
// of quietly papered over by a recompute.
type Cache struct {
	dir string
	fs  *fsio.FS // filesystem seam; nil = plain durable I/O

	mu  sync.Mutex
	log io.Writer // warnings; default os.Stderr
}

// envelope is the on-disk entry format.
type envelope struct {
	Schema string `json:"schema"`
	Key    Key    `json:"key"`
	Job    string `json:"job"`
	// Sum is the sha256 of Result, guarding against silent corruption that
	// still parses as JSON.
	Sum    string          `json:"sum"`
	Result json.RawMessage `json:"result"`
}

// OpenCache creates (if needed) and opens a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	return OpenCacheFS(dir, nil)
}

// OpenCacheFS is OpenCache with an explicit filesystem seam, through which
// every durable write (and read) of the cache flows — the hook for fault
// injection and op-trace recording. A nil fs is the plain durable seam.
func OpenCacheFS(dir string, fs *fsio.FS) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("runner: empty cache directory")
	}
	if err := fs.MkdirAll("open", dir); err != nil {
		return nil, fmt.Errorf("runner: opening cache: %w", err)
	}
	return &Cache{dir: dir, fs: fs, log: os.Stderr}, nil
}

// FS returns the cache's filesystem seam (nil for the plain one).
func (c *Cache) FS() *fsio.FS { return c.fs }

// SetLog redirects the cache's corruption warnings (default os.Stderr);
// nil silences them.
func (c *Cache) SetLog(w io.Writer) {
	c.mu.Lock()
	c.log = w
	c.mu.Unlock()
}

func (c *Cache) warnf(format string, args ...any) {
	c.mu.Lock()
	w := c.log
	c.mu.Unlock()
	if w != nil {
		fmt.Fprintf(w, "runner: cache: "+format+"\n", args...)
	}
}

func resultSum(raw []byte) string {
	s := sha256.Sum256(raw)
	return hex.EncodeToString(s[:])
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// keyOK reports whether key can safely be mapped onto the cache's file
// layout: lowercase hex only, at least one shard's worth. Keys arrive from
// KeyOf in library use but from URL paths in the serve layer, so a key with
// path separators (or anything else non-hex) must never reach path().
func keyOK(key Key) bool {
	return len(key) >= 2 && isHex(string(key))
}

func (c *Cache) path(key Key) string {
	return filepath.Join(c.dir, string(key[:2]), string(key)+".json")
}

// metricsPath is the metrics sidecar written next to a cache entry by
// Metrics-enabled runs.
func (c *Cache) metricsPath(key Key) string {
	return filepath.Join(c.dir, string(key[:2]), string(key)+".metrics.json")
}

// get returns the raw result bytes for key, or false on a miss. An absent
// file or an entry from an older schema is a plain miss; a corrupt entry is
// quarantined with a reason and logged before reporting the miss.
func (c *Cache) get(key Key) (json.RawMessage, bool) {
	if !keyOK(key) {
		return nil, false
	}
	data, err := c.fs.ReadFile("get", c.path(key))
	if err != nil {
		return nil, false
	}
	var e envelope
	if err := json.Unmarshal(data, &e); err != nil {
		c.Quarantine(key, fmt.Sprintf("entry is not valid JSON: %v", err))
		return nil, false
	}
	if e.Schema != cacheSchema {
		// Older or foreign schema: stale, not corrupt. Recompute silently;
		// Put overwrites it.
		return nil, false
	}
	if e.Key != key {
		c.Quarantine(key, fmt.Sprintf("entry claims key %.16s… but is filed under %.16s…", e.Key, key))
		return nil, false
	}
	if e.Result == nil {
		c.Quarantine(key, "entry has no result payload")
		return nil, false
	}
	if sum := resultSum(e.Result); sum != e.Sum {
		c.Quarantine(key, fmt.Sprintf("checksum mismatch: entry records %.16s…, payload hashes to %.16s…", e.Sum, sum))
		return nil, false
	}
	return e.Result, true
}

// Quarantine moves the entry for key into <dir>/quarantine/ and writes a
// sibling .reason file, logging a warning. Quarantined entries are never
// consulted again but remain on disk for inspection; a recompute writes a
// fresh entry in the normal location.
func (c *Cache) Quarantine(key Key, reason string) {
	if !keyOK(key) {
		return
	}
	src := c.path(key)
	qdir := filepath.Join(c.dir, quarantineDir)
	if err := c.fs.MkdirAll("quarantine", qdir); err != nil {
		c.warnf("quarantining %s: %v", key, err)
		return
	}
	dst := filepath.Join(qdir, filepath.Base(src))
	// fsio.Rename syncs the quarantine dir, so evidence of corruption is as
	// durable as the entries themselves.
	if err := c.fs.Rename("quarantine", src, dst); err != nil {
		c.warnf("quarantining %s: %v", key, err)
		return
	}
	_ = c.fs.WriteFile("quarantine", dst+".reason", []byte(reason+"\n"))
	c.warnf("corrupt entry %.16s… quarantined to %s: %s", key, dst, reason)
}

// QuarantineDir returns the quarantine directory path (it may not exist yet).
func (c *Cache) QuarantineDir() string { return filepath.Join(c.dir, quarantineDir) }

// Quarantined counts quarantined entries (.reason files excluded).
func (c *Cache) Quarantined() int {
	entries, err := os.ReadDir(c.QuarantineDir())
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

// GetRaw returns the cached result's raw JSON payload for key, exactly as
// stored. Validation (schema, key, checksum) is identical to Get; a corrupt
// entry is quarantined and reported as a miss. The artifact store serves
// these bytes directly, so a result fetched today is byte-identical to the
// one fetched after any number of restarts.
func (c *Cache) GetRaw(key Key) (json.RawMessage, bool) {
	return c.get(key)
}

// Remove deletes the entry for key along with its metrics sidecar, for
// size-bounded eviction policies layered over the cache. A missing entry is
// not an error; quarantined entries are never touched (they are evidence,
// not cached state). A reader racing the removal sees either the old valid
// entry or a plain miss — never a torn file — because entries are only ever
// replaced atomically or unlinked.
func (c *Cache) Remove(key Key) error {
	if !keyOK(key) {
		return fmt.Errorf("runner: invalid cache key %q", key)
	}
	if err := c.fs.Remove("evict", c.path(key)); err != nil && !os.IsNotExist(err) {
		return err
	}
	if err := c.fs.Remove("evict", c.metricsPath(key)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Get decodes the cached result for key into out (a pointer). It returns
// false — never an error — when the entry is absent or unusable; the caller
// recomputes.
func (c *Cache) Get(key Key, out any) bool {
	raw, ok := c.get(key)
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// Put stores a job result under key, atomically replacing any previous
// entry.
func (c *Cache) Put(key Key, job string, v any) error {
	if !keyOK(key) {
		return fmt.Errorf("runner: invalid cache key %q", key)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: encoding result for %s: %w", job, err)
	}
	data, err := json.Marshal(envelope{Schema: cacheSchema, Key: key, Job: job, Sum: resultSum(raw), Result: raw})
	if err != nil {
		return err
	}
	return c.fs.WriteFileAtomic("put", c.path(key), data)
}

// PutMetrics stores a job's observability sidecar next to its cache entry,
// atomically like Put. The sidecar is informational: it is never consulted
// by the cache probe, so a missing or stale one cannot change results.
func (c *Cache) PutMetrics(key Key, m JobMetrics) error {
	if !keyOK(key) {
		return fmt.Errorf("runner: invalid cache key %q", key)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: encoding metrics for %s: %w", m.Job, err)
	}
	return c.fs.WriteFileAtomic("metrics", c.metricsPath(key), data)
}

// GetMetrics loads the metrics sidecar for key, if one exists.
func (c *Cache) GetMetrics(key Key) (JobMetrics, bool) {
	var m JobMetrics
	if !keyOK(key) {
		return m, false
	}
	data, err := c.fs.ReadFile("metrics", c.metricsPath(key))
	if err != nil {
		return m, false
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return JobMetrics{}, false
	}
	return m, true
}

// EntryPath returns the on-disk path of the entry for key, whether or not
// it exists. Exposed for tests and the chaos harness, which corrupt entries
// in place to exercise the quarantine path.
func (c *Cache) EntryPath(key Key) string { return c.path(key) }

// Clear removes every entry (but keeps the directory and any quarantined
// entries, which are evidence of past corruption, not cached state).
func (c *Cache) Clear() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		// Only touch the two-hex-digit shard directories and stray JSON
		// files the cache itself lays out; a mistaken -cache pointing at a
		// source tree must not delete unrelated files.
		name := e.Name()
		isShard := e.IsDir() && len(name) == 2 && isHex(name)
		isEntry := !e.IsDir() && strings.HasSuffix(name, ".json")
		if !isShard && !isEntry {
			continue
		}
		if err := c.fs.RemoveAll("clear", filepath.Join(c.dir, name)); err != nil {
			return err
		}
	}
	return nil
}

func isHex(s string) bool {
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// Len counts the entries currently stored (metrics sidecars and
// quarantined entries excluded).
func (c *Cache) Len() int {
	n := 0
	filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() && d.Name() == quarantineDir {
			return filepath.SkipDir
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") && !strings.HasSuffix(path, ".metrics.json") {
			n++
		}
		return nil
	})
	return n
}
