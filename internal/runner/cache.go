package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// cacheSchema versions the on-disk entry envelope. Bumping it orphans every
// existing entry (they fail validation and are recomputed), which is the
// intended cache-invalidation path for format changes.
const cacheSchema = "vcoma-cache-v1"

// Cache is a content-addressed on-disk store of job results. Each entry is
// one JSON file named after the job key, so the layout is transparent:
//
//	<dir>/<first two key hex digits>/<key>.json
//
// Entries are self-describing (they embed the schema version, the key and
// the job name that produced them) and are written atomically via a
// temporary file and rename, so concurrent runners sharing a directory
// never observe torn writes. A corrupted, truncated or mismatched entry is
// treated as a miss: the job recomputes and overwrites it.
type Cache struct {
	dir string
}

// envelope is the on-disk entry format.
type envelope struct {
	Schema string          `json:"schema"`
	Key    Key             `json:"key"`
	Job    string          `json:"job"`
	Result json.RawMessage `json:"result"`
}

// OpenCache creates (if needed) and opens a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("runner: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: opening cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key Key) string {
	return filepath.Join(c.dir, string(key[:2]), string(key)+".json")
}

// metricsPath is the metrics sidecar written next to a cache entry by
// Metrics-enabled runs.
func (c *Cache) metricsPath(key Key) string {
	return filepath.Join(c.dir, string(key[:2]), string(key)+".metrics.json")
}

// get returns the raw result bytes for key, or false on a miss. Unreadable
// and malformed entries are misses.
func (c *Cache) get(key Key) (json.RawMessage, bool) {
	if len(key) < 2 {
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Schema != cacheSchema || e.Key != key || e.Result == nil {
		return nil, false
	}
	return e.Result, true
}

// Get decodes the cached result for key into out (a pointer). It returns
// false — never an error — when the entry is absent or unusable; the caller
// recomputes.
func (c *Cache) Get(key Key, out any) bool {
	raw, ok := c.get(key)
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// Put stores a job result under key, atomically replacing any previous
// entry.
func (c *Cache) Put(key Key, job string, v any) error {
	if len(key) < 2 {
		return fmt.Errorf("runner: invalid cache key %q", key)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: encoding result for %s: %w", job, err)
	}
	data, err := json.Marshal(envelope{Schema: cacheSchema, Key: key, Job: job, Result: raw})
	if err != nil {
		return err
	}
	return writeFileAtomic(c.path(key), data)
}

// PutMetrics stores a job's observability sidecar next to its cache entry,
// atomically like Put. The sidecar is informational: it is never consulted
// by the cache probe, so a missing or stale one cannot change results.
func (c *Cache) PutMetrics(key Key, m JobMetrics) error {
	if len(key) < 2 {
		return fmt.Errorf("runner: invalid cache key %q", key)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: encoding metrics for %s: %w", m.Job, err)
	}
	return writeFileAtomic(c.metricsPath(key), data)
}

// GetMetrics loads the metrics sidecar for key, if one exists.
func (c *Cache) GetMetrics(key Key) (JobMetrics, bool) {
	var m JobMetrics
	if len(key) < 2 {
		return m, false
	}
	data, err := os.ReadFile(c.metricsPath(key))
	if err != nil {
		return m, false
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return JobMetrics{}, false
	}
	return m, true
}

// writeFileAtomic writes data to path via a temporary file and rename, so
// concurrent runners sharing a directory never observe torn writes.
func writeFileAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// remove deletes the entry for key, if present. Used when an entry is
// found corrupt so the rewrite is not racing a reader of the bad file.
func (c *Cache) remove(key Key) {
	if len(key) >= 2 {
		os.Remove(c.path(key))
	}
}

// Clear removes every entry (but keeps the directory).
func (c *Cache) Clear() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		// Only touch the two-hex-digit shard directories and stray JSON
		// files the cache itself lays out; a mistaken -cache pointing at a
		// source tree must not delete unrelated files.
		name := e.Name()
		isShard := e.IsDir() && len(name) == 2 && isHex(name)
		isEntry := !e.IsDir() && strings.HasSuffix(name, ".json")
		if !isShard && !isEntry {
			continue
		}
		if err := os.RemoveAll(filepath.Join(c.dir, name)); err != nil {
			return err
		}
	}
	return nil
}

func isHex(s string) bool {
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// Len counts the entries currently stored (metrics sidecars excluded).
func (c *Cache) Len() int {
	n := 0
	filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") && !strings.HasSuffix(path, ".metrics.json") {
			n++
		}
		return nil
	})
	return n
}
