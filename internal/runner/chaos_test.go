package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestChaosParse(t *testing.T) {
	c, err := ParseChaos("panic:fig11,hang:table4,flaky:observe:2,cancel:5,corrupt:mgmt")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Faults) != 5 {
		t.Fatalf("parsed %d faults, want 5", len(c.Faults))
	}
	if got := c.String(); got != "panic:fig11,hang:table4,flaky:observe:2,cancel:5,corrupt:mgmt" {
		t.Errorf("round trip = %q", got)
	}
	if c, err := ParseChaos(""); c != nil || err != nil {
		t.Errorf("empty spec: got %v, %v", c, err)
	}
	for _, bad := range []string{"explode:x", "flaky:x", "flaky:x:0", "cancel:none", "panic:", "cancel:0"} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("spec %q should be rejected", bad)
		}
	}
}

// An injected panic is detected, classified, and isolated to its job.
func TestChaosPanicDetected(t *testing.T) {
	chaos, _ := ParseChaos("panic:victim")
	jobs := chaos.Wrap([]Job{constJob("victim", 1), constJob("bystander", 2)})
	rr, err := Run(context.Background(), jobs, Options{Policy: CollectAll})
	if err == nil {
		t.Fatal("want error from injected panic")
	}
	if cl := rr.Jobs["victim"].Class; cl != ClassPanic {
		t.Errorf("victim class = %v, want panic", cl)
	}
	if v, err := ValueOf[int](rr, "bystander"); err != nil || v != 2 {
		t.Errorf("bystander = %d, %v; chaos must not leak across jobs", v, err)
	}
}

// An injected hang is reclaimed by the per-job deadline within its budget.
func TestChaosHangAbortedByTimeout(t *testing.T) {
	chaos, _ := ParseChaos("hang:stuck")
	jobs := chaos.Wrap([]Job{constJob("stuck", 1)})
	done := make(chan struct{})
	var rr *RunResult
	var err error
	go func() {
		rr, err = Run(context.Background(), jobs, Options{JobTimeout: 10 * time.Millisecond})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("hung job was not reclaimed by JobTimeout")
	}
	if err == nil {
		t.Fatal("want timeout error")
	}
	if cl := rr.Jobs["stuck"].Class; cl != ClassTimeout {
		t.Errorf("class = %v, want timeout", cl)
	}
}

// Injected transient failures are retried to success.
func TestChaosFlakyRetriedToSuccess(t *testing.T) {
	chaos, _ := ParseChaos("flaky:shaky:2")
	jobs := chaos.Wrap([]Job{constJob("shaky", 7)})
	rr, err := Run(context.Background(), jobs, Options{
		Retry: Retry{Max: 3, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := rr.Jobs["shaky"]
	if res.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (2 injected failures + success)", res.Attempts)
	}
	if v, _ := ValueOf[int](rr, "shaky"); v != 7 {
		t.Errorf("value = %d, want 7", v)
	}
}

// Corrupted cache entries are quarantined with a reason, not silently
// recomputed, and the recompute still yields the right value.
func TestChaosCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache.SetLog(nil)
	jobs := []Job{New("cell", KeyOf("cell-inputs"), func(context.Context) (int, error) { return 13, nil })}
	if _, err := Run(context.Background(), jobs, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}

	chaos, _ := ParseChaos("corrupt:cell")
	n, err := chaos.CorruptMatching(cache, jobs)
	if err != nil || n != 1 {
		t.Fatalf("corrupted %d entries (%v), want 1", n, err)
	}

	rr, err := Run(context.Background(), jobs, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Jobs["cell"].Cached {
		t.Error("corrupt entry must not serve as a cache hit")
	}
	if v, _ := ValueOf[int](rr, "cell"); v != 13 {
		t.Errorf("recomputed value = %d, want 13", v)
	}
	if q := cache.Quarantined(); q != 1 {
		t.Errorf("quarantined = %d, want 1", q)
	}
	reasons, _ := filepath.Glob(filepath.Join(cache.QuarantineDir(), "*.reason"))
	if len(reasons) != 1 {
		t.Fatalf("want one .reason file, got %v", reasons)
	}
	reason, _ := os.ReadFile(reasons[0])
	if !strings.Contains(string(reason), "checksum mismatch") {
		t.Errorf("reason = %q, want checksum mismatch", reason)
	}
}

// renderOf assembles a deterministic mini-report from a run's values, in
// job-name order — a stand-in for the suite's Markdown renderer.
func renderOf(t *testing.T, rr *RunResult, names []string) string {
	t.Helper()
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	var b strings.Builder
	for _, n := range sorted {
		v, err := ValueOf[int](rr, n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		fmt.Fprintf(&b, "%s=%d\n", n, v)
	}
	return b.String()
}

// A run killed mid-flight by an injected cancellation leaves a journal and
// a partial cache; resuming completes the plan and renders byte-identically
// to an uninterrupted run.
func TestChaosCancelThenResumeByteIdentical(t *testing.T) {
	mkJobs := func() ([]Job, []string) {
		var jobs []Job
		var names []string
		for i := 0; i < 8; i++ {
			i := i
			name := fmt.Sprintf("cell%d", i)
			names = append(names, name)
			jobs = append(jobs, New(name, KeyOf("cell", i), func(context.Context) (int, error) {
				return i * i, nil
			}))
		}
		return jobs, names
	}

	// Reference: uninterrupted run with its own cache.
	refJobs, names := mkJobs()
	refCache, _ := OpenCache(t.TempDir())
	refRun, err := Run(context.Background(), refJobs, Options{Cache: refCache, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := renderOf(t, refRun, names)

	// Interrupted run: cancel after 3 completed jobs, journal attached.
	dir := t.TempDir()
	cache, _ := OpenCache(dir)
	jobs, _ := mkJobs()
	plan := PlanKey(jobs)
	jpath := filepath.Join(dir, "journal.json")
	jl, err := CreateJournal(jpath, plan, len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	chaos, _ := ParseChaos("cancel:3")
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	chaos.BindCancel(cancel)
	_, err = Run(ctx, chaos.Wrap(jobs), Options{Cache: cache, Workers: 1, Journal: jl})
	jl.Close()
	if !errors.Is(err, ErrChaosCancel) {
		t.Fatalf("interrupted run: got %v, want ErrChaosCancel cause", err)
	}
	if _, err := os.Stat(jpath); err != nil {
		t.Fatal("interrupted run must leave its journal behind")
	}

	// Resume: same plan, same cache; completed cells come from the cache.
	jobs2, _ := mkJobs()
	if pk := PlanKey(jobs2); pk != plan {
		t.Fatal("re-enumerated plan hashes differently")
	}
	jl2, prev, err := ResumeJournal(jpath, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(prev) < 3 {
		t.Fatalf("journal recorded %d completions before the kill, want >= 3", len(prev))
	}
	resumed, err := Run(context.Background(), jobs2, Options{Cache: cache, Workers: 2, Journal: jl2})
	if err != nil {
		t.Fatal(err)
	}
	if err := jl2.Complete(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(jpath); !os.IsNotExist(err) {
		t.Fatal("completed resume must delete the journal")
	}
	if resumed.CacheHits < 3 {
		t.Errorf("resume recomputed everything (%d cache hits), want >= 3", resumed.CacheHits)
	}
	if got := renderOf(t, resumed, names); got != want {
		t.Errorf("resumed render differs from uninterrupted run:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
