package runner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.json")
	plan := KeyOf("plan-a")
	j, err := CreateJournal(path, plan, 3)
	if err != nil {
		t.Fatal(err)
	}
	j.record(Result{Name: "a", Attempts: 1})
	j.record(Result{Name: "b", Err: errors.New("boom"), Class: ClassPermanent, Attempts: 1})
	j.record(Result{Name: "c", Cached: true})
	if j.Done() != 2 || j.Failed() != 1 {
		t.Fatalf("done=%d failed=%d, want 2/1", j.Done(), j.Failed())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, entries, err := ResumeJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(entries) != 3 {
		t.Fatalf("resumed %d entries, want 3", len(entries))
	}
	if e := entries["b"]; e.Status != "failed" || e.Class != "permanent" || !strings.Contains(e.Error, "boom") {
		t.Errorf("entry b = %+v", e)
	}
	if !entries["c"].Cached {
		t.Errorf("entry c lost its cached flag: %+v", entries["c"])
	}
	// Appends after resume land in the same file.
	j2.record(Result{Name: "d"})
	if j2.Done() != 3 {
		t.Errorf("done after resumed append = %d, want 3", j2.Done())
	}
}

func TestJournalResumeRejectsDifferentPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.json")
	j, err := CreateJournal(path, KeyOf("plan-a"), 1)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, _, err := ResumeJournal(path, KeyOf("plan-b")); err == nil {
		t.Fatal("resume against a different plan must fail")
	}
}

func TestJournalResumeMissingFile(t *testing.T) {
	if _, _, err := ResumeJournal(filepath.Join(t.TempDir(), "nope.json"), KeyOf("p")); err == nil {
		t.Fatal("resume without a journal must fail: there is nothing to resume")
	}
}

func TestJournalSkipsTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.json")
	plan := KeyOf("plan-a")
	j, err := CreateJournal(path, plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	j.record(Result{Name: "a"})
	j.Close()
	// Simulate a crash mid-append: a torn, half-written trailing record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"job":"b","stat`)
	f.Close()

	j2, entries, err := ResumeJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(entries) != 1 || entries["a"].Status != "done" {
		t.Fatalf("entries = %v, want only the intact record", entries)
	}
}

func TestJournalCompleteRemovesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.json")
	j, err := CreateJournal(path, KeyOf("p"), 1)
	if err != nil {
		t.Fatal(err)
	}
	j.record(Result{Name: "a"})
	if err := j.Complete(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("Complete must delete the journal")
	}
}

// The runner records every non-skipped completion into an attached journal.
func TestRunRecordsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.json")
	jobs := []Job{
		constJob("ok", 1),
		job("bad", func(context.Context) (int, error) { return 0, errors.New("boom") }),
	}
	jl, err := CreateJournal(path, PlanKey(jobs), len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := Run(context.Background(), jobs, Options{Policy: CollectAll, Journal: jl})
	if runErr == nil {
		t.Fatal("want run error")
	}
	jl.Close()
	_, entries, err := ResumeJournal(path, PlanKey(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if entries["ok"].Status != "done" || entries["bad"].Status != "failed" {
		t.Fatalf("entries = %v", entries)
	}
}

func TestPlanKeyDiscriminates(t *testing.T) {
	a := []Job{New("a", KeyOf(1), func(context.Context) (int, error) { return 0, nil })}
	b := []Job{New("a", KeyOf(2), func(context.Context) (int, error) { return 0, nil })}
	c := []Job{New("b", KeyOf(1), func(context.Context) (int, error) { return 0, nil })}
	if PlanKey(a) != PlanKey(a) {
		t.Error("PlanKey not stable")
	}
	if PlanKey(a) == PlanKey(b) || PlanKey(a) == PlanKey(c) {
		t.Error("PlanKey does not discriminate names/keys")
	}
}
