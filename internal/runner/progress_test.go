package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestProgressLinesAndSummary(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("progress")
	if err := cache.Put(key, "warm", 7); err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		New("warm", key, func(context.Context) (int, error) { return 7, nil }),
		job("cold", func(context.Context) (int, error) { return 1, nil }),
		job("broken", func(context.Context) (int, error) { return 0, errors.New("sim diverged") }),
	}
	rr, err := Run(context.Background(), jobs, Options{Workers: 1, Policy: CollectAll, Cache: cache, Progress: p})
	if err == nil {
		t.Fatal("expected the broken job's error")
	}
	if rr.CacheHits != 1 {
		t.Fatalf("cache hits %d", rr.CacheHits)
	}
	out := buf.String()
	for _, want := range []string{"[", "/3] ", "warm cached", "broken FAILED", "sim diverged"} {
		if !strings.Contains(out, want) {
			t.Fatalf("progress output missing %q:\n%s", want, out)
		}
	}

	s := p.Summary()
	if s.Total != 3 || s.Done != 3 || s.CacheHits != 1 || s.Failed != 1 || s.Skipped != 0 {
		t.Fatalf("summary %+v", s)
	}
	// Jobs are sorted by name for a deterministic export.
	if len(s.Jobs) != 3 || s.Jobs[0].Name != "broken" || s.Jobs[1].Name != "cold" || s.Jobs[2].Name != "warm" {
		t.Fatalf("jobs %+v", s.Jobs)
	}
	if !s.Jobs[2].Cached || s.Jobs[0].Error == "" {
		t.Fatalf("job detail lost: %+v", s.Jobs)
	}

	var buf2 bytes.Buffer
	if err := s.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(buf2.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Total != 3 || back.CacheHits != 1 || len(back.Jobs) != 3 {
		t.Fatalf("JSON round trip %+v", back)
	}
}

func TestProgressETAOnlyWhileRunning(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	jobs := []Job{constJob("a", 1), constJob("b", 2)}
	if _, err := Run(context.Background(), jobs, Options{Workers: 1, Progress: p}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %q", lines)
	}
	if !strings.Contains(lines[0], "eta") {
		t.Fatalf("first line has no ETA: %q", lines[0])
	}
	if strings.Contains(lines[1], "eta") {
		t.Fatalf("final line still shows an ETA: %q", lines[1])
	}
}
