package runner

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"
)

// lockFileName is the lock file guarding a cache directory.
const lockFileName = "LOCK"

// DirLock is an exclusive advisory lock on a cache directory, preventing
// two concurrent sweeps from interleaving journal writes and progress
// accounting in the same state directory. The lock is a file created with
// O_EXCL recording the owner; a lock whose owner process is no longer
// alive on this host is stale and is silently replaced, so a crashed sweep
// never wedges the directory.
type DirLock struct {
	path string
}

// lockInfo is the lock file's content, for diagnostics and staleness
// detection.
type lockInfo struct {
	PID     int       `json:"pid"`
	Started time.Time `json:"started"`
	Cmd     string    `json:"cmd,omitempty"`
}

// ErrLocked reports that another live process holds the directory lock.
var ErrLocked = errors.New("runner: cache directory is locked by another running sweep")

// AcquireDirLock takes the exclusive lock on dir, creating dir if needed.
// It fails with an error wrapping ErrLocked when another live process
// holds it; a stale lock (owner dead or unverifiable-but-gone) is broken
// and re-acquired.
func AcquireDirLock(dir string) (*DirLock, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: locking %s: %w", dir, err)
	}
	path := filepath.Join(dir, lockFileName)
	for attempt := 0; ; attempt++ {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			info := lockInfo{PID: os.Getpid(), Started: time.Now().UTC()}
			if len(os.Args) > 0 {
				info.Cmd = filepath.Base(os.Args[0])
			}
			data, _ := json.Marshal(info)
			_, werr := f.Write(append(data, '\n'))
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				os.Remove(path)
				return nil, fmt.Errorf("runner: writing lock %s: %w", path, werr)
			}
			return &DirLock{path: path}, nil
		}
		if !os.IsExist(err) || attempt > 0 {
			return nil, fmt.Errorf("runner: locking %s: %w", dir, err)
		}
		holder, stale := readLock(path)
		if !stale {
			return nil, fmt.Errorf("%w: %s held by pid %d since %s — wait for it, or remove the file if that process is gone",
				ErrLocked, path, holder.PID, holder.Started.Format(time.RFC3339))
		}
		// Stale: the recorded process is not alive on this host. Break the
		// lock and try once more; a concurrent breaker losing the O_EXCL
		// race falls into the attempt>0 error above rather than looping.
		os.Remove(path)
	}
}

// readLock parses the lock file and reports whether it is stale. An
// unreadable or unparsable lock file is treated as stale (a torn write from
// a crash); a parsable one is stale exactly when its recorded PID is not a
// live process on this host.
func readLock(path string) (lockInfo, bool) {
	var info lockInfo
	data, err := os.ReadFile(path)
	if err != nil {
		// Either it vanished (holder exited between our O_EXCL failure and
		// this read) or it is unreadable; both mean retry.
		return info, true
	}
	if err := json.Unmarshal(data, &info); err != nil || info.PID <= 0 {
		return info, true
	}
	return info, !pidAlive(info.PID)
}

// pidAlive reports whether pid is a running process on this host, via the
// conventional signal-0 probe. EPERM means the process exists but belongs
// to another user: alive.
func pidAlive(pid int) bool {
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	if err := proc.Signal(syscall.Signal(0)); err != nil && !errors.Is(err, syscall.EPERM) {
		return false
	}
	// A zombie answers the signal probe but will never release the lock:
	// dead for locking purposes. The state letter in /proc/<pid>/stat
	// follows the parenthesized command name; on hosts without procfs the
	// probe result stands.
	if data, err := os.ReadFile(fmt.Sprintf("/proc/%d/stat", pid)); err == nil {
		if i := bytes.LastIndexByte(data, ')'); i >= 0 && i+2 < len(data) && data[i+2] == 'Z' {
			return false
		}
	}
	return true
}

// Path returns the lock file's location.
func (l *DirLock) Path() string { return l.path }

// Release removes the lock file. Safe to call once; releasing a lock twice
// is a programming error but only costs a spurious remove.
func (l *DirLock) Release() error {
	if l == nil {
		return nil
	}
	return os.Remove(l.path)
}
